// Benchmarks regenerating the paper's evaluation (one benchmark per demo
// scenario — the paper has no numbered tables; its evaluation section
// defines Scenarios 1-7) plus micro-benchmarks of the allocation hot path
// and ablation benches for the design choices called out in DESIGN.md.
//
// Scenario benches report the headline quantities of each scenario via
// b.ReportMetric (satisfaction, response time, departures), so
// `go test -bench=Scenario -benchmem` prints the paper's rows alongside the
// timing. Full-scale tables live in EXPERIMENTS.md and are regenerated with
// `go run ./cmd/sbqa -scenario all`.
package sbqa

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/boinc"
	"sbqa/internal/core"
	"sbqa/internal/experiments"
	"sbqa/internal/knbest"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
	"sbqa/internal/score"
	"sbqa/internal/stats"
)

// benchOptions keeps scenario benches fast enough for -bench=. while
// preserving the dynamics (the full-scale numbers are in EXPERIMENTS.md).
func benchOptions() experiments.Options {
	return experiments.Options{Volunteers: 40, Duration: 400, Seed: 7}
}

func benchScenario(b *testing.B, run func(experiments.Options) (*experiments.ScenarioResult, error), metricsOf func(*experiments.ScenarioResult) map[string]float64) {
	b.Helper()
	var last *experiments.ScenarioResult
	for i := 0; i < b.N; i++ {
		r, err := run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil && metricsOf != nil {
		for name, v := range metricsOf(last) {
			b.ReportMetric(v, name)
		}
	}
}

func resultOf(r *experiments.ScenarioResult, technique string) metricsResult {
	for _, res := range r.Results {
		if res.Technique == technique {
			return metricsResult{res.MeanResponseTime, res.ConsumerSat, res.ProviderSat, float64(res.ProvidersLeft)}
		}
	}
	return metricsResult{}
}

type metricsResult struct{ rt, satC, satP, left float64 }

// BenchmarkScenario1 — baselines under the satisfaction model (captive).
func BenchmarkScenario1(b *testing.B) {
	benchScenario(b, experiments.Scenario1, func(r *experiments.ScenarioResult) map[string]float64 {
		cap := resultOf(r, "Capacity")
		eco := resultOf(r, "Economic")
		return map[string]float64{
			"cap_satP": cap.satP, "eco_satP": eco.satP,
			"cap_RT": cap.rt, "eco_RT": eco.rt,
		}
	})
}

// BenchmarkScenario2 — baselines under autonomy; departures.
func BenchmarkScenario2(b *testing.B) {
	benchScenario(b, experiments.Scenario2, func(r *experiments.ScenarioResult) map[string]float64 {
		cap := resultOf(r, "Capacity")
		eco := resultOf(r, "Economic")
		return map[string]float64{"cap_left": cap.left, "eco_left": eco.left}
	})
}

// BenchmarkScenario3 — SbQA vs baselines (captive).
func BenchmarkScenario3(b *testing.B) {
	benchScenario(b, experiments.Scenario3, func(r *experiments.ScenarioResult) map[string]float64 {
		cap := resultOf(r, "Capacity")
		sb := resultOf(r, "SbQA")
		return map[string]float64{
			"sbqa_RT": sb.rt, "cap_RT": cap.rt,
			"sbqa_satP": sb.satP, "cap_satP": cap.satP,
		}
	})
}

// BenchmarkScenario4 — SbQA vs baselines (autonomous): the headline.
func BenchmarkScenario4(b *testing.B) {
	benchScenario(b, experiments.Scenario4, func(r *experiments.ScenarioResult) map[string]float64 {
		cap := resultOf(r, "Capacity")
		eco := resultOf(r, "Economic")
		sb := resultOf(r, "SbQA")
		return map[string]float64{
			"sbqa_left": sb.left, "cap_left": cap.left, "eco_left": eco.left,
			"sbqa_RT": sb.rt,
		}
	})
}

// BenchmarkScenario5 — performance-only intentions.
func BenchmarkScenario5(b *testing.B) {
	benchScenario(b, experiments.Scenario5, func(r *experiments.ScenarioResult) map[string]float64 {
		def := resultOf(r, "SbQA/interests")
		perf := resultOf(r, "SbQA/perf-only")
		return map[string]float64{"interests_RT": def.rt, "perfonly_RT": perf.rt}
	})
}

// BenchmarkScenario6 — kn and ω sweeps.
func BenchmarkScenario6(b *testing.B) {
	benchScenario(b, experiments.Scenario6, func(r *experiments.ScenarioResult) map[string]float64 {
		kn1 := resultOf(r, "SbQA(kn=1)")
		kn20 := resultOf(r, "SbQA(kn=20)")
		return map[string]float64{
			"kn1_RT": kn1.rt, "kn20_RT": kn20.rt,
			"kn1_satP": kn1.satP, "kn20_satP": kn20.satP,
		}
	})
}

// BenchmarkScenario7 — probe participants.
func BenchmarkScenario7(b *testing.B) {
	benchScenario(b, experiments.Scenario7, func(r *experiments.ScenarioResult) map[string]float64 {
		sb := resultOf(r, "SbQA")
		cap := resultOf(r, "Capacity")
		return map[string]float64{"sbqa_satP": sb.satP, "cap_satP": cap.satP}
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the allocation hot path
// ---------------------------------------------------------------------------

// BenchmarkScoreDefinition3 measures one score evaluation.
func BenchmarkScoreDefinition3(b *testing.B) {
	s := score.NewScorer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Score(0.7, 0.3, 0.5)
		_ = s.Score(-0.7, 0.3, 0.5)
	}
}

// BenchmarkRank measures ranking a kn=10 candidate set.
func BenchmarkRank(b *testing.B) {
	s := score.NewScorer()
	cands := make([]score.Candidate, 10)
	for i := range cands {
		cands[i] = score.Candidate{
			Provider: model.ProviderID(i),
			PI:       model.Intention(float64(i%7)/7 - 0.3),
			CI:       model.Intention(float64(i%5) / 5),
			SatC:     0.6, SatP: float64(i) / 10,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Rank(cands)
	}
}

// BenchmarkKnBestSelect measures the two-stage selection over 1000
// candidates.
func BenchmarkKnBestSelect(b *testing.B) {
	rng := stats.NewRNG(1)
	cands := make([]model.ProviderSnapshot, 1000)
	for i := range cands {
		cands[i] = model.ProviderSnapshot{ID: model.ProviderID(i), Utilization: rng.Float64()}
	}
	sel := knbest.NewSelector(knbest.Params{K: 20, Kn: 10}, stats.NewRNG(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sel.Select(cands)
	}
}

// --- intention fan-out (the v2 batched protocol's hot path) ---

// fanoutProvider is a minimal in-process provider for fan-out benches.
type fanoutProvider struct {
	id model.ProviderID
}

func (p *fanoutProvider) ProviderID() model.ProviderID { return p.id }
func (p *fanoutProvider) Snapshot(float64) model.ProviderSnapshot {
	return model.ProviderSnapshot{ID: p.id, Utilization: float64(p.id%10) / 10, Capacity: 1}
}
func (p *fanoutProvider) CanPerform(model.Query) bool           { return true }
func (p *fanoutProvider) Intention(model.Query) model.Intention { return 0.4 }
func (p *fanoutProvider) Bid(q model.Query) float64             { return q.Work }

// fanoutParticipant additionally answers the context-aware protocol
// (instantly), so the bench isolates the fan-out's goroutine overhead.
type fanoutParticipant struct{ fanoutProvider }

func (p *fanoutParticipant) IntentionContext(context.Context, model.Query) (model.Intention, error) {
	return 0.4, nil
}

type fanoutConsumer struct{}

func (fanoutConsumer) ConsumerID() model.ConsumerID { return 0 }
func (fanoutConsumer) Intention(_ model.Query, snap model.ProviderSnapshot) model.Intention {
	return model.Intention(0.5 - snap.Utilization)
}

// newFanoutMediator builds a mediator with n registered providers.
func newFanoutMediator(b *testing.B, n int, participants bool) *mediator.Mediator {
	b.Helper()
	med := mediator.New(core.MustNew(core.DefaultConfig()), mediator.Config{Window: 100})
	med.RegisterConsumer(fanoutConsumer{})
	for i := 0; i < n; i++ {
		if participants {
			med.RegisterProvider(&fanoutParticipant{fanoutProvider{id: model.ProviderID(i)}})
		} else {
			med.RegisterProvider(&fanoutProvider{id: model.ProviderID(i)})
		}
	}
	return med
}

// BenchmarkIntentionFanoutInProcess measures one full mediation (KnBest +
// batched SQLB collection) over 200 in-process providers — the inline
// collection path, byte-identical to the v1 pipeline.
func BenchmarkIntentionFanoutInProcess(b *testing.B) {
	med := newFanoutMediator(b, 200, false)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := med.Mediate(ctx, float64(i), model.Query{Consumer: 0, N: 1, Work: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntentionFanoutParticipants measures the same mediation when
// every contacted provider is a context-aware participant answering
// instantly — the concurrent fan-out's pure dispatch overhead (one
// goroutine per Kn member per mediation).
func BenchmarkIntentionFanoutParticipants(b *testing.B) {
	med := newFanoutMediator(b, 200, true)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := med.Mediate(ctx, float64(i), model.Query{Consumer: 0, N: 1, Work: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSatisfactionUpdate measures one provider-window update plus
// satisfaction read.
func BenchmarkSatisfactionUpdate(b *testing.B) {
	tr := satisfaction.NewProvider(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(model.Intention(float64(i%3)-1), i%5 == 0)
		_ = tr.Satisfaction()
	}
}

// BenchmarkMediateSbQA measures one full SbQA mediation over 200 candidates.
func BenchmarkMediateSbQA(b *testing.B) {
	benchmarkMediate(b, core.MustNew(core.DefaultConfig()))
}

// BenchmarkMediateCapacity measures one capacity-based mediation over 200
// candidates.
func BenchmarkMediateCapacity(b *testing.B) {
	benchmarkMediate(b, alloc.NewCapacity())
}

// BenchmarkMediateEconomic measures one economic mediation over 200
// candidates.
func BenchmarkMediateEconomic(b *testing.B) {
	benchmarkMediate(b, alloc.NewEconomic(stats.NewRNG(3)))
}

func benchmarkMediate(b *testing.B, a alloc.Allocator) {
	b.Helper()
	env := alloc.NewStaticEnv()
	rng := stats.NewRNG(9)
	cands := make([]model.ProviderSnapshot, 200)
	for i := range cands {
		cands[i] = model.ProviderSnapshot{
			ID: model.ProviderID(i), Utilization: rng.Float64(), Capacity: 1,
		}
		env.SetCI(0, model.ProviderID(i), model.Intention(rng.Float64()))
		env.SetPI(model.ProviderID(i), 0, model.Intention(rng.Float64()*2-1))
	}
	q := model.Query{ID: 1, Consumer: 0, N: 2, Work: 10}
	b.ReportAllocs()
	b.ResetTimer()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		_, _ = a.Allocate(ctx, env, q, cands)
	}
}

// BenchmarkWorldThroughput measures end-to-end simulated mediations per
// wall-clock second (100 volunteers, captive, SbQA).
func BenchmarkWorldThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := boinc.DefaultConfig(100, 7)
		cfg.Duration = 200
		w, err := boinc.NewWorld(core.MustNew(core.DefaultConfig()), cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := w.Run()
		b.ReportMetric(float64(r.Issued), "queries/run")
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (design choices from DESIGN.md)
// ---------------------------------------------------------------------------

// runAblation runs an autonomous world and reports satisfaction/departures.
func runAblation(b *testing.B, mk func(seed uint64) alloc.Allocator, mutate func(*boinc.Config)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := boinc.DefaultConfig(60, 7)
		cfg.Mode = boinc.Autonomous
		cfg.Duration = 600
		if mutate != nil {
			mutate(&cfg)
		}
		w, err := boinc.NewWorld(mk(7), cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := w.Run()
		b.ReportMetric(r.ProviderSat, "satP")
		b.ReportMetric(r.ConsumerSat, "satC")
		b.ReportMetric(float64(r.ProvidersLeft), "left")
		b.ReportMetric(r.MeanResponseTime, "RT")
	}
}

// BenchmarkAblationAdaptiveOmega: the satisfaction-adaptive ω (the paper's
// Equation 2) …
func BenchmarkAblationAdaptiveOmega(b *testing.B) {
	runAblation(b, func(seed uint64) alloc.Allocator {
		c := core.DefaultConfig()
		c.Seed = seed
		return core.MustNew(c)
	}, nil)
}

// BenchmarkAblationFixedOmega: … versus a fixed 0.5 balance.
func BenchmarkAblationFixedOmega(b *testing.B) {
	runAblation(b, func(seed uint64) alloc.Allocator {
		c := core.DefaultConfig()
		c.Omega = core.FixedOmega(0.5)
		c.Seed = seed
		return core.MustNew(c)
	}, nil)
}

// BenchmarkAblationNoStage2: KnBest without the utilization filter
// (kn = k): pure interest matching.
func BenchmarkAblationNoStage2(b *testing.B) {
	runAblation(b, func(seed uint64) alloc.Allocator {
		c := core.DefaultConfig()
		c.KnBest = knbest.Params{K: 20, Kn: 20}
		c.Seed = seed
		return core.MustNew(c)
	}, nil)
}

// BenchmarkAblationSmallWindow: satisfaction memory k = 20 instead of 100.
func BenchmarkAblationSmallWindow(b *testing.B) {
	runAblation(b, func(seed uint64) alloc.Allocator {
		c := core.DefaultConfig()
		c.Seed = seed
		return core.MustNew(c)
	}, func(cfg *boinc.Config) { cfg.Window = 20 })
}

// BenchmarkAblationReplication1: no result replication (q.n = 1).
func BenchmarkAblationReplication1(b *testing.B) {
	runAblation(b, func(seed uint64) alloc.Allocator {
		c := core.DefaultConfig()
		c.Seed = seed
		return core.MustNew(c)
	}, func(cfg *boinc.Config) {
		for i := range cfg.Workload.Projects {
			cfg.Workload.Projects[i].Replication = 1
		}
	})
}

// BenchmarkAblationEpsilonSmall: ε = 0.01 sharpens the negative branch.
func BenchmarkAblationEpsilonSmall(b *testing.B) {
	runAblation(b, func(seed uint64) alloc.Allocator {
		c := core.DefaultConfig()
		c.Epsilon = 0.01
		c.Seed = seed
		return core.MustNew(c)
	}, nil)
}

// BenchmarkMotivatingExample — the §IV resource-share rigidity story.
func BenchmarkMotivatingExample(b *testing.B) {
	benchScenario(b, experiments.MotivatingExample, func(r *experiments.ScenarioResult) map[string]float64 {
		share := resultOf(r, "ShareBased(80/20)")
		sb := resultOf(r, "SbQA")
		return map[string]float64{"share_RT": share.rt, "sbqa_RT": sb.rt}
	})
}

// BenchmarkMaliciousStudy — validation with 20% malicious volunteers.
func BenchmarkMaliciousStudy(b *testing.B) {
	benchScenario(b, experiments.MaliciousStudy, func(r *experiments.ScenarioResult) map[string]float64 {
		rep := resultOf(r, "SbQA/reputation")
		cap := resultOf(r, "Capacity")
		return map[string]float64{"rep_satC": rep.satC, "cap_satC": cap.satC}
	})
}

// BenchmarkReplicationStudy — fixed vs adaptive replication.
func BenchmarkReplicationStudy(b *testing.B) {
	benchScenario(b, experiments.ReplicationStudy, func(r *experiments.ScenarioResult) map[string]float64 {
		ada := resultOf(r, "adaptive")
		return map[string]float64{"adaptive_RT": ada.rt}
	})
}

// ---------------------------------------------------------------------------
// Live engine benchmarks: sharded mediation throughput
// ---------------------------------------------------------------------------

// benchEngine builds a sharded engine over constant-snapshot providers (no
// dispatch — pure mediation throughput) with one consumer per submitting
// goroutine.
func benchEngine(b *testing.B, shards, providers, consumers int) *LiveService {
	b.Helper()
	svc, err := NewLiveEngine(LiveConfig{
		Window:      100,
		Concurrency: shards,
		NewAllocator: func(shard int) Allocator {
			cfg := core.DefaultConfig()
			cfg.Seed = uint64(shard) + 1
			return core.MustNew(cfg)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < providers; i++ {
		svc.RegisterProvider(providerStub{id: ProviderID(i), pi: Intention(float64(i%9)/9 - 0.3)})
	}
	for c := 0; c < consumers; c++ {
		c := c
		svc.RegisterConsumer(LiveFuncConsumer{ID: ConsumerID(c), Fn: func(q Query, snap ProviderSnapshot) Intention {
			return Intention(float64((int(snap.ID)+c)%7)/7 - 0.2)
		}})
	}
	return svc
}

// benchmarkEngineParallel measures sharded mediation throughput under
// b.RunParallel: every goroutine drives its own consumer, so shards mediate
// concurrently. This is the scaling proof for the sharded engine — compare
// BenchmarkLiveEngineParallel with BenchmarkLiveEngineSingleShard at
// GOMAXPROCS > 1.
func benchmarkEngineParallel(b *testing.B, shards int) {
	const providers = 200
	maxProcs := runtime.GOMAXPROCS(0)
	svc := benchEngine(b, shards, providers, maxProcs*4)
	var nextConsumer atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := ConsumerID(nextConsumer.Add(1) - 1)
		q := Query{Consumer: c, N: 2, Work: 10}
		for pb.Next() {
			if _, err := svc.Submit(context.Background(), q, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkLiveEngineParallel — one mediator shard per CPU.
func BenchmarkLiveEngineParallel(b *testing.B) {
	benchmarkEngineParallel(b, runtime.GOMAXPROCS(0))
}

// BenchmarkLiveEngineSingleShard — the serialized baseline under identical
// parallel load: every submission funnels through one shard mutex.
func BenchmarkLiveEngineSingleShard(b *testing.B) {
	benchmarkEngineParallel(b, 1)
}

// BenchmarkLiveEngineSubmitBatch measures the amortized batch entry point:
// each provider is snapshotted at most once per batch per shard, however
// many of the 64 queries it is a candidate for.
func BenchmarkLiveEngineSubmitBatch(b *testing.B) {
	const batchSize = 64
	svc := benchEngine(b, runtime.GOMAXPROCS(0), 200, 16)
	queries := make([]Query, batchSize)
	for i := range queries {
		queries[i] = Query{Consumer: ConsumerID(i % 16), N: 2, Work: 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, errs := svc.SubmitBatch(context.Background(), queries, nil)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(batchSize), "queries/op")
}

// BenchmarkLiveEngineTickets measures the asynchronous ticket path under
// the same parallel load as BenchmarkLiveEngineParallel: every goroutine
// submits through the Engine's shard queues and awaits the mediation
// outcome on the ticket. The delta against the blocking bench is the cost
// of queue hand-off plus ticket allocation.
func BenchmarkLiveEngineTickets(b *testing.B) {
	const providers = 200
	maxProcs := runtime.GOMAXPROCS(0)
	eng, err := NewEngine(
		WithWindow(100),
		WithConcurrency(maxProcs),
		WithAllocatorFactory(func(shard int) Allocator {
			cfg := core.DefaultConfig()
			cfg.Seed = uint64(shard) + 1
			return core.MustNew(cfg)
		}),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < providers; i++ {
		eng.RegisterProvider(providerStub{id: ProviderID(i), pi: Intention(float64(i%9)/9 - 0.3)})
	}
	consumers := maxProcs * 4
	for c := 0; c < consumers; c++ {
		c := c
		eng.RegisterConsumer(LiveFuncConsumer{ID: ConsumerID(c), Fn: func(q Query, snap ProviderSnapshot) Intention {
			return Intention(float64((int(snap.ID)+c)%7)/7 - 0.2)
		}})
	}
	var nextConsumer atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := ConsumerID(nextConsumer.Add(1) - 1)
		q := Query{Consumer: c, N: 2, Work: 10}
		for pb.Next() {
			if _, err := eng.Submit(context.Background(), q).Allocation(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkMediateEndToEnd measures the complete mediation hot path the way
// production traffic exercises it: Submit → candidate discovery → KnBest →
// batched intention collection → SQLB scoring → dispatch, on a single shard
// with 200 in-process providers. This is the benchmark the allocs/op gate in
// CI watches (see .github/workflows/ci.yml): run with -benchmem; the gate
// fails when allocs/op regresses against the committed BENCH_core.json
// baseline.
func BenchmarkMediateEndToEnd(b *testing.B) {
	svc := benchEngine(b, 1, 200, 4)
	q := Query{Consumer: 0, N: 2, Work: 10}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Submit(ctx, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitUnderOverload measures the submit path the way a flash
// crowd exercises it: one shard, GOMAXPROCS×4 submitters rotating through
// the three built-in QoS classes, with the batch and background queues
// bounded shallow enough that the class scheduler sheds under the offered
// load. Shed submissions are the point — they exercise admission, the
// typed *ShedError, and the shed event alongside successful mediations, so
// this bench gates the overload path's latency, not just the happy path.
// Its allocs/op depends on the shed/allocate mix, so it is excluded from
// the exact allocation gate (see .github/workflows/ci.yml).
func BenchmarkSubmitUnderOverload(b *testing.B) {
	const providers = 200
	eng, err := NewEngine(
		WithWindow(100),
		WithConcurrency(1),
		WithQoS(QoSSpec{
			Classes: []QoSClassSpec{
				{Name: QoSInteractive, Weight: 8, Priority: true},
				{Name: QoSBatch, Weight: 2, MaxQueueDepth: 3},
				{Name: QoSBackground, Weight: 1, MaxQueueDepth: 2},
			},
			DefaultClass: QoSInteractive,
		}),
		WithAllocatorFactory(func(shard int) Allocator {
			cfg := core.DefaultConfig()
			cfg.Seed = uint64(shard) + 1
			return core.MustNew(cfg)
		}),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < providers; i++ {
		eng.RegisterProvider(providerStub{id: ProviderID(i), pi: Intention(float64(i%9)/9 - 0.3)})
	}
	maxProcs := runtime.GOMAXPROCS(0)
	consumers := maxProcs * 4
	for c := 0; c < consumers; c++ {
		c := c
		eng.RegisterConsumer(LiveFuncConsumer{ID: ConsumerID(c), Fn: func(q Query, snap ProviderSnapshot) Intention {
			return Intention(float64((int(snap.ID)+c)%7)/7 - 0.2)
		}})
	}
	// Each op is a burst: every goroutine floods the shard with burstSize
	// tickets across the three classes before awaiting any of them, so the
	// bounded queues overflow within the burst and the scheduler sheds.
	const burstSize = 12
	classes := []string{QoSInteractive, QoSBatch, QoSBackground}
	var allocated, shed atomic.Int64
	var nextConsumer atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := ConsumerID(nextConsumer.Add(1) - 1)
		q := Query{Consumer: c, N: 2, Work: 10}
		tickets := make([]*Ticket, 0, burstSize)
		i := 0
		for pb.Next() {
			tickets = tickets[:0]
			for j := 0; j < burstSize; j++ {
				tickets = append(tickets, eng.Submit(context.Background(), q, WithQoSClass(classes[i%len(classes)])))
				i++
			}
			for _, tk := range tickets {
				if _, err := tk.Allocation(); err != nil {
					if !errors.Is(err, ErrShed) {
						b.Error(err)
						return
					}
					shed.Add(1)
					continue
				}
				allocated.Add(1)
			}
		}
	})
	b.StopTimer()
	total := allocated.Load() + shed.Load()
	if total > 0 {
		b.ReportMetric(float64(burstSize), "queries/op")
		b.ReportMetric(float64(shed.Load())/float64(total), "shed-frac")
	}
}

// BenchmarkDirectoryCandidates measures indexed candidate discovery with a
// 10%-specialist population: class-restricted discovery touches only the
// class bucket plus the universal pool.
func BenchmarkDirectoryCandidates(b *testing.B) {
	dir := NewDirectory()
	const providers = 1000
	for i := 0; i < providers; i++ {
		w, err := NewLiveWorker(ProviderID(i), 100, 1, func(Query) Intention { return 0 })
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		if i%10 == 0 {
			w.SetClasses(1, 2)
		}
		dir.RegisterProvider(w)
	}
	q := Query{Consumer: 0, N: 1, Work: 1, Class: 3}
	var buf []Provider
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = dir.Candidates(q, buf[:0])
	}
	if len(buf) != providers-providers/10 {
		b.Fatalf("candidates = %d", len(buf))
	}
}
