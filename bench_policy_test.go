package sbqa

// Control-plane benchmarks, part of the committed BENCH_core.json baseline:
// PolicyBuild measures the declarative construction path (spec → validated
// per-shard allocator), ReconfigureUnderLoad measures a hot policy swap
// while concurrent SubmitBatch traffic keeps every shard busy — the cost an
// operator (or the autotuner) pays per reconfiguration, and indirectly the
// proof that the epoch swap stays off the mediation hot path.

import (
	"context"
	"sync"
	"testing"
)

func BenchmarkPolicyBuild(b *testing.B) {
	spec := PolicySpec{Kind: PolicySbQA, K: 20, Kn: 10, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Build(i % 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconfigureUnderLoad(b *testing.B) {
	eng, err := NewEngine(
		WithWindow(50),
		WithConcurrency(4),
		WithPolicy(PolicySpec{Kind: PolicySbQA, K: 6, Kn: 3, Seed: 1}),
		WithQueueDepth(512),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 8; i++ {
		eng.RegisterProvider(&sweepProvider{id: ProviderID(i)})
	}
	const consumers = 4
	for c := 0; c < consumers; c++ {
		eng.RegisterConsumer(LiveFuncConsumer{ID: ConsumerID(c), Fn: sweepConsumerFn})
	}

	// Background load: every shard mediates continuously until the bench
	// stops, so each measured Reconfigure lands under live traffic.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	svc := eng.Service()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			qs := []Query{
				{Consumer: ConsumerID(c), N: 1, Work: 1},
				{Consumer: ConsumerID(c), N: 1, Work: 2},
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				svc.SubmitBatch(context.Background(), qs, nil)
			}
		}(c)
	}

	specs := []PolicySpec{
		{Kind: PolicySbQA, K: 6, Kn: 3, Seed: 1},
		{Kind: PolicySbQA, K: 8, Kn: 4, OmegaMode: PolicyOmegaFixed, Omega: 0.5, Seed: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reconfigure(context.Background(), specs[i%len(specs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
