package sbqa

// Scenario 6 of the demo ("tuning SbQA to the application via kn and ω")
// replayed through the *public* control plane: engines are built from
// declarative PolicySpecs, the ω sweep runs as a sequence of policies, and
// the mid-run retune happens through Engine.Reconfigure — no reaching into
// core.SbQA internals, which is exactly what the policy API replaces.

import (
	"context"
	"fmt"
	"testing"
)

// sweepProvider is a public-API provider with conflicting interests: the
// consumer prefers low IDs (CI decreasing in ID) while providers' own
// willingness increases with ID (PI increasing in ID). The ω sweep must
// therefore trade consumer satisfaction against provider satisfaction
// exactly as the paper's Scenario 6b describes.
type sweepProvider struct {
	id ProviderID
}

func (p *sweepProvider) ProviderID() ProviderID { return p.id }
func (p *sweepProvider) Snapshot(float64) ProviderSnapshot {
	return ProviderSnapshot{ID: p.id, Utilization: 0.3, Capacity: 1}
}
func (p *sweepProvider) CanPerform(Query) bool { return true }
func (p *sweepProvider) Intention(Query) Intention {
	return Intention(-0.8 + 1.7*float64(p.id)/7).Clamp()
}
func (p *sweepProvider) Bid(q Query) float64 { return q.Work }

// sweepConsumerFn prefers low provider IDs.
func sweepConsumerFn(_ Query, snap ProviderSnapshot) Intention {
	return Intention(1 - 0.25*float64(snap.ID)).Clamp()
}

// runSweepPoint mediates queries under one policy and returns the mean
// consumer and provider satisfactions afterwards.
func runSweepPoint(t *testing.T, spec PolicySpec, queries int) (satC, satP float64) {
	t.Helper()
	eng, err := NewEngine(WithWindow(50), WithPolicy(spec), WithClock(func() float64 { return 1 }))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.RegisterConsumer(LiveFuncConsumer{ID: 0, Fn: sweepConsumerFn})
	for i := 0; i < 8; i++ {
		eng.RegisterProvider(&sweepProvider{id: ProviderID(i)})
	}
	svc := eng.Service()
	for i := 0; i < queries; i++ {
		if _, err := svc.Submit(context.Background(), Query{Consumer: 0, N: 1, Work: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	reg := eng.Registry()
	satC = reg.ConsumerSatisfaction(0)
	for i := 0; i < 8; i++ {
		satP += reg.ProviderSatisfaction(ProviderID(i))
	}
	return satC, satP / 8
}

// TestScenario6OmegaSweepThroughPolicyAPI reproduces the paper's ω trend
// from PolicySpecs alone: ω = 0 scores purely by consumer intentions
// (consumers win), ω = 1 purely by provider intentions (providers win), and
// the adaptive rule lands the system in between.
func TestScenario6OmegaSweepThroughPolicyAPI(t *testing.T) {
	fixed := func(omega float64) PolicySpec {
		return PolicySpec{Kind: PolicySbQA, K: 8, Kn: 8, OmegaMode: PolicyOmegaFixed, Omega: omega, Seed: 5}
	}
	const queries = 120
	satC0, satP0 := runSweepPoint(t, fixed(0), queries)
	satC1, satP1 := runSweepPoint(t, fixed(1), queries)
	if satC0 <= satC1 {
		t.Errorf("ω=0 must favor consumers: δs(c) %.3f (ω=0) vs %.3f (ω=1)", satC0, satC1)
	}
	if satP1 <= satP0 {
		t.Errorf("ω=1 must favor providers: δs(p) %.3f (ω=1) vs %.3f (ω=0)", satP1, satP0)
	}
	adC, adP := runSweepPoint(t, PolicySpec{Kind: PolicySbQA, K: 8, Kn: 8, Seed: 5}, queries)
	if adC <= satC1 || adP <= satP0 {
		t.Errorf("adaptive ω should sit between the extremes: δs(c) %.3f, δs(p) %.3f (extremes c: %.3f/%.3f, p: %.3f/%.3f)",
			adC, adP, satC0, satC1, satP0, satP1)
	}
	t.Logf("ω sweep: δs(c) %.3f→%.3f, δs(p) %.3f→%.3f, adaptive (%.3f, %.3f)",
		satC0, satC1, satP0, satP1, adC, adP)
}

// TestScenario6MidRunReconfigure retunes kn mid-run through the public
// Reconfigure — the paper's "kn close to q.n makes the process a load
// balancer, kn = |P_q| a pure interest matcher" — and requires the
// consumer's satisfaction to improve once the funnel widens.
func TestScenario6MidRunReconfigure(t *testing.T) {
	eng, err := NewEngine(
		WithWindow(40),
		WithPolicy(PolicySpec{Name: "narrow", Kind: PolicySbQA, K: 1, Kn: 1, Seed: 11}),
		WithClock(func() float64 { return 1 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.RegisterConsumer(LiveFuncConsumer{ID: 0, Fn: sweepConsumerFn})
	for i := 0; i < 8; i++ {
		eng.RegisterProvider(&sweepProvider{id: ProviderID(i)})
	}
	svc := eng.Service()
	submit := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := svc.Submit(context.Background(), Query{Consumer: 0, N: 1, Work: 1}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	submit(80)
	narrow := eng.ConsumerSatisfaction(0)

	wide := PolicySpec{Name: "matcher", Kind: PolicySbQA, K: 8, Kn: 8, OmegaMode: PolicyOmegaFixed, Seed: 11}
	if err := eng.Reconfigure(context.Background(), wide); err != nil {
		t.Fatal(err)
	}
	submit(80)
	matched := eng.ConsumerSatisfaction(0)
	if matched <= narrow {
		t.Fatalf("widening kn did not improve the consumer: δs %.3f → %.3f", narrow, matched)
	}
	// With the full candidate set scored at ω=0, the consumer's favorite
	// provider wins every mediation.
	a, err := svc.Submit(context.Background(), Query{Consumer: 0, N: 1, Work: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Selected[0] != 0 {
		t.Fatalf("interest matcher selected provider %d, want the consumer's favorite 0", a.Selected[0])
	}
	if st := eng.Stats(); st.PolicyGeneration != 1 || st.PolicySwaps() == 0 {
		t.Fatalf("reconfigure not reflected in stats: %+v", st)
	}
	t.Logf("kn retune: δs(c) %.3f (kn=1) → %.3f (kn=8)", narrow, matched)
}

// TestPolicyDeterminismAcrossReconfigureViaFacade: with one shard, two
// identical runs including an identical mid-run Reconfigure must produce
// byte-identical allocations — the epoch swap is invisible to determinism.
func TestPolicyDeterminismAcrossReconfigureViaFacade(t *testing.T) {
	run := func() []string {
		eng, err := NewEngine(
			WithWindow(30),
			WithPolicy(PolicySpec{Kind: PolicySbQA, K: 4, Kn: 2, Seed: 42}),
			WithClock(func() float64 { return 1 }),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		eng.RegisterConsumer(LiveFuncConsumer{ID: 0, Fn: sweepConsumerFn})
		for i := 0; i < 8; i++ {
			eng.RegisterProvider(&sweepProvider{id: ProviderID(i)})
		}
		svc := eng.Service()
		var out []string
		for i := 0; i < 120; i++ {
			if i == 60 {
				if err := eng.Reconfigure(context.Background(), PolicySpec{
					Kind: PolicySbQA, K: 8, Kn: 4, OmegaMode: PolicyOmegaFixed, Omega: 0.5, Seed: 9,
				}); err != nil {
					t.Fatal(err)
				}
			}
			a, err := svc.Submit(context.Background(), Query{Consumer: 0, N: 1 + i%2, Work: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fmt.Sprintf("%+v", *a))
		}
		return out
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("allocation %d diverged across identical runs:\n%s\n%s", i, first[i], second[i])
		}
	}
}
