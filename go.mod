module sbqa

go 1.24
