// Benchmark for the workload lab: one op runs a complete small lab
// scenario — world construction, the full virtual-clock event stream, and
// report finalization — against the real mediation engine. It gates the
// lab's end-to-end throughput in CI (BENCH_core.json) and reports the
// simulated mediation rate so a slowdown in either the generators or the
// engine hot path is visible as both ns/op and mediations/sec.
package sbqa

import (
	"testing"
)

func benchLabScenario() LabScenario {
	return LabScenario{
		Name:     "bench-lab-throughput",
		Seed:     17,
		Duration: 30,
		Window:   8,
		Policy:   PolicySpec{Kind: PolicySbQA, K: 8, Kn: 3, Seed: 17},
		Workload: LabWorkload{
			QueryTimeout: 20,
			Classes: []LabClassSpec{
				{
					Name: "steady", Consumers: 6, Providers: 40,
					Arrival: LabArrivalSpec{Kind: "poisson", Rate: 10},
					Cost:    LabCostSpec{Kind: "exp", Mean: 2},
				},
				{
					Name: "bursty", Consumers: 4, Providers: 30,
					Arrival: LabArrivalSpec{Kind: "mmpp2", Rate: 2, DwellA: 10, RateB: 15, DwellB: 4},
					Cost:    LabCostSpec{Kind: "pareto", Xm: 0.5, Alpha: 2.2},
				},
			},
			Adversaries: LabAdversarySpec{FreeRiders: 0.1},
		},
	}
}

func BenchmarkLabMediationThroughput(b *testing.B) {
	var mediated int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunLabScenario(benchLabScenario())
		if err != nil {
			b.Fatal(err)
		}
		mediated += r.Mediated
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(mediated)/s, "mediations/sec")
	}
}
