// BOINC example: the demo paper's volunteer-computing world. Three research
// projects (popular / normal / unpopular) issue replicated tasks to a
// population of volunteers; we run the same world under the BOINC-like
// capacity-based dispatcher and under SbQA, in autonomous mode, and compare
// what happens to the volunteer population.
//
// Run with: go run ./examples/boinc
package main

import (
	"fmt"
	"os"

	"sbqa"
)

func main() {
	const volunteers = 100
	const seed = 2009 // ICDE 2009

	results := make([]sbqa.RunResult, 0, 2)
	var sbqaWorld *sbqa.World
	for _, tech := range []struct {
		name string
		mk   func() sbqa.Allocator
	}{
		{"Capacity (BOINC-like)", func() sbqa.Allocator { return sbqa.NewCapacityAllocator() }},
		{"SbQA", func() sbqa.Allocator { return sbqa.NewSbQA(sbqa.SbQAConfig{}) }},
	} {
		cfg := sbqa.DefaultWorldConfig(volunteers, seed)
		cfg.Mode = sbqa.Autonomous // volunteers may quit when dissatisfied
		cfg.Duration = 2000
		w, err := sbqa.NewWorld(tech.mk(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "boinc example:", err)
			os.Exit(1)
		}
		r := w.Run()
		r.Technique = tech.name
		results = append(results, r)
		if tech.name == "SbQA" {
			sbqaWorld = w
		}
		fmt.Printf("%-22s volunteers online at end: %3d/%d   departures: %d\n",
			tech.name, w.OnlineVolunteers(), volunteers, r.ProvidersLeft)
	}

	fmt.Println()
	table := resultTable(results)
	_ = table.Render(os.Stdout)

	fmt.Println("\nper-project view under SbQA:")
	for _, p := range sbqaWorld.Projects() {
		fmt.Printf("  %-15s online=%v  δs(c)=%.3f\n", p.Name(), p.Online(), p.Satisfaction())
	}
	fmt.Println("\nthe interest-blind dispatcher bleeds dissatisfied volunteers —")
	fmt.Println("capacity the projects then cannot use; SbQA keeps them donating.")
}

// resultTable renders the standard comparison columns.
func resultTable(results []sbqa.RunResult) *sbqa.ResultTable {
	t := &sbqa.ResultTable{
		Title:   "BOINC world, autonomous volunteers",
		Columns: []string{"technique", "RT mean", "RT p99", "sat(C)", "sat(P)", "left(P)"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Technique,
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.2f", r.P99ResponseTime),
			fmt.Sprintf("%.3f", r.ConsumerSat),
			fmt.Sprintf("%.3f", r.ProviderSat),
			fmt.Sprintf("%d", r.ProvidersLeft),
		})
	}
	return t
}
