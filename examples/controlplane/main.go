// Control-plane example: the self-adaptation pillar of the paper, end to
// end through the public API. An engine boots with a pathologically narrow
// declarative policy (KnBest kn = 1 — the score barely matters, so a
// consumer with a strong preference starves), and an autonomic tuner —
// watching nothing but the engine's own satisfaction snapshots — widens the
// policy until the preference is honored and satisfaction recovers. The
// same retuning is then shown done by hand with Engine.Reconfigure.
//
// Run with: go run ./examples/controlplane
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"sbqa"
)

// provider is a minimal in-process provider: constant willingness, fixed
// utilization.
type provider struct {
	id   sbqa.ProviderID
	util float64
}

func (p *provider) ProviderID() sbqa.ProviderID { return p.id }
func (p *provider) Snapshot(float64) sbqa.ProviderSnapshot {
	return sbqa.ProviderSnapshot{ID: p.id, Utilization: p.util, Capacity: 1}
}
func (p *provider) CanPerform(sbqa.Query) bool          { return true }
func (p *provider) Intention(sbqa.Query) sbqa.Intention { return 0.5 }
func (p *provider) Bid(q sbqa.Query) float64            { return q.Work }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "controlplane example:", err)
	os.Exit(1)
}

func main() {
	const favorite = sbqa.ProviderID(0)

	// Part 1 — the closed loop. The tuner needs the snapshot stream.
	eng, err := sbqa.NewEngine(
		sbqa.WithWindow(25),
		sbqa.WithPolicy(sbqa.PolicySpec{Name: "narrow", Kind: sbqa.PolicySbQA, K: 2, Kn: 1, Seed: 3}),
		sbqa.WithSnapshotInterval(5*time.Millisecond),
		sbqa.WithTuner(sbqa.TunerConfig{MinInterval: 10 * time.Millisecond, Hysteresis: 1, MaxK: 16, MaxKn: 8}),
	)
	if err != nil {
		fail(err)
	}
	defer eng.Close()

	// One consumer that wants exactly one provider; the favorite is the
	// busiest, so a narrow utilization-driven funnel never picks it.
	eng.RegisterConsumer(sbqa.LiveFuncConsumer{ID: 0, Fn: func(_ sbqa.Query, snap sbqa.ProviderSnapshot) sbqa.Intention {
		if snap.ID == favorite {
			return 1
		}
		return -0.9
	}})
	for i := 0; i < 8; i++ {
		util := 0.05 * float64(i)
		if sbqa.ProviderID(i) == favorite {
			util = 0.9
		}
		eng.RegisterProvider(&provider{id: sbqa.ProviderID(i), util: util})
	}

	svc := eng.Service()
	submit := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := svc.Submit(context.Background(), sbqa.Query{Consumer: 0, N: 1, Work: 1}, nil); err != nil {
				fail(err)
			}
		}
	}

	submit(40)
	fmt.Printf("under %v\n", mustPolicy(eng))
	fmt.Printf("  starved:   δs(c) = %.3f\n", eng.ConsumerSatisfaction(0))

	// Keep traffic flowing while the MAPE-K loop widens the policy.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && eng.ConsumerSatisfaction(0) < 0.6 {
		submit(10)
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("autotuned to %v\n", mustPolicy(eng))
	fmt.Printf("  recovered: δs(c) = %.3f after %d tuner action(s)\n",
		eng.ConsumerSatisfaction(0), eng.Tuner().Stats().Actions)

	// Part 2 — the same lever, pulled by hand: swap the whole technique.
	if err := eng.Reconfigure(context.Background(), sbqa.PolicySpec{Name: "lb", Kind: sbqa.PolicyCapacity}); err != nil {
		fail(err)
	}
	a, err := svc.Submit(context.Background(), sbqa.Query{Consumer: 0, N: 1, Work: 1}, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("reconfigured to %v\n", mustPolicy(eng))
	fmt.Printf("  capacity policy allocates to the least utilized: provider %d\n", a.Selected[0])
	fmt.Printf("  generations applied per shard: %d\n", eng.Stats().PolicySwaps())
}

func mustPolicy(eng *sbqa.Engine) sbqa.PolicySpec {
	spec, ok := eng.Policy()
	if !ok {
		fail(fmt.Errorf("engine has no policy"))
	}
	return spec
}
