// Live example: the SbQA mediation embedded in a real concurrent program.
// Workers run on goroutines with wall-clock service times; submitters send
// queries from several goroutines at once; the mediator serializes the
// mediations and the satisfaction model shapes who gets what.
//
// Run with: go run ./examples/live
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"sbqa"
)

func main() {
	// KnBest sized for six workers: sample 4 at random, keep the 2 least
	// loaded. The random first stage is what rotates work across equally
	// idle, equally scored workers — without it, deterministic tie-breaks
	// would starve all but one generalist.
	svc := sbqa.NewLiveService(sbqa.NewSbQA(sbqa.SbQAConfig{
		KnBest: sbqa.KnBestParams{K: 4, Kn: 2},
	}), 50)

	// Six workers: fast generalists, and two specialists that only want
	// class-1 ("analytics") queries.
	var workers []*sbqa.LiveWorker
	for i := 0; i < 6; i++ {
		i := i
		w, err := sbqa.NewLiveWorker(sbqa.ProviderID(i), 500, 256, func(q sbqa.Query) sbqa.Intention {
			specialist := i >= 4
			if specialist {
				if q.Class == 1 {
					return 0.9
				}
				return -0.6
			}
			return 0.3
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "live example:", err)
			os.Exit(1)
		}
		defer w.Close()
		workers = append(workers, w)
		svc.RegisterWorker(w)
	}

	// Two consumers: one web tier (class 0), one analytics tier (class 1).
	for c := 0; c < 2; c++ {
		svc.RegisterConsumer(sbqa.LiveFuncConsumer{
			ID: sbqa.ConsumerID(c),
			Fn: func(q sbqa.Query, snap sbqa.ProviderSnapshot) sbqa.Intention {
				// Prefer lightly loaded workers.
				return sbqa.Intention(0.8 - snap.Utilization)
			},
		})
	}

	const perConsumer = 40
	results := make(chan sbqa.LiveResult, 2*perConsumer)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perConsumer; i++ {
				_, err := svc.Submit(context.Background(), sbqa.Query{
					Consumer: sbqa.ConsumerID(c),
					Class:    c,
					N:        1,
					Work:     2,
				}, results)
				if err != nil {
					fmt.Fprintln(os.Stderr, "submit:", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	byWorker := map[sbqa.ProviderID]int{}
	byClass := map[sbqa.ProviderID][2]int{}
	for i := 0; i < 2*perConsumer; i++ {
		r := <-results
		byWorker[r.Provider]++
		c := byClass[r.Provider]
		c[r.Query.Class]++
		byClass[r.Provider] = c
	}

	fmt.Println("completed 80 queries across 6 concurrent workers:")
	for i := 0; i < 6; i++ {
		id := sbqa.ProviderID(i)
		kind := "generalist"
		if i >= 4 {
			kind = "analytics specialist"
		}
		fmt.Printf("  worker %d (%-20s) served %2d  (web %2d / analytics %2d)  δs=%.3f\n",
			i, kind, byWorker[id], byClass[id][0], byClass[id][1], svc.ProviderSatisfaction(id))
	}
	fmt.Println("\nload spreads across all six workers (no starvation), while the")
	fmt.Println("score tilts analytics toward its specialists: about two thirds of")
	fmt.Println("their work is analytics versus half of the overall traffic. When a")
	fmt.Println("specialist does get web work, every sampled alternative was worse.")
}
