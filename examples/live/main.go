// Live example: the SbQA mediation embedded in a real concurrent program,
// running on the asynchronous Engine API. Workers run on goroutines with
// wall-clock service times; submitters fan tickets out from several
// goroutines at once; queries route to mediator shards by consumer, so
// distinct consumers mediate in parallel while the shared satisfaction
// registry shapes who gets what. Ticket submission means nobody blocks on
// worker execution: each submitter collects its own queries' results from
// their tickets, and an Observer watches the allocation stream go by.
//
// Run with: go run ./examples/live
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"sbqa"
)

func main() {
	// One mediator shard per CPU; each shard gets its own seeded allocator
	// (allocators hold sampling state and cannot be shared). KnBest sized
	// for six workers: sample 4 at random, keep the 2 least loaded. The
	// random first stage is what rotates work across equally idle, equally
	// scored workers — without it, deterministic tie-breaks would starve
	// all but one generalist.
	var observed atomic.Int64
	eng, err := sbqa.NewEngine(
		sbqa.WithWindow(50),
		sbqa.WithConcurrency(runtime.GOMAXPROCS(0)),
		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: 4, Kn: 2},
				Seed:   uint64(shard) + 1,
			})
		}),
		sbqa.WithObserver(sbqa.ObserverFuncs{
			Allocation: func(*sbqa.Allocation, int) { observed.Add(1) },
		}),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "live example:", err)
		os.Exit(1)
	}
	defer eng.Close()

	// Six workers: fast generalists, and two specialists that only want
	// class-1 ("analytics") queries.
	for i := 0; i < 6; i++ {
		i := i
		w, err := sbqa.NewLiveWorker(sbqa.ProviderID(i), 500, 256, func(q sbqa.Query) sbqa.Intention {
			specialist := i >= 4
			if specialist {
				if q.Class == 1 {
					return 0.9
				}
				return -0.6
			}
			return 0.3
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "live example:", err)
			os.Exit(1)
		}
		defer w.Close()
		eng.RegisterWorker(w)
	}

	// Two consumers: one web tier (class 0), one analytics tier (class 1).
	for c := 0; c < 2; c++ {
		eng.RegisterConsumer(sbqa.LiveFuncConsumer{
			ID: sbqa.ConsumerID(c),
			Fn: func(q sbqa.Query, snap sbqa.ProviderSnapshot) sbqa.Intention {
				// Prefer lightly loaded workers.
				return sbqa.Intention(0.8 - snap.Utilization)
			},
		})
	}

	const perConsumer = 40
	type tally struct {
		byWorker map[sbqa.ProviderID]int
		byClass  map[sbqa.ProviderID][2]int
	}
	tallies := make([]tally, 2)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		c := c
		tallies[c] = tally{byWorker: map[sbqa.ProviderID]int{}, byClass: map[sbqa.ProviderID][2]int{}}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			// Submit singles and batches: every eighth round hands the
			// engine a batch of 4, which one shard mediates under a single
			// lock acquisition with shared candidate snapshots. Nothing here
			// waits for execution until the tickets are all in flight.
			var tickets []*sbqa.Ticket
			q := sbqa.Query{Consumer: sbqa.ConsumerID(c), Class: c, N: 1, Work: 2}
			for len(tickets) < perConsumer {
				if len(tickets)%8 == 4 && perConsumer-len(tickets) >= 4 {
					tickets = append(tickets, eng.SubmitBatch(ctx, []sbqa.Query{q, q, q, q})...)
					continue
				}
				tickets = append(tickets, eng.Submit(ctx, q))
			}
			// Collect each ticket's own results — no shared channel, no
			// fan-in bookkeeping.
			for _, t := range tickets {
				results, err := t.Await(ctx)
				if err != nil {
					fmt.Fprintln(os.Stderr, "await:", err)
					return
				}
				for _, r := range results {
					tallies[c].byWorker[r.Provider]++
					cl := tallies[c].byClass[r.Provider]
					cl[r.Query.Class]++
					tallies[c].byClass[r.Provider] = cl
				}
			}
		}()
	}
	wg.Wait()

	byWorker := map[sbqa.ProviderID]int{}
	byClass := map[sbqa.ProviderID][2]int{}
	for _, tl := range tallies {
		for id, n := range tl.byWorker {
			byWorker[id] += n
		}
		for id, cl := range tl.byClass {
			agg := byClass[id]
			agg[0] += cl[0]
			agg[1] += cl[1]
			byClass[id] = agg
		}
	}

	st := eng.Stats()
	fmt.Printf("completed %d queries across 6 workers on %d mediator shard(s); observer saw %d allocations:\n",
		st.Mediations(), eng.Shards(), observed.Load())
	for i := 0; i < 6; i++ {
		id := sbqa.ProviderID(i)
		kind := "generalist"
		if i >= 4 {
			kind = "analytics specialist"
		}
		fmt.Printf("  worker %d (%-20s) served %2d  (web %2d / analytics %2d)  δs=%.3f\n",
			i, kind, byWorker[id], byClass[id][0], byClass[id][1], eng.ProviderSatisfaction(id))
	}
	fmt.Println("\nload spreads across all six workers (no starvation), while the")
	fmt.Println("score tilts analytics toward its specialists: most of their work")
	fmt.Println("is analytics even though it is only half of the overall traffic.")
	fmt.Println("When a specialist does get web work, every sampled alternative")
	fmt.Println("was worse at mediation time.")
}
