// Live example: the SbQA mediation embedded in a real concurrent program,
// running on the sharded engine. Workers run on goroutines with wall-clock
// service times; submitters send queries from several goroutines at once;
// queries route to mediator shards by consumer, so distinct consumers
// mediate in parallel while the shared satisfaction registry shapes who
// gets what.
//
// Run with: go run ./examples/live
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"

	"sbqa"
)

func main() {
	// One mediator shard per CPU; each shard gets its own seeded allocator
	// (allocators hold sampling state and cannot be shared). KnBest sized
	// for six workers: sample 4 at random, keep the 2 least loaded. The
	// random first stage is what rotates work across equally idle, equally
	// scored workers — without it, deterministic tie-breaks would starve
	// all but one generalist.
	svc, err := sbqa.NewLiveEngine(sbqa.LiveConfig{
		Window:      50,
		Concurrency: runtime.GOMAXPROCS(0),
		NewAllocator: func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: 4, Kn: 2},
				Seed:   uint64(shard) + 1,
			})
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "live example:", err)
		os.Exit(1)
	}

	// Six workers: fast generalists, and two specialists that only want
	// class-1 ("analytics") queries.
	var workers []*sbqa.LiveWorker
	for i := 0; i < 6; i++ {
		i := i
		w, err := sbqa.NewLiveWorker(sbqa.ProviderID(i), 500, 256, func(q sbqa.Query) sbqa.Intention {
			specialist := i >= 4
			if specialist {
				if q.Class == 1 {
					return 0.9
				}
				return -0.6
			}
			return 0.3
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "live example:", err)
			os.Exit(1)
		}
		defer w.Close()
		workers = append(workers, w)
		svc.RegisterWorker(w)
	}

	// Two consumers: one web tier (class 0), one analytics tier (class 1).
	for c := 0; c < 2; c++ {
		svc.RegisterConsumer(sbqa.LiveFuncConsumer{
			ID: sbqa.ConsumerID(c),
			Fn: func(q sbqa.Query, snap sbqa.ProviderSnapshot) sbqa.Intention {
				// Prefer lightly loaded workers.
				return sbqa.Intention(0.8 - snap.Utilization)
			},
		})
	}

	const perConsumer = 40
	results := make(chan sbqa.LiveResult, 2*perConsumer)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Submit singles and batches: every eighth round hands the
			// engine a batch of 4, which one shard mediates under a single
			// lock acquisition with shared candidate snapshots.
			submitted := 0
			for submitted < perConsumer {
				q := sbqa.Query{Consumer: sbqa.ConsumerID(c), Class: c, N: 1, Work: 2}
				if submitted%8 == 4 && perConsumer-submitted >= 4 {
					batch := []sbqa.Query{q, q, q, q}
					_, errs := svc.SubmitBatch(context.Background(), batch, results)
					for _, err := range errs {
						if err != nil {
							fmt.Fprintln(os.Stderr, "submit batch:", err)
							return
						}
					}
					submitted += len(batch)
					continue
				}
				if _, err := svc.Submit(context.Background(), q, results); err != nil {
					fmt.Fprintln(os.Stderr, "submit:", err)
					return
				}
				submitted++
			}
		}()
	}
	wg.Wait()

	byWorker := map[sbqa.ProviderID]int{}
	byClass := map[sbqa.ProviderID][2]int{}
	for i := 0; i < 2*perConsumer; i++ {
		r := <-results
		byWorker[r.Provider]++
		c := byClass[r.Provider]
		c[r.Query.Class]++
		byClass[r.Provider] = c
	}

	fmt.Printf("completed 80 queries across 6 workers on %d mediator shard(s):\n", svc.Shards())
	for i := 0; i < 6; i++ {
		id := sbqa.ProviderID(i)
		kind := "generalist"
		if i >= 4 {
			kind = "analytics specialist"
		}
		fmt.Printf("  worker %d (%-20s) served %2d  (web %2d / analytics %2d)  δs=%.3f\n",
			i, kind, byWorker[id], byClass[id][0], byClass[id][1], svc.ProviderSatisfaction(id))
	}
	fmt.Println("\nload spreads across all six workers (no starvation), while the")
	fmt.Println("score tilts analytics toward its specialists: most of their work")
	fmt.Println("is analytics even though it is only half of the overall traffic.")
	fmt.Println("When a specialist does get web work, every sampled alternative")
	fmt.Println("was worse at mediation time.")
}
