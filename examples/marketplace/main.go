// Marketplace example: SbQA outside volunteer computing. An e-commerce
// mediator routes purchase requests (queries) from buyer segments
// (consumers) to seller storefronts (providers). Sellers have assortative
// interests — a flash-sale segment most sellers chase, a standard segment,
// and a niche segment few sellers care about. Autonomous sellers delist
// from marketplaces that keep sending them orders they do not want.
//
// This is the paper's point that SbQA "is suitable for many more
// applications such as e-commerce and Web services": only the workload
// declaration changes; the allocation process is untouched.
//
// Run with: go run ./examples/marketplace
package main

import (
	"fmt"
	"os"

	"sbqa"
)

func main() {
	const sellers = 120
	const seed = 99

	// Declare the marketplace as a workload: segments replace projects,
	// sellers replace volunteers. Purchase requests need a single result
	// (no replication) and buyers expect sub-10s handling.
	specs := []sbqa.ProjectSpec{
		{Name: "flash-sale", Popularity: sbqa.Popular, ArrivalShare: 0.5, Replication: 1, DelayTarget: 10},
		{Name: "standard", Popularity: sbqa.Normal, ArrivalShare: 0.35, Replication: 1, DelayTarget: 10},
		{Name: "niche", Popularity: sbqa.Unpopular, ArrivalShare: 0.15, Replication: 1, DelayTarget: 10},
	}

	table := &sbqa.ResultTable{
		Title:   "marketplace, autonomous sellers",
		Columns: []string{"mediation", "order RT", "sat(buyers)", "sat(sellers)", "sellers delisted"},
	}
	for _, tech := range []struct {
		name string
		mk   func() sbqa.Allocator
	}{
		{"Economic (price only)", func() sbqa.Allocator { return sbqa.NewEconomicAllocator(seed) }},
		{"Capacity (load only)", func() sbqa.Allocator { return sbqa.NewCapacityAllocator() }},
		{"SbQA", func() sbqa.Allocator { return sbqa.NewSbQA(sbqa.SbQAConfig{Seed: seed}) }},
	} {
		cfg := sbqa.DefaultWorldConfig(sellers, seed)
		cfg.Workload.Projects = specs
		cfg.Mode = sbqa.Autonomous
		cfg.Duration = 1500
		w, err := sbqa.NewWorld(tech.mk(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marketplace example:", err)
			os.Exit(1)
		}
		r := w.Run()
		table.Rows = append(table.Rows, []string{
			tech.name,
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.3f", r.ConsumerSat),
			fmt.Sprintf("%.3f", r.ProviderSat),
			fmt.Sprintf("%d/%d", r.ProvidersLeft, sellers),
		})
	}
	_ = table.Render(os.Stdout)
	fmt.Println("\nprice-only and load-only mediations keep sending sellers orders")
	fmt.Println("they do not want; dissatisfied sellers delist and the marketplace")
	fmt.Println("shrinks. SbQA routes by mutual interest and keeps the long tail.")
}
