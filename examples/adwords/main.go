// AdWords example — the paper's §I motivation, runnable: advertisers hold
// dynamic topic interests (a pharmaceutical company temporarily promotes an
// insect repellent), user queries carry topic vectors, and the mediation
// balances user relevance against the advertisers' current goals. Watch the
// pharma company's share of insect-bite queries rise during its campaign
// and collapse the moment it ends.
//
// Run with: go run ./examples/adwords
package main

import (
	"fmt"
	"os"

	"sbqa"
)

func main() {
	// Topics: [health, sports, insects, electronics]. Ad platforms weight
	// advertiser goals heavily, so this application pins ω = 0.75 (the
	// paper: ω "can be set in accordance to the kind of application").
	allocator := sbqa.NewSbQA(sbqa.SbQAConfig{Omega: sbqa.FixedOmega(0.75)})
	w, err := sbqa.NewAdWorld(allocator, sbqa.AdWorldConfig{
		TopicDim:  4,
		QueryRate: 4,
		Duration:  1000,
		Seed:      7,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adwords example:", err)
		os.Exit(1)
	}

	pharma := w.AddAdvertiser("pharma", sbqa.TopicVector{1, 0, 0.15, 0}, 2)
	w.AddAdvertiser("sports-shop", sbqa.TopicVector{0.2, 1, 0.4, 0}, 2)
	w.AddAdvertiser("electronics", sbqa.TopicVector{0, 0, 0, 1}, 2)

	// The promotion: a strong, temporary boost on the "insects" topic.
	const campaignEnd = 500.0
	pharma.Interests().AddCampaign(sbqa.TopicCampaign{
		Boost: sbqa.TopicVector{0, 0, 5, 0},
		Until: campaignEnd,
	})

	// Track who wins insect queries in 100-second buckets.
	const bucket = 100.0
	wins := map[int]int{}
	totals := map[int]int{}
	w.Run(func(q sbqa.Query, winner *sbqa.Advertiser) {
		if w.DominantTopic(q) != 2 {
			return
		}
		b := int(q.IssuedAt / bucket)
		totals[b]++
		if winner == pharma {
			wins[b]++
		}
	})

	fmt.Println("pharma's share of insect-repellent queries over time")
	fmt.Printf("(campaign runs until t=%.0f):\n\n", campaignEnd)
	for b := 0; b < 10; b++ {
		share := 0.0
		if totals[b] > 0 {
			share = float64(wins[b]) / float64(totals[b])
		}
		bar := ""
		for i := 0; i < int(share*40); i++ {
			bar += "█"
		}
		marker := ""
		if float64(b)*bucket == campaignEnd {
			marker = "  ← campaign ends"
		}
		fmt.Printf("  t=%4.0f-%4.0f  %5.1f%%  %s%s\n",
			float64(b)*bucket, float64(b+1)*bucket, share*100, bar, marker)
	}
	fmt.Println("\nthe allocation follows the advertiser's intentions: dominant")
	fmt.Println("while the promotion runs, gone the moment it is over.")
}
