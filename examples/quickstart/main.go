// Quickstart: build the SbQA allocator, a mediator, and a handful of
// participants; mediate a stream of queries; watch satisfaction-adaptive
// balancing at work.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"sbqa"
)

// buyer is a consumer that prefers cheap-and-cheerful providers 0 and 1.
type buyer struct{ id sbqa.ConsumerID }

func (b buyer) ConsumerID() sbqa.ConsumerID { return b.id }

func (b buyer) Intention(q sbqa.Query, snap sbqa.ProviderSnapshot) sbqa.Intention {
	if snap.ID <= 1 {
		return 0.9 // loves the first two providers
	}
	return 0.1 // lukewarm about the rest
}

// seller is a provider with a private preference per consumer and a simple
// work queue abstraction (pendingWork drives its snapshot).
type seller struct {
	id          sbqa.ProviderID
	preference  sbqa.Intention
	pendingWork float64
}

func (s *seller) ProviderID() sbqa.ProviderID { return s.id }

func (s *seller) Snapshot(now float64) sbqa.ProviderSnapshot {
	util := s.pendingWork / 100
	if util > 1 {
		util = 1
	}
	return sbqa.ProviderSnapshot{
		ID: s.id, Utilization: util, Capacity: 1, PendingWork: s.pendingWork,
	}
}

func (s *seller) CanPerform(sbqa.Query) bool          { return true }
func (s *seller) Intention(sbqa.Query) sbqa.Intention { return s.preference }
func (s *seller) Bid(q sbqa.Query) float64            { return s.pendingWork + q.Work }

func main() {
	// KnBest sized for six sellers: consider everyone (k=6), keep the 3
	// least-loaded (kn=3), then let the satisfaction-adaptive score choose.
	allocator := sbqa.NewSbQA(sbqa.SbQAConfig{KnBest: sbqa.KnBestParams{K: 6, Kn: 3}})
	med := sbqa.NewMediator(allocator, sbqa.MediatorConfig{Window: 50})

	med.RegisterConsumer(buyer{id: 0})
	sellers := make([]*seller, 6)
	for i := range sellers {
		// Even-indexed sellers want this buyer's queries, odd ones don't.
		pref := sbqa.Intention(0.8)
		if i%2 == 1 {
			pref = -0.4
		}
		sellers[i] = &seller{id: sbqa.ProviderID(i), preference: pref}
		med.RegisterProvider(sellers[i])
	}

	fmt.Println("mediating 60 queries with the satisfaction-adaptive SbQA process…")
	counts := map[sbqa.ProviderID]int{}
	for i := 0; i < 60; i++ {
		a, err := med.Mediate(context.Background(), float64(i), sbqa.Query{Consumer: 0, N: 1, Work: 10})
		if err != nil {
			fmt.Println("mediation failed:", err)
			return
		}
		winner := a.Selected[0]
		counts[winner]++
		sellers[winner].pendingWork += 40
		// Queues drain between queries (each seller works off a slice).
		for _, s := range sellers {
			s.pendingWork -= 15
			if s.pendingWork < 0 {
				s.pendingWork = 0
			}
		}
	}

	fmt.Println("\nqueries per seller (the buyer loves sellers 0-1; even-indexed")
	fmt.Println("sellers want the work, odd-indexed ones object to it):")
	for i, s := range sellers {
		reg := med.Registry()
		fmt.Printf("  seller %d: %2d queries   δs(p)=%.3f   preference=%+.1f\n",
			i, counts[s.id], reg.ProviderSatisfaction(s.id), float64(s.preference))
	}
	fmt.Printf("\nbuyer satisfaction δs(c) = %.3f\n", med.Registry().ConsumerSatisfaction(0))
	fmt.Println("\nthe work rotates over the willing sellers (0, 2, 4): KnBest's")
	fmt.Println("utilization stage shares load, the score respects both sides'")
	fmt.Println("interests, and objecting sellers are never forced to serve.")
}
