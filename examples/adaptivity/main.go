// Adaptivity example (the demo's Scenario 6): tune the SbQA process to the
// application by sweeping the KnBest kn parameter and the scoring balance ω.
// Small kn turns the process into a load balancer; large kn into an interest
// matcher; ω trades consumers for providers; the adaptive ω needs no tuning.
//
// Run with: go run ./examples/adaptivity
package main

import (
	"fmt"
	"os"

	"sbqa"
)

func run(a sbqa.Allocator, seed uint64) sbqa.RunResult {
	cfg := sbqa.DefaultWorldConfig(80, seed)
	cfg.Mode = sbqa.Autonomous
	cfg.Duration = 1200
	w, err := sbqa.NewWorld(a, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptivity example:", err)
		os.Exit(1)
	}
	return w.Run()
}

func main() {
	const seed = 7

	knTable := &sbqa.ResultTable{
		Title:   "varying kn (k = 20, adaptive ω)",
		Columns: []string{"kn", "RT mean", "sat(C)", "sat(P)", "left(P)", "contacts/query"},
	}
	for _, kn := range []int{1, 2, 5, 10, 20} {
		a := sbqa.NewSbQA(sbqa.SbQAConfig{KnBest: sbqa.KnBestParams{K: 20, Kn: kn}, Seed: seed})
		r := run(a, seed)
		knTable.Rows = append(knTable.Rows, []string{
			fmt.Sprintf("%d", kn),
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.3f", r.ConsumerSat),
			fmt.Sprintf("%.3f", r.ProviderSat),
			fmt.Sprintf("%d", r.ProvidersLeft),
			fmt.Sprintf("%.1f", r.MeanContacts),
		})
	}
	_ = knTable.Render(os.Stdout)
	fmt.Println()

	omegaTable := &sbqa.ResultTable{
		Title:   "varying ω (k = 20, kn = 10)",
		Columns: []string{"ω", "RT mean", "sat(C)", "sat(P)", "left(P)"},
	}
	type variant struct {
		label string
		omega *float64
	}
	for _, v := range []variant{
		{"0 (consumers first)", sbqa.FixedOmega(0)},
		{"0.5", sbqa.FixedOmega(0.5)},
		{"1 (providers first)", sbqa.FixedOmega(1)},
		{"adaptive (Eq. 2)", nil},
	} {
		a := sbqa.NewSbQA(sbqa.SbQAConfig{Omega: v.omega, Seed: seed})
		r := run(a, seed)
		omegaTable.Rows = append(omegaTable.Rows, []string{
			v.label,
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.3f", r.ConsumerSat),
			fmt.Sprintf("%.3f", r.ProviderSat),
			fmt.Sprintf("%d", r.ProvidersLeft),
		})
	}
	_ = omegaTable.Render(os.Stdout)

	fmt.Println("\nreading the tables: kn=1 is pure load balancing (cheap, fast,")
	fmt.Println("dissatisfied providers leave); kn=k is pure interest matching")
	fmt.Println("(hot spots, slow). ω=0/1 favour one side; the adaptive balance")
	fmt.Println("keeps both sides satisfied without per-application tuning.")
}
