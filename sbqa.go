// Package sbqa is a Go implementation of SbQA — the Satisfaction-based
// Query Allocation process of Quiané-Ruiz, Lamarre and Valduriez (ICDE
// 2009) — together with every substrate the paper's demonstration depends
// on: the satisfaction model, the SQLB intention-balancing score, the
// KnBest two-stage provider selection, the baseline allocation techniques
// it is compared against (capacity-based and Mariposa-style economic
// mediation), a deterministic discrete-event BOINC-like simulation world,
// a concurrent (goroutine-based) runtime for real embeddings, and the
// seven-scenario experiment harness of the demo.
//
// # Quick start
//
//	allocator := sbqa.NewSbQA(sbqa.SbQAConfig{})      // adaptive ω, KnBest(20,10)
//	med := sbqa.NewMediator(allocator, sbqa.MediatorConfig{Window: 100})
//	med.RegisterConsumer(myConsumer)                  // your impl of sbqa.Consumer
//	med.RegisterProvider(myProvider)                  // your impl of sbqa.Provider
//	alloc, err := med.Mediate(ctx, now, sbqa.Query{Consumer: 0, N: 1, Work: 10})
//
// For a production embedding, run the asynchronous Engine instead (see
// NewEngine): Submit returns a *Ticket immediately, and tickets carry the
// allocation and the per-worker results. For simulations, build a World
// (see NewWorld), or run the paper's scenarios directly (Scenario1 …
// Scenario7, RunAllScenarios). cmd/sbqad serves the engine over HTTP.
//
// # Model vocabulary
//
// Consumers issue queries; providers perform them; both are autonomous and
// express intentions in [-1, 1] about every potential allocation. The
// mediator allocates each query q to q.N of the providers able to perform
// it, scoring candidates by Definition 3 of the paper under the
// satisfaction-adaptive balance ω of Equation 2, after the KnBest stages
// bound the candidate set. Participants' satisfaction (Definitions 1-2) is
// computed over their k last interactions; chronically dissatisfied
// participants leave, costing the system capacity — which is exactly what
// SbQA is designed to prevent.
package sbqa

import (
	"io"
	"time"

	"sbqa/internal/adwords"
	"sbqa/internal/alloc"
	"sbqa/internal/boinc"
	"sbqa/internal/cluster"
	"sbqa/internal/core"
	"sbqa/internal/directory"
	"sbqa/internal/event"
	"sbqa/internal/experiments"
	"sbqa/internal/intention"
	"sbqa/internal/knbest"
	"sbqa/internal/lab"
	"sbqa/internal/live"
	"sbqa/internal/mediator"
	"sbqa/internal/metrics"
	"sbqa/internal/model"
	"sbqa/internal/persist"
	"sbqa/internal/policy"
	"sbqa/internal/qos"
	"sbqa/internal/satisfaction"
	"sbqa/internal/trace"
	"sbqa/internal/score"
	"sbqa/internal/stats"
	"sbqa/internal/topics"
	"sbqa/internal/workload"
)

// ---------------------------------------------------------------------------
// Domain model
// ---------------------------------------------------------------------------

// Core domain types (see the model package for full documentation).
type (
	// ConsumerID identifies a consumer.
	ConsumerID = model.ConsumerID
	// ProviderID identifies a provider.
	ProviderID = model.ProviderID
	// QueryID identifies a query instance.
	QueryID = model.QueryID
	// Intention is a participant's interest level in [-1, 1].
	Intention = model.Intention
	// Query is one unit of work to allocate.
	Query = model.Query
	// ProviderSnapshot is the mediator-visible provider state.
	ProviderSnapshot = model.ProviderSnapshot
	// Allocation is the outcome of mediating one query.
	Allocation = model.Allocation
)

// ---------------------------------------------------------------------------
// Allocators
// ---------------------------------------------------------------------------

// Allocation machinery.
type (
	// Allocator decides which providers perform a query
	// (Allocate(ctx, env, q, candidates)).
	Allocator = alloc.Allocator
	// Env is the batched, context-first mediation environment allocators
	// consult (the v2 intention protocol): one Intentions call per
	// mediation collects CI_q and PI_q over the whole candidate batch.
	Env = alloc.Env
	// EnvV1 is the original synchronous per-provider environment; adapt it
	// with LegacyEnv to keep using it behind the v2 protocol.
	EnvV1 = alloc.EnvV1
	// LegacyEnv adapts an EnvV1 to the batched Env, looping synchronously.
	LegacyEnv = alloc.LegacyEnv
	// IntentionSet is one batched intention collection's outcome: aligned
	// CI/PI vectors plus per-position imputation provenance.
	IntentionSet = alloc.IntentionSet
	// SbQAConfig configures the satisfaction-based allocator.
	SbQAConfig = core.Config
	// KnBestParams are the two-stage selection parameters (k, kn).
	KnBestParams = knbest.Params
	// SbQA is the satisfaction-based allocator itself.
	SbQA = core.SbQA
	// StaticEnv is a deterministic table-backed environment for tests,
	// previews, and embeddings with precomputed intentions.
	StaticEnv = alloc.StaticEnv
)

// NewStaticEnv returns an empty table-backed environment ready to be
// populated (SetCI/SetPI, satisfaction and bid tables).
func NewStaticEnv() *StaticEnv { return alloc.NewStaticEnv() }

// Legacy wraps a v1 environment into the batched v2 protocol.
func Legacy(v1 EnvV1) LegacyEnv { return alloc.Legacy(v1) }

// NewSbQA builds the satisfaction-based allocator. The zero config gives the
// demo defaults: KnBest(k=20, kn=10), adaptive ω per Equation 2, ε = 1.
// It panics only on contradictory KnBest parameters (kn > k); use
// core-level validation via NewSbQAChecked for error returns.
func NewSbQA(cfg SbQAConfig) *SbQA { return core.MustNew(cfg) }

// NewSbQAChecked is NewSbQA returning validation errors instead of
// panicking.
func NewSbQAChecked(cfg SbQAConfig) (*SbQA, error) { return core.New(cfg) }

// FixedOmega pins the scoring balance: 0 scores purely by consumer
// intentions, 1 purely by provider intentions; pass the result in
// SbQAConfig.Omega. Leaving Omega nil selects the adaptive Equation 2.
func FixedOmega(v float64) *float64 { return core.FixedOmega(v) }

// NewCapacityAllocator returns the capacity-based baseline (the BOINC-like
// load balancer of the paper's comparisons).
func NewCapacityAllocator() Allocator { return alloc.NewCapacity() }

// NewEconomicAllocator returns the Mariposa-style sealed-bid baseline.
func NewEconomicAllocator(seed uint64) Allocator { return alloc.NewEconomic(stats.NewRNG(seed)) }

// NewRandomAllocator returns the uniform-random control.
func NewRandomAllocator(seed uint64) Allocator { return alloc.NewRandom(stats.NewRNG(seed)) }

// NewRoundRobinAllocator returns the rotating control.
func NewRoundRobinAllocator() Allocator { return alloc.NewRoundRobin() }

// NewShareBasedAllocator returns BOINC's native resource-share dispatching
// (the paper's §IV motivating example); pair it with
// WorldConfig.EnforceShares.
func NewShareBasedAllocator() Allocator { return alloc.NewShareBased() }

// ---------------------------------------------------------------------------
// Scoring and satisfaction (the paper's formulas, exposed directly)
// ---------------------------------------------------------------------------

// Omega computes the adaptive balance of Equation 2 from the consumer's and
// provider's long-run satisfactions.
func Omega(satC, satP float64) float64 { return score.Omega(satC, satP) }

// Scorer is the SQLB scoring rule (Definition 3).
type Scorer = score.Scorer

// NewScorer returns the adaptive-ω scorer with ε = 1.
func NewScorer() *Scorer { return score.NewScorer() }

// Satisfaction model types (Definitions 1-2 plus the adequation and
// allocation-satisfaction notions of the companion model).
type (
	// ConsumerTracker tracks one consumer's interaction window.
	ConsumerTracker = satisfaction.ConsumerTracker
	// ProviderTracker tracks one provider's proposal window.
	ProviderTracker = satisfaction.ProviderTracker
	// SatisfactionRegistry holds every participant's tracker.
	SatisfactionRegistry = satisfaction.Registry
)

// NewConsumerTracker returns a consumer satisfaction tracker with window k.
func NewConsumerTracker(k int) *ConsumerTracker { return satisfaction.NewConsumer(k) }

// NewProviderTracker returns a provider satisfaction tracker with window k.
func NewProviderTracker(k int) *ProviderTracker { return satisfaction.NewProvider(k) }

// NewSatisfactionRegistry returns a registry creating trackers with window
// k on demand.
func NewSatisfactionRegistry(k int) *SatisfactionRegistry { return satisfaction.NewRegistry(k) }

// Intention policies for participants.
type (
	// ConsumerPolicy computes consumer intentions.
	ConsumerPolicy = intention.ConsumerPolicy
	// ProviderPolicy computes provider intentions.
	ProviderPolicy = intention.ProviderPolicy
	// ConsumerInputs feeds a ConsumerPolicy.
	ConsumerInputs = intention.ConsumerInputs
	// ProviderInputs feeds a ProviderPolicy.
	ProviderInputs = intention.ProviderInputs
	// PreferenceProvider expresses static preferences.
	PreferenceProvider = intention.PreferenceProvider
	// LoadOnlyProvider wants queries when idle, refuses when busy.
	LoadOnlyProvider = intention.LoadOnlyProvider
	// BlendProvider trades preference for load with fixed β.
	BlendProvider = intention.BlendProvider
	// AdaptiveProvider trades preference for load by satisfaction.
	AdaptiveProvider = intention.AdaptiveProvider
	// PreferenceConsumer expresses static preferences.
	PreferenceConsumer = intention.PreferenceConsumer
	// ReputationBlendConsumer trades preference for reputation.
	ReputationBlendConsumer = intention.ReputationBlendConsumer
	// ResponseTimeConsumer cares only about expected delay.
	ResponseTimeConsumer = intention.ResponseTimeConsumer
	// AdaptiveConsumer trades preference for reputation by satisfaction.
	AdaptiveConsumer = intention.AdaptiveConsumer
)

// ---------------------------------------------------------------------------
// Mediation pipeline
// ---------------------------------------------------------------------------

// Mediation pipeline types.
type (
	// Mediator runs the technique-agnostic mediation pipeline.
	Mediator = mediator.Mediator
	// MediatorConfig tunes the pipeline (including shared Registry and
	// Directory injection for sharded embeddings).
	MediatorConfig = mediator.Config
	// Consumer is the mediator-side view of a consumer.
	Consumer = mediator.Consumer
	// Provider is the mediator-side view of a provider.
	Provider = mediator.Provider
	// MediatorDirectory is the catalog interface the mediator consults.
	MediatorDirectory = mediator.Directory

	// ConsumerParticipant is the optional context-aware extension of
	// Consumer: the mediator gathers CI_q over the whole candidate batch
	// with a single Intentions(ctx, q, kn) call — typically a network
	// round trip — under the configured per-participant deadline, imputing
	// from registry state when the consumer stays silent.
	ConsumerParticipant = mediator.ConsumerParticipant
	// ProviderParticipant is the optional context-aware extension of
	// Provider: PI_q is gathered through IntentionContext(ctx, q),
	// concurrently with every other participant of the batch.
	ProviderParticipant = mediator.ProviderParticipant
	// BidderParticipant is the optional context-aware extension of
	// Provider for the economic baseline's bidding round.
	BidderParticipant = mediator.BidderParticipant
)

// Directory layer: the indexed participant catalog (candidate discovery by
// capability index instead of a full-provider scan).
type (
	// ProviderDirectory is the concurrency-safe participant catalog.
	ProviderDirectory = directory.Directory
	// CapabilityReporter is the optional provider extension declaring the
	// query classes a provider performs; implementing it gets the provider
	// indexed by class.
	CapabilityReporter = directory.CapabilityReporter
)

// NewDirectory returns an empty participant catalog. Pass it as
// MediatorConfig.Directory to share one catalog between several mediators.
func NewDirectory() *ProviderDirectory { return directory.New() }

// ErrNoCandidates is returned by Mediator.Mediate when no online provider
// can perform the query.
var ErrNoCandidates = mediator.ErrNoCandidates

// ErrStaleSelection is returned by Mediator.Mediate when capacity existed
// but every selected provider unregistered mid-mediation (a transient
// registration race on a shared directory, already retried once). Unlike
// ErrNoCandidates it is retryable; the live engine folds it into
// ErrDispatch.
var ErrStaleSelection = mediator.ErrStaleSelection

// NewMediator returns a mediator running the given allocation technique.
func NewMediator(a Allocator, cfg MediatorConfig) *Mediator { return mediator.New(a, cfg) }

// ---------------------------------------------------------------------------
// Simulation world & experiments
// ---------------------------------------------------------------------------

// Simulation and experiment types.
type (
	// World is the BOINC-like simulated system.
	World = boinc.World
	// WorldConfig assembles a world.
	WorldConfig = boinc.Config
	// WorldMode selects captive vs autonomous participants.
	WorldMode = boinc.Mode
	// WorkloadConfig describes the synthetic population.
	WorkloadConfig = workload.Config
	// ProjectSpec declares one consumer project.
	ProjectSpec = workload.ProjectSpec
	// Popularity classifies how liked a project is.
	Popularity = workload.Popularity
	// RunResult condenses one run into the experiment-table row.
	RunResult = metrics.Result
	// ResultTable is an aligned text table of results.
	ResultTable = metrics.Table
	// ExperimentOptions sizes a scenario run.
	ExperimentOptions = experiments.Options
	// ScenarioResult is one regenerated scenario.
	ScenarioResult = experiments.ScenarioResult
)

// World modes.
const (
	// Captive participants never leave (Scenarios 1, 3, 5, 6).
	Captive = boinc.Captive
	// Autonomous participants leave when chronically dissatisfied
	// (Scenarios 2, 4, 7).
	Autonomous = boinc.Autonomous
)

// Popularity classes for ProjectSpec.
const (
	// Popular projects are most volunteers' favourite.
	Popular = workload.Popular
	// Normal projects are liked by many volunteers, not most.
	Normal = workload.Normal
	// Unpopular projects are favoured by a small fraction.
	Unpopular = workload.Unpopular
)

// NewWorld builds a runnable simulation; see WorldConfig and
// DefaultWorldConfig.
func NewWorld(a Allocator, cfg WorldConfig) (*World, error) { return boinc.NewWorld(a, cfg) }

// DefaultWorldConfig returns the demo population (three projects with
// popular/normal/unpopular skew) at the given scale.
func DefaultWorldConfig(volunteers int, seed uint64) WorldConfig {
	return boinc.DefaultConfig(volunteers, seed)
}

// The seven demo scenarios. Each regenerates its paper table(s); see
// EXPERIMENTS.md for recorded outputs and expected shapes.
var (
	// Scenario1 compares the baselines under the satisfaction model
	// (captive).
	Scenario1 = experiments.Scenario1
	// Scenario2 runs the baselines under autonomy and predicts departures.
	Scenario2 = experiments.Scenario2
	// Scenario3 compares SbQA with the baselines (captive).
	Scenario3 = experiments.Scenario3
	// Scenario4 compares SbQA with the baselines (autonomous).
	Scenario4 = experiments.Scenario4
	// Scenario5 flips intentions to performance-only.
	Scenario5 = experiments.Scenario5
	// Scenario6 sweeps kn and ω.
	Scenario6 = experiments.Scenario6
	// Scenario7 plants probe participants with explicit objectives.
	Scenario7 = experiments.Scenario7
	// MotivatingExample reproduces the paper's §IV resource-share
	// rigidity story (80/20 devotion, ca stops, cb bursts).
	MotivatingExample = experiments.MotivatingExample
	// MaliciousStudy exercises the replication/validation substrate with
	// malicious volunteers and reputation-driven intentions.
	MaliciousStudy = experiments.MaliciousStudy
	// ReplicationStudy compares fixed and satisfaction-adaptive query
	// replication (the SbQR-style extension).
	ReplicationStudy = experiments.ReplicationStudy
	// AdWordsStudy reproduces the §I keyword-advertising motivation with
	// dynamic campaign-driven intentions.
	AdWordsStudy = experiments.AdWordsStudy
)

// ---------------------------------------------------------------------------
// Live (goroutine-based) runtime — the asynchronous Engine API (v2)
// ---------------------------------------------------------------------------

// Concurrent runtime types for real embeddings (wall-clock time, goroutine
// workers, sharded mediation engine); see the live package documentation.
type (
	// Engine is the asynchronous mediation front end: Submit returns a
	// *Ticket immediately, queries mediate on their consumer's shard loop
	// in submission order, and results are collected per ticket. Build it
	// with NewEngine and functional options.
	Engine = live.Engine
	// Ticket is the handle for one asynchronously submitted query:
	// Allocation blocks for the mediation outcome, Await/Done for the
	// per-worker results.
	Ticket = live.Ticket
	// EngineOption configures NewEngine (WithConcurrency, WithWindow, ...).
	EngineOption = live.Option
	// QueryOption configures one Engine submission (WithResults, ...).
	QueryOption = live.QueryOption
	// EngineStats is a point-in-time snapshot of the engine counters:
	// per-shard mediations/rejections/dispatch failures, mean candidate-set
	// sizes, queue depths, and participant counts.
	EngineStats = live.Stats
	// ShardStats is one mediation lane's counters within EngineStats.
	ShardStats = live.ShardStats
	// DispatchError is the typed dispatch failure: it matches ErrDispatch
	// with errors.Is and partitions the selection into the workers that
	// accepted the query (their results still arrive) and the undelivered
	// remainder a retry should target.
	DispatchError = live.DispatchError

	// LiveService is the blocking (v1) mediation front end sharing the
	// Engine's machinery: Submit/SubmitBatch block through hand-off and
	// deliver results on a caller-supplied channel.
	LiveService = live.Service
	// LiveWorker executes queries on its own goroutine.
	LiveWorker = live.Worker
	// LiveExecutor is the engine's dispatch contract; *LiveWorker (and
	// types embedding it) implement it.
	LiveExecutor = live.Executor
	// LiveResult is one completed execution.
	LiveResult = live.Result
	// LiveFuncConsumer adapts an intention function to Consumer.
	LiveFuncConsumer = live.FuncConsumer

	// LiveConfig assembles a sharded engine (shard count, per-shard
	// allocators, clock injection).
	//
	// Deprecated: the v1 struct-config surface, kept for one release.
	// Build engines with NewEngine and functional options instead; see
	// DESIGN.md §4 for the migration map.
	LiveConfig = live.Config
)

// Observability: the typed event stream replacing the v1 OnMediation hook.
type (
	// Observer receives engine lifecycle events (allocations, rejections,
	// dispatch failures, registration churn, satisfaction snapshots).
	// Embed NopObserver to implement a subset.
	Observer = event.Observer
	// NopObserver ignores every event; embed it for forward compatibility.
	NopObserver = event.Nop
	// ObserverFuncs adapts free functions to Observer; nil fields ignore
	// their event.
	ObserverFuncs = event.Funcs
	// SatisfactionSnapshot is a periodic sample of every participant's δs.
	SatisfactionSnapshot = event.SatisfactionSnapshot
	// Imputation reports one silent participant whose intention was
	// imputed from registry state during batched collection.
	Imputation = event.Imputation
	// PeerChange reports one cluster peer's health transition
	// (alive/suspect/down) as seen by the local node.
	PeerChange = event.PeerChange
	// ShedEvent reports one query rejected by admission control (deadline
	// infeasible, class queue full, or brownout) — a shed is never silent.
	ShedEvent = event.Shed
)

// MultiObserver fans events out to several observers in order.
func MultiObserver(obs ...Observer) Observer { return event.Multi(obs...) }

// ErrDispatch reports that an allocation succeeded but the query could not
// be fully delivered: a selected worker shut down mid-flight, its queue was
// full, or the whole selection unregistered before hand-off
// (ErrStaleSelection, which it then wraps; a done context is wrapped too).
// Transient and retryable, unlike ErrNoCandidates. Every dispatch failure
// is a *DispatchError, which names the workers that accepted (and keep the
// query) vs failed, so retries can target only the undelivered remainder.
var ErrDispatch = live.ErrDispatch

// ErrEngineClosed is reported by tickets submitted after Engine.Close.
var ErrEngineClosed = live.ErrEngineClosed

// AsDispatchError unwraps err to its *DispatchError, if it carries one.
func AsDispatchError(err error) (*DispatchError, bool) { return live.AsDispatchError(err) }

// ---------------------------------------------------------------------------
// QoS: admission control, class-aware scheduling, and load shedding
// ---------------------------------------------------------------------------

// Overload-survival types. A QoSSpec declares the engine's service classes
// (weights, optional strict priority, bounded queue depth, token-bucket
// admission rates); the shard queues become weighted-fair + earliest-
// deadline-first schedulers, infeasible or over-limit queries shed with a
// typed *ShedError and a ShedEvent instead of degrading everyone, and the
// tuner's brownout controller widens shedding under sustained pressure.
// See DESIGN.md §12.
type (
	// QoSSpec is the JSON-serializable overload policy: service classes
	// plus per-consumer admission rates. Embed it in a PolicySpec's qos
	// block to hot-swap it through Reconfigure.
	QoSSpec = qos.Spec
	// QoSClassSpec declares one service class (name, weight, priority,
	// max queue depth, class-wide admission rate/burst).
	QoSClassSpec = qos.ClassSpec
	// QoSStats is one shard scheduler's point-in-time ledger: per-class
	// depths, high-water marks, cumulative enqueued/dequeued/shed.
	QoSStats = qos.Stats
	// QoSClassStats is one class's slice of QoSStats.
	QoSClassStats = qos.ClassStats
	// QoSPressure is the aggregated overload signal the brownout
	// controller consumes (cumulative enqueued/shed, queue-wait p99).
	QoSPressure = qos.Pressure
	// QoSLimiter is the gateway-side token-bucket admission filter
	// (per-consumer and per-class).
	QoSLimiter = qos.Limiter
	// QoSDecision is one admission verdict, carrying the retry-after
	// hint for rejected submissions.
	QoSDecision = qos.Decision
	// ShedError is the typed load-shedding failure a shed ticket reports:
	// it matches ErrShed with errors.Is and carries the query, its class,
	// the shed reason, and the queue state that triggered it.
	ShedError = live.ShedError
)

// The built-in QoS class names (any spec may declare others).
const (
	// QoSInteractive is the latency-sensitive top class.
	QoSInteractive = qos.Interactive
	// QoSBatch is the throughput class.
	QoSBatch = qos.Batch
	// QoSBackground is the first class shed under pressure.
	QoSBackground = qos.Background
)

// Shed reasons carried by ShedError and ShedEvent.
const (
	// ShedDeadline: the deadline cannot be met at current queue depth.
	ShedDeadline = qos.ReasonDeadline
	// ShedQueueFull: the class queue is at its configured bound.
	ShedQueueFull = qos.ReasonQueueFull
	// ShedBrownout: the brownout level currently sheds this class.
	ShedBrownout = qos.ReasonBrownout
	// ShedRateLimit: a gateway token bucket rejected the submission.
	ShedRateLimit = qos.ReasonRateLimit
)

// ErrShed reports a query rejected by admission control rather than
// mediated (match with errors.Is; unwrap details with AsShedError).
var ErrShed = live.ErrShed

// AsShedError unwraps err to its *ShedError, if it carries one.
func AsShedError(err error) (*ShedError, bool) { return live.AsShedError(err) }

// DefaultQoSSpec returns the three-class default: interactive (weight 8,
// strict priority), batch (weight 3), background (weight 1).
func DefaultQoSSpec() QoSSpec { return qos.DefaultSpec() }

// NewQoSLimiter builds a token-bucket admission filter from spec; now is
// the clock in seconds (pass a fake for tests). A nil limiter admits
// everything.
func NewQoSLimiter(spec QoSSpec, now func() float64) *QoSLimiter {
	return qos.NewLimiter(spec, now)
}

// WithQoS installs the engine's overload-survival configuration: class-aware
// shard scheduling (weighted fair with strict-priority classes, EDF within a
// class) and load shedding with typed errors and events. Takes precedence
// over the construction policy's qos block.
func WithQoS(spec QoSSpec) EngineOption { return live.WithQoS(spec) }

// WithQoSClass queues one submission under the named QoS class; unknown
// names fold into the spec's default class.
func WithQoSClass(class string) QueryOption { return live.WithQoSClass(class) }

// WithDeadline gives one submission a completion deadline relative to
// submission time; a query whose deadline cannot be met — estimated from the
// shard's service-time EWMA and current queue depth — sheds immediately
// instead of waiting to fail.
func WithDeadline(d time.Duration) QueryOption { return live.WithDeadline(d) }

// NewEngine builds the asynchronous sharded mediation engine:
//
//	eng, err := sbqa.NewEngine(
//		sbqa.WithWindow(100),
//		sbqa.WithConcurrency(runtime.GOMAXPROCS(0)),
//		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
//			return sbqa.NewSbQA(sbqa.SbQAConfig{Seed: uint64(shard) + 1})
//		}),
//	)
//	defer eng.Close()
//	t := eng.Submit(ctx, sbqa.Query{Consumer: 0, N: 1, Work: 2})
//	alloc, err := t.Allocation()     // mediation outcome
//	results, err := t.Await(ctx)     // per-worker results
//
// With one shard an allocator suffices (WithAllocator); with several, a
// factory is required because allocators hold per-shard sampling state.
func NewEngine(opts ...EngineOption) (*Engine, error) { return live.NewEngine(opts...) }

// WithWindow sets the satisfaction memory length k.
func WithWindow(k int) EngineOption { return live.WithWindow(k) }

// WithConcurrency sets the number of mediator shards; queries route to
// shards by consumer hash, so one consumer's stream stays serialized while
// distinct consumers mediate in parallel.
func WithConcurrency(n int) EngineOption { return live.WithConcurrency(n) }

// WithAllocator sets the allocation technique of a single-shard engine.
func WithAllocator(a Allocator) EngineOption { return live.WithAllocator(a) }

// WithAllocatorFactory supplies one (seeded) allocator per shard; required
// when the concurrency is above 1.
func WithAllocatorFactory(f func(shard int) Allocator) EngineOption {
	return live.WithAllocatorFactory(f)
}

// WithAnalyzeBest measures allocation satisfaction against the whole
// candidate set (the true optimum) at O(|P_q|) intention calls per query.
func WithAnalyzeBest(on bool) EngineOption { return live.WithAnalyzeBest(on) }

// WithClock injects the engine clock (seconds on the mediation time axis);
// deterministic embeddings pass a fake clock.
func WithClock(now func() float64) EngineOption { return live.WithClock(now) }

// WithObserver installs the engine's typed event stream; see Observer.
func WithObserver(o Observer) EngineOption { return live.WithObserver(o) }

// WithQueueDepth bounds each shard's asynchronous submission queue
// (backpressure: full queues block Submit until the shard drains).
func WithQueueDepth(n int) EngineOption { return live.WithQueueDepth(n) }

// WithSnapshotInterval emits OnSatisfactionSnapshot to the observer every
// interval of wall-clock time.
func WithSnapshotInterval(d time.Duration) EngineOption { return live.WithSnapshotInterval(d) }

// WithParticipantDeadline bounds each context-aware participant call during
// batched intention collection; a participant that misses it is imputed
// from registry state instead of stalling the mediation.
func WithParticipantDeadline(d time.Duration) EngineOption {
	return live.WithParticipantDeadline(d)
}

// WithResults forwards one submission's per-worker results to ch in
// addition to collecting them on the ticket.
func WithResults(ch chan<- LiveResult) QueryOption { return live.WithResults(ch) }

// FireAndForget disables a ticket's result collection (the v1 contract:
// workers deliver straight to the WithResults channel, the ticket is done
// at hand-off).
func FireAndForget() QueryOption { return live.FireAndForget() }

// NewLiveService returns a single-shard concurrent mediation service with
// satisfaction window k — the serialized blocking front end; use NewEngine
// for parallel mediation across shards and ticket-based submission.
func NewLiveService(a Allocator, window int) *LiveService { return live.NewService(a, window) }

// NewLiveEngine builds a sharded mediation engine behind the blocking v1
// surface. With cfg.Concurrency > 1 queries from distinct consumers mediate
// in parallel (one consumer's stream stays serialized on its home shard);
// cfg.NewAllocator must then supply one allocator per shard.
//
// Deprecated: build the asynchronous Engine with NewEngine and functional
// options; its Service method exposes this same blocking surface. Kept for
// one release; see DESIGN.md §4.
func NewLiveEngine(cfg LiveConfig) (*LiveService, error) { return live.NewServiceWithConfig(cfg) }

// NewLiveWorker starts a worker goroutine with the given capacity (work
// units per real second) and intention function.
func NewLiveWorker(id ProviderID, capacity float64, queueCap int, intentionFn func(Query) Intention) (*LiveWorker, error) {
	return live.NewWorker(id, capacity, queueCap, intentionFn)
}

// ---------------------------------------------------------------------------
// Policy control plane: declarative policies, hot reconfiguration, autotuning
// ---------------------------------------------------------------------------

// Declarative policy types. A PolicySpec names an allocation technique and
// carries every tunable the paper exposes; the engine consumes it through
// WithPolicy and hot-swaps it at mediation boundaries through
// Engine.Reconfigure. The Tuner closes the self-adaptation loop
// autonomously (see WithTuner).
type (
	// PolicySpec is a named, JSON-serializable allocation policy:
	// allocator kind plus parameters (KnBest k/kn, ω mode, ε, seed,
	// participant deadline). Build it by hand or parse it with
	// ParsePolicy; validate with its Validate method.
	PolicySpec = policy.Spec
	// PolicyKind names an allocation technique in a PolicySpec.
	PolicyKind = policy.Kind
	// PolicyOmegaMode selects fixed vs satisfaction-adaptive ω.
	PolicyOmegaMode = policy.OmegaMode
	// PolicyDuration is a time.Duration that marshals as "250ms"-style
	// strings in policy JSON.
	PolicyDuration = policy.Duration
	// PolicyChange is the typed event emitted when Reconfigure accepts a
	// new policy generation.
	PolicyChange = event.PolicyChange
	// Tuner is the autonomic policy controller: a MAPE-K loop from the
	// satisfaction snapshot stream back into bounded Reconfigure steps.
	Tuner = policy.Tuner
	// TunerConfig bounds the tuner (thresholds, hysteresis, min interval,
	// hard parameter caps).
	TunerConfig = policy.TunerConfig
	// TunerStats snapshots the tuner's counters.
	TunerStats = policy.TunerStats
	// Reconfigurer is the control surface a Tuner drives; *Engine and
	// *LiveService implement it.
	Reconfigurer = policy.Reconfigurer
)

// The allocator kinds every PolicySpec may name.
const (
	// PolicySbQA runs the satisfaction-based allocator (the only tunable
	// kind).
	PolicySbQA = policy.SbQA
	// PolicyCapacity runs the capacity-based baseline.
	PolicyCapacity = policy.Capacity
	// PolicyEconomic runs the Mariposa-style sealed-bid baseline.
	PolicyEconomic = policy.Economic
	// PolicyRandom runs the uniform-random control.
	PolicyRandom = policy.Random
	// PolicyRoundRobin runs the rotating control.
	PolicyRoundRobin = policy.RoundRobin
	// PolicyShareBased runs BOINC-native resource-share dispatching.
	PolicyShareBased = policy.ShareBased
)

// Omega modes for PolicySpec.OmegaMode.
const (
	// PolicyOmegaAdaptive selects the satisfaction-adaptive Equation 2.
	PolicyOmegaAdaptive = policy.OmegaAdaptive
	// PolicyOmegaFixed pins ω to PolicySpec.Omega.
	PolicyOmegaFixed = policy.OmegaFixed
)

// DefaultPolicy returns the demo default policy: SbQA with KnBest(20, 10),
// adaptive ω, ε = 1, seed 1.
func DefaultPolicy() PolicySpec { return policy.DefaultSpec() }

// ParsePolicy decodes a JSON policy spec, rejecting unknown fields.
func ParsePolicy(data []byte) (PolicySpec, error) { return policy.Parse(data) }

// PolicyKinds lists every registered allocator kind.
func PolicyKinds() []PolicyKind { return policy.Kinds() }

// WithPolicy supplies the engine's allocation policy declaratively; the
// spec builds one allocator per shard and is hot-swappable afterwards via
// Engine.Reconfigure. Mutually exclusive with WithAllocator and
// WithAllocatorFactory.
func WithPolicy(spec PolicySpec) EngineOption { return live.WithPolicy(spec) }

// WithTuner runs an autonomic policy tuner bound to the engine (requires
// WithPolicy and WithSnapshotInterval): satisfaction snapshots feed a
// MAPE-K loop that widens kn under consumer starvation and nudges a fixed ω
// toward the adaptive rule under consumer/provider imbalance, under
// hysteresis, a minimum interval between actions, and hard bounds.
func WithTuner(cfg TunerConfig) EngineOption { return live.WithTuner(cfg) }

// NewTuner returns a standalone autonomic tuner driving target (any
// Reconfigurer — typically an *Engine). Feed it satisfaction snapshots via
// its Observer (install with WithObserver/MultiObserver) or Observe, Start
// it, and Close it on shutdown. Engines built with WithTuner do this wiring
// themselves.
func NewTuner(target Reconfigurer, cfg TunerConfig) *Tuner { return policy.NewTuner(target, cfg) }

// ---------------------------------------------------------------------------
// Durability: snapshot + journal persistence for the adaptation state
// ---------------------------------------------------------------------------

// Durable adaptation state types. WithPersistence makes everything SbQA has
// learned — satisfaction windows, the active policy generation, allocator
// sampling streams, the query ID counter — survive restarts: restore happens
// in NewEngine, every state-mutating event is journaled asynchronously, and
// Close flushes a final snapshot so a graceful restart resumes with
// byte-identical allocations.
type (
	// PersistOption tunes the durability store (sync cadence, segment
	// size, queue depth, compaction).
	PersistOption = persist.Option
	// PersistenceStats is the durability counter block of EngineStats
	// (EngineStats.Persistence; nil without WithPersistence).
	PersistenceStats = persist.Stats
	// RestoreStats describes what a boot-time restore recovered.
	RestoreStats = persist.RestoreStats
)

// ErrPersistCorrupt marks snapshot or journal data whose framing or
// checksum does not hold (match with errors.Is).
var ErrPersistCorrupt = persist.ErrCorrupt

// WithPersistence makes the engine's adaptation state durable under dir.
// After a graceful Close the next NewEngine with the same directory resumes
// byte-identically (satisfaction memory, policy generation, sampling
// streams, query IDs); after a crash, recovery loses at most the last
// unsynced journal batch. Participants themselves are runtime objects and
// must be re-registered on boot. See DESIGN.md §8.
func WithPersistence(dir string, opts ...PersistOption) EngineOption {
	return live.WithPersistence(dir, opts...)
}

// PersistSyncEvery sets the journal fsync cadence: one fsync per n appended
// records (1 = every record; default 64). The crash-loss bound.
func PersistSyncEvery(n int) PersistOption { return persist.SyncEvery(n) }

// PersistSegmentBytes sets the journal segment rotation threshold (default
// 4 MiB).
func PersistSegmentBytes(n int64) PersistOption { return persist.SegmentBytes(n) }

// PersistQueueDepth bounds the asynchronous recorder queue (default 4096);
// overload drops events (counted in PersistenceStats.RecordsDropped) rather
// than blocking a mediation.
func PersistQueueDepth(n int) PersistOption { return persist.QueueDepth(n) }

// PersistCompactAfterSegments sets how many sealed journal segments
// accumulate before background compaction folds them into a fresh snapshot
// (default 4).
func PersistCompactAfterSegments(n int) PersistOption { return persist.CompactAfterSegments(n) }

// PersistCompactInterval sets the cadence of the background compaction
// check (default 30s).
func PersistCompactInterval(d time.Duration) PersistOption { return persist.CompactInterval(d) }

// ---------------------------------------------------------------------------
// Cluster: multi-node mediation with consistent-hash routing and WAL-shipped
// satisfaction replication
// ---------------------------------------------------------------------------

// Cluster types. N sbqad daemons (or embeddings) form a mediation cluster
// from a static peer list: a consistent-hash ring over consumer IDs decides
// which node owns each consumer, heartbeats track peer health and shrink
// the routing ring when a node dies, and the journal replicator ships
// sealed WAL segments to ring followers so a dead node's consumers arrive
// at their new owner with satisfaction memory intact. There is no leader
// and no consensus; see DESIGN.md §10.
type (
	// ClusterPeer identifies one cluster member (node ID + base URL).
	ClusterPeer = cluster.Peer
	// ClusterConfig assembles a cluster node (self, peers, heartbeat and
	// replication cadence, durability hookup).
	ClusterConfig = cluster.Config
	// ClusterNode is one member's view of the cluster: rings, peer
	// health, replication, failover replay.
	ClusterNode = cluster.Node
	// ClusterRing is the immutable consistent-hash ring itself.
	ClusterRing = cluster.Ring
	// ClusterStatus is the /v1/cluster control-surface payload.
	ClusterStatus = cluster.Status
	// ClusterPeerStatus is one peer's health and replication position.
	ClusterPeerStatus = cluster.PeerStatus
	// ClusterSegmentSource is the journal slice the replicator consumes;
	// Engine.PersistStore satisfies it.
	ClusterSegmentSource = cluster.SegmentSource
)

// Intra-cluster HTTP contract: the paths a clustered daemon mounts and
// probes, and the loop-prevention header on forwarded requests.
const (
	// ClusterHealthzPath is probed by peers' heartbeats.
	ClusterHealthzPath = cluster.HealthzPath
	// ClusterSegmentsPath serves WAL replication (GET inventory, POST one
	// raw segment).
	ClusterSegmentsPath = cluster.SegmentsPath
	// ClusterForwardPath accepts query submissions forwarded from a
	// non-owner gateway; ClusterForwardConsumersPath the same for
	// consumer registration.
	ClusterForwardPath          = cluster.ForwardPath
	ClusterForwardConsumersPath = cluster.ForwardConsumersPath
	// ClusterForwardedFromHeader carries the sender's node ID on a
	// forwarded request: one hop only, a receiver that still disagrees
	// about ownership answers a typed error instead of re-forwarding.
	ClusterForwardedFromHeader = cluster.ForwardedFromHeader
)

// Typed cluster routing failures (match with errors.Is).
var (
	// ErrClusterNotOwner: the consumer belongs to another node; the
	// gateway forwards rather than serving locally.
	ErrClusterNotOwner = cluster.ErrNotOwner
	// ErrClusterPeerDown: the consumer's owner is known-dead and not yet
	// re-absorbed.
	ErrClusterPeerDown = cluster.ErrPeerDown
)

// NewClusterNode validates cfg and builds an inert cluster node; call its
// Start to launch the heartbeat and replication loops and Close to stop
// them. A node with no peers is valid and routes everything locally.
func NewClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return cluster.New(cfg) }

// NewClusterRing builds a standalone consistent-hash ring (vnodes virtual
// points per node; <= 0 selects the default). Ownership is stable across
// processes, Go versions, and node-list orderings.
func NewClusterRing(nodes []string, vnodes int) *ClusterRing { return cluster.NewRing(nodes, vnodes) }

// ---------------------------------------------------------------------------
// Topic-based interests and the AdWords world (§I motivation)
// ---------------------------------------------------------------------------

// Content-based interest types: queries carry topic vectors, participants
// hold (possibly campaign-boosted) interest vectors, preference = cosine.
type (
	// TopicVector is a dense topic weight vector.
	TopicVector = topics.Vector
	// TopicInterests is a dynamic interest profile with campaigns.
	TopicInterests = topics.Interests
	// TopicCampaign is a temporary interest boost with a deadline.
	TopicCampaign = topics.Campaign
	// AdWorld is the keyword-advertising simulation world.
	AdWorld = adwords.World
	// AdWorldConfig sizes an AdWorld.
	AdWorldConfig = adwords.Config
	// Advertiser is a provider bidding for ad placements.
	Advertiser = adwords.Advertiser
)

// TopicPreference maps interest/query similarity onto an intention.
func TopicPreference(interest, query TopicVector) Intention {
	return topics.Preference(interest, query)
}

// NewTopicInterests returns a dynamic interest profile with the given base.
func NewTopicInterests(base TopicVector) *TopicInterests { return topics.NewInterests(base) }

// NewAdWorld builds a keyword-advertising world running the given
// allocation technique.
func NewAdWorld(a Allocator, cfg AdWorldConfig) (*AdWorld, error) {
	return adwords.NewWorld(a, cfg)
}

// ---------------------------------------------------------------------------
// Workload lab (deterministic traffic simulator + hypothesis harness)
// ---------------------------------------------------------------------------

// Workload-lab types: composable synthetic worlds (classes, adversaries,
// churn, flash crowds) run against the real engine under the virtual
// clock, reported deterministically (same seed ⇒ byte-identical Encode).
type (
	// LabScenario is one reproducible experiment: workload × policy ×
	// duration × seed.
	LabScenario = lab.Scenario
	// LabWorkload composes classes, adversaries, churn and flash crowds.
	LabWorkload = lab.Workload
	// LabClassSpec sizes one query class and its population.
	LabClassSpec = lab.ClassSpec
	// LabArrivalSpec declares a class's arrival process.
	LabArrivalSpec = lab.ArrivalSpec
	// LabCostSpec declares a class's query-cost distribution.
	LabCostSpec = lab.CostSpec
	// LabAdversarySpec sets the adversarial population fractions.
	LabAdversarySpec = lab.AdversarySpec
	// LabReport is the typed, deterministically serializable outcome.
	LabReport = lab.Report
	// LabHypothesis is a falsifiable claim judged from scenario reports.
	LabHypothesis = lab.Hypothesis
	// LabOutcome is a judged verdict with its quantitative detail.
	LabOutcome = lab.Outcome
	// LabScale selects full (findings) or short (CI smoke) scenario sizes.
	LabScale = lab.Scale
)

// Lab scales.
const (
	LabFull  = lab.Full
	LabShort = lab.Short
)

// RunLabScenario executes one scenario against the real mediation engine
// under the virtual clock and returns its report.
func RunLabScenario(sc LabScenario) (*LabReport, error) { return lab.Run(sc) }

// RegisterLabHypothesis adds a hypothesis to the global catalog.
func RegisterLabHypothesis(h LabHypothesis) { lab.Register(h) }

// LabHypotheses returns the registered catalog sorted by ID.
func LabHypotheses() []LabHypothesis { return lab.Registered() }

// RenderLabFindings evaluates the whole catalog at the given scale and
// renders the deterministic findings document (see hypotheses/FINDINGS.md).
func RenderLabFindings(scale LabScale) (string, error) { return lab.RenderFindings(scale) }

// RunAllScenarios executes Scenarios 1-7 in order.
func RunAllScenarios(opt ExperimentOptions) ([]*ScenarioResult, error) {
	return experiments.RunAll(opt)
}

// RenderScenarios writes every scenario's tables and notes to w.
func RenderScenarios(w io.Writer, results []*ScenarioResult) error {
	for _, r := range results {
		if err := r.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Tracing and explainability: per-query spans, explain records, the flight
// recorder (DESIGN.md §13)
// ---------------------------------------------------------------------------

type (
	// TraceID is a 128-bit trace identifier (W3C trace-id).
	TraceID = model.TraceID
	// TraceContext is the per-query trace stamp: identity, parent span, and
	// the sampling decision every instrumentation site gates on.
	TraceContext = model.TraceContext
	// TraceRecorder owns sampling, active traces, the flight-recorder ring,
	// and the per-stage latency histograms; see Engine.Tracer.
	TraceRecorder = trace.Recorder
	// TraceConfig sizes a recorder (sampling rate, ring capacity, span cap).
	TraceConfig = trace.Config
	// TraceSpan is one timed pipeline stage of a trace.
	TraceSpan = trace.Span
	// TraceView is an independent copy of one trace, safe to hold after the
	// underlying pooled record is recycled.
	TraceView = trace.TraceView
	// TraceSpanView is one span of a TraceView.
	TraceSpanView = trace.SpanView
	// TraceStats is the recorder's counter block.
	TraceStats = trace.Stats
	// StageSnapshot is one pipeline stage's latency histogram in cumulative
	// Prometheus form.
	StageSnapshot = trace.StageSnapshot
	// Explain is the allocation explain record: the ranked per-provider
	// score breakdown (δs inputs, ω, intentions, imputed flags) of one
	// mediation.
	Explain = model.Explain
	// ExplainEntry is one ranked candidate row of an Explain.
	ExplainEntry = model.ExplainEntry
	// ExplainView is the wire form of an Explain.
	ExplainView = trace.ExplainView
)

// The pipeline stage names spans carry.
const (
	StageAdmission   = trace.StageAdmission
	StageQueue       = trace.StageQueue
	StageFanout      = trace.StageFanout
	StageParticipant = trace.StageParticipant
	StageImpute      = trace.StageImpute
	StageScore       = trace.StageScore
	StageDispatch    = trace.StageDispatch
	StageForward     = trace.StageForward
)

// TraceparentHeader is the W3C propagation header name used on cluster
// forwards and participant webhooks.
const TraceparentHeader = trace.Header

// WithTracing enables the engine's mediation tracer: sampled queries record
// one span per pipeline stage plus an allocation explain record into a
// bounded in-memory ring readable through Engine.Tracer (and the daemon's
// /v1/queries/{id}/trace and /v1/debug endpoints). sample is the traced
// fraction (deterministic 1-in-N; 1 traces everything, <=0 disables);
// buffer is the ring capacity in finished traces (<=0 means 256). Unsampled
// queries pay one predictable branch per site and zero allocations.
func WithTracing(sample float64, buffer int) EngineOption {
	return live.WithTracing(sample, buffer)
}

// ParseTraceparent decodes a W3C traceparent header; ok is false for
// unknown versions, malformed fields, and the all-zero trace ID.
func ParseTraceparent(s string) (TraceContext, bool) { return trace.Parse(s) }

// FormatTraceparent renders a trace context in W3C traceparent form.
func FormatTraceparent(tc TraceContext) string { return trace.Format(tc) }

// TraceNow returns nanoseconds on the process-local monotonic clock all
// spans share.
func TraceNow() int64 { return trace.Now() }

// TraceStageBuckets returns the stage histograms' explicit upper bounds in
// seconds (the `le` labels of sbqa_stage_seconds).
func TraceStageBuckets() []float64 { return trace.StageBuckets[:] }
