package sbqa

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: build an allocator, a mediator,
	// register participants, mediate a query.
	allocator := NewSbQA(SbQAConfig{})
	med := NewMediator(allocator, MediatorConfig{Window: 50})

	med.RegisterConsumer(consumerStub{id: 0})
	for i := 0; i < 5; i++ {
		med.RegisterProvider(providerStub{id: ProviderID(i), pi: Intention(0.2 * float64(i+1))})
	}

	a, err := med.Mediate(context.Background(), 0, Query{Consumer: 0, N: 2, Work: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != 2 {
		t.Fatalf("selected %d providers", len(a.Selected))
	}
	if s := med.Registry().ConsumerSatisfaction(0); s <= 0 {
		t.Errorf("consumer satisfaction %v", s)
	}
}

type consumerStub struct{ id ConsumerID }

func (c consumerStub) ConsumerID() ConsumerID { return c.id }
func (c consumerStub) Intention(Query, ProviderSnapshot) Intention {
	return 0.5
}

type providerStub struct {
	id ProviderID
	pi Intention
}

func (p providerStub) ProviderID() ProviderID { return p.id }
func (p providerStub) Snapshot(float64) ProviderSnapshot {
	return ProviderSnapshot{ID: p.id, Capacity: 1}
}
func (p providerStub) CanPerform(Query) bool     { return true }
func (p providerStub) Intention(Query) Intention { return p.pi }
func (p providerStub) Bid(q Query) float64       { return q.Work }

func TestPublicOmega(t *testing.T) {
	if got := Omega(0.5, 0.5); got != 0.5 {
		t.Errorf("Omega = %v", got)
	}
	if got := Omega(1, 0); got != 1 {
		t.Errorf("Omega = %v", got)
	}
}

func TestPublicScorer(t *testing.T) {
	s := NewScorer()
	if got := s.Score(1, 1, 0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("Score = %v", got)
	}
	if got := s.Score(-1, -1, 0.5); got >= 0 {
		t.Errorf("Score = %v, want negative", got)
	}
}

func TestPublicTrackers(t *testing.T) {
	ct := NewConsumerTracker(10)
	ct.Record(1, 1, 1)
	if ct.Satisfaction() != 1 {
		t.Error("consumer tracker broken")
	}
	pt := NewProviderTracker(10)
	pt.Record(1, true)
	if pt.Satisfaction() != 1 {
		t.Error("provider tracker broken")
	}
	reg := NewSatisfactionRegistry(10)
	if reg.ConsumerSatisfaction(3) != 0.5 {
		t.Error("registry broken")
	}
}

func TestPublicAllocatorConstructors(t *testing.T) {
	names := map[string]Allocator{
		"Capacity":   NewCapacityAllocator(),
		"Economic":   NewEconomicAllocator(1),
		"Random":     NewRandomAllocator(2),
		"RoundRobin": NewRoundRobinAllocator(),
	}
	for want, a := range names {
		if a.Name() != want {
			t.Errorf("Name = %q, want %q", a.Name(), want)
		}
	}
	if NewSbQA(SbQAConfig{}).Name() != "SbQA" {
		t.Error("SbQA name wrong")
	}
	fixed := NewSbQA(SbQAConfig{Omega: FixedOmega(0.5)})
	if !strings.Contains(fixed.Name(), "0.5") {
		t.Errorf("fixed-omega name = %q", fixed.Name())
	}
	if _, err := NewSbQAChecked(SbQAConfig{KnBest: KnBestParams{K: 1, Kn: 5}}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPublicWorldRun(t *testing.T) {
	cfg := DefaultWorldConfig(30, 3)
	cfg.Duration = 200
	cfg.Mode = Captive
	w, err := NewWorld(NewSbQA(SbQAConfig{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
	if r.Technique != "SbQA" {
		t.Errorf("technique = %q", r.Technique)
	}
}

func TestPublicScenarioAndRender(t *testing.T) {
	res, err := Scenario1(ExperimentOptions{Volunteers: 25, Duration: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderScenarios(&sb, []*ScenarioResult{res}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Scenario 1") {
		t.Error("render missing scenario heading")
	}
}

func TestPublicErrNoCandidates(t *testing.T) {
	med := NewMediator(NewCapacityAllocator(), MediatorConfig{Window: 10})
	med.RegisterConsumer(consumerStub{id: 0})
	if _, err := med.Mediate(context.Background(), 0, Query{Consumer: 0, N: 1, Work: 1}); err == nil {
		t.Error("want ErrNoCandidates")
	}
}

func TestPublicLabScenario(t *testing.T) {
	// The lab through the facade: a tiny world, run twice, byte-identical.
	sc := LabScenario{
		Name:     "facade-smoke",
		Seed:     9,
		Duration: 40,
		Policy:   PolicySpec{Kind: PolicySbQA, K: 6, Kn: 2, Seed: 9},
		Workload: LabWorkload{
			Classes: []LabClassSpec{{
				Name: "only", Consumers: 3, Providers: 12,
				Arrival: LabArrivalSpec{Kind: "poisson", Rate: 3},
				Cost:    LabCostSpec{Kind: "exp", Mean: 1.5},
			}},
		},
	}
	r1, err := RunLabScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunLabScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Issued == 0 || r1.Completed == 0 {
		t.Fatalf("empty run: %+v", r1)
	}
	h1, _ := r1.Hash()
	h2, _ := r2.Hash()
	if h1 == "" || h1 != h2 {
		t.Fatalf("lab determinism broken through facade: %q vs %q", h1, h2)
	}
	if LabFull.String() != "full" || LabShort.String() != "short" {
		t.Fatalf("scale strings: %q/%q", LabFull, LabShort)
	}
}
