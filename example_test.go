package sbqa_test

import (
	"context"
	"fmt"

	"sbqa"
)

// exampleConsumer wants provider 1 and dislikes provider 0.
type exampleConsumer struct{}

func (exampleConsumer) ConsumerID() sbqa.ConsumerID { return 0 }
func (exampleConsumer) Intention(_ sbqa.Query, snap sbqa.ProviderSnapshot) sbqa.Intention {
	if snap.ID == 1 {
		return 0.9
	}
	return -0.4
}

// exampleProvider wants every query equally.
type exampleProvider struct{ id sbqa.ProviderID }

func (p exampleProvider) ProviderID() sbqa.ProviderID { return p.id }
func (p exampleProvider) Snapshot(float64) sbqa.ProviderSnapshot {
	return sbqa.ProviderSnapshot{ID: p.id, Capacity: 1}
}
func (p exampleProvider) CanPerform(sbqa.Query) bool          { return true }
func (p exampleProvider) Intention(sbqa.Query) sbqa.Intention { return 0.5 }
func (p exampleProvider) Bid(q sbqa.Query) float64            { return q.Work }

// Example shows the minimal mediation flow: one consumer, two providers,
// one query allocated by the satisfaction-based process.
func Example() {
	med := sbqa.NewMediator(sbqa.NewSbQA(sbqa.SbQAConfig{}), sbqa.MediatorConfig{Window: 10})
	med.RegisterConsumer(exampleConsumer{})
	med.RegisterProvider(exampleProvider{id: 0})
	med.RegisterProvider(exampleProvider{id: 1})

	a, err := med.Mediate(context.Background(), 0, sbqa.Query{Consumer: 0, N: 1, Work: 5})
	if err != nil {
		fmt.Println("mediation failed:", err)
		return
	}
	fmt.Println("allocated to provider", a.Selected[0])
	// Output: allocated to provider 1
}

// ExampleOmega shows the adaptive balance of Equation 2: the less satisfied
// side gets the louder voice.
func ExampleOmega() {
	fmt.Printf("%.2f\n", sbqa.Omega(0.5, 0.5)) // balanced
	fmt.Printf("%.2f\n", sbqa.Omega(0.9, 0.1)) // starved provider: its intention dominates
	fmt.Printf("%.2f\n", sbqa.Omega(0.1, 0.9)) // starved consumer: its intention dominates
	// Output:
	// 0.50
	// 0.90
	// 0.10
}

// ExampleScorer shows Definition 3: mutual interest scores positively,
// any objection routes to the negative branch.
func ExampleScorer() {
	s := sbqa.NewScorer()
	fmt.Printf("%.2f\n", s.Score(1, 1, 0.5))
	fmt.Printf("%.2f\n", s.Score(0.25, 1, 0.5))
	fmt.Printf("%.2f\n", s.Score(-1, -1, 0.5))
	// Output:
	// 1.00
	// 0.50
	// -3.00
}

// ExampleNewProviderTracker shows Definition 2, including its zero clause:
// a provider that performed none of the proposed queries is maximally
// dissatisfied.
func ExampleNewProviderTracker() {
	tr := sbqa.NewProviderTracker(10)
	tr.Record(0.8, false) // proposed a liked query, did not get it
	fmt.Printf("%.2f\n", tr.Satisfaction())
	tr.Record(0.8, true) // performs one it likes: unit (0.8+1)/2
	fmt.Printf("%.2f\n", tr.Satisfaction())
	// Output:
	// 0.00
	// 0.90
}

// ExampleNewWorld runs a miniature BOINC world under SbQA and prints
// whether any volunteer left.
func ExampleNewWorld() {
	cfg := sbqa.DefaultWorldConfig(30, 1)
	cfg.Duration = 300
	cfg.Mode = sbqa.Autonomous
	w, err := sbqa.NewWorld(sbqa.NewSbQA(sbqa.SbQAConfig{}), cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	r := w.Run()
	fmt.Println("departures:", r.ProvidersLeft)
	// Output: departures: 2
}
