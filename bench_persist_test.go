// Benchmarks of the durability subsystem (internal/persist): journal append
// throughput, snapshot encoding over a million-participant registry, and
// the live engine's mediation path with persistence enabled (the recorder
// overhead the <10% acceptance gate bounds).
package sbqa

import (
	"context"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sbqa/internal/model"
	"sbqa/internal/persist"
	"sbqa/internal/policy"
	"sbqa/internal/satisfaction"
)

// benchOutcomeRecord is a representative journal record: a kn=10 proposal
// with intentions, two selected.
func benchOutcomeRecord(qid int64) *persist.Record {
	o := persist.OutcomeRecord{QueryID: qid, Consumer: model.ConsumerID(qid % 64), N: 2}
	for p := 0; p < 10; p++ {
		o.Proposed = append(o.Proposed, model.ProviderID(p))
		o.CI = append(o.CI, model.Intention(float64(p)/10-0.4))
		o.PI = append(o.PI, model.Intention(float64(p)/12-0.3))
		o.Selected = append(o.Selected, p < 2)
	}
	return &persist.Record{Type: persist.RecordOutcome, Outcome: o}
}

// BenchmarkJournalAppend measures one journal record append on the default
// fsync cadence (the amortized hot-path cost the recorder pays per
// mediation outcome).
func BenchmarkJournalAppend(b *testing.B) {
	st, err := persist.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Restore(satisfaction.NewRegistry(satisfaction.DefaultWindow)); err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	rec := benchOutcomeRecord(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRegistry1M is the lazily built million-participant registry shared
// by the snapshot benches (500k consumers + 500k providers, one interaction
// each, small windows — the realistic shape of a huge mostly-cold
// population).
var benchRegistry1M = sync.OnceValue(func() *satisfaction.Registry {
	const half = 500_000
	reg := satisfaction.NewRegistry(4)
	for i := 0; i < half; i++ {
		reg.Consumer(model.ConsumerID(i)).Record(float64(i%10)/9.3, 0.8, 0.5)
		reg.Provider(model.ProviderID(i)).Record(model.Intention(float64(i%7)/3.5-1), i%2 == 0)
	}
	return reg
})

// BenchmarkSnapshotRegistry measures capturing and encoding a full snapshot
// of a 1M-participant registry (the stop-the-world portion of a compaction
// is the capture alone; encoding streams outside the locks).
func BenchmarkSnapshotRegistry(b *testing.B) {
	reg := benchRegistry1M()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, ps := persist.CaptureRegistry(reg)
		snap := &persist.Snapshot{
			FirstSegment: uint64(i + 1),
			NextQueryID:  int64(i),
			Window:       4,
			Consumers:    cs,
			Providers:    ps,
		}
		if err := persist.EncodeSnapshot(io.Discard, snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1_000_000, "participants/op")
}

// BenchmarkLiveEngineParallelPersist is BenchmarkLiveEngineParallel with
// persistence enabled: same sharded parallel load, every mediation outcome
// additionally journaled through the async recorder. The delta against the
// plain bench is the durability overhead; the benchgate pins it under 10%.
func BenchmarkLiveEngineParallelPersist(b *testing.B) {
	const providers = 200
	maxProcs := runtime.GOMAXPROCS(0)
	eng, err := NewEngine(
		WithWindow(100),
		WithConcurrency(maxProcs),
		WithPolicy(policy.Spec{Name: "bench", Kind: policy.SbQA, K: 20, Kn: 10, Seed: 1}),
		WithPersistence(b.TempDir()),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	svc := eng.Service()
	for i := 0; i < providers; i++ {
		svc.RegisterProvider(providerStub{id: ProviderID(i), pi: Intention(float64(i%9)/9 - 0.3)})
	}
	for c := 0; c < maxProcs*4; c++ {
		c := c
		svc.RegisterConsumer(LiveFuncConsumer{ID: ConsumerID(c), Fn: func(q Query, snap ProviderSnapshot) Intention {
			return Intention(float64((int(snap.ID)+c)%7)/7 - 0.2)
		}})
	}
	var nextConsumer atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := ConsumerID(nextConsumer.Add(1) - 1)
		q := Query{Consumer: c, N: 2, Work: 10}
		for pb.Next() {
			if _, err := svc.Submit(context.Background(), q, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if dropped := eng.Stats().Persistence.RecordsDropped; dropped > 0 {
		b.ReportMetric(float64(dropped), "dropped/run")
	}
}
