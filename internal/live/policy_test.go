package live

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sbqa/internal/event"
	"sbqa/internal/model"
	"sbqa/internal/policy"
)

// sbqaSpec returns a small SbQA policy suited to the 10-provider fixtures.
func sbqaSpec(seed uint64) policy.Spec {
	return policy.Spec{Kind: policy.SbQA, K: 6, Kn: 3, Seed: seed}
}

func TestServiceFromPolicySpec(t *testing.T) {
	svc, err := NewServiceWithConfig(Config{Window: 20, Policy: func() *policy.Spec { s := sbqaSpec(42); return &s }()})
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := svc.Policy()
	if !ok {
		t.Fatal("Policy() reported no policy on a policy-built service")
	}
	if spec.Kind != policy.SbQA || spec.K != 6 || spec.Kn != 3 {
		t.Fatalf("Policy() = %+v", spec)
	}
	// Normalization filled the defaults in.
	if spec.OmegaMode != policy.OmegaAdaptive || spec.Epsilon == 0 {
		t.Fatalf("stored spec not normalized: %+v", spec)
	}
	if gen := svc.PolicyGeneration(); gen != 0 {
		t.Fatalf("generation = %d, want 0 at construction", gen)
	}
}

// TestPolicyBuiltEngineMatchesAllocatorBuilt: an engine built from a policy
// spec must allocate byte-identically to one built from the equivalent
// hand-constructed allocator (the spec replaces constructor plumbing, it
// does not change semantics).
func TestPolicyBuiltEngineMatchesAllocatorBuilt(t *testing.T) {
	register := func(svc *Service) {
		for c := 0; c < 3; c++ {
			id := model.ConsumerID(c)
			svc.RegisterConsumer(FuncConsumer{ID: id, Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
				return model.Intention(float64((int(snap.ID)+int(id))%5)/5 - 0.2)
			}})
		}
		for i := 0; i < 10; i++ {
			svc.RegisterProvider(&constProvider{
				id: model.ProviderID(i), pi: model.Intention(float64(i%7)/7 - 0.3), util: float64(i%4) / 4,
			})
		}
	}
	now := func() float64 { return 1 }
	ref, err := NewServiceWithConfig(Config{Window: 30, Allocator: sbqaAllocator(42), NowFn: now})
	if err != nil {
		t.Fatal(err)
	}
	spec := sbqaSpec(42)
	got, err := NewServiceWithConfig(Config{Window: 30, Policy: &spec, NowFn: now})
	if err != nil {
		t.Fatal(err)
	}
	register(ref)
	register(got)
	for i := 0; i < 100; i++ {
		q := model.Query{Consumer: model.ConsumerID(i % 3), N: 1 + i%2, Work: 1}
		wantA, wantErr := ref.Submit(context.Background(), q, nil)
		gotA, gotErr := got.Submit(context.Background(), q, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("query %d: err %v vs %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if want, g := fmt.Sprintf("%+v", *wantA), fmt.Sprintf("%+v", *gotA); want != g {
			t.Fatalf("query %d diverged:\nallocator-built: %s\npolicy-built:    %s", i, want, g)
		}
	}
}

func TestReconfigureSwapsAtMediationBoundary(t *testing.T) {
	var changes []event.PolicyChange
	var mu sync.Mutex
	spec := sbqaSpec(1)
	svc, err := NewServiceWithConfig(Config{
		Window: 20,
		Policy: &spec,
		NowFn:  func() float64 { return 1 },
		Observer: event.Funcs{PolicyChange: func(pc event.PolicyChange) {
			mu.Lock()
			changes = append(changes, pc)
			mu.Unlock()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})
	for i := 0; i < 8; i++ {
		svc.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.5, util: float64(i) / 10})
	}

	// SbQA proposes kn=3 providers per query.
	a, err := svc.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Proposed) != 3 {
		t.Fatalf("SbQA proposed %d, want kn=3", len(a.Proposed))
	}

	// Swap to capacity: proposal set becomes exactly the selection.
	capSpec := policy.Spec{Name: "lb", Kind: policy.Capacity}
	if err := svc.Reconfigure(context.Background(), capSpec); err != nil {
		t.Fatal(err)
	}
	if got, ok := svc.Policy(); !ok || got.Kind != policy.Capacity {
		t.Fatalf("Policy() after reconfigure = %+v, %v", got, ok)
	}
	if gen := svc.PolicyGeneration(); gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	// The swap is lazy: stats show the shard still on generation 0 until
	// the next mediation boundary.
	if st := svc.Stats(); st.Shards[0].PolicyGeneration != 0 || st.Shards[0].PolicySwaps != 0 {
		t.Fatalf("shard adopted the generation without a mediation boundary: %+v", st.Shards[0])
	}

	a, err = svc.Submit(context.Background(), model.Query{Consumer: 0, N: 2, Work: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Proposed) != 2 || len(a.Selected) != 2 {
		t.Fatalf("capacity allocation proposed %d / selected %d, want 2/2", len(a.Proposed), len(a.Selected))
	}
	// Capacity picks the least utilized: providers 0 and 1.
	if a.Selected[0] != 0 || a.Selected[1] != 1 {
		t.Fatalf("capacity selected %v, want [0 1]", a.Selected)
	}

	st := svc.Stats()
	if st.PolicyGeneration != 1 {
		t.Fatalf("Stats().PolicyGeneration = %d, want 1", st.PolicyGeneration)
	}
	if st.Shards[0].PolicyGeneration != 1 || st.Shards[0].PolicySwaps != 1 {
		t.Fatalf("shard stats after boundary: %+v", st.Shards[0])
	}
	if st.PolicySwaps() != 1 {
		t.Fatalf("PolicySwaps() = %d, want 1", st.PolicySwaps())
	}

	mu.Lock()
	defer mu.Unlock()
	if len(changes) != 1 {
		t.Fatalf("got %d PolicyChange events, want 1", len(changes))
	}
	if changes[0].Generation != 1 || changes[0].Kind != string(policy.Capacity) || changes[0].Name != "lb" {
		t.Fatalf("PolicyChange = %+v", changes[0])
	}
}

func TestReconfigureRejectsInvalidSpecAndKeepsRunningPolicy(t *testing.T) {
	spec := sbqaSpec(1)
	svc, err := NewServiceWithConfig(Config{Window: 20, Policy: &spec})
	if err != nil {
		t.Fatal(err)
	}
	err = svc.Reconfigure(context.Background(), policy.Spec{Kind: "warp-drive"})
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v, want unknown-kind validation error", err)
	}
	if got, _ := svc.Policy(); got.Kind != policy.SbQA {
		t.Fatalf("running policy changed after a rejected reconfigure: %+v", got)
	}
	if svc.PolicyGeneration() != 0 {
		t.Fatalf("generation bumped by a rejected reconfigure")
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.Reconfigure(canceled, sbqaSpec(2)); err == nil {
		t.Fatal("Reconfigure accepted a canceled context")
	}
}

// TestReconfigurePreservesSatisfactionMemory: swapping policies must not
// reset the satisfaction registry (retuning is not amnesia).
func TestReconfigurePreservesSatisfactionMemory(t *testing.T) {
	spec := sbqaSpec(1)
	svc, err := NewServiceWithConfig(Config{Window: 20, Policy: &spec, NowFn: func() float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.9 }})
	for i := 0; i < 4; i++ {
		svc.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.5})
	}
	for i := 0; i < 20; i++ {
		if _, err := svc.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := svc.ConsumerSatisfaction(0)
	if before == 0 {
		t.Fatal("no satisfaction accumulated before reconfigure")
	}
	if err := svc.Reconfigure(context.Background(), policy.Spec{Kind: policy.Capacity}); err != nil {
		t.Fatal(err)
	}
	if after := svc.ConsumerSatisfaction(0); after != before {
		t.Fatalf("satisfaction changed across reconfigure with no mediation: %v -> %v", before, after)
	}
}

// slowParticipant is a constProvider whose context-aware intention call
// takes a fixed wall-clock time, for deadline-override tests.
type slowParticipant struct {
	constProvider
	delay time.Duration
}

func (p *slowParticipant) IntentionContext(ctx context.Context, q model.Query) (model.Intention, error) {
	select {
	case <-time.After(p.delay):
		return p.pi, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// TestReconfigureDeadlineOverrideAndRestore: a policy with its own
// participant deadline overrides the engine's configured deadline; a later
// policy *without* one restores the engine's base — it does not inherit
// the previous policy's override.
func TestReconfigureDeadlineOverrideAndRestore(t *testing.T) {
	spec := sbqaSpec(1) // no deadline: runs under the engine's base (unbounded)
	svc, err := NewServiceWithConfig(Config{Window: 20, Policy: &spec, NowFn: func() float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})
	for i := 0; i < 3; i++ {
		svc.RegisterProvider(&slowParticipant{
			constProvider: constProvider{id: model.ProviderID(i), pi: 0.5},
			delay:         20 * time.Millisecond,
		})
	}
	submit := func() {
		t.Helper()
		if _, err := svc.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	imputations := func() uint64 { return svc.Stats().Imputations() }

	// Base: unbounded — the slow participants are waited for.
	submit()
	if got := imputations(); got != 0 {
		t.Fatalf("unbounded base imputed %d intentions", got)
	}

	// Override: a 1ms policy deadline makes every slow participant miss.
	tight := sbqaSpec(1)
	tight.ParticipantDeadline = policy.Duration(time.Millisecond)
	if err := svc.Reconfigure(context.Background(), tight); err != nil {
		t.Fatal(err)
	}
	submit()
	afterTight := imputations()
	if afterTight == 0 {
		t.Fatal("1ms policy deadline never imputed a 20ms participant")
	}

	// Restore: a spec with no deadline goes back to the unbounded base,
	// not the previous policy's 1ms override.
	if err := svc.Reconfigure(context.Background(), sbqaSpec(2)); err != nil {
		t.Fatal(err)
	}
	submit()
	if got := imputations(); got != afterTight {
		t.Fatalf("no-deadline policy kept the previous override: imputations %d -> %d", afterTight, got)
	}
}

// TestSingleShardDeterminismAcrossGenerationSwap: two identical runs with
// the same mid-run Reconfigure schedule must produce byte-identical
// allocations on a single shard — the epoch swap cannot perturb the
// allocator's sampling stream or ranking.
func TestSingleShardDeterminismAcrossGenerationSwap(t *testing.T) {
	run := func() []string {
		var clock atomic.Int64
		spec := sbqaSpec(42)
		svc, err := NewServiceWithConfig(Config{
			Window: 30, Policy: &spec,
			NowFn: func() float64 { return float64(clock.Load()) / 100 },
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			id := model.ConsumerID(c)
			svc.RegisterConsumer(FuncConsumer{ID: id, Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
				return model.Intention(float64((int(snap.ID)+int(id))%5)/5 - 0.2)
			}})
		}
		for i := 0; i < 10; i++ {
			svc.RegisterProvider(&constProvider{
				id: model.ProviderID(i), pi: model.Intention(float64(i%7)/7 - 0.3), util: float64(i%4) / 4,
			})
		}
		var out []string
		for i := 0; i < 150; i++ {
			clock.Store(int64(i))
			if i == 50 {
				// Retune mid-run: wider funnel, fixed ω.
				if err := svc.Reconfigure(context.Background(), policy.Spec{
					Kind: policy.SbQA, K: 9, Kn: 5, OmegaMode: policy.OmegaFixed, Omega: 0.25, Seed: 7,
				}); err != nil {
					t.Fatal(err)
				}
			}
			if i == 100 {
				if err := svc.Reconfigure(context.Background(), policy.Spec{Kind: policy.Capacity}); err != nil {
					t.Fatal(err)
				}
			}
			a, err := svc.Submit(context.Background(), model.Query{Consumer: model.ConsumerID(i % 3), N: 1 + i%2, Work: 1 + float64(i%3)}, nil)
			if err != nil {
				out = append(out, "err:"+err.Error())
				continue
			}
			out = append(out, fmt.Sprintf("%+v", *a))
		}
		if st := svc.Stats(); st.Shards[0].PolicySwaps != 2 {
			t.Fatalf("policy swaps = %d, want 2", st.Shards[0].PolicySwaps)
		}
		return out
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("allocation %d diverged across identical runs:\n%s\n%s", i, first[i], second[i])
		}
	}
}

// TestReconfigureUnderConcurrentLoad drives a multi-shard engine with
// concurrent SubmitBatch traffic while another goroutine flips the policy
// back and forth — the acceptance criterion's -race workout.
func TestReconfigureUnderConcurrentLoad(t *testing.T) {
	spec := sbqaSpec(1)
	eng, err := NewEngine(
		WithWindow(50),
		WithConcurrency(4),
		WithPolicy(spec),
		WithQueueDepth(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		w, err := NewWorker(model.ProviderID(i), 2000, 512, func(model.Query) model.Intention { return 0.4 })
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		eng.RegisterWorker(w)
	}
	const consumers = 8
	for c := 0; c < consumers; c++ {
		eng.RegisterConsumer(FuncConsumer{ID: model.ConsumerID(c), Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
			return model.Intention(0.6 - snap.Utilization)
		}})
	}

	stop := make(chan struct{})
	specs := []policy.Spec{
		sbqaSpec(1),
		{Kind: policy.SbQA, K: 4, Kn: 2, OmegaMode: policy.OmegaFixed, Omega: 0.5, Seed: 9},
		{Kind: policy.Capacity},
		{Kind: policy.Random, Seed: 3},
	}
	var reconfigurer sync.WaitGroup
	reconfigurer.Add(1)
	go func() {
		defer reconfigurer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.Reconfigure(context.Background(), specs[i%len(specs)]); err != nil {
				t.Errorf("reconfigure: %v", err)
				return
			}
		}
	}()

	var submitters sync.WaitGroup
	for c := 0; c < consumers; c++ {
		submitters.Add(1)
		go func(c int) {
			defer submitters.Done()
			for i := 0; i < 40; i++ {
				qs := []model.Query{
					{Consumer: model.ConsumerID(c), N: 1, Work: 1},
					{Consumer: model.ConsumerID(c), N: 2, Work: 2},
				}
				for _, tk := range eng.SubmitBatch(context.Background(), qs, FireAndForget()) {
					if _, err := tk.Allocation(); err != nil {
						t.Errorf("allocation: %v", err)
					}
				}
			}
		}(c)
	}
	// Stop the reconfigurer only after every submitter finished, so swaps
	// overlap traffic for the whole test.
	submitters.Wait()
	close(stop)
	reconfigurer.Wait()
	eng.Close()

	st := eng.Stats()
	if st.PolicySwaps() == 0 {
		t.Fatal("no shard ever applied a reconfigured policy under load")
	}
	if got := st.Mediations(); got != uint64(consumers*40*2) {
		t.Fatalf("mediations = %d, want %d", got, consumers*40*2)
	}
}

func TestEngineOptionValidationPolicy(t *testing.T) {
	spec := sbqaSpec(1)
	if _, err := NewEngine(WithPolicy(spec), WithAllocator(sbqaAllocator(1))); err == nil {
		t.Fatal("accepted WithPolicy combined with WithAllocator")
	}
	if _, err := NewEngine(WithTuner(policy.TunerConfig{})); err == nil {
		t.Fatal("accepted WithTuner without WithPolicy")
	}
	if _, err := NewEngine(WithPolicy(spec), WithTuner(policy.TunerConfig{})); err == nil {
		t.Fatal("accepted WithTuner without WithSnapshotInterval")
	}
	if _, err := NewEngine(WithPolicy(policy.Spec{Kind: "bogus"})); err == nil {
		t.Fatal("accepted an invalid policy spec")
	}
	// Multi-shard engines build per-shard allocators straight from the
	// policy — no factory needed.
	eng, err := NewEngine(WithPolicy(spec), WithConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
}
