package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sbqa/internal/event"
	"sbqa/internal/model"
	"sbqa/internal/policy"
	"sbqa/internal/qos"
)

// blockingConsumer registers a consumer whose intention callback parks the
// shard loop inside mediation until release is closed — the deterministic
// way to hold a query "in service" while the tests stack more behind it.
// entered receives once when the shard loop first enters the mediation.
func blockingConsumer(id model.ConsumerID) (c FuncConsumer, entered chan struct{}, release chan struct{}) {
	entered = make(chan struct{}, 1)
	release = make(chan struct{})
	c = FuncConsumer{ID: id, Fn: func(model.Query, model.ProviderSnapshot) model.Intention {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return 0.5
	}}
	return c, entered, release
}

// TestSubmitBrownoutShedsTypedAndEmitsEvent: a browned-out class sheds at
// Submit with a *ShedError carrying class/reason, matches ErrShed, and
// emits exactly one event.Shed — while the protected class keeps admitting.
func TestSubmitBrownoutShedsTypedAndEmitsEvent(t *testing.T) {
	spec := qos.Spec{
		Classes: []qos.ClassSpec{
			{Name: qos.Interactive, Weight: 8},
			{Name: qos.Background, Weight: 1},
		},
		DefaultClass: qos.Interactive,
	}
	var mu sync.Mutex
	var sheds []event.Shed
	obs := event.Funcs{Shed: func(s event.Shed) {
		mu.Lock()
		sheds = append(sheds, s)
		mu.Unlock()
	}}
	eng, _ := newTestEngine(t, WithQoS(spec), WithObserver(obs))
	eng.SetBrownout(1)

	ctx := context.Background()
	tk := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 1}, WithQoSClass(qos.Background))
	_, err := tk.Allocation()
	if !errors.Is(err, ErrShed) {
		t.Fatalf("background submission error = %v, want ErrShed", err)
	}
	se, ok := AsShedError(err)
	if !ok {
		t.Fatalf("error %v does not unwrap to *ShedError", err)
	}
	if se.Class != qos.Background || se.Reason != qos.ReasonBrownout {
		t.Fatalf("shed = class %q reason %q, want %q/%q", se.Class, se.Reason, qos.Background, qos.ReasonBrownout)
	}
	if se.Query.ID != tk.Query().ID {
		t.Fatalf("shed error query %d, ticket query %d", se.Query.ID, tk.Query().ID)
	}

	// The shed is never silent: one event, matching the error.
	mu.Lock()
	got := append([]event.Shed(nil), sheds...)
	mu.Unlock()
	if len(got) != 1 || got[0].Reason != qos.ReasonBrownout || got[0].Class != qos.Background {
		t.Fatalf("shed events = %+v, want one brownout/background event", got)
	}

	// The protected class still flows end to end.
	if _, err := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 1}, WithQoSClass(qos.Interactive)).Allocation(); err != nil {
		t.Fatalf("interactive submission failed under brownout: %v", err)
	}
}

// TestSubmitQueueFullShedsBoundedClass: a class with MaxQueueDepth sheds
// (typed, reason queue_full) instead of blocking once its queue is full.
func TestSubmitQueueFullShedsBoundedClass(t *testing.T) {
	spec := qos.Spec{
		Classes: []qos.ClassSpec{
			{Name: qos.Interactive, Weight: 8},
			{Name: qos.Batch, Weight: 1, MaxQueueDepth: 1},
		},
		DefaultClass: qos.Interactive,
	}
	eng, _ := newTestEngine(t, WithQoS(spec), WithConcurrency(1))
	blocker, entered, release := blockingConsumer(9)
	eng.RegisterConsumer(blocker)
	var once sync.Once
	unpark := func() { once.Do(func() { close(release) }) }
	defer unpark()

	ctx := context.Background()
	inService := eng.Submit(ctx, model.Query{Consumer: 9, N: 1, Work: 1})
	<-entered // the shard loop is now parked mid-mediation

	queued := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 1}, WithQoSClass(qos.Batch))
	overflow := eng.Submit(ctx, model.Query{Consumer: 1, N: 1, Work: 1}, WithQoSClass(qos.Batch))
	_, err := overflow.Allocation()
	se, ok := AsShedError(err)
	if !ok || se.Reason != qos.ReasonQueueFull || se.Class != qos.Batch {
		t.Fatalf("overflow error = %v, want *ShedError queue_full/batch", err)
	}

	unpark()
	if _, err := inService.Allocation(); err != nil {
		t.Fatalf("in-service query failed: %v", err)
	}
	if _, err := queued.Allocation(); err != nil {
		t.Fatalf("queued batch query failed: %v", err)
	}
}

// TestSubmitExpiredDeadlineShedsAtDequeue: a queued query whose deadline
// passes before the shard picks it up is failed typed (reason deadline),
// never mediated.
func TestSubmitExpiredDeadlineShedsAtDequeue(t *testing.T) {
	eng, _ := newTestEngine(t, WithConcurrency(1))
	blocker, entered, release := blockingConsumer(9)
	eng.RegisterConsumer(blocker)

	ctx := context.Background()
	inService := eng.Submit(ctx, model.Query{Consumer: 9, N: 1, Work: 1})
	<-entered

	doomed := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 1}, WithDeadline(time.Microsecond))
	time.Sleep(2 * time.Millisecond) // let the deadline lapse while queued
	close(release)

	_, err := doomed.Allocation()
	se, ok := AsShedError(err)
	if !ok || se.Reason != qos.ReasonDeadline {
		t.Fatalf("expired-deadline error = %v, want *ShedError deadline", err)
	}
	if _, err := inService.Allocation(); err != nil {
		t.Fatalf("in-service query failed: %v", err)
	}
}

// TestAwaitCtxCancelWhileBlockedOnFullQueue: a Submit blocked on the
// backpressure path (unbounded class, full shard queue) unblocks on ctx
// cancel, its ticket fails with the context error, and the queries ahead
// of it complete untouched.
func TestAwaitCtxCancelWhileBlockedOnFullQueue(t *testing.T) {
	eng, _ := newTestEngine(t, WithConcurrency(1), WithQueueDepth(1))
	blocker, entered, release := blockingConsumer(9)
	eng.RegisterConsumer(blocker)

	ctx := context.Background()
	inService := eng.Submit(ctx, model.Query{Consumer: 9, N: 1, Work: 1})
	<-entered
	queued := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 1}) // fills the depth-1 queue

	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	submitted := make(chan *Ticket, 1)
	go func() {
		submitted <- eng.Submit(cctx, model.Query{Consumer: 1, N: 1, Work: 1})
	}()
	select {
	case <-submitted:
		t.Fatal("submit returned despite a full queue — backpressure is gone")
	case <-time.After(50 * time.Millisecond):
	}

	cancel()
	var blocked *Ticket
	select {
	case blocked = <-submitted:
	case <-time.After(5 * time.Second):
		t.Fatal("submit still blocked after ctx cancel — submitter goroutine leaked")
	}
	if _, err := blocked.Await(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked ticket error = %v, want context.Canceled", err)
	}

	close(release)
	if _, err := inService.Allocation(); err != nil {
		t.Fatalf("in-service query failed: %v", err)
	}
	if _, err := queued.Allocation(); err != nil {
		t.Fatalf("queued query failed: %v", err)
	}
}

// TestCloseWhileBlockedOnFullQueue: Close unblocks a backpressured Submit
// with the typed ErrEngineClosed while the queries already queued drain and
// complete normally.
func TestCloseWhileBlockedOnFullQueue(t *testing.T) {
	eng, _ := newTestEngine(t, WithConcurrency(1), WithQueueDepth(1))
	blocker, entered, release := blockingConsumer(9)
	eng.RegisterConsumer(blocker)

	ctx := context.Background()
	inService := eng.Submit(ctx, model.Query{Consumer: 9, N: 1, Work: 1})
	<-entered
	queued := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 1})

	submitted := make(chan *Ticket, 1)
	go func() {
		submitted <- eng.Submit(context.Background(), model.Query{Consumer: 1, N: 1, Work: 1})
	}()
	select {
	case <-submitted:
		t.Fatal("submit returned despite a full queue")
	case <-time.After(50 * time.Millisecond):
	}

	// Close drains the queue, so the parked mediation must resume for Close
	// to return; release just before.
	close(release)
	eng.Close()

	var blocked *Ticket
	select {
	case blocked = <-submitted:
	case <-time.After(5 * time.Second):
		t.Fatal("submit still blocked after Close — submitter goroutine leaked")
	}
	if _, err := blocked.Await(context.Background()); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("blocked ticket error = %v, want ErrEngineClosed", err)
	}
	if _, err := inService.Allocation(); err != nil {
		t.Fatalf("in-service query failed across Close: %v", err)
	}
	if _, err := queued.Allocation(); err != nil {
		t.Fatalf("queued query failed across Close: %v", err)
	}
}

// TestQoSChurnUnderRace exercises reconfigure × submit × shed × brownout
// concurrently; run with -race. Every ticket must resolve (no hangs), and
// every failure must be a typed, expected error.
func TestQoSChurnUnderRace(t *testing.T) {
	specA := qos.Spec{
		Classes: []qos.ClassSpec{
			{Name: qos.Interactive, Weight: 8},
			{Name: qos.Background, Weight: 1, MaxQueueDepth: 4},
		},
		DefaultClass: qos.Interactive,
	}
	specB := qos.Spec{
		Classes: []qos.ClassSpec{
			{Name: qos.Interactive, Weight: 4, Priority: true},
			{Name: qos.Batch, Weight: 2, MaxQueueDepth: 2},
		},
		DefaultClass: qos.Interactive,
	}
	eng, _ := newTestEngine(t, WithQoS(specA), WithObserver(event.Funcs{Shed: func(event.Shed) {}}))

	const (
		submitters = 4
		perWorker  = 100
	)
	classes := []string{qos.Interactive, qos.Background, qos.Batch, "unknown-class", ""}
	var wg sync.WaitGroup
	errCh := make(chan error, submitters*perWorker)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				opts := []QueryOption{WithQoSClass(classes[(s+i)%len(classes)])}
				if i%7 == 0 {
					opts = append(opts, WithDeadline(time.Nanosecond)) // guaranteed shed fodder
				}
				tk := eng.Submit(context.Background(), model.Query{Consumer: model.ConsumerID(s % 4), N: 1, Work: 0.1}, opts...)
				if _, err := tk.Allocation(); err != nil {
					if _, ok := AsShedError(err); !ok {
						errCh <- fmt.Errorf("submitter %d: unexpected error %w", s, err)
						return
					}
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			spec := policy.Spec{Kind: policy.SbQA, K: 4, Kn: 2, Seed: 1}
			if i%2 == 0 {
				spec.QoS = &specB
			} else {
				spec.QoS = &specA
			}
			if err := eng.Reconfigure(context.Background(), spec); err != nil {
				errCh <- fmt.Errorf("reconfigure %d: %w", i, err)
				return
			}
			eng.SetBrownout(i % 2)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Counters stayed coherent: everything enqueued was dequeued or shed.
	var enq, deq, shed uint64
	for _, st := range eng.QoSStats() {
		enq += st.Enqueued
		deq += st.Dequeued
		shed += st.Shed
	}
	if enq == 0 || deq+shed < enq {
		t.Fatalf("scheduler ledger leaked: enqueued %d, dequeued %d, shed %d", enq, deq, shed)
	}
}
