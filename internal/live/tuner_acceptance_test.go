package live

import (
	"context"
	"testing"
	"time"

	"sbqa/internal/model"
	"sbqa/internal/policy"
)

// TestTunerRecoversStarvedConsumer is the control plane's acceptance test:
// an engine starts with a pathologically narrow policy (KnBest k=2, kn=1 —
// the score barely matters, so the consumer's strong preference for one
// provider is ignored and its satisfaction starves), and the autonomic
// tuner — fed only by the engine's own satisfaction snapshots — must widen
// the KnBest funnel until the preferred provider wins mediations and the
// consumer's satisfaction recovers. No manual Reconfigure, no test
// intervention: the MAPE-K loop does all of it.
func TestTunerRecoversStarvedConsumer(t *testing.T) {
	const favorite = model.ProviderID(0)
	spec := policy.Spec{Name: "narrow", Kind: policy.SbQA, K: 2, Kn: 1, Seed: 3}
	eng, err := NewEngine(
		WithWindow(25),
		WithPolicy(spec),
		WithSnapshotInterval(2*time.Millisecond),
		WithTuner(policy.TunerConfig{
			MinInterval: time.Millisecond,
			Hysteresis:  1,
			MaxK:        16,
			MaxKn:       8,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// The consumer wants exactly one provider; everything else is nearly
	// unacceptable. Its satisfaction is therefore a direct measure of how
	// often the mediation honors the preference.
	eng.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(_ model.Query, snap model.ProviderSnapshot) model.Intention {
		if snap.ID == favorite {
			return 1
		}
		return -0.9
	}})
	// Eight providers, all willing; the favorite is the *most* utilized,
	// so a narrow utilization-driven funnel essentially never picks it.
	for i := 0; i < 8; i++ {
		util := 0.1 * float64(8-i) / 8
		if model.ProviderID(i) == favorite {
			util = 0.9
		}
		eng.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.5, util: util})
	}

	// Phase 1: establish starvation under the narrow policy.
	svc := eng.Service()
	for i := 0; i < 40; i++ {
		if _, err := svc.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	starved := eng.ConsumerSatisfaction(0)
	if starved >= 0.25 {
		t.Fatalf("setup failed: consumer not starved under the narrow policy (δs = %.3f)", starved)
	}

	// Phase 2: keep submitting and let the loop close itself. The snapshot
	// ticker feeds the tuner, the tuner widens kn, satisfaction recovers.
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		for i := 0; i < 10; i++ {
			if _, err := svc.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if eng.ConsumerSatisfaction(0) > 0.6 {
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("consumer never recovered: δs = %.3f after autonomous tuning window (tuner stats %+v)",
			eng.ConsumerSatisfaction(0), eng.Tuner().Stats())
	}

	// The recovery must have come from the tuner, not luck: the policy
	// was rewritten with a wider funnel and at least one action fired.
	final, ok := eng.Policy()
	if !ok {
		t.Fatal("no policy installed")
	}
	if final.Kn <= spec.Kn {
		t.Fatalf("tuner never widened kn: %+v", final)
	}
	if st := eng.Tuner().Stats(); st.Actions == 0 {
		t.Fatalf("recovery without tuner actions? stats %+v", st)
	}
	if gen := eng.PolicyGeneration(); gen == 0 {
		t.Fatal("policy generation never advanced")
	}
	t.Logf("recovered: δs(c) %.3f → %.3f, policy %s, tuner %+v",
		starved, eng.ConsumerSatisfaction(0), final, eng.Tuner().Stats())
}
