package live

import (
	"errors"
	"fmt"
	"strings"

	"sbqa/internal/mediator"
	"sbqa/internal/model"
)

// ErrDispatch reports that an allocation succeeded but the query could not
// be fully delivered: a selected worker shut down mid-flight, its queue was
// full, or (mediator.ErrStaleSelection, which the dispatch error wraps in
// that case) every selected provider unregistered before hand-off. When the
// caller's context was done during dispatch the context error is wrapped
// too, so errors.Is(err, context.Canceled) tells "stop" apart from the
// transient delivery races, which — unlike mediator.ErrNoCandidates — can
// be retried.
//
// Every dispatch failure is a *DispatchError matching this sentinel with
// errors.Is; the typed error carries which selected workers accepted the
// query before the failure and which did not, so a retry loop can resubmit
// only the undelivered remainder instead of re-executing the query on
// workers that already took it. The mediation is recorded in the
// satisfaction registry either way, since satisfaction measures the
// allocation decision (the paper's model), not delivery. In the
// stale-selection case the returned allocation is nil — nothing was handed
// to any worker, so that retry is clean.
var ErrDispatch = errors.New("live: selected worker rejected the query")

// DispatchError is the typed dispatch failure: an allocation mediated
// successfully but could not be (fully) delivered. It matches ErrDispatch
// with errors.Is, and additionally unwraps to the underlying cause (a done
// context, or mediator.ErrStaleSelection when the whole selection
// unregistered before hand-off).
//
// Dispatch attempts every selected worker even after one refuses, so
// Accepted and Failed together partition the workers the engine tried to
// hand the query to. Workers in Accepted keep the query — their Results
// still arrive — which is why a caller retrying the failure should
// re-submit with q.N = len(Failed) (or route to the Failed workers
// specifically) rather than re-run the whole allocation.
type DispatchError struct {
	// Query is the query that failed to (fully) dispatch, with its
	// engine-assigned ID.
	Query model.Query

	// Accepted lists the selected workers that took the query before the
	// failure was detected; they execute it and deliver their Results.
	Accepted []model.ProviderID

	// Failed lists the selected workers the query could not be delivered
	// to (shut down, queue full, or never reached because the context was
	// done). Empty together with Accepted when the selection went stale
	// before any hand-off was attempted.
	Failed []model.ProviderID

	// Err is the underlying cause when one exists: the caller's context
	// error, or mediator.ErrStaleSelection. Nil when workers simply
	// refused (shutdown or full queue).
	Err error
}

// Error implements error.
func (e *DispatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live: dispatch of query %d incomplete", e.Query.ID)
	if len(e.Accepted) > 0 || len(e.Failed) > 0 {
		fmt.Fprintf(&b, " (accepted by %v, failed for %v)", e.Accepted, e.Failed)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes the error chain: every DispatchError matches ErrDispatch,
// plus the underlying cause when one exists (so errors.Is sees
// context.Canceled, context.DeadlineExceeded, or
// mediator.ErrStaleSelection through it).
func (e *DispatchError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrDispatch, e.Err}
	}
	return []error{ErrDispatch}
}

// AsDispatchError unwraps err to its *DispatchError, if it carries one.
func AsDispatchError(err error) (*DispatchError, bool) {
	var de *DispatchError
	ok := errors.As(err, &de)
	return de, ok
}

// ErrShed reports that the engine refused a query at its shard queue
// instead of mediating it: the class-aware scheduler decided the deadline
// could not be met, the class's queue bound was reached, or the brownout
// controller had widened shedding to the query's class. Shedding is never
// silent — every refused query fails its ticket with a *ShedError matching
// this sentinel and emits an event.Shed carrying the same decision.
var ErrShed = errors.New("live: query shed by admission control")

// ShedError is the typed shed failure the submitter's Ticket resolves to
// when the shard scheduler refuses a query. It matches ErrShed with
// errors.Is and carries the decision the observer-side event.Shed records:
// which class refused, why, and how loaded the shard was.
type ShedError struct {
	// Query is the refused query, with its engine-assigned ID.
	Query model.Query

	// Class is the resolved QoS class the query was queued under.
	Class string

	// Reason is one of qos.ReasonDeadline ("deadline"),
	// qos.ReasonQueueFull ("queue_full"), qos.ReasonBrownout ("brownout").
	Reason string

	// QueueDepth is the shard's total queued-query count at decision time.
	QueueDepth int

	// EstimatedWait is the scheduler's queue-wait estimate in seconds at
	// decision time (EWMA mediation service time × queue depth); 0 when
	// the shed was not deadline-driven. Gateways surface it as
	// Retry-After.
	EstimatedWait float64
}

// Error implements error.
func (e *ShedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live: query %d shed (%s, class %q, depth %d", e.Query.ID, e.Reason, e.Class, e.QueueDepth)
	if e.EstimatedWait > 0 {
		fmt.Fprintf(&b, ", est wait %.3fs", e.EstimatedWait)
	}
	b.WriteString(")")
	return b.String()
}

// Unwrap makes every ShedError match ErrShed with errors.Is.
func (e *ShedError) Unwrap() error { return ErrShed }

// AsShedError unwraps err to its *ShedError, if it carries one.
func AsShedError(err error) (*ShedError, bool) {
	var se *ShedError
	ok := errors.As(err, &se)
	return se, ok
}

// dispatchErr folds the mediator's stale-selection failure into the
// engine's typed dispatch error: every selected provider unregistering
// before hand-off is the same transient delivery race as a worker shutting
// down mid-dispatch. Other errors pass through unchanged.
func dispatchErr(q model.Query, err error) error {
	if err != nil && errors.Is(err, mediator.ErrStaleSelection) {
		return &DispatchError{Query: q, Err: err}
	}
	return err
}
