package live

import (
	"context"
	"sync"
	"testing"
	"time"

	"sbqa/internal/core"
	"sbqa/internal/model"
)

// fastWorker returns a worker with high capacity so tests finish quickly.
func fastWorker(t *testing.T, id model.ProviderID, intent model.Intention) *Worker {
	t.Helper()
	w, err := NewWorker(id, 1000, 64, func(model.Query) model.Intention { return intent })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestNewWorkerValidation(t *testing.T) {
	if _, err := NewWorker(1, 0, 0, func(model.Query) model.Intention { return 0 }); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewWorker(1, 1, 0, nil); err == nil {
		t.Error("nil intention accepted")
	}
}

func TestSubmitAndComplete(t *testing.T) {
	svc := NewService(core.MustNew(core.DefaultConfig()), 50)
	for i := 0; i < 4; i++ {
		svc.RegisterWorker(fastWorker(t, model.ProviderID(i), 0.5))
	}
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention {
		return 0.5
	}})

	results := make(chan Result, 16)
	a, err := svc.Submit(context.Background(), model.Query{Consumer: 0, N: 2, Work: 1}, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != 2 {
		t.Fatalf("selected %d workers", len(a.Selected))
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.Latency <= 0 {
				t.Errorf("non-positive latency %v", r.Latency)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for results")
		}
	}
	// Satisfaction has been recorded for the consumer.
	if s := svc.ConsumerSatisfaction(0); s <= 0 {
		t.Errorf("consumer satisfaction %v", s)
	}
}

func TestSubmitNoWorkers(t *testing.T) {
	svc := NewService(core.MustNew(core.DefaultConfig()), 50)
	svc.RegisterConsumer(FuncConsumer{ID: 0})
	if _, err := svc.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}, nil); err == nil {
		t.Error("submit with no workers should fail")
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	svc := NewService(core.MustNew(core.DefaultConfig()), 100)
	const workers = 8
	for i := 0; i < workers; i++ {
		svc.RegisterWorker(fastWorker(t, model.ProviderID(i), 0.4))
	}
	const consumers = 4
	const perConsumer = 25
	results := make(chan Result, consumers*perConsumer)
	for c := 0; c < consumers; c++ {
		svc.RegisterConsumer(FuncConsumer{ID: model.ConsumerID(c), Fn: func(model.Query, model.ProviderSnapshot) model.Intention {
			return 0.3
		}})
	}
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perConsumer; i++ {
				_, err := svc.Submit(context.Background(), model.Query{
					Consumer: model.ConsumerID(c), N: 1, Work: 0.5,
				}, results)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < consumers*perConsumer; i++ {
		select {
		case <-results:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d results", i)
		}
	}
	// Every worker's satisfaction is well defined afterwards.
	for i := 0; i < workers; i++ {
		s := svc.ProviderSatisfaction(model.ProviderID(i))
		if s < 0 || s > 1 {
			t.Errorf("worker %d satisfaction %v", i, s)
		}
	}
}

func TestWorkerCloseRejectsTasks(t *testing.T) {
	svc := NewService(core.MustNew(core.DefaultConfig()), 50)
	w := fastWorker(t, 0, 1)
	svc.RegisterWorker(w)
	svc.RegisterConsumer(FuncConsumer{ID: 0})
	w.Close()
	_, err := svc.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}, nil)
	if err == nil {
		t.Error("submit to closed worker should report dispatch failure")
	}
}

// TestAcceptFullQueueNonBlocking: a saturated worker refuses the hand-off
// immediately, as accept documents — it must never park a dispatcher (and,
// through it, a whole batch) until queue space frees.
func TestAcceptFullQueueNonBlocking(t *testing.T) {
	// Capacity 0.001 makes the first task service for hours, so the backlog
	// never drains during the test.
	w, err := NewWorker(3, 0.001, 1, func(model.Query) model.Intention { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	accepted := 0
	refused := false
	for i := 0; i < 8 && !refused; i++ {
		if w.accept(context.Background(), model.Query{ID: model.QueryID(i + 1), Consumer: 0, N: 1, Work: 10}, nil, nil) {
			accepted++
		} else {
			refused = true
		}
	}
	if !refused {
		t.Fatal("accept never refused on a saturated worker")
	}
	// At most one task in service plus the single queued slot.
	if accepted < 1 || accepted > 2 {
		t.Errorf("accepted %d tasks before refusing, want 1 or 2", accepted)
	}
	// The refused task's optimistic accounting was rolled back.
	if snap := w.Snapshot(0); snap.QueueLen != accepted {
		t.Errorf("queue length %d after %d accepted tasks", snap.QueueLen, accepted)
	}
	// A cancelled context is refused outright.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if w.accept(ctx, model.Query{ID: 99, Consumer: 0, N: 1, Work: 1}, nil, nil) {
		t.Error("accept succeeded with a cancelled context")
	}
}

func TestWorkerDoubleCloseSafe(t *testing.T) {
	w := fastWorker(t, 9, 0)
	w.Close()
	w.Close() // must not panic
}

func TestWorkerBid(t *testing.T) {
	w := fastWorker(t, 1, 0)
	q := model.Query{Consumer: 0, N: 1, Work: 100}
	if got := w.Bid(q); got != 0.1 {
		t.Errorf("default bid = %v, want 0.1", got)
	}
	w.SetPriceFn(func(model.Query, float64) float64 { return 42 })
	if got := w.Bid(q); got != 42 {
		t.Errorf("custom bid = %v", got)
	}
}

func TestSnapshotUnderLoad(t *testing.T) {
	// Slow worker accumulates pending work visible in snapshots.
	w, err := NewWorker(5, 1, 64, func(model.Query) model.Intention { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ok := w.accept(context.Background(), model.Query{ID: 1, Consumer: 0, N: 1, Work: 50}, nil, nil)
	if !ok {
		t.Fatal("accept failed")
	}
	snap := w.Snapshot(0)
	if snap.PendingWork < 50 {
		t.Errorf("pending work %v", snap.PendingWork)
	}
	if snap.Utilization != 1 {
		t.Errorf("utilization %v, want saturated", snap.Utilization)
	}
	if !w.CanPerform(model.Query{}) {
		t.Error("CanPerform = false")
	}
}
