package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/knbest"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
)

// constProvider is a provider with a state-independent snapshot, so
// mediation outcomes depend only on allocator and registry state — the
// determinism tests need repeatable snapshots, and the throughput paths use
// it to benchmark mediation without dispatch.
type constProvider struct {
	id   model.ProviderID
	pi   model.Intention
	util float64
}

func (p *constProvider) ProviderID() model.ProviderID { return p.id }
func (p *constProvider) Snapshot(float64) model.ProviderSnapshot {
	return model.ProviderSnapshot{ID: p.id, Utilization: p.util, Capacity: 1}
}
func (p *constProvider) CanPerform(model.Query) bool           { return true }
func (p *constProvider) Intention(model.Query) model.Intention { return p.pi }
func (p *constProvider) Bid(q model.Query) float64             { return q.Work }

func sbqaAllocator(seed uint64) alloc.Allocator {
	c := core.DefaultConfig()
	c.KnBest = knbest.Params{K: 6, Kn: 3}
	c.Seed = seed
	return core.MustNew(c)
}

// TestSingleShardByteIdenticalToSerializedMediator drives the sharded
// engine with Concurrency=1 and a plain serialized mediator.Mediator with
// identical inputs (same allocator seed, same query IDs, same fake clock)
// and requires byte-identical allocations — the contract that sharding the
// engine changed nothing about single-lane semantics.
func TestSingleShardByteIdenticalToSerializedMediator(t *testing.T) {
	const (
		window    = 40
		providers = 10
		queries   = 200
		consumers = 3
	)
	newConsumer := func(id model.ConsumerID) FuncConsumer {
		return FuncConsumer{ID: id, Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
			// Deterministic, provider- and consumer-dependent preference.
			return model.Intention(float64((int(snap.ID)+int(id))%5)/5 - 0.2)
		}}
	}

	// Reference: the serialized pipeline, driven directly.
	ref := mediator.New(sbqaAllocator(42), mediator.Config{Window: window, AnalyzeBest: true})
	for c := 0; c < consumers; c++ {
		ref.RegisterConsumer(newConsumer(model.ConsumerID(c)))
	}
	for i := 0; i < providers; i++ {
		ref.RegisterProvider(&constProvider{
			id: model.ProviderID(i), pi: model.Intention(float64(i%7)/7 - 0.3), util: float64(i%4) / 4,
		})
	}

	// Engine: one shard, fake clock.
	var clock atomic.Int64 // hundredths of a second
	svc, err := NewServiceWithConfig(Config{
		Window:      window,
		Concurrency: 1,
		Allocator:   sbqaAllocator(42),
		AnalyzeBest: true,
		NowFn:       func() float64 { return float64(clock.Load()) / 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < consumers; c++ {
		svc.RegisterConsumer(newConsumer(model.ConsumerID(c)))
	}
	for i := 0; i < providers; i++ {
		svc.RegisterProvider(&constProvider{
			id: model.ProviderID(i), pi: model.Intention(float64(i%7)/7 - 0.3), util: float64(i%4) / 4,
		})
	}

	for i := 0; i < queries; i++ {
		clock.Store(int64(i))
		now := float64(i) / 100
		q := model.Query{Consumer: model.ConsumerID(i % consumers), N: 1 + i%2, Work: 1 + float64(i%3)}

		refQ := q
		refQ.ID = model.QueryID(i + 1) // engine assigns 1-based sequential IDs
		refQ.IssuedAt = now
		wantA, wantErr := ref.Mediate(context.Background(), now, refQ)

		gotA, gotErr := svc.Submit(context.Background(), q, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("query %d: err %v vs %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		want := fmt.Sprintf("%+v", *wantA)
		got := fmt.Sprintf("%+v", *gotA)
		if want != got {
			t.Fatalf("query %d allocation diverged:\nserialized: %s\nengine:     %s", i, want, got)
		}
	}
	// Satisfaction state identical afterwards.
	for c := 0; c < consumers; c++ {
		if a, b := ref.Registry().ConsumerSatisfaction(model.ConsumerID(c)), svc.ConsumerSatisfaction(model.ConsumerID(c)); a != b {
			t.Errorf("consumer %d δs: %v vs %v", c, a, b)
		}
	}
	for p := 0; p < providers; p++ {
		if a, b := ref.Registry().ProviderSatisfaction(model.ProviderID(p)), svc.ProviderSatisfaction(model.ProviderID(p)); a != b {
			t.Errorf("provider %d δs: %v vs %v", p, a, b)
		}
	}
}

// TestSubmitBatchMatchesSubmit: on a single shard with constant providers, a
// batch must produce the same allocations as the equivalent Submit sequence.
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	build := func() *Service {
		svc, err := NewServiceWithConfig(Config{
			Window: 30, Concurrency: 1, Allocator: sbqaAllocator(7),
			NowFn: func() float64 { return 1 },
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			c := c
			svc.RegisterConsumer(FuncConsumer{ID: model.ConsumerID(c), Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
				return model.Intention(float64((int(snap.ID)+c)%3)/3 - 0.1)
			}})
		}
		for i := 0; i < 8; i++ {
			svc.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.4})
		}
		return svc
	}
	queries := make([]model.Query, 20)
	for i := range queries {
		queries[i] = model.Query{Consumer: model.ConsumerID(i % 2), N: 1, Work: 2}
	}

	one := build()
	var want []string
	for _, q := range queries {
		a, err := one.Submit(context.Background(), q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, fmt.Sprintf("%+v", *a))
	}

	batched := build()
	allocs, errs := batched.SubmitBatch(context.Background(), queries, nil)
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("batch query %d: %v", i, errs[i])
		}
		if got := fmt.Sprintf("%+v", *allocs[i]); got != want[i] {
			t.Errorf("query %d:\nsubmit: %s\nbatch:  %s", i, want[i], got)
		}
	}
}

// TestShardedSubmitBatchDispatches: a multi-shard batch reaches real
// workers and every result comes back.
func TestShardedSubmitBatchDispatches(t *testing.T) {
	svc, err := NewServiceWithConfig(Config{
		Window:       50,
		Concurrency:  4,
		NewAllocator: func(shard int) alloc.Allocator { return sbqaAllocator(uint64(shard + 1)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	for i := 0; i < workers; i++ {
		w, err := NewWorker(model.ProviderID(i), 1000, 256, func(model.Query) model.Intention { return 0.5 })
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		svc.RegisterWorker(w)
	}
	const consumers = 8
	for c := 0; c < consumers; c++ {
		svc.RegisterConsumer(FuncConsumer{ID: model.ConsumerID(c), Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.3 }})
	}
	queries := make([]model.Query, 64)
	for i := range queries {
		queries[i] = model.Query{Consumer: model.ConsumerID(i % consumers), N: 1, Work: 0.5}
	}
	results := make(chan Result, len(queries))
	allocs, errs := svc.SubmitBatch(context.Background(), queries, results)
	seen := map[model.QueryID]bool{}
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if allocs[i] == nil || len(allocs[i].Selected) != 1 {
			t.Fatalf("query %d: allocation %v", i, allocs[i])
		}
		if id := allocs[i].Query.ID; id < 1 || seen[id] {
			t.Errorf("query %d: bad or duplicate ID %d", i, id)
		} else {
			seen[id] = true
		}
	}
	for i := 0; i < len(queries); i++ {
		select {
		case <-results:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d results", i)
		}
	}
}

// TestClassRestrictedWorkers: SetClasses feeds the directory's capability
// index; queries of other classes never reach the specialist.
func TestClassRestrictedWorkers(t *testing.T) {
	svc := NewService(core.MustNew(core.DefaultConfig()), 50)
	gen, err := NewWorker(0, 1000, 64, func(model.Query) model.Intention { return 0.2 })
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	spec, err := NewWorker(1, 1000, 64, func(model.Query) model.Intention { return 0.9 })
	if err != nil {
		t.Fatal(err)
	}
	defer spec.Close()
	spec.SetClasses(1)
	svc.RegisterWorker(gen)
	svc.RegisterWorker(spec)
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	results := make(chan Result, 8)
	// Class-0 queries can only land on the generalist.
	for i := 0; i < 4; i++ {
		a, err := svc.Submit(context.Background(), model.Query{Consumer: 0, Class: 0, N: 1, Work: 1}, results)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Selected) != 1 || a.Selected[0] != 0 {
			t.Fatalf("class-0 query reached specialist: %v", a.Selected)
		}
	}
	// Class-1 queries see both candidates.
	a, err := svc.Submit(context.Background(), model.Query{Consumer: 0, Class: 1, N: 2, Work: 1}, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != 2 {
		t.Fatalf("class-1 query selected %v, want both workers", a.Selected)
	}
}

func TestNewServiceWithConfigValidation(t *testing.T) {
	if _, err := NewServiceWithConfig(Config{Concurrency: 4, Allocator: alloc.NewCapacity()}); err == nil {
		t.Error("multi-shard engine without NewAllocator accepted")
	}
	svc, err := NewServiceWithConfig(Config{Concurrency: 3, NewAllocator: func(int) alloc.Allocator { return alloc.NewCapacity() }})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Shards() != 3 {
		t.Errorf("Shards = %d", svc.Shards())
	}
	if NewService(alloc.NewCapacity(), 10).Shards() != 1 {
		t.Error("NewService should build a single shard")
	}
}

// unregisterOnAllocate unregisters every provider it selects and registers a
// fresh replacement, forcing the whole selection stale on every mediation
// attempt — the registration race the engine must report as a dispatch-level
// failure.
type unregisterOnAllocate struct {
	inner alloc.Allocator
	svc   *Service
	next  int64
}

func (u *unregisterOnAllocate) Name() string { return "unregister-on-allocate" }
func (u *unregisterOnAllocate) Allocate(ctx context.Context, e alloc.Env, q model.Query, cands []model.ProviderSnapshot) (*model.Allocation, error) {
	a, err := u.inner.Allocate(ctx, e, q, cands)
	if a != nil {
		for _, id := range a.Selected {
			u.svc.Directory().UnregisterProvider(id)
		}
	}
	u.next++
	u.svc.RegisterProvider(&constProvider{id: model.ProviderID(u.next), pi: 0.5})
	return a, err
}

// TestSubmitStaleSelectionIsDispatchError: when churn empties a mediated
// selection before hand-off, Submit reports the engine's retryable dispatch
// failure (wrapping mediator.ErrStaleSelection) — never ErrNoCandidates,
// because capacity existed throughout.
func TestSubmitStaleSelectionIsDispatchError(t *testing.T) {
	u := &unregisterOnAllocate{inner: alloc.NewCapacity(), next: 100}
	svc, err := NewServiceWithConfig(Config{Window: 10, Allocator: u})
	if err != nil {
		t.Fatal(err)
	}
	u.svc = svc
	svc.RegisterProvider(&constProvider{id: 1, pi: 0.5})
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	_, err = svc.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}, nil)
	if !errors.Is(err, ErrDispatch) {
		t.Fatalf("err = %v, want ErrDispatch", err)
	}
	if !errors.Is(err, mediator.ErrStaleSelection) {
		t.Errorf("err = %v, should wrap mediator.ErrStaleSelection", err)
	}

	// The batch path maps the same way.
	_, errs := svc.SubmitBatch(context.Background(), []model.Query{{Consumer: 0, N: 1, Work: 1}}, nil)
	if !errors.Is(errs[0], ErrDispatch) || !errors.Is(errs[0], mediator.ErrStaleSelection) {
		t.Errorf("batch err = %v, want ErrDispatch wrapping ErrStaleSelection", errs[0])
	}
}

// TestSubmitCancelledContext: under the v2 context-first protocol a done
// context aborts the mediation itself — the query is rejected with the bare
// context error before any intention is collected or any worker contacted,
// and no allocation is produced. (The v1 engine mediated first and failed
// only at dispatch.)
func TestSubmitCancelledContext(t *testing.T) {
	svc := NewService(core.MustNew(core.DefaultConfig()), 10)
	w, err := NewWorker(1, 1000, 4, func(model.Query) model.Intention { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	svc.RegisterWorker(w)
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := svc.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 1}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrDispatch) {
		t.Errorf("err = %v: a canceled mediation must not read as a dispatch failure", err)
	}
	if a != nil {
		t.Errorf("allocation = %v, want nil (mediation never ran)", a)
	}
	// The rejection is visible in the shard counters.
	if got := svc.Stats().Shards[0].Rejections; got != 1 {
		t.Errorf("rejections = %d, want 1", got)
	}
}

// TestShardRouting: concurrent submitters across many consumers all
// complete, and every consumer's satisfaction window fills — each consumer's
// stream serializes on its home shard while shards run in parallel.
func TestShardRouting(t *testing.T) {
	svc, err := NewServiceWithConfig(Config{
		Window:       20,
		Concurrency:  4,
		NewAllocator: func(shard int) alloc.Allocator { return alloc.NewCapacity() },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		svc.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.5})
	}
	const consumers = 16
	for c := 0; c < consumers; c++ {
		svc.RegisterConsumer(FuncConsumer{ID: model.ConsumerID(c), Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})
	}
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := svc.Submit(context.Background(), model.Query{Consumer: model.ConsumerID(c), N: 1, Work: 1}, nil); err != nil {
					t.Errorf("consumer %d: %v", c, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every consumer recorded all 50 outcomes in its window.
	for c := 0; c < consumers; c++ {
		if n := svc.Registry().Consumer(model.ConsumerID(c)).Interactions(); n != 20 {
			t.Errorf("consumer %d interactions = %d, want full window 20", c, n)
		}
	}
}
