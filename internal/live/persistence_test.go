package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sbqa/internal/event"
	"sbqa/internal/model"
	"sbqa/internal/persist"
	"sbqa/internal/policy"
	"sbqa/internal/satisfaction"
)

// persistTestSpec is the deterministic single-shard policy the restart
// tests run: small KnBest stages so sampling matters, fixed seed.
func persistTestSpec() policy.Spec {
	return policy.Spec{Name: "restart-test", Kind: policy.SbQA, K: 6, Kn: 3, Seed: 42}
}

// buildPersistEngine assembles a single-shard deterministic engine; dir ""
// disables persistence (the uninterrupted reference).
func buildPersistEngine(t *testing.T, dir string, clock *atomic.Int64, extra ...Option) *Engine {
	t.Helper()
	opts := []Option{
		WithWindow(40),
		WithConcurrency(1),
		WithPolicy(persistTestSpec()),
		WithAnalyzeBest(true),
		WithClock(func() float64 { return float64(clock.Load()) / 100 }),
	}
	if dir != "" {
		opts = append(opts, WithPersistence(dir, persist.SyncEvery(1)))
	}
	opts = append(opts, extra...)
	eng, err := NewEngine(opts...)
	if err != nil {
		t.Fatal(err)
	}
	registerPersistParticipants(eng)
	return eng
}

// registerPersistParticipants attaches the deterministic population (same
// shapes as the byte-identical sharding test). Participants are runtime
// objects — a restarted engine re-registers them; only their satisfaction
// memory persists.
func registerPersistParticipants(eng *Engine) {
	const providers, consumers = 10, 3
	for c := 0; c < consumers; c++ {
		id := model.ConsumerID(c)
		eng.RegisterConsumer(FuncConsumer{ID: id, Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
			return model.Intention(float64((int(snap.ID)+int(id))%5)/5 - 0.2)
		}})
	}
	for i := 0; i < providers; i++ {
		eng.RegisterProvider(&constProvider{
			id: model.ProviderID(i), pi: model.Intention(float64(i%7)/7 - 0.3), util: float64(i%4) / 4,
		})
	}
}

// persistQuery is the deterministic query stream: query i arrives at clock
// tick i.
func persistQuery(i int) model.Query {
	return model.Query{Consumer: model.ConsumerID(i % 3), N: 1 + i%2, Work: 1 + float64(i%3)}
}

// runQueries drives queries [from, to) through the blocking surface,
// returning each allocation rendered to a comparison string.
func runQueries(t *testing.T, eng *Engine, clock *atomic.Int64, from, to int) []string {
	t.Helper()
	out := make([]string, 0, to-from)
	for i := from; i < to; i++ {
		clock.Store(int64(i))
		a, err := eng.Service().Submit(context.Background(), persistQuery(i), nil)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out = append(out, fmt.Sprintf("%+v", *a))
	}
	return out
}

// TestRestartDeterminismByteIdentical is the headline acceptance test: an
// engine killed gracefully mid-scenario and restarted from disk continues
// with a single-shard allocation sequence byte-identical to an uninterrupted
// run — satisfaction memory, policy, query IDs, and the allocator sampling
// stream all resume exactly.
func TestRestartDeterminismByteIdentical(t *testing.T) {
	const half = 120

	// Uninterrupted reference: 2×half queries straight through.
	var refClock atomic.Int64
	ref := buildPersistEngine(t, "", &refClock)
	defer ref.Close()
	refAll := runQueries(t, ref, &refClock, 0, 2*half)

	// Interrupted run: first half, graceful close (flushes the snapshot).
	dir := t.TempDir()
	var clock atomic.Int64
	eng1 := buildPersistEngine(t, dir, &clock)
	firstHalf := runQueries(t, eng1, &clock, 0, half)
	for i, s := range firstHalf {
		if s != refAll[i] {
			t.Fatalf("pre-restart divergence at query %d:\nref: %s\ngot: %s", i, refAll[i], s)
		}
	}
	eng1.Close()

	// Warm restart from disk; the clock keeps its axis.
	eng2 := buildPersistEngine(t, dir, &clock)
	defer eng2.Close()
	st := eng2.Stats()
	if st.Persistence == nil {
		t.Fatal("no persistence stats after restore")
	}
	if !st.Persistence.Restore.SnapshotLoaded {
		t.Fatal("graceful restart did not load a snapshot")
	}
	if st.Persistence.Restore.ReplayedRecords != 0 {
		t.Errorf("graceful restart replayed %d journal records, want 0 (snapshot covers all)", st.Persistence.Restore.ReplayedRecords)
	}
	if st.QueriesSubmitted != half {
		t.Errorf("restored query counter %d, want %d", st.QueriesSubmitted, half)
	}

	// The second half must be byte-identical to the uninterrupted run.
	secondHalf := runQueries(t, eng2, &clock, half, 2*half)
	for i, s := range secondHalf {
		if s != refAll[half+i] {
			t.Fatalf("post-restart divergence at query %d:\nref: %s\ngot: %s", half+i, refAll[half+i], s)
		}
	}

	// And the final satisfaction state matches the uninterrupted engine's
	// exactly.
	for c := 0; c < 3; c++ {
		id := model.ConsumerID(c)
		if a, b := ref.ConsumerSatisfaction(id), eng2.ConsumerSatisfaction(id); a != b {
			t.Errorf("consumer %d final δs: %v (ref) != %v (restored)", c, a, b)
		}
	}
	for p := 0; p < 10; p++ {
		id := model.ProviderID(p)
		if a, b := ref.ProviderSatisfaction(id), eng2.ProviderSatisfaction(id); a != b {
			t.Errorf("provider %d final δs: %v (ref) != %v (restored)", p, a, b)
		}
	}
}

// TestCrashKillRecoversBoundedLoss: an engine killed WITHOUT a graceful
// flush recovers from snapshot+journal losing at most the last unsynced
// batch — here exactly the records past the last fsync boundary.
func TestCrashKillRecoversBoundedLoss(t *testing.T) {
	const (
		queries   = 47
		syncEvery = 10
		recovered = 40 // floor(queries/syncEvery)·syncEvery
	)
	dir := t.TempDir()
	var clock atomic.Int64

	// Capture every allocation so the test can rebuild the expected
	// recovered registry state independently.
	var mu sync.Mutex
	var seen []*model.Allocation
	capture := event.Funcs{Allocation: func(a *model.Allocation, _ int) {
		cp := *a
		cp.Proposed = append([]model.ProviderID(nil), a.Proposed...)
		cp.Selected = append([]model.ProviderID(nil), a.Selected...)
		cp.ConsumerIntentions = append([]model.Intention(nil), a.ConsumerIntentions...)
		cp.ProviderIntentions = append([]model.Intention(nil), a.ProviderIntentions...)
		mu.Lock()
		seen = append(seen, &cp)
		mu.Unlock()
	}}

	eng1, err := NewEngine(
		WithWindow(40),
		WithConcurrency(1),
		WithPolicy(persistTestSpec()),
		WithClock(func() float64 { return float64(clock.Load()) / 100 }),
		WithObserver(capture),
		WithPersistence(dir, persist.SyncEvery(syncEvery)),
	)
	if err != nil {
		t.Fatal(err)
	}
	registerPersistParticipants(eng1)
	for i := 0; i < queries; i++ {
		clock.Store(int64(i))
		if _, err := eng1.Service().Submit(context.Background(), persistQuery(i), nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	// Wait for the recorder to have appended (buffered) every record, then
	// crash: buffered-but-unsynced records are lost.
	deadline := time.Now().Add(5 * time.Second)
	for eng1.Stats().Persistence.RecordsAppended < queries {
		if time.Now().After(deadline) {
			t.Fatalf("recorder appended only %d/%d records", eng1.Stats().Persistence.RecordsAppended, queries)
		}
		time.Sleep(time.Millisecond)
	}
	eng1.closeAbrupt()

	eng2, err := NewEngine(
		WithWindow(40),
		WithConcurrency(1),
		WithPolicy(persistTestSpec()),
		WithClock(func() float64 { return float64(clock.Load()) / 100 }),
		WithPersistence(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	st := eng2.Stats()
	if got := st.Persistence.Restore.ReplayedRecords; got != recovered {
		t.Errorf("replayed %d records after crash, want exactly the synced %d", got, recovered)
	}
	if st.QueriesSubmitted != recovered {
		t.Errorf("recovered query counter %d, want %d", st.QueriesSubmitted, recovered)
	}

	// The recovered registry must equal a registry fed exactly the first
	// `recovered` outcomes.
	mu.Lock()
	prefix := seen[:recovered]
	mu.Unlock()
	want := satisfaction.NewRegistry(40)
	for _, a := range prefix {
		want.RecordAllocation(a, nil)
	}
	reg := eng2.Registry()
	for c := 0; c < 3; c++ {
		id := model.ConsumerID(c)
		if a, b := want.ConsumerSatisfaction(id), reg.ConsumerSatisfaction(id); a != b {
			t.Errorf("consumer %d recovered δs %v, want %v", c, b, a)
		}
	}
	for p := 0; p < 10; p++ {
		id := model.ProviderID(p)
		if a, b := want.ProviderSatisfaction(id), reg.ProviderSatisfaction(id); a != b {
			t.Errorf("provider %d recovered δs %v, want %v", p, b, a)
		}
	}
}

// TestRestoredPolicyWinsOverBootSpec: a reconfigured policy survives the
// restart even when the boot flags still name the original spec.
func TestRestoredPolicyWinsOverBootSpec(t *testing.T) {
	dir := t.TempDir()
	var clock atomic.Int64
	eng1 := buildPersistEngine(t, dir, &clock)
	runQueries(t, eng1, &clock, 0, 10)
	upgraded := policy.Spec{Name: "upgraded", Kind: policy.Random, Seed: 7}
	if err := eng1.Reconfigure(context.Background(), upgraded); err != nil {
		t.Fatal(err)
	}
	runQueries(t, eng1, &clock, 10, 20)
	eng1.Close()

	eng2 := buildPersistEngine(t, dir, &clock) // boot spec: persistTestSpec
	defer eng2.Close()
	spec, ok := eng2.Policy()
	if !ok {
		t.Fatal("restored engine has no policy")
	}
	if spec.Name != "upgraded" || spec.Kind != policy.Random {
		t.Fatalf("restored policy %v, want the reconfigured one", spec)
	}
	if gen := eng2.PolicyGeneration(); gen != 1 {
		t.Errorf("restored policy generation %d, want 1", gen)
	}
	if st := eng2.Stats(); st.Shards[0].PolicyGeneration != 1 {
		t.Errorf("shard policy generation %d, want 1", st.Shards[0].PolicyGeneration)
	}
}

// TestDepartureForgottenAcrossRestart: a worker unregistered before the
// crash stays forgotten after replay (the Forget journal record).
func TestDepartureForgottenAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	var clock atomic.Int64
	eng1 := buildPersistEngine(t, dir, &clock)
	runQueries(t, eng1, &clock, 0, 60)
	// Depart some provider that has accumulated memory.
	departed := model.ProviderID(-1)
	for p := model.ProviderID(0); p < 10; p++ {
		if p != 2 && eng1.ProviderSatisfaction(p) != satisfaction.Neutral {
			departed = p
			break
		}
	}
	if departed < 0 {
		t.Fatal("no provider accumulated memory in 60 queries")
	}
	eng1.UnregisterWorker(departed)
	// Crash with no graceful snapshot: only the journal carries the
	// departure. buildPersistEngine syncs every record, and the abrupt
	// close drains the recorder queue before dropping the file, so the
	// Forget record is on disk.
	eng1.closeAbrupt()

	eng2 := buildPersistEngine(t, dir, &clock)
	defer eng2.Close()
	if got := eng2.ProviderSatisfaction(departed); got != satisfaction.Neutral {
		t.Errorf("departed provider %d restored with δs %v, want neutral (forgotten)", departed, got)
	}
	if eng2.ProviderSatisfaction(2) == satisfaction.Neutral {
		t.Error("surviving provider 2 lost its memory")
	}
}

// TestPersistenceCompactionUnderTraffic exercises the background
// compaction loop end to end under live concurrent traffic (and, in CI,
// under -race): tiny segments force rotations, the loop folds them into
// snapshots, and a restart afterwards still restores.
func TestPersistenceCompactionUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewEngine(
		WithWindow(20),
		WithConcurrency(4),
		WithPolicy(policy.Spec{Name: "compact", Kind: policy.SbQA, K: 6, Kn: 3, Seed: 1}),
		WithPersistence(dir,
			persist.SegmentBytes(2048),
			persist.CompactAfterSegments(2),
			persist.CompactInterval(5*time.Millisecond),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	registerPersistParticipants(eng)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				q := model.Query{Consumer: model.ConsumerID(g % 3), N: 1, Work: 1}
				if _, err := eng.Service().Submit(context.Background(), q, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().Persistence.Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no compaction despite tiny segments")
		}
		time.Sleep(5 * time.Millisecond)
	}
	eng.Close()

	eng2, err := NewEngine(
		WithWindow(20),
		WithConcurrency(4),
		WithPolicy(policy.Spec{Name: "compact", Kind: policy.SbQA, K: 6, Kn: 3, Seed: 1}),
		WithPersistence(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	st := eng2.Stats()
	if !st.Persistence.Restore.SnapshotLoaded {
		t.Error("no snapshot after compaction run")
	}
	if st.QueriesSubmitted != 1200 {
		t.Errorf("recovered query counter %d, want 1200", st.QueriesSubmitted)
	}
}

// TestPersistenceDisabledHasNilStats: engines without WithPersistence keep
// a nil Persistence block.
func TestPersistenceDisabledHasNilStats(t *testing.T) {
	var clock atomic.Int64
	eng := buildPersistEngine(t, "", &clock)
	defer eng.Close()
	if eng.Stats().Persistence != nil {
		t.Error("persistence stats present without WithPersistence")
	}
}
