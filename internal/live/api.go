package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/directory"
	"sbqa/internal/event"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
	"sbqa/internal/persist"
	"sbqa/internal/policy"
	"sbqa/internal/qos"
	"sbqa/internal/satisfaction"
	"sbqa/internal/trace"
)

// ErrEngineClosed is returned (via the ticket) for submissions made after
// Engine.Close.
var ErrEngineClosed = errors.New("live: engine closed")

// Option configures an Engine under construction (see NewEngine).
type Option func(*Config)

// WithWindow sets the satisfaction memory length k.
func WithWindow(k int) Option { return func(c *Config) { c.Window = k } }

// WithConcurrency sets the number of mediator shards. Values below 1 mean
// one shard. With more than one shard an allocator factory is required
// (WithAllocatorFactory); queries route to shards by a hash of their
// ConsumerID, so one consumer's stream stays serialized while distinct
// consumers mediate in parallel.
func WithConcurrency(n int) Option { return func(c *Config) { c.Concurrency = n } }

// WithAllocator sets the allocation technique of a single-shard engine.
// Ignored when an allocator factory is set.
func WithAllocator(a alloc.Allocator) Option { return func(c *Config) { c.Allocator = a } }

// WithAllocatorFactory supplies one allocator per shard. Allocators carry
// internal state (sampling RNGs, cursors) and are not safe for concurrent
// use; seed them per shard index for reproducible-yet-decorrelated
// sampling streams. Required when the concurrency is above 1 and no policy
// is set.
func WithAllocatorFactory(f func(shard int) alloc.Allocator) Option {
	return func(c *Config) { c.NewAllocator = f }
}

// WithPolicy supplies the engine's allocation policy declaratively: the
// validated spec builds one allocator per shard (spec.Build(shard), so
// per-shard sampling streams are reproducible yet decorrelated) and becomes
// the engine's generation-0 policy, visible through Engine.Policy and
// swappable at run time through Engine.Reconfigure. A spec with a positive
// ParticipantDeadline also sets the engine's participant deadline unless
// WithParticipantDeadline overrides it. Mutually exclusive with
// WithAllocator and WithAllocatorFactory.
func WithPolicy(spec policy.Spec) Option {
	return func(c *Config) { c.Policy = &spec }
}

// WithTuner runs an autonomic policy tuner bound to the engine: a
// background MAPE-K loop that watches the satisfaction snapshot stream
// (WithSnapshotInterval is therefore required, as is WithPolicy) and issues
// bounded Reconfigure steps — widening kn under consumer starvation,
// nudging a fixed ω toward the adaptive rule under consumer/provider
// imbalance — with hysteresis, a minimum interval between actions, and hard
// parameter bounds (see policy.TunerConfig). The tuner stops with
// Engine.Close; inspect it through Engine.Tuner.
func WithTuner(cfg policy.TunerConfig) Option {
	return func(c *Config) { c.Tuner = &cfg }
}

// WithAnalyzeBest evaluates the consumer's intention over the whole
// candidate set for every query, so allocation satisfaction is measured
// against the true optimum (costs O(|P_q|) intention calls per query).
func WithAnalyzeBest(on bool) Option { return func(c *Config) { c.AnalyzeBest = on } }

// WithClock overrides the engine clock: now returns the current time in
// seconds on the mediation time axis. Deterministic tests inject a fake
// clock; the default is wall-clock seconds since the engine started.
func WithClock(now func() float64) Option { return func(c *Config) { c.NowFn = now } }

// WithObserver installs the engine's event stream: allocations, rejections,
// dispatch failures, registration churn, and (with WithSnapshotInterval)
// periodic satisfaction snapshots. Callbacks run synchronously on the
// emitting goroutine — with several shards, concurrently — and must be
// fast, non-blocking, and safe for concurrent use. Use event.Multi to
// install several observers.
func WithObserver(o event.Observer) Option { return func(c *Config) { c.Observer = o } }

// WithQueueDepth bounds each shard's asynchronous submission queue (the
// ticket path). For QoS classes without an explicit MaxQueueDepth this is
// the blocking bound: submissions beyond it block in Engine.Submit until
// the shard drains or the submission context is done — backpressure.
// Classes that do declare a MaxQueueDepth shed instead of blocking (see
// WithQoS). Values below 1 mean 1024.
func WithQueueDepth(n int) Option { return func(c *Config) { c.QueueDepth = n } }

// WithQoS installs the engine's overload-survival configuration: the shard
// queues become class-aware schedulers (weighted fair across the spec's
// classes with a strict-priority option, earliest-deadline-first within a
// class) and overloaded submissions shed with a typed *ShedError and an
// event.Shed instead of blocking — deadline-infeasible queries immediately,
// classes past their MaxQueueDepth immediately, classes browned out by the
// tuner immediately. Without this option (and without a policy qos block)
// the engine keeps its historical single-FIFO backpressure semantics
// exactly. The spec is hot-swappable through Engine.Reconfigure via the
// policy's qos block.
func WithQoS(spec qos.Spec) Option { return func(c *Config) { c.QoS = &spec } }

// WithSnapshotInterval makes the engine emit OnSatisfactionSnapshot to the
// configured observer every interval of wall-clock time. Zero (the
// default) disables snapshots.
func WithSnapshotInterval(d time.Duration) Option {
	return func(c *Config) { c.SnapshotInterval = d }
}

// WithTracing enables the engine's mediation tracer: each sampled query is
// stamped with a trace context and records one span per pipeline stage
// (admission, queue wait, fan-out, per-participant intention calls,
// imputation, scoring, dispatch) plus an allocation explain record, all
// landing in a bounded in-memory ring — the flight recorder — readable
// through Engine.Tracer. sample is the fraction of queries traced
// (deterministic 1-in-N; 1.0 traces everything, <=0 disables); buffer is
// the number of finished traces retained (<=0 means the default 256).
// Unsampled queries pay one predictable branch per instrumentation site and
// zero allocations — the mediation hot path is unchanged.
func WithTracing(sample float64, buffer int) Option {
	return func(c *Config) { c.Trace = &trace.Config{Sample: sample, Buffer: buffer} }
}

// WithParticipantDeadline bounds each context-aware participant call during
// batched intention and bid collection: a participant that misses the
// deadline is abandoned and its intention imputed from its satisfaction
// registry state (counted in ShardStats.Imputations/IntentionTimeouts and
// emitted as an OnIntentionImputed event), so one slow remote participant
// can never stall a mediation. Zero (the default) means no per-participant
// bound — only the submission context limits the fan-out. In-process
// participants are unaffected.
func WithParticipantDeadline(d time.Duration) Option {
	return func(c *Config) { c.ParticipantDeadline = d }
}

// submitOptions collects per-query options.
type submitOptions struct {
	results       chan<- Result
	fireAndForget bool
	qosClass      string
	deadline      time.Duration
}

// QueryOption configures one submission (see Engine.Submit).
type QueryOption func(*submitOptions)

// WithResults forwards the query's per-worker results to ch, in addition to
// collecting them on the ticket. Forwarding happens on the ticket's
// collector goroutine; a full channel stalls that ticket's collection, not
// the engine.
func WithResults(ch chan<- Result) QueryOption {
	return func(o *submitOptions) { o.results = ch }
}

// FireAndForget disables the ticket's result collection: the ticket is done
// at worker hand-off and Results stays empty. Combined with WithResults the
// workers deliver straight to the caller's channel (the v1 contract);
// without it the results are discarded on completion.
func FireAndForget() QueryOption {
	return func(o *submitOptions) { o.fireAndForget = true }
}

// WithQoSClass queues the query under the named QoS class ("interactive",
// "batch", "background", or any class the running qos spec declares).
// Unknown names fold into the spec's default class; without a QoS spec the
// single default class applies and the option is inert. Overrides a class
// already set on the query.
func WithQoSClass(class string) QueryOption {
	return func(o *submitOptions) { o.qosClass = class }
}

// WithDeadline gives the query a start-of-mediation deadline d from
// submission time: the shard scheduler serves earlier deadlines first
// within a class and sheds the query with a typed *ShedError (reason
// "deadline") when its estimated queue wait would overrun the deadline —
// at admission, or at dequeue if the deadline expired while queued.
// Non-positive d leaves any deadline already on the query in force.
func WithDeadline(d time.Duration) QueryOption {
	return func(o *submitOptions) { o.deadline = d }
}

// Engine is the asynchronous front end of the sharded mediation service:
// Submit returns a *Ticket immediately and the query is mediated and
// dispatched by the consumer's shard loop in the background, preserving
// per-consumer submission order (one consumer's tickets mediate in the
// order they were submitted; distinct consumers run in parallel).
//
// The blocking v1 surface remains available through Service (and the
// Service accessor); both fronts drive the same shards, directory, and
// satisfaction registry and may be mixed freely — the shard mutex
// serializes them.
type Engine struct {
	svc    *Service
	scheds []*qos.Scheduler[engineItem]
	tuner  *policy.Tuner      // nil unless built WithTuner
	pst    *enginePersistence // nil unless built WithPersistence

	// baseQoS is the construction-time QoS spec (normalized); a policy
	// Reconfigure whose spec carries no qos block restores it, the same way
	// a spec with no participant deadline restores the base deadline.
	baseQoS qos.Spec

	mu     sync.RWMutex // guards closed for Close idempotence
	closed bool

	// guard, when set (SetSubmitGuard), vets every submission before it
	// reaches a shard queue — the cluster layer's ownership check.
	guard atomic.Pointer[func(model.Query) error]

	stopSnap chan struct{}
	wg       sync.WaitGroup
}

// engineItem is one unit of shard-loop work: a single ticket, or a batch
// group mediated under one lock acquisition. The scheduling attributes
// (class, deadline) are passed alongside at enqueue time — SubmitBatch
// groups by shard and class, and a group's deadline is its earliest
// member's.
type engineItem struct {
	ctx     context.Context
	tickets []*Ticket
	batch   bool
}

// NewEngine builds an asynchronous engine from functional options:
//
//	eng, err := live.NewEngine(
//		live.WithWindow(100),
//		live.WithConcurrency(runtime.GOMAXPROCS(0)),
//		live.WithAllocatorFactory(func(shard int) alloc.Allocator { ... }),
//	)
//	defer eng.Close()
//
// The zero option set is invalid (an allocator or factory is required),
// matching NewServiceWithConfig's validation. Nonsensical option inputs —
// negative concurrency, queue depth, window, snapshot interval, or
// participant deadline — are rejected with a descriptive error rather than
// silently clamped (the v1 Config surface keeps its historical clamping for
// compatibility; see NewEngineFromConfig).
func NewEngine(opts ...Option) (*Engine, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if err := validateOptions(cfg); err != nil {
		return nil, err
	}
	return newEngine(cfg)
}

// validateOptions rejects option inputs that can only be mistakes. Zero
// values stay valid everywhere — they select the documented defaults.
func validateOptions(cfg Config) error {
	if cfg.Concurrency < 0 {
		return fmt.Errorf("live: WithConcurrency(%d): shard count cannot be negative", cfg.Concurrency)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("live: WithQueueDepth(%d): queue depth cannot be negative", cfg.QueueDepth)
	}
	if cfg.Window < 0 {
		return fmt.Errorf("live: WithWindow(%d): satisfaction window cannot be negative", cfg.Window)
	}
	if cfg.SnapshotInterval < 0 {
		return fmt.Errorf("live: WithSnapshotInterval(%v): interval cannot be negative", cfg.SnapshotInterval)
	}
	if cfg.ParticipantDeadline < 0 {
		return fmt.Errorf("live: WithParticipantDeadline(%v): deadline cannot be negative", cfg.ParticipantDeadline)
	}
	if cfg.Policy != nil && (cfg.Allocator != nil || cfg.NewAllocator != nil) {
		return fmt.Errorf("live: WithPolicy is mutually exclusive with WithAllocator/WithAllocatorFactory — the policy builds the per-shard allocators")
	}
	if cfg.Tuner != nil {
		if cfg.Policy == nil {
			return fmt.Errorf("live: WithTuner requires WithPolicy — the tuner retunes the declarative policy")
		}
		if cfg.SnapshotInterval <= 0 {
			return fmt.Errorf("live: WithTuner requires WithSnapshotInterval — satisfaction snapshots are the tuner's sensor input")
		}
	}
	return nil
}

// NewEngineFromConfig builds the asynchronous engine from a v1 Config —
// the bridge for code still holding struct configs.
func NewEngineFromConfig(cfg Config) (*Engine, error) { return newEngine(cfg) }

func newEngine(cfg Config) (*Engine, error) {
	// The tuner is created before the service so its snapshot intake can be
	// composed into the observer the shards capture; it is bound to the
	// engine (its Reconfigure surface) once the engine exists. The tuner
	// goes *first* in the composition: it clones the snapshot maps
	// synchronously in Observe, after which the user observer receives
	// them still owning them outright (per the event.Observer contract) —
	// even a user observer that hands its maps to another goroutine
	// cannot race the tuner's copy.
	var tuner *policy.Tuner
	if cfg.Tuner != nil {
		tuner = policy.NewTuner(nil, *cfg.Tuner)
		cfg.Observer = event.Multi(tuner.Observer(), cfg.Observer)
	}
	// The durability recorder joins the observer chain before the service
	// captures it, so every shard's events reach the journal. The store is
	// opened here; restore waits until the service (and its registry)
	// exists.
	var pst *enginePersistence
	if cfg.PersistDir != "" {
		var err error
		pst, err = openPersistence(cfg.PersistDir, cfg.PersistOpts)
		if err != nil {
			return nil, err
		}
		pst.rec = pst.store.NewRecorder()
		cfg.Observer = event.Multi(pst.rec, cfg.Observer)
	}
	svc, err := NewServiceWithConfig(cfg)
	if err != nil {
		if pst != nil {
			pst.rec.Close()
			pst.store.Close()
		}
		return nil, err
	}
	if pst != nil {
		if err := pst.restore(svc, &cfg); err != nil {
			pst.rec.Close()
			pst.store.Close()
			return nil, err
		}
		pst.rec.SetPolicySource(svc.policySource)
		// The recorder joined the observer chain before the service was
		// built; its writer starts only now that the store has restored
		// and is open for appends.
		pst.rec.Start()
	}
	depth := cfg.QueueDepth
	if depth < 1 {
		depth = 1024
	}
	// The QoS spec: WithQoS wins, then the construction policy's qos block;
	// neither means the single default class — the pre-QoS FIFO semantics.
	var qspec qos.Spec
	if cfg.QoS != nil {
		qspec = *cfg.QoS
	} else if cfg.Policy != nil && cfg.Policy.QoS != nil {
		qspec = *cfg.Policy.QoS
	}
	if err := qspec.Validate(); err != nil {
		if pst != nil {
			pst.rec.Close()
			pst.store.Close()
		}
		return nil, err
	}
	e := &Engine{
		svc:      svc,
		scheds:   make([]*qos.Scheduler[engineItem], len(svc.shards)),
		tuner:    tuner,
		pst:      pst,
		baseQoS:  qspec.Normalized(),
		stopSnap: make(chan struct{}),
	}
	for i := range e.scheds {
		e.scheds[i] = qos.NewScheduler[engineItem](qspec, depth, svc.nowFn)
		e.wg.Add(1)
		go e.shardLoop(i)
	}
	if cfg.SnapshotInterval > 0 && cfg.Observer != nil {
		e.wg.Add(1)
		go e.snapshotLoop(cfg.SnapshotInterval, cfg.Observer)
	}
	if pst != nil {
		pcfg := persist.Config{}
		for _, o := range cfg.PersistOpts {
			o(&pcfg)
		}
		interval := pcfg.CompactInterval
		if interval <= 0 {
			interval = persist.DefaultCompactInterval
		}
		threshold := pcfg.CompactAfterSegments
		if threshold < 1 {
			threshold = persist.DefaultCompactAfterSegments
		}
		e.wg.Add(1)
		go e.persistLoop(interval, threshold)
	}
	if tuner != nil {
		tuner.Bind(e)
		tuner.BindBrownout(e)
		tuner.Start()
	}
	return e, nil
}

// shardLoop drains one shard's scheduler until Close: pop per the class
// discipline, fail pop-time sheds (deadline expired while queued), mediate
// the rest, and feed the observed service time back into the scheduler's
// EWMA — the yardstick of the next admission's deadline-feasibility check.
func (e *Engine) shardLoop(i int) {
	defer e.wg.Done()
	sh := e.svc.shards[i]
	sched := e.scheds[i]
	for {
		item, res, ok := sched.Pop()
		if !ok {
			return
		}
		if res.Shed {
			e.shedTickets(item.tickets, res.Info)
			continue
		}
		if tr := e.svc.tracer; tr != nil {
			// The scheduler's own wait measurement becomes the queue span:
			// end = dequeue, start = end minus the measured wait. Recorded
			// before the mediation so it always precedes the trace's Finish.
			end := trace.Now()
			qStart := end - int64(res.Wait*1e9)
			for _, t := range item.tickets {
				if t.query.Trace.Sampled {
					tr.RecordSpan(t.query.Trace.ID, trace.Span{
						Name:  trace.StageQueue,
						Class: res.Class,
						Start: qStart,
						End:   end,
					})
				}
			}
		}
		start := e.svc.nowFn()
		if item.batch {
			e.svc.processGroup(item.ctx, sh, item.tickets)
		} else {
			e.svc.process(item.ctx, item.tickets[0])
		}
		if dt := e.svc.nowFn() - start; dt > 0 {
			// A batch group is one queue item but several mediations: feed
			// the per-query share so the admission estimate stays per-query.
			sched.ObserveService(dt / float64(len(item.tickets)))
		}
	}
}

// shedTickets fails every ticket of a shed item with the typed *ShedError
// and emits one event.Shed per query — a shed is never silent. Runs outside
// the scheduler lock (the scheduler only decides and counts).
func (e *Engine) shedTickets(tickets []*Ticket, info qos.ShedInfo) {
	for _, t := range tickets {
		t.finish(nil, &ShedError{
			Query:         t.query,
			Class:         info.Class,
			Reason:        info.Reason,
			QueueDepth:    info.QueueDepth,
			EstimatedWait: info.EstimatedWait,
		}, nil, 0)
		if e.svc.obs != nil {
			e.svc.obs.OnShed(event.Shed{
				Query:         t.query,
				Class:         info.Class,
				Reason:        info.Reason,
				QueueDepth:    info.QueueDepth,
				EstimatedWait: info.EstimatedWait,
			})
		}
		e.svc.traceFinish(t.query, "shed", nil, nil)
	}
}

// snapshotLoop emits periodic satisfaction snapshots until Close. The same
// tick feeds the tuner's brownout controller its queue-pressure sample —
// the scheduler counters are the controller's Monitor phase, sampled at the
// cadence the satisfaction loop already established.
func (e *Engine) snapshotLoop(every time.Duration, obs event.Observer) {
	defer e.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			obs.OnSatisfactionSnapshot(e.svc.satisfactionSnapshot())
			if e.tuner != nil {
				e.tuner.ObservePressure(e.QoSPressure())
			}
		case <-e.stopSnap:
			return
		}
	}
}

// Submit assigns the query its engine ID and enqueues it on its consumer's
// shard, returning a *Ticket immediately — mediation, dispatch, and worker
// execution all happen asynchronously. Track the outcome on the ticket:
// Allocation blocks for the mediation result, Await/Done for the
// per-worker results.
//
// ctx covers the whole submission: if it is done before the shard picks the
// query up (or during dispatch), the ticket fails with the context error.
// When the query's class queue is full, Submit blocks until space frees or
// ctx is done for classes without an explicit depth bound (backpressure),
// and fails the ticket with a *ShedError for classes that declare one (load
// shedding — see WithQoS, WithQoSClass, WithDeadline). After Close, tickets
// fail with ErrEngineClosed.
func (e *Engine) Submit(ctx context.Context, q model.Query, opts ...QueryOption) *Ticket {
	var so submitOptions
	for _, o := range opts {
		o(&so)
	}
	q.ID = model.QueryID(e.svc.nextID.Add(1))
	q.IssuedAt = e.svc.nowFn()
	if so.qosClass != "" {
		q.QoS = so.qosClass
	}
	if so.deadline > 0 {
		q.Deadline = q.IssuedAt + so.deadline.Seconds()
	}
	if tr := e.svc.tracer; tr != nil {
		if !q.Trace.Decided {
			q.Trace, _ = tr.StartLocal()
		}
		if q.Trace.Sampled {
			tr.Annotate(q.Trace.ID, q.ID, q.Consumer)
		}
	}
	t := newTicket(q, so.results, !so.fireAndForget)
	if err := e.guardSubmit(q); err != nil {
		t.finish(nil, err, nil, 0)
		e.svc.traceFinish(q, "rejected", err, nil)
		return t
	}
	e.enqueue(ctx, e.svc.shardIndex(q.Consumer), q.QoS, q.Deadline, engineItem{ctx: ctx, tickets: []*Ticket{t}})
	return t
}

// SetSubmitGuard installs (or, with nil, removes) a submission guard: a
// function consulted for every Submit/SubmitBatch query before it reaches a
// shard queue. A non-nil error fails the ticket immediately with that error
// and the query is never mediated. The cluster layer uses this as its
// ownership check — a query for a consumer this node does not own fails
// typed instead of silently building satisfaction state the ring assigns to
// another node. The guard must be fast and safe for concurrent use; without
// one (the default) submissions behave exactly as before.
func (e *Engine) SetSubmitGuard(fn func(model.Query) error) {
	if fn == nil {
		e.guard.Store(nil)
		return
	}
	e.guard.Store(&fn)
}

// guardSubmit applies the installed submission guard, if any.
func (e *Engine) guardSubmit(q model.Query) error {
	if g := e.guard.Load(); g != nil {
		return (*g)(q)
	}
	return nil
}

// SubmitBatch assigns IDs in input order, stamps the whole batch with one
// arrival time, and enqueues each (shard, QoS class) group as a unit
// (mediated under a single lock acquisition with amortized provider
// snapshots; a group schedules under its class with its earliest member's
// deadline). It returns the position-aligned tickets immediately; per-query
// options apply to every ticket in the batch.
func (e *Engine) SubmitBatch(ctx context.Context, queries []model.Query, opts ...QueryOption) []*Ticket {
	var so submitOptions
	for _, o := range opts {
		o(&so)
	}
	tickets := make([]*Ticket, len(queries))
	if len(queries) == 0 {
		return tickets
	}
	now := e.svc.nowFn()
	type groupKey struct {
		idx   int
		class string
	}
	groups := make(map[groupKey][]*Ticket, len(e.scheds))
	deadlines := make(map[groupKey]float64, len(e.scheds))
	for i, q := range queries {
		q.ID = model.QueryID(e.svc.nextID.Add(1))
		q.IssuedAt = now
		if so.qosClass != "" {
			q.QoS = so.qosClass
		}
		if so.deadline > 0 {
			q.Deadline = now + so.deadline.Seconds()
		}
		if tr := e.svc.tracer; tr != nil {
			if !q.Trace.Decided {
				q.Trace, _ = tr.StartLocal()
			}
			if q.Trace.Sampled {
				tr.Annotate(q.Trace.ID, q.ID, q.Consumer)
			}
		}
		t := newTicket(q, so.results, !so.fireAndForget)
		tickets[i] = t
		if err := e.guardSubmit(q); err != nil {
			// The guard rejects per query: the rest of the batch proceeds.
			t.finish(nil, err, nil, 0)
			e.svc.traceFinish(q, "rejected", err, nil)
			continue
		}
		key := groupKey{idx: e.svc.shardIndex(q.Consumer), class: q.QoS}
		groups[key] = append(groups[key], t)
		if q.Deadline > 0 {
			if d, ok := deadlines[key]; !ok || q.Deadline < d {
				deadlines[key] = q.Deadline
			}
		}
	}
	for key, group := range groups {
		e.enqueue(ctx, key.idx, key.class, deadlines[key], engineItem{ctx: ctx, tickets: group, batch: true})
	}
	return tickets
}

// enqueue hands an item to a shard's scheduler, failing its tickets when
// the engine is closed, ctx is done while blocked on backpressure, or the
// scheduler sheds the item. The scheduler handles the close race internally
// (a Push concurrent with Close fails with ErrSchedulerClosed instead of
// panicking like a send on a closed channel would), so no lock spans the
// call.
func (e *Engine) enqueue(ctx context.Context, idx int, class string, deadline float64, item engineItem) {
	sched := e.scheds[idx]
	ci, _ := sched.ClassIndex(class) // unknown classes fold into the default
	info, err := sched.Push(ctx, ci, deadline, item)
	switch {
	case err != nil:
		if errors.Is(err, qos.ErrSchedulerClosed) {
			err = ErrEngineClosed
		}
		failTickets(item.tickets, err)
		for _, t := range item.tickets {
			e.svc.traceFinish(t.query, "rejected", err, nil)
		}
	case info != nil:
		e.shedTickets(item.tickets, *info)
	}
}

// failTickets completes tickets that never reached a shard.
func failTickets(tickets []*Ticket, err error) {
	for _, t := range tickets {
		t.finish(nil, err, nil, 0)
	}
}

// Close stops the engine's background work: shard loops finish the
// submissions already queued (their tickets complete normally), the
// snapshot ticker stops, and subsequent submissions fail with
// ErrEngineClosed. Close does not stop workers — they keep executing
// accepted queries — and does not touch the blocking Service surface.
// Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	if e.tuner != nil {
		e.tuner.Close() // stop retuning before the shard loops drain
	}
	close(e.stopSnap)
	if e.pst != nil {
		close(e.pst.stop)
	}
	for _, s := range e.scheds {
		s.Close()
	}
	e.wg.Wait()
	if e.pst != nil {
		// Shard loops have drained: journal the tail, write the final
		// snapshot (warm-restart point), close the store.
		e.closePersistence()
	}
}

// Service exposes the blocking v1 surface sharing this engine's shards,
// directory, and registry — the two fronts may be mixed freely.
func (e *Engine) Service() *Service { return e.svc }

// Policy returns the engine's current target policy spec, if one is
// installed (WithPolicy at construction, or any accepted Reconfigure).
func (e *Engine) Policy() (policy.Spec, bool) { return e.svc.Policy() }

// PolicyGeneration returns the number of the latest accepted policy
// generation.
func (e *Engine) PolicyGeneration() uint64 { return e.svc.PolicyGeneration() }

// Reconfigure replaces the running allocation policy: the spec is validated
// and built up front (on error nothing changes), then every shard adopts
// the new allocators at its next mediation boundary — in-flight and queued
// mediations are never interrupted, the hot path pays one atomic load, and
// satisfaction memory is preserved. Concurrent with submissions and safe
// under churn; emits event.PolicyChange and bumps Stats().PolicyGeneration.
//
// A spec with a qos block also reconfigures every shard scheduler live:
// queued queries migrate to the new class table by class name (classes that
// disappear fold into the new default) and per-class counters survive for
// the classes that remain. A spec without one restores the construction-time
// QoS configuration, like a spec without a participant deadline restores
// the base deadline.
func (e *Engine) Reconfigure(ctx context.Context, spec policy.Spec) error {
	if err := e.svc.Reconfigure(ctx, spec); err != nil {
		return err
	}
	qspec := e.baseQoS
	if spec.QoS != nil {
		qspec = *spec.QoS
	}
	for _, s := range e.scheds {
		s.Configure(qspec)
	}
	return nil
}

// Tuner returns the engine's autonomic policy tuner, or nil when the
// engine was built without WithTuner.
func (e *Engine) Tuner() *policy.Tuner { return e.tuner }

// Tracer returns the engine's mediation tracer, or nil when the engine was
// built without WithTracing. The gateway's trace and debug endpoints read
// from it.
func (e *Engine) Tracer() *trace.Recorder { return e.svc.Tracer() }

// PersistStore returns the engine's durability store — nil unless the
// engine was built WithPersistence. The cluster replicator streams sealed
// journal segments from it (SealedSegmentSeqs / OpenSealedSegment) and
// drives its shipping cadence with RotateIfDirty; everything else should
// keep treating persistence as an engine-internal concern.
func (e *Engine) PersistStore() *persist.Store {
	if e.pst == nil {
		return nil
	}
	return e.pst.store
}

// Shards returns the number of mediator shards.
func (e *Engine) Shards() int { return e.svc.Shards() }

// Directory exposes the shared participant catalog.
func (e *Engine) Directory() *directory.Directory { return e.svc.Directory() }

// Registry exposes the shared lock-striped satisfaction registry.
func (e *Engine) Registry() *satisfaction.Registry { return e.svc.Registry() }

// RegisterWorker attaches a worker; it is immediately a candidate on every
// shard.
func (e *Engine) RegisterWorker(w *Worker) { e.svc.RegisterWorker(w) }

// RegisterProvider attaches an arbitrary provider implementation (not
// dispatched to unless it is a *Worker; see Service.RegisterProvider).
func (e *Engine) RegisterProvider(p mediator.Provider) { e.svc.RegisterProvider(p) }

// UnregisterWorker detaches a worker and drops its satisfaction memory.
func (e *Engine) UnregisterWorker(id model.ProviderID) { e.svc.UnregisterWorker(id) }

// RegisterConsumer attaches a consumer.
func (e *Engine) RegisterConsumer(c mediator.Consumer) { e.svc.RegisterConsumer(c) }

// UnregisterConsumer detaches a consumer and drops its satisfaction memory.
func (e *Engine) UnregisterConsumer(id model.ConsumerID) { e.svc.UnregisterConsumer(id) }

// ProviderSatisfaction reads δs(p) from the shared registry.
func (e *Engine) ProviderSatisfaction(id model.ProviderID) float64 {
	return e.svc.ProviderSatisfaction(id)
}

// ConsumerSatisfaction reads δs(c) from the shared registry.
func (e *Engine) ConsumerSatisfaction(id model.ConsumerID) float64 {
	return e.svc.ConsumerSatisfaction(id)
}

// Stats snapshots the engine's counters: the service counters plus each
// shard's scheduler ledger — instantaneous queue depth, lifetime high-water
// mark, and cumulative enqueued/dequeued/shed counts.
func (e *Engine) Stats() Stats {
	st := e.svc.Stats()
	for i := range st.Shards {
		qs := e.scheds[i].Stats()
		st.Shards[i].QueueDepth = qs.Depth
		st.Shards[i].QueueHighWater = qs.HighWater
		st.Shards[i].QueueEnqueued = qs.Enqueued
		st.Shards[i].QueueDequeued = qs.Dequeued
		st.Shards[i].QueueShed = qs.Shed
	}
	if e.pst != nil {
		pstStats := e.pst.rec.Stats()
		st.Persistence = &pstStats
	}
	return st
}

// QoSStats snapshots every shard scheduler's per-class ledger, in shard
// order: per-class depth, high-water, enqueued/dequeued, and shed counts by
// reason, plus the shard's service-time EWMA and brownout level. The
// gateway's /metrics families are built from this.
func (e *Engine) QoSStats() []qos.Stats {
	out := make([]qos.Stats, len(e.scheds))
	for i, s := range e.scheds {
		out[i] = s.Stats()
	}
	return out
}

// QoSSpec returns the QoS configuration the engine currently runs
// (normalized; shard 0's — Reconfigure keeps all shards in step). An engine
// without QoS configuration returns the zero spec (single default class).
// Gateways derive their admission limiters from this, so token buckets and
// class queues always enforce the same spec.
func (e *Engine) QoSSpec() qos.Spec {
	if len(e.scheds) == 0 {
		return qos.Spec{}
	}
	return e.scheds[0].Spec()
}

// QoSPressure aggregates the shard schedulers' overload signals: cumulative
// enqueued and shed counts summed across shards, the worst per-shard p99
// queue wait, and the total instantaneous depth — the brownout controller's
// sensor reading.
func (e *Engine) QoSPressure() qos.Pressure {
	var agg qos.Pressure
	for _, s := range e.scheds {
		p := s.Pressure()
		agg.Enqueued += p.Enqueued
		agg.Shed += p.Shed
		agg.Depth += p.Depth
		if p.WaitP99 > agg.WaitP99 {
			agg.WaitP99 = p.WaitP99
		}
	}
	return agg
}

// SetBrownout sets every shard scheduler's shed-widening level: level L
// immediately sheds admissions to the L most-sheddable classes (ascending
// weight, non-priority first; the top class always admits). The tuner's
// brownout controller drives this under sustained pressure; operators may
// call it directly.
func (e *Engine) SetBrownout(level int) {
	for _, s := range e.scheds {
		s.SetBrownout(level)
	}
}

// Brownout returns the current shed-widening level (shard 0's — SetBrownout
// keeps all shards in step).
func (e *Engine) Brownout() int {
	if len(e.scheds) == 0 {
		return 0
	}
	return e.scheds[0].Brownout()
}
