package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/directory"
	"sbqa/internal/event"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
	"sbqa/internal/persist"
	"sbqa/internal/policy"
	"sbqa/internal/satisfaction"
)

// ErrEngineClosed is returned (via the ticket) for submissions made after
// Engine.Close.
var ErrEngineClosed = errors.New("live: engine closed")

// Option configures an Engine under construction (see NewEngine).
type Option func(*Config)

// WithWindow sets the satisfaction memory length k.
func WithWindow(k int) Option { return func(c *Config) { c.Window = k } }

// WithConcurrency sets the number of mediator shards. Values below 1 mean
// one shard. With more than one shard an allocator factory is required
// (WithAllocatorFactory); queries route to shards by a hash of their
// ConsumerID, so one consumer's stream stays serialized while distinct
// consumers mediate in parallel.
func WithConcurrency(n int) Option { return func(c *Config) { c.Concurrency = n } }

// WithAllocator sets the allocation technique of a single-shard engine.
// Ignored when an allocator factory is set.
func WithAllocator(a alloc.Allocator) Option { return func(c *Config) { c.Allocator = a } }

// WithAllocatorFactory supplies one allocator per shard. Allocators carry
// internal state (sampling RNGs, cursors) and are not safe for concurrent
// use; seed them per shard index for reproducible-yet-decorrelated
// sampling streams. Required when the concurrency is above 1 and no policy
// is set.
func WithAllocatorFactory(f func(shard int) alloc.Allocator) Option {
	return func(c *Config) { c.NewAllocator = f }
}

// WithPolicy supplies the engine's allocation policy declaratively: the
// validated spec builds one allocator per shard (spec.Build(shard), so
// per-shard sampling streams are reproducible yet decorrelated) and becomes
// the engine's generation-0 policy, visible through Engine.Policy and
// swappable at run time through Engine.Reconfigure. A spec with a positive
// ParticipantDeadline also sets the engine's participant deadline unless
// WithParticipantDeadline overrides it. Mutually exclusive with
// WithAllocator and WithAllocatorFactory.
func WithPolicy(spec policy.Spec) Option {
	return func(c *Config) { c.Policy = &spec }
}

// WithTuner runs an autonomic policy tuner bound to the engine: a
// background MAPE-K loop that watches the satisfaction snapshot stream
// (WithSnapshotInterval is therefore required, as is WithPolicy) and issues
// bounded Reconfigure steps — widening kn under consumer starvation,
// nudging a fixed ω toward the adaptive rule under consumer/provider
// imbalance — with hysteresis, a minimum interval between actions, and hard
// parameter bounds (see policy.TunerConfig). The tuner stops with
// Engine.Close; inspect it through Engine.Tuner.
func WithTuner(cfg policy.TunerConfig) Option {
	return func(c *Config) { c.Tuner = &cfg }
}

// WithAnalyzeBest evaluates the consumer's intention over the whole
// candidate set for every query, so allocation satisfaction is measured
// against the true optimum (costs O(|P_q|) intention calls per query).
func WithAnalyzeBest(on bool) Option { return func(c *Config) { c.AnalyzeBest = on } }

// WithClock overrides the engine clock: now returns the current time in
// seconds on the mediation time axis. Deterministic tests inject a fake
// clock; the default is wall-clock seconds since the engine started.
func WithClock(now func() float64) Option { return func(c *Config) { c.NowFn = now } }

// WithObserver installs the engine's event stream: allocations, rejections,
// dispatch failures, registration churn, and (with WithSnapshotInterval)
// periodic satisfaction snapshots. Callbacks run synchronously on the
// emitting goroutine — with several shards, concurrently — and must be
// fast, non-blocking, and safe for concurrent use. Use event.Multi to
// install several observers.
func WithObserver(o event.Observer) Option { return func(c *Config) { c.Observer = o } }

// WithQueueDepth bounds each shard's asynchronous submission queue (the
// ticket path). Submissions beyond the bound block in Engine.Submit until
// the shard drains or the submission context is done. Values below 1 mean
// 1024.
func WithQueueDepth(n int) Option { return func(c *Config) { c.QueueDepth = n } }

// WithSnapshotInterval makes the engine emit OnSatisfactionSnapshot to the
// configured observer every interval of wall-clock time. Zero (the
// default) disables snapshots.
func WithSnapshotInterval(d time.Duration) Option {
	return func(c *Config) { c.SnapshotInterval = d }
}

// WithParticipantDeadline bounds each context-aware participant call during
// batched intention and bid collection: a participant that misses the
// deadline is abandoned and its intention imputed from its satisfaction
// registry state (counted in ShardStats.Imputations/IntentionTimeouts and
// emitted as an OnIntentionImputed event), so one slow remote participant
// can never stall a mediation. Zero (the default) means no per-participant
// bound — only the submission context limits the fan-out. In-process
// participants are unaffected.
func WithParticipantDeadline(d time.Duration) Option {
	return func(c *Config) { c.ParticipantDeadline = d }
}

// submitOptions collects per-query options.
type submitOptions struct {
	results       chan<- Result
	fireAndForget bool
}

// QueryOption configures one submission (see Engine.Submit).
type QueryOption func(*submitOptions)

// WithResults forwards the query's per-worker results to ch, in addition to
// collecting them on the ticket. Forwarding happens on the ticket's
// collector goroutine; a full channel stalls that ticket's collection, not
// the engine.
func WithResults(ch chan<- Result) QueryOption {
	return func(o *submitOptions) { o.results = ch }
}

// FireAndForget disables the ticket's result collection: the ticket is done
// at worker hand-off and Results stays empty. Combined with WithResults the
// workers deliver straight to the caller's channel (the v1 contract);
// without it the results are discarded on completion.
func FireAndForget() QueryOption {
	return func(o *submitOptions) { o.fireAndForget = true }
}

// Engine is the asynchronous front end of the sharded mediation service:
// Submit returns a *Ticket immediately and the query is mediated and
// dispatched by the consumer's shard loop in the background, preserving
// per-consumer submission order (one consumer's tickets mediate in the
// order they were submitted; distinct consumers run in parallel).
//
// The blocking v1 surface remains available through Service (and the
// Service accessor); both fronts drive the same shards, directory, and
// satisfaction registry and may be mixed freely — the shard mutex
// serializes them.
type Engine struct {
	svc    *Service
	queues []chan engineItem
	tuner  *policy.Tuner      // nil unless built WithTuner
	pst    *enginePersistence // nil unless built WithPersistence

	mu     sync.RWMutex // guards closed vs in-flight enqueues
	closed bool

	// guard, when set (SetSubmitGuard), vets every submission before it
	// reaches a shard queue — the cluster layer's ownership check.
	guard atomic.Pointer[func(model.Query) error]

	stopSnap chan struct{}
	wg       sync.WaitGroup
}

// engineItem is one unit of shard-loop work: a single ticket, or a batch
// group mediated under one lock acquisition.
type engineItem struct {
	ctx     context.Context
	tickets []*Ticket
	batch   bool
}

// NewEngine builds an asynchronous engine from functional options:
//
//	eng, err := live.NewEngine(
//		live.WithWindow(100),
//		live.WithConcurrency(runtime.GOMAXPROCS(0)),
//		live.WithAllocatorFactory(func(shard int) alloc.Allocator { ... }),
//	)
//	defer eng.Close()
//
// The zero option set is invalid (an allocator or factory is required),
// matching NewServiceWithConfig's validation. Nonsensical option inputs —
// negative concurrency, queue depth, window, snapshot interval, or
// participant deadline — are rejected with a descriptive error rather than
// silently clamped (the v1 Config surface keeps its historical clamping for
// compatibility; see NewEngineFromConfig).
func NewEngine(opts ...Option) (*Engine, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if err := validateOptions(cfg); err != nil {
		return nil, err
	}
	return newEngine(cfg)
}

// validateOptions rejects option inputs that can only be mistakes. Zero
// values stay valid everywhere — they select the documented defaults.
func validateOptions(cfg Config) error {
	if cfg.Concurrency < 0 {
		return fmt.Errorf("live: WithConcurrency(%d): shard count cannot be negative", cfg.Concurrency)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("live: WithQueueDepth(%d): queue depth cannot be negative", cfg.QueueDepth)
	}
	if cfg.Window < 0 {
		return fmt.Errorf("live: WithWindow(%d): satisfaction window cannot be negative", cfg.Window)
	}
	if cfg.SnapshotInterval < 0 {
		return fmt.Errorf("live: WithSnapshotInterval(%v): interval cannot be negative", cfg.SnapshotInterval)
	}
	if cfg.ParticipantDeadline < 0 {
		return fmt.Errorf("live: WithParticipantDeadline(%v): deadline cannot be negative", cfg.ParticipantDeadline)
	}
	if cfg.Policy != nil && (cfg.Allocator != nil || cfg.NewAllocator != nil) {
		return fmt.Errorf("live: WithPolicy is mutually exclusive with WithAllocator/WithAllocatorFactory — the policy builds the per-shard allocators")
	}
	if cfg.Tuner != nil {
		if cfg.Policy == nil {
			return fmt.Errorf("live: WithTuner requires WithPolicy — the tuner retunes the declarative policy")
		}
		if cfg.SnapshotInterval <= 0 {
			return fmt.Errorf("live: WithTuner requires WithSnapshotInterval — satisfaction snapshots are the tuner's sensor input")
		}
	}
	return nil
}

// NewEngineFromConfig builds the asynchronous engine from a v1 Config —
// the bridge for code still holding struct configs.
func NewEngineFromConfig(cfg Config) (*Engine, error) { return newEngine(cfg) }

func newEngine(cfg Config) (*Engine, error) {
	// The tuner is created before the service so its snapshot intake can be
	// composed into the observer the shards capture; it is bound to the
	// engine (its Reconfigure surface) once the engine exists. The tuner
	// goes *first* in the composition: it clones the snapshot maps
	// synchronously in Observe, after which the user observer receives
	// them still owning them outright (per the event.Observer contract) —
	// even a user observer that hands its maps to another goroutine
	// cannot race the tuner's copy.
	var tuner *policy.Tuner
	if cfg.Tuner != nil {
		tuner = policy.NewTuner(nil, *cfg.Tuner)
		cfg.Observer = event.Multi(tuner.Observer(), cfg.Observer)
	}
	// The durability recorder joins the observer chain before the service
	// captures it, so every shard's events reach the journal. The store is
	// opened here; restore waits until the service (and its registry)
	// exists.
	var pst *enginePersistence
	if cfg.PersistDir != "" {
		var err error
		pst, err = openPersistence(cfg.PersistDir, cfg.PersistOpts)
		if err != nil {
			return nil, err
		}
		pst.rec = pst.store.NewRecorder()
		cfg.Observer = event.Multi(pst.rec, cfg.Observer)
	}
	svc, err := NewServiceWithConfig(cfg)
	if err != nil {
		if pst != nil {
			pst.rec.Close()
			pst.store.Close()
		}
		return nil, err
	}
	if pst != nil {
		if err := pst.restore(svc, &cfg); err != nil {
			pst.rec.Close()
			pst.store.Close()
			return nil, err
		}
		pst.rec.SetPolicySource(svc.policySource)
		// The recorder joined the observer chain before the service was
		// built; its writer starts only now that the store has restored
		// and is open for appends.
		pst.rec.Start()
	}
	depth := cfg.QueueDepth
	if depth < 1 {
		depth = 1024
	}
	e := &Engine{
		svc:      svc,
		queues:   make([]chan engineItem, len(svc.shards)),
		tuner:    tuner,
		pst:      pst,
		stopSnap: make(chan struct{}),
	}
	for i := range e.queues {
		e.queues[i] = make(chan engineItem, depth)
		e.wg.Add(1)
		go e.shardLoop(i)
	}
	if cfg.SnapshotInterval > 0 && cfg.Observer != nil {
		e.wg.Add(1)
		go e.snapshotLoop(cfg.SnapshotInterval, cfg.Observer)
	}
	if pst != nil {
		pcfg := persist.Config{}
		for _, o := range cfg.PersistOpts {
			o(&pcfg)
		}
		interval := pcfg.CompactInterval
		if interval <= 0 {
			interval = persist.DefaultCompactInterval
		}
		threshold := pcfg.CompactAfterSegments
		if threshold < 1 {
			threshold = persist.DefaultCompactAfterSegments
		}
		e.wg.Add(1)
		go e.persistLoop(interval, threshold)
	}
	if tuner != nil {
		tuner.Bind(e)
		tuner.Start()
	}
	return e, nil
}

// shardLoop drains one shard's submission queue until Close.
func (e *Engine) shardLoop(i int) {
	defer e.wg.Done()
	sh := e.svc.shards[i]
	for item := range e.queues[i] {
		if item.batch {
			e.svc.processGroup(item.ctx, sh, item.tickets)
		} else {
			e.svc.process(item.ctx, item.tickets[0])
		}
	}
}

// snapshotLoop emits periodic satisfaction snapshots until Close.
func (e *Engine) snapshotLoop(every time.Duration, obs event.Observer) {
	defer e.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			obs.OnSatisfactionSnapshot(e.svc.satisfactionSnapshot())
		case <-e.stopSnap:
			return
		}
	}
}

// Submit assigns the query its engine ID and enqueues it on its consumer's
// shard, returning a *Ticket immediately — mediation, dispatch, and worker
// execution all happen asynchronously. Track the outcome on the ticket:
// Allocation blocks for the mediation result, Await/Done for the
// per-worker results.
//
// ctx covers the whole submission: if it is done before the shard picks the
// query up (or during dispatch), the ticket fails with the context error.
// When the shard queue is full, Submit blocks until space frees or ctx is
// done — backpressure, not load shedding. After Close, tickets fail with
// ErrEngineClosed.
func (e *Engine) Submit(ctx context.Context, q model.Query, opts ...QueryOption) *Ticket {
	var so submitOptions
	for _, o := range opts {
		o(&so)
	}
	q.ID = model.QueryID(e.svc.nextID.Add(1))
	q.IssuedAt = e.svc.nowFn()
	t := newTicket(q, so.results, !so.fireAndForget)
	if err := e.guardSubmit(q); err != nil {
		t.finish(nil, err, nil, 0)
		return t
	}
	e.enqueue(ctx, e.svc.shardIndex(q.Consumer), engineItem{ctx: ctx, tickets: []*Ticket{t}})
	return t
}

// SetSubmitGuard installs (or, with nil, removes) a submission guard: a
// function consulted for every Submit/SubmitBatch query before it reaches a
// shard queue. A non-nil error fails the ticket immediately with that error
// and the query is never mediated. The cluster layer uses this as its
// ownership check — a query for a consumer this node does not own fails
// typed instead of silently building satisfaction state the ring assigns to
// another node. The guard must be fast and safe for concurrent use; without
// one (the default) submissions behave exactly as before.
func (e *Engine) SetSubmitGuard(fn func(model.Query) error) {
	if fn == nil {
		e.guard.Store(nil)
		return
	}
	e.guard.Store(&fn)
}

// guardSubmit applies the installed submission guard, if any.
func (e *Engine) guardSubmit(q model.Query) error {
	if g := e.guard.Load(); g != nil {
		return (*g)(q)
	}
	return nil
}

// SubmitBatch assigns IDs in input order, stamps the whole batch with one
// arrival time, and enqueues each shard's group as a unit (mediated under a
// single lock acquisition with amortized provider snapshots). It returns
// the position-aligned tickets immediately; per-query options apply to
// every ticket in the batch.
func (e *Engine) SubmitBatch(ctx context.Context, queries []model.Query, opts ...QueryOption) []*Ticket {
	var so submitOptions
	for _, o := range opts {
		o(&so)
	}
	tickets := make([]*Ticket, len(queries))
	if len(queries) == 0 {
		return tickets
	}
	now := e.svc.nowFn()
	groups := make(map[int][]*Ticket, len(e.queues))
	for i, q := range queries {
		q.ID = model.QueryID(e.svc.nextID.Add(1))
		q.IssuedAt = now
		t := newTicket(q, so.results, !so.fireAndForget)
		tickets[i] = t
		if err := e.guardSubmit(q); err != nil {
			// The guard rejects per query: the rest of the batch proceeds.
			t.finish(nil, err, nil, 0)
			continue
		}
		idx := e.svc.shardIndex(q.Consumer)
		groups[idx] = append(groups[idx], t)
	}
	for idx, group := range groups {
		e.enqueue(ctx, idx, engineItem{ctx: ctx, tickets: group, batch: true})
	}
	return tickets
}

// enqueue hands an item to a shard loop, failing its tickets when the
// engine is closed or ctx is done first. The read lock spans the check and
// the send so Close cannot close the queue under an in-flight enqueue.
func (e *Engine) enqueue(ctx context.Context, idx int, item engineItem) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		failTickets(item.tickets, ErrEngineClosed)
		return
	}
	select {
	case e.queues[idx] <- item:
		e.mu.RUnlock()
	case <-ctx.Done():
		e.mu.RUnlock()
		failTickets(item.tickets, ctx.Err())
	}
}

// failTickets completes tickets that never reached a shard.
func failTickets(tickets []*Ticket, err error) {
	for _, t := range tickets {
		t.finish(nil, err, nil, 0)
	}
}

// Close stops the engine's background work: shard loops finish the
// submissions already queued (their tickets complete normally), the
// snapshot ticker stops, and subsequent submissions fail with
// ErrEngineClosed. Close does not stop workers — they keep executing
// accepted queries — and does not touch the blocking Service surface.
// Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	if e.tuner != nil {
		e.tuner.Close() // stop retuning before the shard loops drain
	}
	close(e.stopSnap)
	if e.pst != nil {
		close(e.pst.stop)
	}
	for _, q := range e.queues {
		close(q)
	}
	e.wg.Wait()
	if e.pst != nil {
		// Shard loops have drained: journal the tail, write the final
		// snapshot (warm-restart point), close the store.
		e.closePersistence()
	}
}

// Service exposes the blocking v1 surface sharing this engine's shards,
// directory, and registry — the two fronts may be mixed freely.
func (e *Engine) Service() *Service { return e.svc }

// Policy returns the engine's current target policy spec, if one is
// installed (WithPolicy at construction, or any accepted Reconfigure).
func (e *Engine) Policy() (policy.Spec, bool) { return e.svc.Policy() }

// PolicyGeneration returns the number of the latest accepted policy
// generation.
func (e *Engine) PolicyGeneration() uint64 { return e.svc.PolicyGeneration() }

// Reconfigure replaces the running allocation policy: the spec is validated
// and built up front (on error nothing changes), then every shard adopts
// the new allocators at its next mediation boundary — in-flight and queued
// mediations are never interrupted, the hot path pays one atomic load, and
// satisfaction memory is preserved. Concurrent with submissions and safe
// under churn; emits event.PolicyChange and bumps Stats().PolicyGeneration.
func (e *Engine) Reconfigure(ctx context.Context, spec policy.Spec) error {
	return e.svc.Reconfigure(ctx, spec)
}

// Tuner returns the engine's autonomic policy tuner, or nil when the
// engine was built without WithTuner.
func (e *Engine) Tuner() *policy.Tuner { return e.tuner }

// PersistStore returns the engine's durability store — nil unless the
// engine was built WithPersistence. The cluster replicator streams sealed
// journal segments from it (SealedSegmentSeqs / OpenSealedSegment) and
// drives its shipping cadence with RotateIfDirty; everything else should
// keep treating persistence as an engine-internal concern.
func (e *Engine) PersistStore() *persist.Store {
	if e.pst == nil {
		return nil
	}
	return e.pst.store
}

// Shards returns the number of mediator shards.
func (e *Engine) Shards() int { return e.svc.Shards() }

// Directory exposes the shared participant catalog.
func (e *Engine) Directory() *directory.Directory { return e.svc.Directory() }

// Registry exposes the shared lock-striped satisfaction registry.
func (e *Engine) Registry() *satisfaction.Registry { return e.svc.Registry() }

// RegisterWorker attaches a worker; it is immediately a candidate on every
// shard.
func (e *Engine) RegisterWorker(w *Worker) { e.svc.RegisterWorker(w) }

// RegisterProvider attaches an arbitrary provider implementation (not
// dispatched to unless it is a *Worker; see Service.RegisterProvider).
func (e *Engine) RegisterProvider(p mediator.Provider) { e.svc.RegisterProvider(p) }

// UnregisterWorker detaches a worker and drops its satisfaction memory.
func (e *Engine) UnregisterWorker(id model.ProviderID) { e.svc.UnregisterWorker(id) }

// RegisterConsumer attaches a consumer.
func (e *Engine) RegisterConsumer(c mediator.Consumer) { e.svc.RegisterConsumer(c) }

// UnregisterConsumer detaches a consumer and drops its satisfaction memory.
func (e *Engine) UnregisterConsumer(id model.ConsumerID) { e.svc.UnregisterConsumer(id) }

// ProviderSatisfaction reads δs(p) from the shared registry.
func (e *Engine) ProviderSatisfaction(id model.ProviderID) float64 {
	return e.svc.ProviderSatisfaction(id)
}

// ConsumerSatisfaction reads δs(c) from the shared registry.
func (e *Engine) ConsumerSatisfaction(id model.ConsumerID) float64 {
	return e.svc.ConsumerSatisfaction(id)
}

// Stats snapshots the engine's counters: the service counters plus each
// shard's current asynchronous queue depth.
func (e *Engine) Stats() Stats {
	st := e.svc.Stats()
	for i := range st.Shards {
		st.Shards[i].QueueDepth = len(e.queues[i])
	}
	if e.pst != nil {
		pstStats := e.pst.rec.Stats()
		st.Persistence = &pstStats
	}
	return st
}
