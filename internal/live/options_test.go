package live

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/event"
	"sbqa/internal/model"
)

// TestNewEngineRejectsInvalidOptions: nonsense option inputs fail NewEngine
// with a descriptive error instead of being silently clamped.
func TestNewEngineRejectsInvalidOptions(t *testing.T) {
	base := WithAllocator(core.MustNew(core.DefaultConfig()))
	cases := []struct {
		name string
		opt  Option
		want string
	}{
		{"negative concurrency", WithConcurrency(-2), "WithConcurrency(-2)"},
		{"negative queue depth", WithQueueDepth(-1), "WithQueueDepth(-1)"},
		{"negative window", WithWindow(-5), "WithWindow(-5)"},
		{"negative snapshot interval", WithSnapshotInterval(-time.Second), "WithSnapshotInterval"},
		{"negative participant deadline", WithParticipantDeadline(-time.Millisecond), "WithParticipantDeadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(base, tc.opt)
			if err == nil {
				eng.Close()
				t.Fatal("invalid option accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending option %q", err, tc.want)
			}
		})
	}
	// Zero values remain valid defaults.
	eng, err := NewEngine(base, WithConcurrency(0), WithQueueDepth(0), WithWindow(0),
		WithSnapshotInterval(0), WithParticipantDeadline(0))
	if err != nil {
		t.Fatalf("zero-valued options rejected: %v", err)
	}
	eng.Close()
}

// stallProvider is a registered (non-Worker) provider whose context-aware
// intention call never answers on its own: it waits for release or ctx.
type stallProvider struct {
	id      model.ProviderID
	release chan struct{}
	calls   atomic.Int64
}

func (p *stallProvider) ProviderID() model.ProviderID { return p.id }
func (p *stallProvider) Snapshot(float64) model.ProviderSnapshot {
	return model.ProviderSnapshot{ID: p.id, Capacity: 1}
}
func (p *stallProvider) CanPerform(model.Query) bool           { return true }
func (p *stallProvider) Intention(model.Query) model.Intention { return 0 }
func (p *stallProvider) Bid(q model.Query) float64             { return q.Work }

func (p *stallProvider) IntentionContext(ctx context.Context, _ model.Query) (model.Intention, error) {
	p.calls.Add(1)
	select {
	case <-p.release:
		return 0.5, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// TestTicketContextCancelsFanout: canceling a ticket's submission context
// while the intention fan-out is in flight fails the ticket with the context
// error — the engine does not sit behind a stalled participant.
func TestTicketContextCancelsFanout(t *testing.T) {
	eng, err := NewEngine(WithWindow(10), WithAllocator(core.MustNew(core.DefaultConfig())))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sp := &stallProvider{id: 1, release: make(chan struct{})}
	defer close(sp.release)
	eng.RegisterProvider(sp)
	eng.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	ctx, cancel := context.WithCancel(context.Background())
	tk := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 1})
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var aerr error
	go func() {
		_, aerr = tk.Allocation()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ticket never completed after cancellation")
	}
	if !errors.Is(aerr, context.Canceled) {
		t.Fatalf("ticket err = %v, want context.Canceled", aerr)
	}
	if sp.calls.Load() == 0 {
		t.Error("fan-out never reached the participant")
	}
}

// TestEngineImputationStats: a participant that misses the per-participant
// deadline shows up in ShardStats.Imputations/IntentionTimeouts and reaches
// the user observer as a typed event.
func TestEngineImputationStats(t *testing.T) {
	var events atomic.Int64
	obs := event.Funcs{IntentionImputed: func(event.Imputation) { events.Add(1) }}
	eng, err := NewEngine(
		WithWindow(10),
		WithAllocator(alloc.NewCapacity()),
		WithParticipantDeadline(25*time.Millisecond),
		WithObserver(obs),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sp := &stallProvider{id: 1, release: make(chan struct{})}
	defer close(sp.release)
	eng.RegisterProvider(sp)
	eng.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	a, aerr := eng.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1}).Allocation()
	if aerr != nil || a == nil {
		t.Fatalf("Allocation = %v, %v", a, aerr)
	}
	st := eng.Stats()
	if st.Imputations() != 1 {
		t.Errorf("Imputations = %d, want 1", st.Imputations())
	}
	if st.IntentionTimeouts() != 1 {
		t.Errorf("IntentionTimeouts = %d, want 1", st.IntentionTimeouts())
	}
	if events.Load() != 1 {
		t.Errorf("observer events = %d, want 1", events.Load())
	}
}
