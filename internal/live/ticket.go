package live

import (
	"context"

	"sbqa/internal/model"
)

// Ticket is the handle for one asynchronously submitted query. Submission
// (Engine.Submit) returns the ticket immediately — the engine-assigned
// QueryID is readable at once via Query — and the ticket then moves through
// two stages:
//
//  1. allocated: mediation and worker hand-off have completed.
//     Allocation blocks until here and returns the allocation and the
//     submission error (nil, a mediation error such as
//     mediator.ErrNoCandidates, or a *DispatchError).
//  2. done: every worker that accepted the query has delivered its Result.
//     Done's channel closes here; Await blocks for it; Results returns the
//     collected per-worker results.
//
// On the collecting path (the Engine default) the ticket owns a private
// result channel sized to the selection, so workers never block on result
// delivery and the caller needs no shared results channel. Allocations to
// registered providers that are not dispatchable *Worker instances produce
// no Results (delivery is out of band), so a ticket completes when its
// dispatched workers — not its full selection — have reported.
//
// A ticket always completes: mediation failures complete it immediately,
// partial dispatch failures complete it when the accepting workers finish
// (the *DispatchError from Allocation or Await lists the remainder to
// retry), and a worker closed mid-execution signals abandonment for its
// queued tasks, which the collector accounts for (see Abandoned) instead
// of waiting forever.
type Ticket struct {
	query model.Query

	// userResults is the optional caller-supplied channel (WithResults /
	// the blocking wrappers); collected results are forwarded to it.
	userResults chan<- Result

	// collect selects the ticket-owned result path. The blocking wrappers
	// switch it off: they pass userResults straight to the workers and the
	// ticket is done at hand-off, exactly like the v1 API.
	collect bool

	// resCh receives the dispatched workers' results on the collecting
	// path; created at dispatch time, sized to the selection. abandonCh
	// receives the IDs of accepted workers that shut down before
	// delivering, so the collector accounts for every accepted task.
	resCh     chan Result
	abandonCh chan model.ProviderID

	allocated chan struct{} // closed once alloc/err are set
	alloc     *model.Allocation
	err       error

	done      chan struct{} // closed once results are complete
	results   []Result
	abandoned []model.ProviderID
}

// newTicket returns a ticket for q. userResults may be nil; collect selects
// the ticket-owned result path (see Ticket).
func newTicket(q model.Query, userResults chan<- Result, collect bool) *Ticket {
	return &Ticket{
		query:       q,
		userResults: userResults,
		collect:     collect,
		allocated:   make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// finish completes the allocation stage: it publishes the allocation and
// error, then either closes done immediately (nothing to collect) or spawns
// the collector that accounts for every accepted worker — a delivered
// Result or an abandonment signal from a worker that shut down first —
// so the ticket always completes, even under worker churn.
func (t *Ticket) finish(a *model.Allocation, err error, resCh chan Result, expected int) {
	t.alloc = a
	t.err = err
	close(t.allocated)
	if expected == 0 || resCh == nil {
		close(t.done)
		return
	}
	go func() {
		for i := 0; i < expected; i++ {
			select {
			case r := <-resCh:
				t.results = append(t.results, r)
				if t.userResults != nil {
					t.userResults <- r
				}
			case id := <-t.abandonCh:
				t.abandoned = append(t.abandoned, id)
			}
		}
		close(t.done)
	}()
}

// Query returns the submitted query with its engine-assigned ID and issue
// timestamp — available immediately, before mediation completes.
func (t *Ticket) Query() model.Query { return t.query }

// Allocation blocks until mediation and worker hand-off have completed and
// returns the allocation and the submission error. The error is nil on full
// delivery; a *DispatchError (matching ErrDispatch) on partial or failed
// delivery — the allocation is still returned when mediation itself
// succeeded; or a mediation error (mediator.ErrNoCandidates, a validation
// error) with a nil allocation.
func (t *Ticket) Allocation() (*model.Allocation, error) {
	<-t.allocated
	return t.alloc, t.err
}

// Done returns a channel that is closed once the ticket is complete: every
// worker that accepted the query has delivered its Result (immediately, on
// the non-collecting path or when submission failed).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Await blocks until the ticket is complete or ctx is done. It returns the
// collected per-worker results and the submission error: both may be
// non-zero at once — a partial dispatch failure yields the accepting
// workers' results and a *DispatchError naming the undelivered remainder.
// When ctx expires first, Await returns (nil, ctx.Err()); the ticket keeps
// collecting in the background and Await may be called again.
func (t *Ticket) Await(ctx context.Context) ([]Result, error) {
	select {
	case <-t.done:
		return t.results, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Results returns the collected per-worker results, or nil while the ticket
// is still in flight (use Await or Done to synchronize). It may hold fewer
// entries than the accepted selection when workers shut down mid-execution;
// Abandoned names those workers.
func (t *Ticket) Results() []Result {
	select {
	case <-t.done:
		return t.results
	default:
		return nil
	}
}

// Abandoned returns the accepted workers that shut down before delivering
// their result (nil while the ticket is in flight, and on the
// fire-and-forget path, where abandonment is not tracked). An abandoned
// slot is the same retry situation as a DispatchError.Failed entry: the
// query never executed there.
func (t *Ticket) Abandoned() []model.ProviderID {
	select {
	case <-t.done:
		return t.abandoned
	default:
		return nil
	}
}

// Err returns the submission error, or nil while mediation and hand-off are
// still in flight (use Allocation to synchronize).
func (t *Ticket) Err() error {
	select {
	case <-t.allocated:
		return t.err
	default:
		return nil
	}
}
