// Package live embeds the SbQA mediation pipeline in a real concurrent
// runtime: consumers submit queries from any goroutine, workers (providers)
// execute work on their own goroutines, and the mediator serializes
// mediations behind a mutex. This is the embedding a downstream system would
// use in production — the deterministic twin for experiments lives in
// internal/boinc.
//
// Time is real (wall-clock) here; capacities are in work units per second of
// real time, usually scaled down in tests.
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
)

// Result is one completed query execution delivered to the consumer.
type Result struct {
	Query    model.Query
	Provider model.ProviderID
	Latency  time.Duration
}

// Service is a thread-safe mediation front end.
type Service struct {
	mu    sync.Mutex
	med   *mediator.Mediator
	start time.Time

	nextID model.QueryID
}

// NewService returns a service running the given allocation technique.
func NewService(allocator alloc.Allocator, window int) *Service {
	return &Service{
		med:   mediator.New(allocator, mediator.Config{Window: window}),
		start: time.Now(),
	}
}

// now returns seconds since service start (the mediator's time axis).
func (s *Service) now() float64 { return time.Since(s.start).Seconds() }

// RegisterWorker attaches a worker to the mediation pipeline.
func (s *Service) RegisterWorker(w *Worker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.med.RegisterProvider(w)
}

// UnregisterWorker detaches a worker (its satisfaction memory is dropped).
func (s *Service) UnregisterWorker(id model.ProviderID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.med.UnregisterProvider(id)
}

// RegisterConsumer attaches a consumer.
func (s *Service) RegisterConsumer(c mediator.Consumer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.med.RegisterConsumer(c)
}

// ProviderSatisfaction reads δs(p) under the service lock.
func (s *Service) ProviderSatisfaction(id model.ProviderID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.med.Registry().ProviderSatisfaction(id)
}

// ConsumerSatisfaction reads δs(c) under the service lock.
func (s *Service) ConsumerSatisfaction(id model.ConsumerID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.med.Registry().ConsumerSatisfaction(id)
}

// ErrDispatch reports that an allocation succeeded but a selected worker
// could not accept the query (shut down mid-flight).
var ErrDispatch = errors.New("live: selected worker rejected the query")

// Submit mediates the query and dispatches it to the selected workers. It
// assigns the query ID. The returned allocation lists the chosen workers;
// results arrive asynchronously on the consumer's result channel.
func (s *Service) Submit(ctx context.Context, q model.Query, results chan<- Result) (*model.Allocation, error) {
	s.mu.Lock()
	s.nextID++
	q.ID = s.nextID
	q.IssuedAt = s.now()
	a, err := s.med.Mediate(q.IssuedAt, q)
	var workers []*Worker
	if err == nil {
		workers = make([]*Worker, 0, len(a.Selected))
		for _, pid := range a.Selected {
			if w, ok := s.med.Provider(pid).(*Worker); ok {
				workers = append(workers, w)
			}
		}
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for _, w := range workers {
		if !w.accept(ctx, q, results) {
			return a, ErrDispatch
		}
	}
	return a, nil
}

// Worker executes queries on its own goroutine at a fixed capacity.
// It implements mediator.Provider; all mediator-facing reads are
// mutex-guarded because mediations and executions run on different
// goroutines.
type Worker struct {
	id       model.ProviderID
	capacity float64 // work units per second (real time)

	// IntentionFn maps a query to this worker's intention; required.
	intentionFn func(q model.Query) model.Intention
	// priceFn maps a query to a bid; nil = expected-delay pricing.
	priceFn func(q model.Query, pendingWork float64) float64

	mu          sync.Mutex
	pendingWork float64
	queueLen    int
	sat         float64 // last satisfaction pushed by the service; info only

	tasks  chan task
	done   chan struct{}
	closed sync.Once
}

type task struct {
	q       model.Query
	results chan<- Result
	start   time.Time
}

// NewWorker starts a worker goroutine. capacity must be > 0; queueCap bounds
// the task backlog (0 means 1024).
func NewWorker(id model.ProviderID, capacity float64, queueCap int, intentionFn func(model.Query) model.Intention) (*Worker, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("live: worker %d capacity %v must be positive", id, capacity)
	}
	if intentionFn == nil {
		return nil, fmt.Errorf("live: worker %d needs an intention function", id)
	}
	if queueCap <= 0 {
		queueCap = 1024
	}
	w := &Worker{
		id:          id,
		capacity:    capacity,
		intentionFn: intentionFn,
		tasks:       make(chan task, queueCap),
		done:        make(chan struct{}),
	}
	go w.run()
	return w, nil
}

// run executes queued tasks serially, simulating service time by sleeping
// work/capacity seconds of real time.
func (w *Worker) run() {
	for t := range w.tasks {
		service := time.Duration(t.q.Work / w.capacity * float64(time.Second))
		timer := time.NewTimer(service)
		select {
		case <-timer.C:
		case <-w.done:
			timer.Stop()
			return
		}
		w.mu.Lock()
		w.pendingWork -= t.q.Work
		if w.pendingWork < 0 {
			w.pendingWork = 0
		}
		w.queueLen--
		w.mu.Unlock()
		if t.results != nil {
			t.results <- Result{Query: t.q, Provider: w.id, Latency: time.Since(t.start)}
		}
	}
}

// accept enqueues a task; false if the worker is shutting down, the queue is
// full, or the context is done.
func (w *Worker) accept(ctx context.Context, q model.Query, results chan<- Result) bool {
	select {
	case <-w.done:
		return false
	default:
	}
	w.mu.Lock()
	w.pendingWork += q.Work
	w.queueLen++
	w.mu.Unlock()
	select {
	case w.tasks <- task{q: q, results: results, start: time.Now()}:
		return true
	case <-ctx.Done():
	case <-w.done:
	}
	// Roll back the optimistic accounting.
	w.mu.Lock()
	w.pendingWork -= q.Work
	if w.pendingWork < 0 {
		w.pendingWork = 0
	}
	w.queueLen--
	w.mu.Unlock()
	return false
}

// Close stops the worker; queued tasks are abandoned.
func (w *Worker) Close() {
	w.closed.Do(func() {
		close(w.done)
		close(w.tasks)
	})
}

// ProviderID implements mediator.Provider.
func (w *Worker) ProviderID() model.ProviderID { return w.id }

// Snapshot implements mediator.Provider.
func (w *Worker) Snapshot(float64) model.ProviderSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	drain := w.pendingWork / w.capacity
	util := drain / 10 // 10 s backlog = saturated
	if util > 1 {
		util = 1
	}
	return model.ProviderSnapshot{
		ID:          w.id,
		Utilization: util,
		QueueLen:    w.queueLen,
		Capacity:    w.capacity,
		PendingWork: w.pendingWork,
	}
}

// CanPerform implements mediator.Provider; live workers accept any class.
func (w *Worker) CanPerform(model.Query) bool { return true }

// Intention implements mediator.Provider.
func (w *Worker) Intention(q model.Query) model.Intention { return w.intentionFn(q) }

// Bid implements mediator.Provider.
func (w *Worker) Bid(q model.Query) float64 {
	w.mu.Lock()
	pending := w.pendingWork
	w.mu.Unlock()
	if w.priceFn != nil {
		return w.priceFn(q, pending)
	}
	return (pending + q.Work) / w.capacity
}

// SetPriceFn installs a custom bidding rule (must be called before the
// worker is registered).
func (w *Worker) SetPriceFn(fn func(q model.Query, pendingWork float64) float64) {
	w.priceFn = fn
}

// FuncConsumer adapts an intention function to mediator.Consumer.
type FuncConsumer struct {
	ID model.ConsumerID
	Fn func(q model.Query, snap model.ProviderSnapshot) model.Intention
}

// ConsumerID implements mediator.Consumer.
func (c FuncConsumer) ConsumerID() model.ConsumerID { return c.ID }

// Intention implements mediator.Consumer.
func (c FuncConsumer) Intention(q model.Query, snap model.ProviderSnapshot) model.Intention {
	if c.Fn == nil {
		return 0
	}
	return c.Fn(q, snap)
}

var _ mediator.Provider = (*Worker)(nil)
var _ mediator.Consumer = FuncConsumer{}
