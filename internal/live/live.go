// Package live embeds the SbQA mediation pipeline in a real concurrent
// runtime: consumers submit queries from any goroutine, workers (providers)
// execute work on their own goroutines, and a sharded mediation engine
// allocates queries in parallel. This is the embedding a downstream system
// would use in production — the deterministic twin for experiments lives in
// internal/boinc.
//
// # Two fronts, one pipeline
//
// The runtime has two public fronts over the same shards:
//
//   - Engine (NewEngine, functional options) — the asynchronous v2 API.
//     Submit returns a *Ticket immediately; each shard drains a FIFO queue,
//     so one consumer's tickets mediate in submission order while distinct
//     consumers run in parallel. Tickets collect their own per-worker
//     results; an event.Observer (WithObserver) streams allocations,
//     rejections, dispatch failures, registration churn, and satisfaction
//     snapshots; Engine.Stats snapshots per-shard counters.
//   - Service — the blocking v1 API. Submit/SubmitBatch block through
//     worker hand-off and deliver results on a caller-supplied channel.
//     Both are thin wrappers over the ticket pipeline, so mixing fronts is
//     safe and the single-shard determinism guarantee holds by
//     construction.
//
// # Engine architecture
//
// The engine runs N mediator shards (Config.Concurrency). Each shard owns
// one single-threaded mediator.Mediator guarded by its own mutex; queries
// route to shards by a hash of their ConsumerID, so one consumer's stream
// is always serialized (its satisfaction window stays an ordered history)
// while different consumers mediate in parallel. All shards share:
//
//   - one directory.Directory — the indexed provider/consumer catalog, so a
//     worker registered once is a candidate on every shard;
//   - one lock-striped satisfaction.Registry — the adaptive ω of Equation 2
//     reads cross-shard satisfaction without a global lock.
//
// With Concurrency = 1 the engine degenerates to the historical serialized
// service: one shard, one mutex, output byte-identical to driving a plain
// mediator.Mediator with the same inputs (the determinism tests assert
// this).
//
// Time is real (wall-clock) here; capacities are in work units per second of
// real time, usually scaled down in tests. Deterministic tests inject a
// fake clock via Config.NowFn.
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sbqa/internal/model"
)

// Result is one completed query execution delivered to the consumer.
type Result struct {
	Query    model.Query
	Provider model.ProviderID
	Latency  time.Duration
}

// Executor is the engine's dispatch contract: a registered provider the
// engine hands accepted queries to. *Worker implements it, and so does any
// type embedding *Worker — which is how embedders decorate a local executor
// with extra mediator-facing behaviour (the sbqad gateway's webhook-backed
// workers embed a *Worker and add the context-aware intention method, so
// they mediate remotely but execute locally). The accept hand-off is
// engine-internal, so Executor can only be satisfied through the worker
// machinery; providers registered without it still participate in mediation
// but are delivered to out of band.
type Executor interface {
	ProviderID() model.ProviderID
	QueueDepth() int
	accept(ctx context.Context, q model.Query, results chan<- Result, abandon chan<- model.ProviderID) bool
}

// Worker executes queries on its own goroutine at a fixed capacity.
// It implements mediator.Provider; all mediator-facing reads are
// mutex-guarded because mediations and executions run on different
// goroutines (and, in the sharded engine, on different shards at once).
type Worker struct {
	id       model.ProviderID
	capacity float64 // work units per second (real time)

	// IntentionFn maps a query to this worker's intention; required.
	intentionFn func(q model.Query) model.Intention
	// priceFn maps a query to a bid; nil = expected-delay pricing.
	priceFn func(q model.Query, pendingWork float64) float64
	// classes restricts the query classes this worker performs; nil means
	// any class. Set before registration via SetClasses.
	classes []int

	mu          sync.Mutex
	pendingWork float64
	queueLen    int
	sat         float64 // last satisfaction pushed by the service; info only
	shutdown    bool    // set under mu before done closes; gates accept

	tasks  chan task
	done   chan struct{}
	closed sync.Once
}

type task struct {
	q       model.Query
	results chan<- Result
	// abandon, when non-nil, receives the worker's ID if the worker shuts
	// down before delivering this task's result — the engine's ticket
	// collectors account for every accepted task, delivered or not. The
	// channel is buffered by the dispatcher so the send never blocks.
	abandon chan<- model.ProviderID
	start   time.Time
}

// NewWorker starts a worker goroutine. capacity must be > 0; queueCap bounds
// the task backlog (0 means 1024).
func NewWorker(id model.ProviderID, capacity float64, queueCap int, intentionFn func(model.Query) model.Intention) (*Worker, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("live: worker %d capacity %v must be positive", id, capacity)
	}
	if intentionFn == nil {
		return nil, fmt.Errorf("live: worker %d needs an intention function", id)
	}
	if queueCap <= 0 {
		queueCap = 1024
	}
	w := &Worker{
		id:          id,
		capacity:    capacity,
		intentionFn: intentionFn,
		tasks:       make(chan task, queueCap),
		done:        make(chan struct{}),
	}
	go w.run()
	return w, nil
}

// run executes queued tasks serially, simulating service time by sleeping
// work/capacity seconds of real time. It exits via the done channel — the
// tasks channel is never closed, because concurrent dispatchers may be
// mid-send when the worker shuts down (closing it would race). On exit it
// abandons the in-service task and everything still queued, signalling each
// task's abandon channel so ticket collectors never wait on work that will
// not happen; Close sets the shutdown flag before done closes, so no new
// task can slip in after the drain.
func (w *Worker) run() {
	for {
		var t task
		select {
		case t = <-w.tasks:
		case <-w.done:
			w.abandonPending(nil)
			return
		}
		service := time.Duration(t.q.Work / w.capacity * float64(time.Second))
		timer := time.NewTimer(service)
		select {
		case <-timer.C:
		case <-w.done:
			timer.Stop()
			w.abandonPending(&t)
			return
		}
		w.mu.Lock()
		w.pendingWork -= t.q.Work
		if w.pendingWork < 0 {
			w.pendingWork = 0
		}
		w.queueLen--
		w.mu.Unlock()
		if t.results != nil {
			t.results <- Result{Query: t.q, Provider: w.id, Latency: time.Since(t.start)}
		}
	}
}

// abandonPending signals abandonment for the interrupted in-service task
// (if any) and every task still queued at shutdown, and zeroes the backlog
// accounting. It runs on the worker goroutine after done closed; accept
// checks the shutdown flag under the same mutex Close sets it under, so no
// new task can be enqueued once the drain loop observes an empty channel.
func (w *Worker) abandonPending(inService *task) {
	abandon := func(t task) {
		if t.abandon != nil {
			t.abandon <- w.id
		}
	}
	if inService != nil {
		abandon(*inService)
	}
	for {
		select {
		case t := <-w.tasks:
			abandon(t)
		default:
			w.mu.Lock()
			w.pendingWork = 0
			w.queueLen = 0
			w.mu.Unlock()
			return
		}
	}
}

// accept enqueues a task without blocking: false if the worker is shutting
// down, the queue is full, or the context is already done. Dispatch must
// never park a mediation shard or stall a batch behind one saturated
// worker, so a full queue refuses the hand-off immediately (the engine
// reports ErrDispatch) rather than waiting for space. The enqueue happens
// under the worker mutex against the shutdown flag, so a task is either
// refused or guaranteed to be delivered-or-abandoned by the run loop —
// never silently lost.
func (w *Worker) accept(ctx context.Context, q model.Query, results chan<- Result, abandon chan<- model.ProviderID) bool {
	if ctx.Err() != nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.shutdown {
		return false
	}
	select {
	case w.tasks <- task{q: q, results: results, abandon: abandon, start: time.Now()}:
		w.pendingWork += q.Work
		w.queueLen++
		return true
	default:
		return false
	}
}

// Close stops the worker. Queued tasks are abandoned: their Results never
// arrive, but tasks dispatched through the ticket path signal their tickets
// so collectors complete instead of waiting forever.
func (w *Worker) Close() {
	w.closed.Do(func() {
		w.mu.Lock()
		w.shutdown = true
		close(w.done)
		w.mu.Unlock()
	})
}

// ProviderID implements mediator.Provider.
func (w *Worker) ProviderID() model.ProviderID { return w.id }

// QueueDepth reports the number of tasks currently queued at the worker,
// including the one in service, if any.
func (w *Worker) QueueDepth() int {
	w.mu.Lock()
	n := w.queueLen
	w.mu.Unlock()
	return n
}

// Snapshot implements mediator.Provider.
func (w *Worker) Snapshot(float64) model.ProviderSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	drain := w.pendingWork / w.capacity
	util := drain / 10 // 10 s backlog = saturated
	if util > 1 {
		util = 1
	}
	return model.ProviderSnapshot{
		ID:          w.id,
		Utilization: util,
		QueueLen:    w.queueLen,
		Capacity:    w.capacity,
		PendingWork: w.pendingWork,
	}
}

// CanPerform implements mediator.Provider; workers accept any class unless
// restricted with SetClasses.
func (w *Worker) CanPerform(q model.Query) bool {
	if w.classes == nil {
		return true
	}
	for _, c := range w.classes {
		if c == q.Class {
			return true
		}
	}
	return false
}

// Capabilities implements directory.CapabilityReporter so class-restricted
// workers are indexed by class and skipped entirely during candidate
// discovery for other classes. Nil (unrestricted) workers are universal.
func (w *Worker) Capabilities() []int { return w.classes }

// SetClasses restricts the worker to the given query classes; calling it
// with no arguments removes the restriction. It MUST be called before the
// worker is registered and never afterwards: the directory indexes
// capabilities once at registration time, and CanPerform reads the class
// list without synchronization from mediator shards — reconfiguring a
// registered worker both races and desyncs the capability index. To change
// classes, unregister the worker and register a fresh one.
func (w *Worker) SetClasses(classes ...int) {
	if len(classes) == 0 {
		w.classes = nil
		return
	}
	w.classes = append([]int(nil), classes...)
}

// Intention implements mediator.Provider.
func (w *Worker) Intention(q model.Query) model.Intention { return w.intentionFn(q) }

// Bid implements mediator.Provider.
func (w *Worker) Bid(q model.Query) float64 {
	w.mu.Lock()
	pending := w.pendingWork
	w.mu.Unlock()
	if w.priceFn != nil {
		return w.priceFn(q, pending)
	}
	return (pending + q.Work) / w.capacity
}

// SetPriceFn installs a custom bidding rule (must be called before the
// worker is registered).
func (w *Worker) SetPriceFn(fn func(q model.Query, pendingWork float64) float64) {
	w.priceFn = fn
}

// FuncConsumer adapts an intention function to mediator.Consumer.
type FuncConsumer struct {
	ID model.ConsumerID
	Fn func(q model.Query, snap model.ProviderSnapshot) model.Intention
}

// ConsumerID implements mediator.Consumer.
func (c FuncConsumer) ConsumerID() model.ConsumerID { return c.ID }

// Intention implements mediator.Consumer.
func (c FuncConsumer) Intention(q model.Query, snap model.ProviderSnapshot) model.Intention {
	if c.Fn == nil {
		return 0
	}
	return c.Fn(q, snap)
}
