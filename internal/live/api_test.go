package live

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/event"
	"sbqa/internal/model"
)

// newTestEngine builds a 2-shard async engine with real workers.
func newTestEngine(t *testing.T, opts ...Option) (*Engine, []*Worker) {
	t.Helper()
	base := []Option{
		WithWindow(30),
		WithConcurrency(2),
		WithAllocatorFactory(func(shard int) alloc.Allocator { return sbqaAllocator(uint64(shard) + 1) }),
	}
	eng, err := NewEngine(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	var workers []*Worker
	for i := 0; i < 4; i++ {
		w, err := NewWorker(model.ProviderID(i), 1000, 128, func(model.Query) model.Intention { return 0.5 })
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		eng.RegisterWorker(w)
		workers = append(workers, w)
	}
	for c := 0; c < 4; c++ {
		eng.RegisterConsumer(FuncConsumer{ID: model.ConsumerID(c), Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.4 }})
	}
	return eng, workers
}

// TestTicketSubmitAwait: the async path end to end — Submit returns a ticket
// with an assigned ID, Allocation yields the mediation result, Await the
// per-worker results, Done closes.
func TestTicketSubmitAwait(t *testing.T) {
	eng, _ := newTestEngine(t)
	tk := eng.Submit(context.Background(), model.Query{Consumer: 1, N: 2, Work: 0.5})
	if tk.Query().ID == 0 {
		t.Fatal("ticket has no assigned query ID")
	}
	a, err := tk.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != 2 {
		t.Fatalf("selected %v, want 2 workers", a.Selected)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	results, err := tk.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.Query.ID != tk.Query().ID {
			t.Errorf("result for query %d, want %d", r.Query.ID, tk.Query().ID)
		}
	}
	select {
	case <-tk.Done():
	default:
		t.Error("Done not closed after Await returned")
	}
	if tk.Err() != nil {
		t.Errorf("Err = %v", tk.Err())
	}
	if len(tk.Results()) != 2 {
		t.Errorf("Results() = %d entries, want 2", len(tk.Results()))
	}
}

// TestTicketPreservesSubmissionOrderPerConsumer: one consumer's tickets
// mediate in submission order even on the async path (FIFO shard queue).
func TestTicketPreservesSubmissionOrderPerConsumer(t *testing.T) {
	var mu sync.Mutex
	var order []model.QueryID
	obs := event.Funcs{Allocation: func(a *model.Allocation, _ int) {
		mu.Lock()
		order = append(order, a.Query.ID)
		mu.Unlock()
	}}
	eng, _ := newTestEngine(t, WithObserver(obs))
	const n = 40
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tickets[i] = eng.Submit(context.Background(), model.Query{Consumer: 2, N: 1, Work: 0.1})
	}
	for _, tk := range tickets {
		if _, err := tk.Allocation(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("mediation order not monotonic: %v", order)
		}
	}
	if len(order) != n {
		t.Fatalf("observed %d allocations, want %d", len(order), n)
	}
}

// TestEngineSubmitBatch: the async batch returns position-aligned tickets
// sharing one arrival stamp, and every ticket completes.
func TestEngineSubmitBatch(t *testing.T) {
	eng, _ := newTestEngine(t)
	queries := make([]model.Query, 12)
	for i := range queries {
		queries[i] = model.Query{Consumer: model.ConsumerID(i % 4), N: 1, Work: 0.2}
	}
	tickets := eng.SubmitBatch(context.Background(), queries)
	stamp := tickets[0].Query().IssuedAt
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, tk := range tickets {
		if tk.Query().IssuedAt != stamp {
			t.Errorf("ticket %d stamp %v, want %v (one arrival event)", i, tk.Query().IssuedAt, stamp)
		}
		if rs, err := tk.Await(ctx); err != nil || len(rs) != 1 {
			t.Fatalf("ticket %d: results %d err %v", i, len(rs), err)
		}
	}
}

// TestEngineCloseFailsNewSubmissions: queued work completes, later
// submissions fail with ErrEngineClosed.
func TestEngineCloseFailsNewSubmissions(t *testing.T) {
	eng, _ := newTestEngine(t)
	tk := eng.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 0.1})
	if _, err := tk.Allocation(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	late := eng.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 0.1})
	if _, err := late.Allocation(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close err = %v, want ErrEngineClosed", err)
	}
	select {
	case <-late.Done():
	default:
		t.Error("failed ticket must still complete")
	}
	eng.Close() // idempotent
}

// TestEngineStats: counters move with traffic, rejections count no-candidate
// classes, worker queues are visible.
func TestEngineStats(t *testing.T) {
	eng, _ := newTestEngine(t)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := eng.Submit(ctx, model.Query{Consumer: model.ConsumerID(i % 4), N: 1, Work: 0.1}).Allocation(); err != nil {
			t.Fatal(err)
		}
	}
	// An unregistered consumer: rejection.
	if _, err := eng.Submit(ctx, model.Query{Consumer: 77, N: 1, Work: 1}).Allocation(); err == nil {
		t.Fatal("want unregistered-consumer rejection")
	}
	st := eng.Stats()
	if got := st.Mediations(); got != 10 {
		t.Errorf("Mediations = %d, want 10", got)
	}
	var rejects uint64
	var meanCands float64
	for _, sh := range st.Shards {
		rejects += sh.Rejections
		if sh.MeanCandidates > meanCands {
			meanCands = sh.MeanCandidates
		}
	}
	if rejects != 1 {
		t.Errorf("Rejections = %d, want 1", rejects)
	}
	if meanCands <= 0 {
		t.Error("MeanCandidates not recorded")
	}
	if st.QueriesSubmitted != 11 {
		t.Errorf("QueriesSubmitted = %d, want 11", st.QueriesSubmitted)
	}
	if st.Providers != 4 || st.Consumers != 4 {
		t.Errorf("participants = %d/%d, want 4/4", st.Providers, st.Consumers)
	}
	if len(st.WorkerQueueDepths) != 4 {
		t.Errorf("WorkerQueueDepths has %d entries, want 4", len(st.WorkerQueueDepths))
	}
	if len(st.Shards) != 2 {
		t.Errorf("Shards = %d, want 2", len(st.Shards))
	}
}

// TestObserverLifecycleEvents: registration churn, allocations, rejections,
// dispatch failures, and periodic snapshots all reach the observer.
func TestObserverLifecycleEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	bump := func(k string) { mu.Lock(); counts[k]++; mu.Unlock() }
	obs := event.Funcs{
		Allocation:           func(*model.Allocation, int) { bump("alloc") },
		Rejection:            func(model.Query, error) { bump("reject") },
		DispatchFailure:      func(model.Query, *model.Allocation, error) { bump("dispatch") },
		ProviderRegistered:   func(model.ProviderID) { bump("preg") },
		ProviderDeparted:     func(model.ProviderID) { bump("pdep") },
		ConsumerRegistered:   func(model.ConsumerID) { bump("creg") },
		ConsumerDeparted:     func(model.ConsumerID) { bump("cdep") },
		SatisfactionSnapshot: func(event.SatisfactionSnapshot) { bump("snap") },
	}
	eng, workers := newTestEngine(t, WithObserver(obs), WithSnapshotInterval(10*time.Millisecond))
	ctx := context.Background()
	if _, err := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 0.1}).Allocation(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(ctx, model.Query{Consumer: 77, N: 1, Work: 1}).Allocation(); err == nil {
		t.Fatal("want rejection")
	}
	// Dispatch failure: the selection lands on a closed-but-registered worker.
	for _, w := range workers[1:] {
		eng.UnregisterWorker(w.ProviderID())
	}
	workers[0].Close()
	if _, err := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 0.1}).Allocation(); !errors.Is(err, ErrDispatch) {
		t.Fatalf("want ErrDispatch, got %v", err)
	}
	eng.UnregisterConsumer(3)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		snaps := counts["snap"]
		mu.Unlock()
		if snaps > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	// alloc = 2: the first query and the dispatch-failure query both mediate
	// successfully; the latter fails only at hand-off.
	for k, want := range map[string]int{"alloc": 2, "reject": 1, "dispatch": 1, "preg": 4, "pdep": 3, "creg": 4, "cdep": 1} {
		if counts[k] != want {
			t.Errorf("%s events = %d, want %d (all: %v)", k, counts[k], want, counts)
		}
	}
	if counts["snap"] == 0 {
		t.Error("no satisfaction snapshot emitted")
	}
}

// TestDispatchErrorPartitionsSelection: a partial dispatch failure names the
// workers that accepted vs failed, the accepted worker's result still
// arrives, and the typed error unwraps to ErrDispatch.
func TestDispatchErrorPartitionsSelection(t *testing.T) {
	eng, err := NewEngine(WithWindow(10), WithAllocator(alloc.NewCapacity()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	alive, err := NewWorker(0, 1000, 16, func(model.Query) model.Intention { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	dead, err := NewWorker(1, 1000, 16, func(model.Query) model.Intention { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	dead.Close() // closed but still registered: accept refuses
	eng.RegisterWorker(alive)
	eng.RegisterWorker(dead)
	eng.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	tk := eng.Submit(context.Background(), model.Query{Consumer: 0, N: 2, Work: 0.1})
	a, err := tk.Allocation()
	if !errors.Is(err, ErrDispatch) {
		t.Fatalf("err = %v, want ErrDispatch", err)
	}
	de, ok := AsDispatchError(err)
	if !ok {
		t.Fatalf("err %T is not *DispatchError", err)
	}
	if len(a.Selected) != 2 {
		t.Fatalf("selected %v, want both workers", a.Selected)
	}
	if len(de.Accepted) != 1 || de.Accepted[0] != 0 {
		t.Errorf("Accepted = %v, want [0]", de.Accepted)
	}
	if len(de.Failed) != 1 || de.Failed[0] != 1 {
		t.Errorf("Failed = %v, want [1]", de.Failed)
	}
	if de.Query.ID != tk.Query().ID {
		t.Errorf("DispatchError.Query.ID = %d, want %d", de.Query.ID, tk.Query().ID)
	}
	// The accepting worker still delivers; Await surfaces both the partial
	// results and the typed error.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	results, aerr := tk.Await(ctx)
	if !errors.Is(aerr, ErrDispatch) {
		t.Fatalf("Await err = %v, want the dispatch error", aerr)
	}
	if len(results) != 1 || results[0].Provider != 0 {
		t.Fatalf("results = %v, want one result from worker 0", results)
	}
	// The caller can now retry exactly the undelivered remainder.
	retry := tk.Query()
	retry.N = len(de.Failed)
	if retry.N != 1 {
		t.Fatalf("remainder = %d", retry.N)
	}
}

// TestFireAndForgetWithResults reproduces the v1 contract on the ticket
// path: workers deliver straight to the caller's channel and the ticket is
// done at hand-off.
func TestFireAndForgetWithResults(t *testing.T) {
	eng, _ := newTestEngine(t)
	results := make(chan Result, 1)
	tk := eng.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 0.1},
		WithResults(results), FireAndForget())
	if _, err := tk.Allocation(); err != nil {
		t.Fatal(err)
	}
	<-tk.Done() // done at hand-off, before the result necessarily arrived
	select {
	case r := <-results:
		if r.Query.ID != tk.Query().ID {
			t.Errorf("result for %d, want %d", r.Query.ID, tk.Query().ID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no result on the caller channel")
	}
	if len(tk.Results()) != 0 {
		t.Error("fire-and-forget ticket must not collect")
	}
}

// TestTicketCompletesWhenWorkerClosesMidExecution: a worker closed while
// holding accepted tasks signals abandonment, so the tickets complete (no
// leaked collectors, no forever-blocked Await) and name the worker in
// Abandoned.
func TestTicketCompletesWhenWorkerClosesMidExecution(t *testing.T) {
	eng, err := NewEngine(WithWindow(10), WithAllocator(alloc.NewCapacity()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Slow worker: each query takes ~10s, so both tickets are pending when
	// the worker closes.
	slow, err := NewWorker(3, 1, 8, func(model.Query) model.Intention { return 0.9 })
	if err != nil {
		t.Fatal(err)
	}
	eng.RegisterWorker(slow)
	eng.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	first := eng.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 10})
	second := eng.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 10})
	for _, tk := range []*Ticket{first, second} {
		if _, err := tk.Allocation(); err != nil {
			t.Fatal(err)
		}
	}
	slow.Close() // one task in service, one queued: both abandoned

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, tk := range []*Ticket{first, second} {
		results, err := tk.Await(ctx)
		if err != nil {
			t.Fatalf("ticket %d: Await err %v (submission itself succeeded)", i, err)
		}
		if len(results) != 0 {
			t.Errorf("ticket %d: %d results from a closed worker", i, len(results))
		}
		ab := tk.Abandoned()
		if len(ab) != 1 || ab[0] != 3 {
			t.Errorf("ticket %d: Abandoned = %v, want [3]", i, ab)
		}
	}
}

// TestAwaitContextExpiry: Await honors its context and can be re-called.
func TestAwaitContextExpiry(t *testing.T) {
	eng, err := NewEngine(WithWindow(10), WithAllocator(alloc.NewCapacity()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// One slow worker: 2 work units at capacity 1 take ~2s of service time.
	slow, err := NewWorker(50, 1, 4, func(model.Query) model.Intention { return 0.9 })
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	eng.RegisterWorker(slow)
	eng.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})
	tk := eng.Submit(context.Background(), model.Query{Consumer: 0, N: 1, Work: 2})
	if _, err := tk.Allocation(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := tk.Await(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if rs, err := tk.Await(ctx2); err != nil || len(rs) != 1 {
		t.Fatalf("second Await: %v %v", rs, err)
	}
}

// TestSubmitGuardVetsSubmissions: an installed guard fails tickets with its
// own error before any shard sees the query, per-query in batches, and a nil
// guard restores normal behavior. This is the cluster layer's ownership hook.
func TestSubmitGuardVetsSubmissions(t *testing.T) {
	eng, _ := newTestEngine(t)
	ctx := context.Background()
	errNotOwner := errors.New("consumer owned elsewhere")
	eng.SetSubmitGuard(func(q model.Query) error {
		if q.Consumer == 1 {
			return errNotOwner
		}
		return nil
	})

	if _, err := eng.Submit(ctx, model.Query{Consumer: 1, N: 1, Work: 0.1}).Allocation(); !errors.Is(err, errNotOwner) {
		t.Fatalf("guarded submit err = %v, want the guard's error", err)
	}
	if _, err := eng.Submit(ctx, model.Query{Consumer: 0, N: 1, Work: 0.1}).Allocation(); err != nil {
		t.Fatalf("unguarded consumer rejected: %v", err)
	}

	// Batch: only the guarded consumer's tickets fail; the rest mediate.
	tickets := eng.SubmitBatch(ctx, []model.Query{
		{Consumer: 0, N: 1, Work: 0.1},
		{Consumer: 1, N: 1, Work: 0.1},
		{Consumer: 2, N: 1, Work: 0.1},
	})
	if _, err := tickets[0].Allocation(); err != nil {
		t.Errorf("batch[0] err = %v, want nil", err)
	}
	if _, err := tickets[1].Allocation(); !errors.Is(err, errNotOwner) {
		t.Errorf("batch[1] err = %v, want the guard's error", err)
	}
	if _, err := tickets[2].Allocation(); err != nil {
		t.Errorf("batch[2] err = %v, want nil", err)
	}

	// The guard rejected before mediation: no shard counted the query.
	if got := eng.Stats().Mediations(); got != 3 {
		t.Errorf("Mediations = %d, want 3 (guarded queries never mediate)", got)
	}

	eng.SetSubmitGuard(nil)
	if _, err := eng.Submit(ctx, model.Query{Consumer: 1, N: 1, Work: 0.1}).Allocation(); err != nil {
		t.Fatalf("after removing guard: %v", err)
	}
}

// TestBlockingWrapperMatchesTicketPath: the blocking Service.Submit and the
// awaited ticket produce identical allocations under identical inputs.
func TestBlockingWrapperMatchesTicketPath(t *testing.T) {
	build := func() (*Engine, error) {
		return NewEngine(
			WithWindow(20),
			WithAllocator(sbqaAllocator(99)),
			WithClock(func() float64 { return 2 }),
		)
	}
	reg := func(e *Engine) {
		e.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(q model.Query, s model.ProviderSnapshot) model.Intention {
			return model.Intention(float64(int(s.ID)%3)/3 - 0.1)
		}})
		for i := 0; i < 6; i++ {
			e.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.3})
		}
	}
	blocking, err := build()
	if err != nil {
		t.Fatal(err)
	}
	defer blocking.Close()
	reg(blocking)
	async, err := build()
	if err != nil {
		t.Fatal(err)
	}
	defer async.Close()
	reg(async)

	for i := 0; i < 25; i++ {
		q := model.Query{Consumer: 0, N: 1, Work: 1}
		wa, werr := blocking.Service().Submit(context.Background(), q, nil)
		ga, gerr := async.Submit(context.Background(), q).Allocation()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("query %d: err %v vs %v", i, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if want, got := wa.String(), ga.String(); want != got {
			t.Fatalf("query %d diverged:\nblocking: %s\nticket:   %s", i, want, got)
		}
	}
}
