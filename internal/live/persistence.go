package live

// This file is the engine half of the durability subsystem (internal/persist):
// WithPersistence(dir) attaches a state directory to the engine, NewEngine
// restores the adaptation state persisted there before accepting traffic,
// a recorder journals every state-mutating event off the typed observer
// stream, a background loop compacts sealed journal segments into fresh
// snapshots, and Close flushes a final snapshot so a graceful restart
// resumes byte-identically.

import (
	"encoding/json"
	"fmt"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/persist"
	"sbqa/internal/policy"
)

// WithPersistence makes the engine's adaptation state durable under dir:
// on construction NewEngine restores the satisfaction memory, the active
// policy (and its generation), the query ID counter, and the allocator
// sampling states persisted there, and from then on every mediation
// outcome, participant departure, and policy change is journaled
// asynchronously (bounded queue; overload drops and counts rather than
// blocking a mediation). Close drains the journal and writes a final
// snapshot, making a graceful restart's allocation sequence byte-identical
// to an uninterrupted run; after a crash, recovery loses at most the last
// unsynced record batch and the sampling streams rewind to the last
// snapshot. Restore details and counters surface in Stats().Persistence.
//
// The participant directory is NOT persisted: workers and consumers are
// runtime objects the embedder re-registers on boot; their satisfaction
// memory is what survives.
func WithPersistence(dir string, opts ...persist.Option) Option {
	return func(c *Config) {
		c.PersistDir = dir
		c.PersistOpts = opts
	}
}

// enginePersistence bundles the engine's durability runtime.
type enginePersistence struct {
	store *persist.Store
	rec   *persist.Recorder
	stop  chan struct{}
}

// openPersistence opens the store and starts the recorder. Restore happens
// later, once the service (and its registry) exists.
func openPersistence(dir string, opts []persist.Option) (*enginePersistence, error) {
	store, err := persist.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	return &enginePersistence{store: store, stop: make(chan struct{})}, nil
}

// restore applies the state directory to a freshly built service: import
// the satisfaction snapshot and replay the journal tail into the registry,
// recover the query ID counter, and re-install the persisted policy and
// allocator sampling states. Runs before any traffic (NewEngine has not
// returned), so shard state is written directly.
func (p *enginePersistence) restore(s *Service, cfg *Config) error {
	res, err := p.store.Restore(s.reg)
	if err != nil {
		return err
	}
	if res.NextQueryID > s.nextID.Load() {
		s.nextID.Store(res.NextQueryID)
	}

	switch {
	case res.PolicyJSON != nil && cfg.Policy != nil:
		// The persisted policy — possibly generations ahead of the boot
		// spec — wins: a warm restart resumes where the engine stopped,
		// not where the flags say it started. Wiping the state dir (or
		// running without one) restores flag precedence.
		spec, err := policy.Parse(res.PolicyJSON)
		if err != nil {
			return fmt.Errorf("live: persisted policy: %w", err)
		}
		spec = spec.Normalized()
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("live: persisted policy: %w", err)
		}
		deadline := s.baseDeadline
		if spec.ParticipantDeadline > 0 {
			deadline = spec.ParticipantDeadline.Std()
		}
		for i, sh := range s.shards {
			a, err := spec.Build(i)
			if err != nil {
				return fmt.Errorf("live: rebuilding persisted policy: %w", err)
			}
			restoreAllocState(a, res.AllocStates, i, len(s.shards))
			sh.mu.Lock()
			sh.med.SetAllocator(a)
			sh.med.SetParticipantDeadline(deadline)
			sh.curGen = res.PolicyGeneration
			sh.appliedGen.Store(res.PolicyGeneration)
			sh.mu.Unlock()
		}
		specCopy := spec
		s.pol.spec.Store(&specCopy)
		s.pol.gen.Store(res.PolicyGeneration)
	default:
		// No persisted policy (or an allocator-built engine): keep the
		// construction-time allocators and resume their sampling streams.
		for i, sh := range s.shards {
			sh.mu.Lock()
			restoreAllocState(sh.med.Allocator(), res.AllocStates, i, len(s.shards))
			sh.mu.Unlock()
		}
	}
	return nil
}

// restoreAllocState applies shard i's persisted state blob, if the
// snapshot's shard layout matches this engine's and the allocator accepts
// the blob. Mismatches (resharded engine, policy kind changed between
// snapshot and restore) silently keep the fresh seed-derived state — a
// statistical restart for the sampling stream, not an error.
func restoreAllocState(a alloc.Allocator, states [][]byte, i, shards int) {
	if len(states) != shards || i >= len(states) || states[i] == nil {
		return
	}
	if st, ok := a.(alloc.Stateful); ok {
		_ = st.RestoreState(states[i])
	}
}

// policySource resolves the active policy for journaled policy-change
// records (the typed event carries only generation, name, and kind).
func (s *Service) policySource() (uint64, []byte, bool) {
	spec, ok := s.Policy()
	if !ok {
		return 0, nil, false
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return 0, nil, false
	}
	return s.PolicyGeneration(), data, true
}

// persistLoop compacts in the background: when enough sealed journal
// segments accumulate, the engine folds them into a fresh snapshot and the
// store prunes what the snapshot covers.
func (e *Engine) persistLoop(interval time.Duration, threshold int) {
	defer e.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if e.pst.store.SealedSegments() >= threshold {
				_ = e.flushSnapshot(true)
			}
		case <-e.pst.stop:
			return
		}
	}
}

// flushSnapshot captures and writes one exact snapshot. The engine is
// quiesced for the capture — every shard lock held, the recorder drained,
// the journal rotated — so the snapshot plus the new active segment exactly
// partition the record history: nothing is lost, nothing double-applied.
// Encoding and writing happen after the locks are released; only the
// in-memory capture pauses mediation.
func (e *Engine) flushSnapshot(compaction bool) error {
	svc := e.svc
	for _, sh := range svc.shards {
		sh.mu.Lock()
	}
	e.pst.rec.Drain()
	first, err := e.pst.store.RotateForSnapshot()
	if err != nil {
		for _, sh := range svc.shards {
			sh.mu.Unlock()
		}
		return err
	}
	snap := &persist.Snapshot{
		FirstSegment: first,
		NextQueryID:  svc.nextID.Load(),
		Window:       svc.reg.Window(),
		AllocStates:  make([][]byte, len(svc.shards)),
	}
	for i, sh := range svc.shards {
		// Adopt any published-but-unadopted policy generation first, so
		// the exported allocator states belong to the policy the snapshot
		// names (adoption would have happened at the next mediation
		// boundary anyway).
		sh.applyPolicy()
		if st, ok := sh.med.Allocator().(alloc.Stateful); ok {
			snap.AllocStates[i] = st.ExportState()
		}
	}
	if spec, ok := svc.Policy(); ok {
		data, err := json.Marshal(spec)
		if err == nil {
			snap.PolicyJSON = data
			snap.PolicyGeneration = svc.PolicyGeneration()
		}
	}
	snap.Consumers, snap.Providers = persist.CaptureRegistry(svc.reg)
	for _, sh := range svc.shards {
		sh.mu.Unlock()
	}
	return e.pst.store.WriteSnapshot(snap, compaction)
}

// closePersistence finishes the durability pipeline on graceful Close: the
// recorder drains and syncs, a final snapshot makes the restart warm, and
// the store closes. Called after the shard loops have stopped.
func (e *Engine) closePersistence() {
	e.pst.rec.Close()
	_ = e.flushSnapshot(false)
	_ = e.pst.store.Close()
}

// closeAbrupt is the crash-emulation twin of Close, used by the recovery
// tests: shard loops stop, but nothing is flushed — buffered journal
// records are dropped exactly as a process kill would drop them, and no
// final snapshot is written.
func (e *Engine) closeAbrupt() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	if e.tuner != nil {
		e.tuner.Close()
	}
	close(e.stopSnap)
	if e.pst != nil {
		close(e.pst.stop)
	}
	for _, s := range e.scheds {
		s.Close()
	}
	e.wg.Wait()
	if e.pst != nil {
		e.pst.rec.CloseAbrupt()
		e.pst.store.Abort()
	}
}
