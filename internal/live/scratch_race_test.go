package live

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"sbqa/internal/mediator"
	"sbqa/internal/model"
	"sbqa/internal/policy"
)

// TestScratchArenasUnderChurnAndReconfigure hammers the zero-allocation
// mediation hot path from every direction at once: concurrent Submit and
// SubmitBatch traffic on several shards (each shard's scratch arena — the
// snapshot buffers, the intention buffers, the interned-index snapshot cache
// — is reused per mediation), while one goroutine hot-swaps the allocation
// policy (rebuilding allocators and their scoring scratch at mediation
// boundaries) and another churns provider registrations (recycling interned
// indices under the running engine's snapshot caches). Run under -race this
// is the leak/race canary for the arena design: a buffer crossing shard
// boundaries, a stale interned slot surviving recycling, or an allocator
// swap racing a mediation all surface here.
func TestScratchArenasUnderChurnAndReconfigure(t *testing.T) {
	spec := sbqaSpec(1)
	svc, err := NewServiceWithConfig(Config{
		Window:      20,
		Concurrency: 4,
		Policy:      &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	const consumers = 8
	for c := 0; c < consumers; c++ {
		svc.RegisterConsumer(FuncConsumer{ID: model.ConsumerID(c), Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
			return model.Intention(float64(int(snap.ID)%5)/5 - 0.3)
		}})
	}
	// A stable core of providers keeps every query allocatable while the
	// churner recycles the volatile band above it.
	const stable = 24
	for i := 0; i < stable; i++ {
		svc.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.5, util: float64(i%10) / 10})
	}

	ctx := context.Background()
	var submitters, churners sync.WaitGroup
	var malformed atomic.Int32
	stop := make(chan struct{})

	// Submitters: blocking single submits and batches, all shards.
	for w := 0; w < 4; w++ {
		submitters.Add(1)
		go func(w int) {
			defer submitters.Done()
			for i := 0; i < 300; i++ {
				q := model.Query{Consumer: model.ConsumerID((w + i) % consumers), N: 2, Work: 5}
				var as []*model.Allocation
				var errs []error
				if i%5 == 4 {
					batch := []model.Query{q, {Consumer: model.ConsumerID(i % consumers), N: 1, Work: 3}}
					as, errs = svc.SubmitBatch(ctx, batch, nil)
				} else {
					a, err := svc.Submit(ctx, q, nil)
					as, errs = []*model.Allocation{a}, []error{err}
				}
				for j, a := range as {
					if errs[j] != nil {
						// Transient churn races are legitimate outcomes;
						// anything else is not.
						if errors.Is(errs[j], mediator.ErrStaleSelection) ||
							errors.Is(errs[j], mediator.ErrNoCandidates) ||
							errors.Is(errs[j], ErrDispatch) {
							continue
						}
						malformed.Add(1)
						continue
					}
					// Arena corruption shows up as misaligned vectors.
					// (Baseline allocators legitimately produce no Scores;
					// when present they must align with the proposal set.)
					if a == nil || len(a.Selected) == 0 ||
						len(a.ConsumerIntentions) != len(a.Proposed) ||
						len(a.ProviderIntentions) != len(a.Proposed) ||
						(len(a.Scores) != 0 && len(a.Scores) != len(a.Proposed)) {
						malformed.Add(1)
					}
				}
			}
		}(w)
	}

	// Policy churner: SbQA ↔ Capacity, rebuilding allocators while
	// mediations are in flight (swaps apply at mediation boundaries).
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			next := policy.Spec{Kind: policy.Capacity}
			if i%2 == 0 {
				next = sbqaSpec(uint64(i + 2))
			}
			if err := svc.Reconfigure(ctx, next); err != nil {
				t.Errorf("Reconfigure: %v", err)
				return
			}
		}
	}()

	// Provider churner: registers and unregisters a rotating band, forcing
	// intern-index recycling under the live snapshot caches.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := model.ProviderID(stable + i%16)
			svc.RegisterWorker(mustWorker(t, id))
			svc.UnregisterWorker(id)
		}
	}()

	// Wait for the submitters, then stop the churners.
	submitters.Wait()
	close(stop)
	churners.Wait()

	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed or unexpectedly failed allocations under churn", n)
	}
}

func mustWorker(t *testing.T, id model.ProviderID) *Worker {
	t.Helper()
	w, err := NewWorker(id, 100, 1, func(model.Query) model.Intention { return 0.2 })
	if err != nil {
		t.Fatal(err)
	}
	return w
}
