package live

import (
	"context"
	"errors"
	"sync"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/model"
)

// TestShardedEngineRace is the engine's race-detector workout: 8 submitting
// goroutines (one consumer each) drive a 4-shard engine while extra workers
// join and leave and observers read satisfactions and directory state. The
// point is `go test -race ./internal/live` covering every cross-shard path:
// shared directory, shared striped registry, per-shard mediators, dispatch.
func TestShardedEngineRace(t *testing.T) {
	svc, err := NewServiceWithConfig(Config{
		Window:      50,
		Concurrency: 4,
		NewAllocator: func(shard int) alloc.Allocator {
			return sbqaAllocator(uint64(shard) + 1)
		},
		AnalyzeBest: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A stable pool of workers that never leaves, so mediation always has
	// candidates.
	const stableWorkers = 6
	for i := 0; i < stableWorkers; i++ {
		w, err := NewWorker(model.ProviderID(i), 2000, 512, func(model.Query) model.Intention { return 0.4 })
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		svc.RegisterWorker(w)
	}

	const submitters = 8
	const perSubmitter = 60
	for c := 0; c < submitters; c++ {
		svc.RegisterConsumer(FuncConsumer{ID: model.ConsumerID(c), Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
			return model.Intention(0.6 - snap.Utilization)
		}})
	}

	// Batch iterations submit two queries, so allow for the overshoot.
	results := make(chan Result, 2*submitters*perSubmitter)
	var wg sync.WaitGroup

	// completed counts queries whose whole selection landed on stable
	// workers: those are guaranteed a result. Queries allocated to a churn
	// worker may be abandoned when it closes mid-service (documented Worker
	// semantics), so they cannot be awaited.
	completed := make([]int, submitters)
	stableOnly := func(a *model.Allocation) bool {
		for _, id := range a.Selected {
			if id >= stableWorkers {
				return false
			}
		}
		return true
	}
	for c := 0; c < submitters; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				q := model.Query{Consumer: model.ConsumerID(c), N: 1, Work: 0.2, Class: i % 2}
				if i%10 == 9 {
					// Batch path: 2 queries at once.
					as, errs := svc.SubmitBatch(context.Background(), []model.Query{q, q}, results)
					for j, e := range errs {
						if e == nil {
							if stableOnly(as[j]) {
								completed[c]++
							}
						} else if !errors.Is(e, ErrDispatch) {
							t.Errorf("submitter %d batch: %v", c, e)
							return
						}
					}
					continue
				}
				a, err := svc.Submit(context.Background(), q, results)
				if err == nil {
					if stableOnly(a) {
						completed[c]++
					}
				} else if !errors.Is(err, ErrDispatch) {
					t.Errorf("submitter %d: %v", c, err)
					return
				}
			}
		}()
	}

	// Churn: transient workers join and leave continuously; some are
	// class-1 specialists, so the capability index churns too.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < 3; g++ {
		g := g
		churn.Add(1)
		go func() {
			defer churn.Done()
			id := model.ProviderID(100 + g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w, err := NewWorker(id, 2000, 64, func(model.Query) model.Intention { return 0.8 })
				if err != nil {
					t.Errorf("churn %d: %v", g, err)
					return
				}
				if g%2 == 1 {
					w.SetClasses(1)
				}
				svc.RegisterWorker(w)
				svc.UnregisterWorker(id)
				w.Close()
			}
		}()
	}

	// Observers: satisfaction reads and directory lookups during the storm.
	var observers sync.WaitGroup
	for g := 0; g < 2; g++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < stableWorkers; i++ {
					if s := svc.ProviderSatisfaction(model.ProviderID(i)); s < 0 || s > 1 {
						t.Errorf("worker %d satisfaction %v", i, s)
						return
					}
				}
				for c := 0; c < submitters; c++ {
					_ = svc.ConsumerSatisfaction(model.ConsumerID(c))
				}
				_ = svc.Directory().NumProviders()
			}
		}()
	}

	wg.Wait()
	close(stop)
	churn.Wait()
	observers.Wait()

	// Drain all results for successfully dispatched queries.
	total := 0
	for _, n := range completed {
		total += n
	}
	for i := 0; i < total; i++ {
		<-results
	}
	// Satisfaction is well defined for every participant afterwards.
	for c := 0; c < submitters; c++ {
		if s := svc.ConsumerSatisfaction(model.ConsumerID(c)); s < 0 || s > 1 {
			t.Errorf("consumer %d satisfaction %v", c, s)
		}
	}
}

// TestConcurrentConsumerChurn: consumers also join and leave while others
// submit; the engine must never panic or deadlock, and failed submissions
// must name the unregistered consumer.
func TestConcurrentConsumerChurn(t *testing.T) {
	svc, err := NewServiceWithConfig(Config{
		Window:       30,
		Concurrency:  2,
		NewAllocator: func(shard int) alloc.Allocator { return alloc.NewCapacity() },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		svc.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.5})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := model.ConsumerID(g)
			for i := 0; i < 200; i++ {
				svc.RegisterConsumer(FuncConsumer{ID: id, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.2 }})
				// The submit may race with another goroutine's view of the
				// directory, but must never fail for any reason other than
				// "consumer unregistered" (we only unregister our own ID).
				if _, err := svc.Submit(context.Background(), model.Query{Consumer: id, N: 1, Work: 1}, nil); err != nil {
					t.Errorf("consumer %d: %v", g, err)
					return
				}
				svc.UnregisterConsumer(id)
			}
		}()
	}
	wg.Wait()
}
