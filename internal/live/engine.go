package live

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/directory"
	"sbqa/internal/event"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
	"sbqa/internal/persist"
	"sbqa/internal/policy"
	"sbqa/internal/qos"
	"sbqa/internal/satisfaction"
	"sbqa/internal/trace"
)

// Config assembles a sharded mediation engine. The zero value is not usable
// on its own: either Allocator (single shard) or NewAllocator must be set.
//
// Deprecated: Config remains the v1 construction surface and keeps working,
// but new code should build an Engine through NewEngine and the functional
// options (WithWindow, WithConcurrency, WithAllocatorFactory, WithClock,
// WithObserver, ...), which cover the same knobs and the async extras.
type Config struct {
	// Window is the satisfaction memory length k.
	Window int

	// Concurrency is the number of mediator shards. Values below 1 mean 1.
	// Queries route to shards by a hash of their ConsumerID, so a single
	// consumer's stream is always serialized while distinct consumers
	// mediate in parallel.
	Concurrency int

	// Allocator is the allocation technique for a single-shard engine.
	// Ignored when NewAllocator is set.
	Allocator alloc.Allocator

	// NewAllocator builds one allocator per shard. Allocators carry
	// internal state (sampling RNGs, round-robin cursors) and are not safe
	// for concurrent use, so a multi-shard engine needs one instance per
	// shard; seed them per shard index for reproducible-yet-decorrelated
	// sampling streams. Required when Concurrency > 1 and Policy is nil.
	NewAllocator func(shard int) alloc.Allocator

	// Policy, when set, supplies the engine's allocation policy
	// declaratively: per-shard allocators come from Policy.Build(shard)
	// and the spec becomes the engine's generation-0 policy, replacing
	// Allocator/NewAllocator (setting both is a configuration error on
	// the NewEngine path). The running policy is later swapped with
	// Engine.Reconfigure.
	Policy *policy.Spec

	// Tuner, when set (WithTuner), runs a policy.Tuner bound to the
	// engine: a background MAPE-K loop that watches the satisfaction
	// snapshot stream and issues bounded Reconfigure steps. Requires
	// Policy and a positive SnapshotInterval — the snapshots are the
	// tuner's sensor input.
	Tuner *policy.TunerConfig

	// AnalyzeBest mirrors mediator.Config.AnalyzeBest: evaluate the
	// consumer's intention over the whole candidate set so allocation
	// satisfaction is measured against the true optimum.
	AnalyzeBest bool

	// OnMediation mirrors mediator.Config.OnMediation. With several shards
	// it is invoked concurrently and must be safe for concurrent use.
	//
	// Deprecated: the v1 observability hook; set Observer instead, which
	// also sees rejections, dispatch failures, and registration churn.
	// When both are set, both fire.
	OnMediation func(a *model.Allocation, candidates int)

	// Observer receives the engine's lifecycle events: allocations and
	// rejections (from every mediator shard), dispatch failures,
	// registration churn on the shared directory, and — when the engine is
	// built with a snapshot interval — periodic satisfaction snapshots.
	// Callbacks run synchronously on the emitting goroutine and must be
	// fast, non-blocking, and safe for concurrent use.
	Observer event.Observer

	// QueueDepth bounds each shard's asynchronous submission queue (the
	// Engine ticket path; the blocking Service calls bypass the queues).
	// Values below 1 mean 1024.
	QueueDepth int

	// QoS, when set (WithQoS), installs the engine's overload-survival
	// configuration: class-aware shard scheduling and typed load shedding
	// (see the qos package). Takes precedence over the construction
	// policy's qos block; nil with no policy block keeps the historical
	// single-FIFO backpressure semantics. Engine-only, like QueueDepth.
	QoS *qos.Spec

	// SnapshotInterval, when positive and Observer is set, makes the
	// Engine emit OnSatisfactionSnapshot every interval (wall-clock).
	SnapshotInterval time.Duration

	// ParticipantDeadline mirrors mediator.Config.ParticipantDeadline: the
	// per-participant bound on each context-aware participant call during
	// batched intention and bid collection. A participant that misses it is
	// abandoned and its intention imputed from the satisfaction registry
	// (counted in ShardStats.Imputations / IntentionTimeouts and emitted as
	// OnIntentionImputed). Zero means no per-participant bound.
	ParticipantDeadline time.Duration

	// NowFn overrides the engine clock: it returns the current time in
	// seconds on the mediation time axis. Nil uses wall-clock seconds
	// since the service started. Deterministic tests inject a fake clock.
	NowFn func() float64

	// PersistDir, when non-empty, makes the engine's adaptation state
	// durable under that directory (see WithPersistence); PersistOpts
	// tune the store. Only the asynchronous Engine honors these — the
	// blocking Service constructors ignore them (persistence needs the
	// engine's lifecycle: restore on construction, flush on Close).
	PersistDir  string
	PersistOpts []persist.Option

	// Trace, when set (WithTracing), builds the engine's flight recorder:
	// sampled queries record one span per pipeline stage plus the
	// allocation explain record, readable through Service.Tracer(). Nil
	// disables tracing entirely — the hot path then pays one nil check
	// per submission and nothing else.
	Trace *trace.Config
}

// shard is one mediation lane: a single-threaded mediator behind its own
// mutex, plus that lane's monotonic counters. The pointer indirection keeps
// each shard's hot mutex on its own cache line region.
type shard struct {
	mu  sync.Mutex
	med *mediator.Mediator

	// Policy generations (see policy.go): nextGen is the latest published
	// generation, loaded at every mediation boundary; curGen (guarded by
	// mu) is the one this shard is running; appliedGen mirrors curGen for
	// lock-free Stats reads.
	nextGen    atomic.Pointer[generation]
	curGen     uint64
	appliedGen atomic.Uint64

	// Lifetime counters (see ShardStats).
	mediations        atomic.Uint64
	rejections        atomic.Uint64
	dispatchFailures  atomic.Uint64
	candidateSum      atomic.Uint64
	imputations       atomic.Uint64
	intentionTimeouts atomic.Uint64
	policySwaps       atomic.Uint64
}

// shardObserver sits between each shard's mediator and the user observer:
// it maintains the shard's counters on every mediation outcome and forwards
// to the user observer when one is configured. The mediator only emits
// allocation and rejection events, so the other Observer methods come from
// the embedded Nop.
type shardObserver struct {
	event.Nop
	sh   *shard
	user event.Observer
}

func (o shardObserver) OnAllocation(a *model.Allocation, candidates int) {
	o.sh.mediations.Add(1)
	o.sh.candidateSum.Add(uint64(candidates))
	if o.user != nil {
		o.user.OnAllocation(a, candidates)
	}
}

func (o shardObserver) OnRejection(q model.Query, reason error) {
	o.sh.rejections.Add(1)
	if o.user != nil {
		o.user.OnRejection(q, reason)
	}
}

func (o shardObserver) OnIntentionImputed(im event.Imputation) {
	o.sh.imputations.Add(1)
	if im.Timeout() {
		o.sh.intentionTimeouts.Add(1)
	}
	if o.user != nil {
		o.user.OnIntentionImputed(im)
	}
}

// Service is a thread-safe mediation front end: a sharded engine over a
// shared provider directory and a shared lock-striped satisfaction
// registry. Its Submit/SubmitBatch calls are blocking thin wrappers over
// the ticket pipeline; the Engine facade exposes the same pipeline
// asynchronously. See the package documentation for the architecture.
type Service struct {
	dir    *directory.Directory
	reg    *satisfaction.Registry
	shards []*shard
	obs    event.Observer // user observer; nil when none configured
	pol    policyState    // declarative policy control plane (policy.go)
	nextID atomic.Int64
	start  time.Time
	nowFn  func() float64

	// baseDeadline is the engine-configured participant deadline
	// (WithParticipantDeadline); policies without a deadline of their own
	// run under it (see Reconfigure).
	baseDeadline time.Duration

	// tracer is the flight recorder (WithTracing); nil disables tracing.
	tracer *trace.Recorder
}

// NewService returns a single-shard service running the given allocation
// technique — the historical serialized front end, byte-identical in
// behavior to the pre-sharding implementation.
func NewService(allocator alloc.Allocator, window int) *Service {
	s, err := NewServiceWithConfig(Config{Allocator: allocator, Window: window})
	if err != nil {
		// Unreachable: the single-shard path has no invalid configurations
		// beyond a nil allocator, which fails at first Mediate exactly like
		// the historical constructor did.
		panic(err)
	}
	return s
}

// NewServiceWithConfig builds a sharded engine from cfg.
func NewServiceWithConfig(cfg Config) (*Service, error) {
	n := cfg.Concurrency
	if n < 1 {
		n = 1
	}
	// The base deadline is the engine-level configuration; a policy spec
	// may override it per generation, and a later spec with no deadline
	// restores this base (see policy.go).
	baseDeadline := cfg.ParticipantDeadline
	var spec policy.Spec
	if cfg.Policy != nil {
		spec = cfg.Policy.Normalized()
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if spec.ParticipantDeadline > 0 && cfg.ParticipantDeadline == 0 {
			cfg.ParticipantDeadline = spec.ParticipantDeadline.Std()
		}
	} else if n > 1 && cfg.NewAllocator == nil {
		return nil, errors.New("live: Concurrency > 1 requires Config.NewAllocator or Config.Policy (allocators hold per-shard state and cannot be shared)")
	}
	s := &Service{
		dir:          directory.New(),
		reg:          satisfaction.NewRegistry(cfg.Window),
		shards:       make([]*shard, n),
		obs:          cfg.Observer,
		start:        time.Now(),
		baseDeadline: baseDeadline,
	}
	if cfg.NowFn != nil {
		s.nowFn = cfg.NowFn
	} else {
		s.nowFn = func() float64 { return time.Since(s.start).Seconds() }
	}
	if cfg.Observer != nil {
		s.dir.SetObserver(cfg.Observer)
	}
	if cfg.Trace != nil {
		s.tracer = trace.New(*cfg.Trace)
	}
	for i := range s.shards {
		a := cfg.Allocator
		if cfg.Policy != nil {
			var err error
			if a, err = spec.Build(i); err != nil {
				return nil, err
			}
		} else if cfg.NewAllocator != nil {
			a = cfg.NewAllocator(i)
		}
		sh := &shard{}
		sh.med = mediator.New(a, mediator.Config{
			Window:              cfg.Window,
			AnalyzeBest:         cfg.AnalyzeBest,
			OnMediation:         cfg.OnMediation,
			Observer:            shardObserver{sh: sh, user: cfg.Observer},
			Registry:            s.reg,
			Directory:           s.dir,
			ParticipantDeadline: cfg.ParticipantDeadline,
			Tracer:              s.tracer,
		})
		s.shards[i] = sh
	}
	if cfg.Policy != nil {
		s.installPolicy(spec)
	}
	return s, nil
}

// Shards returns the number of mediator shards.
func (s *Service) Shards() int { return len(s.shards) }

// Directory exposes the shared participant catalog.
func (s *Service) Directory() *directory.Directory { return s.dir }

// Tracer exposes the flight recorder, or nil when the engine was built
// without WithTracing. Callers read traces and stage histograms from it;
// gateways also use it to start trace contexts before submission.
func (s *Service) Tracer() *trace.Recorder { return s.tracer }

// traceFinish closes a sampled query's trace with the given outcome.
// No-op for unsampled queries and untraced engines.
func (s *Service) traceFinish(q model.Query, status string, err error, explain *model.Explain) {
	if !q.Trace.Sampled || s.tracer == nil {
		return
	}
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	s.tracer.Finish(q.Trace.ID, status, errStr, explain)
}

// Registry exposes the shared lock-striped satisfaction registry.
func (s *Service) Registry() *satisfaction.Registry { return s.reg }

// shardIndex routes a consumer to its mediation shard's index.
func (s *Service) shardIndex(c model.ConsumerID) int {
	if len(s.shards) == 1 {
		return 0
	}
	h := (uint64(int64(c)) * 0x9E3779B97F4A7C15) >> 32
	return int(h % uint64(len(s.shards)))
}

// shardFor routes a consumer to its mediation shard.
func (s *Service) shardFor(c model.ConsumerID) *shard {
	return s.shards[s.shardIndex(c)]
}

// RegisterWorker attaches a worker to the mediation pipeline. Registration
// goes to the shared directory, so the worker is immediately a candidate on
// every shard.
func (s *Service) RegisterWorker(w *Worker) { s.dir.RegisterProvider(w) }

// RegisterProvider attaches an arbitrary provider implementation. Providers
// that are not *Worker participate in mediation (and satisfaction) but are
// not dispatched to — embedders deliver the allocation out of band.
func (s *Service) RegisterProvider(p mediator.Provider) { s.dir.RegisterProvider(p) }

// UnregisterWorker detaches a worker (its satisfaction memory is dropped).
func (s *Service) UnregisterWorker(id model.ProviderID) {
	s.dir.UnregisterProvider(id)
	s.reg.ForgetProvider(id)
}

// RegisterConsumer attaches a consumer.
func (s *Service) RegisterConsumer(c mediator.Consumer) { s.dir.RegisterConsumer(c) }

// UnregisterConsumer detaches a consumer and drops its satisfaction memory.
func (s *Service) UnregisterConsumer(id model.ConsumerID) {
	s.dir.UnregisterConsumer(id)
	s.reg.ForgetConsumer(id)
}

// ProviderSatisfaction reads δs(p) from the shared striped registry.
func (s *Service) ProviderSatisfaction(id model.ProviderID) float64 {
	return s.reg.ProviderSatisfaction(id)
}

// ConsumerSatisfaction reads δs(c) from the shared striped registry.
func (s *Service) ConsumerSatisfaction(id model.ConsumerID) float64 {
	return s.reg.ConsumerSatisfaction(id)
}

// Submit mediates the query on its consumer's shard and dispatches it to
// the selected workers, blocking until the hand-off completes. It assigns
// the query ID. The returned allocation lists the chosen workers; results
// arrive asynchronously on the results channel.
//
// results may be nil: the query is still mediated and executed, but the
// completed Results are discarded — fire-and-forget submission. Pass a
// channel with enough capacity (or a dedicated drainer); a full results
// channel blocks the executing worker, not the engine. New code that wants
// per-query results should prefer the Engine's ticket path
// (Engine.Submit → Ticket.Await), which collects exactly this query's
// results without a shared channel.
//
// Submit runs the same pipeline as the asynchronous Engine's tickets but
// ticket-free: the call is synchronous end to end, so no ticket struct or
// completion channel is needed — with Concurrency = 1 its outcome is
// byte-identical to driving a serialized mediator directly, and the hand-off
// itself allocates nothing on full delivery.
func (s *Service) Submit(ctx context.Context, q model.Query, results chan<- Result) (*model.Allocation, error) {
	q.ID = model.QueryID(s.nextID.Add(1))
	q.IssuedAt = s.nowFn()
	if s.tracer != nil {
		// Adopt an upstream trace context (gateway or forwarded) as-is;
		// draw a fresh sampling decision only when no layer above has.
		if !q.Trace.Decided {
			q.Trace, _ = s.tracer.StartLocal()
		}
		if q.Trace.Sampled {
			s.tracer.Annotate(q.Trace.ID, q.ID, q.Consumer)
		}
	}
	sh := s.shardFor(q.Consumer)
	sh.mu.Lock()
	sh.applyPolicy() // adopt a reconfigured policy at the mediation boundary
	a, err := sh.med.Mediate(ctx, q.IssuedAt, q)
	sh.mu.Unlock()
	if err != nil {
		err = dispatchErr(q, err)
		if errors.Is(err, ErrDispatch) {
			sh.dispatchFailures.Add(1)
			if s.obs != nil {
				s.obs.OnDispatchFailure(q, nil, err)
			}
		}
		s.traceFinish(q, "rejected", err, nil)
		return nil, err
	}
	var dStart int64
	if q.Trace.Sampled {
		dStart = trace.Now()
	}
	derr := s.dispatchSelected(ctx, q, a, results)
	if q.Trace.Sampled && s.tracer != nil {
		s.tracer.RecordSpan(q.Trace.ID, trace.Span{
			Name:  trace.StageDispatch,
			Start: dStart,
			End:   trace.Now(),
			Extra: int64(len(a.Selected)),
		})
		s.traceFinish(q, "allocated", derr, a.Explain)
	}
	if derr != nil {
		sh.dispatchFailures.Add(1)
		if s.obs != nil {
			s.obs.OnDispatchFailure(q, a, derr)
		}
	}
	return a, derr
}

// Mediate runs the full mediation pipeline for q on its consumer's shard —
// ID assignment, policy-generation adoption at the boundary, candidate
// discovery, intention collection, allocation, and satisfaction recording —
// but does NOT dispatch to workers. It is the embedding hook for
// deterministic harnesses (internal/lab) that drive the real engine under a
// virtual clock (Config.NowFn) and simulate execution themselves: with
// Concurrency = 1 a sequence of Mediate calls is byte-identical to driving
// a serialized mediator directly, and Reconfigure is adopted exactly at the
// next Mediate boundary.
//
// Unlike Submit, mediation errors are returned raw (ErrNoCandidates,
// ErrStaleSelection, ...), not wrapped in dispatch errors, and no dispatch
// counters or events fire — the caller owns execution.
func (s *Service) Mediate(ctx context.Context, q model.Query) (*model.Allocation, error) {
	q.ID = model.QueryID(s.nextID.Add(1))
	q.IssuedAt = s.nowFn()
	sh := s.shardFor(q.Consumer)
	sh.mu.Lock()
	sh.applyPolicy() // adopt a reconfigured policy at the mediation boundary
	a, err := sh.med.Mediate(ctx, q.IssuedAt, q)
	sh.mu.Unlock()
	return a, err
}

// process runs one ticket through its consumer's shard: mediation under the
// shard lock, then dispatch and ticket completion outside it. The ticket's
// submission context bounds the mediation itself — cancellation aborts an
// in-flight intention fan-out to context-aware participants.
func (s *Service) process(ctx context.Context, t *Ticket) {
	sh := s.shardFor(t.query.Consumer)
	sh.mu.Lock()
	sh.applyPolicy() // adopt a reconfigured policy at the mediation boundary
	a, err := sh.med.Mediate(ctx, t.query.IssuedAt, t.query)
	var workers []Executor
	if err == nil {
		workers = s.selectedWorkers(a)
	}
	sh.mu.Unlock()
	s.finishTicket(ctx, t, sh, a, err, workers)
}

// finishTicket dispatches a mediated ticket and completes it: on mediation
// failure the ticket fails immediately; otherwise the query is handed to
// the selected workers and the ticket completes with the allocation, the
// dispatch error (if any), and — on the collecting ticket path — a pending
// result count covering exactly the workers that accepted.
func (s *Service) finishTicket(ctx context.Context, t *Ticket, sh *shard, a *model.Allocation, merr error, workers []Executor) {
	if merr != nil {
		merr = dispatchErr(t.query, merr)
		if errors.Is(merr, ErrDispatch) {
			sh.dispatchFailures.Add(1)
			if s.obs != nil {
				s.obs.OnDispatchFailure(t.query, nil, merr)
			}
		}
		t.finish(nil, merr, nil, 0)
		s.traceFinish(t.query, "rejected", merr, nil)
		return
	}
	ch := t.userResults
	if t.collect {
		// Both channels are sized to the selection so neither a worker's
		// result delivery nor a closing worker's abandonment signal can
		// ever block.
		t.resCh = make(chan Result, len(workers))
		t.abandonCh = make(chan model.ProviderID, len(workers))
		ch = t.resCh
	}
	var dStart int64
	if t.query.Trace.Sampled {
		dStart = trace.Now()
	}
	err := s.dispatch(ctx, t.query, workers, ch, t.abandonCh)
	if t.query.Trace.Sampled && s.tracer != nil {
		s.tracer.RecordSpan(t.query.Trace.ID, trace.Span{
			Name:  trace.StageDispatch,
			Start: dStart,
			End:   trace.Now(),
			Extra: int64(len(workers)),
		})
	}
	expected := len(workers)
	if err != nil {
		sh.dispatchFailures.Add(1)
		if s.obs != nil {
			s.obs.OnDispatchFailure(t.query, a, err)
		}
		if de, ok := AsDispatchError(err); ok {
			expected = len(de.Accepted)
		}
	}
	if !t.collect {
		expected = 0
	}
	t.finish(a, err, t.resCh, expected)
	s.traceFinish(t.query, "allocated", err, a.Explain)
}

// selectedWorkers resolves the dispatchable executors of an allocation.
func (s *Service) selectedWorkers(a *model.Allocation) []Executor {
	workers := make([]Executor, 0, len(a.Selected))
	for _, pid := range a.Selected {
		if w, ok := s.dir.Provider(pid).(Executor); ok {
			workers = append(workers, w)
		}
	}
	return workers
}

// dispatch hands the query to every selected worker. Unlike the historical
// fail-fast hand-off it attempts all workers even after one refuses, so the
// returned *DispatchError partitions the selection into the workers that
// accepted (and will deliver Results) and the ones that did not — the
// retryable remainder. abandon (nil on the non-collecting path) lets a
// worker that shuts down mid-execution tell the ticket its result will
// never come.
func (s *Service) dispatch(ctx context.Context, q model.Query, workers []Executor, results chan<- Result, abandon chan<- model.ProviderID) error {
	var accepted, failed []model.ProviderID
	for _, w := range workers {
		if w.accept(ctx, q, results, abandon) {
			accepted = append(accepted, w.ProviderID())
		} else {
			failed = append(failed, w.ProviderID())
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return &DispatchError{Query: q, Accepted: accepted, Failed: failed, Err: ctx.Err()}
}

// dispatchSelected is dispatch for the synchronous non-collecting path: it
// resolves executors straight from the allocation's selection (no
// intermediate worker slice) and tracks the accepted/failed partition in
// stack buffers, copying into a DispatchError only when a worker actually
// refuses — full delivery allocates nothing.
func (s *Service) dispatchSelected(ctx context.Context, q model.Query, a *model.Allocation, results chan<- Result) error {
	var acceptedArr, failedArr [16]model.ProviderID
	accepted := acceptedArr[:0]
	failed := failedArr[:0]
	for _, pid := range a.Selected {
		w, ok := s.dir.Provider(pid).(Executor)
		if !ok {
			// Not dispatchable (never registered as a worker, or departed
			// since mediation): delivery is out of band, same as dispatch's
			// selectedWorkers filtering.
			continue
		}
		if w.accept(ctx, q, results, nil) {
			accepted = append(accepted, pid)
		} else {
			failed = append(failed, pid)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return &DispatchError{
		Query:    q,
		Accepted: append([]model.ProviderID(nil), accepted...),
		Failed:   append([]model.ProviderID(nil), failed...),
		Err:      ctx.Err(),
	}
}

// SubmitBatch mediates a batch of queries and dispatches the allocations,
// returning position-aligned allocations and errors, blocking until every
// hand-off completes. Queries are grouped by shard and each shard mediates
// its group under a single lock acquisition via mediator.MediateBatch,
// which snapshots each provider at most once per batch; distinct shards run
// concurrently. Query IDs are assigned in input order and every query
// carries the same issue timestamp (the batch is one arrival event).
//
// results may be nil (fire-and-forget; see Submit). A nil error with a
// non-nil allocation means mediated and dispatched. A *DispatchError with a
// non-nil allocation means mediated but part of the selection refused the
// hand-off (the error lists accepted vs failed workers); a *DispatchError
// with a nil allocation means the selection went stale before hand-off (it
// wraps mediator.ErrStaleSelection and nothing reached any worker) — check
// the allocation before inspecting it.
//
// Like Submit, SubmitBatch is a thin blocking wrapper over the ticket
// pipeline (see Engine.SubmitBatch for the asynchronous form).
func (s *Service) SubmitBatch(ctx context.Context, queries []model.Query, results chan<- Result) ([]*model.Allocation, []error) {
	allocs := make([]*model.Allocation, len(queries))
	errs := make([]error, len(queries))
	if len(queries) == 0 {
		return allocs, errs
	}
	now := s.nowFn()
	groups := make(map[*shard][]int, len(s.shards))
	tickets := make([]*Ticket, len(queries))
	for i, q := range queries {
		q.ID = model.QueryID(s.nextID.Add(1))
		q.IssuedAt = now
		tickets[i] = newTicket(q, results, false)
		sh := s.shardFor(q.Consumer)
		groups[sh] = append(groups[sh], i)
	}
	var wg sync.WaitGroup
	for sh, idxs := range groups {
		sh, idxs := sh, idxs
		wg.Add(1)
		go func() {
			defer wg.Done()
			group := make([]*Ticket, len(idxs))
			for j, i := range idxs {
				group[j] = tickets[i]
			}
			s.processGroup(ctx, sh, group)
			for _, i := range idxs {
				allocs[i], errs[i] = tickets[i].Allocation()
			}
		}()
	}
	wg.Wait()
	return allocs, errs
}

// processGroup mediates one shard's tickets as a batch (single lock
// acquisition, amortized snapshots) and completes each ticket.
func (s *Service) processGroup(ctx context.Context, sh *shard, tickets []*Ticket) {
	qs := make([]model.Query, len(tickets))
	for i, t := range tickets {
		qs[i] = t.query
	}
	// The batch is one arrival event: every ticket carries the same stamp.
	now := qs[0].IssuedAt
	sh.mu.Lock()
	sh.applyPolicy() // batches are one mediation boundary: one policy per batch
	as, errs := sh.med.MediateBatch(ctx, now, qs)
	workers := make([][]Executor, len(tickets))
	for j := range as {
		if errs[j] == nil {
			workers[j] = s.selectedWorkers(as[j])
		}
	}
	sh.mu.Unlock()
	for j, t := range tickets {
		s.finishTicket(ctx, t, sh, as[j], errs[j], workers[j])
	}
}

// ShardStats is one mediation lane's lifetime counters, plus the depth of
// its asynchronous submission queue at snapshot time.
type ShardStats struct {
	// Mediations counts successful mediations on this shard.
	Mediations uint64

	// Rejections counts failed mediations (no candidates, stale selection,
	// malformed or misaddressed queries).
	Rejections uint64

	// DispatchFailures counts allocations that could not be (fully)
	// delivered to their selected workers.
	DispatchFailures uint64

	// MeanCandidates is the mean candidate-set size |P_q| over this
	// shard's successful mediations (0 when none).
	MeanCandidates float64

	// Imputations counts intention-batch positions this shard filled from
	// satisfaction registry state because a context-aware participant
	// stayed silent or failed during the fan-out.
	Imputations uint64

	// IntentionTimeouts counts the subset of Imputations caused by a
	// participant missing its per-participant deadline
	// (WithParticipantDeadline).
	IntentionTimeouts uint64

	// PolicyGeneration is the policy generation this shard is currently
	// running (0 = the construction-time policy); it trails
	// Stats.PolicyGeneration until the shard hits its next mediation
	// boundary.
	PolicyGeneration uint64

	// PolicySwaps counts the generations this shard has applied — each a
	// Reconfigure adopted at a mediation boundary.
	PolicySwaps uint64

	// QueueDepth is the number of submissions waiting in this shard's
	// asynchronous queue. Always 0 through the blocking Service paths;
	// the Engine fills it in.
	QueueDepth int

	// QueueHighWater is the deepest this shard's asynchronous queue has
	// ever been (summed across QoS classes); QueueEnqueued and
	// QueueDequeued are its cumulative admission/drain counters, and
	// QueueShed counts the queries refused with a typed *ShedError
	// (deadline infeasible, class queue full, or brownout). All filled by
	// the Engine; always zero through the blocking Service paths.
	QueueHighWater int
	QueueEnqueued  uint64
	QueueDequeued  uint64
	QueueShed      uint64
}

// Stats is a point-in-time snapshot of the engine's counters: per-shard
// mediation outcomes, participant counts, and per-worker queue depths.
type Stats struct {
	// Shards holds one entry per mediation lane, in shard order.
	Shards []ShardStats

	// QueriesSubmitted is the number of query IDs assigned so far
	// (including queries whose mediation failed).
	QueriesSubmitted int64

	// Providers and Consumers count the participants currently registered
	// in the shared directory.
	Providers int
	Consumers int

	// WorkerQueueDepths maps every registered *Worker to the number of
	// tasks currently queued at it (including the one in service, if any).
	// Providers that are not dispatchable workers are absent.
	WorkerQueueDepths map[model.ProviderID]int

	// PolicyGeneration is the latest accepted policy generation (the
	// Reconfigure counter); individual shards adopt it at their next
	// mediation boundary (see ShardStats.PolicyGeneration).
	PolicyGeneration uint64

	// Persistence holds the durability counters when the engine was built
	// with WithPersistence; nil otherwise. Filled by Engine.Stats (the
	// blocking Service has no persistence).
	Persistence *persist.Stats
}

// Mediations returns the total successful mediations across all shards.
func (st Stats) Mediations() uint64 {
	var n uint64
	for _, sh := range st.Shards {
		n += sh.Mediations
	}
	return n
}

// Imputations returns the total imputed intention-batch positions across
// all shards.
func (st Stats) Imputations() uint64 {
	var n uint64
	for _, sh := range st.Shards {
		n += sh.Imputations
	}
	return n
}

// IntentionTimeouts returns the total deadline-missed participant calls
// across all shards.
func (st Stats) IntentionTimeouts() uint64 {
	var n uint64
	for _, sh := range st.Shards {
		n += sh.IntentionTimeouts
	}
	return n
}

// PolicySwaps returns the total policy generations applied across all
// shards (each accepted Reconfigure contributes one per shard once the
// shard reaches a mediation boundary).
func (st Stats) PolicySwaps() uint64 {
	var n uint64
	for _, sh := range st.Shards {
		n += sh.PolicySwaps
	}
	return n
}

// Stats snapshots the service counters. Counters are read with atomic
// loads, not under a global lock, so the snapshot is internally consistent
// per counter but not across them — fine for monitoring, not for invariant
// checks against in-flight traffic.
func (s *Service) Stats() Stats {
	st := Stats{
		Shards:            make([]ShardStats, len(s.shards)),
		QueriesSubmitted:  s.nextID.Load(),
		Providers:         s.dir.NumProviders(),
		Consumers:         s.dir.NumConsumers(),
		WorkerQueueDepths: make(map[model.ProviderID]int),
		PolicyGeneration:  s.pol.gen.Load(),
	}
	for i, sh := range s.shards {
		m := sh.mediations.Load()
		ss := ShardStats{
			Mediations:        m,
			Rejections:        sh.rejections.Load(),
			DispatchFailures:  sh.dispatchFailures.Load(),
			Imputations:       sh.imputations.Load(),
			IntentionTimeouts: sh.intentionTimeouts.Load(),
			PolicyGeneration:  sh.appliedGen.Load(),
			PolicySwaps:       sh.policySwaps.Load(),
		}
		if m > 0 {
			ss.MeanCandidates = float64(sh.candidateSum.Load()) / float64(m)
		}
		st.Shards[i] = ss
	}
	for _, id := range s.dir.ProviderIDs() {
		if w, ok := s.dir.Provider(id).(Executor); ok {
			st.WorkerQueueDepths[id] = w.QueueDepth()
		}
	}
	return st
}

// satisfactionSnapshot samples every tracked participant's δs.
func (s *Service) satisfactionSnapshot() event.SatisfactionSnapshot {
	snap := event.SatisfactionSnapshot{
		Time:      s.nowFn(),
		Consumers: make(map[model.ConsumerID]float64),
		Providers: make(map[model.ProviderID]float64),
	}
	for _, id := range s.reg.ConsumerIDs() {
		snap.Consumers[id] = s.reg.ConsumerSatisfaction(id)
	}
	for _, id := range s.reg.ProviderIDs() {
		snap.Providers[id] = s.reg.ProviderSatisfaction(id)
	}
	return snap
}

var _ mediator.Provider = (*Worker)(nil)
var _ directory.CapabilityReporter = (*Worker)(nil)
var _ Executor = (*Worker)(nil)
var _ mediator.Consumer = FuncConsumer{}
