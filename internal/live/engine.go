package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/directory"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
)

// Config assembles a sharded mediation engine. The zero value is not usable
// on its own: either Allocator (single shard) or NewAllocator must be set.
type Config struct {
	// Window is the satisfaction memory length k.
	Window int

	// Concurrency is the number of mediator shards. Values below 1 mean 1.
	// Queries route to shards by a hash of their ConsumerID, so a single
	// consumer's stream is always serialized while distinct consumers
	// mediate in parallel.
	Concurrency int

	// Allocator is the allocation technique for a single-shard engine.
	// Ignored when NewAllocator is set.
	Allocator alloc.Allocator

	// NewAllocator builds one allocator per shard. Allocators carry
	// internal state (sampling RNGs, round-robin cursors) and are not safe
	// for concurrent use, so a multi-shard engine needs one instance per
	// shard; seed them per shard index for reproducible-yet-decorrelated
	// sampling streams. Required when Concurrency > 1.
	NewAllocator func(shard int) alloc.Allocator

	// AnalyzeBest mirrors mediator.Config.AnalyzeBest: evaluate the
	// consumer's intention over the whole candidate set so allocation
	// satisfaction is measured against the true optimum.
	AnalyzeBest bool

	// OnMediation mirrors mediator.Config.OnMediation. With several shards
	// it is invoked concurrently and must be safe for concurrent use.
	OnMediation func(a *model.Allocation, candidates int)

	// NowFn overrides the engine clock: it returns the current time in
	// seconds on the mediation time axis. Nil uses wall-clock seconds
	// since the service started. Deterministic tests inject a fake clock.
	NowFn func() float64
}

// shard is one mediation lane: a single-threaded mediator behind its own
// mutex. The pointer indirection keeps each shard's hot mutex on its own
// cache line region.
type shard struct {
	mu  sync.Mutex
	med *mediator.Mediator
}

// Service is a thread-safe mediation front end: a sharded engine over a
// shared provider directory and a shared lock-striped satisfaction
// registry. See the package documentation for the architecture.
type Service struct {
	dir    *directory.Directory
	reg    *satisfaction.Registry
	shards []*shard
	nextID atomic.Int64
	start  time.Time
	nowFn  func() float64
}

// NewService returns a single-shard service running the given allocation
// technique — the historical serialized front end, byte-identical in
// behavior to the pre-sharding implementation.
func NewService(allocator alloc.Allocator, window int) *Service {
	s, err := NewServiceWithConfig(Config{Allocator: allocator, Window: window})
	if err != nil {
		// Unreachable: the single-shard path has no invalid configurations
		// beyond a nil allocator, which fails at first Mediate exactly like
		// the historical constructor did.
		panic(err)
	}
	return s
}

// NewServiceWithConfig builds a sharded engine from cfg.
func NewServiceWithConfig(cfg Config) (*Service, error) {
	n := cfg.Concurrency
	if n < 1 {
		n = 1
	}
	if n > 1 && cfg.NewAllocator == nil {
		return nil, errors.New("live: Concurrency > 1 requires Config.NewAllocator (allocators hold per-shard state and cannot be shared)")
	}
	s := &Service{
		dir:    directory.New(),
		reg:    satisfaction.NewRegistry(cfg.Window),
		shards: make([]*shard, n),
		start:  time.Now(),
	}
	if cfg.NowFn != nil {
		s.nowFn = cfg.NowFn
	} else {
		s.nowFn = func() float64 { return time.Since(s.start).Seconds() }
	}
	mcfg := mediator.Config{
		Window:      cfg.Window,
		AnalyzeBest: cfg.AnalyzeBest,
		OnMediation: cfg.OnMediation,
		Registry:    s.reg,
		Directory:   s.dir,
	}
	for i := range s.shards {
		a := cfg.Allocator
		if cfg.NewAllocator != nil {
			a = cfg.NewAllocator(i)
		}
		s.shards[i] = &shard{med: mediator.New(a, mcfg)}
	}
	return s, nil
}

// Shards returns the number of mediator shards.
func (s *Service) Shards() int { return len(s.shards) }

// Directory exposes the shared participant catalog.
func (s *Service) Directory() *directory.Directory { return s.dir }

// Registry exposes the shared lock-striped satisfaction registry.
func (s *Service) Registry() *satisfaction.Registry { return s.reg }

// shardFor routes a consumer to its mediation shard.
func (s *Service) shardFor(c model.ConsumerID) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := (uint64(int64(c)) * 0x9E3779B97F4A7C15) >> 32
	return s.shards[h%uint64(len(s.shards))]
}

// RegisterWorker attaches a worker to the mediation pipeline. Registration
// goes to the shared directory, so the worker is immediately a candidate on
// every shard.
func (s *Service) RegisterWorker(w *Worker) { s.dir.RegisterProvider(w) }

// RegisterProvider attaches an arbitrary provider implementation. Providers
// that are not *Worker participate in mediation (and satisfaction) but are
// not dispatched to — embedders deliver the allocation out of band.
func (s *Service) RegisterProvider(p mediator.Provider) { s.dir.RegisterProvider(p) }

// UnregisterWorker detaches a worker (its satisfaction memory is dropped).
func (s *Service) UnregisterWorker(id model.ProviderID) {
	s.dir.UnregisterProvider(id)
	s.reg.ForgetProvider(id)
}

// RegisterConsumer attaches a consumer.
func (s *Service) RegisterConsumer(c mediator.Consumer) { s.dir.RegisterConsumer(c) }

// UnregisterConsumer detaches a consumer and drops its satisfaction memory.
func (s *Service) UnregisterConsumer(id model.ConsumerID) {
	s.dir.UnregisterConsumer(id)
	s.reg.ForgetConsumer(id)
}

// ProviderSatisfaction reads δs(p) from the shared striped registry.
func (s *Service) ProviderSatisfaction(id model.ProviderID) float64 {
	return s.reg.ProviderSatisfaction(id)
}

// ConsumerSatisfaction reads δs(c) from the shared striped registry.
func (s *Service) ConsumerSatisfaction(id model.ConsumerID) float64 {
	return s.reg.ConsumerSatisfaction(id)
}

// ErrDispatch reports that an allocation succeeded but the query could not
// be fully delivered: a selected worker shut down mid-flight, its queue was
// full, or (mediator.ErrStaleSelection, which this error wraps in that
// case) every selected provider unregistered before hand-off. When the
// caller's context was done during dispatch the context error is wrapped
// too, so errors.Is(err, context.Canceled) tells "stop" apart from the
// transient delivery races, which — unlike mediator.ErrNoCandidates — can
// be retried. Two caveats for retry loops: workers that accepted before the
// failure keep the query (their Results still arrive), so resubmitting a
// multi-worker (N > 1) allocation re-executes it on them; and the mediation
// is recorded in the satisfaction registry either way, since satisfaction
// measures the allocation decision (the paper's model), not delivery. In
// the stale-selection case the returned allocation is nil — nothing was
// handed to any worker, so that retry is clean.
var ErrDispatch = errors.New("live: selected worker rejected the query")

// dispatchErr folds the mediator's stale-selection failure into the
// engine's dispatch-level sentinel: every selected provider unregistering
// before hand-off is the same transient delivery race as a worker shutting
// down mid-dispatch. Both sentinels match errors.Is on the result.
func dispatchErr(err error) error {
	if err != nil && errors.Is(err, mediator.ErrStaleSelection) {
		return fmt.Errorf("%w: %w", ErrDispatch, err)
	}
	return err
}

// Submit mediates the query on its consumer's shard and dispatches it to the
// selected workers. It assigns the query ID. The returned allocation lists
// the chosen workers; results arrive asynchronously on the consumer's
// result channel.
func (s *Service) Submit(ctx context.Context, q model.Query, results chan<- Result) (*model.Allocation, error) {
	q.ID = model.QueryID(s.nextID.Add(1))
	q.IssuedAt = s.nowFn()
	sh := s.shardFor(q.Consumer)
	sh.mu.Lock()
	a, err := sh.med.Mediate(q.IssuedAt, q)
	var workers []*Worker
	if err == nil {
		workers = s.selectedWorkers(a)
	}
	sh.mu.Unlock()
	if err != nil {
		return nil, dispatchErr(err)
	}
	return a, s.dispatch(ctx, q, workers, results)
}

// selectedWorkers resolves the dispatchable workers of an allocation.
func (s *Service) selectedWorkers(a *model.Allocation) []*Worker {
	workers := make([]*Worker, 0, len(a.Selected))
	for _, pid := range a.Selected {
		if w, ok := s.dir.Provider(pid).(*Worker); ok {
			workers = append(workers, w)
		}
	}
	return workers
}

func (s *Service) dispatch(ctx context.Context, q model.Query, workers []*Worker, results chan<- Result) error {
	for _, w := range workers {
		if !w.accept(ctx, q, results) {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w: %w", ErrDispatch, err)
			}
			return ErrDispatch
		}
	}
	return nil
}

// SubmitBatch mediates a batch of queries and dispatches the allocations,
// returning position-aligned allocations and errors. Queries are grouped by
// shard and each shard mediates its group under a single lock acquisition
// via mediator.MediateBatch, which snapshots each provider at most once per
// batch; distinct shards run concurrently. Query IDs are
// assigned in input order and every query carries the same issue timestamp
// (the batch is one arrival event).
//
// A nil error with a non-nil allocation means mediated and dispatched.
// ErrDispatch with a non-nil allocation means mediated but a selected
// worker refused the hand-off; ErrDispatch with a nil allocation means the
// selection went stale before hand-off (it wraps mediator.ErrStaleSelection
// and nothing reached any worker) — check the allocation before inspecting
// it.
func (s *Service) SubmitBatch(ctx context.Context, queries []model.Query, results chan<- Result) ([]*model.Allocation, []error) {
	allocs := make([]*model.Allocation, len(queries))
	errs := make([]error, len(queries))
	if len(queries) == 0 {
		return allocs, errs
	}
	now := s.nowFn()
	batch := make([]model.Query, len(queries))
	copy(batch, queries)
	groups := make(map[*shard][]int, len(s.shards))
	for i := range batch {
		batch[i].ID = model.QueryID(s.nextID.Add(1))
		batch[i].IssuedAt = now
		sh := s.shardFor(batch[i].Consumer)
		groups[sh] = append(groups[sh], i)
	}
	var wg sync.WaitGroup
	for sh, idxs := range groups {
		sh, idxs := sh, idxs
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := make([]model.Query, len(idxs))
			for j, i := range idxs {
				sub[j] = batch[i]
			}
			sh.mu.Lock()
			as, aerrs := sh.med.MediateBatch(now, sub)
			workers := make([][]*Worker, len(idxs))
			for j := range as {
				if aerrs[j] == nil {
					workers[j] = s.selectedWorkers(as[j])
				}
			}
			sh.mu.Unlock()
			for j, i := range idxs {
				allocs[i], errs[i] = as[j], dispatchErr(aerrs[j])
				if aerrs[j] == nil {
					errs[i] = s.dispatch(ctx, sub[j], workers[j], results)
				}
			}
		}()
	}
	wg.Wait()
	return allocs, errs
}

var _ mediator.Provider = (*Worker)(nil)
var _ directory.CapabilityReporter = (*Worker)(nil)
var _ mediator.Consumer = FuncConsumer{}
