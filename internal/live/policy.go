package live

// This file is the engine half of the policy control plane: a Service (and
// therefore an Engine) built from — or reconfigured to — a declarative
// policy.Spec swaps its per-shard allocators at mediation boundaries.
//
// Mechanics: Reconfigure validates the spec, builds one allocator per shard
// (spec.Build(i), so per-shard sampling streams stay reproducible yet
// decorrelated), and publishes a new *generation through each shard's
// atomic pointer. Every mediation path loads that pointer right after
// taking the shard lock (applyPolicy) and, when the generation number moved,
// installs the new allocator and participant deadline before mediating. The
// hot path costs one atomic load per mediation — no additional locks — and
// a shard never switches allocators mid-mediation, so single-shard runs
// remain byte-identical for a fixed reconfiguration schedule.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/event"
	"sbqa/internal/policy"
)

// generation is one published policy: the allocator a shard should run from
// its next mediation boundary on, plus the participant deadline in force
// under it — the spec's own deadline, or the engine's base deadline when
// the spec declares none (a later no-deadline policy must *restore* the
// configured deadline, not inherit a previous policy's override). Immutable
// once published. The spec itself is not carried here: policyState.spec is
// the single source of truth.
type generation struct {
	num      uint64
	alloc    alloc.Allocator
	deadline time.Duration
}

// policyState is the Service's control-plane half, embedded in Service.
type policyState struct {
	mu   sync.Mutex // serializes Reconfigure (never held on the mediation path)
	gen  atomic.Uint64
	spec atomic.Pointer[policy.Spec]
}

// Policy returns the engine's current target policy spec and whether one is
// installed. Engines built through WithAllocator/WithAllocatorFactory have
// no declarative policy until their first Reconfigure.
func (s *Service) Policy() (policy.Spec, bool) {
	p := s.pol.spec.Load()
	if p == nil {
		return policy.Spec{}, false
	}
	return *p, true
}

// PolicyGeneration returns the number of the latest accepted policy
// generation (0 until the first Reconfigure, unless the service was built
// from a policy spec — that spec is generation 0).
func (s *Service) PolicyGeneration() uint64 { return s.pol.gen.Load() }

// Reconfigure replaces the running allocation policy across every shard.
// The spec is normalized and validated, one allocator per shard is built
// up front, and the new generation is published atomically; each shard
// adopts it at its next mediation boundary (between tickets — an in-flight
// mediation always completes under the policy it started with). On any
// validation or build error nothing changes and the error is returned.
//
// Satisfaction state is deliberately preserved: reconfiguring retunes the
// allocation process, it does not reset anyone's memory — the paper's
// Scenario 6 sweeps rely on exactly this.
//
// Reconfigure is safe for concurrent use with submissions and with itself;
// concurrent calls serialize, and each accepted call increments the policy
// generation and emits one event.PolicyChange to the engine observer.
func (s *Service) Reconfigure(ctx context.Context, spec policy.Spec) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("live: reconfigure aborted: %w", err)
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return err
	}
	allocs := make([]alloc.Allocator, len(s.shards))
	for i := range s.shards {
		a, err := spec.Build(i)
		if err != nil {
			return err
		}
		allocs[i] = a
	}

	deadline := s.baseDeadline
	if spec.ParticipantDeadline > 0 {
		deadline = spec.ParticipantDeadline.Std()
	}

	s.pol.mu.Lock()
	gen := s.pol.gen.Add(1)
	specCopy := spec
	s.pol.spec.Store(&specCopy)
	for i, sh := range s.shards {
		sh.nextGen.Store(&generation{num: gen, alloc: allocs[i], deadline: deadline})
	}
	// Emitted under pol.mu so concurrent Reconfigures produce PolicyChange
	// events in generation order (pol.mu is never taken on the mediation
	// path, so a slow observer delays only other reconfigurations).
	if s.obs != nil {
		s.obs.OnPolicyChange(event.PolicyChange{
			Generation: gen,
			Name:       spec.Name,
			Kind:       string(spec.Kind),
			Time:       s.nowFn(),
		})
	}
	s.pol.mu.Unlock()
	return nil
}

// applyPolicy adopts the latest published generation, if it moved since this
// shard last looked. Must be called with sh.mu held, before mediating — the
// mediation boundary of the epoch-swap contract. One atomic load when
// nothing changed.
func (sh *shard) applyPolicy() {
	g := sh.nextGen.Load()
	if g == nil || g.num == sh.curGen {
		return
	}
	sh.med.SetAllocator(g.alloc)
	sh.med.SetParticipantDeadline(g.deadline)
	sh.curGen = g.num
	sh.appliedGen.Store(g.num)
	sh.policySwaps.Add(1)
}

// installPolicy wires a construction-time policy: the shards' allocators
// were already built from the spec, so the spec is recorded as generation 0
// with nothing pending.
func (s *Service) installPolicy(spec policy.Spec) {
	specCopy := spec
	s.pol.spec.Store(&specCopy)
}
