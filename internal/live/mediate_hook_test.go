package live

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sbqa/internal/mediator"
	"sbqa/internal/model"
	"sbqa/internal/sim"
)

// TestMediateHookByteIdenticalUnderVirtualClock drives Service.Mediate —
// the dispatch-free embedding hook the workload lab uses — under a sim
// virtual clock and requires byte-identical allocations and satisfaction
// state against a plain serialized mediator fed the same inputs. This is
// the lab's foundational guarantee: what it measures is the real engine.
func TestMediateHookByteIdenticalUnderVirtualClock(t *testing.T) {
	const (
		window    = 40
		providers = 10
		queries   = 200
		consumers = 3
	)
	newConsumer := func(id model.ConsumerID) FuncConsumer {
		return FuncConsumer{ID: id, Fn: func(q model.Query, snap model.ProviderSnapshot) model.Intention {
			return model.Intention(float64((int(snap.ID)+int(id))%5)/5 - 0.2)
		}}
	}
	register := func(reg interface {
		RegisterConsumer(mediator.Consumer)
		RegisterProvider(mediator.Provider)
	}) {
		for c := 0; c < consumers; c++ {
			reg.RegisterConsumer(newConsumer(model.ConsumerID(c)))
		}
		for i := 0; i < providers; i++ {
			reg.RegisterProvider(&constProvider{
				id: model.ProviderID(i), pi: model.Intention(float64(i%7)/7 - 0.3), util: float64(i%4) / 4,
			})
		}
	}

	ref := mediator.New(sbqaAllocator(42), mediator.Config{Window: window, AnalyzeBest: true})
	register(ref)

	eng := sim.NewEngine()
	svc, err := NewServiceWithConfig(Config{
		Window:      window,
		Concurrency: 1,
		Allocator:   sbqaAllocator(42),
		AnalyzeBest: true,
		NowFn:       eng.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	register(svc)

	// Queries arrive as scheduled sim events at distinct virtual times.
	for i := 0; i < queries; i++ {
		i := i
		eng.Schedule(float64(i)*0.25, func() {
			q := model.Query{Consumer: model.ConsumerID(i % consumers), N: 1 + i%2, Work: 1 + float64(i%3)}

			refQ := q
			refQ.ID = model.QueryID(i + 1)
			refQ.IssuedAt = eng.Now()
			wantA, wantErr := ref.Mediate(context.Background(), eng.Now(), refQ)

			gotA, gotErr := svc.Mediate(context.Background(), q)
			if !errors.Is(gotErr, wantErr) {
				t.Fatalf("query %d: err %v vs %v (Mediate must return raw mediator errors)", i, gotErr, wantErr)
			}
			if wantErr != nil {
				return
			}
			if gotA.Query.IssuedAt != eng.Now() {
				t.Fatalf("query %d: IssuedAt %v, want virtual now %v", i, gotA.Query.IssuedAt, eng.Now())
			}
			if want, got := fmt.Sprintf("%+v", *wantA), fmt.Sprintf("%+v", *gotA); want != got {
				t.Fatalf("query %d diverged:\nserialized: %s\nhook:       %s", i, want, got)
			}
		})
	}
	eng.RunAll()

	for c := 0; c < consumers; c++ {
		if a, b := ref.Registry().ConsumerSatisfaction(model.ConsumerID(c)), svc.ConsumerSatisfaction(model.ConsumerID(c)); a != b {
			t.Errorf("consumer %d δs: %v vs %v", c, a, b)
		}
	}
	for p := 0; p < providers; p++ {
		if a, b := ref.Registry().ProviderSatisfaction(model.ProviderID(p)), svc.ProviderSatisfaction(model.ProviderID(p)); a != b {
			t.Errorf("provider %d δs: %v vs %v", p, a, b)
		}
	}
}

// TestMediateHookAdoptsReconfigureAtBoundary: a Reconfigure issued between
// Mediate calls (e.g. from a scheduled sim event) is in force for the very
// next Mediate — the hot-swap path works identically on the hook.
func TestMediateHookAdoptsReconfigureAtBoundary(t *testing.T) {
	spec := sbqaSpec(1)
	svc, err := NewServiceWithConfig(Config{
		Window: 20,
		Policy: &spec,
		NowFn:  func() float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})
	for i := 0; i < 8; i++ {
		svc.RegisterProvider(&constProvider{id: model.ProviderID(i), pi: 0.5, util: float64(i) / 10})
	}

	a, err := svc.Mediate(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Proposed) != 3 {
		t.Fatalf("proposed %d, want kn=3 from the initial spec", len(a.Proposed))
	}

	next := spec
	next.Kn = 5
	if err := svc.Reconfigure(context.Background(), next); err != nil {
		t.Fatal(err)
	}
	a, err = svc.Mediate(context.Background(), model.Query{Consumer: 0, N: 1, Work: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Proposed) != 5 {
		t.Fatalf("proposed %d, want kn=5 adopted at the first post-Reconfigure Mediate", len(a.Proposed))
	}

	// No dispatch side effects: Mediate never touches dispatch counters.
	for i, sh := range svc.Stats().Shards {
		if sh.DispatchFailures != 0 {
			t.Fatalf("shard %d dispatch failures = %d, want 0 on the mediate-only path", i, sh.DispatchFailures)
		}
	}
}
