package live

import (
	"context"
	"errors"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
)

// TestSubmitBatchMixedErrorPaths: one batch mixing a success, an
// unregistered consumer, and a class nobody serves — the error slice is
// position-aligned and each entry carries its own failure mode.
func TestSubmitBatchMixedErrorPaths(t *testing.T) {
	svc, err := NewServiceWithConfig(Config{Window: 10, Allocator: alloc.NewCapacity()})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(0, 1000, 16, func(model.Query) model.Intention { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetClasses(0) // class-restricted: class-5 queries find no candidates
	svc.RegisterWorker(w)
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	results := make(chan Result, 4)
	batch := []model.Query{
		{Consumer: 0, Class: 0, N: 1, Work: 0.1}, // succeeds
		{Consumer: 9, Class: 0, N: 1, Work: 0.1}, // unregistered consumer
		{Consumer: 0, Class: 5, N: 1, Work: 0.1}, // no candidates
	}
	allocs, errs := svc.SubmitBatch(context.Background(), batch, results)

	if errs[0] != nil || allocs[0] == nil || len(allocs[0].Selected) != 1 {
		t.Fatalf("entry 0: alloc %v err %v, want clean success", allocs[0], errs[0])
	}
	if errs[1] == nil || allocs[1] != nil {
		t.Fatalf("entry 1: alloc %v err %v, want unregistered-consumer error", allocs[1], errs[1])
	}
	if errors.Is(errs[1], mediator.ErrNoCandidates) || errors.Is(errs[1], ErrDispatch) {
		t.Errorf("entry 1 err %v must be neither ErrNoCandidates nor ErrDispatch", errs[1])
	}
	if !errors.Is(errs[2], mediator.ErrNoCandidates) {
		t.Fatalf("entry 2 err = %v, want ErrNoCandidates", errs[2])
	}
	if allocs[2] != nil {
		t.Errorf("entry 2 alloc = %v, want nil", allocs[2])
	}
	<-results // the successful entry still executes
}

// TestSubmitBatchCanceledContext: under the v2 context-first protocol a
// done context rejects every entry with the bare context error before
// mediation — no allocation is produced and nothing reads as a dispatch
// failure. (The v1 engine mediated first and failed only at dispatch.)
func TestSubmitBatchCanceledContext(t *testing.T) {
	svc, err := NewServiceWithConfig(Config{Window: 10, Allocator: alloc.NewCapacity()})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(0, 1000, 16, func(model.Query) model.Intention { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	svc.RegisterWorker(w)
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := []model.Query{{Consumer: 0, N: 1, Work: 0.1}, {Consumer: 0, N: 1, Work: 0.1}}
	allocs, errs := svc.SubmitBatch(ctx, qs, nil)
	for i := range qs {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("entry %d err = %v, want context.Canceled", i, errs[i])
		}
		if errors.Is(errs[i], ErrDispatch) {
			t.Errorf("entry %d err = %v: a canceled mediation must not read as a dispatch failure", i, errs[i])
		}
		if allocs[i] != nil {
			t.Errorf("entry %d allocation = %v, want nil (mediation never ran)", i, allocs[i])
		}
	}
}

// TestSubmitBatchStaleSelection: churn that empties every selection yields a
// *DispatchError wrapping mediator.ErrStaleSelection with a nil allocation
// and an empty accepted set (nothing reached any worker: the retry is clean).
func TestSubmitBatchStaleSelection(t *testing.T) {
	u := &unregisterOnAllocate{inner: alloc.NewCapacity(), next: 100}
	svc, err := NewServiceWithConfig(Config{Window: 10, Allocator: u})
	if err != nil {
		t.Fatal(err)
	}
	u.svc = svc
	svc.RegisterProvider(&constProvider{id: 1, pi: 0.5})
	svc.RegisterConsumer(FuncConsumer{ID: 0, Fn: func(model.Query, model.ProviderSnapshot) model.Intention { return 0.5 }})

	allocs, errs := svc.SubmitBatch(context.Background(), []model.Query{{Consumer: 0, N: 1, Work: 1}}, nil)
	if !errors.Is(errs[0], ErrDispatch) || !errors.Is(errs[0], mediator.ErrStaleSelection) {
		t.Fatalf("err = %v, want ErrDispatch wrapping ErrStaleSelection", errs[0])
	}
	de, ok := AsDispatchError(errs[0])
	if !ok {
		t.Fatalf("err %T is not *DispatchError", errs[0])
	}
	if len(de.Accepted) != 0 || len(de.Failed) != 0 {
		t.Errorf("stale selection must have empty partitions, got accepted=%v failed=%v", de.Accepted, de.Failed)
	}
	if allocs[0] != nil {
		t.Errorf("alloc = %v, want nil on stale selection", allocs[0])
	}
}
