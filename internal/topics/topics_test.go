package topics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestVectorBasics(t *testing.T) {
	v := Vector{3, 4}
	if v.Dim() != 2 {
		t.Errorf("Dim = %d", v.Dim())
	}
	if !almost(v.Norm(), 5) {
		t.Errorf("Norm = %v", v.Norm())
	}
	if got := v.Dot(Vector{1, 2}); !almost(got, 11) {
		t.Errorf("Dot = %v", got)
	}
	// Mismatched dimensions: extra entries ignored.
	if got := v.Dot(Vector{1}); !almost(got, 3) {
		t.Errorf("short Dot = %v", got)
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float64
	}{
		{"aligned", Vector{1, 0}, Vector{2, 0}, 1},
		{"orthogonal", Vector{1, 0}, Vector{0, 3}, 0},
		{"opposed", Vector{1, 0}, Vector{-5, 0}, -1},
		{"zero-vector", Vector{0, 0}, Vector{1, 1}, 0},
		{"both-zero", Vector{}, Vector{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Cosine(tt.b); !almost(got, tt.want) {
				t.Errorf("Cosine = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		va, vb := Vector(a), Vector(b)
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		c := va.Cosine(vb)
		if math.IsNaN(c) {
			return false
		}
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAndScale(t *testing.T) {
	got := Vector{1, 2}.Add(Vector{3, 4, 5})
	want := Vector{4, 6, 5}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("Add = %v, want %v", got, want)
		}
	}
	s := Vector{1, -2}.Scale(3)
	if !almost(s[0], 3) || !almost(s[1], -6) {
		t.Errorf("Scale = %v", s)
	}
}

func TestPreference(t *testing.T) {
	if got := Preference(Vector{1, 0}, Vector{1, 0}); got != 1 {
		t.Errorf("aligned preference = %v", got)
	}
	if got := Preference(Vector{1, 0}, Vector{-1, 0}); got != -1 {
		t.Errorf("opposed preference = %v", got)
	}
	if !Preference(Vector{1, 2, 3}, Vector{0.1, 0.5, 0.9}).Valid() {
		t.Error("preference out of range")
	}
}

func TestCampaignLifecycle(t *testing.T) {
	// The paper's pharma company: generally interested in "health" (dim 0),
	// temporarily promoting "insect repellent" (dim 2).
	in := NewInterests(Vector{1, 0, 0})
	in.AddCampaign(Campaign{Boost: Vector{0, 0, 5}, Until: 100})
	if in.Campaigns() != 1 {
		t.Errorf("Campaigns = %d", in.Campaigns())
	}

	insectQuery := Vector{0, 0, 1}
	healthQuery := Vector{1, 0, 0}

	// During the promotion, insect-bite queries are strongly preferred.
	during := in.PreferenceAt(50, insectQuery)
	if during < 0.9 {
		t.Errorf("during campaign: preference %v, want near 1", during)
	}
	// Health queries remain positive but are no longer the focus.
	if h := in.PreferenceAt(50, healthQuery); h >= during {
		t.Errorf("campaign should dominate: health %v vs insect %v", h, during)
	}

	// After the campaign the intentions change back.
	after := in.PreferenceAt(150, insectQuery)
	if after != 0 {
		t.Errorf("after campaign: insect preference %v, want 0 (orthogonal)", after)
	}
	if h := in.PreferenceAt(150, healthQuery); h != 1 {
		t.Errorf("after campaign: health preference %v, want 1", h)
	}
}

func TestOverlappingCampaigns(t *testing.T) {
	in := NewInterests(Vector{0, 1})
	in.AddCampaign(Campaign{Boost: Vector{3, 0}, Until: 10})
	in.AddCampaign(Campaign{Boost: Vector{0, 3}, Until: 20})
	at5 := in.At(5)
	if !almost(at5[0], 3) || !almost(at5[1], 4) {
		t.Errorf("At(5) = %v", at5)
	}
	at15 := in.At(15)
	if !almost(at15[0], 0) || !almost(at15[1], 4) {
		t.Errorf("At(15) = %v", at15)
	}
	if in.String() == "" {
		t.Error("String empty")
	}
}
