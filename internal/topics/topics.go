// Package topics implements content-based interests: queries carry topic
// vectors and participants hold interest vectors over the same topic space,
// with preference = cosine similarity mapped to [-1, 1].
//
// This realizes the paper's Google AdWords motivation (§I): providers'
// interests "are only based on some predefined topics (keywords) while
// their interests may be dynamic. For instance, a provider could represent
// a pharmaceutical company, which wants to promote a new insect repellent.
// Thus, during the promotion, it is more interested in treating the queries
// related to mosquitoes or insect bites than general queries. Once the
// advertising campaign is over, its intentions may change."
//
// Campaigns model exactly that: a temporary boost of some topic dimensions
// that expires at a deadline, after which the participant's base interests
// resume.
package topics

import (
	"fmt"
	"math"

	"sbqa/internal/model"
)

// Vector is a dense topic weight vector. Weights are free-scale; similarity
// is normalized, so only direction matters.
type Vector []float64

// Dim returns the number of topics.
func (v Vector) Dim() int { return len(v) }

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the dot product with w; missing dimensions are zero.
func (v Vector) Dot(w Vector) float64 {
	n := len(v)
	if len(w) < n {
		n = len(w)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += v[i] * w[i]
	}
	return s
}

// Cosine returns the cosine similarity in [-1, 1]; zero vectors are
// orthogonal to everything (similarity 0). The computation pre-scales both
// vectors by their largest magnitude — cosine is scale-invariant — so
// extreme weights cannot overflow to Inf/NaN.
func (v Vector) Cosine(w Vector) float64 {
	sv, sw := v.maxAbs(), w.maxAbs()
	if sv == 0 || sw == 0 {
		return 0
	}
	var dot, nv, nw float64
	n := len(v)
	if len(w) > n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(v) {
			a = v[i] / sv
		}
		if i < len(w) {
			b = w[i] / sw
		}
		dot += a * b
		nv += a * a
		nw += b * b
	}
	if nv == 0 || nw == 0 {
		return 0
	}
	c := dot / math.Sqrt(nv*nw)
	if c > 1 {
		return 1
	}
	if c < -1 {
		return -1
	}
	return c
}

// maxAbs returns the largest absolute component (0 for an empty or all-zero
// vector; NaN components are ignored).
func (v Vector) maxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m && !math.IsNaN(a) {
			m = a
		}
	}
	return m
}

// Add returns v + w (dimension = max of the two).
func (v Vector) Add(w Vector) Vector {
	n := len(v)
	if len(w) > n {
		n = len(w)
	}
	out := make(Vector, n)
	for i := range out {
		if i < len(v) {
			out[i] += v[i]
		}
		if i < len(w) {
			out[i] += w[i]
		}
	}
	return out
}

// Scale returns v scaled by f.
func (v Vector) Scale(f float64) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = x * f
	}
	return out
}

// Preference maps the similarity between an interest vector and a query's
// topic vector onto a preference in [-1, 1]. It is simply the cosine: a
// provider aligned with the query wants it (+1), an orthogonal one is
// indifferent (0), an opposed one objects (-1).
func Preference(interest, query Vector) model.Intention {
	return model.Intention(interest.Cosine(query)).Clamp()
}

// Campaign is a temporary interest boost: while Now < Until, Boost is added
// to the participant's base interests (the promotion); afterwards the base
// interests stand alone.
type Campaign struct {
	Boost Vector
	Until float64
}

// Active reports whether the campaign is still running at time now.
func (c Campaign) Active(now float64) bool { return now < c.Until }

// Interests is a participant's dynamic topic profile: base interests plus
// any number of scheduled campaigns.
type Interests struct {
	Base      Vector
	campaigns []Campaign
}

// NewInterests returns a profile with the given base vector.
func NewInterests(base Vector) *Interests { return &Interests{Base: base} }

// AddCampaign schedules a promotion.
func (in *Interests) AddCampaign(c Campaign) { in.campaigns = append(in.campaigns, c) }

// Campaigns returns how many campaigns are scheduled (active or expired).
func (in *Interests) Campaigns() int { return len(in.campaigns) }

// At returns the effective interest vector at time now: base plus all
// active campaign boosts.
func (in *Interests) At(now float64) Vector {
	v := in.Base
	for _, c := range in.campaigns {
		if c.Active(now) {
			v = v.Add(c.Boost)
		}
	}
	return v
}

// PreferenceAt returns the participant's preference for a query with the
// given topic vector at time now.
func (in *Interests) PreferenceAt(now float64, query Vector) model.Intention {
	return Preference(in.At(now), query)
}

// String renders the profile for logs.
func (in *Interests) String() string {
	return fmt.Sprintf("interests(dim=%d, campaigns=%d)", in.Base.Dim(), len(in.campaigns))
}
