package workload

import (
	"fmt"
	"math"

	"sbqa/internal/stats"
)

// Arrivals is a seeded arrival process: Next returns the delay from now
// until the process's next event, drawing every random number from rng.
// Implementations must be deterministic — the same (now, rng-state) pair
// always yields the same gap and leaves rng in the same state — so that
// simulations embedding a process replay byte-identically under one seed.
//
// Stateless processes (Poisson, Diurnal, Modulated) use value receivers and
// can be shared; MMPP2 carries phase state and must be one-per-stream.
type Arrivals interface {
	// Next returns the gap (simulated seconds, >= 0) from now until the
	// next arrival. A process with nothing left to emit returns +Inf.
	Next(now float64, rng *stats.RNG) float64

	// String describes the process for reports and findings tables.
	String() string
}

// Poisson is the homogeneous Poisson process: independent exponential gaps
// with the given mean rate (events / simulated second).
//
// Next performs exactly one rng.ExpFloat64 draw and returns
// ExpFloat64()/Rate — the historical inline pattern in internal/boinc and
// internal/adwords, now shared so every simulation books arrivals the same
// way. Golden tests pin this draw sequence; changing it invalidates every
// recorded finding.
type Poisson struct {
	Rate float64 // mean arrivals per simulated second
}

// Next implements Arrivals.
func (p Poisson) Next(_ float64, rng *stats.RNG) float64 {
	if p.Rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / p.Rate
}

// String implements Arrivals.
func (p Poisson) String() string { return fmt.Sprintf("poisson(rate=%g)", p.Rate) }

// MMPP2 is a two-state Markov-modulated Poisson process — the standard
// bursty-traffic model. The process dwells in a state for an exponential
// time (means DwellA / DwellB), emitting Poisson arrivals at that state's
// rate (RateA / RateB), then switches. With RateB >> RateA and short
// DwellB it produces the on/off burst trains flash-crowd studies use.
//
// MMPP2 is stateful (current phase and its expiry); construct one per
// stream with NewMMPP2 and do not share across streams.
type MMPP2 struct {
	rateA, rateB   float64
	dwellA, dwellB float64

	state   int     // 0 = A, 1 = B
	until   float64 // simulated time the current dwell ends
	started bool
}

// NewMMPP2 builds a two-state MMPP starting in state A. Rates are
// arrivals/second (>= 0); dwells are mean seconds per visit (> 0).
func NewMMPP2(rateA, dwellA, rateB, dwellB float64) (*MMPP2, error) {
	if rateA < 0 || rateB < 0 {
		return nil, fmt.Errorf("workload: MMPP2 rates must be >= 0, got %g/%g", rateA, rateB)
	}
	if dwellA <= 0 || dwellB <= 0 {
		return nil, fmt.Errorf("workload: MMPP2 dwells must be > 0, got %g/%g", dwellA, dwellB)
	}
	if rateA == 0 && rateB == 0 {
		return nil, fmt.Errorf("workload: MMPP2 needs at least one positive rate")
	}
	return &MMPP2{rateA: rateA, rateB: rateB, dwellA: dwellA, dwellB: dwellB}, nil
}

func (m *MMPP2) rate() float64 {
	if m.state == 0 {
		return m.rateA
	}
	return m.rateB
}

func (m *MMPP2) dwell() float64 {
	if m.state == 0 {
		return m.dwellA
	}
	return m.dwellB
}

// Next implements Arrivals. It simulates the phase process exactly: a
// candidate gap is drawn at the current state's rate, and if it would cross
// the dwell boundary the clock jumps to the boundary, the state flips, and
// the draw restarts — valid because exponential gaps are memoryless.
func (m *MMPP2) Next(now float64, rng *stats.RNG) float64 {
	if !m.started {
		m.started = true
		m.until = now + rng.ExpFloat64()*m.dwell()
	}
	t := now
	for {
		rate := m.rate()
		var gap float64
		if rate > 0 {
			gap = rng.ExpFloat64() / rate
		} else {
			gap = math.Inf(1)
		}
		if t+gap <= m.until {
			return t + gap - now
		}
		t = m.until
		m.state = 1 - m.state
		m.until = t + rng.ExpFloat64()*m.dwell()
	}
}

// String implements Arrivals.
func (m *MMPP2) String() string {
	return fmt.Sprintf("mmpp2(A=%g/%gs, B=%g/%gs)", m.rateA, m.dwellA, m.rateB, m.dwellB)
}

// Diurnal is a nonhomogeneous Poisson process with sinusoidal intensity
//
//	rate(t) = Mean · (1 + Amplitude·sin(2πt/Period))
//
// modeling day/night load cycles. Amplitude must be in [0, 1); Period is
// the cycle length in simulated seconds. Sampling uses Lewis–Shedler
// thinning against the peak rate, which is exact and deterministic.
type Diurnal struct {
	Mean      float64 // time-averaged arrivals per second
	Period    float64 // seconds per full cycle
	Amplitude float64 // relative swing, in [0, 1)
}

// Rate returns the instantaneous intensity at simulated time t.
func (d Diurnal) Rate(t float64) float64 {
	return d.Mean * (1 + d.Amplitude*math.Sin(2*math.Pi*t/d.Period))
}

// Next implements Arrivals via thinning: candidate gaps are drawn at the
// peak rate and accepted with probability rate(t)/peak.
func (d Diurnal) Next(now float64, rng *stats.RNG) float64 {
	if d.Mean <= 0 || d.Period <= 0 {
		return math.Inf(1)
	}
	amp := d.Amplitude
	if amp < 0 {
		amp = 0
	}
	if amp >= 1 {
		amp = 0.999
	}
	peak := d.Mean * (1 + amp)
	t := now
	for {
		t += rng.ExpFloat64() / peak
		if rng.Float64()*peak <= d.Rate(t) {
			return t - now
		}
	}
}

// String implements Arrivals.
func (d Diurnal) String() string {
	return fmt.Sprintf("diurnal(mean=%g, period=%gs, amp=%g)", d.Mean, d.Period, d.Amplitude)
}

// Modulated scales a base process's gaps by a time-varying factor:
// Factor(now) > 1 compresses gaps (more arrivals), < 1 stretches them, and
// <= 0 silences the stream. It is how the lab superimposes flash crowds on
// any base process without re-deriving its sampler.
type Modulated struct {
	Base   Arrivals
	Factor func(t float64) float64
}

// Next implements Arrivals.
func (m Modulated) Next(now float64, rng *stats.RNG) float64 {
	gap := m.Base.Next(now, rng)
	f := m.Factor(now)
	if f <= 0 {
		return math.Inf(1)
	}
	return gap / f
}

// String implements Arrivals.
func (m Modulated) String() string { return fmt.Sprintf("modulated(%s)", m.Base) }

// FlashFactor returns a Modulated.Factor that multiplies the arrival rate
// by factor inside the window [at, at+duration) and is 1 elsewhere — the
// canonical flash-crowd shape.
func FlashFactor(at, duration, factor float64) func(t float64) float64 {
	return func(t float64) float64 {
		if t >= at && t < at+duration {
			return factor
		}
		return 1
	}
}
