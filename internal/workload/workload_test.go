package workload

import (
	"math"
	"testing"

	"sbqa/internal/stats"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Volunteers: 0}); err == nil {
		t.Error("zero volunteers accepted")
	}
	if _, err := Generate(Config{Volunteers: 5, WorkDist: stats.Constant{V: 0}, Seed: 1}); err == nil {
		t.Error("zero-mean work accepted")
	}
}

func TestGenerateDefaults(t *testing.T) {
	pop, err := Generate(Config{Volunteers: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Projects) != 3 {
		t.Fatalf("default projects = %d, want 3", len(pop.Projects))
	}
	if len(pop.Volunteers) != 20 {
		t.Fatalf("volunteers = %d", len(pop.Volunteers))
	}
	for _, v := range pop.Volunteers {
		if v.Capacity <= 0 {
			t.Fatalf("volunteer %d capacity %v", v.Index, v.Capacity)
		}
		if v.PriceFactor < 0.8 || v.PriceFactor > 1.2 {
			t.Fatalf("price factor %v out of range", v.PriceFactor)
		}
		if len(v.ProjectPref) != 3 {
			t.Fatalf("project prefs %v", v.ProjectPref)
		}
		for _, p := range v.ProjectPref {
			if p < -1 || p > 1 {
				t.Fatalf("pref %v out of range", p)
			}
		}
	}
	for _, p := range pop.Projects {
		if p.ArrivalRate <= 0 {
			t.Fatalf("project %s rate %v", p.Name, p.ArrivalRate)
		}
		if len(p.VolunteerPref) != 20 {
			t.Fatalf("volunteer prefs %d", len(p.VolunteerPref))
		}
		if p.Replication < 1 || p.DelayTarget <= 0 {
			t.Fatalf("bad project params %+v", p)
		}
	}
}

func TestLoadFactorHitsTarget(t *testing.T) {
	for _, rho := range []float64{0.3, 0.7, 0.9} {
		cfg := DefaultConfig(50, 7)
		cfg.LoadFactor = rho
		pop, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := pop.LoadFactor(); math.Abs(got-rho) > 1e-9 {
			t.Errorf("LoadFactor = %v, want %v", got, rho)
		}
	}
}

func TestArrivalShares(t *testing.T) {
	cfg := DefaultConfig(30, 3)
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shares 0.5/0.3/0.2 of the total rate.
	total := pop.TotalRate
	wants := []float64{0.5, 0.3, 0.2}
	for i, w := range wants {
		if got := pop.Projects[i].ArrivalRate / total; math.Abs(got-w) > 1e-9 {
			t.Errorf("project %d share = %v, want %v", i, got, w)
		}
	}
}

func TestPopularityOrdering(t *testing.T) {
	// Mean volunteer preference must be ordered popular > normal > unpopular.
	pop, err := Generate(DefaultConfig(500, 11))
	if err != nil {
		t.Fatal(err)
	}
	means := make([]float64, 3)
	for _, v := range pop.Volunteers {
		for i, p := range v.ProjectPref {
			means[i] += p
		}
	}
	for i := range means {
		means[i] /= float64(len(pop.Volunteers))
	}
	if !(means[0] > means[1] && means[1] > means[2]) {
		t.Errorf("popularity ordering violated: %v", means)
	}
	// Popular project: the majority of volunteers lean positive (its fans
	// plus most generalists); the unpopular one is favoured by few.
	positives := make([]int, 3)
	for _, v := range pop.Volunteers {
		for i, p := range v.ProjectPref {
			if p > 0 {
				positives[i]++
			}
		}
	}
	n := len(pop.Volunteers)
	if positives[0] < n/2 {
		t.Errorf("popular project liked by only %d/%d volunteers", positives[0], n)
	}
	if positives[2] > n/3 {
		t.Errorf("unpopular project liked by %d/%d volunteers, want a small fraction", positives[2], n)
	}
}

func TestFansPreferExactlyOneProject(t *testing.T) {
	pop, err := Generate(DefaultConfig(300, 21))
	if err != nil {
		t.Fatal(err)
	}
	fans, generalists := 0, 0
	for _, v := range pop.Volunteers {
		strong := 0
		for _, p := range v.ProjectPref {
			if p >= 0.5 {
				strong++
			}
		}
		switch {
		case strong == 1:
			fans++
		case strong == 0:
			generalists++
		default:
			// Generalists can stray above 0.5 only if the draw allows it;
			// the generalist distribution tops out at 0.6.
			for _, p := range v.ProjectPref {
				if p > 0.6 {
					t.Fatalf("volunteer %d has multiple strong prefs: %v", v.Index, v.ProjectPref)
				}
			}
		}
	}
	if fans < 200 {
		t.Errorf("only %d/300 volunteers are fans; affinity model broken", fans)
	}
}

func TestConsumerPrefsTrackCapacity(t *testing.T) {
	pop, err := Generate(DefaultConfig(200, 13))
	if err != nil {
		t.Fatal(err)
	}
	// Correlation between capacity and project-0 preference should be
	// clearly positive.
	var capMean, prefMean float64
	for _, v := range pop.Volunteers {
		capMean += v.Capacity
		prefMean += pop.Projects[0].VolunteerPref[v.Index]
	}
	n := float64(len(pop.Volunteers))
	capMean /= n
	prefMean /= n
	var cov, capVar, prefVar float64
	for _, v := range pop.Volunteers {
		dc := v.Capacity - capMean
		dp := pop.Projects[0].VolunteerPref[v.Index] - prefMean
		cov += dc * dp
		capVar += dc * dc
		prefVar += dp * dp
	}
	corr := cov / math.Sqrt(capVar*prefVar)
	if corr < 0.5 {
		t.Errorf("capacity-preference correlation = %v, want > 0.5", corr)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(40, 99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(40, 99))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Volunteers {
		if a.Volunteers[i].Capacity != b.Volunteers[i].Capacity {
			t.Fatal("capacities diverged")
		}
		for j := range a.Volunteers[i].ProjectPref {
			if a.Volunteers[i].ProjectPref[j] != b.Volunteers[i].ProjectPref[j] {
				t.Fatal("prefs diverged")
			}
		}
	}
	c, err := Generate(DefaultConfig(40, 100))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Volunteers {
		if a.Volunteers[i].Capacity != c.Volunteers[i].Capacity {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical capacities")
	}
}

func TestPopularityString(t *testing.T) {
	if Popular.String() != "popular" || Normal.String() != "normal" || Unpopular.String() != "unpopular" {
		t.Error("Popularity.String broken")
	}
	if Popularity(9).String() == "" {
		t.Error("unknown popularity should still render")
	}
}

func TestNegativeSharesRepaired(t *testing.T) {
	cfg := DefaultConfig(10, 5)
	cfg.Projects = []ProjectSpec{
		{Name: "a", ArrivalShare: -1, Replication: 1, DelayTarget: 10},
		{Name: "b", ArrivalShare: 0, Replication: 1, DelayTarget: 10},
	}
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pop.Projects[0].ArrivalRate-pop.Projects[1].ArrivalRate) > 1e-9 {
		t.Errorf("invalid shares should fall back to equal: %v vs %v",
			pop.Projects[0].ArrivalRate, pop.Projects[1].ArrivalRate)
	}
}
