// Package workload generates the synthetic BOINC-like populations and query
// streams the SbQA experiments run on: projects (consumers) with popularity
// classes, volunteers (providers) with heterogeneous capacities and
// class-dependent preferences, and arrival rates sized to a target system
// load factor.
//
// The demo paper stages exactly this world: three projects — SETI@home
// (popular: "the majority of providers want to collaborate"), proteins@home
// (normal: "great number, but not most"), and Einstein@home (unpopular:
// "most providers desire to collaborate ... with a small fraction of
// computational resources").
package workload

import (
	"fmt"

	"sbqa/internal/stats"
)

// Popularity classifies how much the provider population likes a project.
type Popularity int

// Popularity classes, in decreasing affection.
const (
	Popular Popularity = iota
	Normal
	Unpopular
)

// String implements fmt.Stringer.
func (p Popularity) String() string {
	switch p {
	case Popular:
		return "popular"
	case Normal:
		return "normal"
	case Unpopular:
		return "unpopular"
	default:
		return fmt.Sprintf("popularity(%d)", int(p))
	}
}

// AffinityWeight returns the relative probability that a volunteer joined
// the system *for* a project of this class — the demo's staging: the
// majority of volunteers want to collaborate in the popular project, a
// great number (but not most) in the normal one, and only a small fraction
// favour the unpopular one.
func (p Popularity) AffinityWeight() float64 {
	switch p {
	case Popular:
		return 0.6
	case Normal:
		return 0.3
	default:
		return 0.1
	}
}

// Volunteer preference profile: most volunteers are *fans* of one project
// (drawn by AffinityWeight) — they strongly like it and dislike donating
// cycles to the others; a minority are generalists happy to serve anyone.
// This is what makes interest-blind allocation costly: a load balancer keeps
// feeding fans the projects they dislike.
var (
	fanPref        = stats.Uniform{Lo: 0.5, Hi: 1.0}
	nonFanPref     = stats.Uniform{Lo: -1.0, Hi: -0.4}
	generalistPref = stats.Uniform{Lo: -0.1, Hi: 0.6}
)

// GeneralistShare is the fraction of volunteers with no favourite project.
const GeneralistShare = 0.15

// ProjectSpec declares one project before generation.
type ProjectSpec struct {
	// Name labels the project in tables ("SETI@home", ...).
	Name string

	// Popularity drives the volunteers' preference draws.
	Popularity Popularity

	// ArrivalShare is this project's fraction of the total query arrival
	// rate; shares are normalized, so they need not sum to 1.
	ArrivalShare float64

	// Replication is q.n — how many results the project requires per
	// query (BOINC replicates tasks to validate volunteer results).
	Replication int

	// DelayTarget is the response time (seconds) the project considers
	// good; it feeds response-time-seeking intention policies.
	DelayTarget float64

	// Quorum is how many *valid* (matching) results the project needs to
	// validate a query, per BOINC's redundancy checking. 0 means the
	// majority of Replication. Results from malicious volunteers are
	// invalid and do not count toward the quorum.
	Quorum int
}

// Config declares a whole population.
type Config struct {
	// Projects lists the consumers. Empty means DefaultProjects().
	Projects []ProjectSpec

	// Volunteers is the provider population size.
	Volunteers int

	// CapacityDist draws volunteer capacities (work units / second).
	CapacityDist stats.Dist

	// WorkDist draws per-query service demands (work units).
	WorkDist stats.Dist

	// LoadFactor ρ sizes total arrivals so that
	// Σ rate·E[work]·replication = ρ · Σ capacity. Typical 0.5–0.9.
	LoadFactor float64

	// MaliciousFraction is the share of volunteers that return invalid
	// results (the reason BOINC consumers replicate queries). 0 disables.
	MaliciousFraction float64

	// Seed drives every generation draw.
	Seed uint64
}

// DefaultProjects returns the demo's three-project cast.
func DefaultProjects() []ProjectSpec {
	return []ProjectSpec{
		{Name: "SETI@home", Popularity: Popular, ArrivalShare: 0.5, Replication: 2, DelayTarget: 30},
		{Name: "proteins@home", Popularity: Normal, ArrivalShare: 0.3, Replication: 2, DelayTarget: 30},
		{Name: "Einstein@home", Popularity: Unpopular, ArrivalShare: 0.2, Replication: 2, DelayTarget: 30},
	}
}

// DefaultConfig returns the default BOINC-like population: 3 projects,
// the given number of volunteers with capacities U[0.5, 1.5) work/s, query
// work Exp(mean 10), load factor 0.7.
func DefaultConfig(volunteers int, seed uint64) Config {
	return Config{
		Projects:     DefaultProjects(),
		Volunteers:   volunteers,
		CapacityDist: stats.Uniform{Lo: 0.5, Hi: 1.5},
		WorkDist:     stats.Exponential{Rate: 0.1}, // mean 10 work units
		LoadFactor:   0.7,
		Seed:         seed,
	}
}

// Project is one generated consumer.
type Project struct {
	Index         int
	Name          string
	Popularity    Popularity
	ArrivalRate   float64 // queries / second
	Replication   int
	DelayTarget   float64
	Quorum        int       // valid results needed to validate a query
	VolunteerPref []float64 // project's preference for each volunteer, [-1,1]
}

// Volunteer is one generated provider.
type Volunteer struct {
	Index       int
	Capacity    float64
	PriceFactor float64   // heterogeneous pricing margin for economic bids
	Malicious   bool      // returns invalid results
	ProjectPref []float64 // preference for each project, [-1,1]
}

// Population is a fully generated world ready to instantiate.
type Population struct {
	Projects   []Project
	Volunteers []Volunteer
	WorkDist   stats.Dist
	TotalRate  float64 // Σ project arrival rates
	TotalCap   float64 // Σ volunteer capacities
}

// Generate materializes the population described by cfg. It is
// deterministic under cfg.Seed.
func Generate(cfg Config) (*Population, error) {
	if cfg.Volunteers < 1 {
		return nil, fmt.Errorf("workload: need at least 1 volunteer, got %d", cfg.Volunteers)
	}
	if len(cfg.Projects) == 0 {
		cfg.Projects = DefaultProjects()
	}
	if cfg.CapacityDist == nil {
		cfg.CapacityDist = stats.Uniform{Lo: 0.5, Hi: 1.5}
	}
	if cfg.WorkDist == nil {
		cfg.WorkDist = stats.Exponential{Rate: 0.1}
	}
	if cfg.LoadFactor <= 0 {
		cfg.LoadFactor = 0.7
	}
	rng := stats.NewRNG(cfg.Seed)
	capRNG := rng.Split()
	prefRNG := rng.Split()
	consPrefRNG := rng.Split()
	priceRNG := rng.Split()

	pop := &Population{WorkDist: cfg.WorkDist}

	// Volunteers: capacity, price factor.
	minCap, maxCap := 0.0, 0.0
	for i := 0; i < cfg.Volunteers; i++ {
		c := cfg.CapacityDist.Sample(capRNG)
		if c <= 0 {
			c = 0.01
		}
		v := Volunteer{
			Index:       i,
			Capacity:    c,
			PriceFactor: priceRNG.Range(0.8, 1.2),
			Malicious:   cfg.MaliciousFraction > 0 && priceRNG.Bool(cfg.MaliciousFraction),
			ProjectPref: make([]float64, len(cfg.Projects)),
		}
		pop.Volunteers = append(pop.Volunteers, v)
		pop.TotalCap += c
		if i == 0 || c < minCap {
			minCap = c
		}
		if c > maxCap {
			maxCap = c
		}
	}

	// Volunteer preferences: fans vs generalists. A fan's favourite project
	// is drawn with probability proportional to the popularity affinity
	// weights.
	weights := make([]float64, len(cfg.Projects))
	var weightSum float64
	for i, spec := range cfg.Projects {
		weights[i] = spec.Popularity.AffinityWeight()
		weightSum += weights[i]
	}
	for vi := range pop.Volunteers {
		if prefRNG.Bool(GeneralistShare) {
			for pi := range cfg.Projects {
				pop.Volunteers[vi].ProjectPref[pi] = clampPref(generalistPref.Sample(prefRNG))
			}
			continue
		}
		// Pick the favourite by affinity weight.
		u := prefRNG.Float64() * weightSum
		fav := 0
		for i, w := range weights {
			if u < w {
				fav = i
				break
			}
			u -= w
		}
		for pi := range cfg.Projects {
			if pi == fav {
				pop.Volunteers[vi].ProjectPref[pi] = clampPref(fanPref.Sample(prefRNG))
			} else {
				pop.Volunteers[vi].ProjectPref[pi] = clampPref(nonFanPref.Sample(prefRNG))
			}
		}
	}

	// Arrival rates: normalize shares, then size total arrivals so that
	// the offered work rate (including replication) hits ρ·TotalCap.
	var shareSum, weightedDemand float64
	for _, spec := range cfg.Projects {
		share := spec.ArrivalShare
		if share <= 0 {
			share = 1
		}
		shareSum += share
	}
	meanWork := cfg.WorkDist.Mean()
	if meanWork <= 0 {
		return nil, fmt.Errorf("workload: work distribution %v has non-positive mean", cfg.WorkDist)
	}
	shares := make([]float64, len(cfg.Projects))
	for i, spec := range cfg.Projects {
		share := spec.ArrivalShare
		if share <= 0 {
			share = 1
		}
		shares[i] = share / shareSum
		repl := spec.Replication
		if repl < 1 {
			repl = 1
		}
		weightedDemand += shares[i] * meanWork * float64(repl)
	}
	totalRate := cfg.LoadFactor * pop.TotalCap / weightedDemand
	pop.TotalRate = totalRate

	// Projects: rates and preferences toward volunteers. A project's
	// static preference follows the volunteer's relative capacity (fast
	// hosts return results sooner and are preferred for validation),
	// perturbed with noise so projects do not all agree. Preferences stay
	// essentially non-negative: projects favour fast hosts but do not
	// object to slow ones — objections are reserved for bad reputation.
	for i, spec := range cfg.Projects {
		repl := spec.Replication
		if repl < 1 {
			repl = 1
		}
		quorum := spec.Quorum
		if quorum < 1 {
			quorum = repl/2 + 1 // majority of the replicas
		}
		if quorum > repl {
			quorum = repl
		}
		p := Project{
			Index:         i,
			Name:          spec.Name,
			Popularity:    spec.Popularity,
			ArrivalRate:   totalRate * shares[i],
			Replication:   repl,
			DelayTarget:   spec.DelayTarget,
			Quorum:        quorum,
			VolunteerPref: make([]float64, cfg.Volunteers),
		}
		if p.DelayTarget <= 0 {
			p.DelayTarget = 30
		}
		for vi, v := range pop.Volunteers {
			rel := 0.5
			if maxCap > minCap {
				rel = (v.Capacity - minCap) / (maxCap - minCap)
			}
			// Map relative capacity to [0.05, 0.9] and add mild noise.
			pref := 0.05 + 0.85*rel + consPrefRNG.Range(-0.15, 0.15)
			p.VolunteerPref[vi] = clampPref(pref)
		}
		pop.Projects = append(pop.Projects, p)
	}
	return pop, nil
}

// LoadFactor reports the offered load of the generated population:
// Σ rate·E[work]·replication / Σ capacity.
func (p *Population) LoadFactor() float64 {
	if p.TotalCap == 0 {
		return 0
	}
	meanWork := p.WorkDist.Mean()
	var demand float64
	for _, proj := range p.Projects {
		demand += proj.ArrivalRate * meanWork * float64(proj.Replication)
	}
	return demand / p.TotalCap
}

func clampPref(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}
