package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"sbqa/internal/stats"
)

// TestPoissonMatchesHistoricalInlineDraw pins the exact draw contract the
// boinc and adwords worlds relied on before arrivals were unified: one
// ExpFloat64 per gap, divided by the rate. If this ever changes, every
// recorded finding and golden trajectory silently shifts.
func TestPoissonMatchesHistoricalInlineDraw(t *testing.T) {
	a := stats.NewRNG(42)
	b := stats.NewRNG(42)
	p := Poisson{Rate: 3.5}
	for i := 0; i < 1000; i++ {
		got := p.Next(123.0+float64(i), a)
		want := b.ExpFloat64() / 3.5
		if got != want {
			t.Fatalf("draw %d: Poisson.Next = %v, inline pattern = %v", i, got, want)
		}
	}
	if a.State() != b.State() {
		t.Fatalf("rng states diverged: %v vs %v", a.State(), b.State())
	}
}

// gapDigest replays n gaps of a process from seed and hashes the exact
// float64 bit patterns — a compact golden that pins every draw.
func gapDigest(t *testing.T, mk func() Arrivals, seed uint64, n int) string {
	t.Helper()
	rng := stats.NewRNG(seed)
	proc := mk()
	h := sha256.New()
	now := 0.0
	for i := 0; i < n; i++ {
		gap := proc.Next(now, rng)
		if gap < 0 || math.IsNaN(gap) {
			t.Fatalf("gap %d: invalid %v", i, gap)
		}
		fmt.Fprintf(h, "%x\n", math.Float64bits(gap))
		now += gap
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// TestArrivalsGolden pins the byte-exact gap sequences of every process
// under a fixed seed. Regenerate the constants (the test prints them on
// mismatch) only when a draw-sequence change is intentional — and say so in
// the commit, because it invalidates recorded findings.
func TestArrivalsGolden(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Arrivals
		want string
	}{
		{"poisson", func() Arrivals { return Poisson{Rate: 2} }, "500ded5fb303b2f5"},
		{"mmpp2", func() Arrivals {
			m, err := NewMMPP2(1, 50, 20, 5)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}, "4ec7426203df180c"},
		{"diurnal", func() Arrivals { return Diurnal{Mean: 2, Period: 100, Amplitude: 0.8} }, "fd588990b6477bf3"},
		{"flash", func() Arrivals {
			return Modulated{Base: Poisson{Rate: 2}, Factor: FlashFactor(10, 5, 10)}
		}, "f75a8dc66adc9700"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := gapDigest(t, tc.mk, 7, 500)
			if got != tc.want {
				t.Fatalf("golden gap digest for %s = %q, want %q (update only for intentional draw changes)", tc.name, got, tc.want)
			}
			// Same seed → same digest on a second replay (statefulness is
			// per-instance, not global).
			if again := gapDigest(t, tc.mk, 7, 500); again != got {
				t.Fatalf("replay diverged: %q vs %q", again, got)
			}
		})
	}
}

// --- Satellite: empirical generator statistics. A regression in a sampler
// (wrong rate, broken thinning, bad tail) would silently invalidate every
// finding built on it, so each process's empirical mean and tail are pinned
// within tolerance under a fixed seed.

func sampleGaps(mk func() Arrivals, seed uint64, n int) []float64 {
	rng := stats.NewRNG(seed)
	proc := mk()
	gaps := make([]float64, n)
	now := 0.0
	for i := range gaps {
		g := proc.Next(now, rng)
		gaps[i] = g
		now += g
	}
	return gaps
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func quantileOf(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[int(q*float64(len(sorted)-1))]
}

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", name)
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > relTol {
		t.Fatalf("%s = %.5g, want %.5g within %.0f%% (off by %.1f%%)", name, got, want, relTol*100, rel*100)
	}
}

func TestPoissonStatistics(t *testing.T) {
	const rate = 4.0
	gaps := sampleGaps(func() Arrivals { return Poisson{Rate: rate} }, 11, 200_000)
	within(t, "poisson mean gap", meanOf(gaps), 1/rate, 0.01)
	// Exponential p99 = ln(100)/rate.
	within(t, "poisson p99 gap", quantileOf(gaps, 0.99), math.Log(100)/rate, 0.05)
	// Coefficient of variation of exponential gaps is 1.
	var ss float64
	m := meanOf(gaps)
	for _, g := range gaps {
		ss += (g - m) * (g - m)
	}
	cv := math.Sqrt(ss/float64(len(gaps))) / m
	within(t, "poisson gap CV", cv, 1, 0.03)
}

func TestMMPP2Statistics(t *testing.T) {
	// Long-run rate is the dwell-weighted average of the state rates.
	const rateA, dwellA, rateB, dwellB = 1.0, 50.0, 20.0, 5.0
	gaps := sampleGaps(func() Arrivals {
		m, err := NewMMPP2(rateA, dwellA, rateB, dwellB)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, 13, 400_000)
	var total float64
	for _, g := range gaps {
		total += g
	}
	wantRate := (rateA*dwellA + rateB*dwellB) / (dwellA + dwellB)
	within(t, "mmpp2 long-run rate", float64(len(gaps))/total, wantRate, 0.05)

	// Burstiness: counts in fixed windows must be overdispersed relative to
	// Poisson (index of dispersion > 1). For this parameterization the
	// theoretical index is far above 2.
	const window = 10.0
	counts := map[int]float64{}
	now := 0.0
	for _, g := range gaps {
		now += g
		counts[int(now/window)]++
	}
	var cs []float64
	for _, c := range counts {
		cs = append(cs, c)
	}
	mc := meanOf(cs)
	var vs float64
	for _, c := range cs {
		vs += (c - mc) * (c - mc)
	}
	iod := (vs / float64(len(cs))) / mc
	if iod < 2 {
		t.Fatalf("mmpp2 index of dispersion = %.2f, want > 2 (bursty)", iod)
	}
}

func TestDiurnalStatistics(t *testing.T) {
	d := Diurnal{Mean: 5, Period: 1000, Amplitude: 0.8}
	gaps := sampleGaps(func() Arrivals { return d }, 17, 300_000)
	var total float64
	for _, g := range gaps {
		total += g
	}
	// Run an integer number of periods' worth of arrivals: mean rate ≈ Mean.
	within(t, "diurnal mean rate", float64(len(gaps))/total, d.Mean, 0.05)

	// Peak-quarter vs trough-quarter arrival counts: expected ratio is the
	// integral of (1 + A sin) over [P/8, 3P/8] vs [5P/8, 7P/8], which for
	// A=0.8 is (1+0.72)/(1-0.72) ≈ 6.1. Allow a loose band.
	var peak, trough float64
	now := 0.0
	for _, g := range gaps {
		now += g
		phase := math.Mod(now, d.Period) / d.Period
		switch {
		case phase >= 0.125 && phase < 0.375:
			peak++
		case phase >= 0.625 && phase < 0.875:
			trough++
		}
	}
	ratio := peak / trough
	if ratio < 4 || ratio > 9 {
		t.Fatalf("diurnal peak/trough arrival ratio = %.2f, want in [4, 9]", ratio)
	}
}

func TestFlashFactorStatistics(t *testing.T) {
	const base, factor, at, dur = 2.0, 10.0, 100.0, 50.0
	proc := Modulated{Base: Poisson{Rate: base}, Factor: FlashFactor(at, dur, factor)}
	rng := stats.NewRNG(19)
	now := 0.0
	var inFlash, before float64
	for now < 300 {
		g := proc.Next(now, rng)
		now += g
		switch {
		case now >= at && now < at+dur:
			inFlash++
		case now < at:
			before++
		}
	}
	// Inside the window the rate is base·factor = 20/s over 50s ≈ 1000
	// arrivals; outside it is 2/s. Loose bands: this is a smoke-level pin.
	within(t, "flash in-window arrivals", inFlash, base*factor*dur, 0.10)
	within(t, "flash pre-window arrivals", before, base*at, 0.25)
}

// TestCostDistributionStatistics pins the heavy-tailed query-cost draws the
// lab scenarios use (exponential baseline, Pareto heavy tail).
func TestCostDistributionStatistics(t *testing.T) {
	rng := stats.NewRNG(23)
	const n = 300_000

	exp := stats.Exponential{Rate: 0.1} // mean 10
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = exp.Sample(rng)
	}
	within(t, "exponential cost mean", meanOf(xs), 10, 0.02)
	within(t, "exponential cost p99", quantileOf(xs, 0.99), 10*math.Log(100), 0.05)

	par := stats.Pareto{Xm: 1, Alpha: 2.5} // mean xm·α/(α-1) = 5/3
	for i := range xs {
		xs[i] = par.Sample(rng)
	}
	within(t, "pareto cost mean", meanOf(xs), par.Mean(), 0.03)
	// Tail index check: empirical P[X > x] should track (xm/x)^α.
	for _, x := range []float64{2, 5, 10} {
		var exceed float64
		for _, v := range xs {
			if v > x {
				exceed++
			}
		}
		within(t, fmt.Sprintf("pareto tail P[X>%g]", x), exceed/float64(n), math.Pow(1/x, 2.5), 0.15)
	}
}

func TestArrivalsStrings(t *testing.T) {
	m, _ := NewMMPP2(1, 50, 20, 5)
	for _, proc := range []Arrivals{
		Poisson{Rate: 2},
		m,
		Diurnal{Mean: 2, Period: 100, Amplitude: 0.8},
		Modulated{Base: Poisson{Rate: 2}, Factor: FlashFactor(1, 1, 2)},
	} {
		if s := proc.String(); s == "" || strings.ContainsAny(s, "\n\t") {
			t.Fatalf("bad String() %q", s)
		}
	}
}

func TestArrivalsEdgeCases(t *testing.T) {
	rng := stats.NewRNG(1)
	if g := (Poisson{Rate: 0}).Next(0, rng); !math.IsInf(g, 1) {
		t.Fatalf("zero-rate poisson gap = %v, want +Inf", g)
	}
	if g := (Diurnal{Mean: 0, Period: 10}).Next(0, rng); !math.IsInf(g, 1) {
		t.Fatalf("zero-mean diurnal gap = %v, want +Inf", g)
	}
	if g := (Modulated{Base: Poisson{Rate: 1}, Factor: func(float64) float64 { return 0 }}).Next(0, rng); !math.IsInf(g, 1) {
		t.Fatalf("zero-factor modulated gap = %v, want +Inf", g)
	}
	if _, err := NewMMPP2(-1, 1, 1, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewMMPP2(1, 0, 1, 1); err == nil {
		t.Fatal("zero dwell accepted")
	}
	if _, err := NewMMPP2(0, 1, 0, 1); err == nil {
		t.Fatal("all-zero rates accepted")
	}
}
