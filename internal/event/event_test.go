package event

import (
	"errors"
	"testing"

	"sbqa/internal/model"
)

// recorder counts events per kind.
type recorder struct {
	Nop
	allocs, rejects, dispatch, preg, pdep, creg, cdep, snaps, policies, peers int
}

func (r *recorder) OnAllocation(*model.Allocation, int)                     { r.allocs++ }
func (r *recorder) OnRejection(model.Query, error)                          { r.rejects++ }
func (r *recorder) OnDispatchFailure(model.Query, *model.Allocation, error) { r.dispatch++ }
func (r *recorder) OnProviderRegistered(model.ProviderID)                   { r.preg++ }
func (r *recorder) OnProviderDeparted(model.ProviderID)                     { r.pdep++ }
func (r *recorder) OnConsumerRegistered(model.ConsumerID)                   { r.creg++ }
func (r *recorder) OnConsumerDeparted(model.ConsumerID)                     { r.cdep++ }
func (r *recorder) OnSatisfactionSnapshot(SatisfactionSnapshot)             { r.snaps++ }
func (r *recorder) OnPolicyChange(PolicyChange)                             { r.policies++ }
func (r *recorder) OnPeerChange(PeerChange)                                 { r.peers++ }

func emitAll(o Observer) {
	o.OnAllocation(&model.Allocation{}, 3)
	o.OnRejection(model.Query{}, errors.New("x"))
	o.OnDispatchFailure(model.Query{}, nil, errors.New("y"))
	o.OnProviderRegistered(1)
	o.OnProviderDeparted(1)
	o.OnConsumerRegistered(2)
	o.OnConsumerDeparted(2)
	o.OnSatisfactionSnapshot(SatisfactionSnapshot{Time: 1})
	o.OnPolicyChange(PolicyChange{Generation: 1, Kind: "sbqa", Time: 1})
	o.OnPeerChange(PeerChange{Node: "b", From: "alive", To: "suspect"})
}

func TestNopIsObserver(t *testing.T) {
	var o Observer = Nop{}
	emitAll(o) // must not panic
}

func TestFuncsNilFieldsIgnored(t *testing.T) {
	emitAll(Funcs{}) // zero value: every event ignored
	var got int
	emitAll(Funcs{Allocation: func(*model.Allocation, int) { got++ }})
	if got != 1 {
		t.Errorf("Allocation fired %d times, want 1", got)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	m := Multi(a, nil, b)
	emitAll(m)
	for _, r := range []*recorder{a, b} {
		if r.allocs != 1 || r.rejects != 1 || r.dispatch != 1 ||
			r.preg != 1 || r.pdep != 1 || r.creg != 1 || r.cdep != 1 || r.snaps != 1 || r.policies != 1 || r.peers != 1 {
			t.Errorf("recorder missed events: %+v", r)
		}
	}
}
