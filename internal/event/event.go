// Package event defines the engine's observability contract: a typed
// Observer interface that replaces the single mediator.Config.OnMediation
// hook with a first-class event stream covering the whole allocation
// lifecycle — mediation outcomes (success and the two distinct failure
// modes), dispatch failures, participant registration churn, and periodic
// satisfaction snapshots.
//
// The package sits below every runtime layer (it imports only
// internal/model) so the mediator, the directory, and the live engine can
// all emit into one observer without import cycles.
//
// # Delivery semantics
//
// Events are emitted synchronously on the path that produced them: an
// OnAllocation call runs on the mediating shard while it still holds the
// shard lock, OnProviderRegistered runs on the registering goroutine (after
// the directory lock is released), and so on. Observers must therefore be
// fast and must never call back into the engine from the callback; buffer
// into a channel and process elsewhere if the handler does real work. With
// several engine shards an observer is invoked concurrently and must be
// safe for concurrent use.
//
// Implementations should embed Nop so that adding a method to Observer is
// not a breaking change; Funcs adapts free functions for callers that only
// care about a subset of events.
//
// # Memory discipline
//
// Because events fire on the mediation hot path (often per query, under a
// shard lock), the event types themselves are allocation-free by design:
// every payload is a value type passed by value (Imputation, PolicyChange)
// or a pointer to engine-owned state the observer must not retain
// (*model.Allocation). Emitting an event allocates nothing — observers that
// need to keep a payload copy it into their own storage, the way
// persist.Recorder copies allocations into pooled journal records. Keep new
// event payloads to plain value structs; a payload that forces the emitter
// to heap-allocate per event would tax every query whether or not anyone is
// listening.
package event

import (
	"context"
	"errors"

	"sbqa/internal/model"
)

// Imputation reports that a participant stayed silent (or failed) during the
// batched intention collection of one mediation, and that the mediator
// substituted an intention derived from the participant's satisfaction
// registry state instead of stalling the mediation — the paper's autonomy
// assumption made operational: the system never waits on an unresponsive
// participant.
type Imputation struct {
	// Query is the query being mediated when the participant went silent.
	Query model.Query

	// Provider is the silent provider, or model.NoProvider when the silent
	// party was the consumer (whose whole CI batch was imputed).
	Provider model.ProviderID

	// Consumer is the query's consumer (the silent party when Provider is
	// model.NoProvider).
	Consumer model.ConsumerID

	// Err is the captured cause: context.DeadlineExceeded when the
	// participant missed its per-participant deadline, otherwise the error
	// the participant (or its transport) returned.
	Err error

	// Imputed is the intention substituted from registry state.
	Imputed model.Intention
}

// Timeout reports whether the imputation was caused by the participant
// missing its per-participant deadline (as opposed to an explicit error).
func (im Imputation) Timeout() bool { return errors.Is(im.Err, context.DeadlineExceeded) }

// ConsumerSilent reports whether the silent party was the consumer.
func (im Imputation) ConsumerSilent() bool { return im.Provider == model.NoProvider }

// PolicyChange reports that the engine accepted a new allocation policy:
// Reconfigure validated the spec, built one allocator per shard, and
// published the generation — each shard adopts it at its next mediation
// boundary (the event precedes per-shard adoption; Stats reports the
// generation each shard is actually running).
type PolicyChange struct {
	// Generation is the monotonically increasing number of the accepted
	// policy; generation 0 is the construction-time policy.
	Generation uint64

	// Name and Kind identify the accepted policy spec (the policy
	// package's vocabulary, carried as plain strings so this package
	// stays at the bottom of the import graph).
	Name string
	Kind string

	// Time is the engine-clock timestamp of the acceptance.
	Time float64
}

// PeerChange reports a cluster peer's health transition, emitted by the
// membership layer's heartbeat state machine (internal/cluster): a peer
// moved between "alive", "suspect", and "down". Ring recomputation and
// failover replay key off the transitions to and from "down"; "suspect" is
// advisory (the peer missed heartbeats but still owns its ranges). The
// states are carried as plain strings so this package stays at the bottom
// of the import graph, the same way PolicyChange carries its policy kind.
type PeerChange struct {
	// Node is the peer's cluster node ID.
	Node string

	// Addr is the peer's base URL.
	Addr string

	// From and To are the health states of the transition: one of
	// "alive", "suspect", "down".
	From string
	To   string

	// Err is the last heartbeat error for degradations ("" on recovery).
	Err string
}

// Shed reports that the engine refused a query at its shard queue instead
// of mediating it: the class-aware scheduler decided the query could not be
// served in time (reason "deadline"), the class's queue bound was reached
// (reason "queue_full"), or the brownout controller had widened shedding to
// the query's class (reason "brownout"). The submitter always receives a
// typed *live.ShedError for the same decision — this event is the
// observer-side record, emitted on the shedding goroutine after the ticket
// is failed. Class and Reason are plain strings (the qos package's
// vocabulary) so this package stays at the bottom of the import graph.
type Shed struct {
	// Query is the refused query.
	Query model.Query

	// Class is the resolved QoS class the query was queued under.
	Class string

	// Reason is one of "deadline", "queue_full", "brownout".
	Reason string

	// QueueDepth is the shard's total queued-query count at decision time.
	QueueDepth int

	// EstimatedWait is the scheduler's queue-wait estimate in seconds at
	// decision time (EWMA service time × queue depth); 0 when the shed was
	// not deadline-driven.
	EstimatedWait float64
}

// SatisfactionSnapshot is a periodic sample of every tracked participant's
// long-run satisfaction δs (Definitions 1-2 of the paper), emitted by the
// engine's snapshot ticker. The maps are owned by the receiver.
type SatisfactionSnapshot struct {
	// Time is the engine-clock timestamp of the sample, in seconds on the
	// mediation time axis (Config.NowFn's axis).
	Time float64

	// Consumers maps every tracked consumer to its δs(c) ∈ [0, 1].
	Consumers map[model.ConsumerID]float64

	// Providers maps every tracked provider to its δs(p) ∈ [0, 1].
	Providers map[model.ProviderID]float64
}

// Observer receives the engine's lifecycle events. All methods may be
// invoked concurrently; implementations must not block. Embed Nop to stay
// forward-compatible with new events.
type Observer interface {
	// OnAllocation observes every successful mediation: the completed
	// allocation (proposed set, selection, intentions, scores) and the size
	// of the candidate set P_q it was drawn from. The allocation must not
	// be mutated or retained past the call; copy what you need.
	OnAllocation(a *model.Allocation, candidates int)

	// OnRejection observes a failed mediation. reason distinguishes the
	// failure modes: errors.Is(reason, mediator.ErrNoCandidates) means no
	// capacity existed, errors.Is(reason, mediator.ErrStaleSelection) means
	// capacity churned away mid-mediation (retryable); anything else is a
	// malformed or misaddressed query.
	OnRejection(q model.Query, reason error)

	// OnDispatchFailure observes an allocation that mediated successfully
	// but could not be (fully) delivered to its selected workers. a may be
	// nil when the selection went stale before hand-off; err is the
	// engine's dispatch error (a *live.DispatchError when partial delivery
	// information is available).
	OnDispatchFailure(q model.Query, a *model.Allocation, err error)

	// OnProviderRegistered observes a provider joining the directory.
	OnProviderRegistered(id model.ProviderID)

	// OnProviderDeparted observes a provider leaving the directory.
	OnProviderDeparted(id model.ProviderID)

	// OnConsumerRegistered observes a consumer joining the directory.
	OnConsumerRegistered(id model.ConsumerID)

	// OnConsumerDeparted observes a consumer leaving the directory.
	OnConsumerDeparted(id model.ConsumerID)

	// OnIntentionImputed observes one silent participant during batched
	// intention collection: the mediation proceeded with an intention
	// imputed from the participant's satisfaction registry state. Events
	// are emitted on the mediating goroutine after the batch collection
	// completes, in candidate order (the consumer's event, if any, first).
	OnIntentionImputed(im Imputation)

	// OnShed observes a query the shard scheduler refused (deadline
	// infeasible, class queue full, or brownout). Emitted on the shedding
	// goroutine after the submitter's ticket is failed with the matching
	// *live.ShedError; never emitted for gateway rate-limit rejections,
	// which are refused before the query reaches the engine.
	OnShed(s Shed)

	// OnSatisfactionSnapshot observes a periodic satisfaction sample (see
	// live.WithSnapshotInterval). The snapshot is owned by the receiver.
	OnSatisfactionSnapshot(snap SatisfactionSnapshot)

	// OnPolicyChange observes an accepted allocation-policy change (see
	// the engine's Reconfigure). Emitted on the reconfiguring goroutine
	// after the new generation is published to every shard.
	OnPolicyChange(pc PolicyChange)

	// OnPeerChange observes a cluster peer's health transition (see
	// internal/cluster). Emitted on the heartbeat goroutine after the
	// membership state machine records the transition and recomputes the
	// live ring; never emitted by a single-node engine.
	OnPeerChange(pc PeerChange)
}

// Nop is an Observer that ignores every event. Embed it to implement only
// the events you care about.
type Nop struct{}

// OnAllocation implements Observer.
func (Nop) OnAllocation(*model.Allocation, int) {}

// OnRejection implements Observer.
func (Nop) OnRejection(model.Query, error) {}

// OnDispatchFailure implements Observer.
func (Nop) OnDispatchFailure(model.Query, *model.Allocation, error) {}

// OnProviderRegistered implements Observer.
func (Nop) OnProviderRegistered(model.ProviderID) {}

// OnProviderDeparted implements Observer.
func (Nop) OnProviderDeparted(model.ProviderID) {}

// OnConsumerRegistered implements Observer.
func (Nop) OnConsumerRegistered(model.ConsumerID) {}

// OnConsumerDeparted implements Observer.
func (Nop) OnConsumerDeparted(model.ConsumerID) {}

// OnIntentionImputed implements Observer.
func (Nop) OnIntentionImputed(Imputation) {}

// OnShed implements Observer.
func (Nop) OnShed(Shed) {}

// OnSatisfactionSnapshot implements Observer.
func (Nop) OnSatisfactionSnapshot(SatisfactionSnapshot) {}

// OnPolicyChange implements Observer.
func (Nop) OnPolicyChange(PolicyChange) {}

// OnPeerChange implements Observer.
func (Nop) OnPeerChange(PeerChange) {}

// Funcs adapts free functions to Observer; nil fields ignore their event.
// The zero Funcs is a valid no-op observer.
type Funcs struct {
	Allocation           func(a *model.Allocation, candidates int)
	Rejection            func(q model.Query, reason error)
	DispatchFailure      func(q model.Query, a *model.Allocation, err error)
	ProviderRegistered   func(id model.ProviderID)
	ProviderDeparted     func(id model.ProviderID)
	ConsumerRegistered   func(id model.ConsumerID)
	ConsumerDeparted     func(id model.ConsumerID)
	IntentionImputed     func(im Imputation)
	Shed                 func(s Shed)
	SatisfactionSnapshot func(snap SatisfactionSnapshot)
	PolicyChange         func(pc PolicyChange)
	PeerChange           func(pc PeerChange)
}

var _ Observer = Funcs{}

// OnAllocation implements Observer.
func (f Funcs) OnAllocation(a *model.Allocation, candidates int) {
	if f.Allocation != nil {
		f.Allocation(a, candidates)
	}
}

// OnRejection implements Observer.
func (f Funcs) OnRejection(q model.Query, reason error) {
	if f.Rejection != nil {
		f.Rejection(q, reason)
	}
}

// OnDispatchFailure implements Observer.
func (f Funcs) OnDispatchFailure(q model.Query, a *model.Allocation, err error) {
	if f.DispatchFailure != nil {
		f.DispatchFailure(q, a, err)
	}
}

// OnProviderRegistered implements Observer.
func (f Funcs) OnProviderRegistered(id model.ProviderID) {
	if f.ProviderRegistered != nil {
		f.ProviderRegistered(id)
	}
}

// OnProviderDeparted implements Observer.
func (f Funcs) OnProviderDeparted(id model.ProviderID) {
	if f.ProviderDeparted != nil {
		f.ProviderDeparted(id)
	}
}

// OnConsumerRegistered implements Observer.
func (f Funcs) OnConsumerRegistered(id model.ConsumerID) {
	if f.ConsumerRegistered != nil {
		f.ConsumerRegistered(id)
	}
}

// OnConsumerDeparted implements Observer.
func (f Funcs) OnConsumerDeparted(id model.ConsumerID) {
	if f.ConsumerDeparted != nil {
		f.ConsumerDeparted(id)
	}
}

// OnIntentionImputed implements Observer.
func (f Funcs) OnIntentionImputed(im Imputation) {
	if f.IntentionImputed != nil {
		f.IntentionImputed(im)
	}
}

// OnShed implements Observer.
func (f Funcs) OnShed(s Shed) {
	if f.Shed != nil {
		f.Shed(s)
	}
}

// OnSatisfactionSnapshot implements Observer.
func (f Funcs) OnSatisfactionSnapshot(snap SatisfactionSnapshot) {
	if f.SatisfactionSnapshot != nil {
		f.SatisfactionSnapshot(snap)
	}
}

// OnPolicyChange implements Observer.
func (f Funcs) OnPolicyChange(pc PolicyChange) {
	if f.PolicyChange != nil {
		f.PolicyChange(pc)
	}
}

// OnPeerChange implements Observer.
func (f Funcs) OnPeerChange(pc PeerChange) {
	if f.PeerChange != nil {
		f.PeerChange(pc)
	}
}

// Multi fans every event out to each observer in order. Nil entries are
// skipped.
func Multi(obs ...Observer) Observer {
	kept := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	return kept
}

type multi []Observer

// OnAllocation implements Observer.
func (m multi) OnAllocation(a *model.Allocation, candidates int) {
	for _, o := range m {
		o.OnAllocation(a, candidates)
	}
}

// OnRejection implements Observer.
func (m multi) OnRejection(q model.Query, reason error) {
	for _, o := range m {
		o.OnRejection(q, reason)
	}
}

// OnDispatchFailure implements Observer.
func (m multi) OnDispatchFailure(q model.Query, a *model.Allocation, err error) {
	for _, o := range m {
		o.OnDispatchFailure(q, a, err)
	}
}

// OnProviderRegistered implements Observer.
func (m multi) OnProviderRegistered(id model.ProviderID) {
	for _, o := range m {
		o.OnProviderRegistered(id)
	}
}

// OnProviderDeparted implements Observer.
func (m multi) OnProviderDeparted(id model.ProviderID) {
	for _, o := range m {
		o.OnProviderDeparted(id)
	}
}

// OnConsumerRegistered implements Observer.
func (m multi) OnConsumerRegistered(id model.ConsumerID) {
	for _, o := range m {
		o.OnConsumerRegistered(id)
	}
}

// OnConsumerDeparted implements Observer.
func (m multi) OnConsumerDeparted(id model.ConsumerID) {
	for _, o := range m {
		o.OnConsumerDeparted(id)
	}
}

// OnIntentionImputed implements Observer.
func (m multi) OnIntentionImputed(im Imputation) {
	for _, o := range m {
		o.OnIntentionImputed(im)
	}
}

// OnShed implements Observer.
func (m multi) OnShed(s Shed) {
	for _, o := range m {
		o.OnShed(s)
	}
}

// OnSatisfactionSnapshot implements Observer.
func (m multi) OnSatisfactionSnapshot(snap SatisfactionSnapshot) {
	for _, o := range m {
		o.OnSatisfactionSnapshot(snap)
	}
}

// OnPolicyChange implements Observer.
func (m multi) OnPolicyChange(pc PolicyChange) {
	for _, o := range m {
		o.OnPolicyChange(pc)
	}
}

// OnPeerChange implements Observer.
func (m multi) OnPeerChange(pc PeerChange) {
	for _, o := range m {
		o.OnPeerChange(pc)
	}
}
