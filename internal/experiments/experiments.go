// Package experiments reproduces the evaluation of the SbQA demo paper.
// The paper's evaluation section defines seven demonstration scenarios
// rather than numbered tables; each function here regenerates one scenario's
// observable output as a text table (plus CSV-able time series), using the
// BOINC-like world in internal/boinc.
//
// Scenario map (see DESIGN.md §4):
//
//	S1 — satisfaction model compares Capacity vs Economic, captive
//	S2 — the same baselines under autonomy; departure prediction
//	S3 — SbQA vs baselines, captive (performance not far from baselines)
//	S4 — SbQA vs baselines, autonomous (SbQA preserves volunteers)
//	S5 — participants care only about performance; SbQA adapts
//	S6 — application adaptability: sweeping kn and ω
//	S7 — a probe participant reaches its objectives only under SbQA
package experiments

import (
	"fmt"
	"io"

	"sbqa/internal/alloc"
	"sbqa/internal/boinc"
	"sbqa/internal/core"
	"sbqa/internal/metrics"
	"sbqa/internal/stats"
)

// Options sizes an experiment run. The zero value is repaired to the paper-
// scale defaults (100 volunteers, 2000 simulated seconds); tests use smaller
// values.
type Options struct {
	// Volunteers is the provider population size.
	Volunteers int

	// Duration is the simulated run length (seconds).
	Duration float64

	// SampleEvery is the gauge sampling period; 0 = Duration/100.
	SampleEvery float64

	// Seed drives every random draw; runs are bit-reproducible under it.
	Seed uint64

	// Load is the offered load factor ρ; 0 = 0.7.
	Load float64

	// Out, when non-nil, receives progress lines.
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if o.Volunteers < 1 {
		o.Volunteers = 100
	}
	if o.Duration <= 0 {
		o.Duration = 2000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Load <= 0 {
		o.Load = 0.7
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

// baseConfig builds the world configuration shared by all scenarios.
func (o Options) baseConfig(mode boinc.Mode) boinc.Config {
	cfg := boinc.DefaultConfig(o.Volunteers, o.Seed)
	cfg.Mode = mode
	cfg.Duration = o.Duration
	cfg.SampleEvery = o.SampleEvery
	cfg.Workload.LoadFactor = o.Load
	cfg.AnalyzeBest = true
	return cfg
}

// Technique names an allocation technique and knows how to build a fresh
// instance (allocators carry private RNG state, so every run needs its own).
type Technique struct {
	Name string
	New  func(seed uint64) alloc.Allocator
}

// SbQATechnique returns the satisfaction-based allocator with demo defaults.
func SbQATechnique() Technique {
	return Technique{Name: "SbQA", New: func(seed uint64) alloc.Allocator {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		return core.MustNew(cfg)
	}}
}

// CapacityTechnique returns the BOINC-like capacity-based baseline.
func CapacityTechnique() Technique {
	return Technique{Name: "Capacity", New: func(uint64) alloc.Allocator {
		return alloc.NewCapacity()
	}}
}

// EconomicTechnique returns the Mariposa-like bidding baseline.
func EconomicTechnique() Technique {
	return Technique{Name: "Economic", New: func(seed uint64) alloc.Allocator {
		return alloc.NewEconomic(stats.NewRNG(seed))
	}}
}

// RandomTechnique returns the random control.
func RandomTechnique() Technique {
	return Technique{Name: "Random", New: func(seed uint64) alloc.Allocator {
		return alloc.NewRandom(stats.NewRNG(seed))
	}}
}

// Baselines returns the two techniques the demo compares in Scenarios 1-2.
func Baselines() []Technique {
	return []Technique{CapacityTechnique(), EconomicTechnique()}
}

// AllTechniques returns the full head-to-head cast of Scenarios 3-4.
func AllTechniques() []Technique {
	return []Technique{CapacityTechnique(), EconomicTechnique(), SbQATechnique()}
}

// ScenarioResult is one scenario's regenerated output.
type ScenarioResult struct {
	Name        string
	Description string

	// Table is the paper-style summary table.
	Table *metrics.Table

	// Extra holds scenario-specific secondary tables (departures,
	// satisfaction analysis, sweeps).
	Extra []*metrics.Table

	// Results holds the per-technique summaries backing Table.
	Results []metrics.Result

	// Collectors gives access to the full time series per technique row
	// (keyed by row label) for CSV export.
	Collectors map[string]*metrics.Collector

	// Notes records qualitative findings (e.g. departure predictions).
	Notes []string
}

// Render writes the scenario's tables and notes to w.
func (s *ScenarioResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n\n", s.Name, s.Description); err != nil {
		return err
	}
	if s.Table != nil {
		if err := s.Table.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, t := range s.Extra {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range s.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// runOne builds a world for the technique, applies the optional customizer,
// runs it, and returns the result together with the world for post-analysis.
func runOne(t Technique, cfg boinc.Config, seed uint64, customize func(*boinc.World)) (metrics.Result, *boinc.World, error) {
	w, err := boinc.NewWorld(t.New(seed), cfg)
	if err != nil {
		return metrics.Result{}, nil, err
	}
	if customize != nil {
		customize(w)
	}
	r := w.Run()
	r.Technique = t.Name
	return r, w, nil
}

// compare runs every technique on identically seeded worlds.
func compare(techniques []Technique, cfg boinc.Config, customize func(*boinc.World)) ([]metrics.Result, map[string]*boinc.World, error) {
	results := make([]metrics.Result, 0, len(techniques))
	worlds := make(map[string]*boinc.World, len(techniques))
	for i, t := range techniques {
		r, w, err := runOne(t, cfg, cfg.Seed+uint64(i)*7919, customize)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s: %w", t.Name, err)
		}
		results = append(results, r)
		worlds[t.Name] = w
	}
	return results, worlds, nil
}

// collectorsOf extracts each world's collector keyed by technique name.
func collectorsOf(worlds map[string]*boinc.World) map[string]*metrics.Collector {
	out := make(map[string]*metrics.Collector, len(worlds))
	for name, w := range worlds {
		out[name] = w.Collector()
	}
	return out
}

// satisfactionAnalysisTable summarizes the full satisfaction model per
// technique: satisfaction, adequation, and allocation satisfaction on both
// sides — the Scenario 1 demonstration that the model can analyze any
// technique.
func satisfactionAnalysisTable(title string, worlds map[string]*boinc.World, order []Technique) *metrics.Table {
	t := &metrics.Table{
		Title: title,
		Columns: []string{
			"technique", "δs(C)", "δa(C)", "δal(C)", "δs(P)", "δa(P)", "δal(P)", "δs(P)<0.35",
		},
	}
	for _, tech := range order {
		w, ok := worlds[tech.Name]
		if !ok {
			continue
		}
		reg := w.Mediator().Registry()
		var sc, ac, alc stats.Welford
		for _, p := range w.Projects() {
			tr := reg.Consumer(p.ConsumerID())
			sc.Add(tr.Satisfaction())
			ac.Add(tr.Adequation())
			alc.Add(tr.AllocationSatisfaction())
		}
		var sp, ap, alp stats.Welford
		below := 0
		for _, v := range w.Volunteers() {
			if !v.Online() {
				below++ // departed by dissatisfaction
				continue
			}
			tr := reg.Provider(v.ProviderID())
			sp.Add(tr.Satisfaction())
			ap.Add(tr.Adequation())
			alp.Add(tr.AllocationSatisfaction())
			if tr.Satisfaction() < 0.35 {
				below++
			}
		}
		t.Rows = append(t.Rows, []string{
			tech.Name,
			fmt.Sprintf("%.3f", sc.Mean()),
			fmt.Sprintf("%.3f", ac.Mean()),
			fmt.Sprintf("%.3f", alc.Mean()),
			fmt.Sprintf("%.3f", sp.Mean()),
			fmt.Sprintf("%.3f", ap.Mean()),
			fmt.Sprintf("%.3f", alp.Mean()),
			fmt.Sprintf("%d/%d", below, len(w.Volunteers())),
		})
	}
	return t
}
