package experiments

import (
	"fmt"

	"sbqa/internal/alloc"
	"sbqa/internal/boinc"
	"sbqa/internal/core"
	"sbqa/internal/intention"
	"sbqa/internal/knbest"
	"sbqa/internal/metrics"
	"sbqa/internal/model"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// Scenario1 — Satisfaction model, captive environment.
//
// The demo compares the way BOINC allocates queries (equivalent to the
// capacity-based technique) with an economic technique from a satisfaction
// point of view, in a captive environment (participants cannot leave). The
// deliverable is the full satisfaction-model analysis: the two techniques
// allocate by completely different principles yet the model scores both.
func Scenario1(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("scenario 1: baselines under the satisfaction model (captive)")
	cfg := opt.baseConfig(boinc.Captive)
	techs := Baselines()
	results, worlds, err := compare(techs, cfg, nil)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		Name:        "Scenario 1",
		Description: "satisfaction model analyzes heterogeneous techniques (captive)",
		Table:       metrics.ResultTable("Scenario 1 — performance & satisfaction (captive)", results),
		Extra: []*metrics.Table{
			satisfactionAnalysisTable("Scenario 1 — satisfaction model analysis", worlds, techs),
		},
		Results:    results,
		Collectors: collectorsOf(worlds),
	}
	res.Notes = append(res.Notes,
		"both techniques are analyzable by the same model despite allocating by different principles",
		fmt.Sprintf("capacity-based favours load balance (util σ %.3f) while the economic mediation favours cheap/fast hosts",
			results[0].UtilizationStd))
	return res, nil
}

// Scenario2 — Baselines under autonomy; departure prediction.
//
// Same techniques, but participants may leave: a provider quits below
// δs = 0.35, a consumer below 0.5. The scenario also demonstrates that the
// satisfaction model predicts departures: participants below threshold in a
// captive twin run are the ones that leave when autonomy is enabled.
func Scenario2(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("scenario 2: baselines under autonomy; departure prediction")
	techs := Baselines()

	// Captive twin runs for the prediction.
	captive := opt.baseConfig(boinc.Captive)
	_, captiveWorlds, err := compare(techs, captive, nil)
	if err != nil {
		return nil, err
	}

	auto := opt.baseConfig(boinc.Autonomous)
	results, worlds, err := compare(techs, auto, nil)
	if err != nil {
		return nil, err
	}

	res := &ScenarioResult{
		Name:        "Scenario 2",
		Description: "baselines under autonomy: dissatisfaction costs capacity",
		Table:       metrics.ResultTable("Scenario 2 — performance & departures (autonomous)", results),
		Results:     results,
		Collectors:  collectorsOf(worlds),
	}

	// Departure detail table.
	dt := &metrics.Table{
		Title:   "Scenario 2 — departures",
		Columns: []string{"technique", "providers left", "consumers left", "first departure", "capacity lost"},
	}
	for _, tech := range techs {
		w := worlds[tech.Name]
		col := w.Collector()
		metrics.SortDepartures(col.Departures)
		first := "-"
		if len(col.Departures) > 0 {
			first = fmt.Sprintf("t=%.0f", col.Departures[0].Time)
		}
		var lost, total float64
		for _, v := range w.Volunteers() {
			total += v.Capacity()
			if !v.Online() {
				lost += v.Capacity()
			}
		}
		dt.Rows = append(dt.Rows, []string{
			tech.Name,
			fmt.Sprintf("%d", col.ProviderDepartures()),
			fmt.Sprintf("%d", col.ConsumerDepartures()),
			first,
			fmt.Sprintf("%.0f%%", 100*lost/total),
		})
	}
	res.Extra = append(res.Extra, dt)

	// Departure prediction: captive-twin participants below threshold vs
	// actual leavers in the autonomous run.
	for _, tech := range techs {
		cw := captiveWorlds[tech.Name]
		aw := worlds[tech.Name]
		predicted := map[model.ProviderID]bool{}
		for _, v := range cw.Volunteers() {
			if cw.Mediator().Registry().ProviderSatisfaction(v.ProviderID()) < aw.Config().ProviderLeaveThreshold {
				predicted[v.ProviderID()] = true
			}
		}
		actual := map[model.ProviderID]bool{}
		for _, d := range aw.Collector().Departures {
			if d.Provider != model.NoProvider {
				actual[d.Provider] = true
			}
		}
		hit := 0
		for id := range actual {
			if predicted[id] {
				hit++
			}
		}
		precision := 1.0
		if len(actual) > 0 {
			precision = float64(hit) / float64(len(actual))
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: captive-twin dissatisfaction predicts %d providers at risk; %d actually left; %.0f%% of leavers were predicted",
			tech.Name, len(predicted), len(actual), 100*precision))
	}
	return res, nil
}

// Scenario3 — SbQA vs baselines, captive.
//
// The demo's claim: SbQA's performance (response time) is not far from the
// baselines' even though it also satisfies participants — so it is usable
// even in captive environments it was not designed for.
func Scenario3(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("scenario 3: SbQA vs baselines (captive)")
	cfg := opt.baseConfig(boinc.Captive)
	techs := AllTechniques()
	results, worlds, err := compare(techs, cfg, nil)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		Name:        "Scenario 3",
		Description: "SbQA trades little performance for much satisfaction (captive)",
		Table:       metrics.ResultTable("Scenario 3 — SbQA vs baselines (captive)", results),
		Extra: []*metrics.Table{
			satisfactionAnalysisTable("Scenario 3 — satisfaction analysis", worlds, techs),
		},
		Results:    results,
		Collectors: collectorsOf(worlds),
	}
	var capRT, sbqaRT, capPS, sbqaPS float64
	for _, r := range results {
		switch r.Technique {
		case "Capacity":
			capRT, capPS = r.MeanResponseTime, r.ProviderSat
		case "SbQA":
			sbqaRT, sbqaPS = r.MeanResponseTime, r.ProviderSat
		}
	}
	if capRT > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"SbQA response time is %.2fx capacity-based while provider satisfaction is %.2fx (%.3f vs %.3f)",
			sbqaRT/capRT, sbqaPS/capPS, sbqaPS, capPS))
	}
	return res, nil
}

// Scenario4 — SbQA vs baselines, autonomous.
//
// The headline result: by satisfying participants SbQA preserves volunteers
// (hence total capacity) and ends up with better performance than the
// interest-blind baselines, whose dissatisfied volunteers leave.
func Scenario4(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("scenario 4: SbQA vs baselines (autonomous)")
	cfg := opt.baseConfig(boinc.Autonomous)
	techs := AllTechniques()
	results, worlds, err := compare(techs, cfg, nil)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		Name:        "Scenario 4",
		Description: "SbQA preserves volunteers and hence performance (autonomous)",
		Table:       metrics.ResultTable("Scenario 4 — SbQA vs baselines (autonomous)", results),
		Results:     results,
		Collectors:  collectorsOf(worlds),
	}
	for _, r := range results {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: %d providers left, %.0f online at end", r.Technique, r.ProvidersLeft, r.OnlineAtEnd))
	}
	return res, nil
}

// Scenario5 — Adaptation to participants' expectations.
//
// Participants' intentions flip to pure performance: projects care only
// about response times, volunteers only about their load. SbQA must behave
// like a load balancer — improving response times and balancing queries —
// because that is what the participants now want.
func Scenario5(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("scenario 5: performance-only intentions")
	techs := []Technique{CapacityTechnique(), SbQATechnique()}

	// Run SbQA under default (interest-driven) intentions…
	defCfg := opt.baseConfig(boinc.Captive)
	defResults, defWorlds, err := compare(techs, defCfg, nil)
	if err != nil {
		return nil, err
	}

	// …and under performance-only intentions.
	perfCfg := opt.baseConfig(boinc.Captive)
	perfCfg.ConsumerPolicy = func(workload.Project) intention.ConsumerPolicy {
		return intention.ResponseTimeConsumer{}
	}
	perfCfg.ProviderPolicy = func(workload.Volunteer) intention.ProviderPolicy {
		return intention.LoadOnlyProvider{}
	}
	perfResults, perfWorlds, err := compare(techs, perfCfg, nil)
	if err != nil {
		return nil, err
	}

	// Merge rows with labelled variants.
	rows := make([]metrics.Result, 0, 4)
	for _, r := range defResults {
		r.Technique += "/interests"
		rows = append(rows, r)
	}
	for _, r := range perfResults {
		r.Technique += "/perf-only"
		rows = append(rows, r)
	}
	collectors := map[string]*metrics.Collector{}
	for n, w := range defWorlds {
		collectors[n+"/interests"] = w.Collector()
	}
	for n, w := range perfWorlds {
		collectors[n+"/perf-only"] = w.Collector()
	}

	res := &ScenarioResult{
		Name:        "Scenario 5",
		Description: "SbQA adapts to what participants care about",
		Table:       metrics.ResultTable("Scenario 5 — intention policies flipped to performance", rows),
		Results:     rows,
		Collectors:  collectors,
	}
	var sbqaDef, sbqaPerf metrics.Result
	for _, r := range rows {
		switch r.Technique {
		case "SbQA/interests":
			sbqaDef = r
		case "SbQA/perf-only":
			sbqaPerf = r
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"with performance-only intentions SbQA cuts mean response time from %.2f to %.2f and utilization σ from %.3f to %.3f",
		sbqaDef.MeanResponseTime, sbqaPerf.MeanResponseTime,
		sbqaDef.UtilizationStd, sbqaPerf.UtilizationStd))
	return res, nil
}

// Scenario6 — Application adaptability: sweeping kn and ω.
//
// The demo adapts the allocation process to the application by varying the
// KnBest kn parameter and the scoring balance ω. The sweep shows the
// monotone trade between response time and provider satisfaction, with the
// adaptive ω sitting near the knee.
func Scenario6(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("scenario 6: kn and ω sweeps")
	cfg := opt.baseConfig(boinc.Autonomous)

	res := &ScenarioResult{
		Name:        "Scenario 6",
		Description: "tuning SbQA to the application via kn and ω",
		Collectors:  map[string]*metrics.Collector{},
	}

	// Sweep 1: kn with adaptive ω (k = 20).
	knTable := &metrics.Table{
		Title:   "Scenario 6a — varying kn (k=20, ω adaptive, autonomous)",
		Columns: []string{"kn", "RTmean", "sat(C)", "sat(P)", "left(P)", "contacts"},
	}
	for _, kn := range []int{1, 2, 5, 10, 20} {
		kn := kn
		tech := Technique{
			Name: fmt.Sprintf("SbQA(kn=%d)", kn),
			New: func(seed uint64) alloc.Allocator {
				c := core.DefaultConfig()
				c.KnBest = knbest.Params{K: 20, Kn: kn}
				c.Seed = seed
				return core.MustNew(c)
			},
		}
		r, w, err := runOne(tech, cfg, cfg.Seed+uint64(kn)*104729, nil)
		if err != nil {
			return nil, err
		}
		res.Results = append(res.Results, r)
		res.Collectors[tech.Name] = w.Collector()
		knTable.Rows = append(knTable.Rows, []string{
			fmt.Sprintf("%d", kn),
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.3f", r.ConsumerSat),
			fmt.Sprintf("%.3f", r.ProviderSat),
			fmt.Sprintf("%d", r.ProvidersLeft),
			fmt.Sprintf("%.1f", r.MeanContacts),
		})
	}
	res.Extra = append(res.Extra, knTable)

	// Sweep 2: ω with kn = 10.
	omegaTable := &metrics.Table{
		Title:   "Scenario 6b — varying ω (k=20, kn=10, autonomous)",
		Columns: []string{"ω", "RTmean", "sat(C)", "sat(P)", "left(P)"},
	}
	type omegaCase struct {
		label string
		omega *float64
	}
	cases := []omegaCase{
		{"0.00", core.FixedOmega(0)},
		{"0.25", core.FixedOmega(0.25)},
		{"0.50", core.FixedOmega(0.5)},
		{"0.75", core.FixedOmega(0.75)},
		{"1.00", core.FixedOmega(1)},
		{"adaptive", nil},
	}
	for i, oc := range cases {
		oc := oc
		tech := Technique{
			Name: fmt.Sprintf("SbQA(ω=%s)", oc.label),
			New: func(seed uint64) alloc.Allocator {
				c := core.DefaultConfig()
				c.Omega = oc.omega
				c.Seed = seed
				return core.MustNew(c)
			},
		}
		r, w, err := runOne(tech, cfg, cfg.Seed+uint64(i+1)*224737, nil)
		if err != nil {
			return nil, err
		}
		res.Results = append(res.Results, r)
		res.Collectors[tech.Name] = w.Collector()
		omegaTable.Rows = append(omegaTable.Rows, []string{
			oc.label,
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.3f", r.ConsumerSat),
			fmt.Sprintf("%.3f", r.ProviderSat),
			fmt.Sprintf("%d", r.ProvidersLeft),
		})
	}
	res.Extra = append(res.Extra, omegaTable)

	res.Notes = append(res.Notes,
		"small kn ⇒ load balancing (low response time, dissatisfied providers); large kn ⇒ interest matching",
		"ω→0 favours consumers, ω→1 favours providers; the adaptive rule needs no per-application tuning")
	return res, nil
}

// Scenario7 — Playing a BOINC-participant role.
//
// A probe volunteer (a fan of the unpopular project) and a probe project
// (with pronounced host preferences) are planted in the population with
// explicit objectives. The demo's claim: only the SQLB mediation used by
// SbQA lets the participant reach its objectives under every technique
// comparison.
func Scenario7(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("scenario 7: probe participants")
	cfg := opt.baseConfig(boinc.Autonomous)
	techs := AllTechniques()

	const (
		providerObjective = 0.55 // probe volunteer wants δs ≥ this and to stay online
		consumerObjective = 0.60 // probe project wants δs ≥ this
	)
	probeVolunteer := model.ProviderID(0)
	probeProject := model.ConsumerID(2) // Einstein@home, the unpopular one

	customize := func(w *boinc.World) {
		// The probe volunteer only wants to serve the unpopular project.
		prefs := make([]float64, len(w.Projects()))
		for i := range prefs {
			prefs[i] = -0.8
		}
		prefs[probeProject] = 0.9
		w.SetVolunteerPrefs(probeVolunteer, prefs)
		// The probe project strongly prefers the fastest quartile of
		// volunteers and is lukewarm about the rest.
		vols := w.Volunteers()
		caps := make([]float64, len(vols))
		for i, v := range vols {
			caps[i] = v.Capacity()
		}
		cut := quantile(caps, 0.75)
		hostPrefs := make([]float64, len(vols))
		for i, v := range vols {
			if v.Capacity() >= cut {
				hostPrefs[i] = 0.9
			} else {
				hostPrefs[i] = 0.1
			}
		}
		w.SetProjectPrefs(probeProject, hostPrefs)
	}

	table := &metrics.Table{
		Title: "Scenario 7 — probe participants' objectives",
		Columns: []string{
			"technique", "probe δs(P)", "P online", "P objective",
			"probe δs(C)", "C objective", "both met",
		},
	}
	res := &ScenarioResult{
		Name:        "Scenario 7",
		Description: "a participant reaches its objectives only under SbQA",
		Collectors:  map[string]*metrics.Collector{},
	}
	meets := map[string]bool{}
	for i, tech := range techs {
		r, w, err := runOne(tech, cfg, cfg.Seed+uint64(i)*15485863, customize)
		if err != nil {
			return nil, err
		}
		res.Results = append(res.Results, r)
		res.Collectors[tech.Name] = w.Collector()

		vol := w.Volunteers()[probeVolunteer]
		proj := w.Projects()[probeProject]
		pSat := vol.Satisfaction()
		if !vol.Online() {
			// Satisfaction memory is wiped on departure; a volunteer
			// that left was by definition below threshold.
			pSat = 0
		}
		cSat := proj.Satisfaction()
		pOK := vol.Online() && pSat >= providerObjective
		cOK := proj.Online() && cSat >= consumerObjective
		meets[tech.Name] = pOK && cOK
		table.Rows = append(table.Rows, []string{
			tech.Name,
			fmt.Sprintf("%.3f", pSat),
			fmt.Sprintf("%v", vol.Online()),
			fmt.Sprintf("%v", pOK),
			fmt.Sprintf("%.3f", cSat),
			fmt.Sprintf("%v", cOK),
			fmt.Sprintf("%v", pOK && cOK),
		})
	}
	res.Table = table
	if meets["SbQA"] {
		res.Notes = append(res.Notes, "SbQA meets both probe objectives")
	}
	for _, tech := range techs {
		if tech.Name != "SbQA" && !meets[tech.Name] {
			res.Notes = append(res.Notes, fmt.Sprintf("%s fails at least one probe objective", tech.Name))
		}
	}
	return res, nil
}

// quantile returns the q-th quantile (0..1) of values (copied, not mutated).
func quantile(values []float64, q float64) float64 {
	s := stats.NewSummary()
	for _, v := range values {
		s.Add(v)
	}
	return s.Percentile(q * 100)
}

// RunAll executes every scenario in order.
func RunAll(opt Options) ([]*ScenarioResult, error) {
	runners := []func(Options) (*ScenarioResult, error){
		Scenario1, Scenario2, Scenario3, Scenario4, Scenario5, Scenario6, Scenario7,
	}
	out := make([]*ScenarioResult, 0, len(runners))
	for _, run := range runners {
		r, err := run(opt)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
