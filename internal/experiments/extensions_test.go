package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestMotivatingExampleShapes(t *testing.T) {
	rs, err := MotivatingExample(Options{Volunteers: 60, Duration: 1200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Table.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	var shareP2, sbqaP2, shareP1, sbqaP1 float64
	for _, row := range rs.Table.Rows {
		switch {
		case strings.HasPrefix(row[0], "ShareBased"):
			shareP1, shareP2 = parse(row[1]), parse(row[2])
		case row[0] == "SbQA":
			sbqaP1, sbqaP2 = parse(row[1]), parse(row[2])
		}
	}
	// The paper's claim: cb cannot use the idle 80% under shares; SbQA can.
	if shareP2 < sbqaP2*3 {
		t.Errorf("share-enforced phase-2 RT %.1f should dwarf SbQA's %.1f", shareP2, sbqaP2)
	}
	// Shares must hurt in phase 2 more than in phase 1 (the burst).
	if shareP2 <= shareP1 {
		t.Errorf("share-enforced RT should grow across phases: %.1f -> %.1f", shareP1, shareP2)
	}
	// SbQA absorbs the burst: phase-2 RT within 2x of phase 1.
	if sbqaP2 > sbqaP1*2 {
		t.Errorf("SbQA should absorb the burst: %.1f -> %.1f", sbqaP1, sbqaP2)
	}
	// ShareBased must have refused queries (budget exhaustion).
	for _, r := range rs.Results {
		if strings.HasPrefix(r.Technique, "ShareBased") && r.Unallocated == 0 {
			t.Error("share enforcement should exhaust budgets and refuse queries")
		}
		if r.Technique == "SbQA" && r.Unallocated != 0 {
			t.Errorf("SbQA refused %d queries", r.Unallocated)
		}
	}
}

func TestMaliciousStudyShapes(t *testing.T) {
	rs, err := MaliciousStudy(Options{Volunteers: 60, Duration: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Table.Rows) != 3 {
		t.Fatalf("rows = %d", len(rs.Table.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	rates := map[string][2]float64{}
	for _, row := range rs.Table.Rows {
		rates[row[0]] = [2]float64{parse(row[1]), parse(row[2])}
	}
	capRate := rates["Capacity"]
	repRate := rates["SbQA/reputation"]
	// Reputation-blended intentions must clearly beat the blind baseline in
	// steady state.
	if repRate[1] >= capRate[1]*0.75 {
		t.Errorf("reputation steady-state failure %.1f%% not clearly below capacity %.1f%%",
			repRate[1], capRate[1])
	}
	// And the reputation variant should improve (or at worst hold) over
	// time, while capacity does not improve.
	if repRate[1] > repRate[0] {
		t.Errorf("reputation failures grew: %.1f%% -> %.1f%%", repRate[0], repRate[1])
	}
	// Validation failures are recorded in the results.
	totalFailures := int64(0)
	for _, r := range rs.Results {
		totalFailures += r.ValidationFailures
	}
	if totalFailures == 0 {
		t.Error("no validation failures recorded despite 20% malicious volunteers")
	}
}

func TestMaliciousFractionZeroMeansNoFailures(t *testing.T) {
	// Default worlds have no malicious volunteers: quorum always reached.
	rs, err := Scenario3(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs.Results {
		if r.ValidationFailures != 0 {
			t.Errorf("%s: %d validation failures without malicious volunteers",
				r.Technique, r.ValidationFailures)
		}
	}
}

func TestReplicationStudyShapes(t *testing.T) {
	rs, err := ReplicationStudy(Options{Volunteers: 60, Duration: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Table.Rows) != 3 {
		t.Fatalf("rows = %d", len(rs.Table.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	row := map[string][]string{}
	for _, r := range rs.Table.Rows {
		row[r[0]] = r
	}
	fail1 := parse(row["fixed n=1"][1])
	fail3 := parse(row["fixed n=3"][1])
	failA := parse(row["adaptive"][1])
	repl3 := parse(row["fixed n=3"][2])
	replA := parse(row["adaptive"][2])
	rt1 := parse(row["fixed n=1"][3])
	rt3 := parse(row["fixed n=3"][3])
	rtA := parse(row["adaptive"][3])
	// Adaptive replication is the robustness winner: fixed-3's extra load
	// saturates the honest hosts, so KnBest's utilization stage recycles
	// idle malicious ones into Kn — tripling replicas does NOT buy the
	// theoretical 2-of-3 tolerance. Adaptive stays at or below both.
	if failA > fail1 || failA > fail3 {
		t.Errorf("adaptive %.1f%% should be ≤ fixed-1 %.1f%% and fixed-3 %.1f%%", failA, fail1, fail3)
	}
	// At clearly fewer replicas than fixed-3…
	if replA >= repl3-0.3 {
		t.Errorf("adaptive replicas/query = %.2f, want clearly under %.2f", replA, repl3)
	}
	// …and response time near fixed-1, not fixed-3.
	if rtA > (rt1+rt3)/2 {
		t.Errorf("adaptive RT %.2f should sit near fixed-1's %.2f, not fixed-3's %.2f", rtA, rt1, rt3)
	}
}

func TestAdWordsStudyShapes(t *testing.T) {
	rs, err := AdWordsStudy(Options{Duration: 1200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Table.Rows) != 3 {
		t.Fatalf("rows = %d", len(rs.Table.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	row := map[string][]string{}
	for _, r := range rs.Table.Rows {
		row[r[0]] = r
	}
	// Pacing-only mediation never reacts to the campaign.
	capDuring := parse(row["Capacity(pacing)"][1])
	capAfter := parse(row["Capacity(pacing)"][2])
	if diff := capDuring - capAfter; diff > 15 || diff < -15 {
		t.Errorf("pacing shares should not move with the campaign: %v%% -> %v%%", capDuring, capAfter)
	}
	// The application-tuned ω tracks the campaign window.
	tunedDuring := parse(row["SbQA(ω=0.75)"][1])
	tunedAfter := parse(row["SbQA(ω=0.75)"][2])
	if tunedDuring < 80 {
		t.Errorf("tuned SbQA should dominate insect queries during the campaign: %v%%", tunedDuring)
	}
	if tunedAfter > tunedDuring/4 {
		t.Errorf("tuned SbQA share should collapse after the campaign: %v%% -> %v%%", tunedDuring, tunedAfter)
	}
}
