package experiments

import (
	"fmt"

	"sbqa/internal/boinc"
	"sbqa/internal/intention"
	"sbqa/internal/metrics"
	"sbqa/internal/model"
	"sbqa/internal/workload"
)

// ReplicationStudy evaluates satisfaction-adaptive query replication — the
// SbQR-style extension of the framework. The demo motivates replication
// ("consumers may create several instances of a query so as to validate
// results returned by providers") but fixes q.n; here the consumer adapts
// it to the observed risk:
//
//   - fixed q.n = 1: cheapest, but every query landing on a malicious host
//     fails validation;
//   - fixed q.n = 3: robust, but triples the offered load;
//   - adaptive: start at the project's default and widen only while recent
//     queries have been failing validation.
//
// All three variants run the same arrival process on the same poisoned
// population (20% malicious volunteers) under SbQA with reputation-blended
// intentions, so the comparison isolates the replication policy.
func ReplicationStudy(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("replication study: fixed vs satisfaction-adaptive q.n")

	type variant struct {
		name string
		fn   func(base int, sat, failRate float64) int
	}
	// With a majority quorum, even replication buys no tolerance (2-of-2
	// fails if either replica is bad), so the policies move between 1 and
	// 3 replicas — as BOINC deployments do.
	variants := []variant{
		{"fixed n=1", func(int, float64, float64) int { return 1 }},
		{"fixed n=3", func(int, float64, float64) int { return 3 }},
		{"adaptive", func(_ int, _, failRate float64) int {
			if failRate < 0.03 {
				return 1
			}
			return 3
		}},
	}

	table := &metrics.Table{
		Title: "replication policies, 20% malicious volunteers, SbQA + reputation",
		Columns: []string{
			"policy", "fail%", "replicas/query", "RTmean", "throughput",
		},
	}
	res := &ScenarioResult{
		Name:        "Replication study",
		Description: "adaptive replication beats both fixed policies at intermediate cost",
		Collectors:  map[string]*metrics.Collector{},
	}

	for i, v := range variants {
		cfg := opt.baseConfig(boinc.Captive)
		// Size the base load so even the n=3 policy stays under capacity
		// (offered load scales with the replication factor).
		cfg.Workload.LoadFactor = 0.4
		cfg.Workload.MaliciousFraction = 0.2
		cfg.ConsumerPolicy = func(workload.Project) intention.ConsumerPolicy {
			return intention.ReputationBlendConsumer{Gamma: 0.2}
		}
		cfg.ReplicationFn = v.fn

		var issued, replicas int64
		cfg.OnIssue = func(q model.Query) {
			issued++
			replicas += int64(q.N)
		}

		r, w, err := runOne(SbQATechnique(), cfg, cfg.Seed+uint64(i)*7919, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: replication: %w", err)
		}
		r.Technique = v.name
		res.Results = append(res.Results, r)
		res.Collectors[v.name] = w.Collector()

		// Failure rate over *resolved* queries (completed or failed), so
		// congestion stragglers still in flight do not count as failures.
		resolved := r.Completed + r.ValidationFailures
		failPct := 0.0
		if resolved > 0 {
			failPct = float64(r.ValidationFailures) / float64(resolved) * 100
		}
		meanRepl := 0.0
		if issued > 0 {
			meanRepl = float64(replicas) / float64(issued)
		}
		table.Rows = append(table.Rows, []string{
			v.name,
			fmt.Sprintf("%.1f%%", failPct),
			fmt.Sprintf("%.2f", meanRepl),
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.2f", r.Throughput),
		})
	}
	res.Table = table
	res.Notes = append(res.Notes,
		"adaptive replication widens q.n only while validation failures are fresh, then relaxes as reputation quarantines the malicious hosts",
		"fixed n=3 underdelivers on its theoretical 2-of-3 tolerance: its extra load saturates honest hosts, so KnBest's utilization stage keeps recycling idle malicious ones into Kn")
	return res, nil
}
