package experiments

import (
	"strings"
	"testing"
)

// testOptions returns small, fast experiment options. The qualitative shapes
// asserted below are those EXPERIMENTS.md records at paper scale; the small
// populations here preserve them (verified against full-scale runs).
func testOptions() Options {
	return Options{Volunteers: 40, Duration: 400, Seed: 7}
}

// fullerOptions is used where the effect needs more simulated time to appear
// (departure dynamics under slowly-judging techniques).
func fullerOptions() Options {
	return Options{Volunteers: 60, Duration: 900, Seed: 7}
}

func findResult(t *testing.T, rs *ScenarioResult, technique string) (out struct {
	RT, SatC, SatP float64
	Left           int
}) {
	t.Helper()
	for _, r := range rs.Results {
		if r.Technique == technique {
			out.RT = r.MeanResponseTime
			out.SatC = r.ConsumerSat
			out.SatP = r.ProviderSat
			out.Left = r.ProvidersLeft
			return out
		}
	}
	t.Fatalf("technique %q missing from results %v", technique, rs.Results)
	return out
}

func TestScenario1Shapes(t *testing.T) {
	rs, err := Scenario1(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 2 {
		t.Fatalf("want 2 techniques, got %d", len(rs.Results))
	}
	for _, r := range rs.Results {
		if r.Completed == 0 {
			t.Errorf("%s completed nothing", r.Technique)
		}
		// Captive: no departures possible.
		if r.ProvidersLeft != 0 || r.ConsumersLeft != 0 {
			t.Errorf("%s: departures in captive mode", r.Technique)
		}
		// Interest-blind techniques leave providers mediocre at best.
		if r.ProviderSat > 0.65 {
			t.Errorf("%s: provider satisfaction %v suspiciously high for an interest-blind technique",
				r.Technique, r.ProviderSat)
		}
	}
	// The analysis table must cover both techniques with all model notions.
	if len(rs.Extra) == 0 || len(rs.Extra[0].Rows) != 2 {
		t.Fatal("satisfaction analysis table missing")
	}
	if got := len(rs.Extra[0].Columns); got != 8 {
		t.Errorf("analysis columns = %d", got)
	}
}

func TestScenario2Shapes(t *testing.T) {
	rs, err := Scenario2(fullerOptions())
	if err != nil {
		t.Fatal(err)
	}
	totalLeft := 0
	for _, r := range rs.Results {
		totalLeft += r.ProvidersLeft
	}
	if totalLeft == 0 {
		t.Error("no departures under interest-blind baselines; autonomy dynamics broken")
	}
	// The departure-prediction notes must be present for both techniques.
	preds := 0
	for _, n := range rs.Notes {
		if strings.Contains(n, "predicted") {
			preds++
		}
	}
	if preds != 2 {
		t.Errorf("prediction notes = %d, want 2", preds)
	}
	if len(rs.Extra) == 0 {
		t.Fatal("departure table missing")
	}
}

func TestScenario3Shapes(t *testing.T) {
	rs, err := Scenario3(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	capR := findResult(t, rs, "Capacity")
	sbqaR := findResult(t, rs, "SbQA")
	// SbQA's response time stays within 1.5x of the load balancer…
	if sbqaR.RT > capR.RT*1.5 {
		t.Errorf("SbQA RT %.2f too far from capacity %.2f", sbqaR.RT, capR.RT)
	}
	// …while provider satisfaction is clearly higher.
	if sbqaR.SatP < capR.SatP+0.15 {
		t.Errorf("SbQA provider sat %.3f not clearly above capacity %.3f", sbqaR.SatP, capR.SatP)
	}
	// Consumers are at least as satisfied.
	if sbqaR.SatC < capR.SatC-0.02 {
		t.Errorf("SbQA consumer sat %.3f below capacity %.3f", sbqaR.SatC, capR.SatC)
	}
}

func TestScenario4Shapes(t *testing.T) {
	rs, err := Scenario4(fullerOptions())
	if err != nil {
		t.Fatal(err)
	}
	capR := findResult(t, rs, "Capacity")
	ecoR := findResult(t, rs, "Economic")
	sbqaR := findResult(t, rs, "SbQA")
	// The headline: SbQA retains more volunteers than both baselines.
	if sbqaR.Left >= capR.Left+ecoR.Left && sbqaR.Left > 0 {
		t.Errorf("SbQA lost %d vs capacity %d + economic %d", sbqaR.Left, capR.Left, ecoR.Left)
	}
	if sbqaR.Left > capR.Left || sbqaR.Left > ecoR.Left {
		t.Errorf("SbQA lost %d providers; capacity %d, economic %d", sbqaR.Left, capR.Left, ecoR.Left)
	}
}

func TestScenario5Shapes(t *testing.T) {
	rs, err := Scenario5(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var def, perf float64
	var defStd, perfStd float64
	for _, r := range rs.Results {
		switch r.Technique {
		case "SbQA/interests":
			def, defStd = r.MeanResponseTime, r.UtilizationStd
		case "SbQA/perf-only":
			perf, perfStd = r.MeanResponseTime, r.UtilizationStd
		}
	}
	if def == 0 || perf == 0 {
		t.Fatal("scenario 5 rows missing")
	}
	// Performance-only intentions must improve response time and balance.
	if perf >= def {
		t.Errorf("perf-only RT %.2f not better than interest-driven %.2f", perf, def)
	}
	if perfStd >= defStd {
		t.Errorf("perf-only util σ %.3f not better than %.3f", perfStd, defStd)
	}
}

func TestScenario6Shapes(t *testing.T) {
	rs, err := Scenario6(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Extra) != 2 {
		t.Fatalf("want kn and ω sweep tables, got %d", len(rs.Extra))
	}
	knRows := rs.Extra[0].Rows
	if len(knRows) != 5 {
		t.Fatalf("kn sweep rows = %d", len(knRows))
	}
	// Mean contacts must track kn exactly (KnBest bounds communication).
	if knRows[0][5] != "1.0" || knRows[4][5] != "20.0" {
		t.Errorf("contacts don't track kn: %v", knRows)
	}
	// Provider satisfaction grows with kn (more interest matching): compare
	// kn=2 with kn=20 via the Results (rows are formatted strings).
	var satKn2, satKn20 float64
	for _, r := range rs.Results {
		switch r.Technique {
		case "SbQA(kn=2)":
			satKn2 = r.ProviderSat
		case "SbQA(kn=20)":
			satKn20 = r.ProviderSat
		}
	}
	if satKn20 <= satKn2 {
		t.Errorf("provider sat should grow with kn: kn2=%.3f kn20=%.3f", satKn2, satKn20)
	}
	omegaRows := rs.Extra[1].Rows
	if len(omegaRows) != 6 {
		t.Fatalf("ω sweep rows = %d", len(omegaRows))
	}
}

func TestScenario7Shapes(t *testing.T) {
	rs, err := Scenario7(fullerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Table.Rows) != 3 {
		t.Fatalf("probe table rows = %d", len(rs.Table.Rows))
	}
	// Only SbQA meets both objectives.
	for _, row := range rs.Table.Rows {
		both := row[len(row)-1]
		if row[0] == "SbQA" && both != "true" {
			t.Errorf("SbQA failed the probe objectives: %v", row)
		}
		if row[0] == "Capacity" && both == "true" {
			t.Errorf("Capacity unexpectedly met both objectives: %v", row)
		}
	}
}

func TestRenderProducesTables(t *testing.T) {
	rs, err := Scenario1(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rs.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Scenario 1", "technique", "Capacity", "Economic", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Volunteers != 100 || o.Duration != 2000 || o.Seed == 0 || o.Load != 0.7 {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestDeterministicScenario(t *testing.T) {
	a, err := Scenario3(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scenario3(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i].MeanResponseTime != b.Results[i].MeanResponseTime ||
			a.Results[i].ProviderSat != b.Results[i].ProviderSat {
			t.Fatalf("scenario 3 not deterministic at row %d", i)
		}
	}
}
