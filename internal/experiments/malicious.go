package experiments

import (
	"fmt"

	"sbqa/internal/boinc"
	"sbqa/internal/intention"
	"sbqa/internal/metrics"
	"sbqa/internal/model"
	"sbqa/internal/workload"
)

// MaliciousStudy exercises the validation substrate the paper motivates
// replication with ("as providers may be malicious, consumers may create
// several instances of a query so as to validate results"): a fraction of
// volunteers return invalid results, queries are validated by a quorum of
// matching results, and invalid results destroy the sender's reputation.
//
// The study compares three mediations on the same poisoned population:
//
//   - Capacity — interest- and reputation-blind: malicious hosts keep
//     receiving work, so validation failures persist for the whole run;
//   - SbQA with preference-only consumers — intentions ignore reputation,
//     so SbQA cannot shield consumers either;
//   - SbQA with reputation-blended consumers — invalid results lower the
//     sender's reputation, intentions turn against it, and the failure
//     rate decays as the system learns.
//
// This is an extension experiment (the demo only hints at the mechanism);
// it demonstrates that the intention channel is how consumers actually
// *use* reputation in SbQA.
func MaliciousStudy(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("malicious study: reputation-driven intentions vs poisoned volunteers")

	const maliciousFraction = 0.2

	type variant struct {
		name string
		tech Technique
		pol  func(workload.Project) intention.ConsumerPolicy
	}
	variants := []variant{
		{"Capacity", CapacityTechnique(), nil},
		{"SbQA/pref-only", SbQATechnique(), func(workload.Project) intention.ConsumerPolicy {
			return intention.PreferenceConsumer{}
		}},
		{"SbQA/reputation", SbQATechnique(), func(workload.Project) intention.ConsumerPolicy {
			return intention.ReputationBlendConsumer{Gamma: 0.4}
		}},
	}

	table := &metrics.Table{
		Title: "malicious volunteers (20% of the population), captive",
		Columns: []string{
			"technique", "fail% (first ¼)", "fail% (rest)", "RTmean", "sat(C)",
		},
	}
	res := &ScenarioResult{
		Name:        "Malicious study",
		Description: "reputation-blended intentions quarantine malicious volunteers",
		Collectors:  map[string]*metrics.Collector{},
	}

	for i, v := range variants {
		cfg := opt.baseConfig(boinc.Captive)
		cfg.Workload.MaliciousFraction = maliciousFraction
		if v.pol != nil {
			cfg.ConsumerPolicy = v.pol
		}
		// Reputation converges fast (EWMA); split early so the learning
		// transient is visible.
		half := cfg.Duration / 4
		// Track per-phase completions; failures are inferred from issue
		// counts per phase at the end via the completion ratio.
		var done1, done2 int64
		cfg.OnComplete = func(q model.Query, _ float64) {
			if q.IssuedAt < half {
				done1++
			} else {
				done2++
			}
		}
		var issued1, issued2 int64
		cfg.OnIssue = func(q model.Query) {
			if q.IssuedAt < half {
				issued1++
			} else {
				issued2++
			}
		}

		r, w, err := runOne(v.tech, cfg, cfg.Seed+uint64(i)*7919, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: malicious: %w", err)
		}
		r.Technique = v.name
		res.Results = append(res.Results, r)
		res.Collectors[v.name] = w.Collector()

		failPct := func(issued, done int64) float64 {
			if issued == 0 {
				return 0
			}
			f := float64(issued-done) / float64(issued) * 100
			if f < 0 {
				return 0
			}
			return f
		}
		table.Rows = append(table.Rows, []string{
			v.name,
			fmt.Sprintf("%.1f%%", failPct(issued1, done1)),
			fmt.Sprintf("%.1f%%", failPct(issued2, done2)),
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.3f", r.ConsumerSat),
		})
	}
	res.Table = table
	res.Notes = append(res.Notes,
		"failure% counts queries whose replicas could not reach the validation quorum (plus in-flight stragglers)",
		"only reputation-blended intentions learn to route around malicious hosts; blind techniques fail at a constant rate")
	return res, nil
}
