package experiments

import (
	"fmt"

	"sbqa/internal/adwords"
	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/metrics"
	"sbqa/internal/model"
	"sbqa/internal/topics"
)

// AdWordsStudy reproduces the paper's §I keyword-advertising motivation as
// a measurable experiment. Topic space: [health, sports, insects,
// electronics]. A pharmaceutical advertiser runs an insect-repellent
// campaign for the first half of the run ("during the promotion, it is more
// interested in treating the queries related to mosquitoes or insect bites
// than general queries. Once the advertising campaign is over, its
// intentions may change").
//
// Compared mediations:
//   - Capacity — pure pacing (deliver everyone's target rate), blind to
//     both relevance and campaigns: the keyword-only status quo;
//   - SbQA — balances user relevance (consumer intentions) against the
//     advertisers' current, campaign-aware interests.
//
// The observable: the pharma advertiser's share of insect-query placements
// during vs after its campaign, and its satisfaction. Under SbQA the share
// tracks the campaign; under pacing it never moves.
func AdWordsStudy(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("adwords study: dynamic advertiser intentions")

	const (
		insectTopic = 2
		campaignEnd = 0.5 // fraction of the horizon
	)
	type techCase struct {
		name string
		mk   func(seed uint64) alloc.Allocator
	}
	cases := []techCase{
		{"Capacity(pacing)", func(uint64) alloc.Allocator { return alloc.NewCapacity() }},
		{"SbQA(adaptive ω)", func(seed uint64) alloc.Allocator { return SbQATechnique().New(seed) }},
		// Ad platforms weight advertiser goals heavily; the paper notes ω
		// "can be set in accordance to the kind of application".
		{"SbQA(ω=0.75)", func(seed uint64) alloc.Allocator {
			c := core.DefaultConfig()
			c.Omega = core.FixedOmega(0.75)
			c.Seed = seed
			return core.MustNew(c)
		}},
	}

	table := &metrics.Table{
		Title: "adwords — pharma campaign on 'insects' for the first half",
		Columns: []string{
			"mediation", "insect share (campaign)", "insect share (after)",
			"pharma δs", "placements",
		},
	}
	res := &ScenarioResult{
		Name:        "AdWords study (§I)",
		Description: "allocation follows advertisers' dynamic intentions under SbQA",
		Collectors:  map[string]*metrics.Collector{},
	}

	for i, tc := range cases {
		cfg := adwords.Config{
			TopicDim:  4,
			QueryRate: 4,
			Duration:  opt.Duration,
			Window:    100,
			Seed:      opt.Seed + uint64(i)*7919,
		}
		w, err := adwords.NewWorld(tc.mk(cfg.Seed), cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: adwords: %w", err)
		}
		pharma := w.AddAdvertiser("pharma", topics.Vector{1, 0, 0.15, 0}, 2)
		w.AddAdvertiser("sports", topics.Vector{0.2, 1, 0.4, 0}, 2)
		w.AddAdvertiser("electro", topics.Vector{0, 0, 0, 1}, 2)
		w.AddAdvertiser("grocer", topics.Vector{0.4, 0.2, 0.2, 0.1}, 2)

		switchAt := cfg.Duration * campaignEnd
		pharma.Interests().AddCampaign(topics.Campaign{
			Boost: topics.Vector{0, 0, 5, 0},
			Until: switchAt,
		})

		var insectDuring, insectAfter, pharmaDuring, pharmaAfter int
		placements := w.Run(func(q model.Query, winner *adwords.Advertiser) {
			// Only count queries whose dominant topic is "insects".
			if w.Advertisers()[0] != pharma {
				return
			}
			if dominant := winnerTopic(w, q); dominant != insectTopic {
				return
			}
			if q.IssuedAt < switchAt {
				insectDuring++
				if winner == pharma {
					pharmaDuring++
				}
			} else {
				insectAfter++
				if winner == pharma {
					pharmaAfter++
				}
			}
		})

		share := func(n, of int) float64 {
			if of == 0 {
				return 0
			}
			return float64(n) / float64(of) * 100
		}
		table.Rows = append(table.Rows, []string{
			tc.name,
			fmt.Sprintf("%.0f%%", share(pharmaDuring, insectDuring)),
			fmt.Sprintf("%.0f%%", share(pharmaAfter, insectAfter)),
			fmt.Sprintf("%.3f", w.Mediator().Registry().ProviderSatisfaction(pharma.ProviderID())),
			fmt.Sprintf("%d", placements),
		})
	}
	res.Table = table
	res.Notes = append(res.Notes,
		"with the application-tuned ω=0.75 the pharma advertiser's insect share tracks its campaign window; pacing-only mediation never moves",
		"the adaptive ω instead deprioritizes pharma's campaign because pharma is already the best-satisfied advertiser — Equation 2's fairness at work; ad platforms want the fixed, provider-leaning balance")
	return res, nil
}

// winnerTopic returns the dominant topic index of q (helper shared with the
// adwords world's internals via the public surface).
func winnerTopic(w *adwords.World, q model.Query) int {
	return w.DominantTopic(q)
}
