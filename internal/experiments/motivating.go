package experiments

import (
	"fmt"

	"sbqa/internal/alloc"
	"sbqa/internal/boinc"
	"sbqa/internal/intention"
	"sbqa/internal/metrics"
	"sbqa/internal/model"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// MotivatingExample reproduces the paper's §IV motivating example about
// BOINC's native resource shares:
//
//	"a provider may donate its computational resources to two consumers ca
//	and cb in a fraction of 80% and 20%, respectively. In this case, cb
//	cannot use more than the assigned 20% of computational resources even
//	if ca is not generating queries."
//
// Setup: two projects, every volunteer devotes 80% to ca and 20% to cb.
// Phase 1 (first half): both projects issue queries. Phase 2: ca stops (its
// campaign is over) and cb triples its demand — it has work to run and the
// donated capacity is sitting there. Under BOINC's share-enforced
// dispatching cb stays capped at 20% of every host; under SbQA the same
// affinities are expressed as intentions, so idle capacity is exploited
// while preferences still shape who serves whom.
func MotivatingExample(opt Options) (*ScenarioResult, error) {
	opt = opt.withDefaults()
	opt.logf("motivating example: resource-share rigidity vs flexible intentions")

	const (
		ca = model.ConsumerID(0)
		cb = model.ConsumerID(1)
	)
	mkConfig := func() boinc.Config {
		cfg := boinc.DefaultConfig(opt.Volunteers, opt.Seed)
		cfg.Mode = boinc.Captive // isolate the capacity effect from departures
		cfg.Duration = opt.Duration
		cfg.SampleEvery = opt.SampleEvery
		cfg.Workload.LoadFactor = 0.6
		cfg.Workload.Projects = []workload.ProjectSpec{
			{Name: "ca", Popularity: workload.Popular, ArrivalShare: 0.8, Replication: 1, DelayTarget: 30},
			{Name: "cb", Popularity: workload.Unpopular, ArrivalShare: 0.2, Replication: 1, DelayTarget: 30},
		}
		// Volunteers trade preference for utilization the SQLB way — the
		// flexibility the paper says BOINC lacks.
		cfg.ProviderPolicy = func(workload.Volunteer) intention.ProviderPolicy {
			return intention.AdaptiveProvider{}
		}
		return cfg
	}

	type techCase struct {
		name    string
		mk      func(seed uint64) alloc.Allocator
		enforce bool
	}
	cases := []techCase{
		{"ShareBased(80/20)", func(uint64) alloc.Allocator { return alloc.NewShareBased() }, true},
		{"SbQA", func(seed uint64) alloc.Allocator { return SbQATechnique().New(seed) }, false},
	}

	table := &metrics.Table{
		Title: "motivating example — ca stops at half-time, cb triples its demand",
		Columns: []string{
			"technique", "cb RT (phase 1)", "cb RT (phase 2)", "phase-2 util",
			"unallocated", "sat(P)",
		},
	}
	res := &ScenarioResult{
		Name:        "Motivating example (§IV)",
		Description: "resource-share rigidity wastes idle capacity; intentions do not",
		Collectors:  map[string]*metrics.Collector{},
	}

	for i, tc := range cases {
		cfg := mkConfig()
		cfg.EnforceShares = tc.enforce
		half := cfg.Duration / 2

		phase1 := stats.NewSummary()
		phase2 := stats.NewSummary()
		cfg.OnComplete = func(q model.Query, rt float64) {
			if q.Consumer != cb {
				return
			}
			if q.IssuedAt < half {
				phase1.Add(rt)
			} else {
				phase2.Add(rt)
			}
		}

		w, err := boinc.NewWorld(tc.mk(cfg.Seed+uint64(i)*7919), cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: motivating: %w", err)
		}
		// Give every volunteer the paper's 80/20 devotion (the derived
		// shares become exactly 0.8 / 0.2).
		for _, v := range w.Volunteers() {
			w.SetVolunteerPrefs(v.ProviderID(), []float64{0.75, 0.15})
		}
		// The phase switch.
		cbRate := w.Projects()[cb].ArrivalRate()
		w.Engine().Schedule(half, func() {
			w.SetArrivalRate(ca, 0)
			w.SetArrivalRate(cb, cbRate*3)
		})

		r := w.Run()
		r.Technique = tc.name
		res.Results = append(res.Results, r)
		res.Collectors[tc.name] = w.Collector()

		table.Rows = append(table.Rows, []string{
			tc.name,
			fmt.Sprintf("%.2f", phase1.Mean()),
			fmt.Sprintf("%.2f", phase2.Mean()),
			fmt.Sprintf("%.2f", w.Collector().Utilization.TailMean(0.4)),
			fmt.Sprintf("%d", r.Unallocated),
			fmt.Sprintf("%.3f", r.ProviderSat),
		})
	}
	res.Table = table
	res.Notes = append(res.Notes,
		"with enforced shares cb stays capped at 20% of every host even though 80% of the donated capacity idles in phase 2",
		"SbQA expresses the same 80/20 affinity as intentions, so cb's burst is absorbed by otherwise-idle capacity")
	return res, nil
}
