// Command benchgate supports the CI bench-regression gate around the
// committed BENCH_core.json baseline:
//
//	benchgate -extract FILE.json        # test2json stream → plain bench text
//	benchgate -gate PCT [-normalize] BASE.txt NEW.txt
//	benchgate -allocgate BASE.txt NEW.txt
//	benchgate -maxallocs N [-bench NAME] NEW.txt
//
// -extract converts a `go test -json` stream into the classic benchmark
// text format (the format benchstat consumes), so the committed baseline
// stays in the same shape as the uploaded BENCH_live.json artifact.
//
// -gate compares per-benchmark median ns/op between two bench text files
// and exits non-zero, listing the offenders, when any benchmark present in
// both regressed by more than PCT percent. Medians (not means) keep a
// single noisy iteration from tripping the gate; benchmarks present in only
// one file are reported but do not fail the gate (they are new or retired,
// not regressed).
//
// -normalize divides each benchmark's base→new ratio by the leave-one-out
// geometric mean ratio of the *other* shared benchmarks before applying the
// gate. A committed baseline is usually recorded on different hardware than
// the CI runner executing the gate; a uniform hardware speed difference
// shifts every benchmark by the same factor and cancels out under
// normalization, so the gate fires only when one benchmark regresses
// relative to its peers — a code regression, not a machine change.
// Excluding the benchmark under test from its own divisor keeps the stated
// threshold exact (with the plain geomean, a regressing benchmark would
// dilute its own yardstick). The blind spot — every benchmark regressing by
// the same factor at once — is exactly the signature of a hardware change,
// which is why it is excluded; with a single shared benchmark -normalize is
// a no-op. Benchmark names are compared with their -N GOMAXPROCS suffix
// stripped, and a comparison that shares no benchmarks at all fails.
//
// -allocgate compares per-benchmark median allocs/op (runs must use
// -benchmem) between two bench text files and fails when any shared
// benchmark allocates MORE than its baseline. Unlike ns/op, allocs/op is a
// property of the compiled code, not the machine — identical on every
// runner — so the gate is exact: no percentage threshold, no normalization.
// Benchmarks without an allocs/op column are skipped.
//
// -maxallocs enforces an absolute ceiling: it fails when any benchmark in
// NEW.txt (or just -bench NAME, when given) reports a median allocs/op above
// N. This pins hot-path budgets ("mediation stays single-digit") even when
// the committed baseline is regenerated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	extract := flag.String("extract", "", "test2json file to convert to bench text on stdout")
	gate := flag.Float64("gate", 0, "fail when median ns/op regresses by more than this percent")
	normalize := flag.Bool("normalize", false, "divide each ratio by the geomean ratio (cancels uniform hardware shifts)")
	allocGate := flag.Bool("allocgate", false, "fail when any shared benchmark's median allocs/op exceeds the baseline")
	maxAllocs := flag.Float64("maxallocs", -1, "fail when any benchmark's median allocs/op exceeds this ceiling")
	benchName := flag.String("bench", "", "restrict -maxallocs to this benchmark name (default: all)")
	flag.Parse()

	switch {
	case *extract != "":
		if err := runExtract(*extract); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	case *gate > 0:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchgate: -gate needs BASE.txt and NEW.txt")
			os.Exit(2)
		}
		ok, err := runGate(*gate, *normalize, flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
	case *allocGate:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchgate: -allocgate needs BASE.txt and NEW.txt")
			os.Exit(2)
		}
		ok, err := runAllocGate(flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
	case *maxAllocs >= 0:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchgate: -maxallocs needs NEW.txt")
			os.Exit(2)
		}
		ok, err := runMaxAllocs(*maxAllocs, *benchName, flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// testEvent is the subset of test2json's event schema the extractor needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func runExtract(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if ev.Action == "output" {
			out.WriteString(ev.Output)
		}
	}
	return sc.Err()
}

// parseBench reads bench text and returns name → ns/op samples (see
// parseBenchUnit).
func parseBench(path string) (map[string][]float64, error) {
	return parseBenchUnit(path, "ns/op")
}

// parseBenchUnit reads bench text and returns name → samples for the given
// unit column ("ns/op", "allocs/op", "B/op"). The -N GOMAXPROCS suffix is
// stripped from names: the committed baseline and the CI runner generally
// differ in core count, and a gate that compares "BenchmarkX" against
// "BenchmarkX-4" would silently compare nothing. Benchmarks lacking the unit
// (e.g. allocs/op without -benchmem) are simply absent from the result.
func parseBenchUnit(path, unit string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  1234  567.8 ns/op  42 B/op  3 allocs/op  [...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripCPUSuffix(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != unit {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad %s in %q", path, unit, sc.Text())
			}
			samples[name] = append(samples[name], v)
			break
		}
	}
	return samples, sc.Err()
}

// stripCPUSuffix removes go test's "-N" GOMAXPROCS suffix from a benchmark
// name ("BenchmarkX-4" → "BenchmarkX"); names without one pass through.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func runGate(pct float64, normalize bool, basePath, newPath string) (bool, error) {
	base, err := parseBench(basePath)
	if err != nil {
		return false, err
	}
	cur, err := parseBench(newPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		if _, present := cur[name]; present {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	// A gate that compared nothing must not pass: an empty intersection
	// means the baseline is stale (renamed benches, wrong file), not that
	// there were no regressions.
	if len(names) == 0 {
		return false, fmt.Errorf("no benchmark appears in both %s and %s — refresh the baseline", basePath, newPath)
	}
	// Log-ratios of the shared benchmarks; under -normalize each benchmark
	// is judged against the leave-one-out geomean of the others, so a
	// machine-wide speed shift (same factor everywhere) cancels without the
	// regressing benchmark diluting its own divisor.
	logRatio := make(map[string]float64, len(names))
	logSum := 0.0
	for _, name := range names {
		lr := math.Log(median(cur[name]) / median(base[name]))
		logRatio[name] = lr
		logSum += lr
	}
	if normalize {
		fmt.Printf("benchgate: normalizing by leave-one-out geomean shift (overall %+.1f%%)\n",
			(math.Exp(logSum/float64(len(names)))-1)*100)
	}
	ok := true
	for name := range base {
		if _, present := cur[name]; !present {
			fmt.Printf("benchgate: %-45s retired (in baseline only)\n", name)
		}
	}
	for _, name := range names {
		b, c := median(base[name]), median(cur[name])
		scale := 1.0
		if normalize && len(names) > 1 {
			scale = math.Exp((logSum - logRatio[name]) / float64(len(names)-1))
		}
		delta := (c/b/scale - 1) * 100
		status := "ok"
		if delta > pct {
			status = fmt.Sprintf("REGRESSED (> +%.0f%%)", pct)
			ok = false
		}
		fmt.Printf("benchgate: %-45s base %10.0f ns/op → %10.0f ns/op  %+6.1f%%  %s\n",
			name, b, c, delta, status)
	}
	for name := range cur {
		if _, present := base[name]; !present {
			fmt.Printf("benchgate: %-45s new (no baseline)\n", name)
		}
	}
	if !ok {
		fmt.Printf("benchgate: FAIL — regression beyond %.0f%% against the committed baseline\n", pct)
	}
	return ok, nil
}

// runAllocGate fails when any benchmark present in both files allocates more
// per op (median) than the baseline records. Exact comparison — allocation
// counts are machine-independent, so any increase is a code regression.
func runAllocGate(basePath, newPath string) (bool, error) {
	base, err := parseBenchUnit(basePath, "allocs/op")
	if err != nil {
		return false, err
	}
	cur, err := parseBenchUnit(newPath, "allocs/op")
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		if _, present := cur[name]; present {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return false, fmt.Errorf("no benchmark reports allocs/op in both %s and %s — run with -benchmem and refresh the baseline", basePath, newPath)
	}
	ok := true
	for _, name := range names {
		b, c := median(base[name]), median(cur[name])
		status := "ok"
		if c > b {
			status = "REGRESSED"
			ok = false
		}
		fmt.Printf("benchgate: %-45s base %6.0f allocs/op → %6.0f allocs/op  %s\n", name, b, c, status)
	}
	if !ok {
		fmt.Println("benchgate: FAIL — allocs/op regressed against the committed baseline")
	}
	return ok, nil
}

// runMaxAllocs fails when any benchmark in the file (or just name, when
// non-empty) reports a median allocs/op above the ceiling.
func runMaxAllocs(ceiling float64, name, path string) (bool, error) {
	cur, err := parseBenchUnit(path, "allocs/op")
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(cur))
	for n := range cur {
		if name == "" || n == name {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		if name != "" {
			return false, fmt.Errorf("benchmark %s reports no allocs/op in %s — run with -benchmem", name, path)
		}
		return false, fmt.Errorf("no benchmark reports allocs/op in %s — run with -benchmem", path)
	}
	ok := true
	for _, n := range names {
		c := median(cur[n])
		status := "ok"
		if c > ceiling {
			status = fmt.Sprintf("OVER CEILING (> %.0f)", ceiling)
			ok = false
		}
		fmt.Printf("benchgate: %-45s %6.0f allocs/op (ceiling %.0f)  %s\n", n, c, ceiling, status)
	}
	if !ok {
		fmt.Printf("benchgate: FAIL — allocs/op above the %.0f ceiling\n", ceiling)
	}
	return ok, nil
}
