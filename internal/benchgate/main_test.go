package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseBench = `goos: linux
BenchmarkMediateEndToEnd-8   	   80000	     14000 ns/op	     516 B/op	       4 allocs/op
BenchmarkMediateEndToEnd-8   	   80000	     13900 ns/op	     516 B/op	       4 allocs/op
BenchmarkDirectoryCandidates-8 	  500000	      2100 ns/op
PASS
`

func TestParseBenchUnit(t *testing.T) {
	path := writeBench(t, "base.txt", baseBench)

	ns, err := parseBenchUnit(path, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ns["BenchmarkMediateEndToEnd"]); got != 2 {
		t.Fatalf("ns/op samples = %d, want 2", got)
	}
	if got := ns["BenchmarkDirectoryCandidates"]; len(got) != 1 || got[0] != 2100 {
		t.Fatalf("DirectoryCandidates ns/op = %v, want [2100]", got)
	}

	allocs, err := parseBenchUnit(path, "allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if got := allocs["BenchmarkMediateEndToEnd"]; len(got) != 2 || got[0] != 4 {
		t.Fatalf("allocs/op samples = %v, want [4 4]", got)
	}
	// No -benchmem columns → absent, not zero.
	if _, present := allocs["BenchmarkDirectoryCandidates"]; present {
		t.Fatal("benchmark without allocs/op column should be absent")
	}
}

func TestAllocGate(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)

	same := writeBench(t, "same.txt",
		"BenchmarkMediateEndToEnd-16 \t 90000 \t 9000 ns/op \t 516 B/op \t 4 allocs/op\n")
	ok, err := runAllocGate(base, same)
	if err != nil || !ok {
		t.Fatalf("equal allocs should pass, got ok=%v err=%v", ok, err)
	}

	better := writeBench(t, "better.txt",
		"BenchmarkMediateEndToEnd-16 \t 90000 \t 9000 ns/op \t 400 B/op \t 3 allocs/op\n")
	ok, err = runAllocGate(base, better)
	if err != nil || !ok {
		t.Fatalf("fewer allocs should pass, got ok=%v err=%v", ok, err)
	}

	worse := writeBench(t, "worse.txt",
		"BenchmarkMediateEndToEnd-16 \t 90000 \t 9000 ns/op \t 600 B/op \t 5 allocs/op\n")
	ok, err = runAllocGate(base, worse)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("more allocs than baseline must fail the gate")
	}

	empty := writeBench(t, "empty.txt", "BenchmarkOther-4 \t 10 \t 5 ns/op\n")
	if _, err := runAllocGate(base, empty); err == nil {
		t.Fatal("empty intersection must error, not pass")
	}
}

func TestMaxAllocs(t *testing.T) {
	cur := writeBench(t, "new.txt", baseBench)

	ok, err := runMaxAllocs(9, "BenchmarkMediateEndToEnd", cur)
	if err != nil || !ok {
		t.Fatalf("4 allocs under a ceiling of 9 should pass, got ok=%v err=%v", ok, err)
	}

	ok, err = runMaxAllocs(3, "BenchmarkMediateEndToEnd", cur)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("4 allocs over a ceiling of 3 must fail")
	}

	// Named benchmark with no allocs/op column: an error, not a silent pass.
	if _, err := runMaxAllocs(9, "BenchmarkDirectoryCandidates", cur); err == nil {
		t.Fatal("benchmark without -benchmem data must error")
	}
}
