package persist

import (
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
)

// Snapshot format (all integers little-endian):
//
//	magic     [8]byte "SBQASNP1"
//	version   u16     (currently 1; hashed)
//	payload           (hashed)
//	crc32c    u32     (over version + payload, Castagnoli)
//
// Payload layout:
//
//	firstSegment u64      first journal segment NOT folded into this snapshot
//	nextQueryID  i64
//	policyGen    u64
//	hasPolicy    u8; if 1: blob policyJSON
//	shards       u32; per shard: u8 hasState, blob state
//	window       u32      registry default window k
//	consumers    u32; per consumer: i64 id, u32 k, u32 next,
//	                  u32 records, records × (f64 obtained, f64 best, f64 adequation)
//	providers    u32; per provider: i64 id, u32 k, u32 next,
//	                  u32 records, records × (f64 intention, u8 performed)
//
// The codec is streaming in both directions — a million-participant registry
// never materializes a second full copy of itself as one byte slice — and the
// decoder bounds every allocation it makes before the checksum is verified,
// so a corrupt length field cannot balloon memory.

var snapshotMagic = [8]byte{'S', 'B', 'Q', 'A', 'S', 'N', 'P', '1'}

// snapshotVersion is the current snapshot format version.
const snapshotVersion = 1

// crcTable is the Castagnoli polynomial shared by snapshots and journal
// records.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ConsumerEntry pairs a consumer with its exported tracker state.
type ConsumerEntry struct {
	ID    model.ConsumerID
	State satisfaction.ConsumerState
}

// ProviderEntry pairs a provider with its exported tracker state.
type ProviderEntry struct {
	ID    model.ProviderID
	State satisfaction.ProviderState
}

// Snapshot is the full durable adaptation state of one engine: everything a
// warm restart needs to resume as if the process had never stopped.
type Snapshot struct {
	// FirstSegment is the sequence number of the first journal segment NOT
	// folded into this snapshot: restore replays segments >= FirstSegment.
	FirstSegment uint64

	// NextQueryID is the engine's query ID counter (QueriesSubmitted), so
	// restored engines keep assigning strictly increasing IDs.
	NextQueryID int64

	// PolicyGeneration and PolicyJSON capture the active declarative
	// policy (nil PolicyJSON when the engine runs without one).
	PolicyGeneration uint64
	PolicyJSON       []byte

	// AllocStates holds each shard allocator's exported decision state
	// (alloc.Stateful), indexed by shard; nil entries mean the allocator
	// exported nothing. Restoring them is what makes a warm restart's
	// allocation sequence byte-identical.
	AllocStates [][]byte

	// Window is the registry's default satisfaction window k at snapshot
	// time — informational metadata for operators and tooling. Restore
	// does NOT consume it: every tracker carries its own window in its
	// exported state, and participants first seen during journal replay
	// get the restoring engine's configured window (a deliberate
	// semantics for -window changes across restarts).
	Window int

	// Consumers and Providers hold every tracked participant's exact
	// window contents.
	Consumers []ConsumerEntry
	Providers []ProviderEntry
}

// CaptureRegistry exports every satisfaction tracker of reg into snapshot
// entries, walking one stripe lock at a time and sorting by participant ID
// so identical registry states encode to identical bytes.
func CaptureRegistry(reg *satisfaction.Registry) ([]ConsumerEntry, []ProviderEntry) {
	var cs []ConsumerEntry
	var ps []ProviderEntry
	for i := 0; i < reg.Stripes(); i++ {
		reg.ExportConsumerStripe(i, func(id model.ConsumerID, st satisfaction.ConsumerState) {
			cs = append(cs, ConsumerEntry{ID: id, State: st})
		})
		reg.ExportProviderStripe(i, func(id model.ProviderID, st satisfaction.ProviderState) {
			ps = append(ps, ProviderEntry{ID: id, State: st})
		})
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
	return cs, ps
}

// EncodeSnapshot streams the snapshot to w in the versioned, checksummed
// format above.
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return err
	}
	crc := crc32.New(crcTable)
	c := &cw{w: io.MultiWriter(w, crc)}
	c.u16(snapshotVersion)
	c.u64(s.FirstSegment)
	c.i64(s.NextQueryID)
	c.u64(s.PolicyGeneration)
	c.bool(s.PolicyJSON != nil)
	if s.PolicyJSON != nil {
		c.blob(s.PolicyJSON)
	}
	c.u32(uint32(len(s.AllocStates)))
	for _, st := range s.AllocStates {
		c.bool(st != nil)
		if st != nil {
			c.blob(st)
		}
	}
	c.u32(uint32(s.Window))
	c.u32(uint32(len(s.Consumers)))
	for _, e := range s.Consumers {
		c.i64(int64(e.ID))
		c.u32(uint32(e.State.K))
		c.u32(uint32(e.State.Next))
		c.u32(uint32(len(e.State.Records)))
		for _, r := range e.State.Records {
			c.f64(r.Obtained)
			c.f64(r.Best)
			c.f64(r.Adequation)
		}
	}
	c.u32(uint32(len(s.Providers)))
	for _, e := range s.Providers {
		c.i64(int64(e.ID))
		c.u32(uint32(e.State.K))
		c.u32(uint32(e.State.Next))
		c.u32(uint32(len(e.State.Records)))
		for _, r := range e.State.Records {
			c.f64(r.Intention)
			c.bool(r.Performed)
		}
	}
	if c.err != nil {
		return c.err
	}
	trailer := &cw{w: w}
	trailer.u32(crc.Sum32())
	return trailer.err
}

// DecodeSnapshot reads one snapshot from r, verifying magic, version, and
// checksum. Corrupt or truncated input returns an error wrapping ErrCorrupt
// (or an unexpected-EOF error); it never panics.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, magic[:])
	}
	crc := crc32.New(crcTable)
	c := &cr{r: io.TeeReader(r, crc)}
	if v := c.u16(); c.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, v)
	}
	s := &Snapshot{}
	s.FirstSegment = c.u64()
	s.NextQueryID = c.i64()
	s.PolicyGeneration = c.u64()
	if c.bool() {
		s.PolicyJSON = c.blob()
		if s.PolicyJSON == nil && c.err == nil {
			// A present-but-empty policy is still a policy.
			s.PolicyJSON = []byte{}
		}
	}
	nShards, capHint := c.count()
	if c.err == nil {
		s.AllocStates = make([][]byte, 0, capHint)
		for i := 0; i < nShards && c.err == nil; i++ {
			var st []byte
			if c.bool() {
				st = c.blob()
			}
			s.AllocStates = append(s.AllocStates, st)
		}
	}
	s.Window = int(c.u32())
	nCons, capHint := c.count()
	if c.err == nil {
		s.Consumers = make([]ConsumerEntry, 0, capHint)
		for i := 0; i < nCons && c.err == nil; i++ {
			e := ConsumerEntry{ID: model.ConsumerID(c.i64())}
			e.State.K = int(c.u32())
			e.State.Next = int(c.u32())
			nRec, recHint := c.count()
			e.State.Records = make([]satisfaction.ConsumerRecordState, 0, recHint)
			for j := 0; j < nRec && c.err == nil; j++ {
				e.State.Records = append(e.State.Records, satisfaction.ConsumerRecordState{
					Obtained:   c.f64(),
					Best:       c.f64(),
					Adequation: c.f64(),
				})
			}
			s.Consumers = append(s.Consumers, e)
		}
	}
	nProv, capHint := c.count()
	if c.err == nil {
		s.Providers = make([]ProviderEntry, 0, capHint)
		for i := 0; i < nProv && c.err == nil; i++ {
			e := ProviderEntry{ID: model.ProviderID(c.i64())}
			e.State.K = int(c.u32())
			e.State.Next = int(c.u32())
			nRec, recHint := c.count()
			e.State.Records = make([]satisfaction.ProviderRecordState, 0, recHint)
			for j := 0; j < nRec && c.err == nil; j++ {
				e.State.Records = append(e.State.Records, satisfaction.ProviderRecordState{
					Intention: c.f64(),
					Performed: c.bool(),
				})
			}
			s.Providers = append(s.Providers, e)
		}
	}
	if c.err != nil {
		return nil, fmt.Errorf("snapshot payload: %w", c.err)
	}
	sum := crc.Sum32()
	trailer := &cr{r: r}
	if stored := trailer.u32(); trailer.err != nil {
		return nil, fmt.Errorf("%w: snapshot checksum missing: %v", ErrCorrupt, trailer.err)
	} else if stored != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, stored, sum)
	}
	return s, nil
}

// ApplyRegistry imports the snapshot's satisfaction state into reg,
// replacing any existing trackers for the snapshotted participants.
func (s *Snapshot) ApplyRegistry(reg *satisfaction.Registry) error {
	for _, e := range s.Consumers {
		if err := reg.ImportConsumer(e.ID, e.State); err != nil {
			return fmt.Errorf("persist: snapshot restore: %w", err)
		}
	}
	for _, e := range s.Providers {
		if err := reg.ImportProvider(e.ID, e.State); err != nil {
			return fmt.Errorf("persist: snapshot restore: %w", err)
		}
	}
	return nil
}
