package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
)

// FuzzSnapshotDecode: arbitrary input must either decode to a snapshot that
// re-encodes and re-decodes to the same value, or error — never panic, and
// never mis-restore silently (a decodable snapshot must round-trip).
func FuzzSnapshotDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, testSnapshot()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:9])
	f.Add(append(append([]byte(nil), valid...), 0xFF))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x10
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must be stable under re-encode + re-decode.
		var out bytes.Buffer
		if err := EncodeSnapshot(&out, snap); err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
		again, err := DecodeSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("decode/encode/decode unstable:\n%+v\n%+v", snap, again)
		}
		// Applying a decoded snapshot must never panic; tracker-state
		// validation may reject it, which is fine.
		_ = snap.ApplyRegistry(satisfaction.NewRegistry(satisfaction.DefaultWindow))
	})
}

// FuzzJournalReplay: a journal segment built from arbitrary bytes must
// replay or error/tear cleanly — never panic, and applying whatever records
// it yields must not corrupt a registry.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a valid segment's bytes.
	dir := f.TempDir()
	st, err := Open(dir, SyncEvery(1))
	if err != nil {
		f.Fatal(err)
	}
	if _, err := st.Restore(satisfaction.NewRegistry(10)); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(outcome(int64(i+1), 0, 1, 2)); err != nil {
			f.Fatal(err)
		}
	}
	if err := st.Append(&Record{Type: RecordPolicyChange, PolicyGeneration: 1, PolicyJSON: []byte(`{"kind":"sbqa"}`)}); err != nil {
		f.Fatal(err)
	}
	if err := st.Append(&Record{Type: RecordForgetConsumer, Forget: 0}); err != nil {
		f.Fatal(err)
	}
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _, err := st.scan()
	if err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(segmentPath(dir, segs[0]))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add([]byte{})
	f.Add([]byte("SBQAWAL1"))
	mut := append([]byte(nil), valid...)
	mut[len(mut)-6] ^= 0x01
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal-0000000000000001.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		reg := satisfaction.NewRegistry(satisfaction.DefaultWindow)
		_, err := readSegment(path, func(rec *Record) error {
			rec.Apply(reg)
			return nil
		})
		_ = err // errors (including torn) are the expected outcome for noise
		// The registry must still be usable whatever was applied.
		_ = reg.ConsumerSatisfaction(model.ConsumerID(0))
		_, _ = CaptureRegistry(reg)
	})
}
