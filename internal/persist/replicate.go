package persist

// Replication-side helpers: a cluster follower stores WAL segments shipped
// by the owner of a consumer range as plain segment files in a per-origin
// directory, and replays them — filtered to the ranges it actually takes
// over — into its live satisfaction registry when the origin node dies.
// The files reuse the exact journal segment format, so a shipped replica is
// byte-identical to the owner's sealed segment (the cluster acceptance test
// asserts this bit-level) and the same decoder serves both restore paths.

import (
	"fmt"
	"os"
	"sort"

	"sbqa/internal/satisfaction"
)

// SegmentFilePath returns the canonical file name of journal segment seq
// under dir — the name the Store itself uses, so shipped replicas mirror
// the owner's directory layout.
func SegmentFilePath(dir string, seq uint64) string {
	return segmentPath(dir, seq)
}

// ScanSegmentDir lists the journal segment sequence numbers present in dir,
// sorted ascending. A missing directory is an empty result, not an error.
func ScanSegmentDir(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// ValidateSegmentFile reads the whole segment at path, verifying framing
// and checksums, and returns its header sequence number and record count.
// Unlike restore, it tolerates nothing: a shipped segment was sealed and
// synced by the owner before shipping, so any torn record means the
// transfer (or the sender) is broken and the replica must be rejected.
func ValidateSegmentFile(path string) (seq uint64, records int, err error) {
	seq, err = readSegment(path, func(*Record) error {
		records++
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return seq, records, nil
}

// ReplayDir replays every journal segment under dir, ascending by sequence
// number, applying only the records keep accepts into reg. This is the
// failover path: the new owner of a dead node's consumer range replays the
// shipped segments with keep filtering to the consumers the ring now
// assigns to it. A torn record is tolerated only at the tail of the final
// segment (mirroring the boot restore); shipped segments are validated on
// receipt, so hitting one here means the replica directory itself was
// damaged after landing.
func ReplayDir(dir string, keep func(*Record) bool, reg *satisfaction.Registry) (replayed int, err error) {
	seqs, err := ScanSegmentDir(dir)
	if err != nil {
		return 0, fmt.Errorf("persist: scanning replica dir: %w", err)
	}
	for i, seq := range seqs {
		_, err := readSegment(segmentPath(dir, seq), func(rec *Record) error {
			if keep == nil || keep(rec) {
				rec.Apply(reg)
				replayed++
			}
			return nil
		})
		if err != nil {
			if isTorn(err) && i == len(seqs)-1 {
				return replayed, nil
			}
			return replayed, fmt.Errorf("persist: replica replay: %w", err)
		}
	}
	return replayed, nil
}
