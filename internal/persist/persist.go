// Package persist is the engine's durability subsystem: it makes the
// learned adaptation state of an SbQA deployment — the per-participant
// satisfaction windows that drive the adaptive ω of Equation 2, the active
// allocation policy and its generation, and the allocators' sampling-stream
// positions — survive process restarts, so a redeployed or crashed engine
// resumes warm instead of re-learning from scratch under live traffic.
//
// The subsystem has three cooperating parts:
//
//   - a snapshot codec (snapshot.go): a versioned, checksummed, atomically
//     written (temp file + rename) serialization of the full adaptation
//     state. Snapshots capture the exact ring-buffer contents of every
//     satisfaction tracker, not just the derived δs, so every value a
//     restored registry computes is bit-identical to the exported one's.
//
//   - an append-only journal (journal.go): a write-ahead log of mediation
//     outcomes, participant departures, and policy changes, split into
//     sealed segments with a configurable fsync cadence. Records are
//     individually checksummed and length-prefixed, so a torn final record
//     (the signature of a crash mid-write) is detected and tolerated.
//
//   - a store (store.go) tying both together: restore loads the newest
//     decodable snapshot and replays the journal tail over it (if snapshot
//     files exist but none decodes, restore fails loudly rather than
//     silently starting near-cold); background compaction folds sealed
//     segments into a fresh snapshot and prunes what the snapshot covers. The recorder (recorder.go) feeds the
//     journal asynchronously off the engine's typed event stream through a
//     bounded, drop-counting queue, so persistence can never stall a
//     mediation.
//
// # Loss model
//
// After a graceful Close (which drains the recorder and writes a final
// snapshot) a restart is lossless, and — because the snapshot includes the
// allocator sampling states — the restored engine's allocation sequence is
// byte-identical to an uninterrupted run. After a crash, the journal
// recovers every outcome synced before the crash: at most the last unsynced
// batch (SyncEvery-1 appended records plus whatever sat in the recorder
// queue) is lost, and the allocator sampling streams rewind to the last
// snapshot, so post-crash allocations are statistically equivalent but not
// byte-identical. See DESIGN.md §8 for the full per-crash-mode accounting.
package persist

import (
	"errors"
	"time"
)

// Defaults for Config fields left zero.
const (
	// DefaultSyncEvery is the default fsync cadence: one fsync per this
	// many appended journal records.
	DefaultSyncEvery = 64

	// DefaultSegmentBytes is the default journal segment rotation
	// threshold.
	DefaultSegmentBytes = 4 << 20

	// DefaultQueueDepth is the default recorder queue bound.
	DefaultQueueDepth = 4096

	// DefaultCompactAfterSegments is how many sealed segments accumulate
	// before background compaction folds them into a fresh snapshot.
	DefaultCompactAfterSegments = 4

	// DefaultCompactInterval is how often the engine's persistence loop
	// checks whether compaction is due.
	DefaultCompactInterval = 30 * time.Second
)

// Config tunes the durability subsystem. The zero value selects the
// documented defaults; build configs through Options.
type Config struct {
	// SyncEvery is the fsync cadence: the journal fsyncs after every
	// SyncEvery appended records (1 = every record — maximum durability,
	// maximum latency). The journal also syncs on segment rotation, on
	// Drain, and on Close. Values below 1 mean DefaultSyncEvery.
	SyncEvery int

	// SegmentBytes rotates the active journal segment once it exceeds
	// this size. Values below 1 mean DefaultSegmentBytes.
	SegmentBytes int64

	// QueueDepth bounds the recorder's asynchronous queue; events beyond
	// it are dropped (and counted) rather than blocking the engine.
	// Values below 1 mean DefaultQueueDepth.
	QueueDepth int

	// CompactAfterSegments is the sealed-segment count that triggers
	// background compaction. Values below 1 mean
	// DefaultCompactAfterSegments.
	CompactAfterSegments int

	// CompactInterval is the cadence of the engine's compaction check.
	// Values <= 0 mean DefaultCompactInterval.
	CompactInterval time.Duration
}

// withDefaults resolves zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.SyncEvery < 1 {
		c.SyncEvery = DefaultSyncEvery
	}
	if c.SegmentBytes < 1 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.CompactAfterSegments < 1 {
		c.CompactAfterSegments = DefaultCompactAfterSegments
	}
	if c.CompactInterval <= 0 {
		c.CompactInterval = DefaultCompactInterval
	}
	return c
}

// Option configures a Store (see Open and live.WithPersistence).
type Option func(*Config)

// SyncEvery sets the fsync cadence: one fsync per n appended journal
// records; 1 syncs every record.
func SyncEvery(n int) Option { return func(c *Config) { c.SyncEvery = n } }

// SegmentBytes sets the journal segment rotation threshold.
func SegmentBytes(n int64) Option { return func(c *Config) { c.SegmentBytes = n } }

// QueueDepth bounds the recorder's asynchronous queue.
func QueueDepth(n int) Option { return func(c *Config) { c.QueueDepth = n } }

// CompactAfterSegments sets how many sealed segments accumulate before
// compaction folds them into a fresh snapshot.
func CompactAfterSegments(n int) Option { return func(c *Config) { c.CompactAfterSegments = n } }

// CompactInterval sets the cadence of the compaction check.
func CompactInterval(d time.Duration) Option { return func(c *Config) { c.CompactInterval = d } }

// ErrCorrupt reports a snapshot or journal whose framing or checksum does
// not hold. Decoders return errors wrapping it (use errors.Is); they never
// panic on corrupt input — the fuzz targets enforce that.
var ErrCorrupt = errors.New("persist: corrupt data")

// Stats is a point-in-time snapshot of the durability counters, surfaced
// through live.Stats.Persistence and the daemon's /v1/stats and /v1/metrics.
type Stats struct {
	// RecordsAppended counts journal records written (buffered, not
	// necessarily synced) since the store opened.
	RecordsAppended uint64

	// RecordsDropped counts events the recorder dropped because its queue
	// was full — persistence backpressure never blocks a mediation.
	RecordsDropped uint64

	// AppendErrors counts records lost to journal write errors (disk
	// full, I/O error).
	AppendErrors uint64

	// Syncs counts journal fsyncs.
	Syncs uint64

	// SealedSegments is the number of closed journal segments currently
	// on disk (compaction folds them into the next snapshot).
	SealedSegments int

	// ActiveSegment is the sequence number of the segment being appended
	// to.
	ActiveSegment uint64

	// SnapshotsWritten counts snapshots written since the store opened
	// (the final Close flush included).
	SnapshotsWritten uint64

	// Compactions counts background compactions (snapshots written to
	// fold sealed segments, excluding the Close flush).
	Compactions uint64

	// QueueDepth is the recorder queue's current backlog.
	QueueDepth int

	// Restore describes what the boot-time restore recovered.
	Restore RestoreStats
}

// RestoreStats describes one boot-time restore.
type RestoreStats struct {
	// SnapshotLoaded reports whether a snapshot was found and decoded.
	SnapshotLoaded bool

	// Consumers and Providers count the satisfaction trackers restored
	// from the snapshot.
	Consumers int
	Providers int

	// ReplayedRecords counts the journal records replayed over the
	// snapshot.
	ReplayedRecords int

	// TornTail reports that the final journal record was torn (a crash
	// mid-write) and replay stopped cleanly before it.
	TornTail bool
}
