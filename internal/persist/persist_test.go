package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
)

// testSnapshot builds a small but fully featured snapshot.
func testSnapshot() *Snapshot {
	reg := satisfaction.NewRegistry(5)
	for i := 0; i < 40; i++ {
		reg.Consumer(model.ConsumerID(i%7)).Record(float64(i%5)/4.3, 0.9, float64(i%2))
		reg.Provider(model.ProviderID(i%9)).Record(model.Intention(float64(i%4)/2-1), i%3 == 0)
	}
	cs, ps := CaptureRegistry(reg)
	return &Snapshot{
		FirstSegment:     7,
		NextQueryID:      12345,
		PolicyGeneration: 3,
		PolicyJSON:       []byte(`{"kind":"sbqa","k":6,"kn":3,"seed":42}`),
		AllocStates:      [][]byte{{1, 2, 3}, nil, {4, 5}},
		Window:           5,
		Consumers:        cs,
		Providers:        ps,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}

	// Applying the snapshot restores bit-identical satisfaction.
	reg := satisfaction.NewRegistry(5)
	if err := got.ApplyRegistry(reg); err != nil {
		t.Fatal(err)
	}
	for _, e := range want.Consumers {
		restored, err := satisfaction.NewConsumerFromState(e.State)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := reg.ConsumerSatisfaction(e.ID), restored.Satisfaction(); a != b {
			t.Errorf("consumer %d: δs %v != %v", e.ID, a, b)
		}
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncations at every boundary must error, never panic.
	for _, n := range []int{0, 4, 8, 9, len(data) / 2, len(data) - 1} {
		if _, err := DecodeSnapshot(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation at %d decoded", n)
		}
	}
	// Any single-byte flip must fail the checksum (or the framing).
	for _, i := range []int{0, 8, 10, 20, len(data) / 2, len(data) - 2} {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeSnapshot(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at %d decoded", i)
		}
	}
}

// replayAll restores a fresh registry from dir and returns the result.
func replayAll(t *testing.T, dir string, opts ...Option) (*satisfaction.Registry, *RestoreResult, *Store) {
	t.Helper()
	st, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	reg := satisfaction.NewRegistry(satisfaction.DefaultWindow)
	res, err := st.Restore(reg)
	if err != nil {
		t.Fatal(err)
	}
	return reg, res, st
}

// outcome builds a simple outcome record for provider set ps.
func outcome(qid int64, c model.ConsumerID, ps ...model.ProviderID) *Record {
	o := OutcomeRecord{QueryID: qid, Consumer: c, N: 1}
	for i, p := range ps {
		o.Proposed = append(o.Proposed, p)
		o.CI = append(o.CI, model.Intention(0.5))
		o.PI = append(o.PI, model.Intention(0.25))
		o.Selected = append(o.Selected, i == 0)
	}
	return &Record{Type: RecordOutcome, Outcome: o}
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	_, _, st := replayAll(t, dir, SyncEvery(1))
	for i := 0; i < 10; i++ {
		if err := st.Append(outcome(int64(i+1), 1, 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(&Record{Type: RecordForgetProvider, Forget: 3}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(&Record{Type: RecordPolicyChange, PolicyGeneration: 9, PolicyJSON: []byte(`{"kind":"random"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg, res, _ := replayAll(t, dir)
	if res.Stats.ReplayedRecords != 12 {
		t.Fatalf("replayed %d records, want 12", res.Stats.ReplayedRecords)
	}
	if res.NextQueryID != 10 {
		t.Errorf("next query ID %d, want 10", res.NextQueryID)
	}
	if res.PolicyGeneration != 9 || string(res.PolicyJSON) != `{"kind":"random"}` {
		t.Errorf("policy not recovered: gen %d, %q", res.PolicyGeneration, res.PolicyJSON)
	}
	if res.Stats.TornTail {
		t.Error("clean journal reported torn tail")
	}
	// Provider 2 was selected 10 times with PI 0.25 → unit 0.625; provider
	// 3 was forgotten after the outcomes.
	if got := reg.ProviderSatisfaction(2); got != 0.625 {
		t.Errorf("provider 2 δs %v, want 0.625", got)
	}
	if got := reg.ProviderSatisfaction(3); got != satisfaction.Neutral {
		t.Errorf("forgotten provider 3 δs %v, want neutral", got)
	}
	if got := reg.ConsumerSatisfaction(1); got == satisfaction.Neutral {
		t.Error("consumer 1 recorded nothing")
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	_, _, st := replayAll(t, dir, SyncEvery(1))
	for i := 0; i < 5; i++ {
		if err := st.Append(outcome(int64(i+1), 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: chop a few bytes off the active segment.
	segs, _, err := st.scan()
	if err != nil {
		t.Fatal(err)
	}
	last := segmentPath(dir, segs[len(segs)-1])
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	_, res, _ := replayAll(t, dir)
	if !res.Stats.TornTail {
		t.Error("torn tail not reported")
	}
	if res.Stats.ReplayedRecords != 4 {
		t.Errorf("replayed %d records, want 4 (last torn)", res.Stats.ReplayedRecords)
	}

	// The same corruption in a NON-final segment is an error, not a
	// tolerated tear.
	if err := os.WriteFile(segmentPath(dir, segs[len(segs)-1]+5), []byte("SBQAWAL1 garbage beyond"), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st3.Restore(satisfaction.NewRegistry(10)); err == nil {
		t.Error("mid-journal corruption tolerated")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-journal corruption: %v, want ErrCorrupt", err)
	}
}

func TestSegmentRotationAndSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	_, _, st := replayAll(t, dir, SegmentBytes(256), SyncEvery(1))
	for i := 0; i < 50; i++ {
		if err := st.Append(outcome(int64(i+1), model.ConsumerID(i%3), 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if st.SealedSegments() == 0 {
		t.Fatal("no rotation despite tiny segment threshold")
	}

	// Compact: rotate, snapshot the engine-held state, prune. The test's
	// stand-in for the engine's registry is a fresh one fed the same
	// records.
	reg := satisfaction.NewRegistry(satisfaction.DefaultWindow)
	for i := 0; i < 50; i++ {
		outcome(int64(i+1), model.ConsumerID(i%3), 1, 2).Apply(reg)
	}
	first, err := st.RotateForSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	cs, ps := CaptureRegistry(reg)
	snap := &Snapshot{FirstSegment: first, NextQueryID: 50, Window: satisfaction.DefaultWindow, Consumers: cs, Providers: ps}
	if err := st.WriteSnapshot(snap, true); err != nil {
		t.Fatal(err)
	}
	if got := st.SealedSegments(); got != 0 {
		t.Errorf("%d sealed segments survive compaction, want 0", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the snapshot and the empty active segment remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir after compaction: %v, want snapshot + active segment", names)
	}

	reg2, res2, _ := replayAll(t, dir)
	if !res2.Stats.SnapshotLoaded {
		t.Fatal("snapshot not loaded after compaction")
	}
	if res2.Stats.ReplayedRecords != 0 {
		t.Errorf("replayed %d records after full compaction, want 0", res2.Stats.ReplayedRecords)
	}
	for c := 0; c < 3; c++ {
		if a, b := reg.ConsumerSatisfaction(model.ConsumerID(c)), reg2.ConsumerSatisfaction(model.ConsumerID(c)); a != b {
			t.Errorf("consumer %d δs %v != %v after compaction", c, a, b)
		}
	}
}

func TestCorruptSnapshotFallsBackOrFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	_, _, st := replayAll(t, dir, SyncEvery(1))
	for i := 0; i < 6; i++ {
		if err := st.Append(outcome(int64(i+1), 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	first, err := st.RotateForSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-write a good snapshot and a newer corrupt one: restore must fall
	// back to the older good snapshot.
	reg := satisfaction.NewRegistry(satisfaction.DefaultWindow)
	for i := 0; i < 6; i++ {
		outcome(int64(i+1), 0, 1).Apply(reg)
	}
	cs, ps := CaptureRegistry(reg)
	good := &Snapshot{FirstSegment: first, NextQueryID: 6, Window: satisfaction.DefaultWindow, Consumers: cs, Providers: ps}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, good); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshotPath(dir, first), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := EncodeSnapshot(&buf, &Snapshot{FirstSegment: first + 1, NextQueryID: 99}); err != nil {
		t.Fatal(err)
	}
	corrupt := buf.Bytes()
	corrupt[len(corrupt)-1] ^= 0xFF
	if err := os.WriteFile(snapshotPath(dir, first+1), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, res, st2 := replayAll(t, dir)
	st2.Close()
	if !res.Stats.SnapshotLoaded {
		t.Error("older good snapshot not used as fallback")
	}
	if res.NextQueryID != 6 {
		t.Errorf("restored NextQueryID %d, want 6 (the good snapshot's)", res.NextQueryID)
	}
	if got := reg2.ConsumerSatisfaction(0); got == satisfaction.Neutral {
		t.Error("fallback snapshot restored nothing")
	}

	// When EVERY snapshot is corrupt, restore must fail loudly rather than
	// silently resurrect a near-empty registry (compaction may have pruned
	// the history the snapshots covered).
	if err := os.WriteFile(snapshotPath(dir, first), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st3.Restore(satisfaction.NewRegistry(10)); err == nil {
		t.Error("all-corrupt snapshots restored silently")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Errorf("all-corrupt snapshots: %v, want ErrCorrupt", err)
	}
}

func TestRecorderDropsWhenFullAndCountsIt(t *testing.T) {
	dir := t.TempDir()
	_, _, st := replayAll(t, dir, QueueDepth(1))
	rec := st.NewRecorder()
	rec.Start()
	// Saturate the queue faster than the writer can drain by enqueueing
	// many events; some must be dropped (depth 1), none may block.
	a := &model.Allocation{Query: model.Query{ID: 1, Consumer: 0, N: 1}, Proposed: []model.ProviderID{1}, Selected: []model.ProviderID{1},
		ConsumerIntentions: []model.Intention{1}, ProviderIntentions: []model.Intention{1}}
	for i := 0; i < 5000; i++ {
		rec.OnAllocation(a, 1)
	}
	rec.Close()
	stats := rec.Stats()
	if stats.RecordsDropped == 0 {
		t.Error("no drops despite depth-1 queue under burst")
	}
	if stats.RecordsAppended+stats.RecordsDropped != 5000 {
		t.Errorf("appended %d + dropped %d != 5000", stats.RecordsAppended, stats.RecordsDropped)
	}
	// After close, events are dropped, not sent.
	rec.OnAllocation(a, 1)
	if got := rec.Stats().RecordsDropped; got != stats.RecordsDropped+1 {
		t.Errorf("post-close event not counted as drop (%d)", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsSecondCall(t *testing.T) {
	dir := t.TempDir()
	_, _, st := replayAll(t, dir)
	if _, err := st.Restore(satisfaction.NewRegistry(10)); err == nil {
		t.Error("second Restore accepted")
	}
	st.Close()
}

func TestAbortLosesUnsyncedBatchOnly(t *testing.T) {
	dir := t.TempDir()
	_, _, st := replayAll(t, dir, SyncEvery(10))
	for i := 0; i < 47; i++ {
		if err := st.Append(outcome(int64(i+1), 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st.Abort() // crash: records 41..47 were buffered, never synced

	_, res, _ := replayAll(t, dir)
	if res.Stats.ReplayedRecords != 40 {
		t.Errorf("recovered %d records after crash, want exactly the synced 40", res.Stats.ReplayedRecords)
	}
	if res.NextQueryID != 40 {
		t.Errorf("next query ID %d, want 40", res.NextQueryID)
	}
}

// TestCrashBeforeFirstSyncStillRestores is the regression for the
// end-to-end crash bug: a store killed before its first fsync (default
// cadence, few records) must restore cleanly with zero replayed records —
// not fail with corruption. The segment header is synced at creation, so
// the on-disk file always parses.
func TestCrashBeforeFirstSyncStillRestores(t *testing.T) {
	dir := t.TempDir()
	_, _, st := replayAll(t, dir) // default SyncEvery(64)
	for i := 0; i < 10; i++ {
		if err := st.Append(outcome(int64(i+1), 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st.Abort() // crash: all 10 records were buffered, never synced

	_, res, st2 := replayAll(t, dir)
	defer st2.Close()
	if res.Stats.ReplayedRecords != 0 {
		t.Errorf("replayed %d records, want 0 (nothing was synced)", res.Stats.ReplayedRecords)
	}

	// An entirely truncated (empty) final segment — crash before even the
	// header landed — is tolerated as a torn tail too.
	st2.Close()
	if err := os.WriteFile(segmentPath(dir, 99), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, res3, st3 := replayAll(t, dir)
	defer st3.Close()
	if !res3.Stats.TornTail {
		t.Error("empty final segment not reported as torn tail")
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "state")
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Restore(satisfaction.NewRegistry(10)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}
