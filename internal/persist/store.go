package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sbqa/internal/satisfaction"
)

// Store owns one state directory: the active journal segment, the sealed
// segments awaiting compaction, and the snapshot files. A Store is created
// with Open, must Restore exactly once before any Append, and is closed
// with Close (graceful; syncs) or Abort (crash emulation; drops buffered
// writes).
//
// Append/Sync are intended for a single writer goroutine (the Recorder's),
// but every method is mutex-guarded so rotation-for-snapshot and stats
// reads may come from other goroutines.
type Store struct {
	dir string
	cfg Config

	mu        sync.Mutex
	w         *segmentWriter // active segment; nil before Restore and after Close
	activeSeq uint64
	sealed    []uint64 // sorted sealed segment seqs currently on disk
	sinceSync int
	restored  bool
	closed    bool

	appended  atomic.Uint64
	syncs     atomic.Uint64
	snapshots atomic.Uint64
	compacted atomic.Uint64

	restoreStats RestoreStats
}

// RestoreResult is what the boot-time restore recovered; the engine applies
// it on top of its freshly constructed state.
type RestoreResult struct {
	// Stats summarizes the restore for monitoring.
	Stats RestoreStats

	// NextQueryID is the recovered query ID counter: the snapshot's value
	// advanced past every replayed outcome's query ID.
	NextQueryID int64

	// PolicyGeneration and PolicyJSON are the latest recovered policy
	// (the snapshot's, superseded by any replayed policy-change record).
	// PolicyJSON is nil when the persisted engine ran without a
	// declarative policy.
	PolicyGeneration uint64
	PolicyJSON       []byte

	// AllocStates are the snapshot's per-shard allocator states (nil when
	// no snapshot was loaded). They describe the snapshot moment — journal
	// replay cannot advance them, which is why crash recovery is bounded
	// rather than byte-identical.
	AllocStates [][]byte

	// Window is the persisted engine's satisfaction window at snapshot
	// time (0 without a snapshot). Informational: restored trackers carry
	// their own windows; see Snapshot.Window.
	Window int
}

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".wal"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".snap"
)

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segmentPrefix, seq, segmentSuffix))
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapshotPrefix, seq, snapshotSuffix))
}

// parseSeq extracts the sequence number from a store filename.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open prepares a store over dir (creating it if needed). No files are
// written until Restore opens the first active segment.
func Open(dir string, opts ...Option) (*Store, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: state dir: %w", err)
	}
	return &Store{dir: dir, cfg: cfg}, nil
}

// Dir returns the store's state directory.
func (s *Store) Dir() string { return s.dir }

// scan lists the on-disk segment and snapshot sequence numbers, sorted
// ascending.
func (s *Store) scan() (segs, snaps []uint64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

// loadLatestSnapshot tries snapshots newest-first and returns the first
// that decodes; a corrupt newer snapshot falls back to an older one rather
// than failing the restore.
func (s *Store) loadLatestSnapshot(snaps []uint64) *Snapshot {
	for i := len(snaps) - 1; i >= 0; i-- {
		f, err := os.Open(snapshotPath(s.dir, snaps[i]))
		if err != nil {
			continue
		}
		snap, err := DecodeSnapshot(f)
		f.Close()
		if err == nil {
			return snap
		}
	}
	return nil
}

// Restore loads the newest decodable snapshot into reg, replays the journal
// tail over it (tolerating a torn record at the very end), and opens a
// fresh active segment for subsequent appends. It must be called exactly
// once, before the Recorder starts. An empty state directory restores
// nothing and succeeds.
func (s *Store) Restore(reg *satisfaction.Registry) (*RestoreResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.restored {
		return nil, fmt.Errorf("persist: store already restored")
	}
	segs, snaps, err := s.scan()
	if err != nil {
		return nil, fmt.Errorf("persist: scanning state dir: %w", err)
	}

	res := &RestoreResult{}
	snap := s.loadLatestSnapshot(snaps)
	if snap == nil && len(snaps) > 0 {
		// Snapshot files exist but none decodes. Proceeding would silently
		// resurrect a near-empty registry (compaction pruned the journal
		// history the snapshots covered) and cement the loss at the next
		// snapshot — fail loudly instead; the operator decides whether to
		// wipe the state dir and start cold.
		return nil, fmt.Errorf("%w: %d snapshot file(s) present but none decodes; refusing a silent cold restore (wipe %s to start over)", ErrCorrupt, len(snaps), s.dir)
	}
	firstSeg := uint64(0)
	if snap != nil {
		if err := snap.ApplyRegistry(reg); err != nil {
			return nil, err
		}
		res.Stats.SnapshotLoaded = true
		res.Stats.Consumers = len(snap.Consumers)
		res.Stats.Providers = len(snap.Providers)
		res.NextQueryID = snap.NextQueryID
		res.PolicyGeneration = snap.PolicyGeneration
		res.PolicyJSON = snap.PolicyJSON
		res.AllocStates = snap.AllocStates
		res.Window = snap.Window
		firstSeg = snap.FirstSegment
	}

	// Replay the journal tail: every segment the snapshot does not cover,
	// in sequence order. A torn record is tolerated only at the tail of
	// the final segment — anywhere else it is corruption.
	maxSeq := uint64(0)
	for i, seq := range segs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq < firstSeg {
			continue
		}
		_, err := readSegment(segmentPath(s.dir, seq), func(rec *Record) error {
			rec.Apply(reg)
			res.Stats.ReplayedRecords++
			switch rec.Type {
			case RecordOutcome:
				if rec.Outcome.QueryID > res.NextQueryID {
					res.NextQueryID = rec.Outcome.QueryID
				}
			case RecordPolicyChange:
				if rec.PolicyGeneration >= res.PolicyGeneration {
					res.PolicyGeneration = rec.PolicyGeneration
					res.PolicyJSON = rec.PolicyJSON
				}
			}
			return nil
		})
		if err != nil {
			if isTorn(err) && i == len(segs)-1 {
				res.Stats.TornTail = true
				break
			}
			return nil, fmt.Errorf("persist: journal replay: %w", err)
		}
	}

	// Appends go to a fresh segment — a torn tail is never appended to.
	s.activeSeq = maxSeq + 1
	w, err := createSegment(segmentPath(s.dir, s.activeSeq), s.activeSeq)
	if err != nil {
		return nil, fmt.Errorf("persist: opening journal segment: %w", err)
	}
	syncDir(s.dir)
	s.w = w
	for _, seq := range segs {
		s.sealed = append(s.sealed, seq)
	}
	s.restored = true
	s.restoreStats = res.Stats
	return res, nil
}

// Append writes one record to the active segment, rotating past the size
// threshold and fsyncing on the configured cadence.
func (s *Store) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(rec)
}

// AppendBatch appends a burst of records under a single lock acquisition —
// the recorder's writer goroutine drains its queue in bursts, so a busy
// engine pays one mutex round trip per burst instead of per record. Each
// record gets exactly the per-record accounting, sync cadence, and rotation
// behavior of Append called in a loop; the returned count is the number of
// records that failed.
func (s *Store) AppendBatch(recs []*Record) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	failed := 0
	for _, rec := range recs {
		if err := s.appendLocked(rec); err != nil {
			failed++
		}
	}
	return failed
}

func (s *Store) appendLocked(rec *Record) error {
	if s.w == nil {
		return fmt.Errorf("persist: store not open for appends")
	}
	if err := s.w.append(rec); err != nil {
		return err
	}
	s.appended.Add(1)
	s.sinceSync++
	if s.sinceSync >= s.cfg.SyncEvery {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.w.bytes >= s.cfg.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// Sync flushes and fsyncs the active segment.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if err := s.w.sync(); err != nil {
		return err
	}
	s.syncs.Add(1)
	s.sinceSync = 0
	return nil
}

// rotateLocked seals the active segment and opens the next one.
func (s *Store) rotateLocked() error {
	if err := s.w.close(); err != nil {
		return err
	}
	s.syncs.Add(1)
	s.sinceSync = 0
	s.sealed = append(s.sealed, s.activeSeq)
	s.activeSeq++
	w, err := createSegment(segmentPath(s.dir, s.activeSeq), s.activeSeq)
	if err != nil {
		s.w = nil
		return err
	}
	syncDir(s.dir)
	s.w = w
	return nil
}

// SealedSegments reports how many closed segments await compaction.
func (s *Store) SealedSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sealed)
}

// SealedSegmentSeqs returns the sequence numbers of the sealed segments
// currently on disk, sorted ascending. The cluster replicator ships these
// to follower nodes; a seq may disappear between this call and
// OpenSealedSegment when compaction prunes it.
func (s *Store) SealedSegmentSeqs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.sealed...)
}

// OpenSealedSegment opens one sealed segment for streaming (shipping to a
// replication follower) and returns its size. The caller must close the
// reader. Returns an error when seq is not a sealed segment on disk —
// including when compaction pruned it between SealedSegmentSeqs and this
// call, which the replicator treats as "superseded, skip".
func (s *Store) OpenSealedSegment(seq uint64) (io.ReadCloser, int64, error) {
	s.mu.Lock()
	sealed := false
	for _, have := range s.sealed {
		if have == seq {
			sealed = true
			break
		}
	}
	s.mu.Unlock()
	if !sealed {
		return nil, 0, fmt.Errorf("persist: segment %d is not sealed", seq)
	}
	f, err := os.Open(segmentPath(s.dir, seq))
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// ActiveSegmentBytes reports how many payload bytes (beyond the segment
// header) sit in the active segment — the journal tail that has not been
// sealed, and therefore cannot have been shipped to a replication follower
// yet. Zero for a freshly rotated (or closed) store.
func (s *Store) ActiveSegmentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0
	}
	return s.w.bytes - segmentHeaderBytes
}

// RotateIfDirty seals the active segment when it holds at least one record,
// opening a fresh one, and reports whether it rotated. The cluster
// replicator calls this on its shipping cadence so the journal tail becomes
// sealed — and thus shippable — on a bounded clock rather than only at the
// SegmentBytes threshold. A clean (header-only) active segment is left
// alone, so an idle node does not accrete empty segment files. Returns
// false with no error on a closed store (shutdown races are not failures).
func (s *Store) RotateIfDirty() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil || s.w.bytes <= segmentHeaderBytes {
		return false, nil
	}
	if err := s.rotateLocked(); err != nil {
		return false, err
	}
	return true, nil
}

// RotateForSnapshot seals the active segment and returns the new active
// sequence number — the FirstSegment of the snapshot about to be written.
// The caller must have quiesced appends (the engine holds every shard lock
// and has drained the recorder), so the sealed segments plus the snapshot
// exactly partition the record history.
func (s *Store) RotateForSnapshot() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return 0, fmt.Errorf("persist: store not open")
	}
	if err := s.rotateLocked(); err != nil {
		return 0, err
	}
	return s.activeSeq, nil
}

// WriteSnapshot encodes snap atomically (temp file, fsync, rename, dir
// fsync) and prunes everything it supersedes: journal segments below
// snap.FirstSegment and older snapshot files. compaction marks the write as
// a background compaction (for the counters) rather than a Close flush.
func (s *Store) WriteSnapshot(snap *Snapshot, compaction bool) error {
	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if err := EncodeSnapshot(tmp, snap); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	final := snapshotPath(s.dir, snap.FirstSegment)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	syncDir(s.dir)
	s.snapshots.Add(1)
	if compaction {
		s.compacted.Add(1)
	}

	// Prune what the snapshot supersedes. Removal failures are harmless:
	// restore replays only segments >= FirstSegment, so a stale file that
	// survives pruning is skipped, never double-applied.
	s.mu.Lock()
	kept := s.sealed[:0]
	for _, seq := range s.sealed {
		if seq < snap.FirstSegment {
			os.Remove(segmentPath(s.dir, seq))
			continue
		}
		kept = append(kept, seq)
	}
	s.sealed = kept
	s.mu.Unlock()
	_, snaps, err := s.scan()
	if err == nil {
		for _, seq := range snaps {
			if seq < snap.FirstSegment {
				os.Remove(snapshotPath(s.dir, seq))
			}
		}
	}
	syncDir(s.dir)
	return nil
}

// Close syncs and closes the active segment. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.w == nil {
		s.closed = true
		return nil
	}
	s.closed = true
	err := s.w.close()
	s.w = nil
	return err
}

// Abort closes the store dropping everything buffered since the last sync —
// the crash-emulation path used by tests (and by nothing else).
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.w == nil {
		s.closed = true
		return
	}
	s.closed = true
	s.w.abort()
	s.w = nil
}

// storeStats fills the store-owned half of Stats.
func (s *Store) storeStats(st *Stats) {
	st.RecordsAppended = s.appended.Load()
	st.Syncs = s.syncs.Load()
	st.SnapshotsWritten = s.snapshots.Load()
	st.Compactions = s.compacted.Load()
	s.mu.Lock()
	st.SealedSegments = len(s.sealed)
	st.ActiveSegment = s.activeSeq
	st.Restore = s.restoreStats
	s.mu.Unlock()
}

// syncDir fsyncs a directory so renames and creates within it are durable;
// best-effort on platforms where directories cannot be fsynced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
