package persist

import (
	"errors"
	"sync"
	"sync/atomic"

	"sbqa/internal/event"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
)

// Recorder feeds the journal asynchronously off the engine's typed event
// stream: observer callbacks (which run on the mediating goroutines, often
// under a shard lock) copy the event into a bounded queue and return; a
// single writer goroutine drains the queue into Store.Append. When the
// queue is full the event is dropped and counted — persistence lag can lose
// durability, never throughput.
//
// The recorder journals exactly the events that mutate durable adaptation
// state: mediation outcomes (successful allocations AND the rejections the
// registry records — no-candidates and stale-selection failures accrue
// consumer dissatisfaction and must survive a restart too), participant
// departures (satisfaction memory forgotten), and accepted policy changes.
type Recorder struct {
	event.Nop

	store *Store
	ch    chan recorderItem

	// policyFn resolves the full active policy spec (as JSON) when an
	// OnPolicyChange event fires: the event itself carries only the
	// generation, name, and kind. Set by the engine before traffic.
	policyFn func() (gen uint64, specJSON []byte, ok bool)

	mu      sync.RWMutex // guards closed/started vs in-flight enqueues
	closed  bool
	started bool

	dropped   atomic.Uint64
	appendErr atomic.Uint64

	abort atomic.Bool
	done  chan struct{}
}

// recorderItem is one queue entry: a record to append, or a flush request
// (sync the journal, then acknowledge).
type recorderItem struct {
	rec   *Record
	flush chan struct{}
}

// recordPool recycles Record structs (and, through append-into-place, their
// outcome slices) between the observer hot path and the writer goroutine:
// an engine emitting tens of thousands of outcomes per second would
// otherwise allocate five slices per mediation just to journal it.
var recordPool = sync.Pool{New: func() any { return new(Record) }}

// getRecord fetches a pooled record reset to type t with its slice
// capacities intact.
func getRecord(t RecordType) *Record {
	rec := recordPool.Get().(*Record)
	rec.Type = t
	rec.Forget = 0
	rec.PolicyGeneration = 0
	rec.PolicyJSON = nil
	o := &rec.Outcome
	o.QueryID, o.Consumer, o.N = 0, 0, 0
	o.Proposed = o.Proposed[:0]
	o.CI = o.CI[:0]
	o.PI = o.PI[:0]
	o.Selected = o.Selected[:0]
	o.HasCandidates = false
	o.Candidates = o.Candidates[:0]
	return rec
}

// putRecord returns a record to the pool (PolicyJSON blobs are not pooled —
// the journal writer has already consumed them).
func putRecord(rec *Record) {
	rec.PolicyJSON = nil
	recordPool.Put(rec)
}

// NewRecorder builds the store's recorder WITHOUT starting its writer: the
// recorder can join an observer chain before Restore has run, buffering
// whatever it observes. Call Start once Restore completes (the store only
// accepts appends from then on); close with Close before closing the store.
func (s *Store) NewRecorder() *Recorder {
	return &Recorder{
		store: s,
		ch:    make(chan recorderItem, s.cfg.QueueDepth),
		done:  make(chan struct{}),
	}
}

// Start launches the writer goroutine. Must follow Store.Restore; no-op if
// already started or closed.
func (r *Recorder) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started || r.closed {
		return
	}
	r.started = true
	go r.run()
}

// SetPolicySource installs the resolver the recorder consults when a policy
// change fires. Must be set before traffic (the engine does this during
// construction).
func (r *Recorder) SetPolicySource(fn func() (gen uint64, specJSON []byte, ok bool)) {
	r.policyFn = fn
}

// maxRecorderBatch caps how many queued records one writer wakeup journals
// in a single Store.AppendBatch call — large enough to amortize the store
// mutex across a busy engine's burst, small enough to bound flush-ack
// latency and keep pooled records circulating.
const maxRecorderBatch = 256

// run is the writer goroutine: queue → journal. Each blocking receive is
// followed by a non-blocking drain of whatever burst accumulated behind it,
// so a saturated engine pays one store-mutex round trip (and at most one
// fsync-cadence check) per burst rather than per record. Flush requests
// found in a burst are acknowledged after the whole burst is appended and
// synced — strictly stronger than the Drain contract, which only covers
// records enqueued before the flush.
func (r *Recorder) run() {
	defer close(r.done)
	batch := make([]*Record, 0, maxRecorderBatch)
	var flushes []chan struct{}
	open := true
	for open {
		item, ok := <-r.ch
		if !ok {
			break
		}
		batch, flushes = batch[:0], flushes[:0]
		if item.rec != nil {
			batch = append(batch, item.rec)
		}
		if item.flush != nil {
			flushes = append(flushes, item.flush)
		}
	drain:
		for len(batch) < maxRecorderBatch {
			select {
			case next, ok := <-r.ch:
				if !ok {
					open = false
					break drain
				}
				if next.rec != nil {
					batch = append(batch, next.rec)
				}
				if next.flush != nil {
					flushes = append(flushes, next.flush)
				}
			default:
				break drain
			}
		}
		if len(batch) > 0 {
			if failed := r.store.AppendBatch(batch); failed > 0 {
				r.appendErr.Add(uint64(failed))
			}
			for _, rec := range batch {
				putRecord(rec)
			}
		}
		for _, ack := range flushes {
			_ = r.store.Sync()
			close(ack)
		}
	}
	if !r.abort.Load() {
		_ = r.store.Sync()
	}
}

// offer enqueues one record without ever blocking; full queue → drop+count.
// Dropped records go back to the pool immediately.
func (r *Recorder) offer(rec *Record) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		r.dropped.Add(1)
		putRecord(rec)
		return
	}
	select {
	case r.ch <- recorderItem{rec: rec}:
	default:
		r.dropped.Add(1)
		putRecord(rec)
	}
}

// Drain blocks until every record enqueued before the call is appended and
// the journal is synced. No-op after Close or before Start.
func (r *Recorder) Drain() {
	r.mu.RLock()
	if r.closed || !r.started {
		r.mu.RUnlock()
		return
	}
	ack := make(chan struct{})
	r.ch <- recorderItem{flush: ack}
	r.mu.RUnlock()
	<-ack
}

// Close stops the recorder: the queue is drained, the journal synced, and
// subsequent events are dropped (counted). Safe to call on a never-started
// recorder (engine construction error paths). Idempotent.
func (r *Recorder) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.ch)
		if !r.started {
			// The writer never ran; release every buffered record and
			// complete the done signal ourselves.
			for item := range r.ch {
				if item.rec != nil {
					putRecord(item.rec)
				}
			}
			close(r.done)
		}
	}
	r.mu.Unlock()
	<-r.done
}

// CloseAbrupt stops the recorder WITHOUT the final sync — the
// crash-emulation path: whatever the writer buffered since the last sync
// is lost when the store is then Abort()ed.
func (r *Recorder) CloseAbrupt() {
	r.abort.Store(true)
	r.Close()
}

// recorderStats fills the recorder-owned half of Stats.
func (r *Recorder) recorderStats(st *Stats) {
	st.RecordsDropped = r.dropped.Load()
	st.AppendErrors = r.appendErr.Load()
	st.QueueDepth = len(r.ch)
}

// Stats assembles the full persistence counter snapshot.
func (r *Recorder) Stats() Stats {
	var st Stats
	r.store.storeStats(&st)
	r.recorderStats(&st)
	return st
}

// OnAllocation implements event.Observer: journal one successful mediation.
// The allocation's slices are copied — the observer contract forbids
// retaining them past the call.
func (r *Recorder) OnAllocation(a *model.Allocation, _ int) {
	rec := getRecord(RecordOutcome)
	o := &rec.Outcome
	o.QueryID = int64(a.Query.ID)
	o.Consumer = a.Query.Consumer
	o.N = a.Query.N
	o.Proposed = append(o.Proposed, a.Proposed...)
	for i, p := range a.Proposed {
		var ci, pi model.Intention
		if i < len(a.ConsumerIntentions) {
			ci = a.ConsumerIntentions[i]
		}
		if i < len(a.ProviderIntentions) {
			pi = a.ProviderIntentions[i]
		}
		o.CI = append(o.CI, ci)
		o.PI = append(o.PI, pi)
		o.Selected = append(o.Selected, a.SelectedContains(p))
	}
	r.offer(rec)
}

// OnRejection implements event.Observer: the registry records capacity
// failures (no candidates, stale selection) as zero-satisfaction outcomes
// for the consumer, so those — and only those — are journaled. Validation
// and context-cancellation rejections record nothing live and are skipped.
func (r *Recorder) OnRejection(q model.Query, reason error) {
	if !errors.Is(reason, mediator.ErrNoCandidates) && !errors.Is(reason, mediator.ErrStaleSelection) {
		return
	}
	rec := getRecord(RecordOutcome)
	rec.Outcome.QueryID = int64(q.ID)
	rec.Outcome.Consumer = q.Consumer
	rec.Outcome.N = q.N
	r.offer(rec)
}

// OnConsumerDeparted implements event.Observer.
func (r *Recorder) OnConsumerDeparted(id model.ConsumerID) {
	rec := getRecord(RecordForgetConsumer)
	rec.Forget = int64(id)
	r.offer(rec)
}

// OnProviderDeparted implements event.Observer.
func (r *Recorder) OnProviderDeparted(id model.ProviderID) {
	rec := getRecord(RecordForgetProvider)
	rec.Forget = int64(id)
	r.offer(rec)
}

// OnPolicyChange implements event.Observer: the accepted generation is
// journaled with the full spec JSON resolved through the policy source.
func (r *Recorder) OnPolicyChange(pc event.PolicyChange) {
	if r.policyFn == nil {
		return
	}
	gen, specJSON, ok := r.policyFn()
	if !ok {
		return
	}
	if gen < pc.Generation {
		gen = pc.Generation
	}
	rec := getRecord(RecordPolicyChange)
	rec.PolicyGeneration = gen
	rec.PolicyJSON = specJSON
	r.offer(rec)
}

var _ event.Observer = (*Recorder)(nil)
