package persist

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
)

// Journal segment format:
//
//	magic   [8]byte "SBQAWAL1"
//	version u16
//	seq     u64
//	records...
//
// Each record:
//
//	type    u8
//	len     u32    payload length
//	payload [len]byte
//	crc32c  u32    over type + len + payload
//
// A record whose frame is incomplete or whose checksum fails marks the end
// of usable data; restore tolerates that at the tail of the LAST segment (a
// crash tore the in-flight write) and treats it as corruption anywhere else.

var journalMagic = [8]byte{'S', 'B', 'Q', 'A', 'W', 'A', 'L', '1'}

// journalVersion is the current segment format version.
const journalVersion = 1

// segmentHeaderBytes is the size of the fixed segment header (magic +
// version + seq); a segment at exactly this size holds no records.
const segmentHeaderBytes = int64(len(journalMagic) + 2 + 8)

// maxRecordPayload bounds one journal record's payload; outcome records for
// even enormous proposal sets stay far below it.
const maxRecordPayload = 1 << 26

// RecordType tags one journal record.
type RecordType uint8

// The journal's record vocabulary.
const (
	// RecordOutcome is one mediation outcome — successful or a recorded
	// rejection (empty proposal set) — exactly the input
	// satisfaction.Registry.RecordAllocation consumed live.
	RecordOutcome RecordType = 1

	// RecordForgetConsumer and RecordForgetProvider are participant
	// departures: the registry dropped the participant's memory.
	RecordForgetConsumer RecordType = 2
	RecordForgetProvider RecordType = 3

	// RecordPolicyChange is an accepted policy generation (the spec JSON
	// plus its generation number).
	RecordPolicyChange RecordType = 4
)

// OutcomeRecord is one mediation outcome in replayable form: the exact
// arguments the live engine fed to Registry.RecordAllocation.
type OutcomeRecord struct {
	QueryID  int64
	Consumer model.ConsumerID
	N        int

	// Proposed, CI, PI, and Selected are position-aligned: the proposal
	// set with each provider's recorded intentions and whether it was
	// selected. All empty for a recorded rejection.
	Proposed []model.ProviderID
	CI       []model.Intention
	PI       []model.Intention
	Selected []bool

	// Candidates carries the consumer's intentions over the full candidate
	// set when the mediator analyzed it (AnalyzeBest); HasCandidates false
	// replays the nil-candidates path (the proposal stands in).
	HasCandidates bool
	Candidates    []model.Intention
}

// Apply replays the outcome into reg, reproducing the live recording.
func (o *OutcomeRecord) Apply(reg *satisfaction.Registry) {
	a := &model.Allocation{
		Query:              model.Query{ID: model.QueryID(o.QueryID), Consumer: o.Consumer, N: o.N},
		Proposed:           o.Proposed,
		ConsumerIntentions: o.CI,
		ProviderIntentions: o.PI,
	}
	for i, sel := range o.Selected {
		if sel {
			a.Selected = append(a.Selected, o.Proposed[i])
		}
	}
	var candidates []model.Intention
	if o.HasCandidates {
		candidates = o.Candidates
		if candidates == nil {
			candidates = []model.Intention{}
		}
	}
	reg.RecordAllocation(a, candidates)
}

// Record is one journal entry; which fields are meaningful depends on Type.
type Record struct {
	Type RecordType

	// Outcome is set for RecordOutcome.
	Outcome OutcomeRecord

	// Forget is the departed participant's ID for the forget records.
	Forget int64

	// PolicyGeneration and PolicyJSON are set for RecordPolicyChange.
	PolicyGeneration uint64
	PolicyJSON       []byte
}

// encodePayload serializes the record's payload (everything after the type
// tag) into buf and returns it.
func (r *Record) encodePayload(buf *bytes.Buffer) error {
	c := &cw{w: buf}
	switch r.Type {
	case RecordOutcome:
		o := &r.Outcome
		if len(o.CI) != len(o.Proposed) || len(o.PI) != len(o.Proposed) || len(o.Selected) != len(o.Proposed) {
			return fmt.Errorf("persist: outcome record misaligned (%d proposed, %d ci, %d pi, %d selected)",
				len(o.Proposed), len(o.CI), len(o.PI), len(o.Selected))
		}
		c.i64(o.QueryID)
		c.i64(int64(o.Consumer))
		c.u32(uint32(o.N))
		c.u32(uint32(len(o.Proposed)))
		for i, p := range o.Proposed {
			c.i64(int64(p))
			c.f64(float64(o.CI[i]))
			c.f64(float64(o.PI[i]))
			c.bool(o.Selected[i])
		}
		c.bool(o.HasCandidates)
		if o.HasCandidates {
			c.u32(uint32(len(o.Candidates)))
			for _, ci := range o.Candidates {
				c.f64(float64(ci))
			}
		}
	case RecordForgetConsumer, RecordForgetProvider:
		c.i64(r.Forget)
	case RecordPolicyChange:
		c.u64(r.PolicyGeneration)
		c.blob(r.PolicyJSON)
	default:
		return fmt.Errorf("persist: unknown record type %d", r.Type)
	}
	return c.err
}

// decodeRecordPayload parses one record payload of the given type.
func decodeRecordPayload(t RecordType, payload []byte) (*Record, error) {
	c := &cr{r: bytes.NewReader(payload)}
	rec := &Record{Type: t}
	switch t {
	case RecordOutcome:
		o := &rec.Outcome
		o.QueryID = c.i64()
		o.Consumer = model.ConsumerID(c.i64())
		o.N = int(c.u32())
		n, capHint := c.count()
		o.Proposed = make([]model.ProviderID, 0, capHint)
		o.CI = make([]model.Intention, 0, capHint)
		o.PI = make([]model.Intention, 0, capHint)
		o.Selected = make([]bool, 0, capHint)
		for i := 0; i < n && c.err == nil; i++ {
			o.Proposed = append(o.Proposed, model.ProviderID(c.i64()))
			o.CI = append(o.CI, model.Intention(c.f64()))
			o.PI = append(o.PI, model.Intention(c.f64()))
			o.Selected = append(o.Selected, c.bool())
		}
		if o.HasCandidates = c.bool(); o.HasCandidates {
			nc, candHint := c.count()
			o.Candidates = make([]model.Intention, 0, candHint)
			for i := 0; i < nc && c.err == nil; i++ {
				o.Candidates = append(o.Candidates, model.Intention(c.f64()))
			}
		}
	case RecordForgetConsumer, RecordForgetProvider:
		rec.Forget = c.i64()
	case RecordPolicyChange:
		rec.PolicyGeneration = c.u64()
		rec.PolicyJSON = c.blob()
	default:
		return nil, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, t)
	}
	if c.err != nil {
		return nil, fmt.Errorf("%w: record payload: %v", ErrCorrupt, c.err)
	}
	return rec, nil
}

// Apply replays one record into reg.
func (r *Record) Apply(reg *satisfaction.Registry) {
	switch r.Type {
	case RecordOutcome:
		r.Outcome.Apply(reg)
	case RecordForgetConsumer:
		reg.ForgetConsumer(model.ConsumerID(r.Forget))
	case RecordForgetProvider:
		reg.ForgetProvider(model.ProviderID(r.Forget))
	}
	// Policy records carry no registry state; the restorer consumes them.
}

// segmentWriter appends records to one journal segment file.
type segmentWriter struct {
	f     *os.File
	bw    *bufio.Writer
	seq   uint64
	bytes int64
	// encBuf and frame are reused across appends.
	encBuf bytes.Buffer
	frame  [5]byte
}

// createSegment opens a fresh segment file and writes its header. The
// header is flushed and fsynced immediately: a crash at any later point
// leaves a segment that parses up to its last complete record, never a
// header-less file.
func createSegment(path string, seq uint64) (*segmentWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &segmentWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), seq: seq}
	c := &cw{w: w.bw}
	c.write(journalMagic[:])
	c.u16(journalVersion)
	c.u64(seq)
	if c.err == nil {
		if err := w.bw.Flush(); err != nil {
			c.err = err
		} else {
			c.err = f.Sync()
		}
	}
	if c.err != nil {
		f.Close()
		return nil, c.err
	}
	w.bytes = segmentHeaderBytes
	return w, nil
}

// append frames and buffers one record.
func (w *segmentWriter) append(rec *Record) error {
	w.encBuf.Reset()
	if err := rec.encodePayload(&w.encBuf); err != nil {
		return err
	}
	payload := w.encBuf.Bytes()
	if len(payload) > maxRecordPayload {
		return fmt.Errorf("persist: record payload %d bytes exceeds limit", len(payload))
	}
	w.frame[0] = byte(rec.Type)
	w.frame[1] = byte(len(payload))
	w.frame[2] = byte(len(payload) >> 8)
	w.frame[3] = byte(len(payload) >> 16)
	w.frame[4] = byte(len(payload) >> 24)
	crc := crc32.Update(0, crcTable, w.frame[:])
	crc = crc32.Update(crc, crcTable, payload)
	if _, err := w.bw.Write(w.frame[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	c := &cw{w: w.bw}
	c.u32(crc)
	if c.err != nil {
		return c.err
	}
	w.bytes += int64(len(w.frame) + len(payload) + 4)
	return nil
}

// sync flushes the buffer and fsyncs the segment.
func (w *segmentWriter) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// close syncs and closes the segment.
func (w *segmentWriter) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// abort closes the file WITHOUT flushing the buffer — the crash-emulation
// path: everything buffered since the last sync is lost, exactly like a
// process kill.
func (w *segmentWriter) abort() { w.f.Close() }

// errTorn marks a torn (incomplete or checksum-failing) record at the point
// reading stopped. It wraps ErrCorrupt; the restorer downgrades it to a
// clean stop when it occurs at the tail of the final segment.
var errTorn = fmt.Errorf("%w: torn record", ErrCorrupt)

// readSegment streams the records of one segment file to fn. It returns the
// segment's sequence number. A torn record stops reading and returns an
// error wrapping errTorn; fn errors abort and propagate.
func readSegment(path string, fn func(*Record) error) (seq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		// Incomplete header: a crash tore the segment before its (synced)
		// header landed — tolerable at the journal tail, like any torn
		// record. A complete-but-wrong header below is real corruption.
		return 0, fmt.Errorf("%s: %w", path, errTorn)
	}
	if magic != journalMagic {
		return 0, fmt.Errorf("%s: %w: bad segment magic %q", path, ErrCorrupt, magic[:])
	}
	h := &cr{r: br}
	if v := h.u16(); h.err == nil && v != journalVersion {
		return 0, fmt.Errorf("%s: %w: unsupported segment version %d", path, ErrCorrupt, v)
	}
	seq = h.u64()
	if h.err != nil {
		return 0, fmt.Errorf("%s: %w", path, errTorn)
	}
	var frame [5]byte
	for {
		if _, err := io.ReadFull(br, frame[:1]); err == io.EOF {
			return seq, nil // clean end of segment
		} else if err != nil {
			return seq, fmt.Errorf("%s: %w", path, errTorn)
		}
		if _, err := io.ReadFull(br, frame[1:]); err != nil {
			return seq, fmt.Errorf("%s: %w", path, errTorn)
		}
		payloadLen := uint32(frame[1]) | uint32(frame[2])<<8 | uint32(frame[3])<<16 | uint32(frame[4])<<24
		if payloadLen > maxRecordPayload {
			return seq, fmt.Errorf("%s: %w", path, errTorn)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return seq, fmt.Errorf("%s: %w", path, errTorn)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return seq, fmt.Errorf("%s: %w", path, errTorn)
		}
		stored := uint32(crcBuf[0]) | uint32(crcBuf[1])<<8 | uint32(crcBuf[2])<<16 | uint32(crcBuf[3])<<24
		crc := crc32.Update(0, crcTable, frame[:])
		crc = crc32.Update(crc, crcTable, payload)
		if stored != crc {
			return seq, fmt.Errorf("%s: %w", path, errTorn)
		}
		rec, err := decodeRecordPayload(RecordType(frame[0]), payload)
		if err != nil {
			// Framing and checksum held but the payload is malformed:
			// treat like a torn record — the boundary is still intact, so
			// a tail-position tolerance applies the same way.
			return seq, fmt.Errorf("%s: %w", path, errTorn)
		}
		if err := fn(rec); err != nil {
			return seq, err
		}
	}
}

// isTorn reports whether err marks a torn record (tolerable at the journal
// tail).
func isTorn(err error) bool { return errors.Is(err, errTorn) }
