package persist

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
)

// outcomeRec builds a minimal one-provider outcome record for consumer c.
func outcomeRec(qid int64, c model.ConsumerID, p model.ProviderID) *Record {
	return &Record{Type: RecordOutcome, Outcome: OutcomeRecord{
		QueryID:  qid,
		Consumer: c,
		N:        1,
		Proposed: []model.ProviderID{p},
		CI:       []model.Intention{0.5},
		PI:       []model.Intention{0.5},
		Selected: []bool{true},
	}}
}

func TestRotateIfDirtyAndSealedSegmentStreaming(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Restore(satisfaction.NewRegistry(10)); err != nil {
		t.Fatal(err)
	}

	// A clean active segment does not rotate: no empty-file accretion.
	if rotated, err := st.RotateIfDirty(); err != nil || rotated {
		t.Fatalf("clean rotate = (%v, %v), want (false, nil)", rotated, err)
	}
	if got := st.ActiveSegmentBytes(); got != 0 {
		t.Fatalf("clean ActiveSegmentBytes = %d, want 0", got)
	}

	if err := st.Append(outcomeRec(1, 7, 3)); err != nil {
		t.Fatal(err)
	}
	if got := st.ActiveSegmentBytes(); got <= 0 {
		t.Fatalf("dirty ActiveSegmentBytes = %d, want > 0", got)
	}
	if rotated, err := st.RotateIfDirty(); err != nil || !rotated {
		t.Fatalf("dirty rotate = (%v, %v), want (true, nil)", rotated, err)
	}

	seqs := st.SealedSegmentSeqs()
	if len(seqs) != 1 {
		t.Fatalf("sealed seqs = %v, want exactly one", seqs)
	}

	// Streaming the sealed segment yields the on-disk bytes verbatim.
	rc, size, err := st.OpenSealedSegment(seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(streamed)) != size {
		t.Fatalf("streamed %d bytes, size reported %d", len(streamed), size)
	}
	disk, err := os.ReadFile(SegmentFilePath(dir, seqs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if string(streamed) != string(disk) {
		t.Fatal("streamed segment differs from on-disk bytes")
	}

	// An unsealed (active) or unknown seq is refused.
	if _, _, err := st.OpenSealedSegment(seqs[0] + 1); err == nil {
		t.Fatal("OpenSealedSegment accepted the active segment")
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed store: rotate is a quiet no-op, not an error (shutdown race).
	if rotated, err := st.RotateIfDirty(); err != nil || rotated {
		t.Fatalf("rotate after close = (%v, %v), want (false, nil)", rotated, err)
	}
}

func TestValidateSegmentFile(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Restore(satisfaction.NewRegistry(10)); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := st.Append(outcomeRec(i, model.ConsumerID(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.RotateIfDirty(); err != nil {
		t.Fatal(err)
	}
	seq := st.SealedSegmentSeqs()[0]
	st.Close()

	path := SegmentFilePath(dir, seq)
	gotSeq, records, err := ValidateSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq || records != 5 {
		t.Fatalf("validate = (seq %d, %d records), want (%d, 5)", gotSeq, records, seq)
	}

	// A truncated copy — a torn transfer — must be rejected, not tolerated.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.wal")
	if err := os.WriteFile(torn, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ValidateSegmentFile(torn); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn segment validated: %v", err)
	}
}

func TestReplayDirFiltersByConsumer(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	liveReg := satisfaction.NewRegistry(satisfaction.DefaultWindow)
	if _, err := st.Restore(liveReg); err != nil {
		t.Fatal(err)
	}

	// Interleave two consumers' outcomes across two sealed segments, plus
	// record kinds a range replay must skip (policy change, provider
	// forget).
	for i := int64(0); i < 10; i++ {
		c := model.ConsumerID(i % 2)
		rec := outcomeRec(i+1, c, model.ProviderID(i%3))
		rec.Apply(liveReg)
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			if err := st.Append(&Record{Type: RecordPolicyChange, PolicyGeneration: 1, PolicyJSON: []byte(`{}`)}); err != nil {
				t.Fatal(err)
			}
			if _, err := st.RotateIfDirty(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := st.RotateIfDirty(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Replay only consumer 1's records into a fresh registry.
	got := satisfaction.NewRegistry(satisfaction.DefaultWindow)
	replayed, err := ReplayDir(dir, func(rec *Record) bool {
		switch rec.Type {
		case RecordOutcome:
			return rec.Outcome.Consumer == 1
		case RecordForgetConsumer:
			return model.ConsumerID(rec.Forget) == 1
		default:
			return false
		}
	}, got)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 5 {
		t.Fatalf("replayed %d records, want 5", replayed)
	}
	ids := got.ConsumerIDs()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("replayed consumers = %v, want [1]", ids)
	}
	// The filtered replay reproduces the live registry's memory for the
	// kept consumer exactly.
	if a, b := got.ConsumerSatisfaction(1), liveReg.ConsumerSatisfaction(1); a != b {
		t.Fatalf("replayed δs(1) = %v, live %v", a, b)
	}
}
