package persist

// Low-level little-endian codec helpers shared by the snapshot and journal
// encoders. Both sides carry a sticky error so encode/decode sequences read
// linearly; decoders additionally bound every length they trust, so corrupt
// or adversarial input (the fuzz targets) can make them fail but never make
// them allocate unboundedly or panic.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// maxBlob bounds any single length-prefixed byte field a decoder will
// allocate for (policy specs, allocator states). Real blobs are tiny.
const maxBlob = 1 << 24

// cw is a sticky-error little-endian writer.
type cw struct {
	w       io.Writer
	err     error
	scratch [8]byte
}

func (c *cw) write(b []byte) {
	if c.err != nil {
		return
	}
	_, c.err = c.w.Write(b)
}

func (c *cw) u8(v uint8) { c.scratch[0] = v; c.write(c.scratch[:1]) }
func (c *cw) u16(v uint16) {
	binary.LittleEndian.PutUint16(c.scratch[:2], v)
	c.write(c.scratch[:2])
}
func (c *cw) u32(v uint32) {
	binary.LittleEndian.PutUint32(c.scratch[:4], v)
	c.write(c.scratch[:4])
}
func (c *cw) u64(v uint64) {
	binary.LittleEndian.PutUint64(c.scratch[:8], v)
	c.write(c.scratch[:8])
}
func (c *cw) i64(v int64)   { c.u64(uint64(v)) }
func (c *cw) f64(v float64) { c.u64(math.Float64bits(v)) }
func (c *cw) bool(v bool) {
	if v {
		c.u8(1)
	} else {
		c.u8(0)
	}
}

// blob writes a u32 length prefix followed by the bytes.
func (c *cw) blob(b []byte) {
	c.u32(uint32(len(b)))
	c.write(b)
}

// cr is a sticky-error little-endian reader.
type cr struct {
	r       io.Reader
	err     error
	scratch [8]byte
}

// fail records the first error (mapping io.EOF mid-structure to
// ErrUnexpectedEOF so torn input is distinguishable from clean end).
func (c *cr) fail(err error) {
	if c.err == nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		c.err = err
	}
}

func (c *cr) read(b []byte) {
	if c.err != nil {
		return
	}
	if _, err := io.ReadFull(c.r, b); err != nil {
		c.fail(err)
	}
}

func (c *cr) u8() uint8 {
	c.read(c.scratch[:1])
	if c.err != nil {
		return 0
	}
	return c.scratch[0]
}

func (c *cr) u16() uint16 {
	c.read(c.scratch[:2])
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(c.scratch[:2])
}

func (c *cr) u32() uint32 {
	c.read(c.scratch[:4])
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(c.scratch[:4])
}

func (c *cr) u64() uint64 {
	c.read(c.scratch[:8])
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(c.scratch[:8])
}

func (c *cr) i64() int64   { return int64(c.u64()) }
func (c *cr) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cr) bool() bool {
	switch c.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		c.fail(fmt.Errorf("%w: bad bool", ErrCorrupt))
		return false
	}
}

// blob reads a u32-length-prefixed byte field, bounding the allocation.
func (c *cr) blob() []byte {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	if n > maxBlob {
		c.fail(fmt.Errorf("%w: blob of %d bytes exceeds limit", ErrCorrupt, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	c.read(b)
	if c.err != nil {
		return nil
	}
	return b
}

// count reads a u32 element count and sanity-bounds the decoder's initial
// allocation: the caller passes the minimum encoded size of one element, and
// the returned capacity hint never exceeds a fixed chunk, so a forged count
// cannot allocate gigabytes before the data runs out.
func (c *cr) count() (n int, capHint int) {
	v := c.u32()
	if c.err != nil {
		return 0, 0
	}
	n = int(v)
	capHint = n
	if capHint > 4096 {
		capHint = 4096
	}
	return n, capHint
}
