// Package boinc implements the volunteer-computing world the SbQA demo
// evaluates on: projects (consumers) issue replicated computational queries
// that a mediator allocates to volunteers (providers). The world runs on the
// deterministic event simulator and supports the demo's two regimes:
//
//   - captive — participants cannot leave (Scenarios 1, 3, 5, 6);
//   - autonomous — a volunteer quits when its satisfaction drops below 0.35
//     and a project stops using the platform below 0.5 (Scenarios 2, 4),
//     shrinking the system's total capacity exactly as the paper warns.
package boinc

import (
	"context"
	"fmt"

	"sbqa/internal/alloc"
	"sbqa/internal/intention"
	"sbqa/internal/mediator"
	"sbqa/internal/metrics"
	"sbqa/internal/model"
	"sbqa/internal/reputation"
	"sbqa/internal/sim"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// Mode selects the autonomy regime.
type Mode int

// Autonomy regimes.
const (
	// Captive participants never leave, whatever their satisfaction
	// (dedicated grid hardware; Scenario 1's assumption).
	Captive Mode = iota
	// Autonomous participants leave when chronically dissatisfied
	// (volunteer computing; Scenario 2's assumption).
	Autonomous
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Captive {
		return "captive"
	}
	return "autonomous"
}

// Config assembles a world.
type Config struct {
	// Workload describes the population; see workload.DefaultConfig.
	Workload workload.Config

	// Mode selects captive or autonomous participants.
	Mode Mode

	// Duration is the simulated run length in seconds.
	Duration float64

	// SampleEvery is the gauge sampling period in seconds.
	SampleEvery float64

	// Window is the satisfaction memory length k.
	Window int

	// ProviderLeaveThreshold and ConsumerLeaveThreshold are the demo's
	// departure thresholds (0.35 and 0.5). Only used in Autonomous mode.
	ProviderLeaveThreshold float64
	ConsumerLeaveThreshold float64

	// MinInteractions is how many remembered interactions a participant
	// needs before it judges the system (prevents cold-start flight:
	// Definition 2 reports 0 for a provider that has not yet won a single
	// proposal, which says nothing until the window holds real evidence).
	// Defaults to half the window.
	MinInteractions int

	// Warmup is the simulated time before departure decisions activate,
	// letting the adaptive ω reach steady state. Defaults to 20% of
	// Duration.
	Warmup float64

	// DepartureGrace is how long a participant's satisfaction must stay
	// below its threshold before it actually leaves. Definition 2 reports
	// 0 the instant a provider's last win slides out of its window, so
	// instantaneous judgment would evict providers on transient flickers;
	// participants leave on chronic dissatisfaction. Defaults to 10% of
	// Duration.
	DepartureGrace float64

	// RejoinAfter, when > 0, brings departed participants back after that
	// many seconds with a fresh memory (an extension; the demo's
	// participants leave for good).
	RejoinAfter float64

	// UtilizationHorizon is the backlog drain time (seconds) mapped to
	// utilization 1.0. Defaults to 4× the mean service time.
	UtilizationHorizon float64

	// NetworkLatency is the one-way message delay distribution; nil means
	// U[0.01, 0.05) seconds.
	NetworkLatency stats.Dist

	// ConsumerPolicy builds each project's intention policy; nil means
	// reputation-blended preferences (γ = 0.7). Scenario 5 swaps in
	// response-time seeking.
	ConsumerPolicy func(p workload.Project) intention.ConsumerPolicy

	// ProviderPolicy builds each volunteer's intention policy; nil means
	// preference expression — the BOINC semantics, where a volunteer
	// states the share of resources it devotes to each project. Scenario 5
	// swaps in load-only; the SQLB adaptive preference/load trade is
	// available as intention.AdaptiveProvider.
	ProviderPolicy func(v workload.Volunteer) intention.ProviderPolicy

	// EligibleFn optionally restricts which volunteers can perform a
	// query; nil means everyone can (all BOINC apps installed).
	EligibleFn func(p model.ProviderID, q model.Query) bool

	// AnalyzeBest turns on optimum-relative allocation-satisfaction
	// analysis (O(|P_q|) intention calls per query).
	AnalyzeBest bool

	// EnforceShares makes volunteers schedule each project's work at the
	// project's resource share of their capacity (BOINC's native
	// semantics, the paper's §IV motivating example): idle shares are
	// wasted. Without enforcement, volunteers run one FIFO queue at full
	// speed and express their affinities as intentions instead.
	EnforceShares bool

	// OnComplete, when set, is invoked for every fully served query with
	// its end-to-end response time (custom experiments hook per-phase or
	// per-project measurements here).
	OnComplete func(q model.Query, responseTime float64)

	// OnIssue, when set, is invoked for every query a project issues.
	OnIssue func(q model.Query)

	// ReplicationFn, when set, decides each query's replication factor at
	// issue time, overriding the project's static Replication. It receives
	// the project's static factor, its current satisfaction δs(c), and its
	// recent validation-failure rate (EWMA in [0,1]). This is the
	// satisfaction-adaptive replication extension (SbQR-style): replicate
	// more when results have been failing validation, less when the
	// population has proven trustworthy.
	ReplicationFn func(base int, satisfaction, failureRate float64) int

	// Seed drives all run randomness (arrivals, work, network, policies).
	Seed uint64
}

// DefaultConfig returns a ready-to-run configuration: the demo population
// with the given number of volunteers, captive mode, 2000 simulated seconds.
func DefaultConfig(volunteers int, seed uint64) Config {
	return Config{
		Workload:               workload.DefaultConfig(volunteers, seed),
		Mode:                   Captive,
		Duration:               2000,
		SampleEvery:            20,
		Window:                 satisfactionWindow,
		ProviderLeaveThreshold: 0.35,
		ConsumerLeaveThreshold: 0.5,
		Seed:                   seed,
	}
}

const satisfactionWindow = 100

// World is one runnable simulation instance.
type World struct {
	cfg Config

	engine *sim.Engine
	net    *sim.Network
	med    *mediator.Mediator
	col    *metrics.Collector

	projects   []*Project
	volunteers []*Volunteer

	pending map[model.QueryID]*queryState
	nextQID model.QueryID
}

// queryState tracks one in-flight query until its validation quorum is
// reached (or every replica has responded without reaching it).
type queryState struct {
	project   *Project
	quorum    int // valid results needed
	expected  int // replicas dispatched
	valid     int
	responses int
	issuedAt  float64
}

// NewWorld generates the population and wires the simulation. The same
// population (same workload seed) can be handed to different allocators for
// head-to-head comparisons.
func NewWorld(allocator alloc.Allocator, cfg Config) (*World, error) {
	pop, err := workload.Generate(cfg.Workload)
	if err != nil {
		return nil, fmt.Errorf("boinc: %w", err)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2000
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = cfg.Duration / 100
	}
	if cfg.Window < 1 {
		cfg.Window = satisfactionWindow
	}
	if cfg.MinInteractions < 1 {
		cfg.MinInteractions = cfg.Window / 2
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.2 * cfg.Duration
	}
	if cfg.DepartureGrace <= 0 {
		cfg.DepartureGrace = 0.1 * cfg.Duration
	}
	if cfg.ProviderLeaveThreshold <= 0 {
		cfg.ProviderLeaveThreshold = 0.35
	}
	if cfg.ConsumerLeaveThreshold <= 0 {
		cfg.ConsumerLeaveThreshold = 0.5
	}
	if cfg.UtilizationHorizon <= 0 {
		meanService := pop.WorkDist.Mean() // per unit capacity ~1
		cfg.UtilizationHorizon = 4 * meanService
	}
	if cfg.NetworkLatency == nil {
		cfg.NetworkLatency = stats.Uniform{Lo: 0.01, Hi: 0.05}
	}
	if cfg.ConsumerPolicy == nil {
		cfg.ConsumerPolicy = func(workload.Project) intention.ConsumerPolicy {
			return intention.ReputationBlendConsumer{Gamma: 0.7}
		}
	}
	if cfg.ProviderPolicy == nil {
		cfg.ProviderPolicy = func(workload.Volunteer) intention.ProviderPolicy {
			return intention.PreferenceProvider{}
		}
	}

	// Offset the world stream from the workload-generation stream so the
	// two draws stay independent under the same user seed.
	root := stats.NewRNG(cfg.Seed ^ 0x5b0a_c0de_0001)
	w := &World{
		cfg:     cfg,
		engine:  sim.NewEngine(),
		col:     metrics.NewCollector(),
		pending: make(map[model.QueryID]*queryState),
	}
	w.net = sim.NewNetwork(cfg.NetworkLatency, root.Split())
	w.med = mediator.New(allocator, mediator.Config{Window: cfg.Window, AnalyzeBest: cfg.AnalyzeBest})

	for _, vp := range pop.Volunteers {
		v := &Volunteer{
			world:       w,
			id:          model.ProviderID(vp.Index),
			capacity:    vp.Capacity,
			priceFactor: vp.PriceFactor,
			malicious:   vp.Malicious,
			prefs:       vp.ProjectPref,
			policy:      cfg.ProviderPolicy(vp),
			online:      true,
			belowSince:  -1,
			shares:      sharesFromPrefs(vp.ProjectPref),
			busyUntilC:  make([]float64, len(pop.Projects)),
			pendingC:    make([]float64, len(pop.Projects)),
		}
		w.volunteers = append(w.volunteers, v)
		w.med.RegisterProvider(v)
	}
	for _, pp := range pop.Projects {
		p := &Project{
			world:       w,
			id:          model.ConsumerID(pp.Index),
			name:        pp.Name,
			popularity:  pp.Popularity,
			arrivalRate: pp.ArrivalRate,
			replication: pp.Replication,
			delayTarget: pp.DelayTarget,
			policy:      cfg.ConsumerPolicy(pp),
			prefs:       pp.VolunteerPref,
			quorum:      pp.Quorum,
			book:        reputation.NewBook(reputation.DefaultAlpha),
			online:      true,
			belowSince:  -1,
			arrival:     root.Split(),
			work:        root.Split(),
		}
		w.projects = append(w.projects, p)
		w.med.RegisterConsumer(p)
	}
	return w, nil
}

// Engine exposes the simulation engine (tests and custom scenarios).
func (w *World) Engine() *sim.Engine { return w.engine }

// Mediator exposes the mediation pipeline.
func (w *World) Mediator() *mediator.Mediator { return w.med }

// Collector exposes the run's metrics.
func (w *World) Collector() *metrics.Collector { return w.col }

// Projects returns the world's projects.
func (w *World) Projects() []*Project { return w.projects }

// Volunteers returns the world's volunteers.
func (w *World) Volunteers() []*Volunteer { return w.volunteers }

// Config returns the effective configuration after defaulting.
func (w *World) Config() Config { return w.cfg }

// Run executes the simulation for the configured duration and returns the
// summarized result under the allocator's name.
func (w *World) Run() metrics.Result {
	// Kick off arrivals and sampling.
	for _, p := range w.projects {
		w.scheduleArrival(p)
	}
	w.scheduleSample()
	w.engine.Run(w.cfg.Duration)
	return w.col.Summarize(w.med.Allocator().Name(), w.cfg.Duration, 0.25)
}

// scheduleArrival books the project's next query issue via the shared
// workload.Poisson process (same draw sequence as the historical inline
// expression; pinned by TestPoissonMatchesHistoricalInlineDraw).
func (w *World) scheduleArrival(p *Project) {
	if !p.online || p.arrivalRate <= 0 {
		return
	}
	gap := workload.Poisson{Rate: p.arrivalRate}.Next(w.engine.Now(), p.arrival)
	w.engine.Schedule(gap, func() {
		if !p.online {
			return
		}
		w.issue(p)
		w.scheduleArrival(p)
	})
}

// issue creates one query and sends it to the mediator.
func (w *World) issue(p *Project) {
	w.nextQID++
	n := p.replication
	if w.cfg.ReplicationFn != nil {
		n = w.cfg.ReplicationFn(p.replication, p.Satisfaction(), p.failureRate)
		if n < 1 {
			n = 1
		}
	}
	q := model.Query{
		ID:       w.nextQID,
		Consumer: p.id,
		Class:    int(p.id),
		N:        n,
		Work:     p.work.ExpFloat64() * w.meanWork(),
		IssuedAt: w.engine.Now(),
	}
	if q.Work <= 0 {
		q.Work = w.meanWork()
	}
	if w.cfg.OnIssue != nil {
		w.cfg.OnIssue(q)
	}
	w.net.Send(w.engine, func() { w.mediate(q) })
}

// meanWork returns the configured mean service demand.
func (w *World) meanWork() float64 {
	if w.cfg.Workload.WorkDist != nil {
		return w.cfg.Workload.WorkDist.Mean()
	}
	return 10
}

// mediate runs the pipeline for q and dispatches the allocation.
func (w *World) mediate(q model.Query) {
	w.col.Issued++
	a, err := w.med.Mediate(context.Background(), w.engine.Now(), q)
	if err != nil {
		w.col.Unallocated++
		w.afterMediation(q, nil)
		return
	}
	w.col.MediationContacts.Add(float64(len(a.Proposed)))

	// Interactive techniques (SbQA, Economic) pay an extra round trip to
	// collect intentions or bids before dispatching.
	extra := 0.0
	if ia, ok := w.med.Allocator().(interface{ Interactive() bool }); ok && ia.Interactive() {
		extra = w.net.RoundTrip()
	}

	st := &queryState{project: w.projectByID(q.Consumer), issuedAt: q.IssuedAt, expected: len(a.Selected)}
	st.quorum = q.N
	if st.project != nil && st.project.quorum < st.quorum {
		// The static quorum caps how many matching results are required;
		// adaptive replication may dispatch more replicas than that for
		// safety margin, never fewer matches.
		st.quorum = st.project.quorum
	}
	if st.quorum > st.expected {
		st.quorum = st.expected
	}
	if st.quorum < 1 {
		st.quorum = 1
	}
	w.pending[q.ID] = st
	for _, pid := range a.Selected {
		v := w.volunteerByID(pid)
		if v == nil {
			continue
		}
		delay := extra + w.net.Delay()
		w.engine.Schedule(delay, func() { v.enqueue(q) })
	}
	w.afterMediation(q, a)
}

// resultArrived handles one result reaching the project. Invalid results
// (from malicious volunteers) ruin the sender's reputation and do not count
// toward the validation quorum; the query completes at the quorum-th valid
// result and fails if every replica responds without reaching it.
func (w *World) resultArrived(q model.Query, from model.ProviderID, valid bool) {
	st, ok := w.pending[q.ID]
	if !ok {
		return
	}
	now := w.engine.Now()
	latency := now - st.issuedAt
	if st.project != nil {
		quality := 0.0 // an invalid result is a worst-possible interaction
		if valid {
			quality = reputation.QualityFromLatency(latency, st.project.delayTarget)
		}
		st.project.book.Observe(from, quality)
	}
	st.responses++
	if valid {
		st.valid++
	}
	switch {
	case st.valid >= st.quorum:
		w.col.ResponseTime.Add(latency)
		w.col.Completed++
		delete(w.pending, q.ID)
		if st.project != nil {
			st.project.observeValidation(true)
		}
		if w.cfg.OnComplete != nil {
			w.cfg.OnComplete(q, latency)
		}
	case st.responses >= st.expected:
		w.col.ValidationFailures++
		delete(w.pending, q.ID)
		if st.project != nil {
			st.project.observeValidation(false)
		}
	}
}

// afterMediation applies the autonomy rules to everyone whose satisfaction
// window just changed.
func (w *World) afterMediation(q model.Query, a *model.Allocation) {
	if w.cfg.Mode != Autonomous || w.engine.Now() < w.cfg.Warmup {
		return
	}
	if p := w.projectByID(q.Consumer); p != nil && p.online {
		w.checkConsumerDeparture(p)
	}
	if a == nil {
		return
	}
	for _, pid := range a.Proposed {
		if v := w.volunteerByID(pid); v != nil && v.online {
			w.checkProviderDeparture(v)
		}
	}
}

// checkProviderDeparture applies the chronic-dissatisfaction rule to one
// volunteer: once its window holds enough evidence and δs(p) stays below the
// threshold for the grace period, it quits.
func (w *World) checkProviderDeparture(v *Volunteer) {
	tr := w.med.Registry().Provider(v.id)
	sat := tr.Satisfaction()
	if tr.Interactions() < w.cfg.MinInteractions || sat >= w.cfg.ProviderLeaveThreshold {
		v.belowSince = -1
		return
	}
	now := w.engine.Now()
	if v.belowSince < 0 {
		v.belowSince = now
		return
	}
	if now-v.belowSince >= w.cfg.DepartureGrace {
		w.departProvider(v, sat)
	}
}

// checkConsumerDeparture applies the chronic-dissatisfaction rule to one
// project.
func (w *World) checkConsumerDeparture(p *Project) {
	tr := w.med.Registry().Consumer(p.id)
	sat := tr.Satisfaction()
	if tr.Interactions() < w.cfg.MinInteractions || sat >= w.cfg.ConsumerLeaveThreshold {
		p.belowSince = -1
		return
	}
	now := w.engine.Now()
	if p.belowSince < 0 {
		p.belowSince = now
		return
	}
	if now-p.belowSince >= w.cfg.DepartureGrace {
		w.departConsumer(p, sat)
	}
}

// departProvider takes a volunteer offline. Its queued tasks still finish
// (the host completes what it started), but it receives no new queries.
func (w *World) departProvider(v *Volunteer, sat float64) {
	v.online = false
	v.leftAt = w.engine.Now()
	w.med.UnregisterProvider(v.id)
	w.col.RecordDeparture(metrics.Departure{
		Time: v.leftAt, Provider: v.id, Consumer: model.NoConsumer, Satisfaction: sat,
	})
	if w.cfg.RejoinAfter > 0 {
		w.engine.Schedule(w.cfg.RejoinAfter, func() { w.rejoinProvider(v) })
	}
}

// rejoinProvider brings a departed volunteer back with fresh memory.
func (w *World) rejoinProvider(v *Volunteer) {
	if v.online {
		return
	}
	v.online = true
	w.med.RegisterProvider(v)
}

// departConsumer stops a project from issuing queries.
func (w *World) departConsumer(p *Project, sat float64) {
	p.online = false
	p.leftAt = w.engine.Now()
	w.med.UnregisterConsumer(p.id)
	w.col.RecordDeparture(metrics.Departure{
		Time: p.leftAt, Consumer: p.id, Provider: model.NoProvider, Satisfaction: sat,
	})
	if w.cfg.RejoinAfter > 0 {
		w.engine.Schedule(w.cfg.RejoinAfter, func() { w.rejoinConsumer(p) })
	}
}

// rejoinConsumer brings a departed project back and restarts its arrivals.
func (w *World) rejoinConsumer(p *Project) {
	if p.online {
		return
	}
	p.online = true
	w.med.RegisterConsumer(p)
	w.scheduleArrival(p)
}

// scheduleSample books the recurring gauge sampling.
func (w *World) scheduleSample() {
	var tick func()
	tick = func() {
		w.sample()
		if w.engine.Now() < w.cfg.Duration {
			w.engine.Schedule(w.cfg.SampleEvery, tick)
		}
	}
	w.engine.Schedule(w.cfg.SampleEvery, tick)
}

// sample records one gauge row over the online population and runs the
// periodic departure sweep (participants no longer being proposed queries
// would otherwise never be re-examined).
func (w *World) sample() {
	now := w.engine.Now()
	autonomy := w.cfg.Mode == Autonomous && now >= w.cfg.Warmup
	s := metrics.Sample{T: now}
	for _, p := range w.projects {
		if !p.online {
			continue
		}
		if autonomy {
			w.checkConsumerDeparture(p)
			if !p.online {
				continue
			}
		}
		s.ConsumerSats = append(s.ConsumerSats, p.Satisfaction())
		s.OnlineConsumers++
	}
	for _, v := range w.volunteers {
		if !v.online {
			continue
		}
		if autonomy {
			w.checkProviderDeparture(v)
			if !v.online {
				continue
			}
		}
		s.ProviderSats = append(s.ProviderSats, v.Satisfaction())
		s.Utilizations = append(s.Utilizations, v.Utilization(now))
		s.PendingWork = append(s.PendingWork, v.pendingWork)
		s.OnlineProviders++
	}
	w.col.AddSample(s)
}

func (w *World) projectByID(id model.ConsumerID) *Project {
	if int(id) < 0 || int(id) >= len(w.projects) {
		return nil
	}
	return w.projects[id]
}

func (w *World) volunteerByID(id model.ProviderID) *Volunteer {
	if int(id) < 0 || int(id) >= len(w.volunteers) {
		return nil
	}
	return w.volunteers[id]
}

// SetVolunteerPrefs overrides one volunteer's per-project preferences
// (Scenario 7 plants probe participants with scripted interests). Values are
// clamped to [-1, 1]; the slice is copied.
func (w *World) SetVolunteerPrefs(id model.ProviderID, prefs []float64) {
	v := w.volunteerByID(id)
	if v == nil {
		return
	}
	v.prefs = clampPrefs(prefs)
	v.shares = sharesFromPrefs(v.prefs)
}

// SetArrivalRate changes a project's query arrival rate mid-run (0 stops it
// issuing — e.g. an advertising campaign ending, the paper's Google AdWords
// motivation, or a project finishing its batch). Takes effect from the next
// arrival booking.
func (w *World) SetArrivalRate(id model.ConsumerID, rate float64) {
	p := w.projectByID(id)
	if p == nil {
		return
	}
	restart := p.arrivalRate <= 0 && rate > 0 && p.online
	p.arrivalRate = rate
	if restart {
		w.scheduleArrival(p)
	}
}

// SetProjectPrefs overrides one project's per-volunteer preferences.
func (w *World) SetProjectPrefs(id model.ConsumerID, prefs []float64) {
	p := w.projectByID(id)
	if p == nil {
		return
	}
	p.prefs = clampPrefs(prefs)
}

// SetVolunteerPolicy overrides one volunteer's intention policy.
func (w *World) SetVolunteerPolicy(id model.ProviderID, policy intention.ProviderPolicy) {
	if v := w.volunteerByID(id); v != nil && policy != nil {
		v.policy = policy
	}
}

// SetProjectPolicy overrides one project's intention policy.
func (w *World) SetProjectPolicy(id model.ConsumerID, policy intention.ConsumerPolicy) {
	if p := w.projectByID(id); p != nil && policy != nil {
		p.policy = policy
	}
}

func clampPrefs(prefs []float64) []float64 {
	out := make([]float64, len(prefs))
	for i, v := range prefs {
		if v < -1 {
			v = -1
		}
		if v > 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

// OnlineVolunteers counts volunteers still online.
func (w *World) OnlineVolunteers() int {
	n := 0
	for _, v := range w.volunteers {
		if v.online {
			n++
		}
	}
	return n
}

// OnlineProjects counts projects still online.
func (w *World) OnlineProjects() int {
	n := 0
	for _, p := range w.projects {
		if p.online {
			n++
		}
	}
	return n
}
