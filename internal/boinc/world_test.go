package boinc

import (
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/intention"
	"sbqa/internal/model"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// smallConfig returns a quick-running world configuration.
func smallConfig(mode Mode, seed uint64) Config {
	cfg := DefaultConfig(40, seed)
	cfg.Mode = mode
	cfg.Duration = 300
	cfg.SampleEvery = 10
	cfg.Window = 40
	return cfg
}

func TestWorldConstruction(t *testing.T) {
	w, err := NewWorld(alloc.NewCapacity(), smallConfig(Captive, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Projects()) != 3 {
		t.Errorf("projects = %d", len(w.Projects()))
	}
	if len(w.Volunteers()) != 40 {
		t.Errorf("volunteers = %d", len(w.Volunteers()))
	}
	if w.Mediator().Providers() != 40 || w.Mediator().Consumers() != 3 {
		t.Error("registration incomplete")
	}
	if w.OnlineVolunteers() != 40 || w.OnlineProjects() != 3 {
		t.Error("everyone should start online")
	}
	if w.Config().UtilizationHorizon <= 0 {
		t.Error("utilization horizon not defaulted")
	}
}

func TestWorldRejectsBadWorkload(t *testing.T) {
	cfg := smallConfig(Captive, 1)
	cfg.Workload.Volunteers = 0
	if _, err := NewWorld(alloc.NewCapacity(), cfg); err == nil {
		t.Error("bad workload accepted")
	}
}

func TestCaptiveRunBasics(t *testing.T) {
	w, err := NewWorld(alloc.NewCapacity(), smallConfig(Captive, 2))
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Issued < 100 {
		t.Fatalf("only %d queries issued in 300s; arrivals broken", r.Issued)
	}
	if r.Completed == 0 {
		t.Fatal("no queries completed")
	}
	if float64(r.Completed) < float64(r.Issued)*0.8 {
		t.Errorf("completed %d of %d; system drowning at ρ=0.7", r.Completed, r.Issued)
	}
	if r.MeanResponseTime <= 0 {
		t.Errorf("response time %v", r.MeanResponseTime)
	}
	if r.ProvidersLeft != 0 || r.ConsumersLeft != 0 {
		t.Errorf("captive world had departures: %d/%d", r.ProvidersLeft, r.ConsumersLeft)
	}
	if r.ConsumerSat <= 0 || r.ConsumerSat > 1 || r.ProviderSat < 0 || r.ProviderSat > 1 {
		t.Errorf("satisfaction out of range: C=%v P=%v", r.ConsumerSat, r.ProviderSat)
	}
	if w.Engine().Now() != 300 {
		t.Errorf("clock = %v", w.Engine().Now())
	}
}

func TestAllAllocatorsRun(t *testing.T) {
	allocators := func() []alloc.Allocator {
		return []alloc.Allocator{
			alloc.NewCapacity(),
			alloc.NewEconomic(stats.NewRNG(3)),
			alloc.NewRandom(stats.NewRNG(4)),
			alloc.NewRoundRobin(),
			core.MustNew(core.DefaultConfig()),
		}
	}
	for _, a := range allocators() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			w, err := NewWorld(a, smallConfig(Captive, 5))
			if err != nil {
				t.Fatal(err)
			}
			r := w.Run()
			if r.Completed == 0 {
				t.Fatalf("%s completed no queries", a.Name())
			}
			if r.MeanResponseTime <= 0 {
				t.Fatalf("%s: response time %v", a.Name(), r.MeanResponseTime)
			}
		})
	}
}

func TestRunDeterminism(t *testing.T) {
	mk := func() (int64, float64, float64) {
		w, err := NewWorld(core.MustNew(core.DefaultConfig()), smallConfig(Captive, 77))
		if err != nil {
			t.Fatal(err)
		}
		r := w.Run()
		return r.Completed, r.MeanResponseTime, r.ProviderSat
	}
	c1, rt1, ps1 := mk()
	c2, rt2, ps2 := mk()
	if c1 != c2 || rt1 != rt2 || ps1 != ps2 {
		t.Errorf("runs diverged: (%d,%v,%v) vs (%d,%v,%v)", c1, rt1, ps1, c2, rt2, ps2)
	}
}

func TestAutonomousDeparturesUnderCapacity(t *testing.T) {
	// Under capacity-based allocation, volunteers with negative preferences
	// keep receiving disliked queries; in autonomous mode some must leave.
	w, err := NewWorld(alloc.NewCapacity(), smallConfig(Autonomous, 6))
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.ProvidersLeft == 0 {
		t.Error("no volunteer left under interest-blind allocation; departure rule broken")
	}
	if w.OnlineVolunteers() != 40-r.ProvidersLeft {
		t.Errorf("online count %d inconsistent with %d departures", w.OnlineVolunteers(), r.ProvidersLeft)
	}
	// Departure records must carry the sub-threshold satisfaction.
	for _, d := range w.Collector().Departures {
		if d.Provider != model.NoProvider && d.Satisfaction >= 0.35 {
			t.Errorf("provider %d left with δs=%v ≥ threshold", d.Provider, d.Satisfaction)
		}
	}
}

func TestSbQARetainsMoreVolunteersThanCapacity(t *testing.T) {
	// The headline claim (Scenario 4): satisfaction-based allocation keeps
	// volunteers online that interest-blind techniques lose.
	seeds := []uint64{11, 12, 13}
	var capLeft, sbqaLeft int
	for _, seed := range seeds {
		wc, err := NewWorld(alloc.NewCapacity(), smallConfig(Autonomous, seed))
		if err != nil {
			t.Fatal(err)
		}
		rc := wc.Run()
		capLeft += rc.ProvidersLeft

		ws, err := NewWorld(core.MustNew(core.DefaultConfig()), smallConfig(Autonomous, seed))
		if err != nil {
			t.Fatal(err)
		}
		rs := ws.Run()
		sbqaLeft += rs.ProvidersLeft
	}
	if sbqaLeft >= capLeft {
		t.Errorf("SbQA lost %d volunteers vs capacity's %d; satisfaction adaptation not working", sbqaLeft, capLeft)
	}
}

func TestRejoinExtension(t *testing.T) {
	cfg := smallConfig(Autonomous, 6)
	cfg.RejoinAfter = 50
	cfg.Duration = 400
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.ProvidersLeft == 0 {
		t.Skip("no departures this seed; nothing to rejoin")
	}
	// With rejoin active the online population at the end should exceed
	// what pure departures would leave.
	if w.OnlineVolunteers() <= 40-r.ProvidersLeft {
		t.Errorf("rejoin did not restore anyone: online=%d, departures=%d", w.OnlineVolunteers(), r.ProvidersLeft)
	}
}

func TestScenario5PolicySwap(t *testing.T) {
	// Response-time-seeking consumers and load-only providers must still
	// run and produce sane metrics.
	cfg := smallConfig(Captive, 9)
	cfg.ConsumerPolicy = func(workload.Project) intention.ConsumerPolicy {
		return intention.ResponseTimeConsumer{}
	}
	cfg.ProviderPolicy = func(workload.Volunteer) intention.ProviderPolicy {
		return intention.LoadOnlyProvider{}
	}
	w, err := NewWorld(core.MustNew(core.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Completed == 0 || r.MeanResponseTime <= 0 {
		t.Fatalf("policy-swapped world broken: %+v", r)
	}
}

func TestEligibleFnRestrictsCandidates(t *testing.T) {
	cfg := smallConfig(Captive, 10)
	// Only even-indexed volunteers may serve anything.
	cfg.EligibleFn = func(p model.ProviderID, _ model.Query) bool { return p%2 == 0 }
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	for _, v := range w.Volunteers() {
		if v.ProviderID()%2 == 1 && v.busyTime > 0 {
			t.Errorf("ineligible volunteer %d performed work", v.ProviderID())
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	w, err := NewWorld(alloc.NewCapacity(), smallConfig(Captive, 14))
	if err != nil {
		t.Fatal(err)
	}
	// Probe utilization during the run via sampling hook.
	done := false
	var probe func()
	probe = func() {
		for _, v := range w.Volunteers() {
			u := v.Utilization(w.Engine().Now())
			if u < 0 || u > 1 {
				t.Errorf("utilization %v out of range", u)
				done = true
			}
		}
		if !done && w.Engine().Now() < 200 {
			w.Engine().Schedule(25, probe)
		}
	}
	w.Engine().Schedule(25, probe)
	w.Run()
}

func TestUnallocatedQueriesCounted(t *testing.T) {
	cfg := smallConfig(Captive, 15)
	cfg.EligibleFn = func(model.ProviderID, model.Query) bool { return false }
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Completed != 0 {
		t.Errorf("completed %d with no eligible providers", r.Completed)
	}
	if r.Unallocated != r.Issued || r.Issued == 0 {
		t.Errorf("unallocated=%d issued=%d", r.Unallocated, r.Issued)
	}
	// Consumers must be maximally dissatisfied.
	for _, p := range w.Projects() {
		if got := p.Satisfaction(); got != 0 {
			t.Errorf("project %s δs = %v, want 0", p.Name(), got)
		}
	}
}

func TestSampleSeriesAligned(t *testing.T) {
	w, err := NewWorld(alloc.NewCapacity(), smallConfig(Captive, 16))
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	c := w.Collector()
	n := c.ConsumerSat.Len()
	if n == 0 {
		t.Fatal("no samples recorded")
	}
	for _, ts := range []int{
		c.ProviderSat.Len(), c.Utilization.Len(), c.OnlineProviders.Len(), c.QueueGini.Len(),
	} {
		if ts != n {
			t.Errorf("series misaligned: %d vs %d", ts, n)
		}
	}
}

func TestModeString(t *testing.T) {
	if Captive.String() != "captive" || Autonomous.String() != "autonomous" {
		t.Error("Mode.String broken")
	}
}
