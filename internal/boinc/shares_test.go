package boinc

import (
	"math"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/model"
)

func TestSharesFromPrefs(t *testing.T) {
	tests := []struct {
		name  string
		prefs []float64
		want  []float64
	}{
		{"paper-80-20", []float64{0.75, 0.15}, []float64{0.8, 0.2}},
		{"negative-clamped", []float64{-1, 0.95}, []float64{0.05 / 1.05, 1.0 / 1.05}},
		{"all-negative", []float64{-0.5, -0.5}, []float64{0.5, 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := sharesFromPrefs(tt.prefs)
			var sum float64
			for i := range got {
				sum += got[i]
				if math.Abs(got[i]-tt.want[i]) > 1e-9 {
					t.Errorf("shares = %v, want %v", got, tt.want)
					break
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("shares sum to %v", sum)
			}
		})
	}
}

func TestVolunteerShareAccessors(t *testing.T) {
	w, err := NewWorld(alloc.NewCapacity(), smallConfig(Captive, 1))
	if err != nil {
		t.Fatal(err)
	}
	v := w.Volunteers()[0]
	var sum float64
	for c := 0; c < 3; c++ {
		sum += v.Share(model.ConsumerID(c))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("volunteer shares sum to %v", sum)
	}
	if v.Share(-1) != 0 || v.Share(99) != 0 {
		t.Error("out-of-range Share should be 0")
	}
	// SetVolunteerPrefs recomputes shares.
	w.SetVolunteerPrefs(v.ProviderID(), []float64{0.75, 0.15, -1})
	if got := v.Share(0); math.Abs(got-(0.8/1.05)) > 1e-9 {
		t.Errorf("recomputed share = %v", got)
	}
}

func TestDevotedAvailableBudget(t *testing.T) {
	w, err := NewWorld(alloc.NewCapacity(), smallConfig(Captive, 2))
	if err != nil {
		t.Fatal(err)
	}
	v := w.Volunteers()[0]
	w.SetVolunteerPrefs(v.ProviderID(), []float64{0.75, 0.15, -1})
	q := model.Query{ID: 1, Consumer: 0, N: 1, Work: 5}
	budget := v.DevotedAvailable(q)
	want := (0.8 / 1.05) * v.Capacity() * w.Config().UtilizationHorizon
	if math.Abs(budget-want) > 1e-9 {
		t.Errorf("budget = %v, want %v", budget, want)
	}
	// Queued work eats into the budget.
	v.enqueue(q)
	if got := v.DevotedAvailable(q); math.Abs(got-(want-5)) > 1e-9 {
		t.Errorf("after enqueue = %v, want %v", got, want-5)
	}
	// Out-of-range consumer has no budget.
	if v.DevotedAvailable(model.Query{Consumer: 99, N: 1, Work: 1}) != 0 {
		t.Error("foreign consumer should have zero budget")
	}
}

func TestEnforcedSharesSlowServiceDown(t *testing.T) {
	// Same task, share-enforced vs not: the enforced one completes later
	// because the disliked project's work runs at its small share.
	mk := func(enforce bool) float64 {
		cfg := smallConfig(Captive, 3)
		cfg.EnforceShares = enforce
		w, err := NewWorld(alloc.NewCapacity(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		v := w.Volunteers()[0]
		w.SetVolunteerPrefs(v.ProviderID(), []float64{0.75, 0.15, -1})
		q := model.Query{ID: 1, Consumer: 2, N: 1, Work: 10} // project with token 0.05/1.05 share
		var done float64
		cfg2 := w.Config()
		_ = cfg2
		v.enqueue(q)
		// Drain the engine; completion is the only event besides network.
		w.Engine().Schedule(0, func() {})
		for w.Engine().Step() {
			if v.queueLen == 0 && done == 0 {
				done = w.Engine().Now()
			}
		}
		return done
	}
	free := mk(false)
	enforced := mk(true)
	if enforced <= free {
		t.Errorf("share-enforced completion %v should be later than free %v", enforced, free)
	}
	if enforced < free*5 {
		t.Errorf("token share should slow service by an order of magnitude: %v vs %v", enforced, free)
	}
}

func TestSetArrivalRate(t *testing.T) {
	cfg := smallConfig(Captive, 4)
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stop project 0 at t=100; count its queries issued after.
	var afterStop int
	cfg0Rate := w.Projects()[0].ArrivalRate()
	if cfg0Rate <= 0 {
		t.Fatal("project 0 has no arrival rate")
	}
	w.Engine().Schedule(100, func() { w.SetArrivalRate(0, 0) })
	prevIssued := map[model.QueryID]bool{}
	_ = prevIssued
	w.Run()
	// Count completions of project 0 issued after t=110 (one in-flight
	// arrival may still fire right at the switch).
	for _, d := range w.Collector().Departures {
		_ = d
	}
	// Use the OnComplete-free path: inspect pending/issued via collector
	// series is indirect; instead re-run with a hook.
	cfg2 := smallConfig(Captive, 4)
	cfg2.OnComplete = func(q model.Query, _ float64) {
		if q.Consumer == 0 && q.IssuedAt > 110 {
			afterStop++
		}
	}
	w2, err := NewWorld(alloc.NewCapacity(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	w2.Engine().Schedule(100, func() { w2.SetArrivalRate(0, 0) })
	w2.Run()
	if afterStop > 1 {
		t.Errorf("%d project-0 queries issued after the stop", afterStop)
	}
	// Restarting mid-run works too.
	var lateCount int
	cfg3 := smallConfig(Captive, 4)
	cfg3.OnComplete = func(q model.Query, _ float64) {
		if q.Consumer == 0 && q.IssuedAt > 160 {
			lateCount++
		}
	}
	w3, err := NewWorld(alloc.NewCapacity(), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	w3.Engine().Schedule(100, func() { w3.SetArrivalRate(0, 0) })
	w3.Engine().Schedule(150, func() { w3.SetArrivalRate(0, cfg0Rate) })
	w3.Run()
	if lateCount == 0 {
		t.Error("restarted project issued nothing")
	}
}

func TestOnCompleteHook(t *testing.T) {
	cfg := smallConfig(Captive, 5)
	var count int
	var lastRT float64
	cfg.OnComplete = func(q model.Query, rt float64) {
		count++
		lastRT = rt
	}
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if int64(count) != r.Completed {
		t.Errorf("OnComplete fired %d times, completed %d", count, r.Completed)
	}
	if lastRT <= 0 {
		t.Errorf("last response time %v", lastRT)
	}
}
