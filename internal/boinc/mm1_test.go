package boinc

import (
	"math"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// TestMM1ResponseTime validates the execution substrate against queueing
// theory: one provider with unit capacity, Poisson arrivals, exponential
// service demands and no network latency form an M/M/1 queue, whose mean
// response time is E[S]/(1−ρ). If the event kernel, the arrival process, or
// the queue accounting were wrong, this converges elsewhere.
func TestMM1ResponseTime(t *testing.T) {
	const (
		meanService = 10.0
		rho         = 0.8
		duration    = 120000.0
	)
	cfg := Config{
		Workload: workload.Config{
			Projects: []workload.ProjectSpec{
				{Name: "only", Popularity: workload.Popular, ArrivalShare: 1, Replication: 1, DelayTarget: 100},
			},
			Volunteers:   1,
			CapacityDist: stats.Constant{V: 1},
			WorkDist:     stats.Exponential{Rate: 1 / meanService},
			LoadFactor:   rho,
			Seed:         42,
		},
		Mode:           Captive,
		Duration:       duration,
		SampleEvery:    1000,
		NetworkLatency: stats.Constant{V: 0},
		Seed:           42,
	}
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	want := meanService / (1 - rho) // 50 s
	if r.Completed < 5000 {
		t.Fatalf("only %d completions; arrival process broken", r.Completed)
	}
	if rel := math.Abs(r.MeanResponseTime-want) / want; rel > 0.1 {
		t.Errorf("M/M/1 mean response time = %.2f, theory %.2f (%.0f%% off)",
			r.MeanResponseTime, want, rel*100)
	}
	// Utilization gauge should hover near ρ·meanService/horizon clamped —
	// just check it is clearly nonzero and bounded.
	if u := r.UtilizationMean; u <= 0 || u > 1 {
		t.Errorf("utilization gauge = %v", u)
	}
}

// TestMM1LowLoad checks the light-traffic limit: at ρ → 0 the response time
// approaches the bare service time.
func TestMM1LowLoad(t *testing.T) {
	const meanService = 10.0
	cfg := Config{
		Workload: workload.Config{
			Projects: []workload.ProjectSpec{
				{Name: "only", Popularity: workload.Popular, ArrivalShare: 1, Replication: 1, DelayTarget: 100},
			},
			Volunteers:   1,
			CapacityDist: stats.Constant{V: 1},
			WorkDist:     stats.Exponential{Rate: 1 / meanService},
			LoadFactor:   0.05,
			Seed:         43,
		},
		Mode:           Captive,
		Duration:       200000,
		SampleEvery:    2000,
		NetworkLatency: stats.Constant{V: 0},
		Seed:           43,
	}
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	want := meanService / (1 - 0.05)
	if rel := math.Abs(r.MeanResponseTime-want) / want; rel > 0.1 {
		t.Errorf("light-traffic response time = %.2f, theory %.2f", r.MeanResponseTime, want)
	}
}
