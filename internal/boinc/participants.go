package boinc

import (
	"sbqa/internal/intention"
	"sbqa/internal/model"
	"sbqa/internal/reputation"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// Project is a running consumer: a research project issuing computational
// queries. It implements mediator.Consumer.
type Project struct {
	world *World

	id          model.ConsumerID
	name        string
	popularity  workload.Popularity
	arrivalRate float64
	replication int
	quorum      int
	delayTarget float64

	policy intention.ConsumerPolicy
	prefs  []float64 // static preference per volunteer index
	book   *reputation.Book

	online     bool
	leftAt     float64
	belowSince float64    // first instant δs stayed below threshold; -1 = not below
	arrival    *stats.RNG // private stream for inter-arrival draws
	work       *stats.RNG // private stream for work draws

	// failureRate is an EWMA of validation outcomes (1 = every recent
	// query failed redundancy checking); feeds adaptive replication.
	failureRate float64
}

// failureEWMA weights the most recent validation outcome.
const failureEWMA = 0.1

// observeValidation folds one query's validation outcome into the project's
// failure-rate estimate.
func (p *Project) observeValidation(ok bool) {
	outcome := 0.0
	if !ok {
		outcome = 1
	}
	p.failureRate = (1-failureEWMA)*p.failureRate + failureEWMA*outcome
}

// FailureRate returns the project's recent validation-failure rate.
func (p *Project) FailureRate() float64 { return p.failureRate }

// ConsumerID implements mediator.Consumer.
func (p *Project) ConsumerID() model.ConsumerID { return p.id }

// Name returns the project's display name.
func (p *Project) Name() string { return p.name }

// Online reports whether the project is still using the platform.
func (p *Project) Online() bool { return p.online }

// ArrivalRate returns the project's current query arrival rate (queries per
// simulated second).
func (p *Project) ArrivalRate() float64 { return p.arrivalRate }

// Satisfaction returns the project's current δs(c).
func (p *Project) Satisfaction() float64 {
	return p.world.med.Registry().ConsumerSatisfaction(p.id)
}

// Intention implements mediator.Consumer: the project's intention toward
// allocating the query to the described volunteer, per its policy.
func (p *Project) Intention(q model.Query, snap model.ProviderSnapshot) model.Intention {
	pref := 0.0
	if int(snap.ID) < len(p.prefs) {
		pref = p.prefs[snap.ID]
	}
	return p.policy.Intention(intention.ConsumerInputs{
		Preference:    pref,
		Reputation:    p.book.Reputation(snap.ID),
		ExpectedDelay: snap.ExpectedDelay(q.Work),
		DelayTarget:   p.delayTarget,
		Satisfaction:  p.Satisfaction(),
	})
}

// Volunteer is a running provider: a host donating compute. It implements
// mediator.Provider and executes its queue serially at its capacity.
type Volunteer struct {
	world *World

	id          model.ProviderID
	capacity    float64
	priceFactor float64
	malicious   bool      // returns invalid results (validation substrate)
	prefs       []float64 // static preference per project index

	policy intention.ProviderPolicy

	online     bool
	leftAt     float64
	belowSince float64 // first instant δs stayed below threshold; -1 = not below

	// Execution state: the volunteer processes tasks FIFO at `capacity`
	// work units per second.
	queueLen    int
	pendingWork float64
	busyUntil   float64

	// Cumulative busy time, for utilization accounting.
	busyTime float64

	// Resource shares (BOINC semantics): shares[c] is the fraction of this
	// volunteer's capacity devoted to project c, derived from its
	// preferences. When the world enforces shares, each project's work
	// runs at shares[c]·capacity on its own virtual queue — idle shares
	// are wasted, which is the paper's §IV motivating example.
	shares     []float64
	busyUntilC []float64 // per-consumer virtual-queue drain time
	pendingC   []float64 // per-consumer pending work
}

// sharesFromPrefs converts preferences to resource shares: the positive
// part of each preference plus a small floor, normalized to sum to 1 —
// a volunteer devotes most capacity to projects it likes but keeps a token
// share for the rest (as BOINC users typically do).
func sharesFromPrefs(prefs []float64) []float64 {
	shares := make([]float64, len(prefs))
	var sum float64
	for i, p := range prefs {
		v := p
		if v < 0 {
			v = 0
		}
		shares[i] = v + 0.05
		sum += shares[i]
	}
	if sum <= 0 {
		return shares
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// Share returns the fraction of capacity devoted to project c.
func (v *Volunteer) Share(c model.ConsumerID) float64 {
	if int(c) < 0 || int(c) >= len(v.shares) {
		return 0
	}
	return v.shares[c]
}

// DevotedAvailable implements mediator.ShareReporter: the work budget the
// query's consumer may still queue here under this volunteer's shares
// (share·capacity·horizon minus what it already has pending).
func (v *Volunteer) DevotedAvailable(q model.Query) float64 {
	c := int(q.Consumer)
	if c < 0 || c >= len(v.shares) {
		return 0
	}
	budget := v.shares[c] * v.capacity * v.world.cfg.UtilizationHorizon
	return budget - v.pendingC[c]
}

// ProviderID implements mediator.Provider.
func (v *Volunteer) ProviderID() model.ProviderID { return v.id }

// Online reports whether the volunteer is still donating resources.
func (v *Volunteer) Online() bool { return v.online }

// Capacity returns the volunteer's speed in work units per second.
func (v *Volunteer) Capacity() float64 { return v.capacity }

// Satisfaction returns the volunteer's current δs(p).
func (v *Volunteer) Satisfaction() float64 {
	return v.world.med.Registry().ProviderSatisfaction(v.id)
}

// Utilization maps the volunteer's backlog drain time onto [0, 1] against
// the world's utilization horizon: 0 = idle, 1 = backlogged by at least the
// horizon.
func (v *Volunteer) Utilization(now float64) float64 {
	backlog := v.busyUntil - now
	if backlog <= 0 {
		return 0
	}
	u := backlog / v.world.cfg.UtilizationHorizon
	if u > 1 {
		return 1
	}
	return u
}

// Snapshot implements mediator.Provider.
func (v *Volunteer) Snapshot(now float64) model.ProviderSnapshot {
	return model.ProviderSnapshot{
		ID:           v.id,
		Utilization:  v.Utilization(now),
		QueueLen:     v.queueLen,
		Capacity:     v.capacity,
		PendingWork:  v.pendingWork,
		Satisfaction: v.Satisfaction(),
	}
}

// CanPerform implements mediator.Provider. In the BOINC world every
// volunteer has every project's application installed, so eligibility is
// universal; the world's EligibleFn hook can restrict it.
func (v *Volunteer) CanPerform(q model.Query) bool {
	if v.world.cfg.EligibleFn != nil {
		return v.world.cfg.EligibleFn(v.id, q)
	}
	return true
}

// Intention implements mediator.Provider: the volunteer's intention to
// perform q, per its policy.
func (v *Volunteer) Intention(q model.Query) model.Intention {
	pref := 0.0
	if int(q.Consumer) < len(v.prefs) {
		pref = v.prefs[q.Consumer]
	}
	return v.policy.Intention(intention.ProviderInputs{
		Preference:   pref,
		Utilization:  v.Utilization(v.world.engine.Now()),
		Satisfaction: v.Satisfaction(),
		QueueLen:     v.queueLen,
	})
}

// Bid implements mediator.Provider: the price the volunteer asks to perform
// q under the economic baseline — its expected completion delay scaled by a
// private margin. Cost-based, interest-blind, exactly the Mariposa-style
// behaviour the demo contrasts with.
func (v *Volunteer) Bid(q model.Query) float64 {
	delay := (v.pendingWork + q.Work) / v.capacity
	return delay * v.priceFactor
}

// enqueue accepts a dispatched query and schedules its completion. With
// share enforcement, each project's work runs on its own virtual queue at
// the devoted fraction of capacity (BOINC's scheduler); otherwise the
// volunteer runs one FIFO queue at full speed.
func (v *Volunteer) enqueue(q model.Query) {
	now := v.world.engine.Now()
	c := int(q.Consumer)
	var completion float64
	if v.world.cfg.EnforceShares && c >= 0 && c < len(v.shares) {
		rate := v.shares[c] * v.capacity
		if rate <= 0 {
			rate = 0.01 * v.capacity // token share: nothing runs at zero
		}
		if v.busyUntilC[c] < now {
			v.busyUntilC[c] = now
		}
		service := q.Work / rate
		v.busyUntilC[c] += service
		v.busyTime += service
		completion = v.busyUntilC[c]
		if completion > v.busyUntil {
			v.busyUntil = completion
		}
		v.pendingC[c] += q.Work
	} else {
		if v.busyUntil < now {
			v.busyUntil = now
		}
		service := q.Work / v.capacity
		v.busyUntil += service
		v.busyTime += service
		completion = v.busyUntil
		if c >= 0 && c < len(v.pendingC) {
			v.pendingC[c] += q.Work
		}
	}
	v.pendingWork += q.Work
	v.queueLen++
	v.world.engine.ScheduleAt(completion, func() {
		v.complete(q)
	})
}

// Malicious reports whether the volunteer returns invalid results.
func (v *Volunteer) Malicious() bool { return v.malicious }

// complete finishes a task and ships the result back to the mediator side.
func (v *Volunteer) complete(q model.Query) {
	v.pendingWork -= q.Work
	if v.pendingWork < 0 {
		v.pendingWork = 0
	}
	if c := int(q.Consumer); c >= 0 && c < len(v.pendingC) {
		v.pendingC[c] -= q.Work
		if v.pendingC[c] < 0 {
			v.pendingC[c] = 0
		}
	}
	v.queueLen--
	w := v.world
	valid := !v.malicious
	w.net.Send(w.engine, func() {
		w.resultArrived(q, v.id, valid)
	})
}
