package boinc

import (
	"fmt"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/intention"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// TestWorldInvariantsUnderRandomConfigs drives every allocator through a
// battery of randomized configurations — population size, load, replication,
// autonomy, malicious fractions, policies, kn — and checks the accounting
// invariants that must hold whatever happens:
//
//	issued = completed + unallocated + validation failures + in flight
//	satisfactions ∈ [0,1]; online counts consistent with departures;
//	response times positive; utilizations ∈ [0,1].
func TestWorldInvariantsUnderRandomConfigs(t *testing.T) {
	rng := stats.NewRNG(2024)
	mkAllocator := func(kind int, seed uint64) alloc.Allocator {
		switch kind {
		case 0:
			return alloc.NewCapacity()
		case 1:
			return alloc.NewEconomic(stats.NewRNG(seed))
		case 2:
			return alloc.NewRandom(stats.NewRNG(seed))
		case 3:
			return alloc.NewShareBased()
		default:
			c := core.DefaultConfig()
			c.KnBest = knbest.Params{K: 5 + rng.Intn(20), Kn: 1 + rng.Intn(5)}
			c.Seed = seed
			return core.MustNew(c)
		}
	}

	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seed := uint64(1000 + trial)
			cfg := DefaultConfig(10+rng.Intn(50), seed)
			cfg.Duration = 150 + float64(rng.Intn(150))
			cfg.SampleEvery = 10
			cfg.Window = 10 + rng.Intn(60)
			cfg.Workload.LoadFactor = 0.3 + rng.Float64()*0.6
			cfg.Workload.MaliciousFraction = rng.Float64() * 0.3
			if rng.Bool(0.5) {
				cfg.Mode = Autonomous
			}
			if rng.Bool(0.3) {
				cfg.EnforceShares = true
			}
			if rng.Bool(0.3) {
				cfg.ProviderPolicy = func(workload.Volunteer) intention.ProviderPolicy {
					return intention.AdaptiveProvider{}
				}
			}
			if rng.Bool(0.3) {
				cfg.ConsumerPolicy = func(workload.Project) intention.ConsumerPolicy {
					return intention.ResponseTimeConsumer{}
				}
			}
			if rng.Bool(0.3) {
				cfg.RejoinAfter = 30
			}
			for i := range cfg.Workload.Projects {
				cfg.Workload.Projects[i].Replication = 1 + rng.Intn(3)
			}
			kind := rng.Intn(5)
			w, err := NewWorld(mkAllocator(kind, seed), cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := w.Run()

			inFlight := int64(len(w.pending))
			acc := r.Completed + r.Unallocated + r.ValidationFailures + inFlight
			if acc != r.Issued {
				t.Errorf("accounting: issued=%d completed=%d unalloc=%d failed=%d inflight=%d",
					r.Issued, r.Completed, r.Unallocated, r.ValidationFailures, inFlight)
			}
			for _, v := range w.Volunteers() {
				if s := v.Satisfaction(); s < 0 || s > 1 {
					t.Errorf("volunteer %d δs=%v", v.ProviderID(), s)
				}
				if u := v.Utilization(w.Engine().Now()); u < 0 || u > 1 {
					t.Errorf("volunteer %d util=%v", v.ProviderID(), u)
				}
			}
			for _, p := range w.Projects() {
				if s := p.Satisfaction(); s < 0 || s > 1 {
					t.Errorf("project %s δs=%v", p.Name(), s)
				}
				if f := p.FailureRate(); f < 0 || f > 1 {
					t.Errorf("project %s failure rate %v", p.Name(), f)
				}
			}
			if r.MeanResponseTime < 0 {
				t.Errorf("negative response time %v", r.MeanResponseTime)
			}
			// Online bookkeeping: departures minus rejoins = offline count.
			offline := len(w.Volunteers()) - w.OnlineVolunteers()
			if cfg.RejoinAfter == 0 && offline != r.ProvidersLeft {
				t.Errorf("offline=%d but departures=%d", offline, r.ProvidersLeft)
			}
			if offline > r.ProvidersLeft {
				t.Errorf("more offline (%d) than ever departed (%d)", offline, r.ProvidersLeft)
			}
			// The mediator's registry only tracks online providers.
			if got := w.Mediator().Providers(); got != w.OnlineVolunteers() {
				t.Errorf("mediator tracks %d providers, online %d", got, w.OnlineVolunteers())
			}
		})
	}
}

// TestWorldAccountingWithMalicious pins the validation bookkeeping: with a
// 100% malicious population nothing can validate.
func TestWorldAccountingWithMalicious(t *testing.T) {
	cfg := smallConfig(Captive, 21)
	cfg.Workload.MaliciousFraction = 1.0
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Completed != 0 {
		t.Errorf("%d queries validated with an all-malicious population", r.Completed)
	}
	if r.ValidationFailures == 0 {
		t.Error("no validation failures recorded")
	}
	// Reputation must have collapsed for observed providers.
	p := w.Projects()[0]
	sawLow := false
	for _, v := range w.Volunteers() {
		if p.FailureRate() > 0.9 {
			sawLow = true
			break
		}
		_ = v
	}
	if !sawLow && p.FailureRate() < 0.9 {
		t.Errorf("project failure rate %v, want near 1", p.FailureRate())
	}
}

// TestQuorumSemantics checks that a query completes at the quorum-th valid
// result, not at the replication count.
func TestQuorumSemantics(t *testing.T) {
	cfg := smallConfig(Captive, 22)
	cfg.Workload.Projects = []workload.ProjectSpec{
		{Name: "p", Popularity: workload.Popular, ArrivalShare: 1, Replication: 3, Quorum: 1, DelayTarget: 30},
	}
	var rts []float64
	cfg.OnComplete = func(_ model.Query, rt float64) { rts = append(rts, rt) }
	w, err := NewWorld(alloc.NewCapacity(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	// With quorum 1 of 3 replicas, response time is the FASTEST replica;
	// rerun with quorum 3 and compare.
	cfg3 := smallConfig(Captive, 22)
	cfg3.Workload.Projects = []workload.ProjectSpec{
		{Name: "p", Popularity: workload.Popular, ArrivalShare: 1, Replication: 3, Quorum: 3, DelayTarget: 30},
	}
	w3, err := NewWorld(alloc.NewCapacity(), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	r3 := w3.Run()
	if r3.MeanResponseTime <= r.MeanResponseTime {
		t.Errorf("quorum-3 RT %.2f should exceed quorum-1 RT %.2f",
			r3.MeanResponseTime, r.MeanResponseTime)
	}
}
