package sim

import (
	"reflect"
	"testing"
)

// These tests pin the determinism contract documented in the package
// comment: (time, schedule-sequence) total order, stable FIFO among
// simultaneous events, and Cancel as a lazy mark that cannot perturb the
// survivors' relative order.

// TestSimultaneousFIFOSurvivesCancelInterleavings books many events at one
// instant with cancels interleaved between (and after) the schedules, and
// checks the survivors fire in exact schedule order.
func TestSimultaneousFIFOSurvivesCancelInterleavings(t *testing.T) {
	e := NewEngine()
	const n = 64
	events := make([]*Event, n)
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		events[i] = e.Schedule(5, func() { fired = append(fired, i) })
		// Interleave: cancel the previous even-indexed event right after
		// booking the next one.
		if i > 0 && (i-1)%2 == 0 {
			events[i-1].Cancel()
		}
	}
	// And a couple of late cancels after everything is queued.
	events[n-1].Cancel()
	events[1].Cancel()

	e.RunAll()

	var want []int
	for i := 0; i < n; i++ {
		if i%2 == 0 || i == 1 || i == n-1 { // canceled
			continue
		}
		want = append(want, i)
	}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired order %v, want %v", fired, want)
	}
}

// TestCancelSameInstantBeforeFire cancels a same-time event from inside an
// earlier simultaneous event: the cancel must win, because the earlier
// sequence fires first and the victim is still queued.
func TestCancelSameInstantBeforeFire(t *testing.T) {
	e := NewEngine()
	var fired []string
	var victim *Event
	e.Schedule(1, func() {
		fired = append(fired, "killer")
		victim.Cancel()
	})
	victim = e.Schedule(1, func() { fired = append(fired, "victim") })
	e.Schedule(1, func() { fired = append(fired, "bystander") })
	e.RunAll()
	if want := []string{"killer", "bystander"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestRescheduleGetsFreshSequence verifies that cancelling and re-booking
// at the same instant moves the event to the back of that instant's FIFO.
func TestRescheduleGetsFreshSequence(t *testing.T) {
	e := NewEngine()
	var fired []string
	a := e.Schedule(2, func() { fired = append(fired, "a-original") })
	e.Schedule(2, func() { fired = append(fired, "b") })
	a.Cancel()
	e.Schedule(2, func() { fired = append(fired, "a-rebooked") })
	e.RunAll()
	if want := []string{"b", "a-rebooked"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestScheduleAtClampFIFO: past-time schedules clamp to "now" and must
// still fire after already-queued events at the current instant.
func TestScheduleAtClampFIFO(t *testing.T) {
	e := NewEngine()
	var fired []string
	e.Schedule(3, func() {
		fired = append(fired, "first")
		// Clamped to now (=3): fires after "second", which was booked for
		// t=3 earlier and therefore holds an older sequence.
		e.ScheduleAt(1, func() { fired = append(fired, "clamped") })
	})
	e.Schedule(3, func() { fired = append(fired, "second") })
	e.RunAll()
	if want := []string{"first", "second", "clamped"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// refEvent backs the brute-force reference model used by the fuzzer.
type refEvent struct {
	at       float64
	seq      int
	id       int
	canceled bool
}

// refModel is an O(n²) but obviously-correct executive: fire the lowest
// (at, seq) live event, one at a time.
type refModel struct {
	now    float64
	seq    int
	events []*refEvent
}

func (m *refModel) schedule(delay float64, id int) *refEvent {
	if delay < 0 {
		delay = 0
	}
	ev := &refEvent{at: m.now + delay, seq: m.seq, id: id}
	m.seq++
	m.events = append(m.events, ev)
	return ev
}

func (m *refModel) step() (int, bool) {
	var best *refEvent
	for _, ev := range m.events {
		if ev.canceled {
			continue
		}
		if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			best = ev
		}
	}
	if best == nil {
		return 0, false
	}
	best.canceled = true // consumed
	m.now = best.at
	return best.id, true
}

// FuzzEventOrder drives the heap-backed engine and the reference model
// through the same randomized Schedule/Cancel/Step interleaving (with
// coarsely quantized times to force heavy ties) and requires identical
// fire sequences — fuzzing the heap's (time, seq) invariant.
func FuzzEventOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 7})
	f.Add([]byte{10, 10, 10, 240, 0, 250, 250, 250})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			t.Skip("bounded op budget")
		}
		eng := NewEngine()
		ref := &refModel{}
		var engEvents []*Event
		var refEvents []*refEvent
		var engFired, refFired []int
		nextID := 0
		for _, op := range ops {
			switch {
			case op < 240:
				// Schedule with one of 8 quantized delays — ties everywhere.
				delay := float64(op%8) * 0.5
				id := nextID
				nextID++
				engEvents = append(engEvents, eng.Schedule(delay, func() { engFired = append(engFired, id) }))
				refEvents = append(refEvents, ref.schedule(delay, id))
			case op < 250:
				// Cancel a pseudo-random live event (same pick on both sides).
				if len(engEvents) == 0 {
					continue
				}
				i := int(op) % len(engEvents)
				engEvents[i].Cancel()
				refEvents[i].canceled = true
			default:
				// Step both.
				engRan := eng.Step()
				refID, refRan := ref.step()
				if engRan != refRan {
					t.Fatalf("step divergence: engine ran=%v, reference ran=%v", engRan, refRan)
				}
				if refRan {
					refFired = append(refFired, refID)
				}
				if eng.Now() != ref.now {
					t.Fatalf("clock divergence: engine %v, reference %v", eng.Now(), ref.now)
				}
			}
		}
		// Drain both completely.
		for eng.Step() {
		}
		for {
			id, ok := ref.step()
			if !ok {
				break
			}
			refFired = append(refFired, id)
		}
		if !reflect.DeepEqual(engFired, refFired) {
			t.Fatalf("fire order diverged:\nengine:    %v\nreference: %v", engFired, refFired)
		}
	})
}
