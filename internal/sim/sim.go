// Package sim is a deterministic discrete-event simulation kernel — the
// reproduction's stand-in for the SimJava engine the SbQA demo uses. It
// provides a virtual clock, an event heap with stable FIFO ordering among
// simultaneous events, and a small network-latency model for mediator ↔
// participant message delays.
//
// The kernel is single-threaded by design: experiments need bit-for-bit
// reproducibility under a seed, which free-running goroutines cannot give.
// The goroutine-based embedding lives in internal/live.
//
// # Determinism contract
//
// Events are totally ordered by (time, schedule sequence): among events
// booked for the same simulated instant, the one scheduled first fires
// first (stable FIFO), regardless of heap re-balancing or any Cancel calls
// interleaved with the schedules. The sequence number is assigned when
// Schedule/ScheduleAt is called, never reused, and never reassigned:
// cancelling an event is a lazy mark (the entry stays queued until popped
// and is then skipped), so it cannot perturb the relative order of the
// survivors, and re-scheduling a replacement draws a fresh, later sequence
// — it fires after every same-time event that was already booked. Pending
// counts lazily-cancelled entries until the clock passes them. This
// contract is what lets the workload lab promise byte-identical reports
// for one seed; order_test.go pins it and FuzzEventOrder hunts for
// interleavings that break it.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"sbqa/internal/stats"
)

// Event is a scheduled callback. The callback runs with the engine clock set
// to the event's time.
type Event struct {
	at  float64
	seq uint64 // tie-break: schedule order
	fn  func()

	index    int // heap index; -1 once popped or cancelled
	canceled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

// Time returns the simulation time the event is scheduled for.
func (e *Event) Time() float64 { return e.at }

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation executive. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns how many events are scheduled (including cancelled ones
// not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay simulated seconds. Negative delays are
// treated as zero (fire "now", after already-queued events at the current
// time). It returns the event handle for cancellation.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t; times before the current clock are
// clamped to it. It returns the event handle for cancellation.
func (e *Engine) ScheduleAt(t float64, fn func()) *Event {
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in time order until the queue is empty, Stop is
// called, or the clock would pass until (events at exactly until still
// fire). It returns the number of events executed. After Run returns because
// of the horizon, the clock is advanced to until so that measurements read a
// consistent end time.
func (e *Engine) Run(until float64) uint64 {
	e.stopped = false
	start := e.fired
	for !e.stopped && len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
	return e.fired - start
}

// RunAll executes events until the queue empties or Stop is called; it
// guards against runaway self-scheduling with a generous event budget and
// panics if it is exceeded (a simulation bug, not a user error).
func (e *Engine) RunAll() uint64 {
	const budget = 1 << 32
	e.stopped = false
	start := e.fired
	for !e.stopped && e.Step() {
		if e.fired-start > budget {
			panic(fmt.Sprintf("sim: RunAll exceeded %d events; self-scheduling loop?", uint64(budget)))
		}
	}
	return e.fired - start
}

// Network models mediator ↔ participant message latencies. A zero-valued
// Network delivers instantly.
type Network struct {
	// Latency samples one-way message delay in simulated seconds.
	Latency stats.Dist
	rng     *stats.RNG
}

// NewNetwork returns a network with the given latency distribution; nil
// means zero latency.
func NewNetwork(latency stats.Dist, rng *stats.RNG) *Network {
	if rng == nil {
		rng = stats.NewRNG(1)
	}
	return &Network{Latency: latency, rng: rng}
}

// Delay samples one message delay.
func (n *Network) Delay() float64 {
	if n == nil || n.Latency == nil {
		return 0
	}
	d := n.Latency.Sample(n.rng)
	if d < 0 {
		return 0
	}
	return d
}

// Send schedules fn after one sampled network delay.
func (n *Network) Send(e *Engine, fn func()) *Event {
	return e.Schedule(n.Delay(), fn)
}

// RoundTrip returns one sampled round-trip delay (two one-way samples).
func (n *Network) RoundTrip() float64 { return n.Delay() + n.Delay() }
