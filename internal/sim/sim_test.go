package sim

import (
	"testing"

	"sbqa/internal/stats"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	if n := e.RunAll(); n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestNegativeAndPastSchedules(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(-5, func() { fired++ })
	e.Schedule(1, func() {
		// Scheduling in the past clamps to now.
		e.ScheduleAt(0, func() {
			fired++
			if e.Now() != 1 {
				t.Errorf("past event ran at %v, want clock 1", e.Now())
			}
		})
	})
	e.RunAll()
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	fired := []float64{}
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	n := e.Run(3)
	if n != 3 {
		t.Fatalf("Run(3) fired %d, want 3 (events at exactly the horizon fire)", n)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// Resume to the end.
	n = e.Run(100)
	if n != 2 || e.Now() != 100 {
		t.Errorf("resume fired %d, clock %v", n, e.Now())
	}
}

func TestRunAdvancesClockToHorizon(t *testing.T) {
	e := NewEngine()
	e.Run(42)
	if e.Now() != 42 {
		t.Errorf("clock = %v, want 42 (idle run advances clock)", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Errorf("Stop did not halt the run: fired = %d", fired)
	}
	// The remaining event is still schedulable.
	e.RunAll()
	if fired != 2 {
		t.Errorf("resume after Stop: fired = %d", fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev := e.Schedule(1, func() { fired++ })
	other := e.Schedule(2, func() { fired++ })
	ev.Cancel()
	if !ev.Canceled() {
		t.Error("Canceled() = false")
	}
	e.RunAll()
	if fired != 1 {
		t.Errorf("cancelled event fired: %d", fired)
	}
	other.Cancel() // cancel after firing: no-op, no panic
	if ev.Time() != 1 {
		t.Errorf("Time = %v", ev.Time())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []float64 {
		e := NewEngine()
		rng := stats.NewRNG(seed)
		var log []float64
		var tick func()
		tick = func() {
			log = append(log, e.Now())
			if len(log) < 100 {
				e.Schedule(rng.ExpFloat64(), tick)
			}
		}
		e.Schedule(0, tick)
		e.RunAll()
		return log
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNetworkZeroValue(t *testing.T) {
	var n *Network
	if n.Delay() != 0 {
		t.Error("nil network should have zero delay")
	}
	n2 := NewNetwork(nil, nil)
	if n2.Delay() != 0 {
		t.Error("nil latency should have zero delay")
	}
}

func TestNetworkDelaysMessages(t *testing.T) {
	e := NewEngine()
	n := NewNetwork(stats.Constant{V: 0.25}, stats.NewRNG(1))
	var arrived float64
	n.Send(e, func() { arrived = e.Now() })
	e.RunAll()
	if arrived != 0.25 {
		t.Errorf("message arrived at %v, want 0.25", arrived)
	}
	if rt := n.RoundTrip(); rt != 0.5 {
		t.Errorf("RoundTrip = %v, want 0.5", rt)
	}
}

func TestNetworkNegativeSamplesClamped(t *testing.T) {
	n := NewNetwork(stats.Constant{V: -3}, stats.NewRNG(1))
	if d := n.Delay(); d != 0 {
		t.Errorf("negative latency sample not clamped: %v", d)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i%10), func() {})
		if i%1024 == 1023 {
			e.RunAll()
		}
	}
	e.RunAll()
}
