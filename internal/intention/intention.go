// Package intention implements the participant-side intention computation of
// the SbQA framework. The demo paper delegates the exact functions to the
// authors' SQLB paper; this package reconstructs them from the demo's prose:
//
//	"[SQLB] affords consumers the flexibility to trade their preferences
//	 for the providers' reputation and providers the flexibility to trade
//	 their preferences for their utilization."
//
// A policy maps the participant's private state (static preferences, load,
// reputation observations, satisfaction) to an intention in [-1, 1]. The
// mediation asks the consumer for CI_q[p] for each candidate provider p, and
// each candidate provider for PI_q[p].
//
// Scenario 5 of the demo swaps policies at run time (consumers become
// response-time seekers, providers become load-only) to show that SbQA
// adapts to whatever the participants care about; that is why policies are
// small value types rather than hard-wired formulas.
package intention

import (
	"fmt"

	"sbqa/internal/model"
)

// ProviderInputs carries everything a provider policy may consult when
// forming its intention to perform a query.
type ProviderInputs struct {
	// Preference is the provider's static preference for the query's
	// consumer/class, in [-1, 1] (in BOINC: how much the volunteer likes
	// the project).
	Preference float64

	// Utilization is the provider's current utilization in [0, 1].
	Utilization float64

	// Satisfaction is the provider's long-run δs(p) in [0, 1].
	Satisfaction float64

	// QueueLen is the provider's current queue length.
	QueueLen int
}

// ProviderPolicy computes a provider's intention PI_q[p].
type ProviderPolicy interface {
	Intention(in ProviderInputs) model.Intention
	String() string
}

// ConsumerInputs carries everything a consumer policy may consult when
// forming its intention to allocate a query to one candidate provider.
type ConsumerInputs struct {
	// Preference is the consumer's static preference for the provider,
	// in [-1, 1].
	Preference float64

	// Reputation is the consumer's current reputation estimate for the
	// provider, in [0, 1] (0.5 = unknown).
	Reputation float64

	// ExpectedDelay is the estimated response time the provider would
	// deliver for this query (pending work + service time), in simulated
	// seconds.
	ExpectedDelay float64

	// DelayTarget is the response time the consumer considers "good"; it
	// normalizes ExpectedDelay for response-time-seeking policies.
	DelayTarget float64

	// Satisfaction is the consumer's long-run δs(c) in [0, 1].
	Satisfaction float64
}

// ConsumerPolicy computes a consumer's intention CI_q[p].
type ConsumerPolicy interface {
	Intention(in ConsumerInputs) model.Intention
	String() string
}

// ---------------------------------------------------------------------------
// Provider policies
// ---------------------------------------------------------------------------

// PreferenceProvider expresses intentions equal to the provider's static
// preferences, ignoring load: the "selfish specialist" profile.
type PreferenceProvider struct{}

// Intention implements ProviderPolicy.
func (PreferenceProvider) Intention(in ProviderInputs) model.Intention {
	return model.Intention(in.Preference).Clamp()
}

func (PreferenceProvider) String() string { return "provider:preference" }

// LoadOnlyProvider expresses intentions from utilization alone: idle
// providers want queries (+1), saturated providers refuse them (-1).
// Scenario 5 gives every volunteer this profile ("volunteers be interested
// in their load").
type LoadOnlyProvider struct{}

// Intention implements ProviderPolicy.
func (LoadOnlyProvider) Intention(in ProviderInputs) model.Intention {
	return model.Intention(1 - 2*clamp01(in.Utilization)).Clamp()
}

func (LoadOnlyProvider) String() string { return "provider:load-only" }

// BlendProvider trades preference for utilization with a fixed weight β:
//
//	PI = β·pref + (1−β)·(1 − 2·U)
//
// β = 1 is PreferenceProvider, β = 0 is LoadOnlyProvider.
type BlendProvider struct{ Beta float64 }

// Intention implements ProviderPolicy.
func (b BlendProvider) Intention(in ProviderInputs) model.Intention {
	beta := clamp01(b.Beta)
	v := beta*clampPref(in.Preference) + (1-beta)*(1-2*clamp01(in.Utilization))
	return model.Intention(v).Clamp()
}

func (b BlendProvider) String() string { return fmt.Sprintf("provider:blend(β=%g)", b.Beta) }

// AdaptiveProvider is the SQLB-style self-adjusting profile: the weight
// given to preferences grows as the provider becomes dissatisfied
// (β = 1 − δs(p)). A satisfied provider behaves altruistically and helps
// balance load; a starved or mistreated one insists on the queries it
// actually wants — which is exactly the signal the mediator's adaptive ω
// then amplifies.
type AdaptiveProvider struct{}

// Intention implements ProviderPolicy.
func (AdaptiveProvider) Intention(in ProviderInputs) model.Intention {
	beta := 1 - clamp01(in.Satisfaction)
	v := beta*clampPref(in.Preference) + (1-beta)*(1-2*clamp01(in.Utilization))
	return model.Intention(v).Clamp()
}

func (AdaptiveProvider) String() string { return "provider:adaptive" }

// ---------------------------------------------------------------------------
// Consumer policies
// ---------------------------------------------------------------------------

// PreferenceConsumer expresses intentions equal to the consumer's static
// preferences for providers.
type PreferenceConsumer struct{}

// Intention implements ConsumerPolicy.
func (PreferenceConsumer) Intention(in ConsumerInputs) model.Intention {
	return model.Intention(in.Preference).Clamp()
}

func (PreferenceConsumer) String() string { return "consumer:preference" }

// ReputationBlendConsumer trades preference for reputation with a fixed
// weight γ:
//
//	CI = γ·pref + (1−γ)·(2·rep − 1)
//
// γ = 1 ignores reputation, γ = 0 trusts it entirely.
type ReputationBlendConsumer struct{ Gamma float64 }

// Intention implements ConsumerPolicy.
func (g ReputationBlendConsumer) Intention(in ConsumerInputs) model.Intention {
	gamma := clamp01(g.Gamma)
	v := gamma*clampPref(in.Preference) + (1-gamma)*(2*clamp01(in.Reputation)-1)
	return model.Intention(v).Clamp()
}

func (g ReputationBlendConsumer) String() string {
	return fmt.Sprintf("consumer:reputation-blend(γ=%g)", g.Gamma)
}

// ResponseTimeConsumer cares only about response time: a provider expected
// to answer instantly gets +1, one expected to take twice the target gets
// -1/3, with -1 as the asymptote. Scenario 5 gives every project this
// profile ("projects be interested only in response times").
type ResponseTimeConsumer struct{}

// Intention implements ConsumerPolicy.
func (ResponseTimeConsumer) Intention(in ConsumerInputs) model.Intention {
	target := in.DelayTarget
	if target <= 0 {
		target = 1
	}
	delay := in.ExpectedDelay
	if delay < 0 {
		delay = 0
	}
	// Maps delay 0 → +1, delay = target → 0, delay → ∞ → -1.
	v := (target - delay) / (target + delay)
	return model.Intention(v).Clamp()
}

func (ResponseTimeConsumer) String() string { return "consumer:response-time" }

// AdaptiveConsumer blends preference with reputation using a
// satisfaction-driven weight: a dissatisfied consumer (low δs(c)) leans on
// hard evidence (reputation); a satisfied one expresses its preferences.
type AdaptiveConsumer struct{}

// Intention implements ConsumerPolicy.
func (AdaptiveConsumer) Intention(in ConsumerInputs) model.Intention {
	gamma := clamp01(in.Satisfaction)
	v := gamma*clampPref(in.Preference) + (1-gamma)*(2*clamp01(in.Reputation)-1)
	return model.Intention(v).Clamp()
}

func (AdaptiveConsumer) String() string { return "consumer:adaptive" }

func clamp01(v float64) float64 {
	if v < 0 || v != v { // NaN guards
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampPref(v float64) float64 {
	if v < -1 || v != v {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}
