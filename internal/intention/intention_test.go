package intention

import (
	"math"
	"testing"
	"testing/quick"

	"sbqa/internal/model"
)

func TestPreferenceProvider(t *testing.T) {
	p := PreferenceProvider{}
	tests := []struct {
		pref float64
		want model.Intention
	}{
		{1, 1}, {-1, -1}, {0.5, 0.5}, {3, 1}, {-3, -1},
	}
	for _, tt := range tests {
		got := p.Intention(ProviderInputs{Preference: tt.pref, Utilization: 0.9})
		if got != tt.want {
			t.Errorf("pref=%v: got %v, want %v", tt.pref, got, tt.want)
		}
	}
}

func TestLoadOnlyProvider(t *testing.T) {
	p := LoadOnlyProvider{}
	tests := []struct {
		util float64
		want model.Intention
	}{
		{0, 1}, {0.5, 0}, {1, -1}, {2, -1}, {-1, 1},
	}
	for _, tt := range tests {
		got := p.Intention(ProviderInputs{Preference: -1, Utilization: tt.util})
		if math.Abs(float64(got-tt.want)) > 1e-12 {
			t.Errorf("util=%v: got %v, want %v", tt.util, got, tt.want)
		}
	}
}

func TestBlendProviderEndpoints(t *testing.T) {
	in := ProviderInputs{Preference: 0.8, Utilization: 0.9}
	if got, want := (BlendProvider{Beta: 1}).Intention(in), (PreferenceProvider{}).Intention(in); got != want {
		t.Errorf("β=1 should equal preference policy: %v vs %v", got, want)
	}
	if got, want := (BlendProvider{Beta: 0}).Intention(in), (LoadOnlyProvider{}).Intention(in); got != want {
		t.Errorf("β=0 should equal load-only policy: %v vs %v", got, want)
	}
	// Midpoint blends linearly: 0.5*0.8 + 0.5*(1-1.8) = 0.
	if got := (BlendProvider{Beta: 0.5}).Intention(in); math.Abs(float64(got)) > 1e-12 {
		t.Errorf("β=.5 blend = %v, want 0", got)
	}
}

func TestAdaptiveProviderShiftsWithSatisfaction(t *testing.T) {
	p := AdaptiveProvider{}
	// A dissatisfied idle provider that hates this query must say so.
	dissatisfied := p.Intention(ProviderInputs{Preference: -1, Utilization: 0, Satisfaction: 0})
	if dissatisfied != -1 {
		t.Errorf("dissatisfied provider should express preference: %v", dissatisfied)
	}
	// The same provider fully satisfied becomes load-driven (+1 when idle).
	satisfied := p.Intention(ProviderInputs{Preference: -1, Utilization: 0, Satisfaction: 1})
	if satisfied != 1 {
		t.Errorf("satisfied provider should volunteer capacity: %v", satisfied)
	}
}

func TestPreferenceConsumer(t *testing.T) {
	c := PreferenceConsumer{}
	if got := c.Intention(ConsumerInputs{Preference: 0.7, Reputation: 0}); got != 0.7 {
		t.Errorf("got %v", got)
	}
}

func TestReputationBlendConsumer(t *testing.T) {
	in := ConsumerInputs{Preference: 1, Reputation: 0}
	// γ=1: pure preference.
	if got := (ReputationBlendConsumer{Gamma: 1}).Intention(in); got != 1 {
		t.Errorf("γ=1: %v", got)
	}
	// γ=0: pure reputation, rep 0 → -1.
	if got := (ReputationBlendConsumer{Gamma: 0}).Intention(in); got != -1 {
		t.Errorf("γ=0: %v", got)
	}
	// Unknown provider (rep 0.5) contributes 0.
	mid := ConsumerInputs{Preference: 0.4, Reputation: 0.5}
	if got := (ReputationBlendConsumer{Gamma: 0.5}).Intention(mid); math.Abs(float64(got)-0.2) > 1e-12 {
		t.Errorf("γ=.5 with neutral rep = %v, want 0.2", got)
	}
}

func TestResponseTimeConsumer(t *testing.T) {
	c := ResponseTimeConsumer{}
	tests := []struct {
		delay, target float64
		want          float64
	}{
		{0, 10, 1},
		{10, 10, 0},
		{30, 10, -0.5},
		{5, 0, -2.0 / 3}, // target repaired to 1: (1-5)/(1+5)
		{-4, 10, 1},      // negative delay treated as 0
	}
	for _, tt := range tests {
		got := c.Intention(ConsumerInputs{ExpectedDelay: tt.delay, DelayTarget: tt.target})
		if math.Abs(float64(got)-tt.want) > 1e-12 {
			t.Errorf("delay=%v target=%v: got %v, want %v", tt.delay, tt.target, got, tt.want)
		}
	}
}

func TestResponseTimeConsumerMonotone(t *testing.T) {
	c := ResponseTimeConsumer{}
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		fast := c.Intention(ConsumerInputs{ExpectedDelay: x, DelayTarget: 7})
		slow := c.Intention(ConsumerInputs{ExpectedDelay: y, DelayTarget: 7})
		return fast >= slow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveConsumer(t *testing.T) {
	c := AdaptiveConsumer{}
	// Fully satisfied → pure preference.
	if got := c.Intention(ConsumerInputs{Preference: 0.9, Reputation: 0, Satisfaction: 1}); got != 0.9 {
		t.Errorf("satisfied consumer = %v", got)
	}
	// Fully dissatisfied → pure reputation (rep 1 → +1).
	if got := c.Intention(ConsumerInputs{Preference: -0.9, Reputation: 1, Satisfaction: 0}); got != 1 {
		t.Errorf("dissatisfied consumer = %v", got)
	}
}

func TestAllPoliciesStayInRange(t *testing.T) {
	provPolicies := []ProviderPolicy{
		PreferenceProvider{}, LoadOnlyProvider{},
		BlendProvider{Beta: 0.3}, AdaptiveProvider{},
	}
	consPolicies := []ConsumerPolicy{
		PreferenceConsumer{}, ReputationBlendConsumer{Gamma: 0.6},
		ResponseTimeConsumer{}, AdaptiveConsumer{},
	}
	f := func(a, b, c, d, e float64) bool {
		pin := ProviderInputs{Preference: a, Utilization: b, Satisfaction: c, QueueLen: int(math.Abs(d))}
		cin := ConsumerInputs{Preference: a, Reputation: b, ExpectedDelay: math.Abs(c), DelayTarget: math.Abs(d), Satisfaction: e}
		for _, p := range provPolicies {
			if !p.Intention(pin).Valid() {
				return false
			}
		}
		for _, p := range consPolicies {
			if !p.Intention(cin).Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, s := range []string{
		PreferenceProvider{}.String(), LoadOnlyProvider{}.String(),
		BlendProvider{Beta: 0.5}.String(), AdaptiveProvider{}.String(),
		PreferenceConsumer{}.String(), ReputationBlendConsumer{Gamma: 0.5}.String(),
		ResponseTimeConsumer{}.String(), AdaptiveConsumer{}.String(),
	} {
		if s == "" {
			t.Error("policy with empty String()")
		}
	}
}
