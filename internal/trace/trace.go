// Package trace is the mediation pipeline's flight recorder: sampling-gated
// per-query traces (one span per pipeline stage), allocation explain
// records, and the bounded ring buffer the daemon's debug endpoints read.
//
// # Design constraints
//
// The hot path must not notice tracing exists. Every instrumentation site
// in the pipeline gates on Query.Trace.Sampled — a value-type bool carried
// by the query itself — so an unsampled mediation costs one predictable
// branch per site and zero allocations. Sampled queries use pooled trace
// records with a fixed span capacity: past it, spans are counted as
// dropped, never grown; a full ring evicts the oldest finished trace back
// into the pool. No tracing operation ever blocks a mediation.
//
// # Aliasing rules for pooled records
//
// A record moves through three owners: the active map (between Start and
// Finish), the ring (after Finish), and the pool (after eviction). Writers
// append spans only while the record is in the active map, and every
// field access — append, finish, read-side copy, reuse-time reset — holds
// the record's own mutex. Readers copy a record into an independent
// TraceView while additionally holding the ring lock; eviction (the only
// path back into the pool) requires that same ring lock, so a view can
// never observe a record being recycled. Explain records are plain
// per-mediation heap values, never pooled, so views alias them safely.
//
// # Clock
//
// All timestamps are nanoseconds on a single process-local monotonic axis
// (Now). The per-stage latency histograms are fed inside RecordSpan from
// the very same span endpoints, so /v1/metrics and a trace can never
// disagree about a duration.
package trace

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sbqa/internal/model"
)

// The pipeline stages. One span per stage per mediation (participant and
// forward spans may repeat).
const (
	StageAdmission   = "admission"   // gateway: decode + admission control
	StageQueue       = "queue"       // shard scheduler wait (Class = QoS class)
	StageFanout      = "fanout"      // batched intention collection
	StageParticipant = "participant" // one remote participant's intention call
	StageImpute      = "impute"      // imputation of silent participants
	StageScore       = "score"       // allocator ranking (KnBest + Definition 3)
	StageDispatch    = "dispatch"    // hand-off to the selected workers
	StageForward     = "forward"     // cluster hop to the owning node
)

// start anchors the process-local monotonic clock.
var start = time.Now()

// Now returns nanoseconds since process start on the monotonic clock all
// spans share.
func Now() int64 { return int64(time.Since(start)) }

// Span is one timed pipeline stage of a trace.
type Span struct {
	Name  string
	Class string // sub-label: QoS class, participant kind, peer ID
	Start int64  // Now()-axis nanoseconds
	End   int64
	Extra int64 // stage-specific count: imputed participants, provider ID...
}

// Config sizes a Recorder.
type Config struct {
	// Sample is the fraction of locally originated queries to trace:
	// 0 disables sampling (remote-started traces still record), 1 traces
	// everything, anything between becomes a deterministic 1-in-N.
	Sample float64
	// Buffer is the flight-recorder ring capacity in finished traces
	// (default 256).
	Buffer int
	// SpanCap bounds the spans one trace retains; excess spans are
	// counted in TraceView.SpansDropped (default 64).
	SpanCap int
}

// record is one pooled in-flight or finished trace.
type record struct {
	mu       sync.Mutex
	id       model.TraceID
	parent   uint64
	query    model.QueryID
	consumer model.ConsumerID
	start    int64
	end      int64
	status   string
	errStr   string
	spans    []Span
	dropped  int
	explain  *model.Explain
}

// reset clears the record for pool reuse, keeping the spans backing array.
func (rec *record) reset() {
	rec.id = model.TraceID{}
	rec.parent = 0
	rec.query = 0
	rec.consumer = model.NoConsumer
	rec.start, rec.end = 0, 0
	rec.status, rec.errStr = "", ""
	rec.spans = rec.spans[:0]
	rec.dropped = 0
	rec.explain = nil
}

// Recorder owns the sampling decision, the active-trace map, the ring,
// and the stage histograms. A nil *Recorder is valid and records nothing.
type Recorder struct {
	every   uint64 // 0 = never, 1 = always, n = every nth
	spanCap int

	seed      uint64
	idCounter atomic.Uint64
	counter   atomic.Uint64 // sampling decisions

	mu     sync.RWMutex
	active map[model.TraceID]*record

	ringMu   sync.Mutex
	ring     []*record
	ringNext int

	pool sync.Pool

	started      atomic.Uint64
	finished     atomic.Uint64
	spansDropped atomic.Uint64
	evicted      atomic.Uint64

	stages [numStages]stageHist
}

// New builds a Recorder. Construction is the only place wall-clock time
// enters: it seeds the trace-ID stream.
func New(cfg Config) *Recorder {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	if cfg.SpanCap <= 0 {
		cfg.SpanCap = 64
	}
	r := &Recorder{
		every:   sampleEvery(cfg.Sample),
		spanCap: cfg.SpanCap,
		seed:    uint64(time.Now().UnixNano()),
		active:  make(map[model.TraceID]*record),
		ring:    make([]*record, cfg.Buffer),
	}
	r.pool.New = func() any {
		return &record{spans: make([]Span, 0, r.spanCap)}
	}
	return r
}

// sampleEvery folds a [0,1] rate into the 1-in-N counter gate.
func sampleEvery(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return 1
	default:
		return uint64(1/rate + 0.5)
	}
}

// splitmix64 is the SplitMix64 finalizer — a cheap, allocation-free,
// well-mixed hash of the ID counter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (r *Recorder) nextID64() uint64 {
	v := splitmix64(r.seed + r.idCounter.Add(1))
	if v == 0 {
		v = 1 // zero is the no-trace sentinel
	}
	return v
}

// StartLocal makes the sampling decision for a locally originated query.
// When sampled it registers a fresh trace and returns its context; an
// unsampled — but Decided, so no later layer re-draws — context (and
// false) otherwise.
func (r *Recorder) StartLocal() (model.TraceContext, bool) {
	if r == nil || r.every == 0 {
		return model.TraceContext{Decided: true}, false
	}
	if r.every > 1 && r.counter.Add(1)%r.every != 0 {
		return model.TraceContext{Decided: true}, false
	}
	tc := model.TraceContext{
		ID:      model.TraceID{Hi: r.nextID64(), Lo: r.nextID64()},
		Span:    r.nextID64(),
		Sampled: true,
		Decided: true,
	}
	r.register(tc)
	return tc, true
}

// StartRemote adopts an inbound (forwarded or downstream) trace context:
// the trace ID stays the caller's, this node records its own segment under
// it. Unsampled or malformed contexts pass through inert.
func (r *Recorder) StartRemote(tc model.TraceContext) model.TraceContext {
	tc.Decided = true
	if r == nil || !tc.Sampled || tc.ID.IsZero() {
		tc.Sampled = false
		return tc
	}
	r.register(tc)
	return tc
}

func (r *Recorder) register(tc model.TraceContext) {
	rec := r.pool.Get().(*record)
	rec.mu.Lock()
	rec.id = tc.ID
	rec.parent = tc.Span
	rec.consumer = model.NoConsumer
	rec.start = Now()
	rec.mu.Unlock()
	r.mu.Lock()
	if _, exists := r.active[tc.ID]; exists {
		// A duplicate start (same trace forwarded twice) keeps the first
		// record; the spare goes straight back.
		r.mu.Unlock()
		rec.reset()
		r.pool.Put(rec)
		return
	}
	r.active[tc.ID] = rec
	r.mu.Unlock()
	r.started.Add(1)
}

// Annotate attaches the engine-assigned query identity to an active trace.
func (r *Recorder) Annotate(id model.TraceID, q model.QueryID, c model.ConsumerID) {
	if r == nil {
		return
	}
	r.mu.RLock()
	rec := r.active[id]
	r.mu.RUnlock()
	if rec == nil {
		return
	}
	rec.mu.Lock()
	rec.query = q
	rec.consumer = c
	rec.mu.Unlock()
}

// RecordSpan appends one finished span to an active trace and feeds the
// matching stage histogram. Safe from concurrent fan-out goroutines.
// Spans for unknown (already finished) traces still count in the
// histograms — the measurement happened — but are not retained.
func (r *Recorder) RecordSpan(id model.TraceID, s Span) {
	if r == nil {
		return
	}
	r.observeStage(s.Name, s.End-s.Start)
	r.mu.RLock()
	rec := r.active[id]
	r.mu.RUnlock()
	if rec == nil {
		return
	}
	rec.mu.Lock()
	if len(rec.spans) < r.spanCap {
		rec.spans = append(rec.spans, s)
	} else {
		rec.dropped++
		r.spansDropped.Add(1)
	}
	rec.mu.Unlock()
}

// Finish closes an active trace and publishes it to the ring, evicting
// (and pooling) the oldest finished trace when full. Unknown IDs no-op.
func (r *Recorder) Finish(id model.TraceID, status, errStr string, explain *model.Explain) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rec := r.active[id]
	if rec != nil {
		delete(r.active, id)
	}
	r.mu.Unlock()
	if rec == nil {
		return
	}
	rec.mu.Lock()
	rec.end = Now()
	rec.status = status
	rec.errStr = errStr
	if explain != nil {
		rec.explain = explain
	}
	rec.mu.Unlock()
	r.finished.Add(1)

	r.ringMu.Lock()
	old := r.ring[r.ringNext]
	r.ring[r.ringNext] = rec
	r.ringNext = (r.ringNext + 1) % len(r.ring)
	r.ringMu.Unlock()
	if old != nil {
		old.mu.Lock()
		old.reset()
		old.mu.Unlock()
		r.pool.Put(old)
		r.evicted.Add(1)
	}
}

// ---------------------------------------------------------------------------
// Read side: views
// ---------------------------------------------------------------------------

// SpanView is one span of a TraceView.
type SpanView struct {
	Name       string  `json:"name"`
	Class      string  `json:"class,omitempty"`
	StartNS    int64   `json:"start_ns"`
	EndNS      int64   `json:"end_ns"`
	DurationMS float64 `json:"duration_ms"`
	Extra      int64   `json:"extra,omitempty"`
}

// ExplainEntryView is one candidate row of an ExplainView.
type ExplainEntryView struct {
	Rank      int     `json:"rank"`
	Provider  int     `json:"provider"`
	CI        float64 `json:"ci"`
	PI        float64 `json:"pi"`
	SatP      float64 `json:"sat_p"`
	Omega     float64 `json:"omega"`
	Score     float64 `json:"score"`
	CIImputed bool    `json:"ci_imputed,omitempty"`
	PIImputed bool    `json:"pi_imputed,omitempty"`
}

// ExplainView is the wire form of a model.Explain.
type ExplainView struct {
	Allocator  string             `json:"allocator"`
	SatC       float64            `json:"sat_c"`
	Candidates int                `json:"candidates"`
	Entries    []ExplainEntryView `json:"entries"`
}

// TraceView is an independent copy of one trace, safe to hold after the
// underlying record is recycled.
type TraceView struct {
	TraceID      string       `json:"trace_id"`
	ParentSpan   string       `json:"parent_span,omitempty"`
	QueryID      int64        `json:"query_id"`
	Consumer     int          `json:"consumer"`
	StartNS      int64        `json:"start_ns"`
	EndNS        int64        `json:"end_ns,omitempty"`
	DurationMS   float64      `json:"duration_ms,omitempty"`
	Status       string       `json:"status,omitempty"`
	Error        string       `json:"error,omitempty"`
	SpansDropped int          `json:"spans_dropped,omitempty"`
	Spans        []SpanView   `json:"spans"`
	Explain      *ExplainView `json:"explain,omitempty"`
}

func explainView(e *model.Explain) *ExplainView {
	if e == nil {
		return nil
	}
	v := &ExplainView{
		Allocator:  e.Allocator,
		SatC:       e.SatC,
		Candidates: e.Candidates,
		Entries:    make([]ExplainEntryView, len(e.Entries)),
	}
	for i, en := range e.Entries {
		v.Entries[i] = ExplainEntryView{
			Rank:      en.Rank,
			Provider:  int(en.Provider),
			CI:        float64(en.CI),
			PI:        float64(en.PI),
			SatP:      en.SatP,
			Omega:     en.Omega,
			Score:     en.Score,
			CIImputed: en.CIImputed,
			PIImputed: en.PIImputed,
		}
	}
	return v
}

// view copies rec; callers hold whatever lock keeps rec out of the pool.
func (rec *record) view() TraceView {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	v := TraceView{
		TraceID:      rec.id.String(),
		QueryID:      int64(rec.query),
		Consumer:     int(rec.consumer),
		StartNS:      rec.start,
		EndNS:        rec.end,
		Status:       rec.status,
		Error:        rec.errStr,
		SpansDropped: rec.dropped,
		Spans:        make([]SpanView, len(rec.spans)),
		Explain:      explainView(rec.explain),
	}
	if rec.parent != 0 {
		// W3C span IDs are fixed-width 16 hex digits; preserve leading zeros.
		v.ParentSpan = fmt.Sprintf("%016x", rec.parent)
	}
	if rec.end > rec.start {
		v.DurationMS = float64(rec.end-rec.start) / 1e6
	}
	for i, s := range rec.spans {
		v.Spans[i] = SpanView{
			Name:       s.Name,
			Class:      s.Class,
			StartNS:    s.Start,
			EndNS:      s.End,
			DurationMS: float64(s.End-s.Start) / 1e6,
			Extra:      s.Extra,
		}
	}
	return v
}

// TraceByQuery returns the most recent trace (finished first, then
// in-flight) recorded for the given query ID.
func (r *Recorder) TraceByQuery(q model.QueryID) (TraceView, bool) {
	if r == nil || q == 0 {
		return TraceView{}, false
	}
	r.ringMu.Lock()
	n := len(r.ring)
	for i := 1; i <= n; i++ {
		rec := r.ring[(r.ringNext-i+n)%n]
		if rec == nil {
			continue
		}
		rec.mu.Lock()
		hit := rec.query == q
		rec.mu.Unlock()
		if hit {
			v := rec.view()
			r.ringMu.Unlock()
			return v, true
		}
	}
	r.ringMu.Unlock()

	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, rec := range r.active {
		rec.mu.Lock()
		hit := rec.query == q
		rec.mu.Unlock()
		if hit {
			return rec.view(), true
		}
	}
	return TraceView{}, false
}

// TraceByID returns the trace with the given 32-hex-digit W3C trace ID.
func (r *Recorder) TraceByID(id string) (TraceView, bool) {
	if r == nil {
		return TraceView{}, false
	}
	tid, ok := parseTraceID(id)
	if !ok {
		return TraceView{}, false
	}
	r.ringMu.Lock()
	for _, rec := range r.ring {
		if rec == nil {
			continue
		}
		rec.mu.Lock()
		hit := rec.id == tid
		rec.mu.Unlock()
		if hit {
			v := rec.view()
			r.ringMu.Unlock()
			return v, true
		}
	}
	r.ringMu.Unlock()

	r.mu.RLock()
	rec := r.active[tid]
	r.mu.RUnlock()
	if rec == nil {
		return TraceView{}, false
	}
	// Still safe: an active record can only be pooled after Finish moves
	// it through the ring, and view copies under rec.mu.
	return rec.view(), true
}

// Slow returns up to limit finished traces at least minNS long, slowest
// first — the flight recorder's slow-query log.
func (r *Recorder) Slow(minNS int64, limit int) []TraceView {
	if r == nil {
		return nil
	}
	if limit <= 0 {
		limit = 50
	}
	var out []TraceView
	r.ringMu.Lock()
	n := len(r.ring)
	for i := 1; i <= n; i++ {
		rec := r.ring[(r.ringNext-i+n)%n]
		if rec == nil {
			continue
		}
		rec.mu.Lock()
		keep := rec.end-rec.start >= minNS
		rec.mu.Unlock()
		if keep {
			out = append(out, rec.view())
		}
	}
	r.ringMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].EndNS-out[i].StartNS > out[j].EndNS-out[j].StartNS
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Stats is the recorder's counter block.
type Stats struct {
	Started      uint64 `json:"started"`
	Finished     uint64 `json:"finished"`
	Active       int    `json:"active"`
	SpansDropped uint64 `json:"spans_dropped"`
	Evicted      uint64 `json:"evicted"`
}

// StatsSnapshot returns the recorder's counters.
func (r *Recorder) StatsSnapshot() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.RLock()
	active := len(r.active)
	r.mu.RUnlock()
	return Stats{
		Started:      r.started.Load(),
		Finished:     r.finished.Load(),
		Active:       active,
		SpansDropped: r.spansDropped.Load(),
		Evicted:      r.evicted.Load(),
	}
}

// ---------------------------------------------------------------------------
// Stage histograms
// ---------------------------------------------------------------------------

// The explicit histogram buckets in seconds, chosen for the 0.1ms–2.5s
// band a mediation stage plausibly spans.
var StageBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

const numBuckets = len(StageBuckets)

// The stages carrying a histogram, index-aligned with Recorder.stages.
var stageNames = [...]string{
	StageAdmission, StageQueue, StageFanout, StageParticipant,
	StageImpute, StageScore, StageDispatch, StageForward,
}

const numStages = len(stageNames)

type stageHist struct {
	buckets  [numBuckets]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

func stageIndex(name string) int {
	switch name {
	case StageAdmission:
		return 0
	case StageQueue:
		return 1
	case StageFanout:
		return 2
	case StageParticipant:
		return 3
	case StageImpute:
		return 4
	case StageScore:
		return 5
	case StageDispatch:
		return 6
	case StageForward:
		return 7
	}
	return -1
}

func (r *Recorder) observeStage(name string, nanos int64) {
	i := stageIndex(name)
	if i < 0 {
		return
	}
	if nanos < 0 {
		nanos = 0
	}
	h := &r.stages[i]
	secs := float64(nanos) / 1e9
	for b, le := range StageBuckets {
		if secs <= le {
			h.buckets[b].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNanos.Add(nanos)
}

// StageSnapshot is one stage histogram's state in cumulative Prometheus
// form: Buckets[i] counts observations <= StageBuckets[i].
type StageSnapshot struct {
	Stage   string
	Buckets [numBuckets]uint64 // cumulative
	Count   uint64
	Sum     float64 // seconds
}

// StageSnapshots returns every stage histogram, in stage order.
func (r *Recorder) StageSnapshots() []StageSnapshot {
	if r == nil {
		return nil
	}
	out := make([]StageSnapshot, numStages)
	for i := range r.stages {
		h := &r.stages[i]
		s := StageSnapshot{Stage: stageNames[i]}
		var cum uint64
		for b := range h.buckets {
			cum += h.buckets[b].Load()
			s.Buckets[b] = cum
		}
		s.Count = h.count.Load()
		s.Sum = float64(h.sumNanos.Load()) / 1e9
		out[i] = s
	}
	return out
}

// ---------------------------------------------------------------------------
// W3C traceparent propagation
// ---------------------------------------------------------------------------

// Header is the propagation header name on cluster forwards and
// participant webhooks.
const Header = "traceparent"

// Format renders tc in W3C traceparent form:
// 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>.
func Format(tc model.TraceContext) string {
	flags := 0
	if tc.Sampled {
		flags = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-%02x", tc.ID.Hi, tc.ID.Lo, tc.Span, flags)
}

// Parse decodes a traceparent header. Unknown versions, malformed fields,
// and the all-zero trace ID all return ok = false.
func Parse(s string) (model.TraceContext, bool) {
	if len(s) != 55 || s[0] != '0' || s[1] != '0' ||
		s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return model.TraceContext{}, false
	}
	id, ok := parseTraceID(s[3:35])
	if !ok {
		return model.TraceContext{}, false
	}
	span, err := strconv.ParseUint(s[36:52], 16, 64)
	if err != nil {
		return model.TraceContext{}, false
	}
	flags, err := strconv.ParseUint(s[53:55], 16, 8)
	if err != nil {
		return model.TraceContext{}, false
	}
	return model.TraceContext{ID: id, Span: span, Sampled: flags&1 != 0}, true
}

func parseTraceID(s string) (model.TraceID, bool) {
	if len(s) != 32 {
		return model.TraceID{}, false
	}
	hi, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return model.TraceID{}, false
	}
	lo, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return model.TraceID{}, false
	}
	id := model.TraceID{Hi: hi, Lo: lo}
	return id, !id.IsZero()
}
