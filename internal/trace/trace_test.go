package trace

import (
	"fmt"
	"sync"
	"testing"

	"sbqa/internal/model"
)

func TestSampleEvery(t *testing.T) {
	cases := []struct {
		rate float64
		want uint64
	}{
		{0, 0}, {-1, 0}, {1, 1}, {2, 1}, {0.5, 2}, {0.25, 4}, {0.1, 10}, {0.001, 1000},
	}
	for _, c := range cases {
		if got := sampleEvery(c.rate); got != c.want {
			t.Errorf("sampleEvery(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestStartLocalSampling(t *testing.T) {
	r := New(Config{Sample: 0.25, Buffer: 8})
	sampled := 0
	for i := 0; i < 100; i++ {
		if tc, ok := r.StartLocal(); ok {
			sampled++
			if !tc.Sampled || tc.ID.IsZero() || tc.Span == 0 {
				t.Fatalf("sampled context malformed: %+v", tc)
			}
			r.Finish(tc.ID, "allocated", "", nil)
		}
	}
	if sampled != 25 {
		t.Fatalf("1-in-4 sampling over 100 queries: got %d traces, want 25", sampled)
	}
}

func TestStartLocalDisabled(t *testing.T) {
	r := New(Config{Sample: 0})
	if _, ok := r.StartLocal(); ok {
		t.Fatal("Sample 0 must never sample")
	}
	var nilRec *Recorder
	if _, ok := nilRec.StartLocal(); ok {
		t.Fatal("nil recorder must never sample")
	}
	// All other methods must be nil-safe no-ops.
	nilRec.Annotate(model.TraceID{Hi: 1}, 1, 1)
	nilRec.RecordSpan(model.TraceID{Hi: 1}, Span{Name: StageScore})
	nilRec.Finish(model.TraceID{Hi: 1}, "x", "", nil)
	if _, ok := nilRec.TraceByQuery(1); ok {
		t.Fatal("nil recorder lookup must miss")
	}
	if got := nilRec.StatsSnapshot(); got != (Stats{}) {
		t.Fatalf("nil recorder stats = %+v", got)
	}
	if nilRec.StageSnapshots() != nil || nilRec.Slow(0, 0) != nil {
		t.Fatal("nil recorder views must be empty")
	}
}

func TestStartRemoteAdoptsContext(t *testing.T) {
	r := New(Config{Sample: 0, Buffer: 8}) // locally disabled
	in := model.TraceContext{ID: model.TraceID{Hi: 7, Lo: 9}, Span: 42, Sampled: true}
	tc := r.StartRemote(in)
	if !tc.Sampled || tc.ID != in.ID {
		t.Fatalf("StartRemote must adopt the inbound sampled context, got %+v", tc)
	}
	r.Annotate(tc.ID, 5, 3)
	r.Finish(tc.ID, "allocated", "", nil)
	v, ok := r.TraceByQuery(5)
	if !ok {
		t.Fatal("forwarded trace not found by query")
	}
	if v.TraceID != in.ID.String() {
		t.Fatalf("trace ID not preserved: %s != %s", v.TraceID, in.ID.String())
	}
	// W3C span IDs are fixed-width 16 hex digits, leading zeros kept.
	if v.ParentSpan != "000000000000002a" {
		t.Fatalf("parent span = %q, want 000000000000002a", v.ParentSpan)
	}

	// Unsampled and zero-ID contexts pass through inert.
	if out := r.StartRemote(model.TraceContext{ID: model.TraceID{Hi: 1}, Sampled: false}); out.Sampled {
		t.Fatal("unsampled inbound context must stay unsampled")
	}
	if out := r.StartRemote(model.TraceContext{Sampled: true}); out.Sampled {
		t.Fatal("zero-ID inbound context must be rejected")
	}
}

func TestSpansAndExplainRoundTrip(t *testing.T) {
	r := New(Config{Sample: 1, Buffer: 8})
	tc, ok := r.StartLocal()
	if !ok {
		t.Fatal("Sample 1 must always sample")
	}
	r.Annotate(tc.ID, 11, 2)
	r.RecordSpan(tc.ID, Span{Name: StageFanout, Start: 100, End: 300, Extra: 4})
	r.RecordSpan(tc.ID, Span{Name: StageScore, Start: 300, End: 450, Extra: 4})
	ex := &model.Explain{
		Allocator:  "sbqa",
		SatC:       0.5,
		Candidates: 4,
		Entries: []model.ExplainEntry{
			{Rank: 0, Provider: 3, CI: 0.9, PI: 0.8, SatP: 0.7, Omega: 0.4, Score: 0.85, PIImputed: true},
		},
	}
	r.Finish(tc.ID, "allocated", "", ex)

	v, ok := r.TraceByID(tc.ID.String())
	if !ok {
		t.Fatal("finished trace not found by ID")
	}
	if v.Status != "allocated" || v.QueryID != 11 || v.Consumer != 2 {
		t.Fatalf("trace identity wrong: %+v", v)
	}
	if len(v.Spans) != 2 || v.Spans[0].Name != StageFanout || v.Spans[1].Name != StageScore {
		t.Fatalf("spans wrong: %+v", v.Spans)
	}
	if v.Spans[0].DurationMS != 200.0/1e6 { // 200ns in ms
		t.Fatalf("span duration = %v", v.Spans[0].DurationMS)
	}
	if v.Explain == nil || v.Explain.Allocator != "sbqa" || len(v.Explain.Entries) != 1 {
		t.Fatalf("explain lost: %+v", v.Explain)
	}
	e := v.Explain.Entries[0]
	if e.Provider != 3 || e.Omega != 0.4 || !e.PIImputed || e.CIImputed {
		t.Fatalf("explain entry wrong: %+v", e)
	}
}

func TestSpanCapDropsNotGrows(t *testing.T) {
	r := New(Config{Sample: 1, Buffer: 4, SpanCap: 3})
	tc, _ := r.StartLocal()
	for i := 0; i < 10; i++ {
		r.RecordSpan(tc.ID, Span{Name: StageParticipant, Start: int64(i), End: int64(i + 1)})
	}
	r.Finish(tc.ID, "allocated", "", nil)
	v, _ := r.TraceByID(tc.ID.String())
	if len(v.Spans) != 3 {
		t.Fatalf("span cap not enforced: %d spans", len(v.Spans))
	}
	if v.SpansDropped != 7 {
		t.Fatalf("dropped = %d, want 7", v.SpansDropped)
	}
	if st := r.StatsSnapshot(); st.SpansDropped != 7 {
		t.Fatalf("recorder dropped counter = %d, want 7", st.SpansDropped)
	}
}

func TestRingEvictionRecycles(t *testing.T) {
	r := New(Config{Sample: 1, Buffer: 2})
	var ids []model.TraceID
	for i := 0; i < 5; i++ {
		tc, _ := r.StartLocal()
		r.Annotate(tc.ID, model.QueryID(i+1), 0)
		r.Finish(tc.ID, "allocated", "", nil)
		ids = append(ids, tc.ID)
	}
	st := r.StatsSnapshot()
	if st.Started != 5 || st.Finished != 5 || st.Active != 0 {
		t.Fatalf("counters wrong: %+v", st)
	}
	if st.Evicted != 3 {
		t.Fatalf("evicted = %d, want 3", st.Evicted)
	}
	// Only the two newest survive.
	if _, ok := r.TraceByID(ids[4].String()); !ok {
		t.Fatal("newest trace evicted")
	}
	if _, ok := r.TraceByID(ids[0].String()); ok {
		t.Fatal("oldest trace should have been evicted")
	}
}

func TestViewIsIndependentCopy(t *testing.T) {
	r := New(Config{Sample: 1, Buffer: 1})
	tc, _ := r.StartLocal()
	r.Annotate(tc.ID, 1, 0)
	r.RecordSpan(tc.ID, Span{Name: StageScore, Start: 1, End: 2})
	r.Finish(tc.ID, "allocated", "", nil)
	v, _ := r.TraceByQuery(1)

	// Evict the record back into the pool and reuse it.
	tc2, _ := r.StartLocal()
	r.Annotate(tc2.ID, 2, 0)
	r.RecordSpan(tc2.ID, Span{Name: StageDispatch, Start: 5, End: 9})
	r.Finish(tc2.ID, "rejected", "boom", nil)

	if v.QueryID != 1 || v.Status != "allocated" || len(v.Spans) != 1 || v.Spans[0].Name != StageScore {
		t.Fatalf("view mutated by record recycling: %+v", v)
	}
}

func TestFinishUnknownIDNoOp(t *testing.T) {
	r := New(Config{Sample: 1, Buffer: 2})
	r.Finish(model.TraceID{Hi: 99, Lo: 1}, "allocated", "", nil)
	if st := r.StatsSnapshot(); st.Finished != 0 {
		t.Fatalf("unknown finish counted: %+v", st)
	}
}

func TestSlowFiltersAndSorts(t *testing.T) {
	r := New(Config{Sample: 1, Buffer: 8})
	mk := func(q model.QueryID, spanNanos int64) {
		tc, _ := r.StartLocal()
		r.Annotate(tc.ID, q, 0)
		// Stretch the trace duration via the record's own clock by finishing
		// later; instead force it through span bookkeeping: the trace
		// duration is end-start stamped by the recorder, so just finish and
		// rely on the natural ordering below.
		r.Finish(tc.ID, "allocated", "", nil)
		_ = spanNanos
	}
	mk(1, 0)
	mk(2, 0)
	all := r.Slow(0, 10)
	if len(all) != 2 {
		t.Fatalf("Slow(0) returned %d traces, want 2", len(all))
	}
	// A threshold beyond any plausible test duration filters everything.
	if got := r.Slow(int64(3600)*1e9, 10); len(got) != 0 {
		t.Fatalf("Slow(1h) returned %d traces, want 0", len(got))
	}
	if got := r.Slow(0, 1); len(got) != 1 {
		t.Fatalf("limit not applied: %d", len(got))
	}
}

func TestStageHistogram(t *testing.T) {
	r := New(Config{Sample: 1, Buffer: 2})
	tc, _ := r.StartLocal()
	// 0.5ms lands in the 0.0005 bucket; 30ms lands in 0.05.
	r.RecordSpan(tc.ID, Span{Name: StageScore, Start: 0, End: 500_000})
	r.RecordSpan(tc.ID, Span{Name: StageScore, Start: 0, End: 30_000_000})
	r.Finish(tc.ID, "allocated", "", nil)

	var snap StageSnapshot
	for _, s := range r.StageSnapshots() {
		if s.Stage == StageScore {
			snap = s
		}
	}
	if snap.Count != 2 {
		t.Fatalf("score count = %d, want 2", snap.Count)
	}
	if snap.Sum != 0.0305 {
		t.Fatalf("score sum = %v, want 0.0305", snap.Sum)
	}
	// Cumulative form: every bucket >= the previous one, final bucket = count
	// (both observations fall inside the explicit bucket range).
	var prev uint64
	for i, b := range snap.Buckets {
		if b < prev {
			t.Fatalf("bucket %d not cumulative: %d < %d", i, b, prev)
		}
		prev = b
	}
	if snap.Buckets[numBuckets-1] != 2 {
		t.Fatalf("final cumulative bucket = %d, want 2", snap.Buckets[numBuckets-1])
	}
	// le=0.0005 must already include the 0.5ms observation.
	for i, le := range StageBuckets {
		if le == 0.0005 && snap.Buckets[i] != 1 {
			t.Fatalf("le=0.0005 cumulative = %d, want 1", snap.Buckets[i])
		}
	}
	// Histograms observe even spans for already-finished traces.
	r.RecordSpan(model.TraceID{Hi: 123}, Span{Name: StageScore, Start: 0, End: 1000})
	for _, s := range r.StageSnapshots() {
		if s.Stage == StageScore && s.Count != 3 {
			t.Fatalf("post-finish observation lost: count = %d", s.Count)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tc := model.TraceContext{
		ID:      model.TraceID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210},
		Span:    0x00f067aa0ba902b7,
		Sampled: true,
	}
	s := Format(tc)
	want := "00-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01"
	if s != want {
		t.Fatalf("Format = %q, want %q", s, want)
	}
	got, ok := Parse(s)
	if !ok || got != tc {
		t.Fatalf("Parse round trip failed: %+v ok=%v", got, ok)
	}
	// Unsampled flags.
	tc.Sampled = false
	got, ok = Parse(Format(tc))
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip failed: %+v ok=%v", got, ok)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"01-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01",  // version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace ID
		"00-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-0g",  // bad flags
		"00-0123456789abcdeffedcba987654321g-00f067aa0ba902b7-01",  // bad hex
		"00_0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01",  // bad dash
		"00-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-011", // length
	}
	for _, s := range bad {
		if _, ok := Parse(s); ok {
			t.Errorf("Parse(%q) accepted malformed header", s)
		}
	}
}

func TestDuplicateRegisterKeepsFirst(t *testing.T) {
	r := New(Config{Sample: 0, Buffer: 4})
	tc := model.TraceContext{ID: model.TraceID{Hi: 1, Lo: 2}, Span: 3, Sampled: true}
	r.StartRemote(tc)
	r.Annotate(tc.ID, 7, 0)
	r.StartRemote(tc) // duplicate: same trace forwarded twice
	v, ok := r.TraceByQuery(7)
	if !ok || v.QueryID != 7 {
		t.Fatalf("duplicate register clobbered the first record: %+v ok=%v", v, ok)
	}
	if st := r.StatsSnapshot(); st.Started != 1 {
		t.Fatalf("duplicate register counted twice: %+v", st)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New(Config{Sample: 1, Buffer: 16, SpanCap: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tc, ok := r.StartLocal()
				if !ok {
					continue
				}
				q := model.QueryID(g*1000 + i)
				r.Annotate(tc.ID, q, model.ConsumerID(g))
				for s := 0; s < 4; s++ {
					r.RecordSpan(tc.ID, Span{Name: StageParticipant, Start: int64(s), End: int64(s + 1)})
				}
				r.Finish(tc.ID, "allocated", "", nil)
			}
		}(g)
	}
	// Concurrent readers against the churn.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Slow(0, 5)
				r.TraceByQuery(model.QueryID(i))
				r.StatsSnapshot()
				r.StageSnapshots()
			}
		}()
	}
	wg.Wait()
	st := r.StatsSnapshot()
	if st.Started != 1600 || st.Finished != 1600 || st.Active != 0 {
		t.Fatalf("counters after churn: %+v", st)
	}
}

func TestIDStringForm(t *testing.T) {
	id := model.TraceID{Hi: 0xab, Lo: 0xcd}
	if got, want := id.String(), fmt.Sprintf("%016x%016x", 0xab, 0xcd); got != want {
		t.Fatalf("TraceID.String() = %q, want %q", got, want)
	}
	if !(model.TraceID{}).IsZero() || id.IsZero() {
		t.Fatal("IsZero wrong")
	}
}
