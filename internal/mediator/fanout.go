package mediator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/event"
	"sbqa/internal/model"
	"sbqa/internal/trace"
)

// This file implements the default adapter behind the v2 batched intention
// protocol (alloc.Env): the mediator's env fans one batch out over the
// registered participants. In-process participants — anything implementing
// only the synchronous directory contracts — are called inline, in candidate
// order, so single-shard runs stay byte-identical to the historical
// pipeline. Participants that additionally implement one of the context-
// aware interfaces below (typically network-backed: the sbqad gateway's
// webhook participants) are contacted concurrently, each bounded by
// Config.ParticipantDeadline; a participant that stays silent past its
// deadline (or fails) has its intention imputed from its satisfaction
// registry state instead of stalling the mediation — the paper's autonomy
// assumption made operational.

// ConsumerParticipant is the optional context-aware extension of Consumer
// for autonomous consumers the mediator reaches over a network. When a
// registered consumer implements it, the mediator collects CI_q over the
// whole candidate batch with a single call instead of looping over the
// synchronous Intention method.
//
// The returned slice must be position-aligned with kn; any other length is
// treated as a failed collection and the whole CI vector is imputed. The
// call runs on its own goroutine and must honor ctx — a call that outlives
// ctx is abandoned (its goroutine leaks until the implementation returns, so
// implementations should not block indefinitely).
type ConsumerParticipant interface {
	Intentions(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) ([]model.Intention, error)
}

// ProviderParticipant is the optional context-aware extension of Provider
// for autonomous providers the mediator reaches over a network: PI_q is
// gathered through IntentionContext instead of the synchronous Intention
// method, concurrently with every other participant of the batch. The same
// deadline and abandonment rules as ConsumerParticipant apply.
type ProviderParticipant interface {
	IntentionContext(ctx context.Context, q model.Query) (model.Intention, error)
}

// BidderParticipant is the optional context-aware extension of Provider for
// the economic baseline's bidding round: bids are gathered through
// BidContext under the same fan-out, deadline, and abandonment rules. A
// silent bidder's bid is imputed as its expected completion delay.
type BidderParticipant interface {
	BidContext(ctx context.Context, q model.Query) (float64, error)
}

// callWithDeadline invokes one participant call on its own goroutine,
// bounded by the per-participant deadline d (0 = no bound beyond ctx). The
// select guarantees the mediation never waits past the deadline even when
// the participant ignores ctx entirely; the abandoned call's goroutine
// finishes in the background.
func callWithDeadline[T any](ctx context.Context, d time.Duration, f func(ctx context.Context) (T, error)) (T, error) {
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := f(ctx)
		ch <- outcome{v: v, err: err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// imputedProviderIntention derives a silent provider's stand-in intention
// from its registry state: δa(p), the mean unit intention the provider has
// expressed over its remembered proposals, mapped back from [0, 1] to
// [-1, 1]. A cold or unknown provider imputes to neutral 0.
func (m *Mediator) imputedProviderIntention(id model.ProviderID) model.Intention {
	return model.Intention(2*m.registry.ProviderAdequation(id) - 1).Clamp()
}

// imputedConsumerIntention derives a silent consumer's stand-in intention
// from its registry state: δa(c), the mean unit intention the consumer has
// expressed toward its remembered candidate sets, mapped back to [-1, 1].
func (m *Mediator) imputedConsumerIntention(c model.ConsumerID) model.Intention {
	return model.Intention(2*m.registry.ConsumerAdequation(c) - 1).Clamp()
}

// Intentions implements the batched v2 protocol (alloc.Env) and reports
// every imputation to the configured observer, in candidate order (the
// consumer's event first), on the mediating goroutine.
func (e env) Intentions(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) (alloc.IntentionSet, error) {
	if !q.Trace.Sampled {
		set, err := e.collect(ctx, q, kn, true)
		if err != nil {
			return set, err
		}
		e.m.emitImputations(q, kn, &set)
		return set, nil
	}
	// Sampled: bracket the collection and the imputation report with their
	// stage spans, and stash the end time so the mediator's score span can
	// subtract the fan-out from the allocator's wall time.
	fanStart := trace.Now()
	set, err := e.collect(ctx, q, kn, true)
	fanEnd := trace.Now()
	e.m.tracer.RecordSpan(q.Trace.ID, trace.Span{
		Name:  trace.StageFanout,
		Start: fanStart,
		End:   fanEnd,
		Extra: int64(len(kn)),
	})
	if err != nil {
		e.m.lastFanoutEnd = fanEnd
		return set, err
	}
	e.m.emitImputations(q, kn, &set)
	impEnd := trace.Now()
	e.m.tracer.RecordSpan(q.Trace.ID, trace.Span{
		Name:  trace.StageImpute,
		Start: fanEnd,
		End:   impEnd,
		Extra: int64(set.ImputedCount()),
	})
	e.m.lastFanoutEnd = impEnd
	return set, nil
}

// intentionScratch resizes *buf to n zeroed intentions, reallocating only
// when capacity is exceeded, and returns the (stored-back) buffer.
func intentionScratch(buf *[]model.Intention, n int) []model.Intention {
	b := *buf
	if cap(b) < n {
		b = make([]model.Intention, n)
	} else {
		b = b[:n]
		clear(b)
	}
	*buf = b
	return b
}

// collect gathers the consumer's and (when withPI) every candidate
// provider's intentions for q over the batch kn. Context-aware participants
// fan out concurrently with per-participant deadlines and imputation;
// in-process participants are called inline in candidate order. A non-nil
// error is returned only when ctx itself is done — individual silent
// participants never fail the batch.
//
// The returned set's CI and PI vectors alias the mediator's per-shard scratch
// (ciBuf/piBuf): they are valid until the next collect on this shard, and
// every consumer of the set — the allocator's build loop, the backfill copy,
// the registry's synchronous recording — copies or consumes them before that.
//
// The all-in-process batch (no context-aware participant anywhere — the
// common hot path) runs closure-free: the goroutine-spawning fan-out lives in
// collectFanout so that escape analysis keeps the set header and the
// synchronization state off the heap here.
func (e env) collect(ctx context.Context, q model.Query, kn []model.ProviderSnapshot, withPI bool) (alloc.IntentionSet, error) {
	if err := ctx.Err(); err != nil {
		return alloc.IntentionSet{}, err
	}
	if e.needsFanout(kn, withPI) {
		return e.collectFanout(ctx, q, kn, withPI)
	}
	set := alloc.IntentionSet{CI: intentionScratch(&e.m.ciBuf, len(kn))}
	if withPI {
		set.PI = intentionScratch(&e.m.piBuf, len(kn))
		for i, snap := range kn {
			// A nil provider unregistered between discovery and collection
			// (shared directory churn): zero intention, exactly as the v1
			// pipeline scored departed providers; the backfill drops them
			// from the allocation entirely.
			if prov := e.m.candidateOf(snap.ID); prov != nil {
				set.PI[i] = prov.Intention(q)
			}
		}
	}
	if e.consumer != nil {
		for i, snap := range kn {
			set.CI[i] = e.consumer.Intention(q, snap)
		}
	}
	if err := ctx.Err(); err != nil {
		return alloc.IntentionSet{}, err
	}
	return set, nil
}

// needsFanout reports whether any participant of the batch is context-aware
// (network-backed), requiring the concurrent fan-out path. The scan costs one
// extra candidateOf lookup per provider on the synchronous path — a binary
// search over the candidate buffer, no allocation.
func (e env) needsFanout(kn []model.ProviderSnapshot, withPI bool) bool {
	if _, ok := e.consumer.(ConsumerParticipant); ok {
		return true
	}
	if !withPI {
		return false
	}
	for _, snap := range kn {
		if prov := e.m.candidateOf(snap.ID); prov != nil {
			if _, ok := prov.(ProviderParticipant); ok {
				return true
			}
		}
	}
	return false
}

// collectFanout is the concurrent arm of collect: at least one participant is
// context-aware, so the batch fans out with per-participant deadlines and
// imputation. Heap traffic here is acceptable — this path already pays a
// network round trip per participant.
func (e env) collectFanout(ctx context.Context, q model.Query, kn []model.ProviderSnapshot, withPI bool) (alloc.IntentionSet, error) {
	set := alloc.IntentionSet{CI: intentionScratch(&e.m.ciBuf, len(kn))}
	deadline := e.m.cfg.ParticipantDeadline
	var wg sync.WaitGroup
	var mu sync.Mutex // guards the set's lazily-allocated provenance slices

	if withPI {
		set.PI = intentionScratch(&e.m.piBuf, len(kn))
		for i, snap := range kn {
			prov := e.m.candidateOf(snap.ID)
			if prov == nil {
				// Unregistered between discovery and collection (shared
				// directory churn): zero intention, exactly as the v1
				// pipeline scored departed providers; the backfill drops
				// them from the allocation entirely.
				continue
			}
			if pp, ok := prov.(ProviderParticipant); ok {
				wg.Add(1)
				go func(i int, id model.ProviderID, pp ProviderParticipant) {
					defer wg.Done()
					var pStart int64
					if q.Trace.Sampled {
						pStart = trace.Now()
					}
					v, err := callWithDeadline(ctx, deadline, func(ctx context.Context) (model.Intention, error) {
						return pp.IntentionContext(ctx, q)
					})
					if q.Trace.Sampled {
						// Recorder appends are mutex-guarded and wg.Wait
						// below orders every append before the trace can
						// finish.
						e.m.tracer.RecordSpan(q.Trace.ID, trace.Span{
							Name:  trace.StageParticipant,
							Class: "provider",
							Start: pStart,
							End:   trace.Now(),
							Extra: int64(id),
						})
					}
					if err != nil {
						v = e.m.imputedProviderIntention(id)
						mu.Lock()
						set.MarkProviderImputed(i, err)
						mu.Unlock()
					}
					set.PI[i] = v
				}(i, snap.ID, pp)
				continue
			}
			set.PI[i] = prov.Intention(q)
		}
	}

	if cp, ok := e.consumer.(ConsumerParticipant); ok {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cStart int64
			if q.Trace.Sampled {
				cStart = trace.Now()
			}
			vals, err := callWithDeadline(ctx, deadline, func(ctx context.Context) ([]model.Intention, error) {
				return cp.Intentions(ctx, q, kn)
			})
			if q.Trace.Sampled {
				e.m.tracer.RecordSpan(q.Trace.ID, trace.Span{
					Name:  trace.StageParticipant,
					Class: "consumer",
					Start: cStart,
					End:   trace.Now(),
					Extra: int64(q.Consumer),
				})
			}
			if err == nil && len(vals) != len(kn) {
				err = fmt.Errorf("mediator: consumer %d returned %d intentions for %d candidates",
					q.Consumer, len(vals), len(kn))
			}
			if err != nil {
				imputed := e.m.imputedConsumerIntention(q.Consumer)
				for i := range set.CI {
					set.CI[i] = imputed
				}
				set.CIImputed = true
				set.CIErr = err
				return
			}
			copy(set.CI, vals)
		}()
	} else if e.consumer != nil {
		for i, snap := range kn {
			set.CI[i] = e.consumer.Intention(q, snap)
		}
	}

	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The mediation itself was canceled: abort rather than score a
		// batch of wholesale-imputed values.
		return alloc.IntentionSet{}, err
	}
	return set, nil
}

// emitImputations reports every imputed batch position to the configured
// observer.
func (m *Mediator) emitImputations(q model.Query, kn []model.ProviderSnapshot, set *alloc.IntentionSet) {
	obs := m.cfg.Observer
	if obs == nil {
		return
	}
	if set.CIImputed && set.Len() > 0 {
		obs.OnIntentionImputed(event.Imputation{
			Query:    q,
			Provider: model.NoProvider,
			Consumer: q.Consumer,
			Err:      set.CIErr,
			Imputed:  set.CI[0],
		})
	}
	for i := range kn {
		if set.ProviderImputed(i) {
			obs.OnIntentionImputed(event.Imputation{
				Query:    q,
				Provider: kn[i].ID,
				Consumer: q.Consumer,
				Err:      set.PIErr[i],
				Imputed:  set.PI[i],
			})
		}
	}
}

// Bids implements the batched v2 protocol (alloc.Env): the economic
// baseline's bidding round under the same fan-out and deadline rules. A
// silent or departed bidder's bid is imputed as its expected completion
// delay (no observer event — bids are prices, not intentions).
func (e env) Bids(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Per-shard scratch: every position is written below, and the economic
	// allocator copies the bids it keeps before ranking.
	if cap(e.m.bidBuf) < len(kn) {
		e.m.bidBuf = make([]float64, len(kn))
	}
	bids := e.m.bidBuf[:len(kn)]
	deadline := e.m.cfg.ParticipantDeadline
	var wg sync.WaitGroup
	for i, snap := range kn {
		prov := e.m.candidateOf(snap.ID)
		if prov == nil {
			bids[i] = snap.ExpectedDelay(q.Work)
			continue
		}
		if bp, ok := prov.(BidderParticipant); ok {
			wg.Add(1)
			go func(i int, snap model.ProviderSnapshot, bp BidderParticipant) {
				defer wg.Done()
				v, err := callWithDeadline(ctx, deadline, func(ctx context.Context) (float64, error) {
					return bp.BidContext(ctx, q)
				})
				if err != nil {
					v = snap.ExpectedDelay(q.Work)
				}
				bids[i] = v
			}(i, snap, bp)
			continue
		}
		bids[i] = prov.Bid(q)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return bids, nil
}

// ProviderSatisfactions implements the batched v2 protocol (alloc.Env) from
// the shared satisfaction registry.
func (e env) ProviderSatisfactions(kn []model.ProviderSnapshot) []float64 {
	return e.AppendProviderSatisfactions(kn, make([]float64, 0, len(kn)))
}

// AppendProviderSatisfactions implements alloc.SatisfactionAppender: the
// allocation-free variant the SbQA hot path uses, appending into the
// allocator's own scratch column.
func (e env) AppendProviderSatisfactions(kn []model.ProviderSnapshot, dst []float64) []float64 {
	for _, snap := range kn {
		dst = append(dst, e.m.registry.ProviderSatisfaction(snap.ID))
	}
	return dst
}

var _ alloc.Env = env{}
var _ alloc.ShareEnv = env{}
var _ alloc.SatisfactionAppender = env{}
