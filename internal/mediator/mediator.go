// Package mediator implements the mediation pipeline of the SbQA
// architecture (Fig. 1 of the paper): it keeps the registries of online
// consumers and providers, and for each incoming query builds the candidate
// set P_q, lets the configured allocation technique mediate it, backfills
// the intentions the satisfaction model needs, records the outcome in the
// satisfaction registry, and hands the allocation back to the caller (the
// simulation world or the live engine) for dispatch.
//
// The mediator is technique-agnostic: SbQA, the capacity-based baseline, the
// economic baseline, and the controls all run behind the same pipeline,
// which is what lets the satisfaction model "analyze different query
// allocation techniques no matter their query allocation principle"
// (Scenario 1 of the demo).
package mediator

import (
	"errors"
	"fmt"
	"sort"

	"sbqa/internal/alloc"
	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
)

// Consumer is the mediator-side view of a consumer.
type Consumer interface {
	// ConsumerID identifies the consumer.
	ConsumerID() model.ConsumerID

	// Intention returns CI_q[p]: the consumer's intention to see its
	// query q allocated to the provider described by snap.
	Intention(q model.Query, snap model.ProviderSnapshot) model.Intention
}

// Provider is the mediator-side view of a provider.
type Provider interface {
	// ProviderID identifies the provider.
	ProviderID() model.ProviderID

	// Snapshot reports the provider's allocation-relevant state at the
	// given simulation time.
	Snapshot(now float64) model.ProviderSnapshot

	// CanPerform reports whether the provider is able to perform q
	// (defines membership of the candidate set P_q).
	CanPerform(q model.Query) bool

	// Intention returns PI_q[p]: the provider's intention to perform q.
	Intention(q model.Query) model.Intention

	// Bid returns the price the provider asks to perform q (economic
	// baseline).
	Bid(q model.Query) float64
}

// ShareReporter is an optional Provider extension for BOINC-style resource
// shares (see alloc.ShareBased): it reports how much capacity the provider
// still has available for a query's consumer under its declared shares.
type ShareReporter interface {
	DevotedAvailable(q model.Query) float64
}

// ErrNoCandidates is returned when no online provider can perform a query.
var ErrNoCandidates = errors.New("mediator: no online provider can perform query")

// Config tunes pipeline behaviour.
type Config struct {
	// Window is the satisfaction memory length k.
	Window int

	// AnalyzeBest, when set, computes the consumer's intention toward the
	// *whole* candidate set for every query so the registry can derive
	// allocation satisfaction against the true optimum. Costs O(|P_q|)
	// intention calls per query; experiments with a few hundred providers
	// keep it on.
	AnalyzeBest bool

	// OnMediation, when set, observes every successful mediation: the
	// completed allocation (proposed set, selection, intentions, scores)
	// and the size of the candidate set P_q it was drawn from. This is the
	// observability channel the demo's GUIs display; embedders use it for
	// audit logs. The allocation must not be mutated.
	OnMediation func(a *model.Allocation, candidates int)
}

// Mediator is the pipeline. It is not safe for concurrent use.
type Mediator struct {
	cfg       Config
	allocator alloc.Allocator
	registry  *satisfaction.Registry

	consumers map[model.ConsumerID]Consumer
	providers map[model.ProviderID]Provider

	// providerOrder caches a sorted ID list so candidate building is
	// deterministic; rebuilt on registration changes.
	providerOrder []model.ProviderID
	orderDirty    bool

	snapBuf []model.ProviderSnapshot
}

// New returns a mediator running the given allocation technique.
func New(allocator alloc.Allocator, cfg Config) *Mediator {
	return &Mediator{
		cfg:       cfg,
		allocator: allocator,
		registry:  satisfaction.NewRegistry(cfg.Window),
		consumers: make(map[model.ConsumerID]Consumer),
		providers: make(map[model.ProviderID]Provider),
	}
}

// Allocator returns the active allocation technique.
func (m *Mediator) Allocator() alloc.Allocator { return m.allocator }

// SetAllocator swaps the allocation technique (used by sweeps; satisfaction
// memory is preserved).
func (m *Mediator) SetAllocator(a alloc.Allocator) { m.allocator = a }

// Registry exposes the satisfaction registry (read by experiments and by
// participant departure rules).
func (m *Mediator) Registry() *satisfaction.Registry { return m.registry }

// RegisterConsumer adds (or replaces) a consumer.
func (m *Mediator) RegisterConsumer(c Consumer) {
	m.consumers[c.ConsumerID()] = c
}

// UnregisterConsumer removes a consumer; its satisfaction memory is dropped
// (a departed participant that rejoins starts fresh).
func (m *Mediator) UnregisterConsumer(id model.ConsumerID) {
	delete(m.consumers, id)
	m.registry.ForgetConsumer(id)
}

// RegisterProvider adds (or replaces) a provider.
func (m *Mediator) RegisterProvider(p Provider) {
	m.providers[p.ProviderID()] = p
	m.orderDirty = true
}

// UnregisterProvider removes a provider and drops its satisfaction memory.
func (m *Mediator) UnregisterProvider(id model.ProviderID) {
	delete(m.providers, id)
	m.registry.ForgetProvider(id)
	m.orderDirty = true
}

// Providers returns the number of registered providers.
func (m *Mediator) Providers() int { return len(m.providers) }

// Consumers returns the number of registered consumers.
func (m *Mediator) Consumers() int { return len(m.consumers) }

// Provider returns the registered provider with the given ID, or nil.
func (m *Mediator) Provider(id model.ProviderID) Provider { return m.providers[id] }

// Consumer returns the registered consumer with the given ID, or nil.
func (m *Mediator) Consumer(id model.ConsumerID) Consumer { return m.consumers[id] }

func (m *Mediator) order() []model.ProviderID {
	if m.orderDirty {
		m.providerOrder = m.providerOrder[:0]
		for id := range m.providers {
			m.providerOrder = append(m.providerOrder, id)
		}
		sort.Slice(m.providerOrder, func(i, j int) bool {
			return m.providerOrder[i] < m.providerOrder[j]
		})
		m.orderDirty = false
	}
	return m.providerOrder
}

// env adapts the participant registries to alloc.Env for one mediation.
type env struct {
	m        *Mediator
	consumer Consumer
}

func (e env) ConsumerIntention(q model.Query, p model.ProviderSnapshot) model.Intention {
	if e.consumer == nil {
		return 0
	}
	return e.consumer.Intention(q, p)
}

func (e env) ProviderIntention(q model.Query, p model.ProviderSnapshot) model.Intention {
	if prov, ok := e.m.providers[p.ID]; ok {
		return prov.Intention(q)
	}
	return 0
}

func (e env) ProviderBid(q model.Query, p model.ProviderSnapshot) float64 {
	if prov, ok := e.m.providers[p.ID]; ok {
		return prov.Bid(q)
	}
	return p.ExpectedDelay(q.Work)
}

// DevotedAvailable implements alloc.ShareEnv by delegating to providers
// that declare resource shares; providers without shares expose their plain
// available capacity.
func (e env) DevotedAvailable(q model.Query, p model.ProviderSnapshot) float64 {
	if prov, ok := e.m.providers[p.ID]; ok {
		if sr, ok := prov.(ShareReporter); ok {
			return sr.DevotedAvailable(q)
		}
	}
	return p.Capacity * (1 - p.Utilization)
}

func (e env) ConsumerSatisfaction(c model.ConsumerID) float64 {
	return e.m.registry.ConsumerSatisfaction(c)
}

func (e env) ProviderSatisfaction(p model.ProviderID) float64 {
	return e.m.registry.ProviderSatisfaction(p)
}

// Mediate runs the full pipeline for query q at simulation time now:
// candidate discovery, allocation, intention backfill, satisfaction
// recording. It returns ErrNoCandidates when P_q is empty — the caller
// records the query as unallocated (the consumer's satisfaction window
// records the failure either way, as the paper's Equation 1 prescribes:
// an unserved query contributes zero satisfaction).
func (m *Mediator) Mediate(now float64, q model.Query) (*model.Allocation, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("mediator: %w", err)
	}
	consumer := m.consumers[q.Consumer]
	if consumer == nil {
		return nil, fmt.Errorf("mediator: query %d from unregistered consumer %d", q.ID, q.Consumer)
	}

	// Build the candidate set P_q in deterministic ID order.
	m.snapBuf = m.snapBuf[:0]
	for _, id := range m.order() {
		p := m.providers[id]
		if p.CanPerform(q) {
			m.snapBuf = append(m.snapBuf, p.Snapshot(now))
		}
	}
	e := env{m: m, consumer: consumer}
	if len(m.snapBuf) == 0 {
		// Record the failed mediation so the consumer's dissatisfaction
		// accumulates, then report.
		m.registry.RecordAllocation(&model.Allocation{Query: q}, nil)
		return nil, ErrNoCandidates
	}

	a := m.allocator.Allocate(e, q, m.snapBuf)
	if a == nil || len(a.Selected) == 0 {
		m.registry.RecordAllocation(&model.Allocation{Query: q}, nil)
		return nil, ErrNoCandidates
	}

	m.backfillIntentions(e, a, now)

	// Optionally evaluate the consumer's intentions over the full
	// candidate set so allocation satisfaction is measured against the
	// true optimum rather than the proposed subset.
	var candidateCI []model.Intention
	if m.cfg.AnalyzeBest {
		candidateCI = make([]model.Intention, len(m.snapBuf))
		for i, snap := range m.snapBuf {
			candidateCI[i] = e.ConsumerIntention(q, snap)
		}
	}
	m.registry.RecordAllocation(a, candidateCI)
	if m.cfg.OnMediation != nil {
		m.cfg.OnMediation(a, len(m.snapBuf))
	}
	return a, nil
}

// backfillIntentions fills any intention the allocator did not collect
// itself (baseline techniques are interest-blind; the satisfaction model
// still needs the participants' intentions about what happened).
func (m *Mediator) backfillIntentions(e env, a *model.Allocation, now float64) {
	if len(a.ConsumerIntentions) == len(a.Proposed) && len(a.ProviderIntentions) == len(a.Proposed) {
		return
	}
	a.ConsumerIntentions = make([]model.Intention, len(a.Proposed))
	a.ProviderIntentions = make([]model.Intention, len(a.Proposed))
	for i, id := range a.Proposed {
		p, ok := m.providers[id]
		if !ok {
			continue
		}
		snap := p.Snapshot(now)
		a.ConsumerIntentions[i] = e.ConsumerIntention(a.Query, snap)
		a.ProviderIntentions[i] = p.Intention(a.Query)
	}
}
