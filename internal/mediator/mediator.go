// Package mediator implements the mediation pipeline of the SbQA
// architecture (Fig. 1 of the paper): for each incoming query it discovers
// the candidate set P_q through the provider directory, lets the configured
// allocation technique mediate it, backfills the intentions the satisfaction
// model needs, records the outcome in the satisfaction registry, and hands
// the allocation back to the caller (the simulation world or the live
// engine) for dispatch.
//
// The mediator is technique-agnostic: SbQA, the capacity-based baseline, the
// economic baseline, and the controls all run behind the same pipeline,
// which is what lets the satisfaction model "analyze different query
// allocation techniques no matter their query allocation principle"
// (Scenario 1 of the demo).
//
// Participant registration lives in the directory layer
// (internal/directory); the mediator consumes it through the small Directory
// interface so a fleet of mediator shards can share one catalog. A mediator
// constructed with the zero Config owns a private directory and a private
// satisfaction registry and behaves exactly like the historical
// single-registry pipeline.
//
// One Mediator instance is not safe for concurrent use — its scratch
// buffers and its allocator are single-threaded. Concurrency comes from
// running several mediators (shards) over a shared Directory and a shared
// lock-striped satisfaction.Registry; that wiring lives in internal/live.
package mediator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/directory"
	"sbqa/internal/event"
	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
	"sbqa/internal/trace"
)

// Consumer is the mediator-side view of a consumer. It is an alias of the
// directory's contract: the directory stores participants, the mediator
// consumes them.
type Consumer = directory.Consumer

// Provider is the mediator-side view of a provider (alias of the directory
// contract; see Consumer).
type Provider = directory.Provider

// CapabilityReporter is re-exported from the directory layer: providers that
// implement it are indexed by query class and skipped entirely during
// candidate discovery for other classes.
type CapabilityReporter = directory.CapabilityReporter

// Directory is the catalog interface the mediator consults for participant
// lookup and candidate discovery. *directory.Directory implements it; tests
// and embedders may substitute their own.
type Directory interface {
	// RegisterProvider adds (or replaces) a provider.
	RegisterProvider(p Provider)
	// UnregisterProvider removes a provider.
	UnregisterProvider(id model.ProviderID)
	// RegisterConsumer adds (or replaces) a consumer.
	RegisterConsumer(c Consumer)
	// UnregisterConsumer removes a consumer.
	UnregisterConsumer(id model.ConsumerID)
	// Provider returns the registered provider with the given ID, or nil.
	Provider(id model.ProviderID) Provider
	// Consumer returns the registered consumer with the given ID, or nil.
	Consumer(id model.ConsumerID) Consumer
	// Candidates appends the providers able to perform q to buf in
	// ascending ProviderID order (deterministic candidate sets are what
	// make seeded runs reproducible).
	Candidates(q model.Query, buf []Provider) []Provider
	// NumProviders returns the number of registered providers.
	NumProviders() int
	// NumConsumers returns the number of registered consumers.
	NumConsumers() int
}

// IndexedDirectory is the optional Directory extension for the
// zero-allocation hot path: a directory that interns its providers (assigns
// each registration a small dense index) lets the mediator key its per-batch
// snapshot cache by index — a slice lookup per provider — instead of a
// per-batch map. *directory.Directory implements it; the mediator
// type-asserts at construction and falls back to the map cache for custom
// directories.
type IndexedDirectory interface {
	Directory
	// CandidatesIndexed is Candidates plus each candidate's interned index,
	// position-aligned.
	CandidatesIndexed(q model.Query, buf []Provider, idx []int32) ([]Provider, []int32)
	// ProviderInternBound returns an exclusive upper bound on every interned
	// provider index currently handed out.
	ProviderInternBound() int
}

// ShareReporter is an optional Provider extension for BOINC-style resource
// shares (see alloc.ShareBased): it reports how much capacity the provider
// still has available for a query's consumer under its declared shares.
type ShareReporter interface {
	DevotedAvailable(q model.Query) float64
}

// ErrNoCandidates is returned when no online provider can perform a query.
var ErrNoCandidates = errors.New("mediator: no online provider can perform query")

// ErrStaleSelection is returned when the candidate set was non-empty but
// every selected provider unregistered between candidate discovery and
// intention backfill — a transient registration race, only possible when the
// directory is shared with concurrent registrars. It is distinct from
// ErrNoCandidates so callers can retry instead of giving up: capacity
// existed, it just churned away mid-mediation. The pipeline already retries
// discovery once against the refreshed directory before reporting this.
var ErrStaleSelection = errors.New("mediator: every selected provider unregistered during mediation")

// Config tunes pipeline behaviour.
type Config struct {
	// Window is the satisfaction memory length k.
	Window int

	// AnalyzeBest, when set, computes the consumer's intention toward the
	// *whole* candidate set for every query so the registry can derive
	// allocation satisfaction against the true optimum. Costs O(|P_q|)
	// intention calls per query; experiments with a few hundred providers
	// keep it on.
	AnalyzeBest bool

	// OnMediation, when set, observes every successful mediation: the
	// completed allocation (proposed set, selection, intentions, scores)
	// and the size of the candidate set P_q it was drawn from. This is the
	// observability channel the demo's GUIs display; embedders use it for
	// audit logs. The allocation must not be mutated. When several mediator
	// shards share one hook it must be safe for concurrent use.
	//
	// Deprecated: OnMediation is the v1 observability hook, kept for
	// compatibility. New code should set Observer, which also sees
	// rejections and registration churn; when both are set, both fire.
	OnMediation func(a *model.Allocation, candidates int)

	// Observer, when set, receives the pipeline's lifecycle events:
	// OnAllocation for every successful mediation (same payload as
	// OnMediation) and OnRejection for every failed one, with the reason
	// (ErrNoCandidates, ErrStaleSelection, or a validation error). Callbacks
	// run synchronously on the mediating goroutine — with several shards,
	// concurrently — and must be fast, non-blocking, and safe for
	// concurrent use.
	Observer event.Observer

	// Registry, when set, is the satisfaction registry this mediator
	// records into — the sharded live engine points every shard at one
	// shared lock-striped registry. Nil gets a private registry with the
	// configured Window.
	Registry *satisfaction.Registry

	// Directory, when set, supplies participant storage and candidate
	// discovery — shared across engine shards. Nil gets a private
	// directory.
	Directory Directory

	// ParticipantDeadline bounds each context-aware participant call
	// (ConsumerParticipant, ProviderParticipant, BidderParticipant) during
	// batched intention and bid collection. A participant that misses its
	// deadline is abandoned and its intention imputed from the
	// satisfaction registry (see fanout.go); the mediation never stalls on
	// a silent participant. Zero means no per-participant bound — only the
	// mediation context limits the calls. In-process participants (the
	// synchronous directory contracts) are never subject to it.
	ParticipantDeadline time.Duration

	// Tracer, when set, receives the pipeline-stage spans (fan-out,
	// imputation, scoring) of sampled queries — queries whose
	// q.Trace.Sampled is true. Unsampled queries never touch it; a nil
	// tracer records nothing even for sampled queries.
	Tracer *trace.Recorder
}

// Mediator is the pipeline. One instance is not safe for concurrent use;
// run one mediator per shard over a shared Directory and Registry instead
// (see the package doc).
type Mediator struct {
	cfg       Config
	allocator alloc.Allocator
	registry  *satisfaction.Registry
	dir       Directory

	// sharedDir records whether the directory was injected (and may thus
	// see concurrent registration changes mid-mediation); with a private
	// directory nothing can unregister between candidate discovery and
	// backfill, so the stale-provider scan is skipped on prefilled
	// allocations.
	sharedDir bool

	// idir is dir when it supports interned candidate indices (the
	// slice-backed batch snapshot cache); nil otherwise.
	idir IndexedDirectory

	// Mediation scratch arena (DESIGN.md §9): per-shard buffers reused
	// across mediations so the hot path allocates nothing. The arena is
	// owned by the mediating goroutine — it never crosses shard boundaries —
	// and every buffer's contents are dead once the mediation that filled it
	// returns an allocation that owns its own copies.
	envBox  env                      // reusable Env adapter (pointer-passed, no per-mediation boxing)
	candBuf []Provider               // candidate discovery
	candIdx []int32                  // candidates' interned indices (indexed batch mode)
	snapBuf []model.ProviderSnapshot // candidate snapshots (see snapshots)
	ciBuf   []model.Intention        // batched CI collection
	piBuf   []model.Intention        // batched PI collection
	bidBuf  []float64                // batched bid collection
	perfBuf []model.Intention        // performed-intentions vector for satisfaction recording
	bfSnaps []model.ProviderSnapshot // backfill snapshots (snapBuf is still live then)

	// Batch snapshot cache (indexed mode): slot di holds the snapshot of the
	// provider interned at di, valid iff snapGen[di] == cacheGen. Bumping
	// cacheGen invalidates the whole cache in O(1) at each batch boundary;
	// generation stamps also make recycled intern slots (provider churn
	// mid-run) safe — a new registrant reusing slot di sees a stale stamp,
	// never a stale snapshot.
	snapCache    []model.ProviderSnapshot
	snapGen      []uint64
	cacheGen     uint64
	batchIndexed bool // inside MediateBatch over an IndexedDirectory

	// tracer is the per-query span sink for sampled queries (nil-safe).
	tracer *trace.Recorder
	// lastFanoutEnd stashes when the most recent intention collection of
	// the in-flight sampled mediation ended, so the score span measures
	// the allocator's own ranking work net of the fan-out it triggered.
	// Reset before each Allocate; zero means the allocator never fanned
	// out. Scratch like the buffers above: single mediating goroutine.
	lastFanoutEnd int64
}

// New returns a mediator running the given allocation technique.
func New(allocator alloc.Allocator, cfg Config) *Mediator {
	registry := cfg.Registry
	if registry == nil {
		registry = satisfaction.NewRegistry(cfg.Window)
	}
	dir := cfg.Directory
	if dir == nil {
		dir = directory.New()
	}
	m := &Mediator{
		cfg:       cfg,
		allocator: allocator,
		registry:  registry,
		dir:       dir,
		sharedDir: cfg.Directory != nil,
	}
	m.idir, _ = dir.(IndexedDirectory)
	m.envBox.m = m
	m.tracer = cfg.Tracer
	return m
}

// Allocator returns the active allocation technique.
func (m *Mediator) Allocator() alloc.Allocator { return m.allocator }

// SetAllocator swaps the allocation technique (used by sweeps and by the
// live engine's policy generations; satisfaction memory is preserved). Like
// Mediate, it must run on the mediating goroutine — the engine applies
// generation swaps under the shard lock, at mediation boundaries.
func (m *Mediator) SetAllocator(a alloc.Allocator) { m.allocator = a }

// SetParticipantDeadline retunes the per-participant bound on context-aware
// intention and bid calls (see Config.ParticipantDeadline). Same threading
// contract as SetAllocator: call it on the mediating goroutine only.
func (m *Mediator) SetParticipantDeadline(d time.Duration) { m.cfg.ParticipantDeadline = d }

// Registry exposes the satisfaction registry (read by experiments and by
// participant departure rules).
func (m *Mediator) Registry() *satisfaction.Registry { return m.registry }

// Directory exposes the participant catalog the mediator consults.
func (m *Mediator) Directory() Directory { return m.dir }

// RegisterConsumer adds (or replaces) a consumer.
func (m *Mediator) RegisterConsumer(c Consumer) { m.dir.RegisterConsumer(c) }

// UnregisterConsumer removes a consumer; its satisfaction memory is dropped
// (a departed participant that rejoins starts fresh).
func (m *Mediator) UnregisterConsumer(id model.ConsumerID) {
	m.dir.UnregisterConsumer(id)
	m.registry.ForgetConsumer(id)
}

// RegisterProvider adds (or replaces) a provider.
func (m *Mediator) RegisterProvider(p Provider) { m.dir.RegisterProvider(p) }

// UnregisterProvider removes a provider and drops its satisfaction memory.
func (m *Mediator) UnregisterProvider(id model.ProviderID) {
	m.dir.UnregisterProvider(id)
	m.registry.ForgetProvider(id)
}

// Providers returns the number of registered providers.
func (m *Mediator) Providers() int { return m.dir.NumProviders() }

// Consumers returns the number of registered consumers.
func (m *Mediator) Consumers() int { return m.dir.NumConsumers() }

// Provider returns the registered provider with the given ID, or nil.
func (m *Mediator) Provider(id model.ProviderID) Provider { return m.dir.Provider(id) }

// Consumer returns the registered consumer with the given ID, or nil.
func (m *Mediator) Consumer(id model.ConsumerID) Consumer { return m.dir.Consumer(id) }

// env adapts the participant registries to the batched v2 alloc.Env for one
// mediation. The batch methods (Intentions, Bids, ProviderSatisfactions)
// live in fanout.go: they are the default adapter of the intention protocol,
// fanning context-aware participants out concurrently while calling
// in-process participants inline.
type env struct {
	m        *Mediator
	consumer Consumer
}

// DevotedAvailable implements alloc.ShareEnv by delegating to providers
// that declare resource shares; providers without shares expose their plain
// available capacity.
func (e env) DevotedAvailable(q model.Query, p model.ProviderSnapshot) float64 {
	if prov := e.m.candidateOf(p.ID); prov != nil {
		if sr, ok := prov.(ShareReporter); ok {
			return sr.DevotedAvailable(q)
		}
	}
	return p.Capacity * (1 - p.Utilization)
}

// candidateOf resolves a provider of the in-flight mediation from the
// candidate buffer (sorted by ID), sparing the allocator's per-candidate
// calls a locked directory lookup on the hot path; providers outside the
// buffer fall back to the directory.
func (m *Mediator) candidateOf(id model.ProviderID) Provider {
	buf := m.candBuf
	i := sort.Search(len(buf), func(k int) bool { return buf[k].ProviderID() >= id })
	if i < len(buf) && buf[i].ProviderID() == id {
		return buf[i]
	}
	return m.dir.Provider(id)
}

// cachedSnapshot returns p's snapshot at now, served from the active batch
// cache when possible: the interned-index slice cache in indexed batch mode
// (resolving the index through the candidate buffer, which is sorted by ID),
// the map cache otherwise, a fresh Snapshot call outside any batch.
func (m *Mediator) cachedSnapshot(id model.ProviderID, p Provider, now float64, cache map[model.ProviderID]model.ProviderSnapshot) model.ProviderSnapshot {
	if m.batchIndexed {
		buf := m.candBuf
		i := sort.Search(len(buf), func(k int) bool { return buf[k].ProviderID() >= id })
		if i < len(buf) && buf[i].ProviderID() == id && i < len(m.candIdx) {
			di := m.candIdx[i]
			if int(di) < len(m.snapGen) && m.snapGen[di] == m.cacheGen {
				return m.snapCache[di]
			}
			s := p.Snapshot(now)
			if int(di) < len(m.snapGen) {
				m.snapCache[di] = s
				m.snapGen[di] = m.cacheGen
			}
			return s
		}
		return p.Snapshot(now)
	}
	if cache != nil {
		if s, ok := cache[id]; ok {
			return s
		}
		s := p.Snapshot(now)
		cache[id] = s
		return s
	}
	return p.Snapshot(now)
}

// ConsumerSatisfaction implements alloc.Env from the satisfaction registry.
func (e env) ConsumerSatisfaction(c model.ConsumerID) float64 {
	return e.m.registry.ConsumerSatisfaction(c)
}

// Mediate runs the full pipeline for query q at simulation time now:
// candidate discovery, batched intention collection, allocation,
// satisfaction recording. It returns ErrNoCandidates when P_q is empty — the
// caller records the query as unallocated (the consumer's satisfaction
// window records the failure either way, as the paper's Equation 1
// prescribes: an unserved query contributes zero satisfaction). When a
// shared directory's churn empties the selection mid-flight, mediation is
// retried once against the refreshed candidate set; if that attempt also
// goes stale, Mediate returns ErrStaleSelection.
//
// ctx bounds the whole mediation, including the in-flight intention fan-out
// to context-aware participants: once it is done the query is rejected with
// the context error and nothing is recorded. A nil ctx is treated as
// context.Background().
func (m *Mediator) Mediate(ctx context.Context, now float64, q model.Query) (*model.Allocation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return m.mediate(ctx, now, q, nil)
}

// MediateBatch mediates a batch of queries at time now, in order, and
// returns position-aligned allocations and errors. Snapshot collection is
// amortized across the batch: each provider is snapshotted at most once per
// batch, so B queries sharing P candidates cost O(P) Snapshot calls instead
// of O(B·P). Candidate *discovery* still runs per query — CanPerform stays
// authoritative for every individual query, exactly as in sequential
// Mediate. The snapshots are taken at batch time — provider state changes
// caused by dispatching earlier queries of the same batch are not visible
// to later ones, which matches what a serialized caller observes, since
// dispatch happens after mediation anyway.
//
// ctx bounds the batch as a whole: queries mediated after it is done are
// rejected with the context error (see Mediate).
func (m *Mediator) MediateBatch(ctx context.Context, now float64, qs []model.Query) ([]*model.Allocation, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	allocs := make([]*model.Allocation, len(qs))
	errs := make([]error, len(qs))
	var cache map[model.ProviderID]model.ProviderSnapshot
	if m.idir != nil {
		// Interned-index cache: one generation bump invalidates the whole
		// slice-backed cache — no per-batch map allocation.
		m.cacheGen++
		m.batchIndexed = true
		defer func() { m.batchIndexed = false }()
	} else {
		cache = make(map[model.ProviderID]model.ProviderSnapshot)
	}
	for i, q := range qs {
		allocs[i], errs[i] = m.mediate(ctx, now, q, cache)
	}
	return allocs, errs
}

// snapshots builds the candidate snapshot set for q, reusing per-provider
// snapshots from the batch cache when mediating a batch (the interned-index
// slice cache over an IndexedDirectory, the map otherwise).
//
// The returned slice aliases m.snapBuf — per-shard scratch that the next
// mediation on this shard overwrites. It is valid for the duration of one
// mediation only: the allocator receives it as the candidates argument and
// must copy anything it keeps (alloc.Allocator documents this); no caller
// may retain it across Mediate calls. TestSnapshotBufferReuse exercises the
// hazard.
func (m *Mediator) snapshots(now float64, q model.Query, cache map[model.ProviderID]model.ProviderSnapshot) []model.ProviderSnapshot {
	m.snapBuf = m.snapBuf[:0]
	if m.batchIndexed {
		m.candBuf, m.candIdx = m.idir.CandidatesIndexed(q, m.candBuf[:0], m.candIdx[:0])
		if bound := m.idir.ProviderInternBound(); bound > len(m.snapCache) {
			// Grow to the intern high-water mark; fresh slots carry
			// generation 0, which never matches (cacheGen starts at 1).
			next := make([]model.ProviderSnapshot, bound)
			copy(next, m.snapCache)
			m.snapCache = next
			nextGen := make([]uint64, bound)
			copy(nextGen, m.snapGen)
			m.snapGen = nextGen
		}
		for i, p := range m.candBuf {
			di := m.candIdx[i]
			if int(di) < len(m.snapGen) && m.snapGen[di] == m.cacheGen {
				m.snapBuf = append(m.snapBuf, m.snapCache[di])
				continue
			}
			s := p.Snapshot(now)
			if int(di) < len(m.snapGen) {
				m.snapCache[di] = s
				m.snapGen[di] = m.cacheGen
			}
			m.snapBuf = append(m.snapBuf, s)
		}
		return m.snapBuf
	}
	m.candBuf = m.dir.Candidates(q, m.candBuf[:0])
	for _, p := range m.candBuf {
		if cache != nil {
			if s, ok := cache[p.ProviderID()]; ok {
				m.snapBuf = append(m.snapBuf, s)
				continue
			}
		}
		s := p.Snapshot(now)
		if cache != nil {
			cache[p.ProviderID()] = s
		}
		m.snapBuf = append(m.snapBuf, s)
	}
	return m.snapBuf
}

// reject reports a failed mediation to the configured observer and returns
// the error unchanged, so error paths stay one-liners.
func (m *Mediator) reject(q model.Query, err error) error {
	if m.cfg.Observer != nil {
		m.cfg.Observer.OnRejection(q, err)
	}
	return err
}

func (m *Mediator) mediate(ctx context.Context, now float64, q model.Query, cache map[model.ProviderID]model.ProviderSnapshot) (*model.Allocation, error) {
	if err := ctx.Err(); err != nil {
		// Canceled before mediation: an infrastructure outcome, not a
		// capacity verdict — nothing is recorded in any satisfaction
		// window.
		return nil, m.reject(q, err)
	}
	if err := q.Validate(); err != nil {
		return nil, m.reject(q, fmt.Errorf("mediator: %w", err))
	}
	consumer := m.dir.Consumer(q.Consumer)
	if consumer == nil {
		return nil, m.reject(q, fmt.Errorf("mediator: query %d from unregistered consumer %d", q.ID, q.Consumer))
	}

	// Reuse the mediator-owned Env adapter: passing its pointer through the
	// alloc.Env interface avoids boxing a fresh env value per mediation.
	m.envBox.consumer = consumer
	e := &m.envBox

	// One retry when a shared directory's churn empties the selection
	// between candidate discovery and backfill: re-discover against the
	// refreshed catalog before reporting failure. Nothing is recorded for
	// the abandoned attempt — the query's outcome is recorded exactly once.
	const staleRetries = 1
	for attempt := 0; ; attempt++ {
		// Build the candidate set P_q (ascending ID order, from the
		// directory's capability index).
		snaps := m.snapshots(now, q, cache)
		if len(snaps) == 0 {
			// Record the failed mediation so the consumer's dissatisfaction
			// accumulates, then report. On a retry the first attempt proved
			// capacity existed — it churned away entirely before re-discovery
			// (e.g. the registrar's unregister→reregister gap), which is the
			// transient sentinel, not the terminal one.
			m.registry.RecordAllocation(&model.Allocation{Query: q}, nil)
			if attempt > 0 {
				return nil, m.reject(q, ErrStaleSelection)
			}
			return nil, m.reject(q, ErrNoCandidates)
		}

		var scoreStart int64
		if q.Trace.Sampled {
			m.lastFanoutEnd = 0
			scoreStart = trace.Now()
		}
		a, err := m.allocator.Allocate(ctx, e, q, snaps)
		if q.Trace.Sampled {
			// The score span is the allocator's ranking work net of any
			// intention fan-out it triggered (which records its own span
			// and stashes its end time).
			if m.lastFanoutEnd > scoreStart {
				scoreStart = m.lastFanoutEnd
			}
			m.tracer.RecordSpan(q.Trace.ID, trace.Span{
				Name:  trace.StageScore,
				Start: scoreStart,
				End:   trace.Now(),
				Extra: int64(len(snaps)),
			})
		}
		if err != nil {
			// Protocol failure: the context was canceled mid-fan-out or
			// the batched collection aborted. The query was never
			// mediated, so nothing is recorded.
			return nil, m.reject(q, err)
		}
		if a == nil || len(a.Selected) == 0 {
			m.registry.RecordAllocation(&model.Allocation{Query: q}, nil)
			return nil, m.reject(q, ErrNoCandidates)
		}

		m.backfillIntentions(ctx, e, a, now, cache)
		if len(a.Selected) == 0 {
			// Every selected provider unregistered between candidate
			// discovery and backfill (only possible when the directory is
			// shared with concurrent registrars).
			if attempt < staleRetries {
				continue
			}
			m.registry.RecordAllocation(&model.Allocation{Query: q}, nil)
			return nil, m.reject(q, ErrStaleSelection)
		}

		// Optionally evaluate the consumer's intentions over the full
		// candidate set so allocation satisfaction is measured against the
		// true optimum rather than the proposed subset. This is a second
		// CI-only batch round (a context-aware consumer is contacted once
		// more, over all of P_q); imputation applies but is not reported —
		// it feeds analysis, not the allocation.
		// candidateCI may alias the mediator's CI scratch: the registry
		// consumes it synchronously (no tracker retains it), and the
		// allocation's own intention vectors are allocation-owned copies, so
		// the overwrite is safe.
		if q.Trace.Sampled && a.Explain == nil {
			// Interest-blind allocators build no explain record of their
			// own; reconstruct one from the backfilled allocation so every
			// sampled query can answer "why these providers".
			a.Explain = m.genericExplain(a, len(snaps))
		}

		var candidateCI []model.Intention
		if m.cfg.AnalyzeBest {
			if set, cerr := e.collect(ctx, q, snaps, false); cerr == nil {
				candidateCI = set.CI
			}
		}
		m.perfBuf = m.registry.RecordAllocationInto(a, candidateCI, m.perfBuf)
		if m.cfg.OnMediation != nil {
			m.cfg.OnMediation(a, len(snaps))
		}
		if m.cfg.Observer != nil {
			m.cfg.Observer.OnAllocation(a, len(snaps))
		}
		return a, nil
	}
}

// genericExplain reconstructs an explain record for allocators that do not
// produce one themselves (every baseline): the backfilled proposal-aligned
// intentions and scores, plus registry satisfactions. Runs only for
// sampled queries — the one heap allocation per entry slice is the
// sampling budget, not the hot path.
func (m *Mediator) genericExplain(a *model.Allocation, candidates int) *model.Explain {
	ex := &model.Explain{
		Allocator:  fmt.Sprintf("%T", m.allocator),
		SatC:       m.registry.ConsumerSatisfaction(a.Query.Consumer),
		Candidates: candidates,
		Entries:    make([]model.ExplainEntry, len(a.Proposed)),
	}
	for i, id := range a.Proposed {
		en := model.ExplainEntry{
			Rank:     i + 1,
			Provider: id,
			SatP:     m.registry.ProviderSatisfaction(id),
		}
		if i < len(a.ConsumerIntentions) {
			en.CI = a.ConsumerIntentions[i]
		}
		if i < len(a.ProviderIntentions) {
			en.PI = a.ProviderIntentions[i]
		}
		if i < len(a.Scores) {
			en.Score = a.Scores[i]
		}
		ex.Entries[i] = en
	}
	return ex
}

// backfillIntentions fills any intention the allocator did not collect
// itself (baseline techniques are interest-blind; the satisfaction model
// still needs the participants' intentions about what happened). The fill is
// one batched Intentions round over the surviving proposal set — the same
// protocol call SbQA makes over Kn — so baseline techniques get identical
// fan-out, deadline, and imputation semantics.
//
// Providers that unregistered between candidate discovery and this point —
// possible when the directory is shared with concurrent registrars — are
// dropped from the allocation entirely rather than silently recorded with
// zero intentions: recording would resurrect the departed provider's
// satisfaction tracker and skew the consumer's obtained satisfaction with a
// phantom result.
func (m *Mediator) backfillIntentions(ctx context.Context, e *env, a *model.Allocation, now float64, cache map[model.ProviderID]model.ProviderSnapshot) {
	prefilled := len(a.ConsumerIntentions) == len(a.Proposed) &&
		len(a.ProviderIntentions) == len(a.Proposed)
	if prefilled && !m.sharedDir {
		// Private directory: nothing can have unregistered mid-mediation,
		// and the allocator already collected every intention — the
		// single-threaded simulation hot path pays no per-provider lookups.
		return
	}
	// Pass 1: drop departed providers, compacting the proposal-aligned
	// vectors, and gather the surviving providers' snapshots when the
	// intentions still need to be collected. The snapshots use their own
	// scratch (not m.snapBuf, which still holds this mediation's candidate
	// set for the AnalyzeBest round).
	var snaps []model.ProviderSnapshot
	if !prefilled {
		snaps = m.bfSnaps[:0]
	}
	kept := 0
	for i, id := range a.Proposed {
		p := m.dir.Provider(id)
		if p == nil {
			continue
		}
		if !prefilled {
			snaps = append(snaps, m.cachedSnapshot(id, p, now, cache))
		}
		a.Proposed[kept] = a.Proposed[i]
		if prefilled {
			a.ConsumerIntentions[kept] = a.ConsumerIntentions[i]
			a.ProviderIntentions[kept] = a.ProviderIntentions[i]
		}
		if i < len(a.Scores) {
			a.Scores[kept] = a.Scores[i]
		}
		kept++
	}
	stale := kept < len(a.Proposed)
	if !prefilled {
		m.bfSnaps = snaps // retain grown capacity for the next mediation
	}
	a.Proposed = a.Proposed[:kept]
	if len(a.Scores) > kept {
		a.Scores = a.Scores[:kept]
	}
	switch {
	case prefilled:
		a.ConsumerIntentions = a.ConsumerIntentions[:kept]
		a.ProviderIntentions = a.ProviderIntentions[:kept]
	case kept == 0:
		// Every proposed provider departed: nothing to collect (and no
		// pointless zero-candidate round trip to a remote consumer).
		a.ConsumerIntentions = nil
		a.ProviderIntentions = nil
	default:
		// The collected set aliases the mediator's CI/PI scratch; the
		// allocation must own its vectors (they outlive this mediation), so
		// copy into one fresh backing array with capped halves. On a canceled
		// backfill the vectors stay zero — the mediation outcome is recorded
		// with neutral intentions rather than lost entirely, since the
		// allocation already happened and was dispatched to.
		set, err := e.Intentions(ctx, a.Query, snaps)
		ints := make([]model.Intention, 2*kept)
		a.ConsumerIntentions = ints[:kept:kept]
		a.ProviderIntentions = ints[kept:]
		if err == nil {
			copy(a.ConsumerIntentions, set.CI)
			copy(a.ProviderIntentions, set.PI)
		}
	}
	if !stale {
		return
	}
	// Drop stale providers from the selection too; the dispatcher could not
	// deliver to them anyway.
	selKept := 0
	for _, id := range a.Selected {
		alive := false
		for _, pid := range a.Proposed {
			if pid == id {
				alive = true
				break
			}
		}
		if alive {
			a.Selected[selKept] = id
			selKept++
		}
	}
	a.Selected = a.Selected[:selKept]
}
