package mediator

import (
	"errors"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/event"
	"sbqa/internal/model"
)

// TestMediatorObserverEvents: the typed Observer sees every mediation
// outcome — successes with the candidate count, and each rejection with its
// reason — while the legacy OnMediation hook keeps firing alongside it.
func TestMediatorObserverEvents(t *testing.T) {
	type rejection struct {
		q      model.Query
		reason error
	}
	var allocs int
	var candidates int
	var rejects []rejection
	var legacy int
	m := New(alloc.NewCapacity(), Config{
		Window:      10,
		OnMediation: func(*model.Allocation, int) { legacy++ },
		Observer: event.Funcs{
			Allocation: func(a *model.Allocation, c int) { allocs++; candidates = c },
			Rejection:  func(q model.Query, reason error) { rejects = append(rejects, rejection{q, reason}) },
		},
	})
	m.RegisterConsumer(&fakeConsumer{id: 0})
	for i := 0; i < 3; i++ {
		m.RegisterProvider(&fakeProvider{id: model.ProviderID(i), intention: 0.5})
	}

	if _, err := m.Mediate(bg, 0, model.Query{Consumer: 0, N: 1, Work: 1}); err != nil {
		t.Fatal(err)
	}
	if allocs != 1 || legacy != 1 {
		t.Fatalf("allocs=%d legacy=%d, want 1/1 (both hooks fire)", allocs, legacy)
	}
	if candidates != 3 {
		t.Errorf("candidates = %d, want 3", candidates)
	}

	// Rejection 1: malformed query (validation).
	if _, err := m.Mediate(bg, 0, model.Query{Consumer: 0, N: 0, Work: 1}); err == nil {
		t.Fatal("want validation error")
	}
	// Rejection 2: unregistered consumer.
	if _, err := m.Mediate(bg, 0, model.Query{Consumer: 9, N: 1, Work: 1}); err == nil {
		t.Fatal("want unregistered-consumer error")
	}
	// Rejection 3: no candidates.
	for i := 0; i < 3; i++ {
		m.UnregisterProvider(model.ProviderID(i))
	}
	if _, err := m.Mediate(bg, 0, model.Query{Consumer: 0, N: 1, Work: 1}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}

	if len(rejects) != 3 {
		t.Fatalf("rejections = %d, want 3", len(rejects))
	}
	if !errors.Is(rejects[2].reason, ErrNoCandidates) {
		t.Errorf("rejection 3 reason = %v, want ErrNoCandidates", rejects[2].reason)
	}
	if rejects[1].q.Consumer != 9 {
		t.Errorf("rejection 2 query consumer = %d, want 9", rejects[1].q.Consumer)
	}
	if allocs != 1 {
		t.Errorf("allocs moved to %d on failures", allocs)
	}
}
