package mediator

import (
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/model"
)

func TestOnMediationHook(t *testing.T) {
	var seen []*model.Allocation
	var candCounts []int
	m := New(alloc.NewCapacity(), Config{
		Window: 10,
		OnMediation: func(a *model.Allocation, candidates int) {
			seen = append(seen, a)
			candCounts = append(candCounts, candidates)
		},
	})
	m.RegisterConsumer(&fakeConsumer{id: 0})
	m.RegisterProvider(&fakeProvider{id: 1})
	m.RegisterProvider(&fakeProvider{id: 2})

	for i := int64(0); i < 3; i++ {
		if _, err := m.Mediate(bg, 0, q(i, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(seen))
	}
	for i, a := range seen {
		if len(a.Selected) != 1 {
			t.Errorf("trace %d selected %v", i, a.Selected)
		}
		if candCounts[i] != 2 {
			t.Errorf("trace %d candidates = %d, want 2", i, candCounts[i])
		}
		// Backfilled intentions are visible to the hook.
		if len(a.ConsumerIntentions) != len(a.Proposed) {
			t.Errorf("trace %d intentions incomplete", i)
		}
	}
}

func TestOnMediationNotFiredOnFailure(t *testing.T) {
	fired := false
	m := New(alloc.NewCapacity(), Config{
		Window:      10,
		OnMediation: func(*model.Allocation, int) { fired = true },
	})
	m.RegisterConsumer(&fakeConsumer{id: 0})
	if _, err := m.Mediate(bg, 0, q(1, 0, 1)); err == nil {
		t.Fatal("expected failure with no providers")
	}
	if fired {
		t.Error("hook fired for a failed mediation")
	}
}

func TestPerParticipantWindows(t *testing.T) {
	m := New(alloc.NewCapacity(), Config{Window: 100})
	reg := m.Registry()
	// Provider 1 remembers only 2 proposals; provider 2 uses the default.
	reg.SetProviderWindow(1, 2)
	tr := reg.Provider(1)
	if tr.Window() != 2 {
		t.Fatalf("window = %d", tr.Window())
	}
	tr.Record(1, true)
	tr.Record(-1, true)
	tr.Record(-1, true) // evicts the liked one
	if got := tr.Satisfaction(); got != 0 {
		t.Errorf("short-memory provider δs = %v, want 0", got)
	}
	if reg.Provider(2).Window() != 100 {
		t.Error("default window not applied to provider 2")
	}
	reg.SetConsumerWindow(3, 5)
	if reg.Consumer(3).Window() != 5 {
		t.Error("consumer window override failed")
	}
}
