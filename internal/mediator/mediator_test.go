package mediator

import (
	"errors"
	"math"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
)

// fakeConsumer likes providers according to a fixed table.
type fakeConsumer struct {
	id    model.ConsumerID
	likes map[model.ProviderID]model.Intention
	asked int
}

func (c *fakeConsumer) ConsumerID() model.ConsumerID { return c.id }
func (c *fakeConsumer) Intention(_ model.Query, snap model.ProviderSnapshot) model.Intention {
	c.asked++
	return c.likes[snap.ID]
}

// fakeProvider reports fixed state.
type fakeProvider struct {
	id        model.ProviderID
	util      float64
	intention model.Intention
	bid       float64
	classes   map[int]bool // nil = performs anything
}

func (p *fakeProvider) ProviderID() model.ProviderID { return p.id }
func (p *fakeProvider) Snapshot(float64) model.ProviderSnapshot {
	return model.ProviderSnapshot{ID: p.id, Utilization: p.util, Capacity: 1}
}
func (p *fakeProvider) CanPerform(q model.Query) bool {
	if p.classes == nil {
		return true
	}
	return p.classes[q.Class]
}
func (p *fakeProvider) Intention(model.Query) model.Intention { return p.intention }
func (p *fakeProvider) Bid(model.Query) float64               { return p.bid }

func newTestMediator(a alloc.Allocator) *Mediator {
	return New(a, Config{Window: 10, AnalyzeBest: true})
}

func q(id int64, c model.ConsumerID, n int) model.Query {
	return model.Query{ID: model.QueryID(id), Consumer: c, N: n, Work: 1}
}

func TestMediateValidation(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	if _, err := m.Mediate(0, model.Query{ID: 1, Consumer: 0, N: 0, Work: 1}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := m.Mediate(0, q(1, 9, 1)); err == nil {
		t.Error("unregistered consumer accepted")
	}
}

func TestMediateNoCandidates(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	c := &fakeConsumer{id: 0}
	m.RegisterConsumer(c)
	_, err := m.Mediate(0, q(1, 0, 1))
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
	// The failed mediation must hurt the consumer's satisfaction.
	if got := m.Registry().ConsumerSatisfaction(0); got != 0 {
		t.Errorf("consumer δs after failure = %v, want 0", got)
	}
}

func TestMediateClassFiltering(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	m.RegisterConsumer(&fakeConsumer{id: 0})
	m.RegisterProvider(&fakeProvider{id: 1, classes: map[int]bool{1: true}})
	m.RegisterProvider(&fakeProvider{id: 2, classes: map[int]bool{2: true}})

	query := q(1, 0, 1)
	query.Class = 2
	a, err := m.Mediate(0, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != 1 || a.Selected[0] != 2 {
		t.Errorf("Selected = %v, want [2]", a.Selected)
	}

	query.Class = 3
	if _, err := m.Mediate(0, query); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("class with no providers: err = %v", err)
	}
}

func TestMediateBackfillsIntentionsForBaselines(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	cons := &fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 0.5}}
	m.RegisterConsumer(cons)
	m.RegisterProvider(&fakeProvider{id: 1, intention: -0.25})

	a, err := m.Mediate(0, q(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ConsumerIntentions) != 1 || a.ConsumerIntentions[0] != 0.5 {
		t.Errorf("CI backfill = %v", a.ConsumerIntentions)
	}
	if len(a.ProviderIntentions) != 1 || a.ProviderIntentions[0] != -0.25 {
		t.Errorf("PI backfill = %v", a.ProviderIntentions)
	}
	// Satisfactions recorded from those intentions.
	if got := m.Registry().ConsumerSatisfaction(0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("consumer δs = %v, want 0.75", got)
	}
	if got := m.Registry().ProviderSatisfaction(1); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("provider δs = %v, want 0.375", got)
	}
}

func TestMediateWithSbQAAllocator(t *testing.T) {
	sbqa := core.MustNew(core.Config{KnBest: knbest.Params{K: 0, Kn: 0}})
	m := newTestMediator(sbqa)
	cons := &fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{
		1: 0.9, 2: 0.9, 3: -0.9,
	}}
	m.RegisterConsumer(cons)
	m.RegisterProvider(&fakeProvider{id: 1, intention: 0.9})
	m.RegisterProvider(&fakeProvider{id: 2, intention: -0.9})
	m.RegisterProvider(&fakeProvider{id: 3, intention: 0.9})

	a, err := m.Mediate(0, q(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Selected[0] != 1 {
		t.Errorf("Selected = %v, want provider 1 (mutual interest)", a.Selected)
	}
	// SbQA collected intentions itself — backfill must not overwrite them.
	ci, pi, ok := a.IntentionFor(1)
	if !ok || ci != 0.9 || pi != 0.9 {
		t.Errorf("IntentionFor(1) = %v/%v/%v", ci, pi, ok)
	}
	// All three providers were proposed (kn disabled ⇒ Kn = P_q) and so
	// all three recorded the interaction.
	if got := m.Registry().ProviderSatisfaction(2); got != 0 {
		t.Errorf("unselected provider δs = %v, want 0 (proposed, not performed)", got)
	}
}

func TestUnregisterForgetsMemory(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	m.RegisterConsumer(&fakeConsumer{id: 0})
	m.RegisterProvider(&fakeProvider{id: 1, intention: 1})
	if _, err := m.Mediate(0, q(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if m.Providers() != 1 || m.Consumers() != 1 {
		t.Error("registration counts wrong")
	}
	m.UnregisterProvider(1)
	if m.Providers() != 0 {
		t.Error("provider not unregistered")
	}
	if got := m.Registry().ProviderSatisfaction(1); got != 0.5 {
		t.Errorf("departed provider memory kept: %v", got)
	}
	m.UnregisterConsumer(0)
	if got := m.Registry().ConsumerSatisfaction(0); got != 0.5 {
		t.Errorf("departed consumer memory kept: %v", got)
	}
}

func TestMediateDeterministicCandidateOrder(t *testing.T) {
	// Two mediators with identical state and a seeded SbQA must allocate
	// identically even though provider registration order differs (the
	// map-iteration order must not leak into candidate order).
	build := func(order []int) *Mediator {
		sbqa := core.MustNew(core.Config{KnBest: knbest.Params{K: 2, Kn: 1}, Seed: 5})
		m := newTestMediator(sbqa)
		m.RegisterConsumer(&fakeConsumer{id: 0})
		for _, id := range order {
			m.RegisterProvider(&fakeProvider{id: model.ProviderID(id), intention: 0.5})
		}
		return m
	}
	m1 := build([]int{1, 2, 3, 4, 5})
	m2 := build([]int{5, 3, 1, 4, 2})
	for i := int64(0); i < 30; i++ {
		a1, err1 := m1.Mediate(0, q(i, 0, 1))
		a2, err2 := m2.Mediate(0, q(i, 0, 1))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a1.Selected[0] != a2.Selected[0] {
			t.Fatalf("allocation depends on registration order: %v vs %v", a1.Selected, a2.Selected)
		}
	}
}

func TestSetAllocator(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	if m.Allocator().Name() != "Capacity" {
		t.Error("initial allocator wrong")
	}
	m.SetAllocator(alloc.NewRoundRobin())
	if m.Allocator().Name() != "RoundRobin" {
		t.Error("SetAllocator not applied")
	}
	if m.Provider(1) != nil || m.Consumer(1) != nil {
		t.Error("lookups on empty mediator should be nil")
	}
}

func TestAnalyzeBestRecordsTrueOptimum(t *testing.T) {
	// Capacity picks the idle provider the consumer hates; AnalyzeBest
	// makes allocation satisfaction reflect the missed better option.
	m := New(alloc.NewCapacity(), Config{Window: 10, AnalyzeBest: true})
	cons := &fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{
		1: -1, // idle, will be picked
		2: 1,  // busy, ignored by capacity
	}}
	m.RegisterConsumer(cons)
	m.RegisterProvider(&fakeProvider{id: 1, util: 0.0})
	m.RegisterProvider(&fakeProvider{id: 2, util: 0.9})
	if _, err := m.Mediate(0, q(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	tr := m.Registry().Consumer(0)
	if got := tr.AllocationSatisfaction(); got != 0 {
		t.Errorf("allocation satisfaction = %v, want 0 (got hated provider, loved one available)", got)
	}
}
