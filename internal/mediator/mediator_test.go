package mediator

import (
	"context"
	"errors"
	"math"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/directory"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
	"sbqa/internal/satisfaction"
)

// fakeConsumer likes providers according to a fixed table.
type fakeConsumer struct {
	id    model.ConsumerID
	likes map[model.ProviderID]model.Intention
	asked int
}

func (c *fakeConsumer) ConsumerID() model.ConsumerID { return c.id }
func (c *fakeConsumer) Intention(_ model.Query, snap model.ProviderSnapshot) model.Intention {
	c.asked++
	return c.likes[snap.ID]
}

// fakeProvider reports fixed state.
type fakeProvider struct {
	id        model.ProviderID
	util      float64
	intention model.Intention
	bid       float64
	classes   map[int]bool // nil = performs anything
}

func (p *fakeProvider) ProviderID() model.ProviderID { return p.id }
func (p *fakeProvider) Snapshot(float64) model.ProviderSnapshot {
	return model.ProviderSnapshot{ID: p.id, Utilization: p.util, Capacity: 1}
}
func (p *fakeProvider) CanPerform(q model.Query) bool {
	if p.classes == nil {
		return true
	}
	return p.classes[q.Class]
}
func (p *fakeProvider) Intention(model.Query) model.Intention { return p.intention }
func (p *fakeProvider) Bid(model.Query) float64               { return p.bid }

func newTestMediator(a alloc.Allocator) *Mediator {
	return New(a, Config{Window: 10, AnalyzeBest: true})
}

func q(id int64, c model.ConsumerID, n int) model.Query {
	return model.Query{ID: model.QueryID(id), Consumer: c, N: n, Work: 1}
}

// bg is the background context every synchronous test mediation uses.
var bg = context.Background()

func TestMediateValidation(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	if _, err := m.Mediate(bg, 0, model.Query{ID: 1, Consumer: 0, N: 0, Work: 1}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := m.Mediate(bg, 0, q(1, 9, 1)); err == nil {
		t.Error("unregistered consumer accepted")
	}
}

func TestMediateNoCandidates(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	c := &fakeConsumer{id: 0}
	m.RegisterConsumer(c)
	_, err := m.Mediate(bg, 0, q(1, 0, 1))
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
	// The failed mediation must hurt the consumer's satisfaction.
	if got := m.Registry().ConsumerSatisfaction(0); got != 0 {
		t.Errorf("consumer δs after failure = %v, want 0", got)
	}
}

func TestMediateClassFiltering(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	m.RegisterConsumer(&fakeConsumer{id: 0})
	m.RegisterProvider(&fakeProvider{id: 1, classes: map[int]bool{1: true}})
	m.RegisterProvider(&fakeProvider{id: 2, classes: map[int]bool{2: true}})

	query := q(1, 0, 1)
	query.Class = 2
	a, err := m.Mediate(bg, 0, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != 1 || a.Selected[0] != 2 {
		t.Errorf("Selected = %v, want [2]", a.Selected)
	}

	query.Class = 3
	if _, err := m.Mediate(bg, 0, query); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("class with no providers: err = %v", err)
	}
}

func TestMediateBackfillsIntentionsForBaselines(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	cons := &fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 0.5}}
	m.RegisterConsumer(cons)
	m.RegisterProvider(&fakeProvider{id: 1, intention: -0.25})

	a, err := m.Mediate(bg, 0, q(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ConsumerIntentions) != 1 || a.ConsumerIntentions[0] != 0.5 {
		t.Errorf("CI backfill = %v", a.ConsumerIntentions)
	}
	if len(a.ProviderIntentions) != 1 || a.ProviderIntentions[0] != -0.25 {
		t.Errorf("PI backfill = %v", a.ProviderIntentions)
	}
	// Satisfactions recorded from those intentions.
	if got := m.Registry().ConsumerSatisfaction(0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("consumer δs = %v, want 0.75", got)
	}
	if got := m.Registry().ProviderSatisfaction(1); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("provider δs = %v, want 0.375", got)
	}
}

func TestMediateWithSbQAAllocator(t *testing.T) {
	sbqa := core.MustNew(core.Config{KnBest: knbest.Params{K: 0, Kn: 0}})
	m := newTestMediator(sbqa)
	cons := &fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{
		1: 0.9, 2: 0.9, 3: -0.9,
	}}
	m.RegisterConsumer(cons)
	m.RegisterProvider(&fakeProvider{id: 1, intention: 0.9})
	m.RegisterProvider(&fakeProvider{id: 2, intention: -0.9})
	m.RegisterProvider(&fakeProvider{id: 3, intention: 0.9})

	a, err := m.Mediate(bg, 0, q(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Selected[0] != 1 {
		t.Errorf("Selected = %v, want provider 1 (mutual interest)", a.Selected)
	}
	// SbQA collected intentions itself — backfill must not overwrite them.
	ci, pi, ok := a.IntentionFor(1)
	if !ok || ci != 0.9 || pi != 0.9 {
		t.Errorf("IntentionFor(1) = %v/%v/%v", ci, pi, ok)
	}
	// All three providers were proposed (kn disabled ⇒ Kn = P_q) and so
	// all three recorded the interaction.
	if got := m.Registry().ProviderSatisfaction(2); got != 0 {
		t.Errorf("unselected provider δs = %v, want 0 (proposed, not performed)", got)
	}
}

func TestUnregisterForgetsMemory(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	m.RegisterConsumer(&fakeConsumer{id: 0})
	m.RegisterProvider(&fakeProvider{id: 1, intention: 1})
	if _, err := m.Mediate(bg, 0, q(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if m.Providers() != 1 || m.Consumers() != 1 {
		t.Error("registration counts wrong")
	}
	m.UnregisterProvider(1)
	if m.Providers() != 0 {
		t.Error("provider not unregistered")
	}
	if got := m.Registry().ProviderSatisfaction(1); got != 0.5 {
		t.Errorf("departed provider memory kept: %v", got)
	}
	m.UnregisterConsumer(0)
	if got := m.Registry().ConsumerSatisfaction(0); got != 0.5 {
		t.Errorf("departed consumer memory kept: %v", got)
	}
}

func TestMediateDeterministicCandidateOrder(t *testing.T) {
	// Two mediators with identical state and a seeded SbQA must allocate
	// identically even though provider registration order differs (the
	// map-iteration order must not leak into candidate order).
	build := func(order []int) *Mediator {
		sbqa := core.MustNew(core.Config{KnBest: knbest.Params{K: 2, Kn: 1}, Seed: 5})
		m := newTestMediator(sbqa)
		m.RegisterConsumer(&fakeConsumer{id: 0})
		for _, id := range order {
			m.RegisterProvider(&fakeProvider{id: model.ProviderID(id), intention: 0.5})
		}
		return m
	}
	m1 := build([]int{1, 2, 3, 4, 5})
	m2 := build([]int{5, 3, 1, 4, 2})
	for i := int64(0); i < 30; i++ {
		a1, err1 := m1.Mediate(bg, 0, q(i, 0, 1))
		a2, err2 := m2.Mediate(bg, 0, q(i, 0, 1))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a1.Selected[0] != a2.Selected[0] {
			t.Fatalf("allocation depends on registration order: %v vs %v", a1.Selected, a2.Selected)
		}
	}
}

func TestSetAllocator(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	if m.Allocator().Name() != "Capacity" {
		t.Error("initial allocator wrong")
	}
	m.SetAllocator(alloc.NewRoundRobin())
	if m.Allocator().Name() != "RoundRobin" {
		t.Error("SetAllocator not applied")
	}
	if m.Provider(1) != nil || m.Consumer(1) != nil {
		t.Error("lookups on empty mediator should be nil")
	}
}

func TestAnalyzeBestRecordsTrueOptimum(t *testing.T) {
	// Capacity picks the idle provider the consumer hates; AnalyzeBest
	// makes allocation satisfaction reflect the missed better option.
	m := New(alloc.NewCapacity(), Config{Window: 10, AnalyzeBest: true})
	cons := &fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{
		1: -1, // idle, will be picked
		2: 1,  // busy, ignored by capacity
	}}
	m.RegisterConsumer(cons)
	m.RegisterProvider(&fakeProvider{id: 1, util: 0.0})
	m.RegisterProvider(&fakeProvider{id: 2, util: 0.9})
	if _, err := m.Mediate(bg, 0, q(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	tr := m.Registry().Consumer(0)
	if got := tr.AllocationSatisfaction(); got != 0 {
		t.Errorf("allocation satisfaction = %v, want 0 (got hated provider, loved one available)", got)
	}
}

// unregisteringAllocator wraps an inner allocator and unregisters a provider
// from the mediator's directory *during* Allocate — simulating a provider
// departing mid-flight between candidate discovery and intention backfill,
// which is possible when the directory is shared with concurrent
// registrars (the sharded live engine).
type unregisteringAllocator struct {
	inner  alloc.Allocator
	m      *Mediator
	victim model.ProviderID
}

func (u *unregisteringAllocator) Name() string { return "unregistering" }
func (u *unregisteringAllocator) Allocate(ctx context.Context, e alloc.Env, q model.Query, cands []model.ProviderSnapshot) (*model.Allocation, error) {
	a, err := u.inner.Allocate(ctx, e, q, cands)
	u.m.Directory().UnregisterProvider(u.victim)
	u.m.Registry().ForgetProvider(u.victim)
	return a, err
}

// TestBackfillDropsStaleProvider is the regression test for the historical
// bug where a provider that unregistered mid-flight was silently recorded
// with zero intentions: its satisfaction tracker was resurrected and the
// consumer's window recorded a phantom zero-intention result.
func TestBackfillDropsStaleProvider(t *testing.T) {
	m := newTestMediator(nil)
	cons := &fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 0.5, 2: 0.5}}
	m.RegisterConsumer(cons)
	m.RegisterProvider(&fakeProvider{id: 1, intention: 0.5})
	m.RegisterProvider(&fakeProvider{id: 2, intention: 0.5, util: 0.9})
	// Capacity proposes both providers, selects idle provider 1; provider 2
	// unregisters during allocation.
	m.SetAllocator(&unregisteringAllocator{inner: alloc.NewCapacity(), m: m, victim: 2})

	a, err := m.Mediate(bg, 0, q(1, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.Proposed {
		if id == 2 {
			t.Errorf("stale provider 2 still in Proposed: %v", a.Proposed)
		}
	}
	for _, id := range a.Selected {
		if id == 2 {
			t.Errorf("stale provider 2 still in Selected: %v", a.Selected)
		}
	}
	if len(a.ConsumerIntentions) != len(a.Proposed) || len(a.ProviderIntentions) != len(a.Proposed) {
		t.Errorf("intentions misaligned after compaction: %d CI / %d PI for %d proposed",
			len(a.ConsumerIntentions), len(a.ProviderIntentions), len(a.Proposed))
	}
	// The departed provider's tracker must NOT have been resurrected.
	if got := m.Registry().ProviderSatisfaction(2); got != 0.5 {
		t.Errorf("stale provider tracker resurrected: δs = %v, want Neutral", got)
	}
	// The surviving provider recorded the interaction normally.
	if got := m.Registry().ProviderSatisfaction(1); got != 0.75 {
		t.Errorf("surviving provider δs = %v, want 0.75", got)
	}
}

// TestBackfillAllStale: if every proposed provider departs mid-flight and
// the retry finds the directory drained, the mediation is reported with the
// transient stale-selection sentinel (capacity existed at discovery time)
// rather than an empty allocation or the terminal ErrNoCandidates.
func TestBackfillAllStale(t *testing.T) {
	m := newTestMediator(nil)
	m.RegisterConsumer(&fakeConsumer{id: 0})
	m.RegisterProvider(&fakeProvider{id: 1, intention: 1})
	m.SetAllocator(&unregisteringAllocator{inner: alloc.NewCapacity(), m: m, victim: 1})
	if _, err := m.Mediate(bg, 0, q(1, 0, 1)); !errors.Is(err, ErrStaleSelection) {
		t.Errorf("err = %v, want ErrStaleSelection", err)
	}
	// The consumer's dissatisfaction accumulated for the failed query.
	if got := m.Registry().ConsumerSatisfaction(0); got != 0 {
		t.Errorf("consumer δs = %v, want 0", got)
	}
}

// oneShotStaleAllocator unregisters victim during its first Allocate only —
// the churn settles, so the pipeline's stale retry sees a stable refreshed
// candidate set.
type oneShotStaleAllocator struct {
	inner  alloc.Allocator
	m      *Mediator
	victim model.ProviderID
	fired  bool
}

func (u *oneShotStaleAllocator) Name() string { return "one-shot-stale" }
func (u *oneShotStaleAllocator) Allocate(ctx context.Context, e alloc.Env, q model.Query, cands []model.ProviderSnapshot) (*model.Allocation, error) {
	a, err := u.inner.Allocate(ctx, e, q, cands)
	if !u.fired {
		u.fired = true
		u.m.Directory().UnregisterProvider(u.victim)
		u.m.Registry().ForgetProvider(u.victim)
	}
	return a, err
}

// TestStaleSelectionRetries: when the whole selection goes stale mid-flight
// but other capacity is still registered, mediation re-discovers against the
// refreshed directory and serves the query instead of failing it.
func TestStaleSelectionRetries(t *testing.T) {
	m := newTestMediator(nil)
	m.RegisterConsumer(&fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 0.5, 2: 0.5}})
	m.RegisterProvider(&fakeProvider{id: 1, intention: 0.5})            // idle: capacity picks it first
	m.RegisterProvider(&fakeProvider{id: 2, intention: 0.5, util: 0.9}) // busy survivor
	m.SetAllocator(&oneShotStaleAllocator{inner: alloc.NewCapacity(), m: m, victim: 1})

	a, err := m.Mediate(bg, 0, q(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != 1 || a.Selected[0] != 2 {
		t.Fatalf("retry selected %v, want surviving provider 2", a.Selected)
	}
	// Exactly one outcome recorded — the abandoned first attempt left no
	// trace in the consumer's window.
	if n := m.Registry().Consumer(0).Interactions(); n != 1 {
		t.Errorf("consumer interactions = %d, want 1", n)
	}
}

// churningAllocator unregisters every provider it selects and registers a
// fresh replacement, so each attempt's selection goes stale while registered
// capacity always exists — the pathological churn that must surface as
// ErrStaleSelection rather than ErrNoCandidates.
type churningAllocator struct {
	inner alloc.Allocator
	m     *Mediator
	next  model.ProviderID
}

func (u *churningAllocator) Name() string { return "churning" }
func (u *churningAllocator) Allocate(ctx context.Context, e alloc.Env, q model.Query, cands []model.ProviderSnapshot) (*model.Allocation, error) {
	a, err := u.inner.Allocate(ctx, e, q, cands)
	if a != nil {
		for _, id := range a.Selected {
			u.m.Directory().UnregisterProvider(id)
			u.m.Registry().ForgetProvider(id)
		}
	}
	u.m.RegisterProvider(&fakeProvider{id: u.next, intention: 0.5})
	u.next++
	return a, err
}

// TestStaleSelectionError: when even the retry's selection churns away,
// Mediate reports ErrStaleSelection — distinct from ErrNoCandidates, since
// capacity was registered the whole time — and records the query as
// unserved exactly once.
func TestStaleSelectionError(t *testing.T) {
	m := newTestMediator(nil)
	m.RegisterConsumer(&fakeConsumer{id: 0})
	m.RegisterProvider(&fakeProvider{id: 1, intention: 0.5})
	m.SetAllocator(&churningAllocator{inner: alloc.NewCapacity(), m: m, next: 2})

	_, err := m.Mediate(bg, 0, q(1, 0, 1))
	if !errors.Is(err, ErrStaleSelection) {
		t.Fatalf("err = %v, want ErrStaleSelection", err)
	}
	if errors.Is(err, ErrNoCandidates) {
		t.Error("ErrStaleSelection must not match ErrNoCandidates")
	}
	if n := m.Registry().Consumer(0).Interactions(); n != 1 {
		t.Errorf("consumer interactions = %d, want 1", n)
	}
	if got := m.Registry().ConsumerSatisfaction(0); got != 0 {
		t.Errorf("consumer δs = %v, want 0", got)
	}
}

func TestMediateBatchMatchesSequential(t *testing.T) {
	build := func() *Mediator {
		sb := core.MustNew(core.Config{KnBest: knbest.Params{K: 3, Kn: 2}, Seed: 11})
		m := New(sb, Config{Window: 20, AnalyzeBest: true})
		m.RegisterConsumer(&fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 0.9, 2: 0.1, 3: 0.4, 4: -0.2}})
		m.RegisterConsumer(&fakeConsumer{id: 1, likes: map[model.ProviderID]model.Intention{1: -0.5, 2: 0.8, 3: 0.2, 4: 0.6}})
		for i := 1; i <= 4; i++ {
			m.RegisterProvider(&fakeProvider{id: model.ProviderID(i), intention: model.Intention(float64(i)/4 - 0.5)})
		}
		return m
	}
	queries := make([]model.Query, 12)
	for i := range queries {
		queries[i] = q(int64(i+1), model.ConsumerID(i%2), 1)
	}

	seq := build()
	wantAllocs := make([]*model.Allocation, len(queries))
	for i, qq := range queries {
		a, err := seq.Mediate(bg, 5, qq)
		if err != nil {
			t.Fatal(err)
		}
		wantAllocs[i] = a
	}

	batch := build()
	gotAllocs, errs := batch.MediateBatch(bg, 5, queries)
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("batch query %d: %v", i, errs[i])
		}
		if got, want := gotAllocs[i].String(), wantAllocs[i].String(); got != want {
			t.Errorf("query %d: batch %s != sequential %s", i, got, want)
		}
	}
	// Satisfaction state identical afterwards.
	for c := 0; c < 2; c++ {
		if a, b := seq.Registry().ConsumerSatisfaction(model.ConsumerID(c)), batch.Registry().ConsumerSatisfaction(model.ConsumerID(c)); a != b {
			t.Errorf("consumer %d δs: sequential %v != batch %v", c, a, b)
		}
	}
	for p := 1; p <= 4; p++ {
		if a, b := seq.Registry().ProviderSatisfaction(model.ProviderID(p)), batch.Registry().ProviderSatisfaction(model.ProviderID(p)); a != b {
			t.Errorf("provider %d δs: sequential %v != batch %v", p, a, b)
		}
	}
}

func TestMediateBatchReportsPerQueryErrors(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	m.RegisterConsumer(&fakeConsumer{id: 0})
	m.RegisterProvider(&fakeProvider{id: 1, classes: map[int]bool{0: true}})
	qs := []model.Query{
		q(1, 0, 1),           // fine
		q(2, 7, 1),           // unregistered consumer
		{ID: 3, Consumer: 0}, // invalid (N=0)
	}
	qs[0].Class = 0
	allocs, errs := m.MediateBatch(bg, 0, qs)
	if errs[0] != nil || allocs[0] == nil {
		t.Errorf("query 0: %v", errs[0])
	}
	if errs[1] == nil {
		t.Error("unregistered consumer accepted in batch")
	}
	if errs[2] == nil {
		t.Error("invalid query accepted in batch")
	}
}

// TestSharedDirectoryAndRegistry: two mediator shards over one directory and
// one registry see each other's participants and satisfaction state — the
// wiring the live engine depends on.
func TestSharedDirectoryAndRegistry(t *testing.T) {
	dir := directory.New()
	reg := satisfaction.NewRegistry(10)
	m1 := New(alloc.NewCapacity(), Config{Window: 10, Registry: reg, Directory: dir})
	m2 := New(alloc.NewCapacity(), Config{Window: 10, Registry: reg, Directory: dir})

	m1.RegisterProvider(&fakeProvider{id: 1, intention: 1})
	m1.RegisterConsumer(&fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 1}})
	m2.RegisterConsumer(&fakeConsumer{id: 1, likes: map[model.ProviderID]model.Intention{1: 1}})

	if m2.Providers() != 1 {
		t.Fatal("shard 2 does not see shard 1's provider")
	}
	if _, err := m1.Mediate(bg, 0, q(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Mediate(bg, 0, q(2, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// Both mediations recorded into the one registry.
	if got := reg.ProviderSatisfaction(1); got != 1 {
		t.Errorf("shared provider δs = %v, want 1", got)
	}
	if got := m1.Registry().ConsumerSatisfaction(1); got != 1 {
		t.Errorf("shard 1 cannot read shard 2's consumer δs: %v", got)
	}
}

// vetoProvider rejects individual queries by predicate — the "per-query
// CanPerform within a declared class" contract of the directory layer.
type vetoProvider struct {
	fakeProvider
	veto func(q model.Query) bool
}

func (p *vetoProvider) CanPerform(q model.Query) bool { return !p.veto(q) }

// TestMediateBatchRespectsPerQueryCanPerform: snapshot amortization must not
// bypass CanPerform for later queries of a batch — a provider that vetoes
// heavy queries must never be proposed one, even when a light same-class
// query already populated the snapshot cache.
func TestMediateBatchRespectsPerQueryCanPerform(t *testing.T) {
	m := newTestMediator(alloc.NewCapacity())
	m.RegisterConsumer(&fakeConsumer{id: 0})
	// Provider 1 vetoes Work > 5; provider 2 (heavily loaded, so capacity
	// ranks it last) accepts anything.
	m.RegisterProvider(&vetoProvider{
		fakeProvider: fakeProvider{id: 1, intention: 1},
		veto:         func(q model.Query) bool { return q.Work > 5 },
	})
	m.RegisterProvider(&fakeProvider{id: 2, intention: 1, util: 0.9})

	light := q(1, 0, 1)
	light.Work = 1
	heavy := q(2, 0, 1)
	heavy.Work = 10
	allocs, errs := m.MediateBatch(bg, 0, []model.Query{light, heavy})
	if errs[0] != nil || errs[1] != nil {
		t.Fatal(errs)
	}
	if allocs[0].Selected[0] != 1 {
		t.Errorf("light query selected %v, want idle provider 1", allocs[0].Selected)
	}
	for _, id := range allocs[1].Proposed {
		if id == 1 {
			t.Errorf("heavy query proposed to vetoing provider: %v", allocs[1].Proposed)
		}
	}
	if allocs[1].Selected[0] != 2 {
		t.Errorf("heavy query selected %v, want provider 2", allocs[1].Selected)
	}
}
