package mediator

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/event"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
	"sbqa/internal/stats"
)

// participantProvider is a fakeProvider that also answers the context-aware
// protocol. delay > 0 sleeps before answering; if ignoreCtx is set the call
// never returns at all (simulating a participant that ignores cancellation),
// otherwise it honors ctx while sleeping.
type participantProvider struct {
	fakeProvider
	ctxIntention model.Intention
	delay        time.Duration
	ignoreCtx    bool
	release      chan struct{} // non-nil: block until closed (or ctx when honored)
}

func (p *participantProvider) IntentionContext(ctx context.Context, _ model.Query) (model.Intention, error) {
	if p.release != nil {
		if p.ignoreCtx {
			<-p.release
		} else {
			select {
			case <-p.release:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
	}
	if p.delay > 0 {
		select {
		case <-time.After(p.delay):
		case <-ctx.Done():
			if !p.ignoreCtx {
				return 0, ctx.Err()
			}
			<-time.After(p.delay)
		}
	}
	return p.ctxIntention, nil
}

// batchConsumer answers the batched consumer protocol from a table; fn, when
// set, overrides the whole call.
type batchConsumer struct {
	id    model.ConsumerID
	likes map[model.ProviderID]model.Intention
	fn    func(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) ([]model.Intention, error)
	calls int
}

func (c *batchConsumer) ConsumerID() model.ConsumerID { return c.id }

// Intention is the synchronous fallback the batched fan-out must not use.
func (c *batchConsumer) Intention(model.Query, model.ProviderSnapshot) model.Intention {
	panic("batched protocol bypassed: synchronous Intention called on a ConsumerParticipant")
}

func (c *batchConsumer) Intentions(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) ([]model.Intention, error) {
	c.calls++
	if c.fn != nil {
		return c.fn(ctx, q, kn)
	}
	out := make([]model.Intention, len(kn))
	for i, snap := range kn {
		out[i] = c.likes[snap.ID]
	}
	return out, nil
}

// collectImputations is an observer recording every imputation event.
type collectImputations struct {
	event.Nop
	events []event.Imputation
}

func (c *collectImputations) OnIntentionImputed(im event.Imputation) {
	c.events = append(c.events, im)
}

func fullPopulationSbQA() *core.SbQA {
	return core.MustNew(core.Config{KnBest: knbest.Params{K: 0, Kn: 0}, Omega: core.FixedOmega(0.5)})
}

// TestFanoutCollectsParticipantIntentions: context-aware participants answer
// the batch; their values land position-aligned in the allocation, and the
// synchronous fallback paths are never used.
func TestFanoutCollectsParticipantIntentions(t *testing.T) {
	m := New(fullPopulationSbQA(), Config{Window: 10})
	cons := &batchConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 0.9, 2: -0.2, 3: 0.4}}
	m.RegisterConsumer(cons)
	m.RegisterProvider(&participantProvider{fakeProvider: fakeProvider{id: 1}, ctxIntention: 0.7})
	m.RegisterProvider(&participantProvider{fakeProvider: fakeProvider{id: 2}, ctxIntention: 0.1})
	m.RegisterProvider(&fakeProvider{id: 3, intention: -0.5}) // in-process peer in the same batch

	a, err := m.Mediate(bg, 0, q(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for id, wantCI := range map[model.ProviderID]model.Intention{1: 0.9, 2: -0.2, 3: 0.4} {
		ci, _, ok := a.IntentionFor(id)
		if !ok || ci != wantCI {
			t.Errorf("CI for provider %d = %v/%v, want %v", id, ci, ok, wantCI)
		}
	}
	for id, wantPI := range map[model.ProviderID]model.Intention{1: 0.7, 2: 0.1, 3: -0.5} {
		_, pi, ok := a.IntentionFor(id)
		if !ok || pi != wantPI {
			t.Errorf("PI for provider %d = %v/%v, want %v", id, pi, ok, wantPI)
		}
	}
	if a.Selected[0] != 1 {
		t.Errorf("Selected = %v, want mutual-interest provider 1", a.Selected)
	}
	if cons.calls != 1 {
		t.Errorf("consumer batch called %d times, want 1", cons.calls)
	}
}

// TestSlowProviderImputedWithinDeadline is the acceptance scenario: one
// deliberately slow participant that ignores cancellation entirely. The
// mediation must complete within the configured per-participant deadline,
// impute the missing intention from the provider's satisfaction registry
// state, and emit a typed imputation event.
func TestSlowProviderImputedWithinDeadline(t *testing.T) {
	const deadline = 50 * time.Millisecond
	obs := &collectImputations{}
	m := New(fullPopulationSbQA(), Config{
		Window:              10,
		ParticipantDeadline: deadline,
		Observer:            obs,
	})
	m.RegisterConsumer(&fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 0.5, 2: 0.5}})
	release := make(chan struct{})
	defer close(release)
	slow := &participantProvider{fakeProvider: fakeProvider{id: 1}, release: release, ignoreCtx: true}
	m.RegisterProvider(slow)
	m.RegisterProvider(&fakeProvider{id: 2, intention: 0.3})

	// Seed the slow provider's registry state: historical expressed
	// intention 0.8 → δa = 0.9 → imputed PI = 2·0.9 − 1 = 0.8.
	m.Registry().Provider(1).Record(0.8, true)

	start := time.Now()
	a, err := m.Mediate(bg, 0, q(1, 0, 2))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > deadline+400*time.Millisecond {
		t.Fatalf("mediation took %v, want ≈ the %v participant deadline", elapsed, deadline)
	}
	_, pi, ok := a.IntentionFor(1)
	if !ok || math.Abs(float64(pi)-0.8) > 1e-9 {
		t.Errorf("imputed PI for silent provider = %v/%v, want 0.8 (from δa)", pi, ok)
	}
	if _, pi2, ok := a.IntentionFor(2); !ok || pi2 != 0.3 {
		t.Errorf("responsive provider PI = %v/%v, want 0.3", pi2, ok)
	}
	if len(obs.events) != 1 {
		t.Fatalf("imputation events = %d, want 1 (%v)", len(obs.events), obs.events)
	}
	im := obs.events[0]
	if im.Provider != 1 || im.ConsumerSilent() {
		t.Errorf("event names provider %d (consumerSilent=%v), want provider 1", im.Provider, im.ConsumerSilent())
	}
	if !im.Timeout() || !errors.Is(im.Err, context.DeadlineExceeded) {
		t.Errorf("event err = %v, want deadline exceeded", im.Err)
	}
	if math.Abs(float64(im.Imputed)-0.8) > 1e-9 {
		t.Errorf("event imputed = %v, want 0.8", im.Imputed)
	}
}

// TestSilentConsumerImputed: a consumer webhook that fails has its whole CI
// batch imputed from the consumer's registry adequation, and the event names
// the consumer (Provider = NoProvider).
func TestSilentConsumerImputed(t *testing.T) {
	obs := &collectImputations{}
	m := New(fullPopulationSbQA(), Config{Window: 10, Observer: obs})
	boom := errors.New("webhook down")
	m.RegisterConsumer(&batchConsumer{id: 0, fn: func(context.Context, model.Query, []model.ProviderSnapshot) ([]model.Intention, error) {
		return nil, boom
	}})
	m.RegisterProvider(&fakeProvider{id: 1, intention: 0.5})

	a, err := m.Mediate(bg, 0, q(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Cold consumer: δa = Neutral (0.5) → imputed CI = 0.
	if ci, _, ok := a.IntentionFor(1); !ok || ci != 0 {
		t.Errorf("imputed CI = %v/%v, want neutral 0", ci, ok)
	}
	if len(obs.events) != 1 {
		t.Fatalf("imputation events = %d, want 1", len(obs.events))
	}
	im := obs.events[0]
	if !im.ConsumerSilent() || im.Consumer != 0 {
		t.Errorf("event = %+v, want consumer-silent for consumer 0", im)
	}
	if !errors.Is(im.Err, boom) {
		t.Errorf("event err = %v, want the webhook error", im.Err)
	}
	if im.Timeout() {
		t.Error("an explicit webhook failure must not read as a timeout")
	}
}

// TestConsumerBatchLengthMismatchImputed: a misaligned batch response is a
// failed collection, not a partial one.
func TestConsumerBatchLengthMismatchImputed(t *testing.T) {
	obs := &collectImputations{}
	m := New(fullPopulationSbQA(), Config{Window: 10, Observer: obs})
	m.RegisterConsumer(&batchConsumer{id: 0, fn: func(_ context.Context, _ model.Query, kn []model.ProviderSnapshot) ([]model.Intention, error) {
		return make([]model.Intention, len(kn)+1), nil
	}})
	m.RegisterProvider(&fakeProvider{id: 1, intention: 0.5})

	if _, err := m.Mediate(bg, 0, q(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if len(obs.events) != 1 || !obs.events[0].ConsumerSilent() {
		t.Fatalf("imputation events = %v, want one consumer-silent event", obs.events)
	}
}

// TestMediateCanceledContext: a canceled context rejects the query outright —
// no registry record, no allocation, and the rejection reason is the context
// error.
func TestMediateCanceledContext(t *testing.T) {
	var rejected error
	m := New(fullPopulationSbQA(), Config{
		Window: 10,
		Observer: event.Funcs{
			Rejection: func(_ model.Query, reason error) { rejected = reason },
		},
	})
	m.RegisterConsumer(&fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 1}})
	m.RegisterProvider(&fakeProvider{id: 1, intention: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := m.Mediate(ctx, 0, q(1, 0, 1))
	if !errors.Is(err, context.Canceled) || a != nil {
		t.Fatalf("Mediate = %v, %v; want nil allocation and context.Canceled", a, err)
	}
	if !errors.Is(rejected, context.Canceled) {
		t.Errorf("rejection reason = %v, want context.Canceled", rejected)
	}
	// Nothing recorded: the consumer's window is untouched.
	if n := m.Registry().Consumer(0).Interactions(); n != 0 {
		t.Errorf("consumer interactions = %d, want 0", n)
	}
}

// TestCancelAbortsInFlightFanout: canceling the mediation context while the
// fan-out is waiting on a participant aborts the mediation promptly with the
// context error (the participant here honors ctx, but the hard-deadline
// select guarantees the same even if it did not).
func TestCancelAbortsInFlightFanout(t *testing.T) {
	m := New(fullPopulationSbQA(), Config{Window: 10})
	m.RegisterConsumer(&fakeConsumer{id: 0, likes: map[model.ProviderID]model.Intention{1: 1}})
	release := make(chan struct{})
	defer close(release)
	m.RegisterProvider(&participantProvider{fakeProvider: fakeProvider{id: 1}, release: release})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := m.Mediate(ctx, 0, q(1, 0, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
}

// ctxBidder is a fakeProvider with a context-aware bid; release, when
// non-nil, blocks the call until closed or ctx done. pending feeds its
// snapshot's PendingWork so the imputed expected-delay fallback is large.
type ctxBidder struct {
	fakeProvider
	ctxBid  float64
	pending float64
	release chan struct{}
}

func (p *ctxBidder) Snapshot(float64) model.ProviderSnapshot {
	return model.ProviderSnapshot{ID: p.id, Utilization: p.util, Capacity: 1, PendingWork: p.pending}
}

func (p *ctxBidder) BidContext(ctx context.Context, _ model.Query) (float64, error) {
	if p.release != nil {
		select {
		case <-p.release:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return p.ctxBid, nil
}

// newEconomicForTest returns an economic allocator whose bid sample covers
// every candidate, so auctions are deterministic.
func newEconomicForTest() *alloc.Economic {
	e := alloc.NewEconomic(stats.NewRNG(1))
	e.BidSample = 16
	return e
}

// TestEconomicBidderParticipant: the economic baseline's bidding round rides
// the same fan-out — a context-aware bidder's price is used, and a silent
// one is imputed as its expected delay.
func TestEconomicBidderParticipant(t *testing.T) {
	t.Run("responsive", func(t *testing.T) {
		m := New(newEconomicForTest(), Config{Window: 10})
		m.RegisterConsumer(&fakeConsumer{id: 0})
		m.RegisterProvider(&ctxBidder{fakeProvider: fakeProvider{id: 1, bid: 99}, ctxBid: 1})
		m.RegisterProvider(&fakeProvider{id: 2, bid: 50})
		a, err := m.Mediate(bg, 0, q(1, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		if a.Selected[0] != 1 {
			t.Errorf("Selected = %v, want context bidder 1 (bid 1 beats 50)", a.Selected)
		}
	})
	t.Run("silent", func(t *testing.T) {
		const deadline = 30 * time.Millisecond
		m := New(newEconomicForTest(), Config{Window: 10, ParticipantDeadline: deadline})
		m.RegisterConsumer(&fakeConsumer{id: 0})
		release := make(chan struct{})
		defer close(release)
		// Silent bidder with huge pending work → huge imputed expected
		// delay → loses the auction.
		silent := &ctxBidder{fakeProvider: fakeProvider{id: 1}, release: release}
		silent.pending = 1000
		m.RegisterProvider(silent)
		m.RegisterProvider(&fakeProvider{id: 2, bid: 50})
		a, err := m.Mediate(bg, 0, q(1, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		if a.Selected[0] != 2 {
			t.Errorf("Selected = %v, want responsive bidder 2", a.Selected)
		}
	})
}
