package mediator

import (
	"context"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/model"
)

// retainingAllocator violates the alloc.Allocator candidates contract on
// purpose: it keeps the candidates slice it was handed instead of copying it.
type retainingAllocator struct {
	retained []model.ProviderSnapshot
}

func (r *retainingAllocator) Name() string       { return "retaining" }
func (r *retainingAllocator) Interactive() bool  { return false }
func (r *retainingAllocator) Allocate(_ context.Context, _ alloc.Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error) {
	r.retained = candidates // the bug under test
	a := &model.Allocation{Query: q}
	a.Proposed = append(a.Proposed, candidates[0].ID)
	a.Selected = append(a.Selected, candidates[0].ID)
	return a, nil
}

// TestSnapshotBufferReuse exercises the documented aliasing hazard of
// Mediator.snapshots: the candidates slice handed to the allocator is
// per-shard scratch, overwritten by the next mediation. An allocator that
// retains it (instead of copying, as alloc.Allocator requires) observes its
// "past" candidate set mutate under it. The test pins the scratch-reuse
// behavior — if this test starts failing because the retained slice stayed
// intact, snapshots began allocating per mediation and the zero-allocation
// hot path regressed.
func TestSnapshotBufferReuse(t *testing.T) {
	ra := &retainingAllocator{}
	m := New(ra, Config{Window: 10})
	m.RegisterConsumer(&fakeConsumer{id: 1})
	// Distinct utilizations make the snapshots distinguishable.
	m.RegisterProvider(&fakeProvider{id: 10, util: 0.10})
	m.RegisterProvider(&fakeProvider{id: 20, util: 0.20})

	if _, err := m.Mediate(bg, 0, q(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	first := append([]model.ProviderSnapshot(nil), ra.retained...)
	if len(first) != 2 {
		t.Fatalf("retained %d candidates, want 2", len(first))
	}
	aliased := ra.retained

	// Second mediation with a disjoint candidate set of the same size: the
	// scratch is overwritten in place.
	m.UnregisterProvider(10)
	m.UnregisterProvider(20)
	m.RegisterProvider(&fakeProvider{id: 30, util: 0.30})
	m.RegisterProvider(&fakeProvider{id: 40, util: 0.40})
	if _, err := m.Mediate(bg, 0, q(2, 1, 1)); err != nil {
		t.Fatal(err)
	}

	if aliased[0] == first[0] && aliased[1] == first[1] {
		t.Fatal("retained candidates slice was not overwritten by the next mediation — snapshots stopped reusing the shard scratch (hot-path allocation regression)")
	}
	if aliased[0].ID != 30 || aliased[1].ID != 40 {
		t.Fatalf("retained slice now holds %v/%v, want the second mediation's candidates 30/40",
			aliased[0].ID, aliased[1].ID)
	}
	// The copy taken before the overwrite is of course intact — copying is
	// exactly what the contract demands of allocators.
	if first[0].ID != 10 || first[1].ID != 20 {
		t.Fatalf("copied snapshot set changed: %v/%v", first[0].ID, first[1].ID)
	}
}
