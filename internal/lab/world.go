package lab

import (
	"math"

	"sbqa/internal/model"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// behavior classifies a provider's honesty.
type behavior uint8

const (
	honest behavior = iota
	freeRider
	overClaimer
	colluder
)

// Adversary distortion constants: over-claimers advertise claimFactor×
// their true speed while actually running at overClaimSlowdown of an honest
// draw; colluders court every cartelStride-th consumer and refuse the rest.
const (
	utilizationHorizon = 30.0 // seconds of backlog that count as "fully busy"
	claimFactor        = 8.0
	overClaimSlowdown  = 0.25
	cartelStride       = 5
	reputationAlpha    = 0.3 // consumer EWMA step per observed completion
	loadPenaltyQueue   = 10.0
)

// mix64 is a splitmix64-style hash over three words, the lab's source of
// per-pair deterministic "static" preferences — storing a consumers ×
// providers preference matrix is impossible at millions of participants,
// so preferences are pure functions of (seed, who, whom).
func mix64(a, b, c uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b*0xBF58476D1CE4E5B9 ^ c*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// labProvider is one simulated provider: a FIFO execution lane with a
// class specialization, a behavior, and lifetime accounting. All methods
// run on the single simulation goroutine — no locking.
type labProvider struct {
	w        *world
	id       model.ProviderID
	class    int
	behavior behavior
	capacity float64 // true work units / second

	online    bool
	busyUntil float64
	pending   int     // queued + executing allocations
	allocs    int     // lifetime allocations won
	busyTime  float64 // accumulated executing seconds (utilization numerator)
}

// caps holds one shared single-class capability slice per class, so a
// million registrations do not allocate a million identical slices.
func (p *labProvider) Capabilities() []int { return p.w.caps[p.class] }

func (p *labProvider) ProviderID() model.ProviderID { return p.id }

func (p *labProvider) Snapshot(now float64) model.ProviderSnapshot {
	backlog := p.busyUntil - now
	if backlog < 0 {
		backlog = 0
	}
	util := backlog / utilizationHorizon
	if util > 1 {
		util = 1
	}
	snap := model.ProviderSnapshot{
		ID:          p.id,
		Utilization: util,
		QueueLen:    p.pending,
		Capacity:    p.capacity,
		PendingWork: backlog * p.capacity,
	}
	switch p.behavior {
	case freeRider:
		// Free-riders always look idle — they never execute anything, so
		// technically they are.
		snap.Utilization = 0
		snap.QueueLen = 0
		snap.PendingWork = 0
	case overClaimer:
		// Advertise a machine claimFactor× the true one and deny having any
		// backlog at all — the lie that makes self-reported-state allocators
		// take the bait, while satisfaction-led ones learn from deliveries.
		snap.Capacity = p.capacity * claimFactor / overClaimSlowdown
		snap.Utilization = 0
		snap.QueueLen = 0
		snap.PendingWork = 0
	}
	return snap
}

func (p *labProvider) CanPerform(model.Query) bool { return true }

func (p *labProvider) Intention(q model.Query) model.Intention {
	switch p.behavior {
	case freeRider:
		return 1 // grab everything, deliver nothing
	case colluder:
		if uint64(q.Consumer)%cartelStride == 0 {
			return 1 // the cartel's patrons get maximal service
		}
		return -0.9 // and outsiders are refused
	}
	// Honest providers: a stable per-consumer taste in [-0.2, 0.8), pushed
	// down by current load. Over-claimers keep the taste but deny the load,
	// consistent with their snapshot lie.
	pref := -0.2 + unit(mix64(p.w.seed^0xA5A5, uint64(p.id), uint64(q.Consumer)))
	if p.behavior == overClaimer {
		return model.Intention(pref)
	}
	load := float64(p.pending) / loadPenaltyQueue
	if load > 1 {
		load = 1
	}
	v := pref - 0.8*load
	if v < -1 {
		v = -1
	}
	return model.Intention(v)
}

func (p *labProvider) Bid(q model.Query) float64 {
	// Mariposa-style cost bid: time-to-serve on the advertised machine,
	// with a stable per-provider margin.
	cap := p.capacity
	if p.behavior == overClaimer {
		cap *= claimFactor / overClaimSlowdown
	}
	margin := 0.8 + 0.4*unit(mix64(p.w.seed^0x5A5A, uint64(p.id), 0))
	return q.Work / cap * margin
}

// labConsumer is one simulated consumer: a hash-derived static taste
// blended with an EWMA reputation learned from observed completions — the
// feedback loop that lets satisfaction-based allocation learn which
// providers actually deliver.
type labConsumer struct {
	w     *world
	id    model.ConsumerID
	class int
	rep   map[model.ProviderID]float64 // EWMA quality in [0, 1]
}

func (c *labConsumer) ConsumerID() model.ConsumerID { return c.id }

func (c *labConsumer) Intention(q model.Query, snap model.ProviderSnapshot) model.Intention {
	pref := -0.2 + unit(mix64(c.w.seed^0x3C3C, uint64(c.id), uint64(snap.ID)))
	v := pref
	if r, ok := c.rep[snap.ID]; ok {
		// Experience outweighs taste: map quality [0,1] → [-1,1].
		v = 0.3*pref + 0.7*(2*r-1)
	}
	if v > 1 {
		v = 1
	}
	if v < -1 {
		v = -1
	}
	return model.Intention(v)
}

// observe folds one execution outcome (response time, or failure) into the
// consumer's reputation for the provider.
func (c *labConsumer) observe(p model.ProviderID, quality float64) {
	if old, ok := c.rep[p]; ok {
		c.rep[p] = old*(1-reputationAlpha) + quality*reputationAlpha
		return
	}
	c.rep[p] = quality
}

// classState is one class's runtime: its arrival stream, cost draw,
// populations, and accumulators.
type classState struct {
	idx  int
	spec ClassSpec

	arrival workload.Arrivals
	cost    stats.Dist

	consumers []*labConsumer
	providers []*labProvider
	cursor    int // round-robin issue cursor over consumers

	issued, mediated, rejected, completed, failed int
	respTimes                                     []float64
	allocsByBehavior                              [4]int

	// QoS-station accumulators (Scenario.QoS runs only): sheds by reason
	// and the queue wait of every query the station actually served.
	shed         int
	shedByReason map[string]int
	queueWaits   []float64

	trajectory []ClassPoint
}

// quality maps an observed response time to [0, 1] against the class's
// delay target: 1 at instantaneous, 1/2 at the target, → 0 as rt → ∞.
func (cs *classState) quality(rt float64) float64 {
	return cs.spec.DelayTarget / (cs.spec.DelayTarget + rt)
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// strideOver returns a deterministic stride visiting at most limit of n
// items.
func strideOver(n, limit int) int {
	if n <= limit {
		return 1
	}
	return int(math.Ceil(float64(n) / float64(limit)))
}
