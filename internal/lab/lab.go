// Package lab is the deterministic workload laboratory: it drives the REAL
// mediation pipeline — live.Service over mediator, allocators, the
// satisfaction registry, and policy hot-swap — under the internal/sim
// virtual clock, at populations up to millions of simulated participants.
//
// The lab has three layers:
//
//  1. a composable workload generator (this file): seeded arrival processes
//     (Poisson, bursty MMPP, diurnal) from internal/workload, heavy-tailed
//     query cost, flash crowds, provider churn storms, and adversarial
//     populations (free-riders, over-claimers, colluders) promoted from the
//     seed code in internal/experiments and internal/boinc;
//  2. a scenario runner (run.go, world.go) executing a Scenario —
//     workload × policy.Spec × duration × seed — and emitting a typed
//     Report (report.go) with stable serialization;
//  3. a falsifiable-hypothesis harness (hypothesis.go) consumed by the
//     top-level hypotheses/ package and the cmd/sbqalab CLI.
//
// # Determinism contract
//
// Run is a pure function of its Scenario: the same scenario (same seed
// included) yields a byte-identical Report.Encode() on every execution.
// Everything stochastic draws from split streams of one stats.RNG rooted at
// Scenario.Seed; the engine runs single-shard (Concurrency = 1, proven
// byte-identical to a serialized mediator); participants are plain
// (goroutine-free) implementations; no wall-clock time is read anywhere.
// CI reruns every registered hypothesis and compares report hashes.
package lab

import (
	"fmt"
	"math"

	"sbqa/internal/policy"
	"sbqa/internal/qos"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// Scenario is one reproducible experiment: a workload pitted against an
// allocation policy for a simulated duration under a seed. Scenarios are
// plain data (JSON-able) so hypotheses can state them declaratively and
// reports can echo them.
type Scenario struct {
	// Name labels the scenario in reports and findings tables.
	Name string `json:"name"`

	// Seed roots every random stream of the run (workload draws, churn
	// picks, adversary assignment). The policy's sampling streams come
	// from Policy.Seed, so the same workload can be replayed against
	// differently-seeded policies and vice versa.
	Seed uint64 `json:"seed"`

	// Duration is the simulated horizon in seconds.
	Duration float64 `json:"duration"`

	// SampleEvery is the trajectory sampling interval in simulated
	// seconds. 0 means Duration/20.
	SampleEvery float64 `json:"sample_every,omitempty"`

	// Window is the satisfaction memory length k. 0 means 8 (small: at
	// million-participant scale the registry's per-participant buffers
	// dominate memory).
	Window int `json:"window,omitempty"`

	// Policy is the allocation policy under test (generation 0).
	Policy policy.Spec `json:"policy"`

	// Swaps hot-swap the policy mid-run through live.Service.Reconfigure
	// — the real generation-publication path, adopted at the next
	// mediation boundary.
	Swaps []PolicySwitch `json:"swaps,omitempty"`

	// QoS, when set, interposes the real class-aware admission scheduler
	// (internal/qos) between arrivals and mediation: queries queue at a
	// single mediation station, are picked weighted-fair / EDF, and can be
	// shed (deadline, queue_full, brownout) — every refusal is counted in
	// the report, never silent. Must be set together with MediationRate.
	QoS *qos.Spec `json:"qos,omitempty"`

	// MediationRate is the station's throughput in mediations per
	// simulated second — the capacity the overload is measured against.
	// 0 keeps the historical direct path: every arrival mediates
	// synchronously with no queue, byte-identical to pre-QoS reports.
	MediationRate float64 `json:"mediation_rate,omitempty"`

	// Workload describes the traffic and the population.
	Workload Workload `json:"workload"`
}

// PolicySwitch schedules a hot policy swap at a simulated time.
type PolicySwitch struct {
	At   float64     `json:"at"`
	Spec policy.Spec `json:"spec"`
}

// Workload declares the traffic mix and population for a scenario.
type Workload struct {
	// Classes partition the population: each class has its own consumers,
	// specialist providers, arrival process, and cost distribution.
	// Query class c is served only by class c's providers (plus nothing
	// else — the lab uses no universal providers), which keeps candidate
	// discovery class-local and lets worlds scale to millions of
	// participants.
	Classes []ClassSpec `json:"classes"`

	// Adversaries assigns misbehaving provider populations by fraction.
	Adversaries AdversarySpec `json:"adversaries,omitempty"`

	// Churn takes providers offline and back over the run.
	Churn ChurnSpec `json:"churn,omitempty"`

	// Flash superimposes flash crowds on class arrival streams.
	Flash []FlashSpec `json:"flash,omitempty"`

	// QueryTimeout is the simulated deadline after which an unanswered
	// allocation counts as failed (free-riders burn exactly this). 0
	// means 60.
	QueryTimeout float64 `json:"query_timeout,omitempty"`
}

// ClassSpec declares one query class: its consumers, its specialist
// providers, and its traffic.
type ClassSpec struct {
	// Name labels the class in reports ("checkout", "search", ...).
	Name string `json:"name"`

	// Consumers and Providers size the class population.
	Consumers int `json:"consumers"`
	Providers int `json:"providers"`

	// Arrival is the class's aggregate arrival process; issued queries
	// rotate round-robin over the class's consumers.
	Arrival ArrivalSpec `json:"arrival"`

	// Cost draws per-query service demand (work units).
	Cost CostSpec `json:"cost"`

	// Replication is model.Query.N. 0 means 1.
	Replication int `json:"replication,omitempty"`

	// DelayTarget is the response time (simulated seconds) consumers of
	// this class consider good; it anchors reputation quality. 0 means 10.
	DelayTarget float64 `json:"delay_target,omitempty"`

	// CapacityLo/Hi bound the uniform capacity draw (work units/second)
	// for the class's providers. Both 0 means [0.5, 1.5).
	CapacityLo float64 `json:"capacity_lo,omitempty"`
	CapacityHi float64 `json:"capacity_hi,omitempty"`

	// QoS names the service class (declared in Scenario.QoS.Classes) this
	// workload class's queries are submitted under. Empty means the spec's
	// default class. Only meaningful when Scenario.QoS is set.
	QoS string `json:"qos,omitempty"`

	// DeadlineS is the per-query relative deadline in simulated seconds
	// under a QoS scenario: the scheduler sheds queries it estimates (or
	// observes) to miss it. 0 means no deadline.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// AdversarySpec assigns misbehaving provider fractions, drawn
// deterministically per provider from the scenario seed. Fractions must sum
// to <= 1; the remainder is honest.
//
// These promote the seed behaviors from internal/experiments (malicious
// volunteers) and internal/boinc into first-class, policy-independent
// generators:
//
//   - free-riders accept everything (maximal intention, idle-looking
//     snapshots) and never execute — every allocation they win times out;
//   - over-claimers advertise ~8× their true capacity (and correspondingly
//     understated utilization), the bait for capacity-led allocators, but
//     execute at a quarter of an honest provider's speed;
//   - colluders run a cartel: maximal intention for queries from cartel
//     consumers (every 5th consumer), strong refusal for everyone else —
//     capturing capacity for the ring while starving outsiders.
type AdversarySpec struct {
	FreeRiders   float64 `json:"free_riders,omitempty"`
	OverClaimers float64 `json:"over_claimers,omitempty"`
	Colluders    float64 `json:"colluders,omitempty"`
}

// ChurnSpec drives provider availability.
type ChurnSpec struct {
	// LeaveRate is the background rate (departures/second) at which
	// random online providers go offline.
	LeaveRate float64 `json:"leave_rate,omitempty"`

	// RejoinAfter is the offline dwell before a departed provider
	// re-registers. 0 means 30.
	RejoinAfter float64 `json:"rejoin_after,omitempty"`

	// Storm, when set, takes Fraction of all providers offline at At and
	// brings them back at At+Duration — the churn-storm shape.
	Storm *StormSpec `json:"storm,omitempty"`
}

// StormSpec is a mass-departure event.
type StormSpec struct {
	At       float64 `json:"at"`
	Duration float64 `json:"duration"`
	Fraction float64 `json:"fraction"`
}

// FlashSpec multiplies a class's arrival rate by Factor inside
// [At, At+Duration) — a flash crowd. Empty Class applies to every class.
type FlashSpec struct {
	Class    string  `json:"class,omitempty"`
	At       float64 `json:"at"`
	Duration float64 `json:"duration"`
	Factor   float64 `json:"factor"`
}

// ArrivalSpec declares an arrival process as data; Build turns it into a
// workload.Arrivals. Kinds: "poisson" (Rate), "mmpp2" (Rate/DwellA +
// RateB/DwellB), "diurnal" (Rate as mean, Period, Amplitude).
type ArrivalSpec struct {
	Kind      string  `json:"kind"`
	Rate      float64 `json:"rate"`
	RateB     float64 `json:"rate_b,omitempty"`
	DwellA    float64 `json:"dwell_a,omitempty"`
	DwellB    float64 `json:"dwell_b,omitempty"`
	Period    float64 `json:"period,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
}

// Build materializes the declared process. Each call returns a fresh
// instance (MMPP2 carries phase state), so every class gets its own.
func (a ArrivalSpec) Build() (workload.Arrivals, error) {
	switch a.Kind {
	case "", "poisson":
		if a.Rate <= 0 {
			return nil, fmt.Errorf("lab: poisson arrival needs rate > 0, got %g", a.Rate)
		}
		return workload.Poisson{Rate: a.Rate}, nil
	case "mmpp2":
		return workload.NewMMPP2(a.Rate, a.DwellA, a.RateB, a.DwellB)
	case "diurnal":
		if a.Rate <= 0 || a.Period <= 0 {
			return nil, fmt.Errorf("lab: diurnal arrival needs rate and period > 0, got %g/%g", a.Rate, a.Period)
		}
		return workload.Diurnal{Mean: a.Rate, Period: a.Period, Amplitude: a.Amplitude}, nil
	default:
		return nil, fmt.Errorf("lab: unknown arrival kind %q", a.Kind)
	}
}

// CostSpec declares a per-query service-demand distribution. Kinds:
// "exp" (Mean), "pareto" (Xm, Alpha — the heavy tail), "const" (Mean).
type CostSpec struct {
	Kind  string  `json:"kind"`
	Mean  float64 `json:"mean,omitempty"`
	Xm    float64 `json:"xm,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
}

// Build materializes the declared distribution.
func (c CostSpec) Build() (stats.Dist, error) {
	switch c.Kind {
	case "", "exp":
		mean := c.Mean
		if mean <= 0 {
			mean = 1
		}
		return stats.Exponential{Rate: 1 / mean}, nil
	case "pareto":
		if c.Xm <= 0 || c.Alpha <= 1 {
			return nil, fmt.Errorf("lab: pareto cost needs xm > 0 and alpha > 1 (finite mean), got xm=%g alpha=%g", c.Xm, c.Alpha)
		}
		return stats.Pareto{Xm: c.Xm, Alpha: c.Alpha}, nil
	case "const":
		if c.Mean <= 0 {
			return nil, fmt.Errorf("lab: const cost needs mean > 0, got %g", c.Mean)
		}
		return stats.Constant{V: c.Mean}, nil
	default:
		return nil, fmt.Errorf("lab: unknown cost kind %q", c.Kind)
	}
}

// normalized fills defaults and validates; it returns a copy.
func (sc Scenario) normalized() (Scenario, error) {
	if sc.Name == "" {
		return sc, fmt.Errorf("lab: scenario needs a name")
	}
	if sc.Duration <= 0 || math.IsNaN(sc.Duration) {
		return sc, fmt.Errorf("lab: scenario %q needs duration > 0, got %g", sc.Name, sc.Duration)
	}
	if sc.SampleEvery <= 0 {
		sc.SampleEvery = sc.Duration / 20
	}
	if sc.Window <= 0 {
		sc.Window = 8
	}
	if len(sc.Workload.Classes) == 0 {
		return sc, fmt.Errorf("lab: scenario %q needs at least one class", sc.Name)
	}
	if sc.Workload.QueryTimeout <= 0 {
		sc.Workload.QueryTimeout = 60
	}
	adv := sc.Workload.Adversaries
	if adv.FreeRiders < 0 || adv.OverClaimers < 0 || adv.Colluders < 0 ||
		adv.FreeRiders+adv.OverClaimers+adv.Colluders > 1 {
		return sc, fmt.Errorf("lab: scenario %q adversary fractions invalid: %+v", sc.Name, adv)
	}
	if sc.Workload.Churn.RejoinAfter <= 0 {
		sc.Workload.Churn.RejoinAfter = 30
	}
	if st := sc.Workload.Churn.Storm; st != nil && (st.Fraction <= 0 || st.Fraction > 1 || st.Duration <= 0) {
		return sc, fmt.Errorf("lab: scenario %q storm invalid: %+v", sc.Name, *st)
	}
	if (sc.QoS != nil) != (sc.MediationRate > 0) {
		return sc, fmt.Errorf("lab: scenario %q: qos and mediation_rate must be set together", sc.Name)
	}
	if sc.QoS != nil {
		if err := sc.QoS.Validate(); err != nil {
			return sc, fmt.Errorf("lab: scenario %q: %w", sc.Name, err)
		}
		norm := sc.QoS.Normalized()
		sc.QoS = &norm
	}
	names := map[string]bool{}
	qosNames := map[string]bool{}
	if sc.QoS != nil {
		for _, c := range sc.QoS.Classes {
			qosNames[c.Name] = true
		}
	}
	for i := range sc.Workload.Classes {
		cl := &sc.Workload.Classes[i]
		if cl.Name == "" {
			cl.Name = fmt.Sprintf("class-%d", i)
		}
		if names[cl.Name] {
			return sc, fmt.Errorf("lab: scenario %q has duplicate class %q", sc.Name, cl.Name)
		}
		names[cl.Name] = true
		if cl.Consumers < 1 || cl.Providers < 1 {
			return sc, fmt.Errorf("lab: class %q needs >= 1 consumer and provider", cl.Name)
		}
		if cl.Replication < 1 {
			cl.Replication = 1
		}
		if cl.DelayTarget <= 0 {
			cl.DelayTarget = 10
		}
		if cl.CapacityLo == 0 && cl.CapacityHi == 0 {
			cl.CapacityLo, cl.CapacityHi = 0.5, 1.5
		}
		if cl.CapacityLo <= 0 || cl.CapacityHi < cl.CapacityLo {
			return sc, fmt.Errorf("lab: class %q capacity bounds invalid: [%g, %g)", cl.Name, cl.CapacityLo, cl.CapacityHi)
		}
		if _, err := cl.Arrival.Build(); err != nil {
			return sc, fmt.Errorf("class %q: %w", cl.Name, err)
		}
		if _, err := cl.Cost.Build(); err != nil {
			return sc, fmt.Errorf("class %q: %w", cl.Name, err)
		}
		if (cl.QoS != "" || cl.DeadlineS != 0) && sc.QoS == nil {
			return sc, fmt.Errorf("lab: class %q sets qos/deadline_s but the scenario has no qos block", cl.Name)
		}
		if cl.QoS != "" && len(qosNames) > 0 && !qosNames[cl.QoS] {
			return sc, fmt.Errorf("lab: class %q references undeclared qos class %q", cl.Name, cl.QoS)
		}
		if cl.DeadlineS < 0 {
			return sc, fmt.Errorf("lab: class %q deadline_s cannot be negative", cl.Name)
		}
	}
	for _, f := range sc.Workload.Flash {
		if f.Factor <= 0 || f.Duration <= 0 {
			return sc, fmt.Errorf("lab: scenario %q flash invalid: %+v", sc.Name, f)
		}
		if f.Class != "" && !names[f.Class] {
			return sc, fmt.Errorf("lab: flash references unknown class %q", f.Class)
		}
	}
	sc.Policy = sc.Policy.Normalized()
	if err := sc.Policy.Validate(); err != nil {
		return sc, fmt.Errorf("lab: scenario %q policy: %w", sc.Name, err)
	}
	for i, sw := range sc.Swaps {
		sc.Swaps[i].Spec = sw.Spec.Normalized()
		if err := sc.Swaps[i].Spec.Validate(); err != nil {
			return sc, fmt.Errorf("lab: scenario %q swap %d: %w", sc.Name, i, err)
		}
	}
	return sc, nil
}

// Participants returns the scenario's total population size.
func (sc Scenario) Participants() int {
	n := 0
	for _, cl := range sc.Workload.Classes {
		n += cl.Consumers + cl.Providers
	}
	return n
}
