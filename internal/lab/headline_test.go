package lab

import (
	"testing"
	"time"

	"sbqa/internal/policy"
)

// HeadlineScenario is the acceptance-scale world: ≥ 1M simulated
// participants driving the real engine under the virtual clock. Class
// partitioning is what makes this tractable — candidate discovery stays
// class-local (≈250 providers), so mediation cost is independent of the
// fleet size. At Short scale the same shape shrinks ~100×.
func HeadlineScenario(scale Scale) Scenario {
	classes, perClassProviders, perClassConsumers := 4000, 250, 13
	duration, rate := 40.0, 0.6
	if scale == Short {
		classes = 40
		duration = 20
		rate = 3
	}
	specs := make([]ClassSpec, classes)
	for i := range specs {
		specs[i] = ClassSpec{
			Consumers: perClassConsumers,
			Providers: perClassProviders,
			Arrival:   ArrivalSpec{Kind: "poisson", Rate: rate},
			Cost:      CostSpec{Kind: "exp", Mean: 2},
		}
	}
	return Scenario{
		Name:     "headline-1m-" + scale.String(),
		Seed:     1,
		Duration: duration,
		Window:   8,
		Policy:   policy.Spec{Kind: policy.SbQA, K: 8, Kn: 3, Seed: 1},
		Workload: Workload{
			Classes:      specs,
			Adversaries:  AdversarySpec{FreeRiders: 0.05, OverClaimers: 0.05},
			QueryTimeout: 30,
		},
	}
}

// TestHeadlineMillionParticipants is the scale acceptance: the full
// headline world (≥ 1M participants) must complete in bounded wall time
// with a healthy mediation stream. -short runs the same shape 100× smaller.
func TestHeadlineMillionParticipants(t *testing.T) {
	scale := Full
	if testing.Short() {
		scale = Short
	}
	sc := HeadlineScenario(scale)
	start := time.Now()
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("scale=%v participants=%d issued=%d mediated=%d wall=%v (%.0f simulated mediations/sec of wall time)",
		scale, r.Participants, r.Issued, r.Mediated, elapsed.Round(time.Millisecond),
		float64(r.Mediated)/elapsed.Seconds())

	wantParticipants := 1_000_000
	if scale == Short {
		wantParticipants = 10_000
	}
	if r.Participants < wantParticipants {
		t.Fatalf("participants = %d, want >= %d", r.Participants, wantParticipants)
	}
	if r.Mediated < r.Issued*9/10 {
		t.Fatalf("mediated %d of %d issued — the engine should keep up with the stream", r.Mediated, r.Issued)
	}
	if r.Issued < 1000 {
		t.Fatalf("issued %d, want a real stream", r.Issued)
	}
	// Bounded wall time: generous ceiling so slow CI hardware passes, but
	// a quadratic regression (e.g. candidate discovery going fleet-global)
	// cannot hide.
	limit := 5 * time.Minute
	if scale == Short {
		limit = 30 * time.Second
	}
	if elapsed > limit {
		t.Fatalf("wall time %v exceeds %v", elapsed, limit)
	}
}
