package lab

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sbqa/internal/live"
	"sbqa/internal/model"
	"sbqa/internal/qos"
	"sbqa/internal/sim"
	"sbqa/internal/stats"
	"sbqa/internal/workload"
)

// world wires a normalized scenario to a real live.Service under the sim
// virtual clock. Everything runs on the engine's single event loop.
type world struct {
	sc   Scenario
	seed uint64

	eng *sim.Engine
	svc *live.Service

	// Split RNG streams, one per stochastic concern, so adding draws to
	// one cannot shift another (the same discipline workload.Generate
	// uses).
	arrRNG   *stats.RNG
	costRNG  *stats.RNG
	churnRNG *stats.RNG

	caps      [][]int // shared single-class capability slices
	classes   []*classState
	providers []*labProvider // all, in registration order
	byID      map[model.ProviderID]*labProvider

	timeout float64
	inFlat  int // executions still pending at horizon close

	// Mediation station (Scenario.QoS runs only): the real class-aware
	// scheduler fed by issue(), drained at MediationRate by a single
	// virtual-clock server. qosIdx maps each workload class to its service
	// class's table index, resolved once at build.
	sched       *qos.Scheduler[stationItem]
	qosIdx      []int
	serviceTime float64 // 1 / MediationRate
	stationBusy bool

	report *Report
}

// stationItem is one queued submission awaiting the mediation station.
type stationItem struct {
	cs *classState
	c  *labConsumer
	q  model.Query
}

// stationDepth is the scheduler's blocking bound in the lab. The sim loop
// is single-threaded, so a blocking Push would deadlock it — the bound is
// set beyond any plausible backlog, making unbounded classes truly FIFO
// while bounded ones shed exactly as configured.
const stationDepth = 1 << 20

// Run executes the scenario and returns its report. It is deterministic:
// the same scenario yields a byte-identical Report.Encode().
func Run(sc Scenario) (*Report, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	w, err := build(sc)
	if err != nil {
		return nil, err
	}
	w.start()
	w.eng.Run(sc.Duration)
	return w.finish()
}

func build(sc Scenario) (*world, error) {
	eng := sim.NewEngine()
	spec := sc.Policy
	svc, err := live.NewServiceWithConfig(live.Config{
		Window:      sc.Window,
		Concurrency: 1, // proven byte-identical to a serialized mediator
		Policy:      &spec,
		NowFn:       eng.Now,
	})
	if err != nil {
		return nil, fmt.Errorf("lab: building engine: %w", err)
	}
	root := stats.NewRNG(sc.Seed)
	w := &world{
		sc:       sc,
		seed:     sc.Seed,
		eng:      eng,
		svc:      svc,
		arrRNG:   root.Split(),
		costRNG:  root.Split(),
		churnRNG: root.Split(),
		byID:     make(map[model.ProviderID]*labProvider),
		timeout:  sc.Workload.QueryTimeout,
		report:   &Report{Scenario: sc},
	}
	w.caps = make([][]int, len(sc.Workload.Classes))
	for i := range w.caps {
		w.caps[i] = []int{i}
	}

	adv := sc.Workload.Adversaries
	capRNG := root.Split()
	var nextPID model.ProviderID
	var nextCID model.ConsumerID
	for ci, spec := range sc.Workload.Classes {
		arr, err := spec.Arrival.Build()
		if err != nil {
			return nil, err
		}
		// Flash crowds targeting this class (or all classes) stack
		// multiplicatively on the base process.
		for _, f := range sc.Workload.Flash {
			if f.Class == "" || f.Class == spec.Name {
				arr = workload.Modulated{Base: arr, Factor: workload.FlashFactor(f.At, f.Duration, f.Factor)}
			}
		}
		cost, err := spec.Cost.Build()
		if err != nil {
			return nil, err
		}
		cs := &classState{idx: ci, spec: spec, arrival: arr, cost: cost}

		for i := 0; i < spec.Consumers; i++ {
			c := &labConsumer{w: w, id: nextCID, class: ci, rep: make(map[model.ProviderID]float64)}
			nextCID++
			cs.consumers = append(cs.consumers, c)
			svc.RegisterConsumer(c)
		}
		for i := 0; i < spec.Providers; i++ {
			p := &labProvider{
				w:        w,
				id:       nextPID,
				class:    ci,
				capacity: capRNG.Range(spec.CapacityLo, spec.CapacityHi),
				online:   true,
			}
			nextPID++
			// Behavior assignment: a per-provider hash draw against the
			// cumulative adversary fractions, independent of class sizes.
			u := unit(mix64(sc.Seed^0x7E7E, uint64(p.id), 0))
			switch {
			case u < adv.FreeRiders:
				p.behavior = freeRider
			case u < adv.FreeRiders+adv.OverClaimers:
				p.behavior = overClaimer
				p.capacity *= overClaimSlowdown // truly slow, advertises fast
			case u < adv.FreeRiders+adv.OverClaimers+adv.Colluders:
				p.behavior = colluder
			}
			cs.providers = append(cs.providers, p)
			w.providers = append(w.providers, p)
			w.byID[p.id] = p
			svc.RegisterProvider(p)
		}
		w.classes = append(w.classes, cs)
	}
	if sc.QoS != nil {
		w.sched = qos.NewScheduler[stationItem](*sc.QoS, stationDepth, eng.Now)
		w.serviceTime = 1 / sc.MediationRate
		w.qosIdx = make([]int, len(w.classes))
		for i, cs := range w.classes {
			w.qosIdx[i], _ = w.sched.ClassIndex(cs.spec.QoS)
		}
	}
	return w, nil
}

// start books the initial event population: arrivals per class, churn,
// storms, policy swaps, and trajectory sampling.
func (w *world) start() {
	for _, cs := range w.classes {
		w.scheduleArrival(cs)
	}
	ch := w.sc.Workload.Churn
	if ch.LeaveRate > 0 {
		w.scheduleChurn()
	}
	if st := ch.Storm; st != nil {
		w.eng.ScheduleAt(st.At, func() { w.storm(st, true) })
		w.eng.ScheduleAt(st.At+st.Duration, func() { w.storm(st, false) })
	}
	for _, sw := range w.sc.Swaps {
		sw := sw
		w.eng.ScheduleAt(sw.At, func() {
			if err := w.svc.Reconfigure(context.Background(), sw.Spec); err == nil {
				w.report.Swaps = append(w.report.Swaps, AppliedSwap{
					At:         w.eng.Now(),
					Kind:       sw.Spec.Kind,
					Generation: w.svc.PolicyGeneration(),
				})
			}
		})
	}
	w.scheduleSample()
}

// scheduleArrival books the class's next query issue from its arrival
// process; issued queries rotate round-robin over the class's consumers.
func (w *world) scheduleArrival(cs *classState) {
	gap := cs.arrival.Next(w.eng.Now(), w.arrRNG)
	if math.IsInf(gap, 1) {
		return
	}
	w.eng.Schedule(gap, func() {
		w.issue(cs)
		w.scheduleArrival(cs)
	})
}

func (w *world) issue(cs *classState) {
	c := cs.consumers[cs.cursor%len(cs.consumers)]
	cs.cursor++
	work := cs.cost.Sample(w.costRNG)
	if work <= 0 {
		work = cs.cost.Mean()
	}
	q := model.Query{
		Consumer: c.id,
		Class:    cs.idx,
		N:        cs.spec.Replication,
		Work:     work,
	}
	cs.issued++
	w.report.Issued++
	if w.sched == nil {
		w.mediate(cs, c, q)
		return
	}
	var deadline float64
	if cs.spec.DeadlineS > 0 {
		deadline = w.eng.Now() + cs.spec.DeadlineS
	}
	info, err := w.sched.Push(context.Background(), w.qosIdx[cs.idx], deadline, stationItem{cs: cs, c: c, q: q})
	if err != nil {
		// Closed scheduler — cannot happen inside the horizon; count it as
		// a rejection rather than lose the query from the ledger.
		cs.rejected++
		w.report.Rejected++
		return
	}
	if info != nil {
		w.recordShed(cs, info.Reason)
		return
	}
	w.drain()
}

// mediate runs one query through the real mediation pipeline and schedules
// the selected providers' executions — the historical direct path, and the
// station's service body.
func (w *world) mediate(cs *classState, c *labConsumer, q model.Query) {
	a, err := w.svc.Mediate(context.Background(), q)
	if err != nil {
		cs.rejected++
		w.report.Rejected++
		return
	}
	cs.mediated++
	w.report.Mediated++
	for _, pid := range a.Selected {
		if p, ok := w.byID[pid]; ok {
			w.execute(cs, c, p, a.Query)
		}
	}
}

// drain advances the mediation station: while idle, pick the next query per
// the scheduling discipline, serve it for serviceTime, mediate at the end
// of the service window, repeat. Expired-deadline pops are failed on the
// spot (counted, never mediated) and the loop continues to the next pick.
func (w *world) drain() {
	if w.stationBusy {
		return
	}
	for {
		it, res, ok := w.sched.TryPop()
		if !ok {
			return
		}
		if res.Shed {
			w.recordShed(it.cs, res.Info.Reason)
			continue
		}
		it.cs.queueWaits = append(it.cs.queueWaits, res.Wait)
		w.stationBusy = true
		w.eng.Schedule(w.serviceTime, func() {
			w.mediate(it.cs, it.c, it.q)
			w.sched.ObserveService(w.serviceTime)
			w.stationBusy = false
			w.drain()
		})
		return
	}
}

// recordShed books one refused admission into the class and report ledgers.
func (w *world) recordShed(cs *classState, reason string) {
	cs.shed++
	if cs.shedByReason == nil {
		cs.shedByReason = make(map[string]int)
	}
	cs.shedByReason[reason]++
	w.report.Shed++
}

// execute simulates one selected provider performing the query: honest
// providers run it FIFO at their true capacity; free-riders sit on it until
// the workload's timeout. Exactly one completion event is scheduled either
// way, keeping the event count linear in allocations.
func (w *world) execute(cs *classState, c *labConsumer, p *labProvider, q model.Query) {
	p.allocs++
	cs.allocsByBehavior[p.behavior]++
	p.pending++
	w.inFlat++
	now := w.eng.Now()

	if p.behavior == freeRider {
		w.eng.Schedule(w.timeout, func() {
			p.pending--
			w.inFlat--
			cs.failed++
			w.report.Failed++
			c.observe(p.id, 0)
		})
		return
	}

	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	service := q.Work / p.capacity
	done := start + service
	p.busyUntil = done
	p.busyTime += service
	w.eng.ScheduleAt(done, func() {
		p.pending--
		w.inFlat--
		rt := w.eng.Now() - q.IssuedAt
		cs.completed++
		w.report.Completed++
		cs.respTimes = append(cs.respTimes, rt)
		c.observe(p.id, cs.quality(rt))
	})
}

// scheduleChurn books the next background departure: a random online
// provider leaves and rejoins after the configured dwell.
func (w *world) scheduleChurn() {
	gap := workload.Poisson{Rate: w.sc.Workload.Churn.LeaveRate}.Next(w.eng.Now(), w.churnRNG)
	w.eng.Schedule(gap, func() {
		// Deterministic victim pick; offline picks are simply skipped
		// (the draw still advances the stream identically).
		p := w.providers[w.churnRNG.Intn(len(w.providers))]
		if p.online {
			w.depart(p)
			w.eng.Schedule(w.sc.Workload.Churn.RejoinAfter, func() { w.rejoin(p) })
		}
		w.scheduleChurn()
	})
}

// storm toggles a deterministic hash-selected fraction of the fleet.
func (w *world) storm(st *StormSpec, leave bool) {
	for _, p := range w.providers {
		if unit(mix64(w.seed^0xD00D, uint64(p.id), 1)) >= st.Fraction {
			continue
		}
		if leave {
			if p.online {
				w.depart(p)
			}
		} else if !p.online {
			w.rejoin(p)
		}
	}
}

func (w *world) depart(p *labProvider) {
	p.online = false
	w.svc.UnregisterWorker(p.id)
}

func (w *world) rejoin(p *labProvider) {
	if p.online {
		return
	}
	p.online = true
	w.svc.RegisterProvider(p)
}

// scheduleSample books the recurring trajectory sample.
func (w *world) scheduleSample() {
	w.eng.Schedule(w.sc.SampleEvery, func() {
		w.sample()
		if w.eng.Now() < w.sc.Duration {
			w.scheduleSample()
		}
	})
}

// sample records one global trajectory point (and per-class points when the
// scenario is small enough to afford them).
func (w *world) sample() {
	t := w.eng.Now()
	perClass := len(w.classes) <= 32

	var dsSum, daSum float64
	var consumers int
	for _, cs := range w.classes {
		var cds, cda float64
		for _, c := range cs.consumers {
			cds += w.svc.ConsumerSatisfaction(c.id)
			cda += w.svc.Registry().ConsumerAdequation(c.id)
		}
		dsSum += cds
		daSum += cda
		consumers += len(cs.consumers)
		if perClass {
			n := float64(len(cs.consumers))
			cs.trajectory = append(cs.trajectory, ClassPoint{T: t, DS: cds / n, DA: cda / n})
		}
	}

	stride := strideOver(len(w.providers), 4096)
	var pds, queueSum float64
	var sampled, queueMax, online int
	for i := 0; i < len(w.providers); i += stride {
		p := w.providers[i]
		pds += w.svc.ProviderSatisfaction(p.id)
		queueSum += float64(p.pending)
		if p.pending > queueMax {
			queueMax = p.pending
		}
		sampled++
	}
	for _, p := range w.providers {
		if p.online {
			online++
		}
	}

	w.report.Trajectory = append(w.report.Trajectory, TrajectoryPoint{
		T:          t,
		ConsumerDS: dsSum / float64(consumers),
		ConsumerDA: daSum / float64(consumers),
		ProviderDS: pds / float64(sampled),
		QueueMean:  queueSum / float64(sampled),
		QueueMax:   queueMax,
		Online:     online,
		Issued:     w.report.Issued,
	})
}

// finish assembles the report after the horizon closes.
func (w *world) finish() (*Report, error) {
	r := w.report
	r.Providers = len(w.providers)
	for _, cs := range w.classes {
		r.Consumers += len(cs.consumers)
	}
	r.Participants = r.Providers + r.Consumers
	r.InFlight = w.inFlat

	var allRT []float64
	var totalAllocs [4]int
	var dsSum, daSum float64
	for _, cs := range w.classes {
		cr := ClassReport{
			Name:      cs.spec.Name,
			Issued:    cs.issued,
			Mediated:  cs.mediated,
			Rejected:  cs.rejected,
			Completed: cs.completed,
			Failed:    cs.failed,
			Shed:      cs.shed,
		}
		if len(cs.shedByReason) > 0 {
			cr.ShedByReason = cs.shedByReason
			if r.ShedByReason == nil {
				r.ShedByReason = make(map[string]int)
			}
			for reason, n := range cs.shedByReason {
				r.ShedByReason[reason] += n
			}
		}
		if len(cs.queueWaits) > 0 {
			sort.Float64s(cs.queueWaits)
			var sum float64
			for _, qw := range cs.queueWaits {
				sum += qw
			}
			cr.QueueWaitMean = sum / float64(len(cs.queueWaits))
			cr.QueueWaitP99 = percentile(cs.queueWaits, 0.99)
		}
		sort.Float64s(cs.respTimes)
		if len(cs.respTimes) > 0 {
			var sum float64
			for _, rt := range cs.respTimes {
				sum += rt
			}
			cr.MeanResponse = sum / float64(len(cs.respTimes))
			cr.P99Response = percentile(cs.respTimes, 0.99)
		}
		var cds, cda float64
		for _, c := range cs.consumers {
			cds += w.svc.ConsumerSatisfaction(c.id)
			cda += w.svc.Registry().ConsumerAdequation(c.id)
		}
		cr.ConsumerDS = cds / float64(len(cs.consumers))
		cr.ConsumerDA = cda / float64(len(cs.consumers))
		dsSum += cds
		daSum += cda

		var classAllocs int
		for _, n := range cs.allocsByBehavior {
			classAllocs += n
		}
		cr.Shares = shares(cs.allocsByBehavior, classAllocs)
		for b, n := range cs.allocsByBehavior {
			totalAllocs[b] += n
		}
		for _, p := range cs.providers {
			if p.online && p.allocs == 0 {
				cr.Starved++
			}
		}
		cr.Trajectory = cs.trajectory
		r.Starved += cr.Starved
		r.Classes = append(r.Classes, cr)
		allRT = append(allRT, cs.respTimes...)
	}
	r.ConsumerSatisfaction = dsSum / float64(r.Consumers)
	r.ConsumerAdequation = daSum / float64(r.Consumers)
	r.StarvedFrac = float64(r.Starved) / float64(r.Providers)

	var total int
	for _, n := range totalAllocs {
		total += n
	}
	r.Shares = shares(totalAllocs, total)

	sort.Float64s(allRT)
	if len(allRT) > 0 {
		var sum float64
		for _, rt := range allRT {
			sum += rt
		}
		r.MeanResponse = sum / float64(len(allRT))
		r.P99Response = percentile(allRT, 0.99)
	}

	// Provider-side end state: mean δs over a stride (full fleet when
	// small) and the utilization Gini over the whole fleet.
	stride := strideOver(len(w.providers), 4096)
	var pds float64
	var sampled int
	for i := 0; i < len(w.providers); i += stride {
		pds += w.svc.ProviderSatisfaction(w.providers[i].id)
		sampled++
	}
	r.ProviderSatisfaction = pds / float64(sampled)

	utils := make([]float64, len(w.providers))
	for i, p := range w.providers {
		utils[i] = p.busyTime / w.sc.Duration
	}
	r.GiniUtilization = stats.Gini(utils)

	if w.sched != nil {
		// Queued closes the conservation ledger: every issued query is
		// mediated, rejected, shed, still queued at the horizon, or in
		// service at the station when it closed.
		st := w.sched.Stats()
		r.Queued = st.Depth
		if w.stationBusy {
			r.Queued++ // the in-service query left the queue but never mediated
		}
		var allWaits []float64
		for _, cs := range w.classes {
			allWaits = append(allWaits, cs.queueWaits...) // already sorted per class
		}
		if len(allWaits) > 0 {
			sort.Float64s(allWaits)
			var sum float64
			for _, qw := range allWaits {
				sum += qw
			}
			r.QueueWaitMean = sum / float64(len(allWaits))
			r.QueueWaitP99 = percentile(allWaits, 0.99)
		}
	}
	return r, nil
}

// shares converts behavior counts into fractions.
func shares(counts [4]int, total int) BehaviorShares {
	if total == 0 {
		return BehaviorShares{}
	}
	f := func(b behavior) float64 { return float64(counts[b]) / float64(total) }
	return BehaviorShares{
		Honest:      f(honest),
		FreeRider:   f(freeRider),
		OverClaimer: f(overClaimer),
		Colluder:    f(colluder),
	}
}
