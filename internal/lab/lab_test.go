package lab

import (
	"bytes"
	"math"
	"testing"

	"sbqa/internal/policy"
)

func sbqaPolicy(seed uint64) policy.Spec {
	return policy.Spec{Kind: policy.SbQA, K: 8, Kn: 3, Seed: seed}
}

// smallScenario is the shared small-world shape: two classes, mixed
// arrival processes, light adversaries.
func smallScenario(name string, seed uint64, spec policy.Spec) Scenario {
	return Scenario{
		Name:     name,
		Seed:     seed,
		Duration: 120,
		Policy:   spec,
		Workload: Workload{
			QueryTimeout: 30,
			Classes: []ClassSpec{
				{
					Name: "steady", Consumers: 6, Providers: 40,
					Arrival: ArrivalSpec{Kind: "poisson", Rate: 4},
					Cost:    CostSpec{Kind: "exp", Mean: 2},
				},
				{
					Name: "bursty", Consumers: 4, Providers: 30,
					Arrival:     ArrivalSpec{Kind: "mmpp2", Rate: 1, DwellA: 20, RateB: 10, DwellB: 5},
					Cost:        CostSpec{Kind: "pareto", Xm: 0.5, Alpha: 2.2},
					Replication: 2,
				},
			},
			Adversaries: AdversarySpec{FreeRiders: 0.1, OverClaimers: 0.1},
		},
	}
}

func TestRunSmoke(t *testing.T) {
	r, err := Run(smallScenario("smoke", 42, sbqaPolicy(42)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Participants != 80 || r.Providers != 70 || r.Consumers != 10 {
		t.Fatalf("population %d/%d/%d, want 80/70/10", r.Participants, r.Providers, r.Consumers)
	}
	if r.Issued < 100 {
		t.Fatalf("issued %d, want a real query stream", r.Issued)
	}
	if r.Mediated == 0 || r.Completed == 0 {
		t.Fatalf("mediated %d / completed %d, want > 0", r.Mediated, r.Completed)
	}
	if r.Issued != r.Mediated+r.Rejected {
		t.Fatalf("issued %d != mediated %d + rejected %d", r.Issued, r.Mediated, r.Rejected)
	}
	if r.Failed == 0 {
		t.Fatal("free-riders present but no failed executions")
	}
	if len(r.Trajectory) == 0 {
		t.Fatal("no trajectory samples")
	}
	if len(r.Classes) != 2 || len(r.Classes[0].Trajectory) == 0 {
		t.Fatalf("per-class trajectories missing: %d classes", len(r.Classes))
	}
	if r.MeanResponse <= 0 || r.P99Response < r.MeanResponse {
		t.Fatalf("response stats incoherent: mean %v p99 %v", r.MeanResponse, r.P99Response)
	}
	sum := r.Shares.Honest + r.Shares.FreeRider + r.Shares.OverClaimer + r.Shares.Colluder
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("behavior shares sum to %v", sum)
	}
	if r.GiniUtilization <= 0 || r.GiniUtilization >= 1 {
		t.Fatalf("gini %v outside (0, 1)", r.GiniUtilization)
	}
	if r.ConsumerSatisfaction <= 0 || r.ConsumerSatisfaction > 1 {
		t.Fatalf("mean consumer δs %v outside (0, 1]", r.ConsumerSatisfaction)
	}
}

// TestReportDeterminism is the lab's core promise: same scenario (same
// seed) ⇒ byte-identical report.
func TestReportDeterminism(t *testing.T) {
	sc := smallScenario("determinism", 7, sbqaPolicy(7))
	sc.Workload.Churn = ChurnSpec{LeaveRate: 0.2, RejoinAfter: 10}
	sc.Workload.Flash = []FlashSpec{{Class: "steady", At: 40, Duration: 10, Factor: 6}}
	sc.Swaps = []PolicySwitch{{At: 60, Spec: policy.Spec{Kind: policy.Capacity}}}

	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same scenario produced different reports (%d vs %d bytes)", len(b1), len(b2))
	}
	h1, _ := r1.Hash()
	h2, _ := r2.Hash()
	if h1 != h2 || h1 == "" {
		t.Fatalf("hashes differ: %s vs %s", h1, h2)
	}

	// A different seed must actually change the bytes (the hash is not
	// vacuously stable).
	sc2 := sc
	sc2.Seed = 8
	r3, err := Run(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if h3, _ := r3.Hash(); h3 == h1 {
		t.Fatal("different seed produced identical report")
	}
}

func TestPolicySwapRecorded(t *testing.T) {
	sc := smallScenario("swap", 3, sbqaPolicy(3))
	sc.Swaps = []PolicySwitch{{At: 50, Spec: policy.Spec{Kind: policy.Random, Seed: 3}}}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Swaps) != 1 || r.Swaps[0].Kind != policy.Random || r.Swaps[0].Generation == 0 {
		t.Fatalf("swaps = %+v, want one applied random swap with generation > 0", r.Swaps)
	}
	if r.Swaps[0].At != 50 {
		t.Fatalf("swap applied at %v, want 50", r.Swaps[0].At)
	}
}

func TestChurnStormVisibleInTrajectory(t *testing.T) {
	sc := smallScenario("storm", 11, sbqaPolicy(11))
	sc.Workload.Churn = ChurnSpec{Storm: &StormSpec{At: 40, Duration: 40, Fraction: 0.5}}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	fleet := r.Providers
	var inStorm, outStorm int
	for _, p := range r.Trajectory {
		if p.T > 40 && p.T <= 80 {
			if inStorm == 0 || p.Online < inStorm {
				inStorm = p.Online
			}
		} else if p.Online > outStorm {
			outStorm = p.Online
		}
	}
	if outStorm != fleet {
		t.Fatalf("outside the storm %d online, want full fleet %d", outStorm, fleet)
	}
	if inStorm > int(0.7*float64(fleet)) {
		t.Fatalf("during the storm %d online of %d, want a visible drop", inStorm, fleet)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{},                                   // no name
		{Name: "x"},                          // no duration
		{Name: "x", Duration: 10},            // no classes
		smallScenario("x", 1, policy.Spec{}), // no policy kind
	}
	bad[3].Policy = policy.Spec{}
	for i, sc := range bad {
		if _, err := Run(sc); err == nil {
			t.Fatalf("case %d: invalid scenario accepted", i)
		}
	}
	adv := smallScenario("adv", 1, sbqaPolicy(1))
	adv.Workload.Adversaries = AdversarySpec{FreeRiders: 0.7, OverClaimers: 0.7}
	if _, err := Run(adv); err == nil {
		t.Fatal("adversary fractions > 1 accepted")
	}
}
