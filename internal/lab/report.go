package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"sbqa/internal/policy"
)

// Report is the typed outcome of one scenario run. It is pure data with a
// stable serialization: Encode marshals with sorted struct order and no
// timestamps, wall-clock readings, or map-order dependence, so the same
// Scenario always produces byte-identical bytes (and Hash). Every number in
// it is derived from the virtual clock and the engine's own state.
type Report struct {
	// Scenario echoes the normalized scenario that produced this report.
	Scenario Scenario `json:"scenario"`

	// Population totals.
	Participants int `json:"participants"`
	Providers    int `json:"providers"`
	Consumers    int `json:"consumers"`

	// Query totals. Issued counts arrivals handed to the engine; Mediated
	// the successful allocations; Rejected the mediation errors (e.g. no
	// candidates during a churn trough); Completed / Failed / InFlight the
	// execution outcomes inside the horizon (failed = timed out on a
	// free-rider; in-flight = still executing when the horizon closed).
	Issued   int `json:"issued"`
	Mediated int `json:"mediated"`
	Rejected int `json:"rejected"`

	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	InFlight  int `json:"in_flight"`

	// QoS-station ledger (Scenario.QoS runs only; omitted otherwise).
	// Shed counts admissions the scheduler refused, by total and by reason
	// ("deadline", "queue_full", "brownout"); Queued is the station backlog
	// (queued + in service) when the horizon closed. Conservation holds:
	// issued == mediated + rejected + shed + queued.
	Shed         int            `json:"shed,omitempty"`
	ShedByReason map[string]int `json:"shed_by_reason,omitempty"`
	Queued       int            `json:"queued,omitempty"`

	// Queue wait summary over every query the station served (seconds).
	QueueWaitMean float64 `json:"queue_wait_mean,omitempty"`
	QueueWaitP99  float64 `json:"queue_wait_p99,omitempty"`

	// Response-time summary over completed executions (simulated seconds).
	MeanResponse float64 `json:"mean_response"`
	P99Response  float64 `json:"p99_response"`

	// End-state satisfaction means over the whole population.
	ConsumerSatisfaction float64 `json:"consumer_satisfaction"`
	ConsumerAdequation   float64 `json:"consumer_adequation"`
	ProviderSatisfaction float64 `json:"provider_satisfaction"`

	// Allocation shares by provider behavior (fractions of all
	// provider-allocations; zero population ⇒ zero share).
	Shares BehaviorShares `json:"shares"`

	// GiniUtilization is the Gini coefficient of per-provider busy-time
	// utilization — 0 is perfectly even use of the fleet.
	GiniUtilization float64 `json:"gini_utilization"`

	// Starved counts providers that finished the run online with zero
	// lifetime allocations; StarvedFrac normalizes by the fleet size.
	Starved     int     `json:"starved"`
	StarvedFrac float64 `json:"starved_frac"`

	// Trajectory samples global state every Scenario.SampleEvery; queue
	// gauges scan a deterministic stride of at most 4096 providers (the
	// full fleet when it is small).
	Trajectory []TrajectoryPoint `json:"trajectory"`

	// Classes reports per-class outcomes, in scenario class order.
	// Per-class δs/δa trajectories are included when the scenario has at
	// most 32 classes (beyond that they would dominate the report; the
	// aggregate trajectory is always present).
	Classes []ClassReport `json:"classes"`

	// Swaps records every policy hot-swap applied, in order.
	Swaps []AppliedSwap `json:"swaps,omitempty"`
}

// BehaviorShares are allocation fractions by provider behavior.
type BehaviorShares struct {
	Honest      float64 `json:"honest"`
	FreeRider   float64 `json:"free_rider"`
	OverClaimer float64 `json:"over_claimer"`
	Colluder    float64 `json:"colluder"`
}

// TrajectoryPoint is one global sample.
type TrajectoryPoint struct {
	T float64 `json:"t"`

	// Mean consumer δs / δa and provider δs at T (consumers fully
	// enumerated; providers strided at scale, see Report.Trajectory).
	ConsumerDS float64 `json:"consumer_ds"`
	ConsumerDA float64 `json:"consumer_da"`
	ProviderDS float64 `json:"provider_ds"`

	// Queue depth over the sampled providers.
	QueueMean float64 `json:"queue_mean"`
	QueueMax  int     `json:"queue_max"`

	// Online providers (the churn signal) and cumulative issued queries.
	Online int `json:"online"`
	Issued int `json:"issued"`
}

// ClassReport is one class's outcome.
type ClassReport struct {
	Name string `json:"name"`

	Issued    int `json:"issued"`
	Mediated  int `json:"mediated"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	// QoS-station ledger for this class (Scenario.QoS runs only).
	Shed          int            `json:"shed,omitempty"`
	ShedByReason  map[string]int `json:"shed_by_reason,omitempty"`
	QueueWaitMean float64        `json:"queue_wait_mean,omitempty"`
	QueueWaitP99  float64        `json:"queue_wait_p99,omitempty"`

	MeanResponse float64 `json:"mean_response"`
	P99Response  float64 `json:"p99_response"`

	// End-state satisfaction means over the class's consumers.
	ConsumerDS float64 `json:"consumer_ds"`
	ConsumerDA float64 `json:"consumer_da"`

	// Shares are allocation fractions by behavior within the class.
	Shares BehaviorShares `json:"shares"`

	// Starved providers of this class (zero allocations, online at end).
	Starved int `json:"starved"`

	// Trajectory is the class's δs/δa over time (small scenarios only;
	// see Report.Classes).
	Trajectory []ClassPoint `json:"trajectory,omitempty"`
}

// ClassPoint is one per-class trajectory sample.
type ClassPoint struct {
	T  float64 `json:"t"`
	DS float64 `json:"ds"`
	DA float64 `json:"da"`
}

// AppliedSwap records one policy hot-swap the run applied.
type AppliedSwap struct {
	At         float64     `json:"at"`
	Kind       policy.Kind `json:"kind"`
	Generation uint64      `json:"generation"`
}

// Encode returns the report's canonical byte serialization (indented JSON;
// struct fields marshal in declaration order, which Go guarantees stable).
func (r *Report) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Hash returns the SHA-256 of Encode as a hex string — the determinism
// check's currency: same scenario ⇒ same hash.
func (r *Report) Hash() (string, error) {
	b, err := r.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
