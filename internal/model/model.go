// Package model defines the domain types shared by every SbQA package:
// participant identifiers, queries, intention values, and the descriptors
// the mediator exchanges with consumers and providers during a mediation.
//
// The vocabulary follows the paper (Quiané-Ruiz, Lamarre, Valduriez,
// "SbQA: A Self-Adaptable Query Allocation Process", ICDE 2009):
//
//   - a consumer c ∈ C issues queries and has intentions CI_q[p] ∈ [-1, 1]
//     about allocating query q to provider p;
//   - a provider p ∈ P performs queries and has intentions PI_q[p] ∈ [-1, 1]
//     about performing q;
//   - the mediator allocates each query q to q.N providers among the set P_q
//     of providers able to perform it.
package model

import "fmt"

// ConsumerID identifies a consumer (a BOINC project, an e-commerce buyer, a
// Web-service client...). IDs are dense small integers so that experiments
// can use them as slice indices.
type ConsumerID int

// ProviderID identifies a provider (a BOINC volunteer, a seller, a server...).
type ProviderID int

// QueryID identifies a query instance. IDs are unique per simulation run and
// strictly increasing in issue order.
type QueryID int64

// NoProvider is a sentinel for "no provider"; valid ProviderIDs are >= 0.
const NoProvider ProviderID = -1

// NoConsumer is a sentinel for "no consumer"; valid ConsumerIDs are >= 0.
const NoConsumer ConsumerID = -1

// Intention is a participant's interest level in an allocation, in [-1, 1].
// -1 means "absolutely against", 0 indifferent, +1 "absolutely in favour".
type Intention float64

// Clamp returns the intention clamped to the legal interval [-1, 1].
func (i Intention) Clamp() Intention {
	if i < -1 {
		return -1
	}
	if i > 1 {
		return 1
	}
	return i
}

// Valid reports whether the intention lies in [-1, 1].
func (i Intention) Valid() bool { return i >= -1 && i <= 1 }

// Unit maps the intention from [-1, 1] onto [0, 1]; this is the (x+1)/2
// transform used throughout the satisfaction definitions of the paper.
func (i Intention) Unit() float64 { return (float64(i) + 1) / 2 }

// Query is one unit of work to allocate. In BOINC terms it is an independent
// computational task; in e-commerce terms, a purchase request.
type Query struct {
	ID       QueryID
	Consumer ConsumerID

	// Class partitions queries by the kind of work they carry (in BOINC,
	// the project application; in a marketplace, the product category).
	// Providers may restrict the classes they can perform.
	Class int

	// N is the number of results the consumer requires (q.n in the paper).
	// BOINC consumers replicate tasks (N > 1) to validate results returned
	// by possibly-malicious volunteers.
	N int

	// Work is the service demand in abstract work units; a provider with
	// capacity cap executes the query in Work/cap simulated seconds.
	Work float64

	// IssuedAt is the simulation time at which the consumer issued q.
	IssuedAt float64

	// QoS names the query's service class for admission control and shard
	// scheduling ("interactive", "batch", "background", or any class the
	// running qos policy declares). Empty means the policy's default
	// class. Orthogonal to Class, which partitions by the kind of work.
	QoS string

	// Deadline is the absolute time (same axis as IssuedAt) by which the
	// query must start mediation: the scheduler sheds it with a typed
	// error when its estimated queue wait overruns the deadline, and
	// serves earlier deadlines first within a class. Zero means none.
	Deadline float64

	// Trace carries the query's tracing state (see TraceContext). The
	// zero value — unsampled — is the hot-path default.
	Trace TraceContext
}

// TraceID identifies one end-to-end trace: 128 bits, rendered as 32 hex
// digits in the W3C traceparent form. The zero value means "no trace".
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is the no-trace sentinel.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the 32-hex-digit W3C form.
func (t TraceID) String() string { return fmt.Sprintf("%016x%016x", t.Hi, t.Lo) }

// TraceContext is the per-query tracing state stamped onto a Query at
// submission and propagated by value through the pipeline (and, rendered
// as a W3C traceparent header, across cluster forwards and participant
// webhooks). Sampled gates every instrumentation site: when false —
// the common case — the hot path takes a single predictable branch per
// site and allocates nothing.
type TraceContext struct {
	ID      TraceID
	Span    uint64 // parent span ID for cross-process propagation
	Sampled bool
	// Decided records that a sampler already ran for this query (sampled or
	// not), so a downstream layer — the engine behind a gateway that made
	// the call — never draws a second sampling decision for it.
	Decided bool
}

// Validate reports whether the query is well formed.
func (q Query) Validate() error {
	if q.Consumer < 0 {
		return fmt.Errorf("model: query %d has invalid consumer %d", q.ID, q.Consumer)
	}
	if q.N < 1 {
		return fmt.Errorf("model: query %d requires %d results; want >= 1", q.ID, q.N)
	}
	if q.Work <= 0 {
		return fmt.Errorf("model: query %d has non-positive work %v", q.ID, q.Work)
	}
	return nil
}

// ProviderSnapshot is the mediator-visible state of one candidate provider at
// mediation time. Allocators must base decisions only on this information
// (plus the intentions they explicitly collect), never on private state.
type ProviderSnapshot struct {
	ID ProviderID

	// Utilization in [0, 1]: fraction of the provider's capacity currently
	// committed. KnBest's second stage keeps the kn least-utilized
	// candidates.
	Utilization float64

	// QueueLen is the number of queries queued at the provider (including
	// the one in service, if any).
	QueueLen int

	// Capacity is the provider's processing speed in work units per second.
	Capacity float64

	// PendingWork is the total work units enqueued, used to estimate the
	// completion delay a new query would observe.
	PendingWork float64

	// Satisfaction is the provider's current long-run satisfaction
	// δs(p) ∈ [0, 1] (Definition 2 of the paper).
	Satisfaction float64
}

// ExpectedDelay estimates the response time a new query with the given work
// would observe at this provider: queued work plus its own service time.
func (s ProviderSnapshot) ExpectedDelay(work float64) float64 {
	if s.Capacity <= 0 {
		return 0
	}
	return (s.PendingWork + work) / s.Capacity
}

// Bid is a provider's sealed bid in the economic (Mariposa-style) baseline:
// the price it asks to perform a query.
type Bid struct {
	Provider ProviderID
	Price    float64
}

// Allocation is the outcome of mediating one query.
type Allocation struct {
	Query Query

	// Selected lists the providers that received the query, best ranked
	// first (the paper's ranking vector →R truncated to min(q.N, kn)).
	Selected []ProviderID

	// Proposed lists every provider that took part in the final mediation
	// step (set Kn in the paper). The mediator sends the mediation result
	// to all of them; providers compute satisfaction over *proposed*
	// queries, so this set defines their interaction memory.
	Proposed []ProviderID

	// ConsumerIntentions records CI_q[p] for each proposed provider, and
	// ProviderIntentions records PI_q[p]; keyed by position in Proposed.
	ConsumerIntentions []Intention
	ProviderIntentions []Intention

	// Scores holds the allocator's score for each proposed provider
	// (position-aligned with Proposed); informational, may be nil for
	// allocators that do not score (e.g. random).
	Scores []float64

	// Explain is the ranked score breakdown behind this allocation,
	// populated only for sampled queries (q.Trace.Sampled); nil — and
	// therefore alloc-free — otherwise.
	Explain *Explain
}

// Explain records why an allocation came out the way it did: every ranked
// candidate with the score components that placed it there. Built only
// for sampled queries — one heap allocation per sampled mediation.
type Explain struct {
	// Allocator names the technique that produced the ranking.
	Allocator string

	// SatC is the consumer's long-run satisfaction δs(c) feeding the
	// adaptive ω (zero for allocators that do not consult it).
	SatC float64

	// Candidates is the size of the candidate set the allocator saw
	// before any Kn truncation.
	Candidates int

	// Entries lists every ranked candidate, best first.
	Entries []ExplainEntry
}

// ExplainEntry is one candidate's slice of an Explain record.
type ExplainEntry struct {
	// Rank is the candidate's 1-based position in the ranking vector →R
	// (1 = best; the first q.N entries were selected).
	Rank     int
	Provider ProviderID

	// CI and PI are the intentions that entered the score; SatP the
	// provider's satisfaction δs(p); Omega the balance the score used.
	CI    Intention
	PI    Intention
	SatP  float64
	Omega float64
	Score float64

	// CIImputed / PIImputed flag intentions imputed from registry state
	// because the participant stayed silent.
	CIImputed bool
	PIImputed bool
}

// IntentionFor returns the consumer and provider intentions recorded for
// provider p in this allocation, and whether p was part of the proposal.
func (a *Allocation) IntentionFor(p ProviderID) (ci, pi Intention, ok bool) {
	for i, pp := range a.Proposed {
		if pp == p {
			if i < len(a.ConsumerIntentions) {
				ci = a.ConsumerIntentions[i]
			}
			if i < len(a.ProviderIntentions) {
				pi = a.ProviderIntentions[i]
			}
			return ci, pi, true
		}
	}
	return 0, 0, false
}

// Selected reports whether provider p is among the selected providers.
func (a *Allocation) SelectedContains(p ProviderID) bool {
	for _, sp := range a.Selected {
		if sp == p {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer for debugging output.
func (a *Allocation) String() string {
	return fmt.Sprintf("alloc{q=%d c=%d sel=%v of %v}", a.Query.ID, a.Query.Consumer, a.Selected, a.Proposed)
}
