package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntentionClamp(t *testing.T) {
	tests := []struct {
		name string
		in   Intention
		want Intention
	}{
		{"below", -3, -1},
		{"lower-edge", -1, -1},
		{"inside", 0.25, 0.25},
		{"upper-edge", 1, 1},
		{"above", 7, 1},
		{"zero", 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.Clamp(); got != tt.want {
				t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestIntentionClampProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		c := Intention(x).Clamp()
		return c.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntentionUnit(t *testing.T) {
	tests := []struct {
		in   Intention
		want float64
	}{
		{-1, 0},
		{0, 0.5},
		{1, 1},
		{0.5, 0.75},
		{-0.5, 0.25},
	}
	for _, tt := range tests {
		if got := tt.in.Unit(); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Unit(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestIntentionUnitProperty(t *testing.T) {
	// Unit maps valid intentions into [0,1] monotonically.
	f := func(a, b float64) bool {
		x := Intention(math.Mod(math.Abs(a), 2) - 1)
		y := Intention(math.Mod(math.Abs(b), 2) - 1)
		ux, uy := x.Unit(), y.Unit()
		if ux < 0 || ux > 1 || uy < 0 || uy > 1 {
			return false
		}
		if x < y && ux > uy {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueryValidate(t *testing.T) {
	valid := Query{ID: 1, Consumer: 0, N: 1, Work: 1}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	cases := []struct {
		name string
		q    Query
	}{
		{"bad-consumer", Query{ID: 1, Consumer: -1, N: 1, Work: 1}},
		{"zero-n", Query{ID: 1, Consumer: 0, N: 0, Work: 1}},
		{"negative-n", Query{ID: 1, Consumer: 0, N: -2, Work: 1}},
		{"zero-work", Query{ID: 1, Consumer: 0, N: 1, Work: 0}},
		{"negative-work", Query{ID: 1, Consumer: 0, N: 1, Work: -5}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.q.Validate(); err == nil {
				t.Errorf("Validate(%+v) = nil, want error", tt.q)
			}
		})
	}
}

func TestProviderSnapshotExpectedDelay(t *testing.T) {
	s := ProviderSnapshot{Capacity: 2, PendingWork: 6}
	if got, want := s.ExpectedDelay(4), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedDelay = %v, want %v", got, want)
	}
	zero := ProviderSnapshot{Capacity: 0, PendingWork: 10}
	if got := zero.ExpectedDelay(4); got != 0 {
		t.Errorf("ExpectedDelay with zero capacity = %v, want 0", got)
	}
}

func TestAllocationIntentionFor(t *testing.T) {
	a := &Allocation{
		Query:              Query{ID: 9, Consumer: 1, N: 1, Work: 1},
		Selected:           []ProviderID{2},
		Proposed:           []ProviderID{2, 5, 7},
		ConsumerIntentions: []Intention{0.5, -0.25, 1},
		ProviderIntentions: []Intention{0.75, 0, -1},
	}
	ci, pi, ok := a.IntentionFor(5)
	if !ok || ci != -0.25 || pi != 0 {
		t.Errorf("IntentionFor(5) = %v,%v,%v; want -0.25,0,true", ci, pi, ok)
	}
	if _, _, ok := a.IntentionFor(99); ok {
		t.Error("IntentionFor(99) found, want missing")
	}
	if !a.SelectedContains(2) {
		t.Error("SelectedContains(2) = false, want true")
	}
	if a.SelectedContains(5) {
		t.Error("SelectedContains(5) = true, want false")
	}
	if s := a.String(); s == "" {
		t.Error("String() empty")
	}
}
