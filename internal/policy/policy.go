// Package policy is the engine's declarative control plane: a named,
// JSON-serializable Spec describes an allocation policy (which allocator to
// run and how it is tuned), a registry maps every allocator kind the system
// ships to a builder, and Spec.Build turns a validated spec into per-shard
// allocator instances. The live engine consumes specs through
// NewEngine(WithPolicy(...)) and hot-swaps them at mediation boundaries
// through Engine.Reconfigure; the Tuner (tuner.go) closes the paper's
// self-adaptation loop by issuing bounded Reconfigure steps from the
// satisfaction event stream.
//
// Specs replace the ad-hoc constructor plumbing (core.Config here,
// alloc.NewByName there, a hand-rolled allocator factory per embedding):
// one JSON document names the technique and carries every tunable the paper
// exposes — KnBest's k and kn, the balance ω (fixed or adaptive), ε, the
// sampling seed, and the per-participant intention deadline.
package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"sbqa/internal/alloc"
	"sbqa/internal/core"
	"sbqa/internal/knbest"
	"sbqa/internal/qos"
	"sbqa/internal/score"
	"sbqa/internal/stats"
)

// Kind names an allocation technique in a Spec. The zero value is invalid:
// every spec must name its technique.
type Kind string

// The allocator kinds the registry ships with — one per allocation
// technique in the codebase.
const (
	// SbQA is the satisfaction-based allocator (KnBest × SQLB), the
	// paper's contribution. The only kind with tunable parameters.
	SbQA Kind = "sbqa"
	// Capacity is the BOINC-like load balancer baseline.
	Capacity Kind = "capacity"
	// Economic is the Mariposa-style sealed-bid baseline.
	Economic Kind = "economic"
	// Random is the uniform-random control.
	Random Kind = "random"
	// RoundRobin is the rotating control.
	RoundRobin Kind = "round_robin"
	// ShareBased is BOINC's native resource-share dispatching.
	ShareBased Kind = "share_based"
)

// OmegaMode selects how the SQLB balance ω is derived.
type OmegaMode string

const (
	// OmegaAdaptive selects the satisfaction-adaptive Equation 2 (the
	// default).
	OmegaAdaptive OmegaMode = "adaptive"
	// OmegaFixed pins ω to Spec.Omega ∈ [0, 1].
	OmegaFixed OmegaMode = "fixed"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms") and unmarshals from either a string or a number of nanoseconds,
// so specs stay readable in config files and on the wire.
type Duration time.Duration

// MarshalJSON renders the duration as a string ("250ms").
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("policy: bad duration %q: %w", s, perr)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("policy: duration must be a string like \"250ms\" or nanoseconds, got %s", data)
	}
	*d = Duration(n)
	return nil
}

// Std returns the duration as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Spec declares one allocation policy. The zero value is invalid (Kind is
// required); DefaultSpec returns the demo defaults. Fields that do not apply
// to the spec's kind must stay zero — Validate rejects, say, KnBest
// parameters on a round-robin policy, so a config typo cannot silently
// no-op.
type Spec struct {
	// Name labels the policy in events, stats, and logs. Optional.
	Name string `json:"name,omitempty"`

	// Kind names the allocation technique. Required.
	Kind Kind `json:"kind"`

	// K and Kn are the KnBest stage sizes (SbQA only). When *both* are
	// zero the demo defaults apply (k=20, kn=10). A zero K with a nonzero
	// Kn keeps knbest's "sample all of P_q" semantics, and a zero Kn with
	// a nonzero K disables the utilization filter (keep every sampled
	// provider) — both deliberate, so specs can express the paper's
	// boundary configurations.
	K  int `json:"k,omitempty"`
	Kn int `json:"kn,omitempty"`

	// OmegaMode selects the balance rule (SbQA only): adaptive (Equation
	// 2, the default) or fixed. Omega is the pinned value under
	// OmegaFixed and must stay zero otherwise.
	OmegaMode OmegaMode `json:"omega_mode,omitempty"`
	Omega     float64   `json:"omega,omitempty"`

	// Epsilon is the ε of the score's negative branch (SbQA only). Zero
	// means score.DefaultEpsilon.
	Epsilon float64 `json:"epsilon,omitempty"`

	// Seed seeds the sampling stream of stochastic kinds (sbqa, random,
	// economic). Shard i draws from Seed+i so shards stay reproducible
	// yet decorrelated. Zero means 1.
	Seed uint64 `json:"seed,omitempty"`

	// BidSample bounds the bidders contacted per query (economic only).
	// Zero means alloc.DefaultBidSample.
	BidSample int `json:"bid_sample,omitempty"`

	// ParticipantDeadline bounds each context-aware participant call
	// during batched intention collection. Zero inherits the engine's
	// configured deadline unchanged.
	ParticipantDeadline Duration `json:"participant_deadline,omitempty"`

	// QoS carries the overload-survival configuration: service classes
	// with weights and queue bounds for the shard schedulers, plus the
	// gateway's token-bucket rates (see qos.Spec). Orthogonal to the
	// allocator kind, so it is valid on every policy, baselines included.
	// Nil restores the engine's construction-time QoS configuration on
	// Reconfigure, the same way a zero ParticipantDeadline restores the
	// engine's base deadline.
	QoS *qos.Spec `json:"qos,omitempty"`
}

// DefaultSpec returns the demo default policy: SbQA with KnBest(20, 10),
// adaptive ω, ε = 1, seed 1.
func DefaultSpec() Spec {
	return Spec{Name: "default", Kind: SbQA, K: 20, Kn: 10, OmegaMode: OmegaAdaptive, Epsilon: score.DefaultEpsilon, Seed: 1}
}

// Normalized returns the spec with zero-valued tunables resolved to their
// documented defaults for its kind. Unknown kinds pass through unchanged —
// Validate reports them.
func (s Spec) Normalized() Spec {
	if b, ok := kinds[s.Kind]; ok && b.normalize != nil {
		s = b.normalize(s)
	}
	return s
}

// Validate reports whether the spec is coherent, with errors an operator
// can act on. It does not normalize: validate the output of Normalized (or
// a fully-specified spec).
func (s Spec) Validate() error {
	b, ok := kinds[s.Kind]
	if !ok {
		if s.Kind == "" {
			return fmt.Errorf("policy: spec %q has no kind; one of %v is required", s.Name, Kinds())
		}
		return fmt.Errorf("policy: unknown kind %q; known kinds: %v", s.Kind, Kinds())
	}
	if s.ParticipantDeadline < 0 {
		return fmt.Errorf("policy: participant_deadline %v cannot be negative", s.ParticipantDeadline.Std())
	}
	if err := s.QoS.Validate(); err != nil {
		return fmt.Errorf("policy: %w", err)
	}
	return b.validate(s)
}

// Build constructs the spec's allocator for one engine shard. Stochastic
// kinds seed their stream with Seed+shard, so a multi-shard engine gets
// reproducible-yet-decorrelated sampling and shard 0 of a single-shard
// engine reproduces a serialized run with the same seed exactly. Build
// validates first, so an unchecked spec cannot produce a half-configured
// allocator.
func (s Spec) Build(shard int) (alloc.Allocator, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return kinds[s.Kind].build(s, shard)
}

// Tunable reports whether the spec's kind has runtime-tunable parameters
// (today: only SbQA). The Tuner skips non-tunable policies.
func (s Spec) Tunable() bool { return s.Kind == SbQA }

// seed resolves the spec's per-shard seed.
func (s Spec) seed(shard int) uint64 {
	base := s.Seed
	if base == 0 {
		base = 1
	}
	return base + uint64(shard)
}

// builder couples one kind's normalization, validation, and construction.
type builder struct {
	normalize func(Spec) Spec
	validate  func(Spec) error
	build     func(Spec, int) (alloc.Allocator, error)
}

// kinds is the policy registry: every allocator the system ships, keyed by
// Kind. Extended via Register.
var kinds = map[Kind]builder{}

// Register adds (or replaces) a kind in the policy registry. The built-in
// kinds register themselves in init; embedders may add their own allocators
// so specs naming them validate, build, and hot-swap like the built-ins.
// Not safe for concurrent use with Build/Validate — register at start-up.
func Register(k Kind, normalize func(Spec) Spec, validate func(Spec) error, build func(Spec, int) (alloc.Allocator, error)) {
	if validate == nil || build == nil {
		panic("policy: Register requires validate and build")
	}
	kinds[k] = builder{normalize: normalize, validate: validate, build: build}
}

// Kinds lists every registered kind in stable order.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// requireBaseline rejects SbQA-only tunables on baseline kinds, so a typo
// like {"kind":"capacity","kn":5} fails loudly instead of silently ignoring
// the kn.
func requireBaseline(s Spec) error {
	if s.K != 0 || s.Kn != 0 {
		return fmt.Errorf("policy: kind %q has no KnBest stages; drop k/kn", s.Kind)
	}
	if s.OmegaMode != "" || s.Omega != 0 {
		return fmt.Errorf("policy: kind %q has no balance ω; drop omega_mode/omega", s.Kind)
	}
	if s.Epsilon != 0 {
		return fmt.Errorf("policy: kind %q has no ε; drop epsilon", s.Kind)
	}
	if s.Kind != Economic && s.BidSample != 0 {
		return fmt.Errorf("policy: kind %q has no bidding round; drop bid_sample", s.Kind)
	}
	return nil
}

func init() {
	Register(SbQA,
		func(s Spec) Spec {
			def := knbest.DefaultParams()
			if s.K == 0 && s.Kn == 0 {
				s.K, s.Kn = def.K, def.Kn
			}
			if s.OmegaMode == "" {
				s.OmegaMode = OmegaAdaptive
			}
			if s.Epsilon == 0 {
				s.Epsilon = score.DefaultEpsilon
			}
			if s.Seed == 0 {
				s.Seed = 1
			}
			return s
		},
		func(s Spec) error {
			if s.BidSample != 0 {
				return fmt.Errorf("policy: kind %q has no bidding round; drop bid_sample", s.Kind)
			}
			if s.K < 0 || s.Kn < 0 {
				return fmt.Errorf("policy: KnBest stages cannot be negative (k=%d, kn=%d)", s.K, s.Kn)
			}
			if p := (knbest.Params{K: s.K, Kn: s.Kn}); p.Validate() != nil {
				return fmt.Errorf("policy: kn=%d exceeds k=%d (stage 2 keeps kn of the k sampled providers)", s.Kn, s.K)
			}
			switch s.OmegaMode {
			case OmegaAdaptive:
				if s.Omega != 0 {
					return fmt.Errorf("policy: omega=%g is set but omega_mode is %q; use omega_mode %q to pin ω", s.Omega, OmegaAdaptive, OmegaFixed)
				}
			case OmegaFixed:
				if s.Omega < 0 || s.Omega > 1 {
					return fmt.Errorf("policy: fixed ω must lie in [0, 1], got %g", s.Omega)
				}
			default:
				return fmt.Errorf("policy: unknown omega_mode %q; use %q or %q", s.OmegaMode, OmegaAdaptive, OmegaFixed)
			}
			if s.Epsilon < 0 {
				return fmt.Errorf("policy: ε must be positive, got %g", s.Epsilon)
			}
			return nil
		},
		func(s Spec, shard int) (alloc.Allocator, error) {
			cfg := core.Config{
				KnBest:  knbest.Params{K: s.K, Kn: s.Kn},
				Epsilon: s.Epsilon,
				Seed:    s.seed(shard),
			}
			if s.OmegaMode == OmegaFixed {
				cfg.Omega = core.FixedOmega(s.Omega)
			}
			return core.New(cfg)
		},
	)
	Register(Capacity, nil,
		requireBaseline,
		func(Spec, int) (alloc.Allocator, error) { return alloc.NewCapacity(), nil },
	)
	Register(Economic, nil,
		func(s Spec) error {
			if err := requireBaseline(s); err != nil {
				return err
			}
			if s.BidSample < 0 {
				return fmt.Errorf("policy: bid_sample cannot be negative, got %d", s.BidSample)
			}
			return nil
		},
		func(s Spec, shard int) (alloc.Allocator, error) {
			e := alloc.NewEconomic(stats.NewRNG(s.seed(shard)))
			if s.BidSample > 0 {
				e.BidSample = s.BidSample
			}
			return e, nil
		},
	)
	Register(Random, nil,
		requireBaseline,
		func(s Spec, shard int) (alloc.Allocator, error) {
			return alloc.NewRandom(stats.NewRNG(s.seed(shard))), nil
		},
	)
	Register(RoundRobin, nil,
		requireBaseline,
		func(Spec, int) (alloc.Allocator, error) { return alloc.NewRoundRobin(), nil },
	)
	Register(ShareBased, nil,
		requireBaseline,
		func(Spec, int) (alloc.Allocator, error) { return alloc.NewShareBased(), nil },
	)
}

// Parse decodes a JSON policy spec, rejecting unknown fields so a
// misspelled tunable cannot silently fall back to its default.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("policy: parsing spec: %w", err)
	}
	return s, nil
}

// String renders the spec for logs: kind plus the tunables that apply.
func (s Spec) String() string {
	name := s.Name
	if name == "" {
		name = "<unnamed>"
	}
	switch s.Kind {
	case SbQA:
		omega := "adaptive"
		if s.OmegaMode == OmegaFixed {
			omega = fmt.Sprintf("%g", s.Omega)
		}
		return fmt.Sprintf("policy %s: sbqa(k=%d, kn=%d, ω=%s, ε=%g, seed=%d)", name, s.K, s.Kn, omega, s.Epsilon, s.Seed)
	default:
		return fmt.Sprintf("policy %s: %s", name, s.Kind)
	}
}
