package policy

// The brownout controller is the tuner's overload half: where the
// satisfaction loop (tuner.go) retunes the allocation process for *quality*,
// this loop retunes it for *survival*. Its Monitor phase is the engine's
// queue-pressure stream (qos.Pressure samples pushed on every snapshot
// tick); under sustained pressure — shed rate or queue-wait p99 above
// threshold for Hysteresis consecutive samples — it steps the brownout
// level up one (widening shedding to the next most-sheddable class) and
// narrows the KnBest kn one bounded step, shrinking per-mediation work.
// When pressure stays clear for the same streak it steps the level back
// down; kn recovery is left to the satisfaction loop's planWiden, which
// re-widens under starvation — the two halves share MinInterval damping so
// they cannot thrash the policy between them.

import (
	"context"
	"math"

	"sbqa/internal/qos"
)

// BrownoutTarget is the shed-widening control surface the tuner drives —
// implemented by the live engine.
type BrownoutTarget interface {
	// SetBrownout sets the shed-widening level on every shard (clamped so
	// the top class always admits).
	SetBrownout(level int)
	// Brownout returns the effective level after clamping.
	Brownout() int
}

// BindBrownout points the tuner's brownout controller at its engine.
// Pressure observed while unbound is analyzed but produces no action.
func (t *Tuner) BindBrownout(target BrownoutTarget) {
	t.mu.Lock()
	t.brownTarget = target
	t.mu.Unlock()
}

// ObservePressure feeds one queue-pressure sample into the analysis loop.
// Like Observe it never blocks: a stale pressure sample is worthless, so
// when the loop is behind the sample is dropped and counted.
func (t *Tuner) ObservePressure(p qos.Pressure) {
	select {
	case t.pressure <- p:
	default:
		t.dropped.Add(1)
	}
}

// analyzePressure is the brownout controller's Analyze+Plan+Execute over
// one pressure sample. Runs on the tuner goroutine.
func (t *Tuner) analyzePressure(p qos.Pressure) {
	t.mu.Lock()
	brown := t.brownTarget
	target := t.target
	t.mu.Unlock()
	if brown == nil {
		return
	}

	// Analyze: difference the cumulative counters into this interval's shed
	// rate. The first sample only seeds the baseline.
	dEnq := p.Enqueued - t.lastEnqueued
	dShed := p.Shed - t.lastShed
	seeded := t.pressureSeeded
	t.lastEnqueued, t.lastShed = p.Enqueued, p.Shed
	t.pressureSeeded = true
	if !seeded {
		return
	}
	shedRate := 0.0
	if total := dEnq + dShed; total > 0 {
		shedRate = float64(dShed) / float64(total)
	}
	hot := shedRate > t.cfg.BrownoutShedRate || p.WaitP99 > t.cfg.BrownoutWaitP99
	if hot {
		t.hotStreak++
		t.calmStreak = 0
	} else {
		t.calmStreak++
		t.hotStreak = 0
	}

	now := t.cfg.now()
	if !t.lastBrownAction.IsZero() && now.Sub(t.lastBrownAction) < t.cfg.MinInterval {
		return
	}

	level := brown.Brownout()
	switch {
	case t.hotStreak >= t.cfg.Hysteresis:
		// Plan+Execute: widen shedding one class and shrink per-mediation
		// work one bounded step.
		brown.SetBrownout(level + 1)
		t.narrowKn(target)
		t.brownSteps.Add(1)
		t.lastBrownAction = now
		t.hotStreak = 0
		t.logf("tuner: pressure (shed %.1f%%, wait p99 %.3fs): brownout %d→%d",
			shedRate*100, p.WaitP99, level, brown.Brownout())
	case t.calmStreak >= t.cfg.Hysteresis && level > 0:
		brown.SetBrownout(level - 1)
		t.brownSteps.Add(1)
		t.lastBrownAction = now
		t.calmStreak = 0
		t.logf("tuner: pressure cleared: brownout %d→%d", level, level-1)
	}
}

// narrowKn halves the KnBest kn (floored at MinKn) — the inverse of
// planWiden's doubling — shrinking the candidate set each mediation scores
// while the system is browning out. No-op for non-tunable policies.
func (t *Tuner) narrowKn(target Reconfigurer) {
	if target == nil {
		return
	}
	spec, ok := target.Policy()
	if !ok || !spec.Tunable() {
		return
	}
	spec = spec.Normalized()
	if spec.Kn <= 0 {
		return // kn disabled: every sampled provider is kept, nothing to narrow
	}
	kn := int(math.Max(float64(t.cfg.MinKn), float64(spec.Kn/2)))
	if kn >= spec.Kn {
		return
	}
	old := spec.Kn
	spec.Kn = kn
	if err := target.Reconfigure(context.Background(), spec); err != nil {
		t.logf("tuner: brownout kn narrow rejected: %v", err)
		return
	}
	t.actions.Add(1)
	t.logf("tuner: brownout: narrow kn %d→%d", old, kn)
}
