package policy

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sbqa/internal/core"
	"sbqa/internal/knbest"
	"sbqa/internal/score"
)

func TestKindsCoverEveryAllocator(t *testing.T) {
	want := []Kind{Capacity, Economic, Random, RoundRobin, SbQA, ShareBased}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i, k := range want {
		if got[i] != k {
			t.Fatalf("Kinds()[%d] = %q, want %q", i, got[i], k)
		}
	}
}

func TestBuildEveryKind(t *testing.T) {
	for _, k := range Kinds() {
		a, err := Spec{Kind: k}.Build(0)
		if err != nil {
			t.Fatalf("Build(%q): %v", k, err)
		}
		if a == nil {
			t.Fatalf("Build(%q) returned nil allocator", k)
		}
		if a.Name() == "" {
			t.Fatalf("Build(%q): empty allocator name", k)
		}
	}
}

func TestBuildSbQAMatchesCoreConstructor(t *testing.T) {
	spec := Spec{Kind: SbQA, K: 8, Kn: 4, OmegaMode: OmegaFixed, Omega: 0.25, Epsilon: 0.5, Seed: 42}
	a, err := spec.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := a.(*core.SbQA)
	if !ok {
		t.Fatalf("Build(sbqa) = %T, want *core.SbQA", a)
	}
	if got := s.Params(); got != (knbest.Params{K: 8, Kn: 4}) {
		t.Fatalf("params = %+v", got)
	}
	sc := s.Scorer()
	if sc.Adaptive() || sc.FixedOmega != 0.25 || sc.Epsilon != 0.5 {
		t.Fatalf("scorer = %+v, want fixed ω=0.25 ε=0.5", sc)
	}
	// Shard decorrelation: seed base + shard index.
	ref := core.MustNew(core.Config{KnBest: knbest.Params{K: 8, Kn: 4}, Omega: core.FixedOmega(0.25), Epsilon: 0.5, Seed: 45})
	if ref.Name() != s.Name() {
		t.Fatalf("name %q vs %q", s.Name(), ref.Name())
	}
}

func TestNormalizedFillsSbQADefaults(t *testing.T) {
	got := Spec{Kind: SbQA}.Normalized()
	def := knbest.DefaultParams()
	if got.K != def.K || got.Kn != def.Kn {
		t.Fatalf("KnBest defaults = (%d, %d), want (%d, %d)", got.K, got.Kn, def.K, def.Kn)
	}
	if got.OmegaMode != OmegaAdaptive {
		t.Fatalf("OmegaMode = %q, want %q", got.OmegaMode, OmegaAdaptive)
	}
	if got.Epsilon != score.DefaultEpsilon {
		t.Fatalf("Epsilon = %g, want %g", got.Epsilon, score.DefaultEpsilon)
	}
	if got.Seed != 1 {
		t.Fatalf("Seed = %d, want 1", got.Seed)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"no kind", Spec{}, "no kind"},
		{"unknown kind", Spec{Kind: "quantum"}, "unknown kind"},
		{"kn exceeds k", Spec{Kind: SbQA, K: 5, Kn: 9, OmegaMode: OmegaAdaptive, Epsilon: 1}, "exceeds"},
		{"negative stages", Spec{Kind: SbQA, K: -1, OmegaMode: OmegaAdaptive, Epsilon: 1}, "negative"},
		{"omega out of range", Spec{Kind: SbQA, K: 4, Kn: 2, OmegaMode: OmegaFixed, Omega: 1.5, Epsilon: 1}, "[0, 1]"},
		{"omega with adaptive mode", Spec{Kind: SbQA, K: 4, Kn: 2, OmegaMode: OmegaAdaptive, Omega: 0.5, Epsilon: 1}, "omega_mode"},
		{"bad omega mode", Spec{Kind: SbQA, K: 4, Kn: 2, OmegaMode: "sometimes", Epsilon: 1}, "omega_mode"},
		{"negative epsilon", Spec{Kind: SbQA, K: 4, Kn: 2, OmegaMode: OmegaAdaptive, Epsilon: -1}, "ε"},
		{"knbest on baseline", Spec{Kind: Capacity, Kn: 5}, "drop k/kn"},
		{"omega on baseline", Spec{Kind: RoundRobin, OmegaMode: OmegaFixed}, "omega"},
		{"bid sample on non-economic", Spec{Kind: Random, BidSample: 3}, "bid_sample"},
		{"negative bid sample", Spec{Kind: Economic, BidSample: -2}, "bid_sample"},
		{"negative deadline", Spec{Kind: Capacity, ParticipantDeadline: -1}, "negative"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestBuildValidatesFirst(t *testing.T) {
	if _, err := (Spec{Kind: SbQA, K: 2, Kn: 7}).Build(0); err == nil {
		t.Fatal("Build accepted kn > k")
	}
	if _, err := (Spec{Kind: "nope"}).Build(0); err == nil {
		t.Fatal("Build accepted unknown kind")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Name:                "tuned",
		Kind:                SbQA,
		K:                   40,
		Kn:                  16,
		OmegaMode:           OmegaFixed,
		Omega:               0.75,
		Epsilon:             0.5,
		Seed:                9,
		ParticipantDeadline: Duration(250 * time.Millisecond),
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"participant_deadline":"250ms"`) {
		t.Fatalf("deadline not marshaled as a duration string: %s", data)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("round trip: got %+v, want %+v", got, spec)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"kind":"sbqa","knn":5}`)); err == nil {
		t.Fatal("Parse accepted an unknown field")
	}
}

func TestDurationAcceptsNanoseconds(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte("1000000"), &d); err != nil {
		t.Fatal(err)
	}
	if d.Std() != time.Millisecond {
		t.Fatalf("got %v, want 1ms", d.Std())
	}
	if err := json.Unmarshal([]byte(`"oops"`), &d); err == nil {
		t.Fatal("accepted a malformed duration string")
	}
}

func TestDefaultSpecValid(t *testing.T) {
	spec := DefaultSpec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("DefaultSpec invalid: %v", err)
	}
	if !spec.Tunable() {
		t.Fatal("DefaultSpec should be tunable (sbqa)")
	}
	if (Spec{Kind: Capacity}).Tunable() {
		t.Fatal("capacity must not be tunable")
	}
}
