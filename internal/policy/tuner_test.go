package policy

import (
	"context"
	"sync"
	"testing"
	"time"

	"sbqa/internal/event"
	"sbqa/internal/model"
)

// fakeEngine records the Reconfigure calls a Tuner issues.
type fakeEngine struct {
	mu    sync.Mutex
	spec  Spec
	has   bool
	calls []Spec
}

func (f *fakeEngine) Policy() (Spec, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spec, f.has
}

func (f *fakeEngine) Reconfigure(_ context.Context, spec Spec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spec, f.has = spec, true
	f.calls = append(f.calls, spec)
	return nil
}

func (f *fakeEngine) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func (f *fakeEngine) lastCall() Spec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[len(f.calls)-1]
}

// snap builds a satisfaction snapshot from flat consumer/provider values.
func snap(consumers, providers []float64) event.SatisfactionSnapshot {
	s := event.SatisfactionSnapshot{
		Consumers: make(map[model.ConsumerID]float64),
		Providers: make(map[model.ProviderID]float64),
	}
	for i, v := range consumers {
		s.Consumers[model.ConsumerID(i)] = v
	}
	for i, v := range providers {
		s.Providers[model.ProviderID(i)] = v
	}
	return s
}

// newTestTuner returns a tuner whose analysis runs synchronously via
// analyze (no goroutine), with a controllable clock.
func newTestTuner(target Reconfigurer, cfg TunerConfig, now *time.Time) *Tuner {
	cfg.SetClock(func() time.Time { return *now })
	return NewTuner(target, cfg)
}

func TestTunerWidensKnUnderStarvation(t *testing.T) {
	eng := &fakeEngine{spec: Spec{Kind: SbQA, K: 20, Kn: 2, OmegaMode: OmegaAdaptive, Epsilon: 1, Seed: 1}, has: true}
	now := time.Unix(0, 0)
	tu := newTestTuner(eng, TunerConfig{Hysteresis: 2, MinInterval: time.Second, MaxKn: 8, MaxK: 20}, &now)

	starving := snap([]float64{0.8, 0.1}, []float64{0.6})
	tu.analyze(starving)
	if eng.callCount() != 0 {
		t.Fatal("acted before hysteresis was met")
	}
	tu.analyze(starving)
	if eng.callCount() != 1 {
		t.Fatalf("calls = %d, want 1 after hysteresis", eng.callCount())
	}
	got := eng.lastCall()
	if got.Kn != 4 {
		t.Fatalf("kn = %d, want doubled to 4", got.Kn)
	}
	if got.K < got.Kn {
		t.Fatalf("k = %d < kn = %d", got.K, got.Kn)
	}

	// Still starved, but MinInterval gates the next step.
	tu.analyze(starving)
	tu.analyze(starving)
	if eng.callCount() != 1 {
		t.Fatalf("calls = %d, want 1 (min-interval not elapsed)", eng.callCount())
	}
	now = now.Add(2 * time.Second)
	tu.analyze(starving)
	tu.analyze(starving)
	if eng.callCount() != 2 {
		t.Fatalf("calls = %d, want 2 after min-interval", eng.callCount())
	}
	if got := eng.lastCall(); got.Kn != 8 {
		t.Fatalf("kn = %d, want 8", got.Kn)
	}

	// Hard bound: kn is at MaxKn — no further action however starved.
	now = now.Add(2 * time.Second)
	tu.analyze(starving)
	tu.analyze(starving)
	tu.analyze(starving)
	if eng.callCount() != 2 {
		t.Fatalf("calls = %d, want 2 (MaxKn reached)", eng.callCount())
	}
}

func TestTunerNudgesFixedOmegaTowardAdaptive(t *testing.T) {
	eng := &fakeEngine{spec: Spec{Kind: SbQA, K: 20, Kn: 10, OmegaMode: OmegaFixed, Omega: 1, Epsilon: 1, Seed: 1}, has: true}
	now := time.Unix(0, 0)
	tu := newTestTuner(eng, TunerConfig{Hysteresis: 1, MinInterval: time.Second, OmegaStep: 0.25}, &now)

	// Providers far happier than consumers: imbalance, nobody starved.
	imbalanced := snap([]float64{0.5, 0.55}, []float64{0.95, 0.9})
	tu.analyze(imbalanced)
	if eng.callCount() != 1 {
		t.Fatalf("calls = %d, want 1", eng.callCount())
	}
	if got := eng.lastCall(); got.OmegaMode != OmegaFixed || got.Omega != 0.75 {
		t.Fatalf("got ω %q/%g, want fixed 0.75", got.OmegaMode, got.Omega)
	}
	now = now.Add(2 * time.Second)
	tu.analyze(imbalanced)
	if got := eng.lastCall(); got.OmegaMode != OmegaAdaptive || got.Omega != 0 {
		t.Fatalf("got ω %q/%g, want adaptive", got.OmegaMode, got.Omega)
	}
	// Adaptive policies need no nudge: no further actions.
	now = now.Add(2 * time.Second)
	tu.analyze(imbalanced)
	if eng.callCount() != 2 {
		t.Fatalf("calls = %d, want 2 (already adaptive)", eng.callCount())
	}
}

func TestTunerIgnoresBalancedSystemAndNonTunablePolicies(t *testing.T) {
	now := time.Unix(0, 0)
	balanced := snap([]float64{0.7, 0.8}, []float64{0.75})

	eng := &fakeEngine{spec: Spec{Kind: SbQA, K: 20, Kn: 10, OmegaMode: OmegaAdaptive, Epsilon: 1}, has: true}
	tu := newTestTuner(eng, TunerConfig{Hysteresis: 1}, &now)
	for i := 0; i < 5; i++ {
		tu.analyze(balanced)
	}
	if eng.callCount() != 0 {
		t.Fatalf("acted on a balanced system: %d calls", eng.callCount())
	}

	cap := &fakeEngine{spec: Spec{Kind: Capacity}, has: true}
	tuCap := newTestTuner(cap, TunerConfig{Hysteresis: 1}, &now)
	starving := snap([]float64{0.05}, []float64{0.9})
	for i := 0; i < 5; i++ {
		tuCap.analyze(starving)
	}
	if cap.callCount() != 0 {
		t.Fatalf("tuned a non-tunable policy: %d calls", cap.callCount())
	}

	none := &fakeEngine{}
	tuNone := newTestTuner(none, TunerConfig{Hysteresis: 1}, &now)
	for i := 0; i < 5; i++ {
		tuNone.analyze(starving)
	}
	if none.callCount() != 0 {
		t.Fatalf("tuned an engine with no policy: %d calls", none.callCount())
	}
}

// TestTunerLeavesDisabledUtilizationFilterAlone: Kn <= 0 means "keep every
// sampled provider" — already the widest setting; the tuner must not
// "widen" it to kn=1 (a drastic narrowing).
func TestTunerLeavesDisabledUtilizationFilterAlone(t *testing.T) {
	eng := &fakeEngine{spec: Spec{Kind: SbQA, K: 40, Kn: 0, OmegaMode: OmegaAdaptive, Epsilon: 1, Seed: 1}, has: true}
	now := time.Unix(0, 0)
	tu := newTestTuner(eng, TunerConfig{Hysteresis: 1}, &now)
	starving := snap([]float64{0.05}, []float64{0.9})
	for i := 0; i < 5; i++ {
		tu.analyze(starving)
	}
	if eng.callCount() != 0 {
		t.Fatalf("tuner acted on a disabled utilization filter: %+v", eng.lastCall())
	}
}

// TestTunerPreservesSampleAllStageOne: K <= 0 means "consider all of P_q"
// — the widest possible stage 1. Widening kn must not install a finite K,
// which would *narrow* the sample.
func TestTunerPreservesSampleAllStageOne(t *testing.T) {
	eng := &fakeEngine{spec: Spec{Kind: SbQA, K: 0, Kn: 5, OmegaMode: OmegaAdaptive, Epsilon: 1, Seed: 1}, has: true}
	now := time.Unix(0, 0)
	tu := newTestTuner(eng, TunerConfig{Hysteresis: 1, MaxKn: 64, MaxK: 128}, &now)
	tu.analyze(snap([]float64{0.05}, []float64{0.9}))
	if eng.callCount() != 1 {
		t.Fatalf("calls = %d, want 1", eng.callCount())
	}
	got := eng.lastCall()
	if got.K != 0 {
		t.Fatalf("tuner narrowed a sample-all stage 1 to k=%d", got.K)
	}
	if got.Kn != 10 {
		t.Fatalf("kn = %d, want doubled to 10", got.Kn)
	}
}

// TestTunerNeverExceedsMaxK: when MaxK < 2·kn the hard cap must win — kn
// shrinks to fit rather than k growing past its bound.
func TestTunerNeverExceedsMaxK(t *testing.T) {
	eng := &fakeEngine{spec: Spec{Kind: SbQA, K: 10, Kn: 10, OmegaMode: OmegaAdaptive, Epsilon: 1, Seed: 1}, has: true}
	now := time.Unix(0, 0)
	tu := newTestTuner(eng, TunerConfig{Hysteresis: 1, MinInterval: time.Second, MaxK: 12, MaxKn: 64}, &now)
	starving := snap([]float64{0.05}, []float64{0.9})
	for i := 0; i < 6; i++ {
		tu.analyze(starving)
		now = now.Add(2 * time.Second)
	}
	for i, call := range eng.calls {
		if call.K > 12 || call.Kn > call.K {
			t.Fatalf("action %d violated the caps: k=%d kn=%d (MaxK=12)", i, call.K, call.Kn)
		}
	}
	if eng.callCount() == 0 {
		t.Fatal("tuner never acted")
	}
	if got := eng.lastCall(); got.Kn != 12 || got.K != 12 {
		t.Fatalf("final spec k=%d kn=%d, want both clamped to 12", got.K, got.Kn)
	}
}

// TestTunerObserveCopiesSnapshotMaps: the engine hands the same snapshot to
// every composed observer; the tuner must copy the maps before its
// asynchronous analysis reads them.
func TestTunerObserveCopiesSnapshotMaps(t *testing.T) {
	tu := NewTuner(nil, TunerConfig{})
	defer tu.Close()
	original := snap([]float64{0.9}, []float64{0.8})
	tu.Observe(original)
	// Another observer (per the ownership contract) mutates its copy —
	// which is the same map the tuner was handed.
	original.Consumers[0] = 0
	original.Providers[0] = 0
	queued := <-tu.snaps
	if queued.Consumers[0] != 0.9 || queued.Providers[0] != 0.8 {
		t.Fatalf("queued snapshot shares maps with the emitter: %+v", queued)
	}
}

func TestTunerConcurrentClose(t *testing.T) {
	tu := NewTuner(nil, TunerConfig{})
	tu.Start()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tu.Close() // must not panic on a doubly-closed channel
		}()
	}
	wg.Wait()
}

func TestTunerObserveNeverBlocksAndCountsDrops(t *testing.T) {
	tu := NewTuner(nil, TunerConfig{})
	// Not started: the intake buffer (16) fills, the rest drop.
	for i := 0; i < 40; i++ {
		tu.Observe(snap([]float64{0.5}, nil))
	}
	if st := tu.Stats(); st.Dropped != 24 {
		t.Fatalf("dropped = %d, want 24", st.Dropped)
	}
	tu.Close()
}

func TestTunerStartCloseLifecycle(t *testing.T) {
	eng := &fakeEngine{spec: Spec{Kind: SbQA, K: 4, Kn: 1, OmegaMode: OmegaAdaptive, Epsilon: 1}, has: true}
	tu := NewTuner(eng, TunerConfig{Hysteresis: 1, MinInterval: time.Millisecond})
	tu.Start()
	tu.Start() // idempotent
	for i := 0; i < 10; i++ {
		tu.Observe(snap([]float64{0.01}, []float64{0.9}))
	}
	deadline := time.Now().Add(2 * time.Second)
	for eng.callCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if eng.callCount() == 0 {
		t.Fatal("running tuner never acted on a starving snapshot stream")
	}
	tu.Close()
	tu.Close() // idempotent
}
