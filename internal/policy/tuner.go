package policy

// The Tuner closes the paper's self-adaptation loop at the system level: a
// background MAPE-K controller (Monitor–Analyze–Plan–Execute over shared
// Knowledge) that watches the engine's satisfaction snapshot stream and
// retunes the running policy through bounded Reconfigure steps. The paper
// adapts ω per mediation (Equation 2); the Tuner adapts the *process
// parameters themselves* — kn under starvation, fixed-ω toward adaptive
// under consumer/provider imbalance — which Scenario 6 otherwise requires a
// human to sweep by hand.
//
// Safety properties, in order of importance:
//
//   - Bounded: every step moves one parameter by one bounded increment, and
//     hard caps (MaxK, MaxKn) are never exceeded.
//   - Damped: a condition must persist for Hysteresis consecutive snapshots
//     before the tuner acts, and at least MinInterval must elapse between
//     actions — transient noise cannot thrash the policy.
//   - Conservative: only tunable policies (kind "sbqa") are touched; the
//     tuner never changes the allocator kind, the seed, or ε.

import (
	"context"
	"fmt"
	"maps"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sbqa/internal/event"
	"sbqa/internal/qos"
)

// Reconfigurer is the control surface the Tuner drives — implemented by the
// live engine (and its blocking Service).
type Reconfigurer interface {
	// Policy returns the current target policy, if one is installed.
	Policy() (Spec, bool)
	// Reconfigure swaps the running policy at mediation boundaries.
	Reconfigure(ctx context.Context, spec Spec) error
}

// TunerConfig tunes the tuner. The zero value selects the documented
// defaults.
type TunerConfig struct {
	// MinInterval is the minimum wall-clock time between two Reconfigure
	// steps. Default 5s.
	MinInterval time.Duration

	// Hysteresis is how many consecutive snapshots must show a condition
	// before the tuner acts on it. Zero selects the default of 2;
	// negative values mean 1 (act on the first observation).
	Hysteresis int

	// StarvationThreshold marks a consumer as starved when its
	// satisfaction δs falls below it. Default 0.25.
	StarvationThreshold float64

	// ImbalanceThreshold triggers the ω nudge when the absolute gap
	// between mean consumer and mean provider satisfaction exceeds it.
	// Default 0.2.
	ImbalanceThreshold float64

	// MaxK and MaxKn bound how far the tuner may widen the KnBest stages.
	// Defaults 128 and 64.
	MaxK  int
	MaxKn int

	// OmegaStep is how far one action moves a fixed ω toward 0.5 before
	// the mode flips to adaptive. Default 0.25.
	OmegaStep float64

	// BrownoutShedRate is the shed fraction (shed / submissions per
	// pressure interval) above which the brownout controller counts a
	// sample as overload pressure. Default 0.05.
	BrownoutShedRate float64

	// BrownoutWaitP99 is the queue-wait p99 (seconds) above which a
	// pressure sample counts as overload. Default 1s.
	BrownoutWaitP99 float64

	// MinKn is the floor the brownout controller's kn-narrowing step never
	// goes below. Default 2.
	MinKn int

	// Logf, when set, receives one line per analysis decision and action
	// (for operator logs; never required).
	Logf func(format string, args ...any)

	// now is injectable for tests; nil means time.Now.
	now func() time.Time
}

func (c TunerConfig) withDefaults() TunerConfig {
	if c.MinInterval <= 0 {
		c.MinInterval = 5 * time.Second
	}
	if c.Hysteresis < 1 {
		if c.Hysteresis == 0 {
			c.Hysteresis = 2
		} else {
			c.Hysteresis = 1
		}
	}
	if c.StarvationThreshold <= 0 {
		c.StarvationThreshold = 0.25
	}
	if c.ImbalanceThreshold <= 0 {
		c.ImbalanceThreshold = 0.2
	}
	if c.MaxK <= 0 {
		c.MaxK = 128
	}
	if c.MaxKn <= 0 {
		c.MaxKn = 64
	}
	if c.OmegaStep <= 0 {
		c.OmegaStep = 0.25
	}
	if c.BrownoutShedRate <= 0 {
		c.BrownoutShedRate = 0.05
	}
	if c.BrownoutWaitP99 <= 0 {
		c.BrownoutWaitP99 = 1.0
	}
	if c.MinKn <= 0 {
		c.MinKn = 2
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// SetClock injects the tuner's wall clock (tests drive MinInterval without
// sleeping). Must be called before NewTuner consumes the config.
func (c *TunerConfig) SetClock(now func() time.Time) { c.now = now }

// TunerStats is a snapshot of the tuner's counters.
type TunerStats struct {
	// Snapshots is how many satisfaction snapshots the tuner analyzed.
	Snapshots uint64
	// Dropped is how many snapshots were discarded because the analysis
	// loop was behind (the observer callback never blocks).
	Dropped uint64
	// Actions is how many Reconfigure steps the tuner issued.
	Actions uint64
	// BrownoutSteps is how many brownout level changes (up or down) the
	// pressure controller issued.
	BrownoutSteps uint64
}

// Tuner is the autonomic policy controller. Create with NewTuner, feed it
// through Observer() (or Observe directly), Start it, and Close it when the
// engine shuts down.
type Tuner struct {
	cfg TunerConfig

	mu          sync.Mutex
	target      Reconfigurer
	brownTarget BrownoutTarget // nil unless BindBrownout

	snaps    chan event.SatisfactionSnapshot
	pressure chan qos.Pressure
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
	stopOnce sync.Once

	snapshots  atomic.Uint64
	dropped    atomic.Uint64
	actions    atomic.Uint64
	brownSteps atomic.Uint64

	// Controller state, touched only by the run goroutine.
	starveStreak int
	imbalStreak  int
	lastAction   time.Time

	// Brownout controller state (brownout.go), run goroutine only.
	pressureSeeded  bool
	lastEnqueued    uint64
	lastShed        uint64
	hotStreak       int
	calmStreak      int
	lastBrownAction time.Time
}

// NewTuner returns a tuner driving target (which may be nil and bound later
// with Bind — the live engine constructs the tuner before itself exists).
// The tuner is idle until Start.
func NewTuner(target Reconfigurer, cfg TunerConfig) *Tuner {
	return &Tuner{
		cfg:      cfg.withDefaults(),
		target:   target,
		snaps:    make(chan event.SatisfactionSnapshot, 16),
		pressure: make(chan qos.Pressure, 16),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Bind points the tuner at its engine. Snapshots observed while unbound are
// analyzed but produce no action.
func (t *Tuner) Bind(target Reconfigurer) {
	t.mu.Lock()
	t.target = target
	t.mu.Unlock()
}

// Observer adapts the tuner to the engine's event stream: install it (via
// event.Multi) as the engine observer and the snapshot ticker becomes the
// tuner's Monitor phase.
func (t *Tuner) Observer() event.Observer {
	return event.Funcs{SatisfactionSnapshot: t.Observe}
}

// Observe feeds one satisfaction snapshot into the analysis loop. It never
// blocks: when the loop is behind, the snapshot is dropped and counted —
// satisfaction moves slowly, a fresher sample is strictly better than a
// queued stale one. The maps are copied before enqueueing: the engine
// hands the same snapshot to every composed observer, and the contract
// says the maps belong to each receiver — the analysis goroutine must not
// read maps another observer may mutate.
func (t *Tuner) Observe(snap event.SatisfactionSnapshot) {
	select {
	case t.snaps <- copySnapshot(snap):
	default:
		t.dropped.Add(1)
	}
}

// copySnapshot deep-copies the snapshot's maps (see Observe).
func copySnapshot(snap event.SatisfactionSnapshot) event.SatisfactionSnapshot {
	return event.SatisfactionSnapshot{
		Time:      snap.Time,
		Consumers: maps.Clone(snap.Consumers),
		Providers: maps.Clone(snap.Providers),
	}
}

// Start launches the analysis loop. Idempotent.
func (t *Tuner) Start() {
	t.once.Do(func() { go t.run() })
}

// Close stops the analysis loop and waits for it to exit. Safe to call
// before Start (the loop then never runs), more than once, and from
// several goroutines concurrently.
func (t *Tuner) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.once.Do(func() { close(t.done) }) // never started: mark done directly
	<-t.done
}

// Stats snapshots the tuner's counters.
func (t *Tuner) Stats() TunerStats {
	return TunerStats{
		Snapshots:     t.snapshots.Load(),
		Dropped:       t.dropped.Load(),
		Actions:       t.actions.Load(),
		BrownoutSteps: t.brownSteps.Load(),
	}
}

func (t *Tuner) run() {
	defer close(t.done)
	for {
		select {
		case snap := <-t.snaps:
			t.snapshots.Add(1)
			t.analyze(snap)
		case p := <-t.pressure:
			t.analyzePressure(p)
		case <-t.stop:
			return
		}
	}
}

// logf emits one operator-log line when configured.
func (t *Tuner) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// analyze is the Analyze+Plan+Execute phases over one Monitor sample.
func (t *Tuner) analyze(snap event.SatisfactionSnapshot) {
	t.mu.Lock()
	target := t.target
	t.mu.Unlock()
	if target == nil || len(snap.Consumers) == 0 {
		return
	}

	// Analyze: summarize the knowledge sample.
	minC, meanC := math.Inf(1), 0.0
	for _, s := range snap.Consumers {
		meanC += s
		if s < minC {
			minC = s
		}
	}
	meanC /= float64(len(snap.Consumers))
	meanP := 0.0
	for _, s := range snap.Providers {
		meanP += s
	}
	if len(snap.Providers) > 0 {
		meanP /= float64(len(snap.Providers))
	}

	starved := minC < t.cfg.StarvationThreshold
	imbalanced := len(snap.Providers) > 0 && math.Abs(meanC-meanP) > t.cfg.ImbalanceThreshold
	if starved {
		t.starveStreak++
	} else {
		t.starveStreak = 0
	}
	if imbalanced {
		t.imbalStreak++
	} else {
		t.imbalStreak = 0
	}

	spec, ok := target.Policy()
	if !ok || !spec.Tunable() {
		return
	}
	spec = spec.Normalized()

	now := t.cfg.now()
	if !t.lastAction.IsZero() && now.Sub(t.lastAction) < t.cfg.MinInterval {
		return
	}

	// Plan: starvation dominates — a starved consumer means the process is
	// not even *seeing* acceptable candidates, so widen the KnBest funnel;
	// imbalance with everyone fed is a balance problem, so move ω.
	var next Spec
	var reason string
	switch {
	case t.starveStreak >= t.cfg.Hysteresis:
		next, reason = t.planWiden(spec, minC)
	case t.imbalStreak >= t.cfg.Hysteresis:
		next, reason = t.planRebalance(spec, meanC, meanP)
	default:
		return
	}
	if reason == "" {
		return // already at the bounds, or nothing to change
	}

	// Execute.
	if err := target.Reconfigure(context.Background(), next); err != nil {
		t.logf("tuner: reconfigure rejected: %v", err)
		return
	}
	t.actions.Add(1)
	t.lastAction = now
	t.starveStreak, t.imbalStreak = 0, 0
	t.logf("tuner: %s -> %s", reason, next)
}

// planWiden widens the KnBest stages one bounded step: doubling kn (and
// keeping k at least twice kn so stage 1 still has slack to sample from)
// up to the configured caps.
func (t *Tuner) planWiden(spec Spec, minC float64) (Spec, string) {
	if spec.Kn <= 0 {
		// Kn <= 0 disables the utilization filter entirely — every sampled
		// provider is already retained, so there is nothing to widen
		// (Kn=1 would be a drastic *narrowing*, not a step up).
		return spec, ""
	}
	// kn can never exceed k's cap: a kn above MaxK would force k past its
	// own bound below.
	maxKn := t.cfg.MaxKn
	if t.cfg.MaxK < maxKn {
		maxKn = t.cfg.MaxK
	}
	kn := spec.Kn * 2
	if kn <= spec.Kn {
		kn = spec.Kn + 1
	}
	if kn > maxKn {
		kn = maxKn
	}
	k := spec.K
	if k > 0 {
		// K <= 0 samples all of P_q — already the widest stage 1, leave
		// it alone. Otherwise keep k at least twice kn, hard-capped at
		// MaxK (never exceeded: if the cap bites, kn shrinks to fit).
		if k < kn*2 {
			k = kn * 2
		}
		if k > t.cfg.MaxK {
			k = t.cfg.MaxK
		}
		if kn > k {
			kn = k
		}
	}
	if kn == spec.Kn && k == spec.K {
		return spec, ""
	}
	reason := fmt.Sprintf("starvation (min δs(c) %.3f): widen kn %d→%d, k %d→%d",
		minC, spec.Kn, kn, spec.K, k)
	spec.Kn, spec.K = kn, k
	return spec, reason
}

// planRebalance nudges a fixed ω one step toward 0.5 and, once close,
// flips the mode to the satisfaction-adaptive Equation 2 — the rule that
// compensates whichever side is behind automatically. Adaptive policies
// need no nudge.
func (t *Tuner) planRebalance(spec Spec, meanC, meanP float64) (Spec, string) {
	if spec.OmegaMode != OmegaFixed {
		return spec, ""
	}
	if math.Abs(spec.Omega-0.5) > t.cfg.OmegaStep {
		old := spec.Omega
		if spec.Omega > 0.5 {
			spec.Omega -= t.cfg.OmegaStep
		} else {
			spec.Omega += t.cfg.OmegaStep
		}
		return spec, fmt.Sprintf("imbalance (δs(c) %.3f vs δs(p) %.3f): ω %.2f→%.2f",
			meanC, meanP, old, spec.Omega)
	}
	spec.OmegaMode, spec.Omega = OmegaAdaptive, 0
	return spec, fmt.Sprintf("imbalance (δs(c) %.3f vs δs(p) %.3f): ω → adaptive", meanC, meanP)
}
