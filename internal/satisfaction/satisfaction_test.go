package satisfaction

import (
	"math"
	"testing"
	"testing/quick"

	"sbqa/internal/model"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestConsumerQuerySatisfactionEquation1(t *testing.T) {
	tests := []struct {
		name      string
		n         int
		performed []model.Intention
		want      float64
	}{
		{"no-results", 2, nil, 0},
		{"one-of-one-max", 1, []model.Intention{1}, 1},
		{"one-of-one-min", 1, []model.Intention{-1}, 0},
		{"one-of-one-neutral", 1, []model.Intention{0}, 0.5},
		{"two-of-two", 2, []model.Intention{1, 0}, 0.75},
		{"one-of-two", 2, []model.Intention{1}, 0.5},
		{"over-allocation-capped", 1, []model.Intention{1, 1}, 1},
		{"n-zero-repaired", 0, []model.Intention{0}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ConsumerQuerySatisfaction(tt.n, tt.performed); !almostEqual(got, tt.want) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestConsumerQuerySatisfactionBounds(t *testing.T) {
	f := func(raw []float64, n uint8) bool {
		ints := make([]model.Intention, len(raw))
		for i, v := range raw {
			ints[i] = model.Intention(math.Mod(v, 1)).Clamp()
		}
		s := ConsumerQuerySatisfaction(int(n%5)+1, ints)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestQuerySatisfaction(t *testing.T) {
	cands := []model.Intention{-1, 0, 0.5, 1}
	// Best single allocation: the intention-1 provider → unit 1.
	if got := BestQuerySatisfaction(1, cands); !almostEqual(got, 1) {
		t.Errorf("n=1: got %v", got)
	}
	// Best two: units 1 and 0.75 → mean over n=2 is (1+0.75)/2.
	if got := BestQuerySatisfaction(2, cands); !almostEqual(got, 0.875) {
		t.Errorf("n=2: got %v", got)
	}
	// n exceeding candidates: only 4 units available over n=5.
	want := (0.0 + 0.5 + 0.75 + 1.0) / 5
	if got := BestQuerySatisfaction(5, cands); !almostEqual(got, want) {
		t.Errorf("n=5: got %v, want %v", got, want)
	}
	if got := BestQuerySatisfaction(1, nil); got != 0 {
		t.Errorf("empty candidates: got %v", got)
	}
}

func TestBestDominatesObtained(t *testing.T) {
	// Whatever subset performs, best-achievable must dominate obtained.
	f := func(raw []float64, pick uint) bool {
		if len(raw) == 0 {
			return true
		}
		cands := make([]model.Intention, len(raw))
		for i, v := range raw {
			cands[i] = model.Intention(math.Mod(v, 1)).Clamp()
		}
		n := 2
		// Pick an arbitrary subset of size ≤ n as "performed".
		performed := make([]model.Intention, 0, n)
		for i := 0; i < len(cands) && len(performed) < n; i++ {
			if (pick>>uint(i))&1 == 1 {
				performed = append(performed, cands[i])
			}
		}
		return BestQuerySatisfaction(n, cands) >= ConsumerQuerySatisfaction(n, performed)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsumerTrackerDefinition1(t *testing.T) {
	tr := NewConsumer(3)
	if got := tr.Satisfaction(); got != Neutral {
		t.Errorf("cold-start satisfaction = %v, want %v", got, Neutral)
	}
	tr.Record(1, 1, 1)
	tr.Record(0, 1, 0.5)
	if got := tr.Satisfaction(); !almostEqual(got, 0.5) {
		t.Errorf("mean of {1,0} = %v", got)
	}
	tr.Record(0.5, 0.5, 0.5)
	if got := tr.Satisfaction(); !almostEqual(got, 0.5) {
		t.Errorf("mean of {1,0,0.5} = %v", got)
	}
	// Window slides: the fourth record evicts the first (value 1).
	tr.Record(0.2, 1, 0.2)
	want := (0 + 0.5 + 0.2) / 3
	if got := tr.Satisfaction(); !almostEqual(got, want) {
		t.Errorf("after eviction = %v, want %v", got, want)
	}
	if tr.Interactions() != 3 || tr.Window() != 3 {
		t.Errorf("Interactions/Window = %d/%d", tr.Interactions(), tr.Window())
	}
}

func TestConsumerTrackerClamping(t *testing.T) {
	tr := NewConsumer(2)
	tr.Record(7, -3, math.NaN())
	if got := tr.Satisfaction(); got != 1 {
		t.Errorf("clamped obtained = %v, want 1", got)
	}
	if got := tr.Adequation(); got != 0 {
		t.Errorf("NaN adequation should clamp to 0, got %v", got)
	}
}

func TestConsumerTrackerAllocationSatisfaction(t *testing.T) {
	tr := NewConsumer(10)
	if got := tr.AllocationSatisfaction(); got != Neutral {
		t.Errorf("cold start = %v", got)
	}
	tr.Record(0.4, 0.8, 0.5)
	if got := tr.AllocationSatisfaction(); !almostEqual(got, 0.5) {
		t.Errorf("0.4/0.8 = %v", got)
	}
	tr.Record(0.8, 0.8, 0.5)
	if got := tr.AllocationSatisfaction(); !almostEqual(got, 1.2/1.6) {
		t.Errorf("ratio of sums = %v", got)
	}
	// best = 0 everywhere → mediator did all that was possible.
	tr2 := NewConsumer(10)
	tr2.Record(0, 0, 0)
	if got := tr2.AllocationSatisfaction(); got != 1 {
		t.Errorf("0/0 case = %v, want 1", got)
	}
}

func TestConsumerRecordQuery(t *testing.T) {
	tr := NewConsumer(10)
	cands := []model.Intention{1, 0, -1}
	tr.RecordQuery(1, []model.Intention{0}, cands)
	// obtained = 0.5, best = 1, adequation = (1+0.5+0)/3 = 0.5
	if got := tr.Satisfaction(); !almostEqual(got, 0.5) {
		t.Errorf("Satisfaction = %v", got)
	}
	if got := tr.AllocationSatisfaction(); !almostEqual(got, 0.5) {
		t.Errorf("AllocationSatisfaction = %v", got)
	}
	if got := tr.Adequation(); !almostEqual(got, 0.5) {
		t.Errorf("Adequation = %v", got)
	}
}

func TestProviderTrackerDefinition2(t *testing.T) {
	tr := NewProvider(4)
	if got := tr.Satisfaction(); got != Neutral {
		t.Errorf("cold-start = %v, want Neutral", got)
	}
	// Proposed but never performed → Definition 2 says exactly 0.
	tr.Record(1, false)
	if got := tr.Satisfaction(); got != 0 {
		t.Errorf("proposed-not-performed = %v, want 0", got)
	}
	// Performs a liked query: (1+1)/2 = 1 over the single performed one.
	tr.Record(1, true)
	if got := tr.Satisfaction(); !almostEqual(got, 1) {
		t.Errorf("after performing liked = %v", got)
	}
	// Performs a disliked query too: mean of unit(1)=1 and unit(-1)=0.
	tr.Record(-1, true)
	if got := tr.Satisfaction(); !almostEqual(got, 0.5) {
		t.Errorf("mixed performed = %v", got)
	}
	if got := tr.PerformedShare(); !almostEqual(got, 2.0/3) {
		t.Errorf("PerformedShare = %v", got)
	}
}

func TestProviderTrackerWindowEviction(t *testing.T) {
	tr := NewProvider(2)
	tr.Record(1, true)  // will be evicted
	tr.Record(0, false) // stays
	tr.Record(0, true)  // stays; unit(0) = 0.5
	if got := tr.Satisfaction(); !almostEqual(got, 0.5) {
		t.Errorf("after eviction = %v, want 0.5", got)
	}
	if tr.Interactions() != 2 {
		t.Errorf("Interactions = %d, want 2", tr.Interactions())
	}
}

func TestProviderAdequationAndAllocation(t *testing.T) {
	tr := NewProvider(10)
	if got := tr.Adequation(); got != Neutral {
		t.Errorf("cold adequation = %v", got)
	}
	if got := tr.AllocationSatisfaction(); got != Neutral {
		t.Errorf("cold alloc-sat = %v", got)
	}
	tr.Record(1, true)   // unit 1, performed
	tr.Record(0, false)  // unit 0.5, proposed only
	tr.Record(-1, false) // unit 0, proposed only
	// adequation = (1+0.5+0)/3 = 0.5; satisfaction = 1; ratio capped at 1.
	if got := tr.Adequation(); !almostEqual(got, 0.5) {
		t.Errorf("Adequation = %v", got)
	}
	if got := tr.AllocationSatisfaction(); got != 1 {
		t.Errorf("AllocationSatisfaction = %v, want 1 (capped)", got)
	}
	// All-dislike stream: adequation 0 → allocation satisfaction 1 (nothing
	// better was possible).
	tr2 := NewProvider(10)
	tr2.Record(-1, false)
	if got := tr2.AllocationSatisfaction(); got != 1 {
		t.Errorf("zero-adequation alloc-sat = %v", got)
	}
}

func TestProviderSatisfactionBoundsProperty(t *testing.T) {
	f := func(raw []float64, mask uint64) bool {
		tr := NewProvider(16)
		for i, v := range raw {
			pi := model.Intention(math.Mod(v, 1)).Clamp()
			tr.Record(pi, (mask>>uint(i%64))&1 == 1)
		}
		s := tr.Satisfaction()
		a := tr.Adequation()
		al := tr.AllocationSatisfaction()
		return s >= 0 && s <= 1 && a >= 0 && a <= 1 && al >= 0 && al <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrackerWindowDefaults(t *testing.T) {
	if NewConsumer(0).Window() != DefaultWindow {
		t.Error("consumer default window not applied")
	}
	if NewProvider(-3).Window() != DefaultWindow {
		t.Error("provider default window not applied")
	}
}
