package satisfaction

// This file is the durability surface of the satisfaction model: trackers
// export the exact contents of their sliding windows — not just the derived
// δs — and rebuild from that state bit-identically. Exactness matters
// because every derived value (Satisfaction, Adequation,
// AllocationSatisfaction) is a float64 sum over the ring buffer in slot
// order: restoring the same records in a different order could change the
// rounding of the sum, and the adaptive ω of Equation 2 would drift after a
// restart. The export therefore captures the ring layout itself (slot order
// plus the write cursor), and the per-stripe registry iteration lets the
// persistence layer walk a million-participant registry without ever holding
// more than one stripe lock.

import (
	"fmt"

	"sbqa/internal/model"
)

// ConsumerRecordState is one remembered query interaction in export form.
type ConsumerRecordState struct {
	Obtained   float64
	Best       float64
	Adequation float64
}

// ConsumerState is the full serializable state of one consumer tracker: the
// window length, the write cursor, and the remembered records in ring-slot
// order (slot 0 first — NOT chronological order once the ring has wrapped).
// Restoring it with NewConsumerFromState yields a tracker whose every
// derived value is bit-identical to the exported one's.
type ConsumerState struct {
	K       int
	Next    int
	Records []ConsumerRecordState
}

// ExportState captures the tracker's window contents.
func (t *ConsumerTracker) ExportState() ConsumerState {
	st := ConsumerState{K: t.k, Next: t.next, Records: make([]ConsumerRecordState, t.n)}
	for i := 0; i < t.n; i++ {
		st.Records[i] = ConsumerRecordState{
			Obtained:   t.buf[i].obtained,
			Best:       t.buf[i].best,
			Adequation: t.buf[i].adequation,
		}
	}
	return st
}

// validateWindow checks the ring invariants shared by both tracker kinds:
// records fit the window, the cursor is in range, and a partially filled
// ring has its cursor exactly past the last record (the only layout Record
// can produce before the first wrap).
func validateWindow(k, next, n int) error {
	if k < 1 {
		return fmt.Errorf("satisfaction: window %d < 1", k)
	}
	if n > k {
		return fmt.Errorf("satisfaction: %d records exceed window %d", n, k)
	}
	if next < 0 || next >= k {
		return fmt.Errorf("satisfaction: cursor %d outside window %d", next, k)
	}
	if n < k && next != n {
		return fmt.Errorf("satisfaction: cursor %d inconsistent with %d records in window %d", next, n, k)
	}
	return nil
}

// NewConsumerFromState rebuilds a tracker from an exported state. Values are
// restored exactly as exported (no clamping): the exporter only ever saw
// clamped records, and re-clamping would mask codec bugs.
func NewConsumerFromState(st ConsumerState) (*ConsumerTracker, error) {
	if err := validateWindow(st.K, st.Next, len(st.Records)); err != nil {
		return nil, err
	}
	t := &ConsumerTracker{k: st.K, buf: make([]consumerRecord, st.K), next: st.Next, n: len(st.Records)}
	for i, r := range st.Records {
		t.buf[i] = consumerRecord{obtained: r.Obtained, best: r.Best, adequation: r.Adequation}
	}
	return t, nil
}

// ProviderRecordState is one remembered proposal in export form.
type ProviderRecordState struct {
	Intention float64
	Performed bool
}

// ProviderState is the full serializable state of one provider tracker; see
// ConsumerState for the layout contract.
type ProviderState struct {
	K       int
	Next    int
	Records []ProviderRecordState
}

// ExportState captures the tracker's window contents.
func (t *ProviderTracker) ExportState() ProviderState {
	st := ProviderState{K: t.k, Next: t.next, Records: make([]ProviderRecordState, t.n)}
	for i := 0; i < t.n; i++ {
		st.Records[i] = ProviderRecordState{Intention: t.buf[i].intention, Performed: t.buf[i].performed}
	}
	return st
}

// NewProviderFromState rebuilds a tracker from an exported state.
func NewProviderFromState(st ProviderState) (*ProviderTracker, error) {
	if err := validateWindow(st.K, st.Next, len(st.Records)); err != nil {
		return nil, err
	}
	t := &ProviderTracker{k: st.K, buf: make([]providerRecord, st.K), next: st.Next, n: len(st.Records)}
	for i, r := range st.Records {
		t.buf[i] = providerRecord{intention: r.Intention, performed: r.Performed}
	}
	return t, nil
}

// Stripes returns the number of lock stripes per participant kind — the
// granularity of the export iteration.
func (r *Registry) Stripes() int { return shardCount }

// ExportConsumerStripe calls fn with the exported state of every consumer on
// stripe i, under that stripe's read lock. fn must not call back into the
// registry. Stripe indices outside [0, Stripes()) export nothing.
func (r *Registry) ExportConsumerStripe(i int, fn func(model.ConsumerID, ConsumerState)) {
	if i < 0 || i >= shardCount {
		return
	}
	sh := &r.consumers[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for id, t := range sh.m {
		fn(id, t.ExportState())
	}
}

// ExportProviderStripe calls fn with the exported state of every provider on
// stripe i, under that stripe's read lock; see ExportConsumerStripe.
func (r *Registry) ExportProviderStripe(i int, fn func(model.ProviderID, ProviderState)) {
	if i < 0 || i >= shardCount {
		return
	}
	sh := &r.providers[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for id, t := range sh.m {
		fn(id, t.ExportState())
	}
}

// ImportConsumer installs a tracker rebuilt from st for consumer c,
// replacing any existing tracker.
func (r *Registry) ImportConsumer(c model.ConsumerID, st ConsumerState) error {
	t, err := NewConsumerFromState(st)
	if err != nil {
		return fmt.Errorf("consumer %d: %w", c, err)
	}
	sh := r.cshard(c)
	sh.mu.Lock()
	sh.m[c] = t
	sh.mu.Unlock()
	return nil
}

// ImportProvider installs a tracker rebuilt from st for provider p,
// replacing any existing tracker.
func (r *Registry) ImportProvider(p model.ProviderID, st ProviderState) error {
	t, err := NewProviderFromState(st)
	if err != nil {
		return fmt.Errorf("provider %d: %w", p, err)
	}
	sh := r.pshard(p)
	sh.mu.Lock()
	sh.m[p] = t
	sh.mu.Unlock()
	return nil
}
