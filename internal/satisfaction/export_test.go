package satisfaction

import (
	"testing"

	"sbqa/internal/model"
)

// TestTrackerExportRoundTripBitIdentical drives trackers through enough
// records to wrap the ring, round-trips them through export/import, and
// requires every derived value to be bit-identical — the contract the warm
// restart depends on.
func TestTrackerExportRoundTripBitIdentical(t *testing.T) {
	for _, records := range []int{0, 1, 4, 7, 13} {
		const k = 7
		ct := NewConsumer(k)
		pt := NewProvider(k)
		for i := 0; i < records; i++ {
			ct.Record(float64(i%5)/4.9, float64(i%3)/2.7, float64(i%7)/6.3)
			pt.Record(model.Intention(float64(i%9)/4.5-1), i%3 != 0)
		}

		ct2, err := NewConsumerFromState(ct.ExportState())
		if err != nil {
			t.Fatalf("records=%d: consumer import: %v", records, err)
		}
		pt2, err := NewProviderFromState(pt.ExportState())
		if err != nil {
			t.Fatalf("records=%d: provider import: %v", records, err)
		}

		if a, b := ct.Satisfaction(), ct2.Satisfaction(); a != b {
			t.Errorf("records=%d: consumer δs %v != %v", records, a, b)
		}
		if a, b := ct.Adequation(), ct2.Adequation(); a != b {
			t.Errorf("records=%d: consumer δa %v != %v", records, a, b)
		}
		if a, b := ct.AllocationSatisfaction(), ct2.AllocationSatisfaction(); a != b {
			t.Errorf("records=%d: consumer alloc-sat %v != %v", records, a, b)
		}
		if a, b := pt.Satisfaction(), pt2.Satisfaction(); a != b {
			t.Errorf("records=%d: provider δs %v != %v", records, a, b)
		}
		if a, b := pt.Adequation(), pt2.Adequation(); a != b {
			t.Errorf("records=%d: provider δa %v != %v", records, a, b)
		}
		if a, b := pt.PerformedShare(), pt2.PerformedShare(); a != b {
			t.Errorf("records=%d: provider performed share %v != %v", records, a, b)
		}

		// The restored ring must also EVOLVE identically: record one more
		// interaction on both and compare again (the cursor position matters
		// here, not just the sums).
		ct.Record(0.3, 0.9, 0.5)
		ct2.Record(0.3, 0.9, 0.5)
		pt.Record(0.4, true)
		pt2.Record(0.4, true)
		if a, b := ct.Satisfaction(), ct2.Satisfaction(); a != b {
			t.Errorf("records=%d: post-restore consumer δs %v != %v", records, a, b)
		}
		if a, b := pt.Satisfaction(), pt2.Satisfaction(); a != b {
			t.Errorf("records=%d: post-restore provider δs %v != %v", records, a, b)
		}
	}
}

// TestTrackerImportRejectsIncoherentState: corrupt ring layouts must error,
// never build a tracker that would index out of range later.
func TestTrackerImportRejectsIncoherentState(t *testing.T) {
	cases := []ConsumerState{
		{K: 0, Next: 0}, // no window
		{K: 2, Next: 0, Records: make([]ConsumerRecordState, 3)},  // overfull
		{K: 4, Next: 4, Records: make([]ConsumerRecordState, 4)},  // cursor out of range
		{K: 4, Next: -1, Records: make([]ConsumerRecordState, 4)}, // negative cursor
		{K: 4, Next: 3, Records: make([]ConsumerRecordState, 2)},  // cursor ≠ fill point
	}
	for i, st := range cases {
		if _, err := NewConsumerFromState(st); err == nil {
			t.Errorf("case %d: expected error for %+v", i, st)
		}
		if _, err := NewProviderFromState(ProviderState{K: st.K, Next: st.Next, Records: make([]ProviderRecordState, len(st.Records))}); err == nil {
			t.Errorf("case %d: provider variant accepted %+v", i, st)
		}
	}
}

// TestRegistryStripeExportImport round-trips a populated registry through
// the per-stripe iteration into a fresh registry and compares every
// participant's derived values.
func TestRegistryStripeExportImport(t *testing.T) {
	const participants = 200
	src := NewRegistry(10)
	for i := 0; i < participants; i++ {
		ct := src.Consumer(model.ConsumerID(i))
		pt := src.Provider(model.ProviderID(i))
		for j := 0; j <= i%15; j++ {
			ct.Record(float64(j%4)/3.1, 0.8, float64(j%2))
			pt.Record(model.Intention(float64(j%5)/2.5-1), j%2 == 0)
		}
	}

	dst := NewRegistry(10)
	exported := 0
	for s := 0; s < src.Stripes(); s++ {
		src.ExportConsumerStripe(s, func(id model.ConsumerID, st ConsumerState) {
			if err := dst.ImportConsumer(id, st); err != nil {
				t.Fatalf("import consumer %d: %v", id, err)
			}
			exported++
		})
		src.ExportProviderStripe(s, func(id model.ProviderID, st ProviderState) {
			if err := dst.ImportProvider(id, st); err != nil {
				t.Fatalf("import provider %d: %v", id, err)
			}
			exported++
		})
	}
	if exported != 2*participants {
		t.Fatalf("exported %d states, want %d", exported, 2*participants)
	}
	for i := 0; i < participants; i++ {
		c, p := model.ConsumerID(i), model.ProviderID(i)
		if a, b := src.ConsumerSatisfaction(c), dst.ConsumerSatisfaction(c); a != b {
			t.Errorf("consumer %d δs: %v != %v", i, a, b)
		}
		if a, b := src.ConsumerAdequation(c), dst.ConsumerAdequation(c); a != b {
			t.Errorf("consumer %d δa: %v != %v", i, a, b)
		}
		if a, b := src.ProviderSatisfaction(p), dst.ProviderSatisfaction(p); a != b {
			t.Errorf("provider %d δs: %v != %v", i, a, b)
		}
		if a, b := src.ProviderAdequation(p), dst.ProviderAdequation(p); a != b {
			t.Errorf("provider %d δa: %v != %v", i, a, b)
		}
	}
}
