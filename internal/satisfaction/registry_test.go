package satisfaction

import (
	"math"
	"testing"

	"sbqa/internal/model"
)

func TestRegistryLazyTrackers(t *testing.T) {
	r := NewRegistry(10)
	if r.Window() != 10 {
		t.Errorf("Window = %d", r.Window())
	}
	if got := r.ConsumerSatisfaction(3); got != Neutral {
		t.Errorf("unknown consumer = %v, want Neutral", got)
	}
	if got := r.ProviderSatisfaction(4); got != Neutral {
		t.Errorf("unknown provider = %v, want Neutral", got)
	}
	c := r.Consumer(3)
	if c == nil || r.Consumer(3) != c {
		t.Error("Consumer should create then reuse the tracker")
	}
	p := r.Provider(4)
	if p == nil || r.Provider(4) != p {
		t.Error("Provider should create then reuse the tracker")
	}
	if len(r.ConsumerIDs()) != 1 || len(r.ProviderIDs()) != 1 {
		t.Error("ID listings wrong")
	}
}

func TestRegistryDefaultWindow(t *testing.T) {
	r := NewRegistry(0)
	if r.Window() != DefaultWindow {
		t.Errorf("Window = %d, want %d", r.Window(), DefaultWindow)
	}
}

func TestRegistryForget(t *testing.T) {
	r := NewRegistry(5)
	r.Consumer(1).Record(1, 1, 1)
	r.Provider(2).Record(1, true)
	r.Forget(1, 2)
	if got := r.ConsumerSatisfaction(1); got != Neutral {
		t.Errorf("forgotten consumer = %v", got)
	}
	if got := r.ProviderSatisfaction(2); got != Neutral {
		t.Errorf("forgotten provider = %v", got)
	}
	// Sentinel values forget nothing and must not panic.
	r.Forget(model.NoConsumer, model.NoProvider)
	r.Consumer(7).Record(0.2, 1, 1)
	r.ForgetConsumer(7)
	if got := r.ConsumerSatisfaction(7); got != Neutral {
		t.Error("ForgetConsumer did not forget")
	}
	r.Provider(8).Record(1, true)
	r.ForgetProvider(8)
	if got := r.ProviderSatisfaction(8); got != Neutral {
		t.Error("ForgetProvider did not forget")
	}
}

func TestRegistryRecordAllocation(t *testing.T) {
	r := NewRegistry(10)
	a := &model.Allocation{
		Query:              model.Query{ID: 1, Consumer: 0, N: 1, Work: 1},
		Selected:           []model.ProviderID{10},
		Proposed:           []model.ProviderID{10, 11},
		ConsumerIntentions: []model.Intention{1, -1},
		ProviderIntentions: []model.Intention{0, 1},
	}
	r.RecordAllocation(a, nil)

	// Consumer got its preferred provider: obtained = unit(1) = 1.
	if got := r.ConsumerSatisfaction(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("consumer δs = %v, want 1", got)
	}
	// Provider 10 performed a query it was neutral about: unit(0) = 0.5.
	if got := r.ProviderSatisfaction(10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("provider 10 δs = %v, want 0.5", got)
	}
	// Provider 11 was proposed but not selected → Definition 2 gives 0.
	if got := r.ProviderSatisfaction(11); got != 0 {
		t.Errorf("provider 11 δs = %v, want 0", got)
	}

	sats := r.ConsumerSatisfactions()
	if len(sats) != 1 || math.Abs(sats[0]-1) > 1e-12 {
		t.Errorf("ConsumerSatisfactions = %v", sats)
	}
	psats := r.ProviderSatisfactions()
	if len(psats) != 2 {
		t.Errorf("ProviderSatisfactions = %v", psats)
	}
}

func TestRegistryRecordAllocationWithCandidates(t *testing.T) {
	r := NewRegistry(10)
	a := &model.Allocation{
		Query:              model.Query{ID: 2, Consumer: 5, N: 1, Work: 1},
		Selected:           []model.ProviderID{1},
		Proposed:           []model.ProviderID{1},
		ConsumerIntentions: []model.Intention{0},
		ProviderIntentions: []model.Intention{1},
	}
	// Full candidate set had a much better provider (intention 1) that the
	// allocator did not even propose.
	candidates := []model.Intention{0, 1}
	r.RecordAllocation(a, candidates)
	tr := r.Consumer(5)
	// obtained = 0.5, best over candidates = 1 → allocation satisfaction 0.5.
	if got := tr.AllocationSatisfaction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AllocationSatisfaction = %v, want 0.5", got)
	}
}

func TestRegistryUnallocatedQueryDissatisfies(t *testing.T) {
	r := NewRegistry(10)
	a := &model.Allocation{
		Query:    model.Query{ID: 3, Consumer: 2, N: 2, Work: 1},
		Selected: nil,
		Proposed: nil,
	}
	r.RecordAllocation(a, []model.Intention{1, 1})
	if got := r.ConsumerSatisfaction(2); got != 0 {
		t.Errorf("unallocated query δs = %v, want 0", got)
	}
}
