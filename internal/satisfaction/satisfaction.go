// Package satisfaction implements the satisfaction model of the SbQA paper
// (Section II): sliding-window interaction memories for consumers and
// providers, the per-query consumer satisfaction δs(c,q) of Equation 1, the
// long-run consumer satisfaction δs(c) of Definition 1, and the provider
// satisfaction δs(p) of Definition 2.
//
// It also implements the two companion notions the paper mentions but
// delegates to the authors' VLDB'07 model: adequation (how well the stream
// of queries matches a participant's interests, independent of the
// mediator's choices) and allocation satisfaction (how well the mediator did
// relative to the best it could have done). Those two feed analysis output
// only; the allocation process itself uses δs alone.
//
// All satisfactions live in [0, 1]; intentions live in [-1, 1] and are mapped
// to [0, 1] via (x+1)/2 (model.Intention.Unit).
package satisfaction

import (
	"math"

	"sbqa/internal/model"
)

// DefaultWindow is the default number k of interactions a participant
// remembers. The paper assumes every participant uses the same k for
// simplicity; the trackers accept any per-participant value.
const DefaultWindow = 100

// Neutral is the satisfaction reported before a participant has any
// interaction to judge: a cold-start participant is neither satisfied nor
// dissatisfied. Definition 2's "0 if SQ = ∅" is applied once the provider
// has at least one *proposed* query in its window; before any proposal at
// all there is no evidence either way, and returning 0 would make the
// adaptive ω of Equation 2 swing violently at system start.
const Neutral = 0.5

// ConsumerQuerySatisfaction computes δs(c, q) — Equation 1 of the paper:
//
//	δs(c,q) = (1/n) · Σ_{p ∈ P̂q} (CI_q[p]+1)/2
//
// where n is the number of results the consumer required and performed holds
// CI_q[p] for each provider p that actually performed q (the set P̂q). If
// fewer than n providers performed the query, the missing results contribute
// zero — an unserved consumer is an unsatisfied consumer.
func ConsumerQuerySatisfaction(n int, performed []model.Intention) float64 {
	if n < 1 {
		n = 1
	}
	var sum float64
	for _, ci := range performed {
		sum += ci.Unit()
	}
	s := sum / float64(n)
	if s > 1 {
		// More results than required (the mediator over-allocated);
		// satisfaction is capped at fully satisfied.
		return 1
	}
	return s
}

// BestQuerySatisfaction computes the best δs(c, q) the mediator could have
// delivered for the query: allocating it to the n providers of the candidate
// set with the highest consumer intentions. candidates holds CI_q[p] for
// every provider able to perform q (the set P_q). It is the denominator of
// the consumer's allocation satisfaction.
func BestQuerySatisfaction(n int, candidates []model.Intention) float64 {
	if n < 1 {
		n = 1
	}
	if len(candidates) == 0 {
		return 0
	}
	// Top-n by intention, via partial selection (n is tiny in practice —
	// small enough for a stack buffer on every realistic query; the heap
	// fallback keeps correctness for pathological n).
	var topArr [16]float64
	var top []float64
	if n <= len(topArr) {
		top = topArr[:0]
	} else {
		top = make([]float64, 0, n)
	}
	for _, ci := range candidates {
		u := ci.Unit()
		if len(top) < n {
			top = append(top, u)
			continue
		}
		// Replace the smallest if u beats it.
		minIdx := 0
		for i := 1; i < len(top); i++ {
			if top[i] < top[minIdx] {
				minIdx = i
			}
		}
		if u > top[minIdx] {
			top[minIdx] = u
		}
	}
	var sum float64
	for _, u := range top {
		sum += u
	}
	s := sum / float64(n)
	if s > 1 {
		return 1
	}
	return s
}

// consumerRecord is one remembered query interaction.
type consumerRecord struct {
	obtained   float64 // δs(c,q)
	best       float64 // best achievable δs(c,q) given P_q
	adequation float64 // mean intention toward P_q, in [0,1]
}

// ConsumerTracker maintains a consumer's interaction memory IQ_c^k and
// derives its long-run satisfaction (Definition 1), adequation and
// allocation satisfaction. The zero value is not usable; call NewConsumer.
type ConsumerTracker struct {
	k    int
	buf  []consumerRecord
	next int
	n    int // number of valid records (≤ k)
}

// NewConsumer returns a tracker remembering the k last queries. k < 1 falls
// back to DefaultWindow.
func NewConsumer(k int) *ConsumerTracker {
	if k < 1 {
		k = DefaultWindow
	}
	return &ConsumerTracker{k: k, buf: make([]consumerRecord, k)}
}

// Window returns k, the memory length.
func (t *ConsumerTracker) Window() int { return t.k }

// Interactions returns how many queries are currently remembered (≤ k).
func (t *ConsumerTracker) Interactions() int { return t.n }

// Record remembers the outcome of one query: the obtained per-query
// satisfaction, the best achievable one, and the adequation of the candidate
// set (mean unit intention over P_q). Values are clamped to [0, 1].
func (t *ConsumerTracker) Record(obtained, best, adequation float64) {
	rec := consumerRecord{
		obtained:   clamp01(obtained),
		best:       clamp01(best),
		adequation: clamp01(adequation),
	}
	t.buf[t.next] = rec
	t.next = (t.next + 1) % t.k
	if t.n < t.k {
		t.n++
	}
}

// RecordQuery is a convenience wrapper computing Equation 1 and the best
// achievable satisfaction from raw intentions, then recording them.
// performed holds CI_q[p] for providers that performed q; candidates holds
// CI_q[p] for all of P_q.
func (t *ConsumerTracker) RecordQuery(n int, performed, candidates []model.Intention) {
	obtained := ConsumerQuerySatisfaction(n, performed)
	best := BestQuerySatisfaction(n, candidates)
	var adq float64
	if len(candidates) > 0 {
		var sum float64
		for _, ci := range candidates {
			sum += ci.Unit()
		}
		adq = sum / float64(len(candidates))
	}
	t.Record(obtained, best, adq)
}

// Satisfaction returns δs(c) — Definition 1: the mean of the obtained
// per-query satisfactions over the remembered window; Neutral before any
// interaction.
func (t *ConsumerTracker) Satisfaction() float64 {
	if t.n == 0 {
		return Neutral
	}
	var sum float64
	for i := 0; i < t.n; i++ {
		sum += t.buf[i].obtained
	}
	return sum / float64(t.n)
}

// Adequation returns δa(c): the mean adequation of the candidate sets the
// system offered for the remembered queries — how well the system *could*
// serve this consumer, regardless of the mediator's decisions. Neutral
// before any interaction.
func (t *ConsumerTracker) Adequation() float64 {
	if t.n == 0 {
		return Neutral
	}
	var sum float64
	for i := 0; i < t.n; i++ {
		sum += t.buf[i].adequation
	}
	return sum / float64(t.n)
}

// AllocationSatisfaction returns how close the mediator came to the best it
// could have done for this consumer: mean(obtained) / mean(best) over the
// window, clamped to [0, 1]; 1 when nothing better was possible. Neutral
// before any interaction.
func (t *ConsumerTracker) AllocationSatisfaction() float64 {
	if t.n == 0 {
		return Neutral
	}
	var obt, best float64
	for i := 0; i < t.n; i++ {
		obt += t.buf[i].obtained
		best += t.buf[i].best
	}
	if best == 0 {
		return 1
	}
	r := obt / best
	if r > 1 {
		return 1
	}
	return r
}

// providerRecord is one remembered proposal.
type providerRecord struct {
	intention float64 // unit-mapped expressed intention (PPI+1)/2
	performed bool
}

// ProviderTracker maintains a provider's memory of the k last queries the
// mediator *proposed* to it (vector PPI_p in the paper) and which of those
// it actually performed (set SQ_p^k), and derives Definition 2 satisfaction
// plus adequation and allocation satisfaction. The zero value is not usable;
// call NewProvider.
type ProviderTracker struct {
	k    int
	buf  []providerRecord
	next int
	n    int
}

// NewProvider returns a tracker remembering the k last proposed queries.
// k < 1 falls back to DefaultWindow.
func NewProvider(k int) *ProviderTracker {
	if k < 1 {
		k = DefaultWindow
	}
	return &ProviderTracker{k: k, buf: make([]providerRecord, k)}
}

// Window returns k, the memory length.
func (t *ProviderTracker) Window() int { return t.k }

// Interactions returns how many proposals are currently remembered (≤ k).
func (t *ProviderTracker) Interactions() int { return t.n }

// Record remembers one proposal: the intention the provider expressed for
// the query and whether the mediator allocated the query to it.
func (t *ProviderTracker) Record(pi model.Intention, performed bool) {
	t.buf[t.next] = providerRecord{intention: pi.Clamp().Unit(), performed: performed}
	t.next = (t.next + 1) % t.k
	if t.n < t.k {
		t.n++
	}
}

// Satisfaction returns δs(p) — Definition 2: the mean unit intention over
// the performed queries among the k last proposed; 0 if it performed none of
// them; Neutral before any proposal at all (see the Neutral doc).
func (t *ProviderTracker) Satisfaction() float64 {
	if t.n == 0 {
		return Neutral
	}
	var sum float64
	count := 0
	for i := 0; i < t.n; i++ {
		if t.buf[i].performed {
			sum += t.buf[i].intention
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Adequation returns δa(p): the mean unit intention over *all* remembered
// proposals — how interesting the query stream reaching this provider is,
// regardless of whether the mediator ultimately allocated the queries to it.
// Neutral before any proposal.
func (t *ProviderTracker) Adequation() float64 {
	if t.n == 0 {
		return Neutral
	}
	var sum float64
	for i := 0; i < t.n; i++ {
		sum += t.buf[i].intention
	}
	return sum / float64(t.n)
}

// AllocationSatisfaction relates what the provider got to what the proposal
// stream offered: δs(p) / δa(p), clamped to [0, 1]. A provider that performs
// exactly the queries it likes scores high even if it performs few; Neutral
// before any proposal.
func (t *ProviderTracker) AllocationSatisfaction() float64 {
	if t.n == 0 {
		return Neutral
	}
	adq := t.Adequation()
	if adq == 0 {
		return 1
	}
	r := t.Satisfaction() / adq
	if r > 1 {
		return 1
	}
	return r
}

// PerformedShare returns the fraction of remembered proposals the provider
// performed — a load-oriented companion metric.
func (t *ProviderTracker) PerformedShare() float64 {
	if t.n == 0 {
		return 0
	}
	count := 0
	for i := 0; i < t.n; i++ {
		if t.buf[i].performed {
			count++
		}
	}
	return float64(count) / float64(t.n)
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
