package satisfaction

import (
	"sync"

	"sbqa/internal/model"
)

// shardCount is the number of lock stripes per participant kind. Sixteen
// stripes keep contention negligible for the live engine's shard counts
// (queries route by consumer, so consumer stripes see at most one writer per
// engine shard) while the per-registry footprint stays small.
const shardCount = 16

// shardOf spreads participant IDs over the stripes. IDs are dense small
// integers, so a Fibonacci-style multiplicative hash keeps adjacent IDs on
// different stripes without any modulo bias.
func shardOf(id int64) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> 60)
}

type consumerShard struct {
	mu sync.RWMutex
	m  map[model.ConsumerID]*ConsumerTracker
}

type providerShard struct {
	mu sync.RWMutex
	m  map[model.ProviderID]*ProviderTracker
}

// Registry holds the satisfaction trackers of every participant known to a
// mediator. The mediator records every mediation outcome here, and the SbQA
// allocator reads δs(c) and δs(p) from it to compute the adaptive balance ω
// of Equation 2.
//
// Registry is safe for concurrent use: the tracker maps are lock-striped by
// participant ID, so the engine's mediator shards record and read in
// parallel with contention only when two shards touch the same stripe. All
// mutation done *through the registry* (RecordAllocation, Forget*,
// SetXWindow) happens under the owning stripe's lock.
//
// The trackers returned by Consumer and Provider are NOT themselves
// synchronized: they hand out direct access for the single-threaded
// embeddings (the event-driven simulator, the experiment harness). Callers
// that mediate concurrently must stick to the registry-level methods and
// must not mutate a tracker obtained this way while mediations are in
// flight.
type Registry struct {
	k         int
	consumers [shardCount]consumerShard
	providers [shardCount]providerShard
}

// NewRegistry returns a registry creating trackers with window k on demand.
func NewRegistry(k int) *Registry {
	if k < 1 {
		k = DefaultWindow
	}
	r := &Registry{k: k}
	for i := range r.consumers {
		r.consumers[i].m = make(map[model.ConsumerID]*ConsumerTracker)
	}
	for i := range r.providers {
		r.providers[i].m = make(map[model.ProviderID]*ProviderTracker)
	}
	return r
}

// Window returns the memory length used for new trackers.
func (r *Registry) Window() int { return r.k }

func (r *Registry) cshard(c model.ConsumerID) *consumerShard {
	return &r.consumers[shardOf(int64(c))]
}

func (r *Registry) pshard(p model.ProviderID) *providerShard {
	return &r.providers[shardOf(int64(p))]
}

// SetConsumerWindow installs a tracker with a participant-specific memory
// length for consumer c, replacing any existing tracker (the paper allows
// each participant its own k, "depending on its memory capacity"; the demo
// assumes a common value for simplicity). Existing history is discarded.
func (r *Registry) SetConsumerWindow(c model.ConsumerID, k int) *ConsumerTracker {
	t := NewConsumer(k)
	sh := r.cshard(c)
	sh.mu.Lock()
	sh.m[c] = t
	sh.mu.Unlock()
	return t
}

// SetProviderWindow installs a tracker with a participant-specific memory
// length for provider p, replacing any existing tracker.
func (r *Registry) SetProviderWindow(p model.ProviderID, k int) *ProviderTracker {
	t := NewProvider(k)
	sh := r.pshard(p)
	sh.mu.Lock()
	sh.m[p] = t
	sh.mu.Unlock()
	return t
}

// Consumer returns (creating if needed) the tracker for consumer c. The
// returned tracker is unsynchronized; see the Registry doc.
func (r *Registry) Consumer(c model.ConsumerID) *ConsumerTracker {
	sh := r.cshard(c)
	sh.mu.Lock()
	t, ok := sh.m[c]
	if !ok {
		t = NewConsumer(r.k)
		sh.m[c] = t
	}
	sh.mu.Unlock()
	return t
}

// Provider returns (creating if needed) the tracker for provider p. The
// returned tracker is unsynchronized; see the Registry doc.
func (r *Registry) Provider(p model.ProviderID) *ProviderTracker {
	sh := r.pshard(p)
	sh.mu.Lock()
	t, ok := sh.m[p]
	if !ok {
		t = NewProvider(r.k)
		sh.m[p] = t
	}
	sh.mu.Unlock()
	return t
}

// ConsumerSatisfaction returns δs(c), Neutral for unknown consumers.
func (r *Registry) ConsumerSatisfaction(c model.ConsumerID) float64 {
	sh := r.cshard(c)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if t, ok := sh.m[c]; ok {
		return t.Satisfaction()
	}
	return Neutral
}

// ProviderSatisfaction returns δs(p), Neutral for unknown providers.
func (r *Registry) ProviderSatisfaction(p model.ProviderID) float64 {
	sh := r.pshard(p)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if t, ok := sh.m[p]; ok {
		return t.Satisfaction()
	}
	return Neutral
}

// ConsumerAdequation returns δa(c) — the mean unit intention consumer c has
// expressed toward the candidate sets of its remembered queries — Neutral for
// unknown consumers. The batched intention protocol imputes a silent
// consumer's CI_q from this value: the consumer's historical average interest
// stands in for the answer it did not give.
func (r *Registry) ConsumerAdequation(c model.ConsumerID) float64 {
	sh := r.cshard(c)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if t, ok := sh.m[c]; ok {
		return t.Adequation()
	}
	return Neutral
}

// ProviderAdequation returns δa(p) — the mean unit intention provider p has
// expressed over all remembered proposals — Neutral for unknown providers.
// The batched intention protocol imputes a silent provider's PI_q from this
// value.
func (r *Registry) ProviderAdequation(p model.ProviderID) float64 {
	sh := r.pshard(p)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if t, ok := sh.m[p]; ok {
		return t.Adequation()
	}
	return Neutral
}

// Forget removes the trackers of a departed participant. Departure resets
// memory: a participant that later rejoins starts from a clean window.
func (r *Registry) Forget(c model.ConsumerID, p model.ProviderID) {
	if c != model.NoConsumer {
		r.ForgetConsumer(c)
	}
	if p != model.NoProvider {
		r.ForgetProvider(p)
	}
}

// ForgetConsumer removes consumer c's tracker.
func (r *Registry) ForgetConsumer(c model.ConsumerID) {
	sh := r.cshard(c)
	sh.mu.Lock()
	delete(sh.m, c)
	sh.mu.Unlock()
}

// ForgetProvider removes provider p's tracker.
func (r *Registry) ForgetProvider(p model.ProviderID) {
	sh := r.pshard(p)
	sh.mu.Lock()
	delete(sh.m, p)
	sh.mu.Unlock()
}

// ConsumerIDs returns the IDs of all tracked consumers (unspecified order).
func (r *Registry) ConsumerIDs() []model.ConsumerID {
	var out []model.ConsumerID
	for i := range r.consumers {
		sh := &r.consumers[i]
		sh.mu.RLock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

// ProviderIDs returns the IDs of all tracked providers (unspecified order).
func (r *Registry) ProviderIDs() []model.ProviderID {
	var out []model.ProviderID
	for i := range r.providers {
		sh := &r.providers[i]
		sh.mu.RLock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

// ConsumerSatisfactions returns the δs of every tracked consumer.
func (r *Registry) ConsumerSatisfactions() []float64 {
	var out []float64
	for i := range r.consumers {
		sh := &r.consumers[i]
		sh.mu.RLock()
		for _, t := range sh.m {
			out = append(out, t.Satisfaction())
		}
		sh.mu.RUnlock()
	}
	return out
}

// ProviderSatisfactions returns the δs of every tracked provider.
func (r *Registry) ProviderSatisfactions() []float64 {
	var out []float64
	for i := range r.providers {
		sh := &r.providers[i]
		sh.mu.RLock()
		for _, t := range sh.m {
			out = append(out, t.Satisfaction())
		}
		sh.mu.RUnlock()
	}
	return out
}

// recordProvider feeds one proposal outcome into provider p's tracker under
// its stripe lock.
func (r *Registry) recordProvider(p model.ProviderID, pi model.Intention, performed bool) {
	sh := r.pshard(p)
	sh.mu.Lock()
	t, ok := sh.m[p]
	if !ok {
		t = NewProvider(r.k)
		sh.m[p] = t
	}
	t.Record(pi, performed)
	sh.mu.Unlock()
}

// recordConsumer feeds one query outcome into consumer c's tracker under its
// stripe lock.
func (r *Registry) recordConsumer(c model.ConsumerID, n int, performed, candidates []model.Intention) {
	sh := r.cshard(c)
	sh.mu.Lock()
	t, ok := sh.m[c]
	if !ok {
		t = NewConsumer(r.k)
		sh.m[c] = t
	}
	t.RecordQuery(n, performed, candidates)
	sh.mu.Unlock()
}

// RecordAllocation feeds one mediation outcome into the trackers of the
// consumer and of every proposed provider. candidates holds CI_q[p] for the
// full candidate set P_q (used for the consumer's adequation and
// allocation-satisfaction analysis); it may be nil, in which case the
// proposed intentions stand in for it.
//
// Stripe locks are taken one participant at a time, never nested, so
// concurrent recorders cannot deadlock however their proposal sets overlap.
func (r *Registry) RecordAllocation(a *model.Allocation, candidates []model.Intention) {
	r.RecordAllocationInto(a, candidates, nil)
}

// RecordAllocationInto is RecordAllocation with a caller-provided scratch
// buffer for the performed-intentions vector: scratch is reused when it has
// capacity and the (possibly grown) buffer is returned for the next call.
// The buffer's contents are consumed before the call returns — no tracker
// retains it — so a single-threaded caller (one mediator shard) can recycle
// one buffer across every mediation.
func (r *Registry) RecordAllocationInto(a *model.Allocation, candidates, scratch []model.Intention) []model.Intention {
	performed := scratch[:0]
	for i, p := range a.Proposed {
		isSelected := a.SelectedContains(p)
		if isSelected && i < len(a.ConsumerIntentions) {
			performed = append(performed, a.ConsumerIntentions[i])
		}
		var pi model.Intention
		if i < len(a.ProviderIntentions) {
			pi = a.ProviderIntentions[i]
		}
		r.recordProvider(p, pi, isSelected)
	}
	if candidates == nil {
		candidates = a.ConsumerIntentions
	}
	r.recordConsumer(a.Query.Consumer, a.Query.N, performed, candidates)
	return performed
}
