package satisfaction

import (
	"sbqa/internal/model"
)

// Registry holds the satisfaction trackers of every participant known to a
// mediator. The mediator records every mediation outcome here, and the SbQA
// allocator reads δs(c) and δs(p) from it to compute the adaptive balance ω
// of Equation 2.
//
// Registry is not safe for concurrent use; the event-driven simulator is
// single-threaded and the live engine wraps it in its own lock.
type Registry struct {
	k         int
	consumers map[model.ConsumerID]*ConsumerTracker
	providers map[model.ProviderID]*ProviderTracker
}

// NewRegistry returns a registry creating trackers with window k on demand.
func NewRegistry(k int) *Registry {
	if k < 1 {
		k = DefaultWindow
	}
	return &Registry{
		k:         k,
		consumers: make(map[model.ConsumerID]*ConsumerTracker),
		providers: make(map[model.ProviderID]*ProviderTracker),
	}
}

// Window returns the memory length used for new trackers.
func (r *Registry) Window() int { return r.k }

// SetConsumerWindow installs a tracker with a participant-specific memory
// length for consumer c, replacing any existing tracker (the paper allows
// each participant its own k, "depending on its memory capacity"; the demo
// assumes a common value for simplicity). Existing history is discarded.
func (r *Registry) SetConsumerWindow(c model.ConsumerID, k int) *ConsumerTracker {
	t := NewConsumer(k)
	r.consumers[c] = t
	return t
}

// SetProviderWindow installs a tracker with a participant-specific memory
// length for provider p, replacing any existing tracker.
func (r *Registry) SetProviderWindow(p model.ProviderID, k int) *ProviderTracker {
	t := NewProvider(k)
	r.providers[p] = t
	return t
}

// Consumer returns (creating if needed) the tracker for consumer c.
func (r *Registry) Consumer(c model.ConsumerID) *ConsumerTracker {
	t, ok := r.consumers[c]
	if !ok {
		t = NewConsumer(r.k)
		r.consumers[c] = t
	}
	return t
}

// Provider returns (creating if needed) the tracker for provider p.
func (r *Registry) Provider(p model.ProviderID) *ProviderTracker {
	t, ok := r.providers[p]
	if !ok {
		t = NewProvider(r.k)
		r.providers[p] = t
	}
	return t
}

// ConsumerSatisfaction returns δs(c), Neutral for unknown consumers.
func (r *Registry) ConsumerSatisfaction(c model.ConsumerID) float64 {
	if t, ok := r.consumers[c]; ok {
		return t.Satisfaction()
	}
	return Neutral
}

// ProviderSatisfaction returns δs(p), Neutral for unknown providers.
func (r *Registry) ProviderSatisfaction(p model.ProviderID) float64 {
	if t, ok := r.providers[p]; ok {
		return t.Satisfaction()
	}
	return Neutral
}

// Forget removes the trackers of a departed participant. Departure resets
// memory: a participant that later rejoins starts from a clean window.
func (r *Registry) Forget(c model.ConsumerID, p model.ProviderID) {
	if c != model.NoConsumer {
		delete(r.consumers, c)
	}
	if p != model.NoProvider {
		delete(r.providers, p)
	}
}

// ForgetConsumer removes consumer c's tracker.
func (r *Registry) ForgetConsumer(c model.ConsumerID) { delete(r.consumers, c) }

// ForgetProvider removes provider p's tracker.
func (r *Registry) ForgetProvider(p model.ProviderID) { delete(r.providers, p) }

// ConsumerIDs returns the IDs of all tracked consumers (unspecified order).
func (r *Registry) ConsumerIDs() []model.ConsumerID {
	out := make([]model.ConsumerID, 0, len(r.consumers))
	for id := range r.consumers {
		out = append(out, id)
	}
	return out
}

// ProviderIDs returns the IDs of all tracked providers (unspecified order).
func (r *Registry) ProviderIDs() []model.ProviderID {
	out := make([]model.ProviderID, 0, len(r.providers))
	for id := range r.providers {
		out = append(out, id)
	}
	return out
}

// ConsumerSatisfactions returns the δs of every tracked consumer.
func (r *Registry) ConsumerSatisfactions() []float64 {
	out := make([]float64, 0, len(r.consumers))
	for _, t := range r.consumers {
		out = append(out, t.Satisfaction())
	}
	return out
}

// ProviderSatisfactions returns the δs of every tracked provider.
func (r *Registry) ProviderSatisfactions() []float64 {
	out := make([]float64, 0, len(r.providers))
	for _, t := range r.providers {
		out = append(out, t.Satisfaction())
	}
	return out
}

// RecordAllocation feeds one mediation outcome into the trackers of the
// consumer and of every proposed provider. candidates holds CI_q[p] for the
// full candidate set P_q (used for the consumer's adequation and
// allocation-satisfaction analysis); it may be nil, in which case the
// proposed intentions stand in for it.
func (r *Registry) RecordAllocation(a *model.Allocation, candidates []model.Intention) {
	performed := make([]model.Intention, 0, len(a.Selected))
	for i, p := range a.Proposed {
		isSelected := a.SelectedContains(p)
		if isSelected && i < len(a.ConsumerIntentions) {
			performed = append(performed, a.ConsumerIntentions[i])
		}
		var pi model.Intention
		if i < len(a.ProviderIntentions) {
			pi = a.ProviderIntentions[i]
		}
		r.Provider(p).Record(pi, isSelected)
	}
	if candidates == nil {
		candidates = a.ConsumerIntentions
	}
	r.Consumer(a.Query.Consumer).RecordQuery(a.Query.N, performed, candidates)
}
