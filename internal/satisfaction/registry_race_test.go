package satisfaction

import (
	"sync"
	"testing"

	"sbqa/internal/model"
)

// TestRegistryConcurrentRecording drives the striped registry the way the
// sharded live engine does: several mediator shards record allocations whose
// proposal sets overlap on the same providers, while other goroutines read
// satisfactions and participants churn in and out. Run with -race.
func TestRegistryConcurrentRecording(t *testing.T) {
	r := NewRegistry(50)
	const (
		recorders   = 8
		perRecorder = 300
		providers   = 12
	)
	var wg sync.WaitGroup
	for g := 0; g < recorders; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perRecorder; i++ {
				// Every recorder proposes to the same provider trio, so the
				// stripe locks see genuine cross-shard contention.
				base := model.ProviderID(i % providers)
				a := &model.Allocation{
					Query:              model.Query{ID: model.QueryID(g*perRecorder + i), Consumer: model.ConsumerID(g), N: 1, Work: 1},
					Selected:           []model.ProviderID{base},
					Proposed:           []model.ProviderID{base, (base + 1) % providers, (base + 2) % providers},
					ConsumerIntentions: []model.Intention{0.5, 0.2, -0.1},
					ProviderIntentions: []model.Intention{0.8, 0.1, -0.5},
				}
				r.RecordAllocation(a, nil)
			}
		}()
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for p := 0; p < providers; p++ {
					s := r.ProviderSatisfaction(model.ProviderID(p))
					if s < 0 || s > 1 {
						t.Errorf("provider %d satisfaction %v out of range", p, s)
						return
					}
				}
				_ = r.ConsumerSatisfactions()
				_ = r.ProviderIDs()
			}
		}()
	}
	// Concurrent churn on IDs outside the recorded range.
	var churn sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		churn.Add(1)
		go func() {
			defer churn.Done()
			id := model.ProviderID(1000 + g)
			cid := model.ConsumerID(1000 + g)
			for i := 0; i < 500; i++ {
				r.Provider(id).Record(1, true)
				r.ForgetProvider(id)
				r.Consumer(cid)
				r.ForgetConsumer(cid)
			}
		}()
	}
	wg.Wait()
	churn.Wait()
	close(stop)
	readers.Wait()

	// Every recorder consumer has a full window of outcomes.
	for g := 0; g < recorders; g++ {
		if n := r.Consumer(model.ConsumerID(g)).Interactions(); n != 50 {
			t.Errorf("consumer %d interactions = %d, want full window 50", g, n)
		}
	}
	// Providers saw proposals from all recorders; satisfaction well defined.
	for p := 0; p < providers; p++ {
		if s := r.ProviderSatisfaction(model.ProviderID(p)); s < 0 || s > 1 {
			t.Errorf("provider %d satisfaction %v", p, s)
		}
	}
}

// TestRegistryStripingPreservesSemantics checks that the striped registry
// gives byte-identical satisfactions to sequential recording (striping is a
// locking strategy, not a semantic change).
func TestRegistryStripingPreservesSemantics(t *testing.T) {
	record := func(r *Registry) {
		for i := 0; i < 40; i++ {
			a := &model.Allocation{
				Query:              model.Query{ID: model.QueryID(i), Consumer: model.ConsumerID(i % 3), N: 1, Work: 1},
				Selected:           []model.ProviderID{model.ProviderID(i % 5)},
				Proposed:           []model.ProviderID{model.ProviderID(i % 5), model.ProviderID((i + 1) % 5)},
				ConsumerIntentions: []model.Intention{model.Intention(float64(i%7)/7 - 0.4), 0.2},
				ProviderIntentions: []model.Intention{0.6, model.Intention(float64(i%3)/3 - 0.5)},
			}
			r.RecordAllocation(a, nil)
		}
	}
	r1, r2 := NewRegistry(10), NewRegistry(10)
	record(r1)
	record(r2)
	for c := 0; c < 3; c++ {
		if a, b := r1.ConsumerSatisfaction(model.ConsumerID(c)), r2.ConsumerSatisfaction(model.ConsumerID(c)); a != b {
			t.Errorf("consumer %d: %v != %v", c, a, b)
		}
	}
	for p := 0; p < 5; p++ {
		if a, b := r1.ProviderSatisfaction(model.ProviderID(p)), r2.ProviderSatisfaction(model.ProviderID(p)); a != b {
			t.Errorf("provider %d: %v != %v", p, a, b)
		}
	}
}
