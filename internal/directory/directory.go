// Package directory is the participant catalog of the SbQA system: it keeps
// the registries of online consumers and providers and answers candidate
// discovery — "which providers can perform query q?" (the set P_q of the
// paper) — through a capability index instead of a scan over every
// registered provider.
//
// The mediator historically owned these registries and rebuilt P_q per query
// by iterating all providers and asking each CanPerform. That is fine for a
// few hundred simulated volunteers, but it makes every mediation O(|P|) and
// it welds registration to a single mediator instance. Extracting the
// catalog gives two things at once:
//
//   - an index keyed on the query class (the static part of what CanPerform
//     checks), so discovery is a lookup over the class bucket plus the
//     universal providers, filtered by the authoritative CanPerform
//     predicate — O(|P_q|), not O(|P|);
//   - a concurrency-safe registry that several mediator shards can share,
//     which is what the sharded live engine is built on.
//
// Determinism: Candidates always returns providers in ascending ProviderID
// order, whatever the registration order, so seeded allocators reproduce
// bit-for-bit (the experiment tables depend on this).
package directory

import (
	"sort"
	"sync"
	"sync/atomic"

	"sbqa/internal/event"
	"sbqa/internal/model"
)

// Consumer is the directory-side view of a consumer (the same contract the
// mediator consumes; the mediator package aliases this type).
type Consumer interface {
	// ConsumerID identifies the consumer.
	ConsumerID() model.ConsumerID

	// Intention returns CI_q[p]: the consumer's intention to see its
	// query q allocated to the provider described by snap.
	Intention(q model.Query, snap model.ProviderSnapshot) model.Intention
}

// Provider is the directory-side view of a provider (the same contract the
// mediator consumes; the mediator package aliases this type).
type Provider interface {
	// ProviderID identifies the provider.
	ProviderID() model.ProviderID

	// Snapshot reports the provider's allocation-relevant state at the
	// given simulation time.
	Snapshot(now float64) model.ProviderSnapshot

	// CanPerform reports whether the provider is able to perform q
	// (defines membership of the candidate set P_q).
	CanPerform(q model.Query) bool

	// Intention returns PI_q[p]: the provider's intention to perform q.
	Intention(q model.Query) model.Intention

	// Bid returns the price the provider asks to perform q (economic
	// baseline).
	Bid(q model.Query) float64
}

// CapabilityReporter is an optional Provider extension declaring, up front,
// the query classes the provider can perform. The directory consults it once
// at registration time and files the provider under those classes; providers
// that do not implement it (or return an empty list) are treated as
// universal — able to perform queries of any class.
//
// Capabilities narrows candidate discovery; CanPerform stays authoritative
// and is still applied to every indexed candidate, so a provider may refuse
// individual queries within its declared classes (load shedding, per-query
// predicates) without breaking the index.
type CapabilityReporter interface {
	Capabilities() []int
}

// Directory is a concurrency-safe participant catalog with a class-keyed
// capability index. The zero value is not usable; call New.
type Directory struct {
	mu        sync.RWMutex
	providers map[model.ProviderID]Provider
	consumers map[model.ConsumerID]Consumer

	// classesOf remembers the classes a provider was filed under at
	// registration (nil = universal), so unregistration can unindex it
	// without consulting the provider again.
	classesOf map[model.ProviderID][]int

	// universal and byClass are sorted ProviderID lists: the candidates for
	// a query of class c are the ordered merge of universal and byClass[c].
	universal []model.ProviderID
	byClass   map[int][]model.ProviderID

	// Intern tables: every registered participant is assigned a small dense
	// index (an "interned ID") for the lifetime of its registration. The
	// mediation hot path keys per-provider caches by these indices — a slice
	// lookup instead of a map lookup per provider. Unregistration releases
	// the index to a free list, so the table's high-water mark is bounded by
	// the maximum number of *concurrently* registered participants, not by
	// lifetime churn.
	pIdx  map[model.ProviderID]int32
	pFree []int32
	pNext int32
	cIdx  map[model.ConsumerID]int32
	cFree []int32
	cNext int32

	// obs holds the registration observer (an event.Observer), swapped
	// atomically so SetObserver is safe while the directory is shared.
	obs atomic.Value
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{
		providers: make(map[model.ProviderID]Provider),
		consumers: make(map[model.ConsumerID]Consumer),
		classesOf: make(map[model.ProviderID][]int),
		byClass:   make(map[int][]model.ProviderID),
		pIdx:      make(map[model.ProviderID]int32),
		cIdx:      make(map[model.ConsumerID]int32),
	}
}

// SetObserver installs an observer for registration churn: every
// RegisterProvider/Consumer emits OnProviderRegistered/OnConsumerRegistered
// and every successful Unregister* emits the matching departure event.
// Events fire after the directory lock is released, on the registering
// goroutine; under concurrent churn the emission order may therefore differ
// from the serialization order the catalog itself observed. A nil observer
// disables emission. Safe to call while the directory is shared.
func (d *Directory) SetObserver(o event.Observer) {
	if o == nil {
		o = event.Nop{}
	}
	d.obs.Store(&o)
}

// observer returns the installed observer, or nil.
func (d *Directory) observer() event.Observer {
	if v := d.obs.Load(); v != nil {
		return *v.(*event.Observer)
	}
	return nil
}

// RegisterProvider adds (or replaces) a provider and files it in the
// capability index.
func (d *Directory) RegisterProvider(p Provider) {
	id := p.ProviderID()
	var classes []int
	if cr, ok := p.(CapabilityReporter); ok {
		if caps := cr.Capabilities(); len(caps) > 0 {
			classes = append([]int(nil), caps...)
		}
	}
	d.mu.Lock()
	if _, exists := d.providers[id]; exists {
		d.unindexLocked(id)
	} else {
		d.pIdx[id] = d.internLocked(&d.pFree, &d.pNext)
	}
	d.providers[id] = p
	d.classesOf[id] = classes
	if classes == nil {
		d.universal = insertID(d.universal, id)
	} else {
		for _, c := range classes {
			d.byClass[c] = insertID(d.byClass[c], id)
		}
	}
	d.mu.Unlock()
	if obs := d.observer(); obs != nil {
		obs.OnProviderRegistered(id)
	}
}

// UnregisterProvider removes a provider from the catalog and the index.
// Removal does not synchronize with in-flight discovery or mediation: a
// concurrent Candidates call that already captured the provider may still
// invoke CanPerform after this returns (just as a mediator holding the
// candidate may still call Snapshot or Intention), so provider
// implementations must keep those methods safe to call until in-flight
// mediations quiesce — not merely until unregistration returns.
func (d *Directory) UnregisterProvider(id model.ProviderID) {
	d.mu.Lock()
	_, exists := d.providers[id]
	if exists {
		d.unindexLocked(id)
		delete(d.providers, id)
		delete(d.classesOf, id)
		if di, ok := d.pIdx[id]; ok {
			d.pFree = append(d.pFree, di)
			delete(d.pIdx, id)
		}
	}
	d.mu.Unlock()
	if !exists {
		return
	}
	if obs := d.observer(); obs != nil {
		obs.OnProviderDeparted(id)
	}
}

func (d *Directory) unindexLocked(id model.ProviderID) {
	classes := d.classesOf[id]
	if classes == nil {
		d.universal = removeID(d.universal, id)
		return
	}
	for _, c := range classes {
		d.byClass[c] = removeID(d.byClass[c], id)
		if len(d.byClass[c]) == 0 {
			delete(d.byClass, c)
		}
	}
}

// RegisterConsumer adds (or replaces) a consumer.
func (d *Directory) RegisterConsumer(c Consumer) {
	id := c.ConsumerID()
	d.mu.Lock()
	if _, exists := d.consumers[id]; !exists {
		d.cIdx[id] = d.internLocked(&d.cFree, &d.cNext)
	}
	d.consumers[id] = c
	d.mu.Unlock()
	if obs := d.observer(); obs != nil {
		obs.OnConsumerRegistered(id)
	}
}

// UnregisterConsumer removes a consumer.
func (d *Directory) UnregisterConsumer(id model.ConsumerID) {
	d.mu.Lock()
	_, exists := d.consumers[id]
	delete(d.consumers, id)
	if exists {
		if di, ok := d.cIdx[id]; ok {
			d.cFree = append(d.cFree, di)
			delete(d.cIdx, id)
		}
	}
	d.mu.Unlock()
	if !exists {
		return
	}
	if obs := d.observer(); obs != nil {
		obs.OnConsumerDeparted(id)
	}
}

// Provider returns the registered provider with the given ID, or nil.
func (d *Directory) Provider(id model.ProviderID) Provider {
	d.mu.RLock()
	p := d.providers[id]
	d.mu.RUnlock()
	return p
}

// Consumer returns the registered consumer with the given ID, or nil.
func (d *Directory) Consumer(id model.ConsumerID) Consumer {
	d.mu.RLock()
	c := d.consumers[id]
	d.mu.RUnlock()
	return c
}

// NumProviders returns the number of registered providers.
func (d *Directory) NumProviders() int {
	d.mu.RLock()
	n := len(d.providers)
	d.mu.RUnlock()
	return n
}

// ProviderIDs returns the IDs of every registered provider in ascending
// order — a point-in-time snapshot; under concurrent churn the set may be
// stale by the time the caller consults it.
func (d *Directory) ProviderIDs() []model.ProviderID {
	d.mu.RLock()
	ids := make([]model.ProviderID, 0, len(d.providers))
	for id := range d.providers {
		ids = append(ids, id)
	}
	d.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumConsumers returns the number of registered consumers.
func (d *Directory) NumConsumers() int {
	d.mu.RLock()
	n := len(d.consumers)
	d.mu.RUnlock()
	return n
}

// Candidates appends to buf the providers able to perform q — the candidate
// set P_q — in ascending ProviderID order, and returns the extended slice.
// Discovery consults the capability index (universal providers plus the
// bucket of q's class) and then applies CanPerform to each hit.
//
// The returned providers are the live registered instances; callers that
// mediate concurrently must tolerate providers unregistering after the call
// returns (see mediator.backfillIntentions). Symmetrically, because the
// predicate runs outside the lock, CanPerform may be invoked on a provider
// that a concurrent UnregisterProvider has already removed (see the
// UnregisterProvider doc).
func (d *Directory) Candidates(q model.Query, buf []Provider) []Provider {
	base := len(buf)
	d.mu.RLock()
	uni, cls := d.universal, d.byClass[q.Class]
	// Ordered merge of the two disjoint sorted ID lists.
	i, j := 0, 0
	for i < len(uni) || j < len(cls) {
		var id model.ProviderID
		switch {
		case j >= len(cls) || (i < len(uni) && uni[i] < cls[j]):
			id = uni[i]
			i++
		default:
			id = cls[j]
			j++
		}
		if p := d.providers[id]; p != nil {
			buf = append(buf, p)
		}
	}
	d.mu.RUnlock()
	// CanPerform is user code: run it after releasing the lock so a slow
	// predicate cannot stall registration engine-wide, and one that calls
	// back into the directory cannot deadlock. In-place compaction keeps
	// the ascending-ID order.
	kept := base
	for _, p := range buf[base:] {
		if p.CanPerform(q) {
			buf[kept] = p
			kept++
		}
	}
	return buf[:kept]
}

// internLocked hands out the next dense index, reusing released ones first.
func (d *Directory) internLocked(free *[]int32, next *int32) int32 {
	if n := len(*free); n > 0 {
		di := (*free)[n-1]
		*free = (*free)[:n-1]
		return di
	}
	di := *next
	*next++
	return di
}

// ProviderIndex returns the interned dense index of a registered provider.
// Indices are stable for the lifetime of the registration, contiguous from
// zero, and recycled after unregistration — callers keying caches by index
// must invalidate them when the provider departs (the mediator's snapshot
// cache does this with per-batch generation stamps).
func (d *Directory) ProviderIndex(id model.ProviderID) (int32, bool) {
	d.mu.RLock()
	di, ok := d.pIdx[id]
	d.mu.RUnlock()
	return di, ok
}

// ConsumerIndex returns the interned dense index of a registered consumer
// (same lifecycle as ProviderIndex).
func (d *Directory) ConsumerIndex(id model.ConsumerID) (int32, bool) {
	d.mu.RLock()
	di, ok := d.cIdx[id]
	d.mu.RUnlock()
	return di, ok
}

// ProviderInternBound returns an exclusive upper bound on every provider
// index currently handed out — the intern table's high-water mark. Sizing a
// slice-backed cache to this bound makes every interned index a valid slot.
// The bound tracks the maximum number of concurrently registered providers,
// not lifetime churn (released indices are reused).
func (d *Directory) ProviderInternBound() int {
	d.mu.RLock()
	n := int(d.pNext)
	d.mu.RUnlock()
	return n
}

// ConsumerInternBound is ProviderInternBound for consumers.
func (d *Directory) ConsumerInternBound() int {
	d.mu.RLock()
	n := int(d.cNext)
	d.mu.RUnlock()
	return n
}

// CandidatesIndexed is Candidates with the candidates' interned indices:
// idx receives, position-aligned with the returned providers, each
// candidate's dense index. Both slices are appended to and returned. The
// mediator uses the indices to key its per-batch snapshot cache without a
// map.
func (d *Directory) CandidatesIndexed(q model.Query, buf []Provider, idx []int32) ([]Provider, []int32) {
	base := len(buf)
	d.mu.RLock()
	uni, cls := d.universal, d.byClass[q.Class]
	i, j := 0, 0
	for i < len(uni) || j < len(cls) {
		var id model.ProviderID
		switch {
		case j >= len(cls) || (i < len(uni) && uni[i] < cls[j]):
			id = uni[i]
			i++
		default:
			id = cls[j]
			j++
		}
		if p := d.providers[id]; p != nil {
			buf = append(buf, p)
			idx = append(idx, d.pIdx[id])
		}
	}
	d.mu.RUnlock()
	// CanPerform runs outside the lock (see Candidates); compact both
	// slices together to keep them aligned.
	kept := base
	for k, p := range buf[base:] {
		if p.CanPerform(q) {
			buf[kept] = p
			idx[kept] = idx[base+k]
			kept++
		}
	}
	return buf[:kept], idx[:kept]
}

// insertID inserts id into the sorted slice ids, keeping it sorted; it is a
// no-op if id is already present.
func insertID(ids []model.ProviderID, id model.ProviderID) []model.ProviderID {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeID removes id from the sorted slice ids if present.
func removeID(ids []model.ProviderID, id model.ProviderID) []model.ProviderID {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i >= len(ids) || ids[i] != id {
		return ids
	}
	return append(ids[:i], ids[i+1:]...)
}
