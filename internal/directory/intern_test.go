package directory

import (
	"testing"

	"sbqa/internal/model"
)

// TestInternIndexLifecycle pins the intern table contract: registration
// assigns a dense index, unregistration releases it, and a later
// registration reuses the freed slot instead of growing the table.
func TestInternIndexLifecycle(t *testing.T) {
	d := New()
	d.RegisterProvider(&stub{id: 1})
	d.RegisterProvider(&stub{id: 2})
	d.RegisterProvider(&stub{id: 3})

	i1, ok1 := d.ProviderIndex(1)
	i2, ok2 := d.ProviderIndex(2)
	i3, ok3 := d.ProviderIndex(3)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("registered providers must have interned indices")
	}
	seen := map[int32]bool{i1: true, i2: true, i3: true}
	if len(seen) != 3 {
		t.Fatalf("indices must be distinct, got %d/%d/%d", i1, i2, i3)
	}
	for _, di := range []int32{i1, i2, i3} {
		if di < 0 || int(di) >= d.ProviderInternBound() {
			t.Fatalf("index %d outside [0, %d)", di, d.ProviderInternBound())
		}
	}

	// Re-registering (replace) keeps the existing index.
	d.RegisterProvider(&stub{id: 2})
	if i2b, _ := d.ProviderIndex(2); i2b != i2 {
		t.Fatalf("replacement changed index: %d → %d", i2, i2b)
	}

	// Unregistration forgets the index…
	d.UnregisterProvider(2)
	if _, ok := d.ProviderIndex(2); ok {
		t.Fatal("unregistered provider still has an interned index")
	}
	// …and the next registration reuses the freed slot: the bound is flat.
	bound := d.ProviderInternBound()
	d.RegisterProvider(&stub{id: 99})
	if i99, _ := d.ProviderIndex(99); i99 != i2 {
		t.Fatalf("freed index %d not reused, got %d", i2, i99)
	}
	if d.ProviderInternBound() != bound {
		t.Fatalf("bound grew on slot reuse: %d → %d", bound, d.ProviderInternBound())
	}

	// Same lifecycle for consumers.
	d.RegisterConsumer(consumerStub{id: 7})
	c7, ok := d.ConsumerIndex(7)
	if !ok || c7 != 0 {
		t.Fatalf("first consumer index = %d ok=%v, want 0 true", c7, ok)
	}
	d.UnregisterConsumer(7)
	if _, ok := d.ConsumerIndex(7); ok {
		t.Fatal("unregistered consumer still interned")
	}
	d.RegisterConsumer(consumerStub{id: 8})
	if c8, _ := d.ConsumerIndex(8); c8 != c7 {
		t.Fatalf("consumer slot not recycled: %d, want %d", c8, c7)
	}
}

// TestInternBoundStaysBoundedUnderChurn registers and unregisters far more
// providers than are ever alive at once: the intern table's high-water mark
// must track peak concurrent registrations, not lifetime churn — a
// long-running engine under provider churn must not grow its slice-backed
// snapshot caches without bound.
func TestInternBoundStaysBoundedUnderChurn(t *testing.T) {
	d := New()
	const alive = 8
	const rounds = 10000
	for r := 0; r < rounds; r++ {
		if r >= alive {
			d.UnregisterProvider(model.ProviderID(r - alive))
		}
		d.RegisterProvider(&stub{id: model.ProviderID(r)})
	}
	if got := d.ProviderInternBound(); got > alive {
		t.Fatalf("intern bound %d after %d churn rounds, want ≤ %d (peak concurrent registrations)",
			got, rounds, alive)
	}
	// Every live provider still resolves to a valid in-bound index.
	for r := rounds - alive; r < rounds; r++ {
		di, ok := d.ProviderIndex(model.ProviderID(r))
		if !ok || int(di) >= d.ProviderInternBound() {
			t.Fatalf("live provider %d: index %d ok=%v bound=%d", r, di, ok, d.ProviderInternBound())
		}
	}
}

// TestCandidatesIndexedAlignment checks that CandidatesIndexed returns
// position-aligned providers and indices, consistent with ProviderIndex, and
// identical in order to Candidates.
func TestCandidatesIndexedAlignment(t *testing.T) {
	d := New()
	for i := 10; i > 0; i-- {
		d.RegisterProvider(&stub{id: model.ProviderID(i)})
	}
	q := model.Query{Consumer: 1, N: 1, Work: 1}
	plain := d.Candidates(q, nil)
	got, idx := d.CandidatesIndexed(q, nil, nil)
	if !equalIDs(ids(got), ids(plain)) {
		t.Fatalf("CandidatesIndexed order %v != Candidates order %v", ids(got), ids(plain))
	}
	if len(idx) != len(got) {
		t.Fatalf("idx length %d != candidates length %d", len(idx), len(got))
	}
	for i, p := range got {
		want, ok := d.ProviderIndex(p.ProviderID())
		if !ok || idx[i] != want {
			t.Fatalf("candidate %d (provider %d): idx %d, want %d (ok=%v)",
				i, p.ProviderID(), idx[i], want, ok)
		}
	}
}
